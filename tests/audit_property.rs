//! Property tests for the audit layer itself.
//!
//! Two contracts:
//!
//! * **Tamper sensitivity** — a seeded tamperer perturbs known-good runs
//!   (segment shifts, speed scalings, dropped segments, completion swaps,
//!   objective edits) and every tampering must trip at least one *named*
//!   check. Trials shard over `ncss-pool`, the same worker pool the audits
//!   themselves use.
//! * **Serial == parallel determinism** — auditing with one worker and with
//!   many workers must produce bit-identical verdicts: same check names in
//!   the same order, same pass/fail, same residual bits, same detail text.
//!   Only the wall-clock `elapsed_ns` fields may differ.

use ncss::audit::{AuditConfig, AuditReport, MultiAudit, ScheduleAudit};
use ncss::core::run_c;
use ncss::pool::Pool;
use ncss::sim::{Evaluated, Instance, PowerLaw, Schedule};
use ncss::workloads::{VolumeDist, WorkloadSpec};
use ncss_rng::Pcg64;

const TRIALS: usize = 40;

fn workload(seed: u64) -> Instance {
    WorkloadSpec::uniform(6, 1.0, VolumeDist::Uniform { lo: 0.4, hi: 1.6 })
        .generate(seed)
        .expect("valid spec")
}

/// The tamperings the auditor must catch. Each takes a valid
/// (schedule, reported) pair and corrupts exactly one aspect of it.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Tamper {
    /// Multiply one serving segment's speed scale: delivered volume and
    /// energy both change.
    ScaleSpeed,
    /// Shift the last segment later in time: the served job's re-derived
    /// completion moves while the reported one does not.
    ShiftLast,
    /// Remove one serving segment: its volume is never delivered.
    DropSegment,
    /// Swap two jobs' reported completion times.
    SwapCompletions,
    /// Under-report the objective's energy term.
    ScaleEnergy,
}

const TAMPERS: [Tamper; 5] = [
    Tamper::ScaleSpeed,
    Tamper::ShiftLast,
    Tamper::DropSegment,
    Tamper::SwapCompletions,
    Tamper::ScaleEnergy,
];

/// Apply `tamper` to a valid run; returns the corrupted pair, or `None`
/// when the run's shape cannot host this tampering (e.g. too few segments).
fn apply(
    tamper: Tamper,
    rng: &mut Pcg64,
    schedule: &Schedule,
    reported: &Evaluated,
) -> Option<(Schedule, Evaluated)> {
    let law = schedule.power_law();
    let mut segments = schedule.segments().to_vec();
    let mut reported = reported.clone();
    let serving: Vec<usize> =
        (0..segments.len()).filter(|&i| segments[i].job.is_some()).collect();
    match tamper {
        Tamper::ScaleSpeed => {
            let i = serving[(rng.next_u64() as usize) % serving.len()];
            segments[i].scale *= rng.range_f64(1.3, 2.0);
        }
        Tamper::ShiftLast => {
            let last = segments.last_mut()?;
            let shift = rng.range_f64(0.5, 1.5) * last.duration().max(0.5);
            last.start += shift;
            last.end += shift;
        }
        Tamper::DropSegment => {
            if serving.len() < 2 {
                return None;
            }
            segments.remove(serving[(rng.next_u64() as usize) % serving.len()]);
        }
        Tamper::SwapCompletions => {
            let n = reported.per_job.completion.len();
            if n < 2 {
                return None;
            }
            let (a, b) = (0, 1 + (rng.next_u64() as usize) % (n - 1));
            let (ca, cb) = (reported.per_job.completion[a], reported.per_job.completion[b]);
            // A swap of near-equal completions would be invisible at audit
            // tolerance — make sure the pair actually differs.
            if (ca - cb).abs() < 1e-3 * (ca.abs() + cb.abs()) {
                return None;
            }
            reported.per_job.completion.swap(a, b);
        }
        Tamper::ScaleEnergy => {
            reported.objective.energy *= rng.range_f64(0.4, 0.8);
        }
    }
    let schedule = Schedule::new(law, segments).ok()?;
    Some((schedule, reported))
}

#[test]
fn every_tampering_trips_a_named_check() {
    let auditor = ScheduleAudit::new(AuditConfig::default());
    let trials: Vec<u64> = (0..TRIALS as u64).collect();

    // One shard per trial over the shared pool; each returns either a
    // violation message or the names of the checks the tampering tripped.
    let outcomes: Vec<Result<(Tamper, Vec<&'static str>), String>> =
        Pool::auto().map(&trials, |&trial| {
            let mut rng = Pcg64::seed_from_u64(0xA0D17 + trial);
            let tamper = TAMPERS[(trial as usize) % TAMPERS.len()];
            let inst = workload(100 + trial);
            let law = PowerLaw::cube();
            let run = run_c(&inst, law).expect("clean run");
            let reported = Evaluated { objective: run.objective, per_job: run.per_job };

            // The untampered run must pass — otherwise the trial proves
            // nothing about the tampering.
            let clean = auditor.audit(&inst, &run.schedule, &reported);
            if !clean.passed() {
                return Err(format!("trial {trial}: clean run failed its audit:\n{clean}"));
            }
            let Some((schedule, reported)) = apply(tamper, &mut rng, &run.schedule, &reported)
            else {
                return Ok((tamper, Vec::new())); // shape couldn't host it
            };
            let report = auditor.audit(&inst, &schedule, &reported);
            let tripped: Vec<&'static str> =
                report.failures().iter().map(|c| c.name).collect();
            if tripped.is_empty() {
                return Err(format!(
                    "trial {trial}: tampering {tamper:?} slipped past the auditor:\n{report}"
                ));
            }
            Ok((tamper, tripped))
        });

    let mut violations = Vec::new();
    let mut caught: Vec<(Tamper, Vec<&'static str>)> = Vec::new();
    for outcome in outcomes {
        match outcome {
            Ok((tamper, tripped)) if !tripped.is_empty() => caught.push((tamper, tripped)),
            Ok(_) => {}
            Err(msg) => violations.push(msg),
        }
    }
    assert!(violations.is_empty(), "{}", violations.join("\n"));

    // Every tampering kind must have been exercised at least once, and the
    // suite as a whole must reach the three core re-derivation checks.
    for tamper in TAMPERS {
        assert!(
            caught.iter().any(|(t, _)| *t == tamper),
            "no trial exercised {tamper:?} — tampering coverage regressed"
        );
    }
    for check in ["volume-conservation", "completion-consistency", "energy-recomputed"] {
        assert!(
            caught.iter().any(|(_, tripped)| tripped.contains(&check)),
            "no tampering tripped {check}"
        );
    }
}

#[test]
fn duplicated_fleet_timelines_trip_the_cross_machine_auditor() {
    // Two machines both claiming the whole single-machine timeline: the
    // same job is served twice in parallel and twice the volume arrives.
    let inst = workload(7);
    let run = run_c(&inst, PowerLaw::cube()).expect("clean run");
    let reported = Evaluated { objective: run.objective, per_job: run.per_job };
    let fleet = vec![run.schedule.clone(), run.schedule];
    let report = MultiAudit::new(AuditConfig::default()).audit(&inst, &fleet, &reported);
    assert!(!report.passed());
    let tripped: Vec<&'static str> = report.failures().iter().map(|c| c.name).collect();
    assert!(
        tripped.contains(&"no-double-service"),
        "expected no-double-service among {tripped:?}"
    );
    assert!(
        tripped.contains(&"cross-machine-volume"),
        "expected cross-machine-volume among {tripped:?}"
    );
}

/// Everything observable except wall-time must match bit-for-bit.
fn assert_reports_identical(serial: &AuditReport, parallel: &AuditReport, context: &str) {
    assert_eq!(serial.checks.len(), parallel.checks.len(), "{context}: check count");
    for (s, p) in serial.checks.iter().zip(&parallel.checks) {
        assert_eq!(s.name, p.name, "{context}: check order");
        assert_eq!(s.passed, p.passed, "{context}: {} verdict", s.name);
        assert_eq!(
            s.residual.to_bits(),
            p.residual.to_bits(),
            "{context}: {} residual {} vs {}",
            s.name,
            s.residual,
            p.residual
        );
        assert_eq!(s.detail, p.detail, "{context}: {} detail", s.name);
    }
}

#[test]
fn serial_and_parallel_audits_are_bit_identical() {
    let serial_cfg = AuditConfig { threads: Some(1), ..AuditConfig::default() };
    let parallel_cfg = AuditConfig { threads: Some(8), ..AuditConfig::default() };

    for seed in [3u64, 11, 29] {
        let inst = workload(seed);
        let law = PowerLaw::cube();
        let run = run_c(&inst, law).expect("clean run");
        let reported = Evaluated { objective: run.objective, per_job: run.per_job.clone() };

        // Single-machine audit, clean and tampered (tampered residuals are
        // large and must still agree exactly).
        let mut rng = Pcg64::seed_from_u64(seed);
        let cases = std::iter::once((run.schedule.clone(), reported.clone())).chain(
            TAMPERS
                .iter()
                .filter_map(|&t| apply(t, &mut rng, &run.schedule, &reported)),
        );
        for (i, (schedule, reported)) in cases.enumerate() {
            let s = ScheduleAudit::new(serial_cfg).audit(&inst, &schedule, &reported);
            let p = ScheduleAudit::new(parallel_cfg).audit(&inst, &schedule, &reported);
            assert_reports_identical(&s, &p, &format!("seed {seed} case {i}"));
        }

        // Cross-machine audit over a duplicated fleet (a failing case with
        // every check exercised).
        let fleet = vec![run.schedule.clone(), run.schedule.clone()];
        let s = MultiAudit::new(serial_cfg).audit(&inst, &fleet, &reported);
        let p = MultiAudit::new(parallel_cfg).audit(&inst, &fleet, &reported);
        assert_reports_identical(&s, &p, &format!("seed {seed} fleet"));
    }
}
