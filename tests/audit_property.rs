//! Property tests for the audit layer itself.
//!
//! Two contracts:
//!
//! * **Tamper sensitivity** — a seeded tamperer perturbs known-good runs
//!   (segment shifts, speed scalings, dropped segments, completion swaps,
//!   objective edits) and every tampering must trip at least one *named*
//!   check. Trials shard over `ncss-pool`, the same worker pool the audits
//!   themselves use.
//! * **Serial == parallel determinism** — auditing with one worker and with
//!   many workers must produce bit-identical verdicts: same check names in
//!   the same order, same pass/fail, same residual bits, same detail text.
//!   Only the wall-clock `elapsed_ns` fields may differ.
//! * **Incremental == batch parity** — feeding the same run through the
//!   event-driven [`IncrementalAudit`] must reproduce the batch auditor's
//!   verdicts: identical check names in identical order, identical
//!   pass/fail, honest residuals bitwise equal, and every tampered
//!   residual within an order of magnitude across the full
//!   tamper × workload-suite × α matrix.

use ncss::audit::{
    AuditConfig, AuditReport, IncrementalAudit, IncrementalMultiAudit, MultiAudit, ScheduleAudit,
};
use ncss::core::run_c;
use ncss::pool::Pool;
use ncss::sim::{Evaluated, Instance, Job, Objective, PerJob, PowerLaw, Schedule, Segment};
use ncss::workloads::{DensityDist, VolumeDist, WorkloadSpec};
use ncss_rng::Pcg64;

const TRIALS: usize = 40;

fn workload(seed: u64) -> Instance {
    WorkloadSpec::uniform(6, 1.0, VolumeDist::Uniform { lo: 0.4, hi: 1.6 })
        .generate(seed)
        .expect("valid spec")
}

/// The tamperings the auditor must catch. Each takes a valid
/// (schedule, reported) pair and corrupts exactly one aspect of it.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Tamper {
    /// Multiply one serving segment's speed scale: delivered volume and
    /// energy both change.
    ScaleSpeed,
    /// Shift the last segment later in time: the served job's re-derived
    /// completion moves while the reported one does not.
    ShiftLast,
    /// Remove one serving segment: its volume is never delivered.
    DropSegment,
    /// Swap two jobs' reported completion times.
    SwapCompletions,
    /// Under-report the objective's energy term.
    ScaleEnergy,
}

const TAMPERS: [Tamper; 5] = [
    Tamper::ScaleSpeed,
    Tamper::ShiftLast,
    Tamper::DropSegment,
    Tamper::SwapCompletions,
    Tamper::ScaleEnergy,
];

/// Apply `tamper` to a valid run; returns the corrupted pair, or `None`
/// when the run's shape cannot host this tampering (e.g. too few segments).
fn apply(
    tamper: Tamper,
    rng: &mut Pcg64,
    schedule: &Schedule,
    reported: &Evaluated,
) -> Option<(Schedule, Evaluated)> {
    let law = schedule.power_law();
    let mut segments = schedule.segments().to_vec();
    let mut reported = reported.clone();
    let serving: Vec<usize> =
        (0..segments.len()).filter(|&i| segments[i].job.is_some()).collect();
    match tamper {
        Tamper::ScaleSpeed => {
            let i = serving[(rng.next_u64() as usize) % serving.len()];
            segments[i].scale *= rng.range_f64(1.3, 2.0);
        }
        Tamper::ShiftLast => {
            let last = segments.last_mut()?;
            let shift = rng.range_f64(0.5, 1.5) * last.duration().max(0.5);
            last.start += shift;
            last.end += shift;
        }
        Tamper::DropSegment => {
            if serving.len() < 2 {
                return None;
            }
            segments.remove(serving[(rng.next_u64() as usize) % serving.len()]);
        }
        Tamper::SwapCompletions => {
            let n = reported.per_job.completion.len();
            if n < 2 {
                return None;
            }
            let (a, b) = (0, 1 + (rng.next_u64() as usize) % (n - 1));
            let (ca, cb) = (reported.per_job.completion[a], reported.per_job.completion[b]);
            // A swap of near-equal completions would be invisible at audit
            // tolerance — make sure the pair actually differs.
            if (ca - cb).abs() < 1e-3 * (ca.abs() + cb.abs()) {
                return None;
            }
            reported.per_job.completion.swap(a, b);
        }
        Tamper::ScaleEnergy => {
            reported.objective.energy *= rng.range_f64(0.4, 0.8);
        }
    }
    let schedule = Schedule::new(law, segments).ok()?;
    Some((schedule, reported))
}

#[test]
fn every_tampering_trips_a_named_check() {
    let auditor = ScheduleAudit::new(AuditConfig::default());
    let trials: Vec<u64> = (0..TRIALS as u64).collect();

    // One shard per trial over the shared pool; each returns either a
    // violation message or the names of the checks the tampering tripped.
    let outcomes: Vec<Result<(Tamper, Vec<&'static str>), String>> =
        Pool::auto().map(&trials, |&trial| {
            let mut rng = Pcg64::seed_from_u64(0xA0D17 + trial);
            let tamper = TAMPERS[(trial as usize) % TAMPERS.len()];
            let inst = workload(100 + trial);
            let law = PowerLaw::cube();
            let run = run_c(&inst, law).expect("clean run");
            let reported = Evaluated { objective: run.objective, per_job: run.per_job };

            // The untampered run must pass — otherwise the trial proves
            // nothing about the tampering.
            let clean = auditor.audit(&inst, &run.schedule, &reported);
            if !clean.passed() {
                return Err(format!("trial {trial}: clean run failed its audit:\n{clean}"));
            }
            let Some((schedule, reported)) = apply(tamper, &mut rng, &run.schedule, &reported)
            else {
                return Ok((tamper, Vec::new())); // shape couldn't host it
            };
            let report = auditor.audit(&inst, &schedule, &reported);
            let tripped: Vec<&'static str> =
                report.failures().iter().map(|c| c.name).collect();
            if tripped.is_empty() {
                return Err(format!(
                    "trial {trial}: tampering {tamper:?} slipped past the auditor:\n{report}"
                ));
            }
            Ok((tamper, tripped))
        });

    let mut violations = Vec::new();
    let mut caught: Vec<(Tamper, Vec<&'static str>)> = Vec::new();
    for outcome in outcomes {
        match outcome {
            Ok((tamper, tripped)) if !tripped.is_empty() => caught.push((tamper, tripped)),
            Ok(_) => {}
            Err(msg) => violations.push(msg),
        }
    }
    assert!(violations.is_empty(), "{}", violations.join("\n"));

    // Every tampering kind must have been exercised at least once, and the
    // suite as a whole must reach the three core re-derivation checks.
    for tamper in TAMPERS {
        assert!(
            caught.iter().any(|(t, _)| *t == tamper),
            "no trial exercised {tamper:?} — tampering coverage regressed"
        );
    }
    for check in ["volume-conservation", "completion-consistency", "energy-recomputed"] {
        assert!(
            caught.iter().any(|(_, tripped)| tripped.contains(&check)),
            "no tampering tripped {check}"
        );
    }
}

#[test]
fn duplicated_fleet_timelines_trip_the_cross_machine_auditor() {
    // Two machines both claiming the whole single-machine timeline: the
    // same job is served twice in parallel and twice the volume arrives.
    let inst = workload(7);
    let run = run_c(&inst, PowerLaw::cube()).expect("clean run");
    let reported = Evaluated { objective: run.objective, per_job: run.per_job };
    let fleet = vec![run.schedule.clone(), run.schedule];
    let report = MultiAudit::new(AuditConfig::default()).audit(&inst, &fleet, &reported);
    assert!(!report.passed());
    let tripped: Vec<&'static str> = report.failures().iter().map(|c| c.name).collect();
    assert!(
        tripped.contains(&"no-double-service"),
        "expected no-double-service among {tripped:?}"
    );
    assert!(
        tripped.contains(&"cross-machine-volume"),
        "expected cross-machine-volume among {tripped:?}"
    );
}

/// Everything observable except wall-time must match bit-for-bit.
fn assert_reports_identical(serial: &AuditReport, parallel: &AuditReport, context: &str) {
    assert_eq!(serial.checks.len(), parallel.checks.len(), "{context}: check count");
    for (s, p) in serial.checks.iter().zip(&parallel.checks) {
        assert_eq!(s.name, p.name, "{context}: check order");
        assert_eq!(s.passed, p.passed, "{context}: {} verdict", s.name);
        assert_eq!(
            s.residual.to_bits(),
            p.residual.to_bits(),
            "{context}: {} residual {} vs {}",
            s.name,
            s.residual,
            p.residual
        );
        assert_eq!(s.detail, p.detail, "{context}: {} detail", s.name);
    }
}

#[test]
fn serial_and_parallel_audits_are_bit_identical() {
    let serial_cfg = AuditConfig { threads: Some(1), ..AuditConfig::default() };
    let parallel_cfg = AuditConfig { threads: Some(8), ..AuditConfig::default() };

    for seed in [3u64, 11, 29] {
        let inst = workload(seed);
        let law = PowerLaw::cube();
        let run = run_c(&inst, law).expect("clean run");
        let reported = Evaluated { objective: run.objective, per_job: run.per_job.clone() };

        // Single-machine audit, clean and tampered (tampered residuals are
        // large and must still agree exactly).
        let mut rng = Pcg64::seed_from_u64(seed);
        let cases = std::iter::once((run.schedule.clone(), reported.clone())).chain(
            TAMPERS
                .iter()
                .filter_map(|&t| apply(t, &mut rng, &run.schedule, &reported)),
        );
        for (i, (schedule, reported)) in cases.enumerate() {
            let s = ScheduleAudit::new(serial_cfg).audit(&inst, &schedule, &reported);
            let p = ScheduleAudit::new(parallel_cfg).audit(&inst, &schedule, &reported);
            assert_reports_identical(&s, &p, &format!("seed {seed} case {i}"));
        }

        // Cross-machine audit over a duplicated fleet (a failing case with
        // every check exercised).
        let fleet = vec![run.schedule.clone(), run.schedule.clone()];
        let s = MultiAudit::new(serial_cfg).audit(&inst, &fleet, &reported);
        let p = MultiAudit::new(parallel_cfg).audit(&inst, &fleet, &reported);
        assert_reports_identical(&s, &p, &format!("seed {seed} fleet"));
    }
}

// ---------------------------------------------------------------------------
// Incremental == batch parity
// ---------------------------------------------------------------------------

/// α grid for the parity matrix — sub-quadratic, quadratic, super-quadratic.
const PARITY_ALPHAS: [f64; 3] = [1.5, 2.0, 2.75];

/// Release-ordered workload suites spanning uniform, skewed-density, and
/// bursty arrivals.
fn parity_suites() -> Vec<(&'static str, Instance)> {
    let uniform = workload(21);
    let mut spec = WorkloadSpec::uniform(8, 0.9, VolumeDist::Exponential { mean: 1.0 });
    spec.densities = DensityDist::LogUniform { lo: 0.25, hi: 4.0 };
    let nonuniform = spec.generate(23).expect("nonuniform suite");
    let bursty = WorkloadSpec::uniform(10, 2.5, VolumeDist::Uniform { lo: 0.2, hi: 2.2 })
        .generate(29)
        .expect("bursty suite");
    vec![("uniform", uniform), ("nonuniform", nonuniform), ("bursty", bursty)]
}

/// Feed a finished run through a fresh incremental auditor in event order:
/// releases by job id, segments in schedule order, completions by job id.
fn incremental_report(
    law: PowerLaw,
    jobs: &[Job],
    segments: &[Segment],
    per_job: &PerJob,
    objective: &Objective,
) -> AuditReport {
    let mut audit = IncrementalAudit::new(law, AuditConfig::default());
    for (id, job) in jobs.iter().enumerate() {
        audit.on_release(id, *job);
    }
    for seg in segments {
        let _ = audit.on_segment(*seg);
    }
    for j in 0..jobs.len() {
        let _ = audit.on_complete(
            j,
            per_job.completion.get(j).copied().unwrap_or(f64::NAN),
            per_job.frac_flow.get(j).copied().unwrap_or(f64::NAN),
            per_job.int_flow.get(j).copied().unwrap_or(f64::NAN),
        );
    }
    audit.finalize(objective)
}

/// Two residuals "agree" when they are bitwise equal, both non-finite, or
/// within an order of magnitude of each other (the incremental path is
/// allowed last-ulp divergence from fold-order differences, never a
/// different magnitude of wrongness).
fn residuals_same_order(a: f64, b: f64) -> bool {
    if a.to_bits() == b.to_bits() {
        return true;
    }
    if !a.is_finite() || !b.is_finite() {
        return !a.is_finite() && !b.is_finite();
    }
    let (lo, hi) = if a.abs() <= b.abs() { (a.abs(), b.abs()) } else { (b.abs(), a.abs()) };
    lo > 0.0 && hi / lo <= 10.0
}

/// Name-by-name parity: same checks in the same order, same verdicts,
/// residuals of the same order (bitwise when `strict_bits`).
fn assert_parity(batch: &AuditReport, inc: &AuditReport, context: &str, strict_bits: bool) {
    assert_eq!(batch.checks.len(), inc.checks.len(), "{context}: check count");
    for (b, i) in batch.checks.iter().zip(&inc.checks) {
        assert_eq!(b.name, i.name, "{context}: check order");
        assert_eq!(b.passed, i.passed, "{context}: {} verdict (batch {:?} vs inc {:?})",
            b.name, b, i);
        if strict_bits {
            assert_eq!(
                b.residual.to_bits(),
                i.residual.to_bits(),
                "{context}: {} residual batch {:e} vs incremental {:e}",
                b.name,
                b.residual,
                i.residual
            );
        } else {
            assert!(
                residuals_same_order(b.residual, i.residual),
                "{context}: {} residual order diverged: batch {:e} vs incremental {:e}",
                b.name,
                b.residual,
                i.residual
            );
        }
    }
}

#[test]
fn incremental_and_batch_verdicts_agree_across_tamper_matrix() {
    // One pool shard per (α, suite) cell; each cell audits the honest run
    // plus every tamper kind through both auditors and returns violations.
    let suites = parity_suites();
    let cells: Vec<(usize, usize)> = (0..PARITY_ALPHAS.len())
        .flat_map(|a| (0..suites.len()).map(move |s| (a, s)))
        .collect();

    let outcomes: Vec<Result<Vec<Tamper>, String>> = Pool::auto().map(&cells, |&(ai, si)| {
        let alpha = PARITY_ALPHAS[ai];
        let (suite, inst) = &suites[si];
        let ctx = |what: &str| format!("α={alpha} suite={suite} {what}");
        let law = PowerLaw::new(alpha).expect("valid alpha");
        let run = run_c(inst, law).map_err(|e| ctx(&format!("run failed: {e}")))?;
        let reported = Evaluated { objective: run.objective, per_job: run.per_job };
        let batch_auditor = ScheduleAudit::new(AuditConfig::default());

        // Honest runs must pass both auditors with bitwise-equal residuals.
        let batch = batch_auditor.audit(inst, &run.schedule, &reported);
        let inc = incremental_report(
            law,
            inst.jobs(),
            run.schedule.segments(),
            &reported.per_job,
            &reported.objective,
        );
        if !batch.passed() {
            return Err(ctx(&format!("honest run failed batch audit:\n{batch}")));
        }
        if !inc.passed() {
            return Err(ctx(&format!("honest run failed incremental audit:\n{inc}")));
        }
        assert_parity(&batch, &inc, &ctx("honest"), true);

        // Every tamper kind the run's shape can host must trip identically.
        let mut exercised = Vec::new();
        let mut rng = Pcg64::seed_from_u64(0x1AC5 + (ai as u64) * 31 + si as u64);
        for tamper in TAMPERS {
            let Some((schedule, reported)) = apply(tamper, &mut rng, &run.schedule, &reported)
            else {
                continue;
            };
            let batch = batch_auditor.audit(inst, &schedule, &reported);
            let inc = incremental_report(
                law,
                inst.jobs(),
                schedule.segments(),
                &reported.per_job,
                &reported.objective,
            );
            if batch.passed() != inc.passed() {
                return Err(ctx(&format!(
                    "{tamper:?}: batch passed={} but incremental passed={}\n{batch}\n{inc}",
                    batch.passed(),
                    inc.passed()
                )));
            }
            assert_parity(&batch, &inc, &ctx(&format!("{tamper:?}")), false);
            if !batch.passed() {
                exercised.push(tamper);
            }
        }
        Ok(exercised)
    });

    let mut violations = Vec::new();
    let mut tripped: Vec<Tamper> = Vec::new();
    for outcome in outcomes {
        match outcome {
            Ok(mut kinds) => tripped.append(&mut kinds),
            Err(msg) => violations.push(msg),
        }
    }
    assert!(violations.is_empty(), "{}", violations.join("\n"));
    for tamper in TAMPERS {
        assert!(
            tripped.contains(&tamper),
            "no matrix cell tripped {tamper:?} through both auditors — coverage regressed"
        );
    }
}

#[test]
fn incremental_multi_matches_batch_multi_on_duplicated_fleet() {
    // Same duplicated-fleet corruption as the batch cross-machine test,
    // replayed through the event-driven fleet auditor: the verdict sheet
    // must carry the same names, order, and pass/fail.
    let inst = workload(7);
    let law = PowerLaw::cube();
    let run = run_c(&inst, law).expect("clean run");
    let reported = Evaluated { objective: run.objective, per_job: run.per_job };
    let fleet = vec![run.schedule.clone(), run.schedule.clone()];

    let batch = MultiAudit::new(AuditConfig::default()).audit(&inst, &fleet, &reported);
    let mut audit = IncrementalMultiAudit::new(vec![law; fleet.len()], AuditConfig::default());
    for (id, job) in inst.jobs().iter().enumerate() {
        audit.on_release(id, *job);
    }
    for (m, schedule) in fleet.iter().enumerate() {
        for seg in schedule.segments() {
            let _ = audit.on_segment(m, *seg);
        }
    }
    for j in 0..inst.jobs().len() {
        let _ = audit.on_complete(
            j,
            reported.per_job.completion[j],
            reported.per_job.frac_flow[j],
            reported.per_job.int_flow[j],
        );
    }
    let inc = audit.finalize(&reported.objective);

    assert!(!batch.passed() && !inc.passed(), "duplication must trip both auditors");
    assert_parity(&batch, &inc, "duplicated fleet", false);
    let batch_failed: Vec<&str> = batch.failures().iter().map(|c| c.name).collect();
    let inc_failed: Vec<&str> = inc.failures().iter().map(|c| c.name).collect();
    assert_eq!(batch_failed, inc_failed, "failure sets must match");
}
