//! Integration coverage for the phase-attribution profiler driving real
//! streams: phases accumulate where expected, the report is stable, and a
//! profiled run computes the same numbers as an unprofiled one.

use ncss::prelude::*;
use ncss_core::streaming::{CStream, NcStream, StreamConfig};
use ncss_rng::Pcg64;
use ncss_sim::profile::{enable_phase_profiling, take_phase_report, Phase};

fn jobs(n: usize, seed: u64, rate: f64) -> Vec<Job> {
    let mut rng = Pcg64::seed_from_u64(seed);
    let mut t = 0.0;
    (0..n)
        .map(|_| {
            t += -rng.f64().max(1e-12).ln() / rate;
            Job::unit_density(t, 0.2 + 1.3 * rng.f64())
        })
        .collect()
}

fn run_c(jobs: &[Job]) -> f64 {
    let mut s = CStream::new(PowerLaw::cube(), StreamConfig::streaming(64));
    for &j in jobs {
        s.offer(j, &mut |_| {}).unwrap();
        s.spill_mut().drain().for_each(drop);
    }
    s.finish(&mut |_| {}).unwrap().objective.fractional()
}

#[test]
fn streams_bill_the_expected_phases() {
    let js = jobs(2_000, 7, 2.0);
    enable_phase_profiling();
    let _ = run_c(&js);
    let report = take_phase_report();
    // Every hot phase of a C run must have fired: kernel evaluation once
    // per service interval, heap traffic once per offer/completion,
    // dispatch bookkeeping throughout. Audit never runs here.
    assert!(report.count(Phase::RootFind) >= js.len() as u64);
    assert!(report.count(Phase::HeapOps) >= 2 * js.len() as u64);
    assert!(report.count(Phase::Dispatch) >= js.len() as u64);
    assert_eq!(report.count(Phase::Audit), 0);
    for (name, ns, count) in report.rows() {
        assert!(count > 0, "{name}: empty row serialized");
        assert!(ns > 0 || count < 10, "{name}: {count} scopes billed zero time");
    }
}

#[test]
fn profiling_does_not_change_results() {
    let js = jobs(1_000, 11, 3.0);
    let plain = run_c(&js);
    enable_phase_profiling();
    let profiled = run_c(&js);
    let _ = take_phase_report();
    assert_eq!(plain.to_bits(), profiled.to_bits());
}

#[test]
fn nc_stream_bills_phases_through_the_shadow() {
    let js = jobs(1_500, 13, 2.0);
    enable_phase_profiling();
    let mut s = NcStream::new(PowerLaw::cube(), StreamConfig::streaming(64));
    for &j in &js {
        s.offer(j, &mut |_| {}).unwrap();
        s.spill_mut().drain().for_each(drop);
    }
    s.finish().unwrap();
    let report = take_phase_report();
    // NC's own growth kernel plus the embedded shadow C stream both bill
    // RootFind; the shadow's heap bills HeapOps.
    assert!(report.count(Phase::RootFind) >= 2 * js.len() as u64);
    assert!(report.count(Phase::HeapOps) >= js.len() as u64);
}
