//! Serial == sharded bitwise identity for the fleet (DESIGN.md §12).
//!
//! The sharded executors in `ncss_multi::fleet` claim more than agreement
//! to tolerance: for every dispatch log, replaying per-machine event queues
//! as pool tasks must reproduce the serial runners **bit for bit** —
//! objectives, per-job completions and flows, per-machine timelines, and
//! the audit verdicts gating the run. This property is what makes the
//! k-sweep study (`BENCH_fleet.json`) trustworthy: a sharded cell is the
//! serial algorithm's cell, not an approximation of it.
//!
//! Matrix: k ∈ {1, 2, 7, 64} × two workload suites (a diverse
//! uniform-density suite and a bursty tie-heavy suite) × α ∈ {2, 2.75},
//! for C-PAR, NC-PAR, and the immediate-dispatch policies, across several
//! pool widths (1 worker, oversubscribed, auto).

use ncss::audit::{AuditConfig, MultiAudit};
use ncss::multi::fleet::{
    audit_fleet, replay_nc_assigned, run_c_par_sharded, run_nc_par_sharded, DispatchLog,
};
use ncss::multi::{
    run_c_par, run_immediate_dispatch, run_nc_par, LeastCount, ParOutcome, RoundRobin,
    SeededRandom,
};
use ncss::pool::Pool;
use ncss::sim::{Evaluated, Instance, Job, PowerLaw};
use ncss::workloads::suite::uniform_suite;
use ncss::workloads::{VolumeDist, WorkloadSpec};

const KS: [usize; 4] = [1, 2, 7, 64];
const ALPHAS: [f64; 2] = [2.0, 2.75];

/// Suite 1: a spread of the standard uniform-density workloads (sizes,
/// volume distributions, arrival rates), subsampled for wall-time.
fn diverse_suite() -> Vec<Instance> {
    uniform_suite(41).into_iter().step_by(7).collect()
}

/// Suite 2: bursty, tie-heavy arrivals — coincident releases and bimodal
/// volumes are where dispatch tie-breaks and availability-slack edge cases
/// live, so bitwise identity is hardest here.
fn bursty_suite() -> Vec<Instance> {
    let mut out = Vec::new();
    for (n, seed) in [(9usize, 3u64), (26, 5), (48, 8)] {
        let spec = WorkloadSpec::uniform(
            n,
            6.0,
            VolumeDist::Bimodal { small: 0.05, large: 4.0, p_large: 0.2 },
        );
        let inst = spec.generate(seed).expect("bursty spec");
        // Quantise releases onto a coarse grid to force exact ties.
        let jobs: Vec<Job> = inst
            .jobs()
            .iter()
            .map(|j| Job::unit_density((j.release * 2.0).floor() / 2.0, j.volume))
            .collect();
        out.push(Instance::new(jobs).expect("bursty instance"));
    }
    out
}

fn pools() -> Vec<Pool> {
    vec![Pool::with_threads(1), Pool::with_threads(13), Pool::auto()]
}

#[track_caller]
fn assert_bitwise(serial: &ParOutcome, sharded: &ParOutcome, ctx: &str) {
    assert_eq!(serial.assignment, sharded.assignment, "{ctx}: assignment");
    for (what, s, p) in [
        ("energy", serial.objective.energy, sharded.objective.energy),
        ("frac_flow", serial.objective.frac_flow, sharded.objective.frac_flow),
        ("int_flow", serial.objective.int_flow, sharded.objective.int_flow),
    ] {
        assert_eq!(s.to_bits(), p.to_bits(), "{ctx}: objective {what} {s:?} vs {p:?}");
    }
    for j in 0..serial.per_job.completion.len() {
        assert_eq!(
            serial.per_job.completion[j].to_bits(),
            sharded.per_job.completion[j].to_bits(),
            "{ctx}: job {j} completion"
        );
        assert_eq!(
            serial.per_job.frac_flow[j].to_bits(),
            sharded.per_job.frac_flow[j].to_bits(),
            "{ctx}: job {j} frac flow"
        );
        assert_eq!(
            serial.per_job.int_flow[j].to_bits(),
            sharded.per_job.int_flow[j].to_bits(),
            "{ctx}: job {j} int flow"
        );
    }
    assert_eq!(serial.schedules.len(), sharded.schedules.len(), "{ctx}: machine count");
    for (m, (ss, ps)) in serial.schedules.iter().zip(&sharded.schedules).enumerate() {
        assert_eq!(ss.segments(), ps.segments(), "{ctx}: machine {m} timeline");
    }
}

/// The audit gate agrees too: the event-driven fleet auditor on the sharded
/// outcome emits the same checks with the same verdicts as the batch
/// cross-machine auditor on the serial outcome — and both pass. (Residuals
/// are *not* compared bitwise here: the two auditors accumulate across
/// machines in different orders, so honest residuals agree in magnitude but
/// not bits; the bitwise claim is between serial and sharded *runs*, whose
/// identical inputs make the incremental auditor's residuals equal by
/// construction.)
#[track_caller]
fn assert_audit_parity(inst: &Instance, law: PowerLaw, serial: &ParOutcome, sharded: &ParOutcome, ctx: &str) {
    let reported =
        Evaluated { objective: serial.objective, per_job: serial.per_job.clone() };
    let batch = MultiAudit::default().audit(inst, &serial.schedules, &reported);
    let incremental = audit_fleet(inst, law, sharded, AuditConfig::default());
    assert!(batch.passed(), "{ctx}: serial batch audit failed\n{}", batch.render());
    assert!(
        incremental.passed(),
        "{ctx}: sharded incremental audit failed\n{}",
        incremental.render()
    );
    assert_eq!(batch.checks.len(), incremental.checks.len(), "{ctx}: check count");
    for (b, i) in batch.checks.iter().zip(&incremental.checks) {
        assert_eq!(b.name, i.name, "{ctx}: check order");
        assert_eq!(b.passed, i.passed, "{ctx}: {} verdict", b.name);
    }
    // The incremental auditor itself IS bitwise across serial vs sharded
    // inputs: same events in, same residuals out.
    let on_serial = audit_fleet(inst, law, serial, AuditConfig::default());
    for (s, p) in on_serial.checks.iter().zip(&incremental.checks) {
        assert_eq!(
            s.residual.to_bits(),
            p.residual.to_bits(),
            "{ctx}: {} incremental residual serial-input {:?} vs sharded-input {:?}",
            s.name,
            s.residual,
            p.residual
        );
    }
}

#[test]
fn c_par_sharded_is_bitwise_serial_across_the_matrix() {
    let pools = pools();
    for (si, suite) in [diverse_suite(), bursty_suite()].iter().enumerate() {
        for (ii, inst) in suite.iter().enumerate() {
            for &alpha in &ALPHAS {
                let law = PowerLaw::new(alpha).unwrap();
                for &k in &KS {
                    let ctx = format!("c-par suite{si}/inst{ii} n={} k={k} a={alpha}", inst.len());
                    let serial = run_c_par(inst, law, k).expect("serial c-par");
                    let pool = &pools[(ii + k) % pools.len()];
                    let sharded =
                        run_c_par_sharded(inst, law, k, pool).expect("sharded c-par");
                    assert_bitwise(&serial, &sharded, &ctx);
                    assert_audit_parity(inst, law, &serial, &sharded, &ctx);
                }
            }
        }
    }
}

#[test]
fn nc_par_sharded_is_bitwise_serial_across_the_matrix() {
    let pools = pools();
    for (si, suite) in [diverse_suite(), bursty_suite()].iter().enumerate() {
        for (ii, inst) in suite.iter().enumerate() {
            for &alpha in &ALPHAS {
                let law = PowerLaw::new(alpha).unwrap();
                for &k in &KS {
                    let ctx = format!("nc-par suite{si}/inst{ii} n={} k={k} a={alpha}", inst.len());
                    let serial = run_nc_par(inst, law, k).expect("serial nc-par");
                    let pool = &pools[(ii + k) % pools.len()];
                    let sharded =
                        run_nc_par_sharded(inst, law, k, pool).expect("sharded nc-par");
                    assert_bitwise(&serial, &sharded, &ctx);
                    assert_audit_parity(inst, law, &serial, &sharded, &ctx);
                }
            }
        }
    }
}

#[test]
fn immediate_dispatch_policies_shard_bitwise() {
    // The volume-blind policies drive the lower-bound study; their sharded
    // replay must be the serial run bit for bit, including the seeded one
    // (same seed -> same decisions on both paths).
    let pool = Pool::auto();
    let inst = &bursty_suite()[1];
    let law = PowerLaw::new(2.75).unwrap();
    for k in [2usize, 7, 64] {
        let policies: Vec<(&str, Box<dyn Fn() -> Box<dyn ncss::multi::ImmediateDispatch>>)> = vec![
            ("round-robin", Box::new(|| Box::<RoundRobin>::default())),
            ("least-count", Box::new(|| Box::<LeastCount>::default())),
            ("seeded-random", Box::new(|| Box::new(SeededRandom::new(97)))),
        ];
        for (name, mk) in policies {
            let ctx = format!("dispatch {name} k={k}");
            let serial = {
                let mut p = mk();
                run_immediate_dispatch(inst, law, k, p.as_mut()).expect("serial dispatch")
            };
            let sharded = {
                let mut p = mk();
                let log = DispatchLog::from_policy(inst, k, p.as_mut()).expect("log");
                replay_nc_assigned(inst, law, &log, &pool).expect("sharded dispatch")
            };
            assert_bitwise(&serial, &sharded, &ctx);
            assert_audit_parity(inst, law, &serial, &sharded, &ctx);
        }
    }
}

#[test]
fn dispatch_log_is_replayable_and_self_consistent() {
    // The log is the contract between the serial dispatcher and the pool
    // tasks: replaying the same log twice (any pool) gives the same bits,
    // and the log's assignment is exactly the serial runner's.
    let inst = &diverse_suite()[2];
    let law = PowerLaw::new(2.0).unwrap();
    for &k in &KS {
        let log = DispatchLog::nc_par(inst, law, k).expect("nc-par log");
        let serial = run_nc_par(inst, law, k).expect("serial");
        assert_eq!(log.assignment(), serial.assignment, "k={k}");
        let a = ncss::multi::fleet::replay_nc(inst, law, &log, &Pool::with_threads(2))
            .expect("replay A");
        let b = ncss::multi::fleet::replay_nc(inst, law, &log, &Pool::with_threads(9))
            .expect("replay B");
        assert_bitwise(&a, &b, &format!("replay-twice k={k}"));
    }
}
