//! Property test: the audit's closed-form segment integrals
//! (`ncss_audit::closed_form`) agree with tanh-sinh quadrature of the
//! pointwise speed curve (`ncss_audit::quad`) to ≤ 1e-12 **relative**
//! residual, over seeded segment laws covering
//!
//! * every `SpeedLaw` variant (`Idle`, `Constant`, `Decay`, `Growth`),
//! * α ∈ {1.5, 2, 3},
//! * magnitudes spanning 1e-150 … 1e+150 (log-uniform draws).
//!
//! This is the contract that makes the audit's analytic fast path safe:
//! the sampled quadrature cross-check tier (DESIGN.md §8.4) only probes a
//! stride of integrals per run, so this test is where the full parameter
//! space gets hammered. Comparisons are skipped when either side is
//! non-finite (e.g. `(1e150)^3` overflows in the quadrature integrand) or
//! both are below the subnormal floor, where "relative" stops meaning
//! anything.

use ncss::audit::closed_form;
use ncss::audit::quad::integrate;
use ncss::sim::{PowerLaw, Segment, SpeedLaw};
use ncss_rng::dist::log_uniform;
use ncss_rng::Pcg64;

const ALPHAS: [f64; 3] = [1.5, 2.0, 3.0];
const TRIALS_PER_ALPHA: usize = 120;
const REL_TOL: f64 = 1e-12;

/// A magnitude anywhere in the 1e-150 … 1e150 band.
fn magnitude(rng: &mut Pcg64) -> f64 {
    log_uniform(rng, 1e-150, 1e150)
}

/// Seeded segment with a random law.
///
/// Durations of the power-law kernels are drawn as a fraction of the
/// law's *natural time scale* `X^β/(ρβ)` (drain time for decay, the
/// level-doubling scale for growth), the way real schedules produce them:
/// a decay segment never outlives its extinction (the mid-interval kink a
/// clamped law would create is exactly what quadrature is bad at), and a
/// segment whose `ρβτ` is hundreds of decades below `X^β` processes a
/// volume that is pure cancellation noise for *any* arithmetic —
/// closed-form or quadrature — so neither side could be "right". `start`
/// is sized relative to the duration so the segment's endpoints do not
/// annihilate in `start + duration`.
fn seeded_segment(rng: &mut Pcg64, pl: PowerLaw) -> Segment {
    let b = pl.beta();
    let law = match rng.below(4) {
        0 => SpeedLaw::Idle,
        1 => SpeedLaw::Constant { speed: magnitude(rng) },
        2 => {
            let w0 = magnitude(rng);
            let rho = magnitude(rng);
            SpeedLaw::Decay { w0, rho }
        }
        _ => {
            // Growth from a positive level or straight from zero (the
            // non-trivial ODE branch).
            let u0 = if rng.bool(0.25) { 0.0 } else { magnitude(rng) };
            SpeedLaw::Growth { u0, rho: magnitude(rng) }
        }
    };
    let duration = match law {
        SpeedLaw::Decay { w0, rho } => {
            let extinction = w0.powf(b) / (rho * b);
            extinction * rng.range_f64(0.05, 0.9)
        }
        SpeedLaw::Growth { u0, rho } if u0 > 0.0 => {
            let natural = u0.powf(b) / (rho * b);
            natural * rng.range_f64(0.05, 20.0)
        }
        _ => log_uniform(rng, 1e-6, 1e6),
    };
    // Cap start/duration at ~10: the quadrature *reference* computes
    // `t − start` at every node in absolute time, losing about
    // eps·(start/duration) relative accuracy — at ratio 1e3 that noise
    // alone approaches the 1e-12 bound this test asserts.
    let start = duration * log_uniform(rng, 1e-3, 10.0);
    let scale = if rng.bool(0.5) { 1.0 } else { log_uniform(rng, 0.1, 10.0) };
    Segment::new(start, start + duration, Some(0), law).with_scale(scale)
}

/// True when the *pointwise* speed/power curves the quadrature reference
/// integrates stay inside the normal f64 range over the segment. The
/// kernels square/cube the level internally, so a segment whose result is
/// perfectly representable can still route through subnormals pointwise
/// (e.g. growth-from-zero with ρ ~ 1e-150: `u = (ρβτ)²` ~ 1e-311 has a
/// truncated mantissa, and quadrature inherits that ~1e-12 noise). Exact
/// zeros (idle, the start of growth-from-zero) are fine.
fn pipelines_stay_normal(pl: PowerLaw, seg: &Segment) -> bool {
    [seg.start, 0.5 * (seg.start + seg.end), seg.end].into_iter().all(|t| {
        [seg.speed_at(pl, t), seg.power_at(pl, t)]
            .into_iter()
            .all(|v| v == 0.0 || (1e-290..1e290).contains(&v.abs()))
    })
}

/// Relative residual, or `None` when the comparison is meaningless:
/// either side non-finite (overflow in an intermediate), or the result so
/// small that one of the two *pipelines* must have left the normal f64
/// range on the way there. The floor is 1e-200, not the subnormal
/// boundary: the quadrature side evaluates the pointwise level `X(τ)`,
/// which is the `1/β`-th power (up to a cube) of the result's scale — at
/// result magnitudes near 1e-250 that level is already flushed to zero
/// and quadrature returns an honest 0 for a representable nonzero
/// integral. The closed forms are factored to survive there (that's the
/// point), but there is nothing to compare them against.
fn residual(closed: f64, quad: f64) -> Option<f64> {
    if !closed.is_finite() || !quad.is_finite() {
        return None;
    }
    let mag = closed.abs().max(quad.abs());
    if mag == 0.0 {
        return Some(0.0);
    }
    if mag < 1e-200 {
        return None;
    }
    Some((closed - quad).abs() / mag)
}

fn check(what: &str, seg: &Segment, alpha: f64, closed: f64, quad: f64, compared: &mut usize) {
    if let Some(rel) = residual(closed, quad) {
        *compared += 1;
        assert!(
            rel <= REL_TOL,
            "{what} α={alpha} law={:?} scale={} [{}, {}]: closed {closed:e} vs quad {quad:e} (rel {rel:e})",
            seg.law,
            seg.scale,
            seg.start,
            seg.end,
        );
    }
}

#[test]
fn closed_form_integrals_match_quadrature_across_magnitudes() {
    let mut compared = 0usize;
    for (ai, alpha) in ALPHAS.iter().copied().enumerate() {
        let pl = PowerLaw::new(alpha).unwrap();
        let mut rng = Pcg64::seed_from_u64(0x5eed_c10_5ed + ai as u64);
        for _ in 0..TRIALS_PER_ALPHA {
            let seg = seeded_segment(&mut rng, pl);
            if !pipelines_stay_normal(pl, &seg) {
                continue;
            }

            let v_q = integrate(|t| seg.speed_at(pl, t), seg.start, seg.end);
            check("volume", &seg, alpha, closed_form::volume(pl, &seg), v_q, &mut compared);

            let e_q = integrate(|t| seg.power_at(pl, t), seg.start, seg.end);
            check("energy", &seg, alpha, closed_form::energy(pl, &seg), e_q, &mut compared);

            // Weighted volume at a cutoff inside, at, and past the segment.
            for frac in [0.3, 1.0, 1.7] {
                let c = seg.start + frac * seg.duration();
                let hi = seg.end.min(c);
                let w_q = if hi > seg.start {
                    integrate(|t| (c - t) * seg.speed_at(pl, t), seg.start, hi)
                } else {
                    0.0
                };
                check(
                    "weighted-volume",
                    &seg,
                    alpha,
                    closed_form::weighted_volume(pl, &seg, c),
                    w_q,
                    &mut compared,
                );
            }
        }
    }
    // The overflow guard must not have silently skipped everything.
    assert!(compared > 1000, "only {compared} finite comparisons — generator degenerate?");
}

#[test]
fn time_at_volume_inverts_quadrature_volume() {
    let mut compared = 0usize;
    for (ai, alpha) in ALPHAS.iter().copied().enumerate() {
        let pl = PowerLaw::new(alpha).unwrap();
        let mut rng = Pcg64::seed_from_u64(0x1712e5e + ai as u64);
        for _ in 0..TRIALS_PER_ALPHA {
            let seg = seeded_segment(&mut rng, pl);
            if !pipelines_stay_normal(pl, &seg) {
                continue;
            }
            let total = closed_form::volume(pl, &seg);
            if !(total.is_finite() && total > 0.0) {
                continue;
            }
            let v = total * rng.range_f64(0.1, 0.95);
            let t = closed_form::time_at_volume(pl, &seg, v);
            assert!(
                (seg.start..=seg.end).contains(&t),
                "crossing time outside segment: {t} law={:?}",
                seg.law
            );
            // Quadrature of the speed up to the analytic crossing time
            // must recover the requested volume.
            let v_q = integrate(|u| seg.speed_at(pl, u), seg.start, t);
            check("time-at-volume", &seg, alpha, v, v_q, &mut compared);
        }
    }
    assert!(compared > 200, "only {compared} finite comparisons — generator degenerate?");
}
