//! One test per `SimError` variant, each reached through a public API.
//!
//! The robustness policy (DESIGN.md) says every failure mode surfaces as a
//! *structured* error in release builds. This suite pins each variant to a
//! concrete public entry point so a refactor cannot silently downgrade one
//! to a panic (or worse, a NaN) without a test noticing.

use ncss::core::{run_c, run_nc_nonuniform, run_nc_uniform, NonUniformParams};
use ncss::sim::validate::reference_run;
use ncss::sim::{evaluate, Instance, Job, PowerLaw, Schedule, Segment, SimError, SpeedLaw};
use ncss::workloads::io::read_instance;
use ncss::workloads::instance_from_csv;

fn law(alpha: f64) -> PowerLaw {
    PowerLaw::new(alpha).expect("valid alpha")
}

#[test]
fn invalid_alpha_at_and_below_one() {
    for alpha in [1.0, 0.5, -2.0, f64::NAN, f64::INFINITY] {
        match PowerLaw::new(alpha) {
            Err(SimError::InvalidAlpha { .. }) => {}
            other => panic!("alpha={alpha}: expected InvalidAlpha, got {other:?}"),
        }
    }
}

#[test]
fn invalid_job_names_the_offender() {
    let jobs = vec![Job::new(0.0, 1.0, 1.0), Job::new(0.0, 0.0, 1.0)];
    match Instance::new(jobs) {
        Err(SimError::InvalidJob { index: 1, .. }) => {}
        other => panic!("expected InvalidJob at index 1, got {other:?}"),
    }
}

#[test]
fn invalid_instance_from_empty_csv() {
    match instance_from_csv("") {
        Err(SimError::InvalidInstance { .. }) => {}
        other => panic!("expected InvalidInstance, got {other:?}"),
    }
}

#[test]
fn non_uniform_density_rejected_by_uniform_nc() {
    let inst = Instance::new(vec![Job::new(0.0, 1.0, 1.0), Job::new(0.0, 1.0, 2.0)]).unwrap();
    match run_nc_uniform(&inst, law(2.0)) {
        Err(SimError::NonUniformDensity) => {}
        other => panic!("expected NonUniformDensity, got {other:?}"),
    }
}

#[test]
fn incomplete_schedule_reports_remaining_volume() {
    // Schedule delivers 1 unit of a 2-unit job.
    let inst = Instance::new(vec![Job::new(0.0, 2.0, 1.0)]).unwrap();
    let segs = vec![Segment::new(0.0, 1.0, Some(0), SpeedLaw::Constant { speed: 1.0 })];
    let sched = Schedule::new(law(2.0), segs).unwrap();
    match evaluate(&sched, &inst) {
        Err(SimError::IncompleteSchedule { job: 0, remaining }) => {
            assert!((remaining - 1.0).abs() < 1e-9, "remaining = {remaining}");
        }
        other => panic!("expected IncompleteSchedule, got {other:?}"),
    }
}

#[test]
fn malformed_schedule_from_overlapping_segments() {
    let segs = vec![
        Segment::new(0.0, 2.0, Some(0), SpeedLaw::Constant { speed: 1.0 }),
        Segment::new(1.0, 3.0, Some(0), SpeedLaw::Constant { speed: 1.0 }),
    ];
    match Schedule::new(law(2.0), segs) {
        Err(SimError::MalformedSchedule { .. }) => {}
        other => panic!("expected MalformedSchedule, got {other:?}"),
    }
}

#[test]
fn non_convergence_from_exhausted_step_budget() {
    // A policy that never works: the reference oracle must give up with a
    // structured error, not spin forever or panic.
    let inst = Instance::new(vec![Job::new(0.0, 1.0, 1.0)]).unwrap();
    match reference_run(&inst, law(2.0), 1e-3, 10, |_| None) {
        Err(SimError::NonConvergence { .. }) => {}
        other => panic!("expected NonConvergence, got {other:?}"),
    }
    // Same variant through the production non-uniform integrator.
    let mixed = Instance::new(vec![Job::new(0.0, 1.0, 1.0), Job::new(0.0, 1.0, 2.0)]).unwrap();
    let params = NonUniformParams { max_steps: 1, ..NonUniformParams::default() };
    match run_nc_nonuniform(&mixed, law(2.0), params) {
        Err(SimError::NonConvergence { .. }) => {}
        other => panic!("expected NonConvergence, got {other:?}"),
    }
}

#[test]
fn numeric_guard_trips_on_weight_overflow() {
    // Two jobs whose weights ρ·V are each ~1e308: the total active weight
    // overflows to +inf, so the HDF speed does too. The release-build guard
    // rails must convert that into SimError::Numeric, never a NaN result.
    let inst = Instance::new(vec![
        Job::new(0.0, 1e154, 1e154),
        Job::new(0.0, 1e154, 1e154),
    ])
    .unwrap();
    match run_c(&inst, law(2.0)) {
        Err(SimError::Numeric { value, .. }) => assert!(!value.is_finite(), "value = {value}"),
        Ok(run) => panic!("expected Numeric, got objective {:?}", run.objective),
        other => panic!("expected Numeric, got {other:?}"),
    }
}

#[test]
fn numeric_guard_trips_near_alpha_one_at_extreme_scale() {
    // α → 1⁺ drives the speed exponent 1/α → 1 and the flow integrands
    // toward their singular limit; combined with 1e150-scale volumes the
    // energy integral overflows. Structured error required, both builds.
    let inst = Instance::new(vec![
        Job::new(0.0, 1e150, 1e155),
        Job::new(0.0, 1e150, 1e155),
    ])
    .unwrap();
    let result = run_c(&inst, law(1.0 + 1e-9));
    match result {
        Err(SimError::Numeric { .. }) => {}
        Err(other) => panic!("expected Numeric, got {other:?}"),
        Ok(run) => {
            // If the run survives, the guard funnel must have proven every
            // component finite — either way, no NaN escapes.
            assert!(run.objective.energy.is_finite());
            assert!(run.objective.frac_flow.is_finite());
            assert!(run.objective.int_flow.is_finite());
        }
    }
}

#[test]
fn invalid_row_carries_line_number() {
    match instance_from_csv("release,volume,density\n0.0,bogus,1.0\n") {
        Err(SimError::InvalidRow { line: 2, detail }) => {
            assert!(detail.contains("volume"), "{detail}");
        }
        other => panic!("expected InvalidRow at line 2, got {other:?}"),
    }
}

#[test]
fn io_error_is_flat_and_names_the_path() {
    let path = std::path::Path::new("/nonexistent/ncss/error_paths/trace.csv");
    match read_instance(path) {
        Err(SimError::Io { detail }) => assert!(detail.contains("trace.csv"), "{detail}"),
        other => panic!("expected Io, got {other:?}"),
    }
}
