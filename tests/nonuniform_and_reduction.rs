//! Integration tests for Sections 4 and 5: the non-uniform algorithm and
//! the fractional-to-integral reduction, composed end to end.

use ncss::core::theory;
use ncss::prelude::*;
use ncss_rng::props::*;

fn mixed_instance() -> impl Strategy<Value = Instance> {
    ncss_rng::collection::vec((0.0f64..2.0, 0.1f64..1.5, 0usize..3), 1..5).prop_map(|jobs| {
        Instance::new(
            jobs.into_iter()
                .map(|(r, v, lvl)| Job::new(r, v, 5f64.powi(lvl as i32) * 1.3))
                .collect(),
        )
        .expect("valid jobs")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn nonuniform_completes_and_is_bounded(inst in mixed_instance()) {
        let alpha = 3.0;
        let law = PowerLaw::new(alpha).unwrap();
        let params = NonUniformParams { steps_per_job: 200, ..NonUniformParams::recommended(alpha) };
        let nc = run_nc_nonuniform(&inst, law, params).unwrap();
        for c in &nc.per_job.completion {
            prop_assert!(c.is_finite());
        }
        let c = run_c(&inst, law).unwrap();
        let ratio = nc.objective.fractional() / c.objective.fractional();
        // The paper proves a 2^{O(alpha)} constant; our envelope at
        // alpha = 3 with the recommended eta stays well inside ~60.
        prop_assert!(ratio < 60.0, "ratio {ratio}");
        prop_assert!(ratio > 0.4, "impossibly good ratio {ratio}");
    }

    #[test]
    fn reduction_composes_with_nonuniform(inst in mixed_instance()) {
        let alpha = 3.0;
        let law = PowerLaw::new(alpha).unwrap();
        let params = NonUniformParams { steps_per_job: 200, ..NonUniformParams::recommended(alpha) };
        let base = run_nc_nonuniform(&inst, law, params).unwrap();
        let eps = theory::optimal_reduction_epsilon(alpha);
        let red = reduce_to_integral(&base.schedule, &inst, eps).unwrap();
        // Lemma 15's guarantee, instantiated.
        let factor = theory::reduction_factor(alpha, eps);
        prop_assert!(
            red.objective.integral() <= factor * base.objective.fractional() * (1.0 + 1e-6),
            "integral {} vs factor {} * fractional {}",
            red.objective.integral(), factor, base.objective.fractional()
        );
        // Completions only move earlier.
        for j in 0..inst.len() {
            prop_assert!(red.per_job.completion[j] <= base.per_job.completion[j] + 1e-6);
        }
    }

    #[test]
    fn reduction_idempotent_volume(inst in mixed_instance()) {
        // The reduced schedule processes exactly the instance's volume.
        let law = PowerLaw::new(2.0).unwrap();
        let base = run_nc_nonuniform(&inst, law, NonUniformParams { steps_per_job: 150, ..NonUniformParams::recommended(2.0) }).unwrap();
        let red = reduce_to_integral(&base.schedule, &inst, 0.5).unwrap();
        let processed = red.schedule.total_volume();
        prop_assert!((processed - inst.total_volume()).abs() < 1e-5 * inst.total_volume());
    }
}

#[test]
fn theorem16_end_to_end_constant() {
    // The headline Theorem 16 pipeline: non-uniform NC + reduction gives a
    // constant-competitive integral-objective algorithm. Measure against
    // the certified OPT lower bound on a fixed mixed instance.
    let alpha = 3.0;
    let law = PowerLaw::new(alpha).unwrap();
    let inst = Instance::new(vec![
        Job::new(0.0, 1.0, 1.0),
        Job::new(0.3, 0.4, 6.0),
        Job::new(0.8, 0.8, 1.4),
        Job::new(1.2, 0.2, 30.0),
    ])
    .unwrap();
    let base = run_nc_nonuniform(&inst, law, NonUniformParams::recommended(alpha)).unwrap();
    let eps = theory::optimal_reduction_epsilon(alpha);
    let red = reduce_to_integral(&base.schedule, &inst, eps).unwrap();
    let opt = solve_fractional_opt(&inst, law, SolverOptions::default()).unwrap();
    let ratio = red.objective.integral() / opt.dual_bound;
    assert!(ratio < 100.0, "integral ratio {ratio} should be a constant");
    assert!(ratio >= 1.0 - 1e-6);
}

#[test]
fn density_rounding_only_changes_cost_moderately() {
    // Rounding densities to powers of beta perturbs each density by at most
    // a beta factor; the measured cost across bases stays within an
    // order of magnitude band (A1's precise sweep lives in the harness).
    let alpha = 3.0;
    let law = PowerLaw::new(alpha).unwrap();
    let inst = Instance::new(vec![
        Job::new(0.0, 0.8, 2.0),
        Job::new(0.5, 0.5, 9.0),
        Job::new(0.9, 0.6, 0.7),
    ])
    .unwrap();
    let mut costs = Vec::new();
    for beta in [2.0, 5.0, 10.0] {
        let params = NonUniformParams {
            rounding_base: beta,
            steps_per_job: 200,
            ..NonUniformParams::recommended(alpha)
        };
        costs.push(run_nc_nonuniform(&inst, law, params).unwrap().objective.fractional());
    }
    let max = costs.iter().cloned().fold(0.0, f64::max);
    let min = costs.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(max / min < 10.0, "costs {costs:?}");
}
