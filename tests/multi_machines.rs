//! Integration tests for Section 6: parallel machines and the
//! immediate-dispatch lower bound.

use ncss::core::theory;
use ncss::multi::{fit_loglog_slope, immediate_dispatch_game, LeastCount, RoundRobin};
use ncss::prelude::*;
use ncss::sim::numeric::rel_diff;
use ncss_rng::props::*;

fn uniform_instance() -> impl Strategy<Value = Instance> {
    ncss_rng::collection::vec((0.0f64..6.0, 0.05f64..4.0), 1..12).prop_map(|jobs| {
        Instance::new(jobs.into_iter().map(|(r, v)| Job::unit_density(r, v)).collect())
            .expect("valid jobs")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn lemma20_assignment_identity(inst in uniform_instance(), k in 2usize..5) {
        let law = PowerLaw::new(3.0).unwrap();
        let c = run_c_par(&inst, law, k).unwrap();
        let nc = run_nc_par(&inst, law, k).unwrap();
        prop_assert_eq!(c.assignment, nc.assignment);
    }

    #[test]
    fn lemma21_22_energy_and_flow(inst in uniform_instance(), k in 2usize..5) {
        let law = PowerLaw::new(2.0).unwrap();
        let c = run_c_par(&inst, law, k).unwrap();
        let nc = run_nc_par(&inst, law, k).unwrap();
        prop_assert!(rel_diff(c.objective.energy, nc.objective.energy) < 1e-7);
        let expect = c.objective.frac_flow * theory::nc_over_c_flow_ratio(2.0);
        prop_assert!(rel_diff(nc.objective.frac_flow, expect) < 1e-7);
    }

    #[test]
    fn every_job_completes_once(inst in uniform_instance(), k in 1usize..4) {
        let law = PowerLaw::new(2.5).unwrap();
        let nc = run_nc_par(&inst, law, k).unwrap();
        for (j, c) in nc.per_job.completion.iter().enumerate() {
            prop_assert!(c.is_finite());
            prop_assert!(*c >= inst.job(j).release);
        }
        // Jobs on the same machine never overlap: completions of each
        // machine's jobs are separated by at least their service demands.
        for m in 0..k {
            let mut last_completion = f64::NEG_INFINITY;
            for (j, &mm) in nc.assignment.iter().enumerate() {
                if mm == m {
                    prop_assert!(nc.per_job.completion[j] >= last_completion - 1e-9);
                    last_completion = nc.per_job.completion[j];
                }
            }
        }
    }
}

#[test]
fn lower_bound_exponent_for_three_alphas() {
    for (alpha, expect) in [(1.5, 1.0 / 3.0), (2.0, 0.5), (3.0, 2.0 / 3.0)] {
        let law = PowerLaw::new(alpha).unwrap();
        let pts: Vec<(usize, f64)> = [4usize, 8, 16, 32]
            .iter()
            .map(|&k| {
                let mut p = RoundRobin::default();
                (k, immediate_dispatch_game(law, k, &mut p, 1.0, 1e-4).unwrap().ratio)
            })
            .collect();
        let slope = fit_loglog_slope(&pts);
        assert!(
            (slope - expect).abs() < 0.08,
            "alpha={alpha}: slope {slope} vs theory {expect}"
        );
    }
}

#[test]
fn adversary_beats_every_policy() {
    // The pigeonhole argument is policy-independent: all implemented
    // policies suffer a growing ratio.
    let law = PowerLaw::new(2.0).unwrap();
    for k in [4usize, 8] {
        let mut rr = RoundRobin::default();
        let mut lc = LeastCount::default();
        let mut sr = ncss::multi::SeededRandom::new(99);
        let r_rr = immediate_dispatch_game(law, k, &mut rr, 1.0, 1e-4).unwrap().ratio;
        let r_lc = immediate_dispatch_game(law, k, &mut lc, 1.0, 1e-4).unwrap().ratio;
        let r_sr = immediate_dispatch_game(law, k, &mut sr, 1.0, 1e-4).unwrap().ratio;
        for r in [r_rr, r_lc, r_sr] {
            assert!(r > 1.5, "k={k}: ratio {r}");
        }
    }
}

#[test]
fn nc_par_beats_all_dispatch_policies_on_the_batch() {
    // Lazy dispatch (NC-PAR) sidesteps the look-alike trap: on the k^2
    // batch its cost is within a constant of the spread optimum while the
    // immediate-dispatch policy degrades.
    let law = PowerLaw::new(2.0).unwrap();
    let k = 8;
    let mut p = RoundRobin::default();
    let game = immediate_dispatch_game(law, k, &mut p, 1.0, 1e-4).unwrap();
    // Rebuild the adversary's instance and give it to NC-PAR.
    // NC-PAR sees jobs only as they queue; its dispatch is lazy.
    let high: Vec<usize> = (0..k).map(|i| i * k).collect(); // round-robin co-location
    let inst = ncss::workloads::lookalike_batch(k, &high, 1.0, 1e-4).unwrap();
    let ncp = run_nc_par(&inst, law, k).unwrap();
    let ratio = ncp.objective.fractional() / game.opt_upper_bound;
    assert!(
        ratio < game.ratio,
        "NC-PAR ratio {ratio} should beat immediate dispatch {}",
        game.ratio
    );
}

use ncss::sim::{Evaluated, Segment};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn merged_audit_agrees_with_independent_per_machine_audits(
        inst in uniform_instance(), k in 2usize..5
    ) {
        // The cross-machine auditor on the merged run must agree with
        // auditing each machine in isolation: rebuild every machine's
        // private instance, remap original job ids to local ones, and run
        // the single-machine auditor on each timeline. Both views must
        // pass, and the per-machine evaluations must reassemble into the
        // globally reported numbers.
        let law = PowerLaw::new(2.5).unwrap();
        let nc = run_nc_par(&inst, law, k).unwrap();
        let reported = Evaluated { objective: nc.objective, per_job: nc.per_job.clone() };
        let merged = audit_multi(&inst, &nc.schedules, &reported);
        prop_assert!(merged.passed(), "merged audit:\n{}", merged);
        prop_assert!(merged.max_residual() < 1e-7, "residual {}", merged.max_residual());

        let mut energy_sum = 0.0;
        let mut frac_sum = 0.0;
        for m in 0..k {
            let members: Vec<usize> =
                (0..inst.len()).filter(|&j| nc.assignment[j] == m).collect();
            if members.is_empty() {
                prop_assert!(nc.schedules[m].segments().iter().all(|s| s.job.is_none()));
                continue;
            }
            // Original ids are release-sorted, so the members (in original
            // id order) are already release-sorted and the local instance's
            // stable sort keeps local id = rank within `members`.
            let local_inst = Instance::new(
                members.iter().map(|&j| *inst.job(j)).collect()
            ).unwrap();
            let segments: Vec<Segment> = nc.schedules[m].segments().iter().map(|s| {
                let job = s.job.map(|orig| {
                    members.iter().position(|&j| j == orig).expect("job served off-machine")
                });
                Segment { job, ..*s }
            }).collect();
            let local_sched = Schedule::new(law, segments).unwrap();
            let local_eval = evaluate(&local_sched, &local_inst).unwrap();
            let local = audit_run(&local_inst, &local_sched, &local_eval);
            prop_assert!(local.passed(), "machine {} audit:\n{}", m, local);
            prop_assert!(local.max_residual() < 1e-7,
                "machine {} residual {}", m, local.max_residual());
            for (local_id, &orig) in members.iter().enumerate() {
                prop_assert!(
                    rel_diff(local_eval.per_job.completion[local_id],
                             nc.per_job.completion[orig]) < 1e-7,
                    "machine {} job {}: local completion {} vs reported {}",
                    m, orig, local_eval.per_job.completion[local_id],
                    nc.per_job.completion[orig]
                );
            }
            energy_sum += local_eval.objective.energy;
            frac_sum += local_eval.objective.frac_flow;
        }
        prop_assert!(rel_diff(energy_sum, nc.objective.energy) < 1e-7,
            "per-machine energies {} vs reported {}", energy_sum, nc.objective.energy);
        prop_assert!(rel_diff(frac_sum, nc.objective.frac_flow) < 1e-7,
            "per-machine frac flows {} vs reported {}", frac_sum, nc.objective.frac_flow);
    }
}

#[test]
fn double_service_escapes_the_outcome_audit_but_not_the_multi_audit() {
    // A phantom machine re-serving an already-served job leaves every
    // reported number untouched, so the schedule-less outcome audit cannot
    // see it. The cross-machine auditor must: the duplicated segment
    // double-serves a job and over-delivers volume.
    let inst = Instance::new(vec![
        Job::unit_density(0.0, 2.0),
        Job::unit_density(0.3, 1.0),
        Job::unit_density(0.9, 1.5),
        Job::unit_density(1.4, 0.5),
    ])
    .unwrap();
    let law = PowerLaw::new(3.0).unwrap();
    let nc = run_nc_par(&inst, law, 2).unwrap();
    let reported = Evaluated { objective: nc.objective, per_job: nc.per_job.clone() };

    let outcome = audit_outcome(&inst, &nc.objective, &nc.per_job);
    assert!(outcome.passed(), "clean outcome audit must pass:\n{outcome}");

    let mut schedules = nc.schedules.clone();
    let phantom = *schedules
        .iter()
        .flat_map(|s| s.segments())
        .find(|s| s.job.is_some())
        .expect("some served segment");
    schedules.push(Schedule::new(law, vec![phantom]).unwrap());

    let corrupted = audit_multi(&inst, &schedules, &reported);
    assert!(!corrupted.passed(), "multi audit must catch double service:\n{corrupted}");
    let rendered = format!("{corrupted}");
    assert!(
        rendered.contains("FAIL no-double-service"),
        "expected a no-double-service failure:\n{rendered}"
    );
}
