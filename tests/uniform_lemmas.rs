//! Property-based integration tests: the paper's Section 3 lemmas must hold
//! on *arbitrary* uniform-density instances, not just hand-picked ones.

use ncss::core::theory;
use ncss::prelude::*;
use ncss::sim::numeric::{approx_eq, rel_diff};
use ncss::sim::profile::rearrangement_distance;
use ncss_rng::props::*;

/// Random uniform-density instances: up to 14 jobs with jittered releases
/// and volumes spanning three orders of magnitude.
fn uniform_instance() -> impl Strategy<Value = Instance> {
    (
        ncss_rng::collection::vec((0.0f64..8.0, 0.01f64..10.0), 1..14),
        0.05f64..20.0,
    )
        .prop_map(|(jobs, rho)| {
            Instance::new(jobs.into_iter().map(|(r, v)| Job::new(r, v, rho)).collect())
                .expect("generated jobs are valid")
        })
}

fn alphas() -> impl Strategy<Value = f64> {
    prop_oneof![Just(1.5), Just(2.0), Just(2.5), Just(3.0), Just(4.0)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lemma3_energy_equality(inst in uniform_instance(), alpha in alphas()) {
        let law = PowerLaw::new(alpha).unwrap();
        let c = run_c(&inst, law).unwrap();
        let nc = run_nc_uniform(&inst, law).unwrap();
        prop_assert!(rel_diff(c.objective.energy, nc.objective.energy) < 1e-7,
            "C {} vs NC {}", c.objective.energy, nc.objective.energy);
    }

    #[test]
    fn lemma4_exact_flow_ratio(inst in uniform_instance(), alpha in alphas()) {
        let law = PowerLaw::new(alpha).unwrap();
        let c = run_c(&inst, law).unwrap();
        let nc = run_nc_uniform(&inst, law).unwrap();
        let expect = c.objective.frac_flow * theory::nc_over_c_flow_ratio(alpha);
        prop_assert!(rel_diff(nc.objective.frac_flow, expect) < 1e-7);
    }

    #[test]
    fn lemma6_measure_preserving_profiles(inst in uniform_instance()) {
        let law = PowerLaw::new(3.0).unwrap();
        let c = run_c(&inst, law).unwrap();
        let nc = run_nc_uniform(&inst, law).unwrap();
        let d = rearrangement_distance(&c.schedule, &nc.schedule, 128);
        prop_assert!(d < 1e-6 * (1.0 + nc.makespan()), "distance {d}");
    }

    #[test]
    fn lemma8_integral_fractional_bound(inst in uniform_instance(), alpha in alphas()) {
        let law = PowerLaw::new(alpha).unwrap();
        let nc = run_nc_uniform(&inst, law).unwrap();
        let bound = theory::nc_integral_over_fractional_flow_bound(alpha);
        prop_assert!(nc.objective.int_flow <= bound * nc.objective.frac_flow * (1.0 + 1e-9));
    }

    #[test]
    fn internal_accounting_matches_evaluator(inst in uniform_instance(), alpha in alphas()) {
        let law = PowerLaw::new(alpha).unwrap();
        for run in [run_c(&inst, law).unwrap().objective, run_nc_uniform(&inst, law).unwrap().objective] {
            let _ = run;
        }
        let c = run_c(&inst, law).unwrap();
        let ev = evaluate(&c.schedule, &inst).unwrap();
        prop_assert!(rel_diff(ev.objective.fractional(), c.objective.fractional()) < 1e-6);
        let nc = run_nc_uniform(&inst, law).unwrap();
        let ev = evaluate(&nc.schedule, &inst).unwrap();
        prop_assert!(rel_diff(ev.objective.fractional(), nc.objective.fractional()) < 1e-6);
    }

    #[test]
    fn c_energy_equals_c_flow(inst in uniform_instance(), alpha in alphas()) {
        // The defining property of Algorithm C.
        let law = PowerLaw::new(alpha).unwrap();
        let c = run_c(&inst, law).unwrap();
        prop_assert!(rel_diff(c.objective.energy, c.objective.frac_flow) < 1e-7);
    }

    #[test]
    fn completions_ordered_fifo_for_nc(inst in uniform_instance()) {
        let law = PowerLaw::new(2.0).unwrap();
        let nc = run_nc_uniform(&inst, law).unwrap();
        for w in nc.per_job.completion.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-12);
        }
    }

    #[test]
    fn fractional_below_integral(inst in uniform_instance(), alpha in alphas()) {
        let law = PowerLaw::new(alpha).unwrap();
        let nc = run_nc_uniform(&inst, law).unwrap();
        prop_assert!(nc.objective.frac_flow <= nc.objective.int_flow * (1.0 + 1e-9));
    }
}

#[test]
fn lemma4_survives_pathological_spacing() {
    // Releases collide, nearly collide, and leave long gaps all at once.
    let law = PowerLaw::new(2.0).unwrap();
    let inst = Instance::new(vec![
        Job::unit_density(0.0, 1.0),
        Job::unit_density(0.0, 1e-6),
        Job::unit_density(1e-9, 5.0),
        Job::unit_density(1000.0, 0.3),
        Job::unit_density(1000.0 + 1e-9, 0.3),
    ])
    .unwrap();
    let c = run_c(&inst, law).unwrap();
    let nc = run_nc_uniform(&inst, law).unwrap();
    assert!(approx_eq(nc.objective.energy, c.objective.energy, 1e-6));
    assert!(approx_eq(nc.objective.frac_flow, 2.0 * c.objective.frac_flow, 1e-6));
}
