//! Kill/resume oracle for the streaming cores (DESIGN.md §10).
//!
//! For every workload suite × α, run the stream to completion recording a
//! checkpoint after **every** offer, then for every kill index k: round-trip
//! the k-th checkpoint through the trace codec (the same bytes a `.nct`
//! file would carry), restore a fresh stream from it, offer the remaining
//! jobs, and require the resumed run to be **bitwise identical** to the
//! uninterrupted one — same completion times, flows, segments, and final
//! objectives down to `f64::to_bits`, and the same independent-audit
//! verdicts on the rebuilt schedule.
//!
//! The checkpoint is serialized and deserialized at every kill point, so a
//! codec bug that perturbs even one mantissa bit of scheduler state fails
//! here, not just a snapshot/restore bug.

use ncss::audit::{AuditConfig, ScheduleAudit};
use ncss::core::{CStream, NcStream, StreamConfig};
use ncss::sim::{
    Evaluated, Instance, Job, Objective, PerJob, PowerLaw, ScheduleBuilder, Segment,
};
use ncss::trace::format::{decode_event, encode_event};
use ncss::trace::{Checkpoint, Event};
use ncss::workloads::{DensityDist, VolumeDist, WorkloadSpec};

const ALPHAS: [f64; 2] = [2.0, 2.75];

/// (name, uniform-density?, jobs) — release-ordered workload suites.
fn suites() -> Vec<(&'static str, bool, Vec<Job>)> {
    let uniform = WorkloadSpec::uniform(18, 1.2, VolumeDist::Uniform { lo: 0.3, hi: 1.8 })
        .generate(41)
        .expect("uniform suite")
        .jobs()
        .to_vec();
    let mut spec = WorkloadSpec::uniform(16, 0.9, VolumeDist::Exponential { mean: 1.0 });
    spec.densities = DensityDist::LogUniform { lo: 0.25, hi: 4.0 };
    let nonuniform = spec.generate(43).expect("nonuniform suite").jobs().to_vec();
    let tiny = vec![
        Job::unit_density(0.0, 2.0),
        Job::unit_density(0.4, 1.0),
        Job::unit_density(1.1, 0.5),
    ];
    vec![("uniform", true, uniform), ("nonuniform", false, nonuniform), ("tiny", true, tiny)]
}

/// Serialize a checkpoint through the trace event codec and back — the
/// exact bytes a recorded `.nct` frame carries.
fn roundtrip(cp: Checkpoint) -> Checkpoint {
    let (kind, payload) = encode_event(0, &Event::Checkpoint(Box::new(cp)));
    match decode_event(kind, &payload).expect("checkpoint frame decodes") {
        (_, Event::Checkpoint(cp)) => *cp,
        other => panic!("round-trip produced {other:?}"),
    }
}

fn assert_bits(ctx: &str, what: &str, a: f64, b: f64) {
    assert!(
        a.to_bits() == b.to_bits(),
        "{ctx}: {what} diverged: {a:?} ({:#x}) vs {b:?} ({:#x})",
        a.to_bits(),
        b.to_bits()
    );
}

/// One algorithm run: completions as `(id, completion, frac, int)`,
/// retired segments, and the final objective.
struct RunTrace {
    completions: Vec<(usize, f64, f64, f64)>,
    segments: Vec<Segment>,
    objective: Objective,
    makespan: f64,
    /// Checkpoint after offer k (serialized round-trip deferred to resume
    /// time) and how many completions had been emitted by then.
    checkpoints: Vec<(Checkpoint, usize)>,
}

fn full_c(jobs: &[Job], law: PowerLaw) -> RunTrace {
    let mut stream = CStream::new(law, StreamConfig::batch());
    let mut completions = Vec::new();
    let mut checkpoints = Vec::new();
    for &job in jobs {
        stream
            .offer(job, &mut |c: ncss::core::CCompletion| {
                completions.push((c.id, c.completion, c.frac_flow, c.int_flow));
            })
            .expect("offer");
        checkpoints.push((Checkpoint::C(stream.snapshot()), completions.len()));
    }
    let summary = stream
        .finish(&mut |c: ncss::core::CCompletion| {
            completions.push((c.id, c.completion, c.frac_flow, c.int_flow));
        })
        .expect("finish");
    let segments = stream.spill_mut().drain().collect();
    RunTrace {
        completions,
        segments,
        objective: summary.objective,
        makespan: summary.makespan,
        checkpoints,
    }
}

fn resume_c(cp: Checkpoint, jobs: &[Job], law: PowerLaw) -> RunTrace {
    let Checkpoint::C(snap) = roundtrip(cp) else { panic!("wrong checkpoint algo") };
    let skip = snap.ingested;
    let mut stream = CStream::from_snapshot(snap).expect("restore");
    assert_eq!(stream.clock(), stream.clock(), "restored stream usable");
    let mut completions = Vec::new();
    for &job in &jobs[skip..] {
        stream
            .offer(job, &mut |c: ncss::core::CCompletion| {
                completions.push((c.id, c.completion, c.frac_flow, c.int_flow));
            })
            .expect("resumed offer");
    }
    let summary = stream
        .finish(&mut |c: ncss::core::CCompletion| {
            completions.push((c.id, c.completion, c.frac_flow, c.int_flow));
        })
        .expect("resumed finish");
    let _ = law;
    RunTrace {
        completions,
        segments: stream.spill_mut().drain().collect(),
        objective: summary.objective,
        makespan: summary.makespan,
        checkpoints: Vec::new(),
    }
}

fn full_nc(jobs: &[Job], law: PowerLaw) -> RunTrace {
    let mut stream = NcStream::new(law, StreamConfig::batch());
    let mut completions = Vec::new();
    let mut checkpoints = Vec::new();
    for &job in jobs {
        stream
            .offer(job, &mut |c: ncss::core::NcCompletion| {
                completions.push((c.id, c.completion, c.frac_flow, c.int_flow));
            })
            .expect("offer");
        checkpoints.push((Checkpoint::Nc(stream.snapshot()), completions.len()));
    }
    let summary = stream.finish().expect("finish");
    let segments = stream.spill_mut().drain().collect();
    RunTrace {
        completions,
        segments,
        objective: summary.objective,
        makespan: summary.makespan,
        checkpoints,
    }
}

fn resume_nc(cp: Checkpoint, jobs: &[Job], law: PowerLaw) -> RunTrace {
    let Checkpoint::Nc(snap) = roundtrip(cp) else { panic!("wrong checkpoint algo") };
    let skip = snap.ingested;
    let mut stream = NcStream::from_snapshot(snap).expect("restore");
    let mut completions = Vec::new();
    for &job in &jobs[skip..] {
        stream
            .offer(job, &mut |c: ncss::core::NcCompletion| {
                completions.push((c.id, c.completion, c.frac_flow, c.int_flow));
            })
            .expect("resumed offer");
    }
    let summary = stream.finish().expect("resumed finish");
    let _ = law;
    RunTrace {
        completions,
        segments: stream.spill_mut().drain().collect(),
        objective: summary.objective,
        makespan: summary.makespan,
        checkpoints: Vec::new(),
    }
}

/// Audit a run's rebuilt schedule; returns `(name, passed)` per check.
fn audit_verdicts(jobs: &[Job], law: PowerLaw, run: &RunTrace) -> Vec<(&'static str, bool)> {
    let inst = Instance::new(jobs.to_vec()).expect("instance");
    let mut builder = ScheduleBuilder::new(law);
    for seg in &run.segments {
        builder.push(*seg);
    }
    let schedule = builder.build().expect("schedule");
    let n = jobs.len();
    let mut per_job = PerJob {
        completion: vec![f64::NAN; n],
        frac_flow: vec![0.0; n],
        int_flow: vec![0.0; n],
    };
    for &(id, c, f, i) in &run.completions {
        per_job.completion[id] = c;
        per_job.frac_flow[id] = f;
        per_job.int_flow[id] = i;
    }
    let reported = Evaluated { objective: run.objective, per_job };
    let report = ScheduleAudit::new(AuditConfig::default()).audit(&inst, &schedule, &reported);
    assert!(report.passed(), "audit failed:\n{}", report.render());
    report.checks.iter().map(|c| (c.name, c.passed)).collect()
}

/// The oracle: kill at every offer index, resume, demand bitwise equality
/// with the uninterrupted run — completions, segments, objectives, audit.
fn oracle(
    name: &str,
    jobs: &[Job],
    law: PowerLaw,
    full: RunTrace,
    resume: impl Fn(Checkpoint, &[Job], PowerLaw) -> RunTrace,
) {
    let full_audit = audit_verdicts(jobs, law, &full);
    for (k, (cp, emitted)) in full.checkpoints.iter().enumerate() {
        let ctx = format!("{name} α={} kill@{k}", law.alpha());
        assert_eq!(cp.ingested(), k + 1, "{ctx}: checkpoint ingest count");
        let resumed = resume(cp.clone(), jobs, law);

        // The resumed run regenerates exactly the completions the full run
        // emitted after the kill point.
        let tail = &full.completions[*emitted..];
        assert_eq!(resumed.completions.len(), tail.len(), "{ctx}: completion count");
        for (r, f) in resumed.completions.iter().zip(tail) {
            assert_eq!(r.0, f.0, "{ctx}: completion order");
            assert_bits(&ctx, "completion", r.1, f.1);
            assert_bits(&ctx, "frac_flow", r.2, f.2);
            assert_bits(&ctx, "int_flow", r.3, f.3);
        }

        // The snapshot carries the spill ring, so the resumed drain holds
        // the full retired-segment history, identical segment for segment.
        assert_eq!(resumed.segments.len(), full.segments.len(), "{ctx}: segment count");
        for (r, f) in resumed.segments.iter().zip(&full.segments) {
            assert_eq!(r, f, "{ctx}: segment diverged");
        }

        assert_bits(&ctx, "energy", resumed.objective.energy, full.objective.energy);
        assert_bits(&ctx, "frac_flow", resumed.objective.frac_flow, full.objective.frac_flow);
        assert_bits(&ctx, "int_flow", resumed.objective.int_flow, full.objective.int_flow);
        assert_bits(&ctx, "makespan", resumed.makespan, full.makespan);

        // Audit verdict parity: the resumed run passes the same checks.
        // Pre-kill completions come from the recorded prefix, exactly as
        // `resume` copies them into the new trace before continuing.
        let merged = RunTrace {
            completions: full.completions[..*emitted]
                .iter()
                .chain(&resumed.completions)
                .copied()
                .collect(),
            segments: resumed.segments,
            objective: resumed.objective,
            makespan: resumed.makespan,
            checkpoints: Vec::new(),
        };
        let resumed_audit = audit_verdicts(jobs, law, &merged);
        assert_eq!(resumed_audit, full_audit, "{ctx}: audit verdicts diverged");
    }
}

#[test]
fn c_stream_kill_resume_is_bitwise_deterministic() {
    for alpha in ALPHAS {
        let law = PowerLaw::new(alpha).unwrap();
        for (name, _, jobs) in suites() {
            let full = full_c(&jobs, law);
            assert_eq!(full.checkpoints.len(), jobs.len());
            oracle(&format!("C/{name}"), &jobs, law, full, resume_c);
        }
    }
}

#[test]
fn nc_stream_kill_resume_is_bitwise_deterministic() {
    for alpha in ALPHAS {
        let law = PowerLaw::new(alpha).unwrap();
        for (name, uniform, jobs) in suites() {
            if !uniform {
                continue; // NC's streaming core is the uniform-density algorithm
            }
            let full = full_nc(&jobs, law);
            oracle(&format!("NC/{name}"), &jobs, law, full, resume_nc);
        }
    }
}
