//! Integration tests for the offline-optimum machinery: the dual bound must
//! certify, the primal must be feasible, and Theorem 1 (Algorithm C is
//! 2-competitive) must hold against the solver on random instances.

use ncss::prelude::*;
use ncss::sim::numeric::approx_eq;
use ncss_rng::props::*;

fn small_instance() -> impl Strategy<Value = Instance> {
    ncss_rng::collection::vec((0.0f64..3.0, 0.1f64..2.0, 0.2f64..5.0), 1..6).prop_map(|jobs| {
        Instance::new(jobs.into_iter().map(|(r, v, d)| Job::new(r, v, d)).collect())
            .expect("valid jobs")
    })
}

fn quick() -> SolverOptions {
    SolverOptions { steps: 400, max_iters: 250, ..Default::default() }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn dual_below_primal(inst in small_instance()) {
        let law = PowerLaw::new(2.5).unwrap();
        let sol = solve_fractional_opt(&inst, law, quick()).unwrap();
        prop_assert!(sol.dual_bound <= sol.primal_cost * (1.0 + 1e-9),
            "dual {} primal {}", sol.dual_bound, sol.primal_cost);
        prop_assert!(sol.dual_bound >= 0.0);
    }

    #[test]
    fn theorem1_two_competitive(inst in small_instance()) {
        let law = PowerLaw::new(2.5).unwrap();
        let c = run_c(&inst, law).unwrap().objective.fractional();
        let sol = solve_fractional_opt(&inst, law, quick()).unwrap();
        // C is at least OPT (certified from below) and at most 2 OPT
        // (checked against the feasible primal upper bound).
        prop_assert!(c >= sol.dual_bound * (1.0 - 1e-9));
        prop_assert!(c <= 2.0 * sol.primal_cost * (1.0 + 1e-6),
            "C {c} vs 2*primal {}", 2.0 * sol.primal_cost);
    }

    #[test]
    fn nc_within_paper_bound_vs_dual(inst in small_instance()) {
        // Theorem 5 for the uniform case, randomised (project densities to
        // a common value first).
        let rho = inst.job(0).density;
        let uni = Instance::new(
            inst.jobs().iter().map(|j| Job::new(j.release, j.volume, rho)).collect()
        ).unwrap();
        let law = PowerLaw::new(3.0).unwrap();
        let nc = run_nc_uniform(&uni, law).unwrap().objective.fractional();
        let sol = solve_fractional_opt(&uni, law, quick()).unwrap();
        let bound = ncss::core::theory::nc_uniform_fractional_bound(3.0);
        // 12% slack absorbs the duality + discretisation gap.
        prop_assert!(nc <= bound * sol.dual_bound.max(1e-12) * 1.12,
            "NC {nc}, dual {}, bound {bound}", sol.dual_bound);
    }
}

#[test]
fn closed_form_identities_across_alpha() {
    for alpha in [1.3, 1.5, 2.0, 2.7, 3.0, 5.0] {
        let law = PowerLaw::new(alpha).unwrap();
        let opt = single_job_opt(law, 2.0, 3.0).unwrap();
        // Flow = (alpha-1) * energy and total = alpha * energy.
        assert!(approx_eq(opt.frac_flow, (alpha - 1.0) * opt.energy, 1e-10));
        assert!(approx_eq(opt.cost(), alpha * opt.energy, 1e-10));
    }
}

#[test]
fn solver_converges_to_closed_form_with_refinement() {
    // The primal-dual bracket must tighten around the closed form as the
    // grid refines.
    let law = PowerLaw::new(2.0).unwrap();
    let inst = Instance::new(vec![Job::unit_density(0.0, 1.0)]).unwrap();
    let exact = single_job_opt(law, 1.0, 1.0).unwrap().cost();
    let mut last_gap = f64::INFINITY;
    for steps in [100, 400, 1600] {
        let sol = solve_fractional_opt(
            &inst,
            law,
            SolverOptions { steps, max_iters: 600, ..Default::default() },
        )
        .unwrap();
        assert!(sol.dual_bound <= exact * (1.0 + 1e-9));
        let gap = sol.gap();
        assert!(gap <= last_gap * 1.5 + 1e-4, "gap did not shrink: {gap} vs {last_gap}");
        last_gap = gap;
    }
    assert!(last_gap < 0.02, "final gap {last_gap}");
}

#[test]
fn lower_bound_survives_extreme_density_spread() {
    let law = PowerLaw::new(3.0).unwrap();
    let inst = Instance::new(vec![
        Job::new(0.0, 1.0, 0.01),
        Job::new(0.1, 0.01, 100.0),
    ])
    .unwrap();
    let sol = solve_fractional_opt(&inst, law, quick()).unwrap();
    let c = run_c(&inst, law).unwrap().objective.fractional();
    assert!(sol.dual_bound > 0.0);
    assert!(c >= sol.dual_bound * (1.0 - 1e-9));
}

#[test]
fn closed_form_schedule_passes_the_audit_across_alphas() {
    // The closed-form optimum now emits a real `Schedule` (one exact Decay
    // segment). Route it through the independent auditor: the quadrature
    // re-derivation must agree with the closed-form numbers to < 1e-7 for
    // every power law and job shape.
    for alpha in [1.5, 2.0, 2.5, 3.0, 4.0] {
        let law = PowerLaw::new(alpha).unwrap();
        for (rho, volume, release) in
            [(1.0, 1.0, 0.0), (0.3, 2.5, 1.7), (4.0, 0.2, 0.5), (0.05, 7.0, 3.2)]
        {
            let opt = single_job_opt(law, rho, volume).unwrap();
            let inst = Instance::single(Job::new(release, volume, rho)).unwrap();
            let sched = opt.to_schedule(law, release).unwrap();
            let report = audit_run(&inst, &sched, &opt.evaluated(release));
            assert!(report.passed(), "alpha={alpha} rho={rho} V={volume}:\n{report}");
            assert!(
                report.max_residual() < 1e-7,
                "alpha={alpha} rho={rho} V={volume}: residual {}",
                report.max_residual()
            );
        }
    }
}

#[test]
fn yds_execution_passes_the_audit_and_meets_deadlines() {
    // The YDS profile's EDF execution produces a per-job `Schedule`; the
    // auditor must certify it against the execution's own reported numbers,
    // its energy must match the YDS closed form, and no deadline may slip.
    let jobs = vec![
        DeadlineJob { release: 0.0, deadline: 6.0, volume: 2.0 },
        DeadlineJob { release: 1.0, deadline: 3.0, volume: 1.5 },
        DeadlineJob { release: 4.0, deadline: 9.0, volume: 1.0 },
        DeadlineJob { release: 4.5, deadline: 5.5, volume: 0.8 },
    ];
    for alpha in [2.0, 3.0] {
        let law = PowerLaw::new(alpha).unwrap();
        let sched = yds(&jobs, law).unwrap();
        let exec = yds_execution(&jobs, &sched, law).unwrap();
        let report = audit_run(&exec.instance, &exec.schedule, &exec.evaluated);
        assert!(report.passed(), "alpha={alpha}:\n{report}");
        assert!(report.max_residual() < 1e-7, "alpha={alpha}: residual {}", report.max_residual());
        for (j, completion) in exec.evaluated.per_job.completion.iter().enumerate() {
            assert!(
                *completion <= exec.deadlines[j] + 1e-7,
                "alpha={alpha}: job {j} completed {completion} after deadline {}",
                exec.deadlines[j]
            );
        }
        assert!(
            approx_eq(exec.evaluated.objective.energy, sched.energy, 1e-9),
            "alpha={alpha}: execution energy {} vs YDS energy {}",
            exec.evaluated.objective.energy,
            sched.energy
        );
    }
}
