//! Property tests for the general-power-function runs and the
//! speed-bounded variants.

use ncss::core::generic_runs::{generic_rearrangement_distance, run_c_generic, run_nc_uniform_generic};
use ncss::core::{run_c_bounded, run_nc_uniform_bounded};
use ncss::prelude::*;
use ncss::sim::generic::PolyPower;
use ncss::sim::numeric::rel_diff;
use ncss_rng::props::*;

fn uniform_instance() -> impl Strategy<Value = Instance> {
    ncss_rng::collection::vec((0.0f64..4.0, 0.1f64..3.0), 1..6).prop_map(|jobs| {
        Instance::new(jobs.into_iter().map(|(r, v)| Job::unit_density(r, v)).collect())
            .expect("valid jobs")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn generic_lemma3_holds_for_mixed_power(inst in uniform_instance()) {
        let pf = PolyPower::new(vec![(1.0, 3.0), (0.4, 1.8)]).unwrap();
        let c = run_c_generic(&inst, &pf).unwrap();
        let nc = run_nc_uniform_generic(&inst, &pf).unwrap();
        prop_assert!(
            rel_diff(c.objective.energy, nc.objective.energy) < 1e-4,
            "C {} vs NC {}", c.objective.energy, nc.objective.energy
        );
    }

    #[test]
    fn generic_lemma6_holds_for_mixed_power(inst in uniform_instance()) {
        let pf = PolyPower::new(vec![(0.7, 2.5), (0.3, 4.0)]).unwrap();
        let c = run_c_generic(&inst, &pf).unwrap();
        let nc = run_nc_uniform_generic(&inst, &pf).unwrap();
        let d = generic_rearrangement_distance(&pf, &c, &nc, 48);
        prop_assert!(d < 1e-3 * (1.0 + nc.makespan()), "distance {d}");
    }

    #[test]
    fn bounded_runs_complete_and_respect_cap(inst in uniform_instance(), cap in 0.4f64..4.0) {
        let law = PowerLaw::new(2.5).unwrap();
        let (sched_c, ev_c) = run_c_bounded(&inst, law, cap).unwrap();
        let (sched_nc, ev_nc) = run_nc_uniform_bounded(&inst, law, cap).unwrap();
        prop_assert!(sched_c.max_speed() <= cap + 1e-9);
        prop_assert!(sched_nc.max_speed() <= cap + 1e-9);
        for ev in [&ev_c, &ev_nc] {
            for c in &ev.per_job.completion {
                prop_assert!(c.is_finite());
            }
            prop_assert!(ev.objective.fractional() > 0.0);
        }
    }

    #[test]
    fn bounded_cost_dominates_unbounded(inst in uniform_instance(), cap in 0.4f64..2.0) {
        // A cap can only restrict the feasible speed set, so the capped
        // algorithm's flow-time cannot drop below the unbounded run's.
        let law = PowerLaw::new(3.0).unwrap();
        let unbounded = run_c(&inst, law).unwrap();
        let (_, capped) = run_c_bounded(&inst, law, cap).unwrap();
        prop_assert!(capped.objective.frac_flow >= unbounded.objective.frac_flow * (1.0 - 1e-9));
    }
}

#[test]
fn generic_single_term_agrees_with_closed_forms_end_to_end() {
    // Cross-validation across the whole pipeline: a single-term PolyPower
    // must reproduce the exact runs on a nontrivial instance.
    let law = PowerLaw::new(2.2).unwrap();
    let pf = PolyPower::from_power_law(law);
    let inst = Instance::new(vec![
        Job::unit_density(0.0, 1.0),
        Job::unit_density(0.5, 2.0),
        Job::unit_density(0.6, 0.3),
        Job::unit_density(4.0, 1.1),
    ])
    .unwrap();
    let exact_c = run_c(&inst, law).unwrap();
    let gen_c = run_c_generic(&inst, &pf).unwrap();
    assert!(rel_diff(exact_c.objective.fractional(), gen_c.objective.fractional()) < 1e-5);
    let exact_nc = run_nc_uniform(&inst, law).unwrap();
    let gen_nc = run_nc_uniform_generic(&inst, &pf).unwrap();
    assert!(rel_diff(exact_nc.objective.fractional(), gen_nc.objective.fractional()) < 1e-5);
}

#[test]
fn loose_cap_interpolates_to_unbounded() {
    let law = PowerLaw::new(3.0).unwrap();
    let inst = Instance::new(vec![Job::unit_density(0.0, 2.0), Job::unit_density(0.4, 1.0)]).unwrap();
    let unbounded = run_nc_uniform(&inst, law).unwrap().objective.fractional();
    let mut last = f64::INFINITY;
    for cap in [0.8, 1.2, 2.0, 8.0] {
        let (_, ev) = run_nc_uniform_bounded(&inst, law, cap).unwrap();
        let cost = ev.objective.fractional();
        // Fractional cost decreases monotonically toward the unbounded
        // value as the cap loosens... not guaranteed in general for the
        // *total* (energy rises with speed), so check the flow component.
        assert!(ev.objective.frac_flow <= last * (1.0 + 1e-9));
        last = ev.objective.frac_flow;
        if cap >= 8.0 {
            assert!(rel_diff(cost, unbounded) < 1e-6);
        }
    }
}
