//! Byte-level robustness contract of the trace WAL (DESIGN.md §10).
//!
//! Two sweeps over a real recorded trace:
//!
//! * **Truncate at every byte** — a crash can cut the file anywhere. For
//!   every prefix length, `recover_bytes` must either recover the longest
//!   valid frame prefix (accounting for every byte: `valid + dropped ==
//!   total`) or fail with a named `TraceError` — and never panic, never
//!   accept damaged bytes silently.
//! * **Seeded tampering** — every tamper kind × seed must surface a named
//!   `TraceError` from the strict reader. A tampered trace must never read
//!   as clean, because recovery-mode truncation is reserved for *tail*
//!   damage: CRC-valid-but-wrong frames in the interior are tampering, not
//!   tearing.

use ncss::core::{CStream, StreamConfig};
use ncss::sim::{Job, PowerLaw};
use ncss::trace::{
    read_bytes, recover_bytes, replay, tamper::apply, Algo, Checkpoint, Event, Recorder, Tamper,
    TraceHeader, TraceSummary,
};
use ncss_rng::{dist, Pcg64};

/// Record a complete, finalized C trace over `n` Poisson arrivals into a
/// byte buffer — the same event stream `ncss-cli record` writes.
fn recorded_trace(n: usize, seed: u64) -> Vec<u8> {
    let law = PowerLaw::new(2.5).unwrap();
    let header = TraceHeader::new(Algo::C, law.alpha(), seed, "wal robustness test");
    let mut rec = Recorder::new(Vec::new(), &header).expect("recorder");
    let mut rng = Pcg64::seed_from_u64(seed);
    let mut clock = 0.0;
    let mut stream = CStream::new(law, StreamConfig::streaming(64));
    let mut pending = Vec::new();
    for i in 0..n {
        clock += dist::poisson_gap(&mut rng, 1.5);
        let job = Job::unit_density(clock, dist::exponential(&mut rng, 1.0));
        rec.append(&Event::Release { id: i as u64, job }).unwrap();
        stream.offer(job, &mut |c: ncss::core::CCompletion| pending.push(c)).unwrap();
        for c in pending.drain(..) {
            rec.append(&Event::CompleteC {
                id: c.id as u64,
                completion: c.completion,
                frac_flow: c.frac_flow,
                int_flow: c.int_flow,
            })
            .unwrap();
        }
        for seg in stream.spill_mut().drain() {
            rec.append(&Event::Segment(seg)).unwrap();
        }
        if (i + 1) % 7 == 0 {
            rec.append(&Event::Checkpoint(Box::new(Checkpoint::C(stream.snapshot())))).unwrap();
        }
    }
    let summary = stream.finish(&mut |c| pending.push(c)).unwrap();
    for c in pending.drain(..) {
        rec.append(&Event::CompleteC {
            id: c.id as u64,
            completion: c.completion,
            frac_flow: c.frac_flow,
            int_flow: c.int_flow,
        })
        .unwrap();
    }
    for seg in stream.spill_mut().drain() {
        rec.append(&Event::Segment(seg)).unwrap();
    }
    rec.finalize(&TraceSummary {
        ingested: n as u64,
        completed: summary.completed as u64,
        makespan: summary.makespan,
        energy: summary.objective.energy,
        frac_flow: summary.objective.frac_flow,
        int_flow: summary.objective.int_flow,
    })
    .expect("finalize")
}

#[test]
fn clean_trace_reads_and_replays() {
    let bytes = recorded_trace(25, 3);
    let trace = read_bytes(&bytes).expect("clean trace reads strictly");
    assert!(trace.finalized());
    let report = replay(&trace).expect("clean trace replays bitwise");
    assert_eq!(report.jobs.len(), 25);
    assert!(report.checkpoints_verified >= 3);
    // Recovery mode on a clean trace: nothing dropped, no damage.
    let rec = recover_bytes(&bytes).expect("clean trace recovers");
    assert_eq!(rec.dropped_bytes, 0);
    assert!(rec.damage.is_none());
    assert_eq!(rec.valid_bytes, bytes.len() as u64);
}

#[test]
fn truncation_at_every_byte_never_panics_and_accounts_for_every_byte() {
    let bytes = recorded_trace(12, 5);
    let total = bytes.len();
    let mut recovered = 0usize;
    for cut in 0..total {
        let prefix = &bytes[..cut];
        // Strict reading of any proper prefix must fail with a named error.
        let strict = read_bytes(prefix);
        assert!(strict.is_err(), "cut {cut}: strict read accepted a truncated trace");
        let name = strict.unwrap_err().name();
        assert!(!name.is_empty(), "cut {cut}: error has no name");

        // Recovery either keeps a valid prefix (every byte accounted for)
        // or names why nothing is recoverable — never panics.
        match recover_bytes(prefix) {
            Ok(rec) => {
                recovered += 1;
                assert_eq!(
                    rec.valid_bytes + rec.dropped_bytes,
                    cut as u64,
                    "cut {cut}: recovery lost track of bytes"
                );
                assert!(
                    rec.dropped_bytes == 0 || rec.damage.is_some(),
                    "cut {cut}: dropped bytes without naming the damage"
                );
                // The kept prefix must itself re-read cleanly in recovery
                // mode: recovery output is a fixed point.
                let again = recover_bytes(&prefix[..rec.valid_bytes as usize])
                    .expect("recovered prefix re-recovers");
                assert_eq!(again.dropped_bytes, 0, "cut {cut}: recovery not idempotent");
            }
            Err(e) => {
                // Only cuts inside magic + header can be unrecoverable.
                assert!(!e.name().is_empty());
            }
        }
    }
    // Sanity: most cuts land after the header, so recovery mostly works.
    assert!(recovered > total / 2, "recovery succeeded only {recovered}/{total} times");
}

#[test]
fn every_tamper_kind_and_seed_yields_a_named_error_never_silence() {
    let bytes = recorded_trace(20, 11);
    assert!(read_bytes(&bytes).is_ok());
    assert_eq!(Tamper::ALL.len(), 6, "contract covers six tamper kinds");
    for kind in Tamper::ALL {
        let mut detected = 0usize;
        for seed in 1..=10u64 {
            let bad = apply(&bytes, kind, seed)
                .unwrap_or_else(|e| panic!("{}: tamperer refused: {e}", kind.name()));
            assert_ne!(bad, bytes, "{} seed {seed}: tamper was a no-op", kind.name());
            match read_bytes(&bad) {
                Ok(_) => panic!("{} seed {seed}: tampered trace read as clean", kind.name()),
                Err(e) => {
                    assert!(!e.name().is_empty(), "{} seed {seed}: unnamed error", kind.name());
                    assert!(
                        !e.to_string().is_empty(),
                        "{} seed {seed}: empty diagnostic",
                        kind.name()
                    );
                    detected += 1;
                }
            }
        }
        assert_eq!(detected, 10, "{}: every seed must be caught", kind.name());
    }
}

#[test]
fn tamperer_is_deterministic_per_seed() {
    let bytes = recorded_trace(10, 13);
    for kind in Tamper::ALL {
        let a = apply(&bytes, kind, 42).unwrap();
        let b = apply(&bytes, kind, 42).unwrap();
        assert_eq!(a, b, "{}: same seed must corrupt identically", kind.name());
    }
}

#[test]
fn torn_tail_recovery_keeps_checkpoints_usable() {
    let bytes = recorded_trace(21, 17);
    // Cut mid-file at an arbitrary byte past the first checkpoint frame and
    // append garbage shorter than a frame header, as a crashed appender
    // would leave it.
    let cut = bytes.len() * 2 / 3;
    let mut torn = bytes[..cut].to_vec();
    torn.extend_from_slice(&[0xAB, 0xCD, 0xEF]);
    let rec = recover_bytes(&torn).expect("torn tail recovers");
    assert!(rec.dropped_bytes > 0);
    assert!(rec.damage.is_some(), "tail damage must be named");
    assert!(!rec.trace.finalized(), "a torn trace cannot be finalized");
    if let Some((_, cp)) = rec.trace.last_checkpoint() {
        // The surviving checkpoint restores a live stream.
        match cp {
            Checkpoint::C(snap) => {
                let stream = CStream::from_snapshot(snap.clone()).expect("restorable");
                assert_eq!(stream.stats().ingested, cp.ingested());
            }
            Checkpoint::Nc(_) => unreachable!("C trace"),
        }
    }
}
