//! Property tests for the online information-firewall driver: the
//! firewalled policies must reproduce their direct simulations on
//! arbitrary instances — the executable proof of non-clairvoyance.

use ncss::core::baselines::run_active_count;
use ncss::core::driver::{run_online, ActiveCountPolicy, Decision, NcUniformPolicy, NcView, NonClairvoyantPolicy};
use ncss::prelude::*;
use ncss::sim::numeric::rel_diff;
use ncss::sim::SpeedLaw;
use ncss_rng::props::*;

fn uniform_instance() -> impl Strategy<Value = Instance> {
    ncss_rng::collection::vec((0.0f64..5.0, 0.05f64..3.0), 1..10).prop_map(|jobs| {
        Instance::new(jobs.into_iter().map(|(r, v)| Job::unit_density(r, v)).collect())
            .expect("valid jobs")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn firewalled_nc_equals_direct(inst in uniform_instance(), alpha in 1.5f64..4.0) {
        let law = PowerLaw::new(alpha).unwrap();
        let direct = run_nc_uniform(&inst, law).unwrap();
        let (_, online) = run_online(&inst, law, &mut NcUniformPolicy).unwrap();
        prop_assert!(
            rel_diff(online.objective.fractional(), direct.objective.fractional()) < 1e-6,
            "online {} vs direct {}",
            online.objective.fractional(),
            direct.objective.fractional()
        );
        prop_assert!(
            rel_diff(online.objective.int_flow, direct.objective.int_flow) < 1e-6
        );
    }

    #[test]
    fn firewalled_active_count_equals_direct(inst in uniform_instance()) {
        let law = PowerLaw::new(2.0).unwrap();
        let direct = run_active_count(&inst, law).unwrap();
        let (_, online) = run_online(&inst, law, &mut ActiveCountPolicy).unwrap();
        prop_assert!(rel_diff(online.objective.fractional(), direct.objective.fractional()) < 1e-6);
    }
}

/// A policy that deliberately works only from the view and keeps its own
/// event log; the log must never contain a volume of an *incomplete* job.
struct Auditor {
    inner: NcUniformPolicy,
    observed_volumes: Vec<(usize, f64)>,
}

impl NonClairvoyantPolicy for Auditor {
    fn decide(&mut self, view: &NcView<'_>) -> Decision {
        for r in view.released {
            if let Some(v) = view.revealed_volume[r.id] {
                self.observed_volumes.push((r.id, v));
            }
        }
        self.inner.decide(view)
    }
    fn name(&self) -> &'static str {
        "auditor"
    }
}

#[test]
fn volumes_revealed_only_at_completion() {
    let inst = Instance::new(vec![
        Job::unit_density(0.0, 2.0),
        Job::unit_density(0.1, 1.0),
        Job::unit_density(3.0, 0.4),
    ])
    .unwrap();
    let law = PowerLaw::new(2.0).unwrap();
    let mut auditor = Auditor { inner: NcUniformPolicy, observed_volumes: Vec::new() };
    let (_, ev) = run_online(&inst, law, &mut auditor).unwrap();
    // Every observation of (job, volume) must match the true volume (no
    // fabrication) — and the driver only populates it after completion, so
    // an observation implies the job had already finished at some event.
    for (id, v) in &auditor.observed_volumes {
        assert_eq!(*v, inst.job(*id).volume);
        assert!(ev.per_job.completion[*id].is_finite());
    }
    // The first decision happens before anything completed: the auditor
    // saw nothing then (job 0 completes strictly after its service began).
    assert!(auditor.observed_volumes.iter().all(|(id, _)| *id < inst.len()));
}

/// An adversarially lazy-but-legal policy: serves the FIFO head at a tiny
/// constant speed. The driver must still terminate and charge the huge
/// flow-time honestly.
struct Slowpoke;

impl NonClairvoyantPolicy for Slowpoke {
    fn decide(&mut self, view: &NcView<'_>) -> Decision {
        Decision { job: view.active().first().copied(), law: SpeedLaw::Constant { speed: 0.05 } }
    }
    fn name(&self) -> &'static str {
        "slowpoke"
    }
}

#[test]
fn slow_policies_pay_in_flow_time() {
    let inst = Instance::new(vec![Job::unit_density(0.0, 1.0), Job::unit_density(0.1, 1.0)]).unwrap();
    let law = PowerLaw::new(2.0).unwrap();
    let (_, slow) = run_online(&inst, law, &mut Slowpoke).unwrap();
    let (_, good) = run_online(&inst, law, &mut NcUniformPolicy).unwrap();
    assert!(slow.objective.frac_flow > 5.0 * good.objective.frac_flow);
}
