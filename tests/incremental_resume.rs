//! Kill/resume oracle for the **incremental auditor** (DESIGN.md §11).
//!
//! The streaming kill/resume oracle (`checkpoint_determinism.rs`) proves the
//! scheduler cores restore bitwise; this suite attaches an
//! [`IncrementalAudit`] to the stream and proves the *auditor* does too. For
//! every workload suite × α × core, run to completion with the auditor fed
//! after every offer, snapshotting both the stream and the auditor each
//! time. Then for every kill index k: round-trip the stream checkpoint
//! through the trace codec as an [`Event::Checkpoint`] frame and the auditor
//! snapshot as an [`Event::Audit`] frame — the same bytes a `.nct` file
//! carries — restore both, feed the remaining jobs, and require the resumed
//! final report to be **bitwise identical** to the uninterrupted one: same
//! check names in the same order, same verdicts, same residual bits, same
//! detail text.

use ncss::audit::{AuditConfig, AuditReport, IncrementalAudit, IncrementalSnapshot};
use ncss::core::{CStream, NcStream, StreamConfig};
use ncss::sim::{Job, PowerLaw, SpillRing};
use ncss::trace::format::{decode_event, encode_event};
use ncss::trace::{Checkpoint, Event};
use ncss::workloads::{DensityDist, VolumeDist, WorkloadSpec};

const ALPHAS: [f64; 2] = [2.0, 2.75];

/// (name, uniform-density?, jobs) — release-ordered workload suites,
/// mirroring the checkpoint-determinism oracle's shapes at a
/// resume-friendly size. The NC core only accepts unit-density jobs.
fn suites() -> Vec<(&'static str, bool, Vec<Job>)> {
    let uniform = WorkloadSpec::uniform(14, 1.2, VolumeDist::Uniform { lo: 0.3, hi: 1.8 })
        .generate(41)
        .expect("uniform suite")
        .jobs()
        .to_vec();
    let mut spec = WorkloadSpec::uniform(12, 0.9, VolumeDist::Exponential { mean: 1.0 });
    spec.densities = DensityDist::LogUniform { lo: 0.25, hi: 4.0 };
    let nonuniform = spec.generate(43).expect("nonuniform suite").jobs().to_vec();
    let tiny = vec![
        Job::unit_density(0.0, 2.0),
        Job::unit_density(0.4, 1.0),
        Job::unit_density(1.1, 0.5),
    ];
    vec![("uniform", true, uniform), ("nonuniform", false, nonuniform), ("tiny", true, tiny)]
}

/// Drain retired segments and buffered completions into the auditor — the
/// same feeding contract the `stream` CLI uses. Verdicts are deferred to
/// `finalize` here; the oracle compares full reports, not eager trips.
fn feed(
    audit: &mut IncrementalAudit,
    ring: &mut SpillRing,
    buf: &mut Vec<(usize, f64, f64, f64)>,
) {
    for seg in ring.drain() {
        let _ = audit.on_segment(seg);
    }
    for (id, completion, frac, int) in buf.drain(..) {
        let _ = audit.on_complete(id, completion, frac, int);
    }
}

/// Round-trip a stream checkpoint and an auditor snapshot through the trace
/// event codec — the exact frames a recorded `.nct` checkpoint carries.
fn roundtrip(cp: Checkpoint, snap: IncrementalSnapshot) -> (Checkpoint, IncrementalSnapshot) {
    let (kind, payload) = encode_event(0, &Event::Checkpoint(Box::new(cp)));
    let cp = match decode_event(kind, &payload).expect("checkpoint frame decodes") {
        (_, Event::Checkpoint(cp)) => *cp,
        other => panic!("checkpoint round-trip produced {other:?}"),
    };
    let (kind, payload) = encode_event(1, &Event::Audit(Box::new(snap)));
    let snap = match decode_event(kind, &payload).expect("audit frame decodes") {
        (_, Event::Audit(snap)) => *snap,
        other => panic!("audit round-trip produced {other:?}"),
    };
    (cp, snap)
}

/// One audited run: the final report plus, for the full run, the paired
/// (stream checkpoint, auditor snapshot) taken after every offer.
struct AuditedRun {
    report: AuditReport,
    checkpoints: Vec<(Checkpoint, IncrementalSnapshot)>,
}

fn full_c(jobs: &[Job], law: PowerLaw) -> AuditedRun {
    let mut stream = CStream::new(law, StreamConfig::batch());
    let mut audit = IncrementalAudit::new(law, AuditConfig::default());
    let mut buf = Vec::new();
    let mut checkpoints = Vec::new();
    for (id, &job) in jobs.iter().enumerate() {
        audit.on_release(id, job);
        stream
            .offer(job, &mut |c: ncss::core::CCompletion| {
                buf.push((c.id, c.completion, c.frac_flow, c.int_flow));
            })
            .expect("offer");
        feed(&mut audit, stream.spill_mut(), &mut buf);
        checkpoints.push((Checkpoint::C(stream.snapshot()), audit.snapshot()));
    }
    let summary = stream
        .finish(&mut |c: ncss::core::CCompletion| {
            buf.push((c.id, c.completion, c.frac_flow, c.int_flow));
        })
        .expect("finish");
    feed(&mut audit, stream.spill_mut(), &mut buf);
    AuditedRun { report: audit.finalize(&summary.objective), checkpoints }
}

fn resume_c(cp: Checkpoint, snap: IncrementalSnapshot, jobs: &[Job], law: PowerLaw) -> AuditReport {
    let (cp, snap) = roundtrip(cp, snap);
    let Checkpoint::C(stream_snap) = cp else { panic!("wrong checkpoint algo") };
    let skip = stream_snap.ingested;
    let mut stream = CStream::from_snapshot(stream_snap).expect("restore stream");
    let mut audit = IncrementalAudit::from_snapshot(snap).expect("restore auditor");
    let _ = law;
    let mut buf = Vec::new();
    for (id, &job) in jobs.iter().enumerate().skip(skip) {
        audit.on_release(id, job);
        stream
            .offer(job, &mut |c: ncss::core::CCompletion| {
                buf.push((c.id, c.completion, c.frac_flow, c.int_flow));
            })
            .expect("resumed offer");
        feed(&mut audit, stream.spill_mut(), &mut buf);
    }
    let summary = stream
        .finish(&mut |c: ncss::core::CCompletion| {
            buf.push((c.id, c.completion, c.frac_flow, c.int_flow));
        })
        .expect("resumed finish");
    feed(&mut audit, stream.spill_mut(), &mut buf);
    audit.finalize(&summary.objective)
}

fn full_nc(jobs: &[Job], law: PowerLaw) -> AuditedRun {
    let mut stream = NcStream::new(law, StreamConfig::batch());
    let mut audit = IncrementalAudit::new(law, AuditConfig::default());
    let mut buf = Vec::new();
    let mut checkpoints = Vec::new();
    for (id, &job) in jobs.iter().enumerate() {
        audit.on_release(id, job);
        stream
            .offer(job, &mut |c: ncss::core::NcCompletion| {
                buf.push((c.id, c.completion, c.frac_flow, c.int_flow));
            })
            .expect("offer");
        feed(&mut audit, stream.spill_mut(), &mut buf);
        checkpoints.push((Checkpoint::Nc(stream.snapshot()), audit.snapshot()));
    }
    let summary = stream.finish().expect("finish");
    feed(&mut audit, stream.spill_mut(), &mut buf);
    AuditedRun { report: audit.finalize(&summary.objective), checkpoints }
}

fn resume_nc(
    cp: Checkpoint,
    snap: IncrementalSnapshot,
    jobs: &[Job],
    law: PowerLaw,
) -> AuditReport {
    let (cp, snap) = roundtrip(cp, snap);
    let Checkpoint::Nc(stream_snap) = cp else { panic!("wrong checkpoint algo") };
    let skip = stream_snap.ingested;
    let mut stream = NcStream::from_snapshot(stream_snap).expect("restore stream");
    let mut audit = IncrementalAudit::from_snapshot(snap).expect("restore auditor");
    let _ = law;
    let mut buf = Vec::new();
    for (id, &job) in jobs.iter().enumerate().skip(skip) {
        audit.on_release(id, job);
        stream
            .offer(job, &mut |c: ncss::core::NcCompletion| {
                buf.push((c.id, c.completion, c.frac_flow, c.int_flow));
            })
            .expect("resumed offer");
        feed(&mut audit, stream.spill_mut(), &mut buf);
    }
    let summary = stream.finish().expect("resumed finish");
    feed(&mut audit, stream.spill_mut(), &mut buf);
    audit.finalize(&summary.objective)
}

/// Bitwise report equality: names, order, verdicts, residual bits, detail.
fn assert_reports_bitwise(full: &AuditReport, resumed: &AuditReport, ctx: &str) {
    assert_eq!(full.checks.len(), resumed.checks.len(), "{ctx}: check count");
    for (f, r) in full.checks.iter().zip(&resumed.checks) {
        assert_eq!(f.name, r.name, "{ctx}: check order");
        assert_eq!(f.passed, r.passed, "{ctx}: {} verdict", f.name);
        assert_eq!(
            f.residual.to_bits(),
            r.residual.to_bits(),
            "{ctx}: {} residual {:e} vs {:e}",
            f.name,
            f.residual,
            r.residual
        );
        assert_eq!(f.detail, r.detail, "{ctx}: {} detail", f.name);
    }
}

/// The oracle: kill at every offer index, resume stream + auditor from the
/// codec-round-tripped frames, demand a bitwise-identical final report.
fn oracle(
    name: &str,
    jobs: &[Job],
    law: PowerLaw,
    full: AuditedRun,
    resume: impl Fn(Checkpoint, IncrementalSnapshot, &[Job], PowerLaw) -> AuditReport,
) {
    assert!(
        full.report.passed(),
        "{name} α={}: honest audited run failed:\n{}",
        law.alpha(),
        full.report.render()
    );
    for (k, (cp, snap)) in full.checkpoints.iter().enumerate() {
        let ctx = format!("{name} α={} kill@{k}", law.alpha());
        assert_eq!(snap.released, (k + 1) as u64, "{ctx}: auditor release count");
        let resumed = resume(cp.clone(), snap.clone(), jobs, law);
        assert_reports_bitwise(&full.report, &resumed, &ctx);
    }
}

#[test]
fn c_stream_audit_survives_kill_at_every_offer() {
    for alpha in ALPHAS {
        let law = PowerLaw::new(alpha).expect("valid alpha");
        for (name, _, jobs) in suites() {
            oracle(name, &jobs, law, full_c(&jobs, law), resume_c);
        }
    }
}

#[test]
fn nc_stream_audit_survives_kill_at_every_offer() {
    for alpha in ALPHAS {
        let law = PowerLaw::new(alpha).expect("valid alpha");
        for (name, uniform, jobs) in suites() {
            if !uniform {
                continue;
            }
            oracle(name, &jobs, law, full_nc(&jobs, law), resume_nc);
        }
    }
}
