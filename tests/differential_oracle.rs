//! Differential testing: the exact closed-form simulators must agree with
//! the naive fixed-step reference oracle to first order in the step size.

use ncss::prelude::*;
use ncss::sim::numeric::rel_diff;
use ncss::sim::validate::reference_run;

fn sample_instance() -> Instance {
    Instance::new(vec![
        Job::unit_density(0.0, 1.0),
        Job::unit_density(0.3, 1.5),
        Job::unit_density(2.5, 0.6),
    ])
    .unwrap()
}

#[test]
fn algorithm_c_matches_euler_oracle() {
    // Re-express Algorithm C as a ground-truth policy: HDF with
    // P(s) = total remaining weight, recomputed every step.
    let law = PowerLaw::new(2.0).unwrap();
    let inst = sample_instance();
    let exact = run_c(&inst, law).unwrap();
    let oracle = reference_run(&inst, law, 2e-5, 50_000_000, |state| {
        let mut best: Option<usize> = None;
        let mut total_w = 0.0;
        for (j, job) in state.instance.jobs().iter().enumerate() {
            if job.release <= state.time && state.remaining[j] > 0.0 {
                total_w += job.density * state.remaining[j];
                let better = match best {
                    None => true,
                    Some(b) => {
                        let (dj, db) = (job.density, state.instance.job(b).density);
                        dj > db || (dj == db && j < b)
                    }
                };
                if better {
                    best = Some(j);
                }
            }
        }
        best.map(|j| (j, law.speed_for_power(total_w)))
    })
    .expect("oracle run within step budget");
    assert!(
        rel_diff(oracle.objective.energy, exact.objective.energy) < 2e-3,
        "energy {} vs {}",
        oracle.objective.energy,
        exact.objective.energy
    );
    assert!(rel_diff(oracle.objective.frac_flow, exact.objective.frac_flow) < 2e-3);
    for j in 0..inst.len() {
        assert!(rel_diff(oracle.completion[j], exact.per_job.completion[j]) < 2e-3);
    }
}

#[test]
fn algorithm_nc_matches_euler_oracle() {
    // Algorithm NC as a policy: FIFO, P(s) = K_j + processed weight. The
    // oracle policy is allowed to read the exact K_j values from the
    // closed-form run — the differential target is the *dynamics*, not the
    // information model (tests/online_driver.rs covers that).
    let law = PowerLaw::new(2.0).unwrap();
    let inst = sample_instance();
    let exact = run_nc_uniform(&inst, law).unwrap();
    let base = exact.base_powers.clone();
    let volumes: Vec<f64> = inst.jobs().iter().map(|j| j.volume).collect();
    let oracle = reference_run(&inst, law, 2e-5, 50_000_000, |state| {
        // FIFO head among released, unfinished jobs.
        let j = (0..volumes.len())
            .find(|&j| state.instance.job(j).release <= state.time && state.remaining[j] > 0.0)?;
        let processed_weight = state.instance.job(j).density * (volumes[j] - state.remaining[j]);
        // Euler needs a kick off the u=0 fixed point, exactly like the
        // paper's ε bootstrap.
        let power = (base[j] + processed_weight).max(1e-9);
        Some((j, law.speed_for_power(power)))
    })
    .expect("oracle run within step budget");
    assert!(
        rel_diff(oracle.objective.energy, exact.objective.energy) < 5e-3,
        "energy {} vs {}",
        oracle.objective.energy,
        exact.objective.energy
    );
    assert!(rel_diff(oracle.objective.frac_flow, exact.objective.frac_flow) < 5e-3);
}

#[test]
fn oracle_confirms_lemma3_independently() {
    // Even the naive oracle sees the energy equality: run both policies at
    // the same resolution and compare their Riemann energies directly.
    let law = PowerLaw::new(2.0).unwrap();
    let inst = sample_instance();
    let exact_c = run_c(&inst, law).unwrap();
    let exact_nc = run_nc_uniform(&inst, law).unwrap();
    assert!(rel_diff(exact_c.objective.energy, exact_nc.objective.energy) < 1e-9);
}
