//! Differential testing: the exact closed-form simulators must agree with
//! the naive fixed-step reference oracle to first order in the step size.

use ncss::prelude::*;
use ncss::sim::numeric::rel_diff;
use ncss::sim::validate::reference_run;

fn sample_instance() -> Instance {
    Instance::new(vec![
        Job::unit_density(0.0, 1.0),
        Job::unit_density(0.3, 1.5),
        Job::unit_density(2.5, 0.6),
    ])
    .unwrap()
}

#[test]
fn algorithm_c_matches_euler_oracle() {
    // Re-express Algorithm C as a ground-truth policy: HDF with
    // P(s) = total remaining weight, recomputed every step.
    let law = PowerLaw::new(2.0).unwrap();
    let inst = sample_instance();
    let exact = run_c(&inst, law).unwrap();
    let oracle = reference_run(&inst, law, 2e-5, 50_000_000, |state| {
        let mut best: Option<usize> = None;
        let mut total_w = 0.0;
        for (j, job) in state.instance.jobs().iter().enumerate() {
            if job.release <= state.time && state.remaining[j] > 0.0 {
                total_w += job.density * state.remaining[j];
                let better = match best {
                    None => true,
                    Some(b) => {
                        let (dj, db) = (job.density, state.instance.job(b).density);
                        dj > db || (dj == db && j < b)
                    }
                };
                if better {
                    best = Some(j);
                }
            }
        }
        best.map(|j| (j, law.speed_for_power(total_w)))
    })
    .expect("oracle run within step budget");
    assert!(
        rel_diff(oracle.objective.energy, exact.objective.energy) < 2e-3,
        "energy {} vs {}",
        oracle.objective.energy,
        exact.objective.energy
    );
    assert!(rel_diff(oracle.objective.frac_flow, exact.objective.frac_flow) < 2e-3);
    for j in 0..inst.len() {
        assert!(rel_diff(oracle.completion[j], exact.per_job.completion[j]) < 2e-3);
    }
}

#[test]
fn algorithm_nc_matches_euler_oracle() {
    // Algorithm NC as a policy: FIFO, P(s) = K_j + processed weight. The
    // oracle policy is allowed to read the exact K_j values from the
    // closed-form run — the differential target is the *dynamics*, not the
    // information model (tests/online_driver.rs covers that).
    let law = PowerLaw::new(2.0).unwrap();
    let inst = sample_instance();
    let exact = run_nc_uniform(&inst, law).unwrap();
    let base = exact.base_powers.clone();
    let volumes: Vec<f64> = inst.jobs().iter().map(|j| j.volume).collect();
    let oracle = reference_run(&inst, law, 2e-5, 50_000_000, |state| {
        // FIFO head among released, unfinished jobs.
        let j = (0..volumes.len())
            .find(|&j| state.instance.job(j).release <= state.time && state.remaining[j] > 0.0)?;
        let processed_weight = state.instance.job(j).density * (volumes[j] - state.remaining[j]);
        // Euler needs a kick off the u=0 fixed point, exactly like the
        // paper's ε bootstrap.
        let power = (base[j] + processed_weight).max(1e-9);
        Some((j, law.speed_for_power(power)))
    })
    .expect("oracle run within step budget");
    assert!(
        rel_diff(oracle.objective.energy, exact.objective.energy) < 5e-3,
        "energy {} vs {}",
        oracle.objective.energy,
        exact.objective.energy
    );
    assert!(rel_diff(oracle.objective.frac_flow, exact.objective.frac_flow) < 5e-3);
}

#[test]
fn oracle_confirms_lemma3_independently() {
    // Even the naive oracle sees the energy equality: run both policies at
    // the same resolution and compare their Riemann energies directly.
    let law = PowerLaw::new(2.0).unwrap();
    let inst = sample_instance();
    let exact_c = run_c(&inst, law).unwrap();
    let exact_nc = run_nc_uniform(&inst, law).unwrap();
    assert!(rel_diff(exact_c.objective.energy, exact_nc.objective.energy) < 1e-9);
}

// ---------------------------------------------------------------------------
// Batch vs stream: the streaming core must be *bitwise* interchangeable
// with the batch runners over every workload family (DESIGN.md §9).
// ---------------------------------------------------------------------------

use ncss::core::streaming::{CStream, NcStream, StreamConfig};
use ncss::sim::{Evaluated, PerJob, ScheduleBuilder};
use ncss::workloads::suite::{nonuniform_suite, tiny_suite, uniform_suite};

/// Drive `CStream` in streaming mode (tiny spill ring, drained after every
/// offer) and return (objective, completions by job id).
fn stream_c(inst: &Instance, law: PowerLaw) -> (Objective, Vec<f64>, PerJob) {
    let n = inst.len();
    let mut per_job =
        PerJob { completion: vec![f64::NAN; n], frac_flow: vec![0.0; n], int_flow: vec![0.0; n] };
    let mut stream = CStream::new(law, StreamConfig::streaming(8));
    let mut order = Vec::new();
    let mut sink = |c: ncss::core::CCompletion| {
        order.push(c.completion);
        per_job.completion[c.id] = c.completion;
        per_job.frac_flow[c.id] = c.frac_flow;
        per_job.int_flow[c.id] = c.int_flow;
    };
    for job in inst.jobs() {
        stream.offer(*job, &mut sink).expect("offer");
        stream.spill_mut().drain().for_each(drop);
    }
    let summary = stream.finish(&mut sink).expect("finish");
    assert_eq!(order.len(), n, "stream must complete every job");
    (summary.objective, order, per_job)
}

/// Same for `NcStream` (uniform-density instances only).
fn stream_nc(inst: &Instance, law: PowerLaw) -> (Objective, Vec<f64>, PerJob) {
    let n = inst.len();
    let mut per_job =
        PerJob { completion: vec![f64::NAN; n], frac_flow: vec![0.0; n], int_flow: vec![0.0; n] };
    let mut stream = NcStream::new(law, StreamConfig::streaming(8));
    let mut order = Vec::new();
    for job in inst.jobs() {
        stream
            .offer(*job, &mut |c: ncss::core::NcCompletion| {
                order.push(c.completion);
                per_job.completion[c.id] = c.completion;
                per_job.frac_flow[c.id] = c.frac_flow;
                per_job.int_flow[c.id] = c.int_flow;
            })
            .expect("offer");
        stream.spill_mut().drain().for_each(drop);
    }
    let summary = stream.finish().expect("finish");
    assert_eq!(order.len(), n, "stream must complete every job");
    (summary.objective, order, per_job)
}

fn assert_bitwise(tag: &str, a: &Objective, b: &Objective) {
    assert_eq!(a.energy.to_bits(), b.energy.to_bits(), "{tag}: energy {} vs {}", a.energy, b.energy);
    assert_eq!(
        a.frac_flow.to_bits(),
        b.frac_flow.to_bits(),
        "{tag}: frac_flow {} vs {}",
        a.frac_flow,
        b.frac_flow
    );
    assert_eq!(
        a.int_flow.to_bits(),
        b.int_flow.to_bits(),
        "{tag}: int_flow {} vs {}",
        a.int_flow,
        b.int_flow
    );
}

/// Every workload family, both alphas: streamed Algorithm C must reproduce
/// the batch run bitwise — objectives, per-job curves, completion times.
#[test]
fn stream_c_is_bitwise_equal_to_batch_everywhere() {
    let mut suites = uniform_suite(5);
    suites.extend(nonuniform_suite(5));
    suites.extend(tiny_suite(9, true));
    suites.extend(tiny_suite(9, false));
    for alpha in [2.0, 3.0] {
        let law = PowerLaw::new(alpha).unwrap();
        for (i, inst) in suites.iter().enumerate() {
            let tag = format!("alpha {alpha}, instance {i} (n={})", inst.len());
            let batch = run_c(inst, law).expect("batch C");
            let (obj, _, per_job) = stream_c(inst, law);
            assert_bitwise(&tag, &obj, &batch.objective);
            for j in 0..inst.len() {
                assert_eq!(
                    per_job.completion[j].to_bits(),
                    batch.per_job.completion[j].to_bits(),
                    "{tag}: completion of job {j}"
                );
                assert_eq!(per_job.frac_flow[j].to_bits(), batch.per_job.frac_flow[j].to_bits());
                assert_eq!(per_job.int_flow[j].to_bits(), batch.per_job.int_flow[j].to_bits());
            }
        }
    }
}

/// Uniform-density families: streamed Algorithm NC must reproduce the batch
/// run bitwise.
#[test]
fn stream_nc_is_bitwise_equal_to_batch_on_uniform_suites() {
    let mut suites = uniform_suite(5);
    suites.extend(tiny_suite(9, true));
    for alpha in [2.0, 3.0] {
        let law = PowerLaw::new(alpha).unwrap();
        for (i, inst) in suites.iter().enumerate() {
            let tag = format!("alpha {alpha}, instance {i} (n={})", inst.len());
            let batch = run_nc_uniform(inst, law).expect("batch NC");
            let (obj, _, per_job) = stream_nc(inst, law);
            assert_bitwise(&tag, &obj, &batch.objective);
            for j in 0..inst.len() {
                assert_eq!(
                    per_job.completion[j].to_bits(),
                    batch.per_job.completion[j].to_bits(),
                    "{tag}: completion of job {j}"
                );
            }
        }
    }
}

/// The independent audit must return the same verdict for a schedule
/// rebuilt from the stream's spill ring as for the batch schedule.
#[test]
fn stream_audit_verdict_matches_batch_verdict() {
    let law = PowerLaw::cube();
    let mut suites = tiny_suite(9, true);
    suites.extend(nonuniform_suite(5).into_iter().take(4));
    let auditor = ScheduleAudit::new(AuditConfig::default());
    for (i, inst) in suites.iter().enumerate() {
        let batch = run_c(inst, law).expect("batch C");
        let batch_report = auditor.audit(
            inst,
            &batch.schedule,
            &Evaluated { objective: batch.objective, per_job: batch.per_job.clone() },
        );

        // Retained stream pass: keep every retired segment, rebuild.
        let n = inst.len();
        let mut per_job = PerJob {
            completion: vec![f64::NAN; n],
            frac_flow: vec![0.0; n],
            int_flow: vec![0.0; n],
        };
        let mut stream = CStream::new(law, StreamConfig::batch());
        let mut sink = |c: ncss::core::CCompletion| {
            per_job.completion[c.id] = c.completion;
            per_job.frac_flow[c.id] = c.frac_flow;
            per_job.int_flow[c.id] = c.int_flow;
        };
        for job in inst.jobs() {
            stream.offer(*job, &mut sink).expect("offer");
        }
        let summary = stream.finish(&mut sink).expect("finish");
        let mut builder = ScheduleBuilder::new(law);
        for seg in stream.spill_mut().drain() {
            builder.push(seg);
        }
        let schedule = builder.build().expect("rebuild schedule");
        let stream_report =
            auditor.audit(inst, &schedule, &Evaluated { objective: summary.objective, per_job });

        assert_eq!(
            stream_report.passed(),
            batch_report.passed(),
            "instance {i}: stream verdict {} vs batch verdict {}",
            stream_report.passed(),
            batch_report.passed()
        );
        assert!(stream_report.passed(), "instance {i}: streamed schedule failed audit");
    }
}

/// Both paths must reject a non-uniform instance identically for NC.
#[test]
fn stream_nc_rejects_nonuniform_like_batch() {
    let law = PowerLaw::cube();
    let inst = nonuniform_suite(5)
        .into_iter()
        .find(|i| !i.is_uniform_density())
        .expect("suite has a non-uniform instance");
    let batch = run_nc_uniform(&inst, law);
    assert!(matches!(batch, Err(SimError::NonUniformDensity)));
    let mut stream = NcStream::new(law, StreamConfig::batch());
    let mut err = None;
    for job in inst.jobs() {
        if let Err(e) = stream.offer(*job, &mut |_c: ncss::core::NcCompletion| {}) {
            err = Some(e);
            break;
        }
    }
    assert!(matches!(err, Some(SimError::NonUniformDensity)));
}
