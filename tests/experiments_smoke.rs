//! Smoke tests over the workload generators and the figure-style analyses
//! exposed through the facade: everything a downstream user would script
//! must hold together.

use ncss::core::baselines::{run_active_count, run_constant_speed, run_newest_first};
use ncss::core::current_instance::current_instance;
use ncss::core::preemption::preemption_intervals;
use ncss::prelude::*;
use ncss::workloads::suite::{nonuniform_suite, tiny_suite, uniform_suite};
use ncss::workloads::{geometric_density_chain, DensityDist};

#[test]
fn all_suites_run_through_all_single_machine_algorithms() {
    let law = PowerLaw::new(3.0).unwrap();
    for inst in uniform_suite(1).into_iter().take(10) {
        let c = run_c(&inst, law).unwrap();
        let nc = run_nc_uniform(&inst, law).unwrap();
        let ajc = run_active_count(&inst, law).unwrap();
        let lifo = run_newest_first(&inst, law).unwrap();
        let cs = run_constant_speed(&inst, law, 1.0).unwrap();
        for o in [c.objective, nc.objective, ajc.objective, lifo.objective, cs.objective] {
            assert!(o.fractional() > 0.0 && o.fractional().is_finite());
            assert!(o.integral() >= o.fractional() - 1e-9);
        }
        // The clairvoyant comparator is never beaten by the baselines on
        // fractional cost by more than its 2-competitiveness allows.
        assert!(c.objective.fractional() <= 2.0 * nc.objective.fractional() + 1e-9);
    }
}

#[test]
fn nonuniform_suite_runs_through_nonuniform_nc() {
    let alpha = 3.0;
    let law = PowerLaw::new(alpha).unwrap();
    let params = NonUniformParams { steps_per_job: 120, ..NonUniformParams::recommended(alpha) };
    for inst in nonuniform_suite(2).into_iter().filter(|i| i.len() <= 6).take(3) {
        let nc = run_nc_nonuniform(&inst, law, params).unwrap();
        let ev = evaluate(&nc.schedule, &inst).unwrap();
        assert!((ev.objective.fractional() - nc.objective.fractional()).abs()
            <= 1e-3 * nc.objective.fractional());
    }
}

#[test]
fn current_instance_and_preemption_tools_compose() {
    let law = PowerLaw::new(2.0).unwrap();
    let inst = tiny_suite(3, true).remove(2);
    let nc = run_nc_uniform(&inst, law).unwrap();
    let mid = nc.makespan() * 0.5;
    let (cur, ids) = current_instance(&inst, &nc.schedule, mid).unwrap();
    assert!(cur.len() <= inst.len());
    assert_eq!(cur.len(), ids.len());
    // I(T) total volume equals what NC processed by T.
    let processed: f64 = nc
        .schedule
        .segments()
        .iter()
        .filter(|s| s.start < mid)
        .map(|s| s.volume_to(law, mid.min(s.end)))
        .sum();
    assert!((cur.total_volume() - processed).abs() < 1e-9 * (1.0 + processed));

    // Preemption intervals of the lowest-density job in a geometric chain.
    let chain = geometric_density_chain(law, 4, 4.0, 1.0).unwrap();
    let c = run_c(&chain, law).unwrap();
    let ivs = preemption_intervals(&c, &chain, 0);
    // All higher-density jobs run before j* does anything: a batch at t=0
    // means zero *interruptions* once j* starts (no preemption intervals
    // after its service begins).
    for iv in &ivs {
        assert!(iv.start >= chain.job(0).release);
        assert!(iv.volume > 0.0);
    }
}

#[test]
fn density_ladder_generator_matches_rounding() {
    // PowerLevels-generated densities survive with_rounded_densities(beta)
    // unchanged when the base matches.
    let spec = WorkloadSpec {
        n_jobs: 20,
        arrival_rate: 1.0,
        volumes: VolumeDist::Fixed(1.0),
        densities: DensityDist::PowerLevels { base: 5.0, levels: 3 },
    };
    let inst = spec.generate(4).unwrap();
    let rounded = inst.with_rounded_densities(5.0).unwrap();
    for (a, b) in inst.jobs().iter().zip(rounded.jobs()) {
        assert!((a.density - b.density).abs() < 1e-9 * a.density);
    }
}

#[test]
fn facade_prelude_covers_the_readme_flow() {
    // The exact flow the README promises.
    let instance = Instance::new(vec![
        Job::unit_density(0.0, 2.0),
        Job::unit_density(0.4, 1.0),
    ])
    .unwrap();
    let law = PowerLaw::cube();
    let c = run_c(&instance, law).unwrap();
    let nc = run_nc_uniform(&instance, law).unwrap();
    let opt = solve_fractional_opt(&instance, law, SolverOptions::default()).unwrap();
    assert!(opt.dual_bound <= c.objective.fractional());
    assert!(nc.objective.fractional() <= 2.5 * opt.dual_bound * 1.05);
}
