//! Spill-ring lifecycle properties and tamper detection for the streaming
//! core (DESIGN.md §9).
//!
//! Two claims are load-bearing for the bounded-memory mode:
//!
//! 1. **Retirement is lossless under draining.** When the consumer drains
//!    the ring after every arrival, residency never exceeds the number of
//!    segments one event batch can retire, nothing is dropped, and the
//!    arena never holds more slots than the peak active set.
//! 2. **Loss is detectable.** A run whose ring *did* overflow (segments
//!    silently discarded) cannot masquerade as a complete schedule: the
//!    rebuilt schedule trips the independent audit on a *named* check, and
//!    so does a run whose reported objective was corrupted in flight.

use ncss::core::streaming::{CStream, StreamConfig};
use ncss::prelude::*;
use ncss::sim::{Evaluated, PerJob, ScheduleBuilder, Segment, SpillRing};
use ncss_rng::{dist, Pcg64};

fn poisson_jobs(n: usize, rate: f64, seed: u64) -> Vec<Job> {
    let mut rng = Pcg64::seed_from_u64(seed);
    let mut clock = 0.0;
    (0..n)
        .map(|_| {
            clock += dist::poisson_gap(&mut rng, rate);
            Job::unit_density(clock, dist::exponential(&mut rng, 1.0))
        })
        .collect()
}

/// Run jobs through a streaming-config `CStream`, draining after every
/// offer; return (summary, stats, drained segment count).
fn drained_run(jobs: &[Job], cap: usize) -> (ncss::core::StreamSummary, ncss::core::StreamStats, usize) {
    let mut stream = CStream::new(PowerLaw::cube(), StreamConfig::streaming(cap));
    let mut sink = |_c: ncss::core::CCompletion| {};
    let mut drained = 0usize;
    for job in jobs {
        stream.offer(*job, &mut sink).expect("offer");
        drained += stream.spill_mut().drain().count();
    }
    let summary = stream.finish(&mut sink).expect("finish");
    drained += stream.spill_mut().drain().count();
    (summary, stream.stats(), drained)
}

/// Retained run (batch config): returns everything needed to rebuild and
/// audit the schedule.
fn retained_run(jobs: &[Job]) -> (ncss::core::StreamSummary, PerJob, Vec<Segment>) {
    let n = jobs.len();
    let mut per_job =
        PerJob { completion: vec![f64::NAN; n], frac_flow: vec![0.0; n], int_flow: vec![0.0; n] };
    let mut stream = CStream::new(PowerLaw::cube(), StreamConfig::batch());
    let mut sink = |c: ncss::core::CCompletion| {
        per_job.completion[c.id] = c.completion;
        per_job.frac_flow[c.id] = c.frac_flow;
        per_job.int_flow[c.id] = c.int_flow;
    };
    for job in jobs {
        stream.offer(*job, &mut sink).expect("offer");
    }
    let summary = stream.finish(&mut sink).expect("finish");
    let segments: Vec<Segment> = stream.spill_mut().drain().collect();
    (summary, per_job, segments)
}

fn audit_of(jobs: &[Job], segments: &[Segment], reported: &Evaluated) -> AuditReport {
    let inst = Instance::new(jobs.to_vec()).expect("valid jobs");
    let mut builder = ScheduleBuilder::new(PowerLaw::cube());
    for seg in segments {
        builder.push(*seg);
    }
    let schedule = builder.build().expect("schedule");
    ScheduleAudit::new(AuditConfig::default()).audit(&inst, &schedule, reported)
}

/// Property: across a seed sweep, drain-per-offer keeps the ring's peak
/// residency bounded by what a single event batch retires — never by the
/// stream length — while dropping nothing, and the arena's slot count is
/// exactly the peak active set.
#[test]
fn drained_spill_ring_stays_bounded_and_lossless() {
    for seed in 0..8u64 {
        let jobs = poisson_jobs(600, 3.0, seed);
        let (summary, stats, drained) = drained_run(&jobs, 64);
        assert_eq!(summary.completed, jobs.len());
        assert_eq!(stats.spill_dropped, 0, "seed {seed}: ring dropped segments");
        assert_eq!(
            stats.spill_total, drained as u64,
            "seed {seed}: every retired segment must reach the consumer"
        );
        // One arrival closes at most one serving segment per completion
        // event plus the cut at the release itself; the active set bounds
        // the number of completions a single batch can contain.
        assert!(
            stats.spill_peak_resident <= stats.peak_active + 1,
            "seed {seed}: peak residency {} exceeds active-set bound {}",
            stats.spill_peak_resident,
            stats.peak_active + 1
        );
        assert_eq!(
            stats.arena_slots, stats.peak_active,
            "seed {seed}: arena over-allocated ({} slots, peak active {})",
            stats.arena_slots, stats.peak_active
        );
        assert!(
            stats.peak_active < jobs.len() / 4,
            "seed {seed}: active set {} not small relative to stream length",
            stats.peak_active
        );
    }
}

/// The ring's own drop accounting: an undersized, never-drained ring
/// reports exactly how many segments it discarded.
#[test]
fn overflowing_ring_counts_drops() {
    let jobs = poisson_jobs(200, 3.0, 42);
    let mut stream = CStream::new(PowerLaw::cube(), StreamConfig::streaming(4));
    let mut sink = |_c: ncss::core::CCompletion| {};
    for job in &jobs {
        stream.offer(*job, &mut sink).expect("offer");
    }
    stream.finish(&mut sink).expect("finish");
    let stats = stream.stats();
    assert!(stats.spill_dropped > 0, "a 4-slot ring must overflow on 200 jobs");
    assert_eq!(
        stats.spill_total,
        stats.spill_dropped + stats.spill_resident as u64,
        "drop accounting must balance"
    );
}

/// Tamper case 1: rebuild a schedule from a ring that silently lost
/// segments. The audit must fail, and fail on the named
/// `volume-conservation` check (the lost service shows up as unprocessed
/// volume).
#[test]
fn audit_catches_schedule_with_dropped_segments() {
    let jobs = poisson_jobs(60, 2.0, 7);
    let (summary, per_job, segments) = retained_run(&jobs);

    // Simulate the overflow: replay the retained segments through a tiny
    // ring so only the most recent survive, exactly what an undrained
    // streaming run would have kept.
    let mut ring = SpillRing::with_capacity(8);
    for seg in &segments {
        ring.push(*seg);
    }
    assert!(ring.dropped() > 0, "replay must overflow the 8-slot ring");
    let kept: Vec<Segment> = ring.drain().collect();

    let reported = Evaluated { objective: summary.objective, per_job };
    let report = audit_of(&jobs, &kept, &reported);
    assert!(!report.passed(), "audit must fail on a lossy schedule");
    assert!(
        report.failures().iter().any(|c| c.name == "volume-conservation"),
        "expected volume-conservation among failures, got {:?}",
        report.failures().iter().map(|c| c.name).collect::<Vec<_>>()
    );
}

/// Tamper case 2: the schedule is intact but the streamed objective was
/// corrupted in flight. The audit's independent re-derivation catches it
/// on the named `energy-recomputed` check.
#[test]
fn audit_catches_corrupted_streamed_objective() {
    let jobs = poisson_jobs(60, 2.0, 7);
    let (summary, per_job, segments) = retained_run(&jobs);

    let mut objective = summary.objective;
    objective.energy *= 1.05; // a 5% "improvement" no honest run reports
    let reported = Evaluated { objective, per_job };
    let report = audit_of(&jobs, &segments, &reported);
    assert!(!report.passed(), "audit must fail on a corrupted objective");
    assert!(
        report.failures().iter().any(|c| c.name == "energy-recomputed"),
        "expected energy-recomputed among failures, got {:?}",
        report.failures().iter().map(|c| c.name).collect::<Vec<_>>()
    );
}

/// An honest retained run passes the same audit — the two tamper tests
/// fail for the right reason, not because the gate is always-red.
#[test]
fn honest_streamed_run_passes_audit() {
    let jobs = poisson_jobs(60, 2.0, 7);
    let (summary, per_job, segments) = retained_run(&jobs);
    let reported = Evaluated { objective: summary.objective, per_job };
    let report = audit_of(&jobs, &segments, &reported);
    assert!(report.passed(), "honest run failed audit:\n{}", report.render());
}

/// Tamper case 1, incremental edition: the event-driven auditor sees only
/// the segments a lossy ring kept, and must trip the same named
/// `volume-conservation` check the batch auditor does — eagerly, at the
/// first completion whose service history has a hole.
#[test]
fn incremental_audit_catches_dropped_segments_like_batch() {
    use ncss::audit::IncrementalAudit;

    let jobs = poisson_jobs(60, 2.0, 7);
    let (summary, per_job, segments) = retained_run(&jobs);

    // Same forced overflow as the batch test: replay the retained history
    // through a tiny ring so only the most recent segments survive.
    let mut ring = SpillRing::with_capacity(8);
    for seg in &segments {
        ring.push(*seg);
    }
    assert!(ring.dropped() > 0, "replay must overflow the 8-slot ring");
    let kept: Vec<Segment> = ring.drain().collect();

    let mut audit = IncrementalAudit::new(PowerLaw::cube(), AuditConfig::default());
    for (id, job) in jobs.iter().enumerate() {
        audit.on_release(id, *job);
    }
    for seg in &kept {
        assert!(audit.on_segment(*seg).is_none(), "kept segments are individually honest");
    }
    let mut eager_trip = None;
    for j in 0..jobs.len() {
        if let Some(trip) =
            audit.on_complete(j, per_job.completion[j], per_job.frac_flow[j], per_job.int_flow[j])
        {
            eager_trip.get_or_insert(trip);
        }
    }
    let trip = eager_trip.expect("a lossy ring must trip an eager verdict");
    assert_eq!(
        trip.check, "volume-conservation",
        "expected volume-conservation, got {} ({})",
        trip.check, trip.detail
    );

    // The final report agrees with the batch auditor on the same evidence:
    // failed, with volume-conservation among the named failures.
    let report = audit.finalize(&summary.objective);
    assert!(!report.passed(), "incremental audit must fail on a lossy schedule");
    assert!(
        report.failures().iter().any(|c| c.name == "volume-conservation"),
        "expected volume-conservation among failures, got {:?}",
        report.failures().iter().map(|c| c.name).collect::<Vec<_>>()
    );
}
