//! The run-wide power-kernel contract (DESIGN.md §13).
//!
//! Two properties keep the compiled `PowKernel` strategy honest:
//!
//! 1. **Accuracy**: every specialised multiply/sqrt chain agrees with the
//!    `powf` definition it replaces to ≤ 1e-15 relative error, across the
//!    full magnitude range the simulators visit (fault sweeps push volumes
//!    to 1e±150). Where the true value over/underflows, the chain must
//!    land on the same infinity/zero — never a finite garbage value.
//!
//! 2. **Same-run bitwise oracle**: within one run (one compiled kernel),
//!    the batch runners, the streaming cores, and the sharded fleet replay
//!    produce bit-identical objectives and per-job results — for *every*
//!    kernel variant, not just the fast-path alphas the perf suite uses.
//!    Cross-run bitwise equality is explicitly NOT claimed: α = 2.75 via
//!    the general kernel and a hypothetical hand chain may differ in the
//!    last ulp, which is why the kernel is compiled once per run.

use ncss::core::streaming::{CStream, NcStream, StreamConfig};
use ncss::multi::fleet::{replay_c, replay_nc, DispatchLog};
use ncss::pool::Pool;
use ncss::prelude::*;
use ncss::sim::{PerJob, PowKernel};
use ncss::workloads::suite::uniform_suite;

/// α per kernel variant — one representative of each compiled strategy.
const VARIANTS: [(f64, PowKernel); 5] = [
    (2.0, PowKernel::Quadratic),
    (3.0, PowKernel::Cubic),
    (1.5, PowKernel::ThreeHalves),
    (2.5, PowKernel::HalfInteger),
    (2.75, PowKernel::General),
];

// ---------------------------------------------------------------------------
// Property 1: chain accuracy vs the powf reference, extreme magnitudes.
// ---------------------------------------------------------------------------

/// Relative agreement when the reference is a normal float; exact
/// agreement (same zero / same infinity) when it is not. A specialised
/// chain that overflows an intermediate where `powf` stays finite — or
/// vice versa — fails here.
///
/// The tolerance is 1e-15 at unit scale but must widen with |ln(result)|:
/// `powf`'s own argument reduction carries an absolute error of a few ulps
/// in `e·ln x`, which exponentiates to a *relative* error proportional to
/// the result's log-magnitude — ~1e-14 at 1e±100. At those scales the
/// sqrt/cbrt chains are the more accurate side of the comparison, so the
/// slack absorbs reference error, not kernel error.
#[track_caller]
fn check(tag: &str, got: f64, want: f64) {
    if want.is_normal() {
        let rel = ((got - want) / want).abs();
        let tol = 1e-15 * (1.0 + want.abs().ln().abs() / 4.0);
        assert!(rel <= tol, "{tag}: got {got:e} want {want:e} rel {rel:e} tol {tol:e}");
    } else {
        assert_eq!(
            got.to_bits(),
            want.to_bits(),
            "{tag}: got {got:e} want {want:e} (reference not normal)"
        );
    }
}

#[test]
fn kernels_match_powf_reference_across_magnitudes() {
    let magnitudes =
        [1e-150, 1e-75, 1e-9, 1e-3, 0.5, 1.0, 2.0, 3.7, 1e3, 1e9, 1e75, 1e150];
    for &alpha in &[1.5, 2.0, 2.5, 3.0, 2.75, 7.3] {
        let p = PowerLaw::new(alpha).unwrap();
        let b = 1.0 - 1.0 / alpha;
        for &x in &magnitudes {
            let tag = |op: &str| format!("{op} α={alpha} x={x:e}");
            check(&tag("power"), p.power(x), x.powf(alpha));
            check(&tag("speed_for_power"), p.speed_for_power(x), x.powf(1.0 / alpha));
            check(&tag("pow_beta"), p.pow_beta(x), x.powf(b));
            check(&tag("root_beta"), p.root_beta(x), x.powf(1.0 / b));
            check(&tag("pow_one_plus_beta"), p.pow_one_plus_beta(x), x.powf(1.0 + b));
            check(&tag("power_deriv"), p.power_deriv(x), alpha * x.powf(alpha - 1.0));
            check(
                &tag("speed_for_power_deriv"),
                p.speed_for_power_deriv(x),
                (x / alpha).powf(1.0 / (alpha - 1.0)),
            );
            check(&tag("root_alpha_m1"), p.root_alpha_m1(x), x.powf(1.0 / (alpha - 1.0)));
        }
    }
}

#[test]
fn kernel_selection_is_stable() {
    // The selection table is part of the bench/verify contract: verify.sh
    // asserts the α = 2 CLI run reports "quadratic", and the perf suite's
    // attribution assumes α = 3 rides the cubic chains.
    for &(alpha, kernel) in &VARIANTS {
        let p = PowerLaw::new(alpha).unwrap();
        assert_eq!(p.kernel(), kernel, "α = {alpha}");
    }
    assert_eq!(PowerLaw::new(2.0).unwrap().kernel_name(), "quadratic");
    assert_eq!(PowerLaw::cube().kernel_name(), "cubic");
    // Half-integer chains cut off where iterated squaring stops paying.
    assert_eq!(PowerLaw::new(4.0).unwrap().kernel(), PowKernel::HalfInteger);
    assert_eq!(PowerLaw::new(40.0).unwrap().kernel(), PowKernel::General);
}

#[test]
fn misselected_kernel_is_not_the_honest_one() {
    // The fault hook verify.sh leans on: a law that *reports* α but
    // evaluates with the next integer's chains must disagree visibly, so
    // the energy-recomputed audit check can catch it.
    let honest = PowerLaw::new(2.0).unwrap();
    let wrong = PowerLaw::misselected_for_fault_injection(2.0);
    assert_eq!(wrong.alpha(), honest.alpha());
    assert!(((wrong.power(2.0) - honest.power(2.0)) / honest.power(2.0)).abs() > 0.5);
}

// ---------------------------------------------------------------------------
// Property 2: batch == stream == sharded, bitwise, per kernel variant.
// ---------------------------------------------------------------------------

fn stream_c_results(inst: &Instance, law: PowerLaw) -> (Objective, PerJob) {
    let n = inst.len();
    let mut per_job =
        PerJob { completion: vec![f64::NAN; n], frac_flow: vec![0.0; n], int_flow: vec![0.0; n] };
    let mut stream = CStream::new(law, StreamConfig::streaming(8));
    let mut sink = |c: ncss::core::CCompletion| {
        per_job.completion[c.id] = c.completion;
        per_job.frac_flow[c.id] = c.frac_flow;
        per_job.int_flow[c.id] = c.int_flow;
    };
    for job in inst.jobs() {
        stream.offer(*job, &mut sink).expect("offer");
        stream.spill_mut().drain().for_each(drop);
    }
    let summary = stream.finish(&mut sink).expect("finish");
    (summary.objective, per_job)
}

fn stream_nc_results(inst: &Instance, law: PowerLaw) -> (Objective, PerJob) {
    let n = inst.len();
    let mut per_job =
        PerJob { completion: vec![f64::NAN; n], frac_flow: vec![0.0; n], int_flow: vec![0.0; n] };
    let mut stream = NcStream::new(law, StreamConfig::streaming(8));
    for job in inst.jobs() {
        stream
            .offer(*job, &mut |c: ncss::core::NcCompletion| {
                per_job.completion[c.id] = c.completion;
                per_job.frac_flow[c.id] = c.frac_flow;
                per_job.int_flow[c.id] = c.int_flow;
            })
            .expect("offer");
        stream.spill_mut().drain().for_each(drop);
    }
    let summary = stream.finish().expect("finish");
    (summary.objective, per_job)
}

#[track_caller]
fn assert_objective_bits(tag: &str, a: &Objective, b: &Objective) {
    assert_eq!(a.energy.to_bits(), b.energy.to_bits(), "{tag}: energy {} vs {}", a.energy, b.energy);
    assert_eq!(a.frac_flow.to_bits(), b.frac_flow.to_bits(), "{tag}: frac_flow");
    assert_eq!(a.int_flow.to_bits(), b.int_flow.to_bits(), "{tag}: int_flow");
}

#[track_caller]
fn assert_per_job_bits(tag: &str, a: &PerJob, b: &PerJob) {
    for j in 0..a.completion.len() {
        assert_eq!(
            a.completion[j].to_bits(),
            b.completion[j].to_bits(),
            "{tag}: job {j} completion"
        );
        assert_eq!(a.frac_flow[j].to_bits(), b.frac_flow[j].to_bits(), "{tag}: job {j} frac");
        assert_eq!(a.int_flow[j].to_bits(), b.int_flow[j].to_bits(), "{tag}: job {j} int");
    }
}

/// Algorithm C under every kernel variant: the batch runner, the streaming
/// core, and the k = 1 sharded fleet replay are the same computation.
#[test]
fn c_batch_stream_sharded_agree_bitwise_per_kernel() {
    let pool = Pool::with_threads(3);
    let suites: Vec<Instance> = uniform_suite(7).into_iter().step_by(3).collect();
    for &(alpha, kernel) in &VARIANTS {
        let law = PowerLaw::new(alpha).unwrap();
        assert_eq!(law.kernel(), kernel);
        for (i, inst) in suites.iter().enumerate() {
            let tag = format!("C kernel={} α={alpha} instance {i}", law.kernel_name());
            let batch = run_c(inst, law).expect("batch C");
            let (obj, per_job) = stream_c_results(inst, law);
            assert_objective_bits(&tag, &obj, &batch.objective);
            assert_per_job_bits(&tag, &per_job, &batch.per_job);

            let log = DispatchLog::c_par(inst, law, 1).expect("k=1 dispatch");
            let sharded = replay_c(inst, law, &log, &pool).expect("sharded replay");
            assert_objective_bits(&format!("{tag} (sharded)"), &sharded.objective, &batch.objective);
            assert_per_job_bits(&format!("{tag} (sharded)"), &sharded.per_job, &batch.per_job);
        }
    }
}

/// Algorithm NC (uniform density) under every kernel variant, same trio.
/// The sharded replay is anchored bitwise to its serial par runner (the
/// fleet contract); the par runner is anchored to the batch runner only
/// to few-ulp slack, because the two accrue the identical segment
/// quantities in different orders. Batch vs stream stays bitwise.
#[test]
fn nc_batch_stream_sharded_agree_bitwise_per_kernel() {
    let pool = Pool::with_threads(3);
    let suites: Vec<Instance> = uniform_suite(7).into_iter().step_by(3).collect();
    for &(alpha, _) in &VARIANTS {
        let law = PowerLaw::new(alpha).unwrap();
        for (i, inst) in suites.iter().enumerate() {
            let tag = format!("NC kernel={} α={alpha} instance {i}", law.kernel_name());
            let batch = run_nc_uniform(inst, law).expect("batch NC");
            let (obj, per_job) = stream_nc_results(inst, law);
            assert_objective_bits(&tag, &obj, &batch.objective);
            assert_per_job_bits(&tag, &per_job, &batch.per_job);

            let serial = run_nc_par(inst, law, 1).expect("serial NC-PAR");
            let log = DispatchLog::nc_par(inst, law, 1).expect("k=1 dispatch");
            let sharded = replay_nc(inst, law, &log, &pool).expect("sharded replay");
            assert_objective_bits(
                &format!("{tag} (sharded vs serial par)"),
                &sharded.objective,
                &serial.objective,
            );
            assert_per_job_bits(&format!("{tag} (sharded)"), &sharded.per_job, &serial.per_job);
            let rel =
                ((sharded.objective.energy - batch.objective.energy) / batch.objective.energy).abs();
            assert!(rel <= 1e-14, "{tag}: par energy drifted from batch by {rel:e}");
        }
    }
}
