//! Workspace robustness contract (fault-injection).
//!
//! Every algorithm in core/multi/opt, fed hundreds of seeded adversarial
//! perturbations (ULP jitter, 1e±150 magnitude blow-ups, coincident
//! releases, epsilon volumes, density collisions), must either
//!
//! * complete with all-finite objective components (and, where a schedule
//!   exists, a structurally sound one), or
//! * return a structured `SimError`,
//!
//! and must **never panic** — in `--release` builds too, which is where the
//! numeric guard rails (rather than debug assertions) earn their keep.
//! Seeds come from `NCSS_FAULT_SEED` when set, so CI failures reproduce.
//!
//! The suite shards its cases over `ncss-pool` (the same worker pool the
//! sweeps and the audit layer use): each case's violations come back as
//! strings and are aggregated after the order-preserving parallel map, so
//! one assertion reports every failing case instead of the first.

use ncss::audit::{audit_outcome, audit_run};
use ncss::core::{
    run_c, run_c_bounded, run_known_weight_sharing, run_nc_nonuniform, run_nc_uniform,
    run_nc_uniform_bounded, NonUniformParams,
};
use ncss::multi::{run_immediate_dispatch, run_lazy_hdf, RoundRobin};
use ncss::opt::{solve_fractional_opt, SolverOptions};
use ncss::pool::Pool;
use ncss::sim::{Evaluated, Instance, Objective, PowerLaw};
use ncss::workloads::{fault_seed, fault_suite};
use std::panic::{catch_unwind, AssertUnwindSafe};

const CASES: usize = 220;

/// Cheap solver settings: the contract is about robustness, not accuracy.
fn quick_solver() -> SolverOptions {
    SolverOptions { steps: 120, max_iters: 60, ..SolverOptions::default() }
}

/// Fast non-uniform settings for tiny adversarial instances. The step cap
/// bounds runaway integration on magnitude-blowup cases: every convergent
/// suite case finishes below 25k steps, so 60k changes no verdict while
/// cutting the non-convergent cases' wasted work by ~7x.
fn quick_nonuniform() -> NonUniformParams {
    NonUniformParams { steps_per_job: 60, max_steps: 60_000, ..NonUniformParams::default() }
}

fn finite_violation(objective: &Objective, context: &str) -> Option<String> {
    for (what, v) in [
        ("energy", objective.energy),
        ("frac_flow", objective.frac_flow),
        ("int_flow", objective.int_flow),
    ] {
        if !v.is_finite() {
            return Some(format!("{context}: non-finite {what} = {v}"));
        }
    }
    None
}

/// Run one algorithm under the contract: no panic, no non-finite output.
/// A violation comes back as a message (not a panic) so sharded cases can
/// aggregate every failure across the suite.
fn contract<F>(label: &str, f: F) -> Option<String>
where
    F: FnOnce() -> Option<Objective>,
{
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(Some(objective)) => finite_violation(&objective, label),
        Ok(None) => None, // structured error — allowed
        Err(_) => Some(format!("{label}: PANICKED")),
    }
}

/// Fail with every collected violation, or pass when there are none.
fn assert_no_violations(failures: Vec<String>) {
    assert!(failures.is_empty(), "{} contract violations:\n{}", failures.len(), failures.join("\n"));
}

#[test]
fn no_algorithm_panics_or_emits_nan_under_fault_injection() {
    let seed = fault_seed();
    let suite = fault_suite(seed, CASES);
    assert!(suite.len() >= 200);

    // One shard per case, chunked over the shared worker pool; each shard
    // reports (was runnable, violations) and the aggregation below is
    // identical to the old serial loop by the pool's ordering guarantee.
    let results: Vec<(bool, Vec<String>)> = Pool::auto().map_chunked(&suite, 0, |case| {
        let inst = match &case.instance {
            // Structured rejection at construction is a passing outcome.
            Ok(inst) => inst,
            Err(_) => return (false, Vec::new()),
        };
        let mut failures = Vec::new();
        for alpha in [2.0, 3.0] {
            let law = PowerLaw::new(alpha).expect("valid alpha");
            let tag = |algo: &str| format!("seed {seed} case {} α={alpha} {algo}", case.label);

            failures.extend(contract(&tag("run_c"), || run_c(inst, law).ok().map(|r| r.objective)));
            failures.extend(contract(&tag("run_nc_uniform"), || {
                run_nc_uniform(inst, law).ok().map(|r| r.objective)
            }));
            failures.extend(contract(&tag("run_nc_nonuniform"), || {
                run_nc_nonuniform(inst, law, quick_nonuniform()).ok().map(|r| r.objective)
            }));
            failures.extend(contract(&tag("run_known_weight_sharing"), || {
                run_known_weight_sharing(inst, law).ok().map(|r| r.objective)
            }));
            failures.extend(contract(&tag("run_c_bounded"), || {
                run_c_bounded(inst, law, 4.0).ok().map(|(_, ev)| ev.objective)
            }));
            failures.extend(contract(&tag("run_nc_uniform_bounded"), || {
                run_nc_uniform_bounded(inst, law, 4.0).ok().map(|(_, ev)| ev.objective)
            }));
            failures.extend(contract(&tag("run_immediate_dispatch"), || {
                run_immediate_dispatch(inst, law, 2, &mut RoundRobin::default())
                    .ok()
                    .map(|r| r.objective)
            }));
            failures.extend(contract(&tag("run_lazy_hdf"), || {
                run_lazy_hdf(inst, law, 2, 5.0).ok().map(|r| r.objective)
            }));
            failures.extend(contract(&tag("solve_fractional_opt"), || {
                solve_fractional_opt(inst, law, quick_solver()).ok().map(|sol| Objective {
                    energy: 0.0,
                    frac_flow: sol.primal_cost,
                    int_flow: sol.dual_bound,
                })
            }));
        }
        (true, failures)
    });

    let ran = results.iter().filter(|(runnable, _)| *runnable).count();
    let rejected = results.len() - ran;
    assert_no_violations(results.into_iter().flat_map(|(_, f)| f).collect());

    // The suite must actually exercise both outcomes: plenty of runnable
    // instances, and at least some structured rejections.
    assert!(ran >= 100, "only {ran} of {} cases were runnable", suite.len());
    assert!(rejected > 0, "no perturbation produced a structured rejection");
}

#[test]
fn runs_that_succeed_under_faults_also_pass_the_audit() {
    // Stronger than "no NaN": wherever an algorithm claims success on a
    // perturbed instance, the independent auditor agrees with its numbers.
    // (Blow-up cases that legitimately complete at extreme scale are held
    // to the same tolerance — the audit is scale-free.)
    let seed = fault_seed();
    let suite = fault_suite(seed, 60);
    let results: Vec<(usize, Vec<String>)> = Pool::auto().map_chunked(&suite, 0, |case| {
        let Ok(inst) = &case.instance else { return (0, Vec::new()) };
        let law = PowerLaw::new(2.0).expect("valid alpha");
        let mut audited = 0usize;
        let mut failures = Vec::new();
        if let Ok(run) = run_c(inst, law) {
            let reported = Evaluated { objective: run.objective, per_job: run.per_job.clone() };
            let report = audit_run(inst, &run.schedule, &reported);
            if !report.passed() {
                failures.push(format!("seed {seed} case {}:\n{report}", case.label));
            }
            audited += 1;
        }
        if let Ok(run) = run_known_weight_sharing(inst, law) {
            let report = audit_outcome(inst, &run.objective, &run.per_job);
            if !report.passed() {
                failures.push(format!("seed {seed} case {} (sharing):\n{report}", case.label));
            }
        }
        (audited, failures)
    });
    let audited: usize = results.iter().map(|(n, _)| n).sum();
    assert_no_violations(results.into_iter().flat_map(|(_, f)| f).collect());
    assert!(audited >= 10, "too few successful runs reached the audit ({audited})");
}

#[test]
fn clean_instances_audit_below_1e7_residual() {
    // Acceptance floor from the audit design: on unperturbed instances the
    // quadrature re-derivation agrees with the closed forms to < 1e-7.
    let inst = Instance::new(vec![
        ncss::sim::Job::unit_density(0.0, 1.0),
        ncss::sim::Job::unit_density(0.2, 2.0),
        ncss::sim::Job::unit_density(0.9, 0.5),
    ])
    .expect("valid instance");
    for alpha in [2.0, 2.5, 3.0] {
        let law = PowerLaw::new(alpha).expect("valid alpha");
        let c = run_c(&inst, law).expect("clean run");
        let reported = Evaluated { objective: c.objective, per_job: c.per_job };
        let report = audit_run(&inst, &c.schedule, &reported);
        assert!(report.passed(), "α={alpha}:\n{report}");
        assert!(report.max_residual() < 1e-7, "α={alpha}: residual {}", report.max_residual());

        let nc = run_nc_uniform(&inst, law).expect("clean run");
        let reported = Evaluated { objective: nc.objective, per_job: nc.per_job };
        let report = audit_run(&inst, &nc.schedule, &reported);
        assert!(report.passed(), "NC α={alpha}:\n{report}");
        assert!(report.max_residual() < 1e-7, "NC α={alpha}: residual {}", report.max_residual());
    }
}

use ncss::audit::audit_multi;
use ncss::multi::{run_c_par, run_nc_par, LeastCount, SeededRandom, MAX_MACHINES};
use ncss::sim::numeric::rel_diff;
use ncss::sim::{Job, SimError};

fn small_instance() -> Instance {
    Instance::new(vec![
        Job::unit_density(0.0, 2.0),
        Job::unit_density(0.4, 1.0),
        Job::unit_density(1.1, 0.5),
    ])
    .expect("valid instance")
}

#[test]
fn dispatcher_machine_count_faults_are_typed_errors() {
    // m = 0, m just past MAX_MACHINES, and usize::MAX-adjacent counts must
    // all come back as structured `SimError`s from every dispatcher — no
    // divide-by-zero, no attempted multi-terabyte Vec, no panic.
    let inst = small_instance();
    let law = PowerLaw::new(2.0).expect("valid alpha");
    for m in [0usize, MAX_MACHINES + 1, usize::MAX - 1, usize::MAX] {
        assert!(
            matches!(run_c_par(&inst, law, m), Err(SimError::InvalidInstance { .. })),
            "run_c_par accepted m={m}"
        );
        assert!(
            matches!(run_nc_par(&inst, law, m), Err(SimError::InvalidInstance { .. })),
            "run_nc_par accepted m={m}"
        );
        assert!(
            matches!(
                run_immediate_dispatch(&inst, law, m, &mut RoundRobin::default()),
                Err(SimError::InvalidInstance { .. })
            ),
            "round-robin dispatch accepted m={m}"
        );
        assert!(
            matches!(
                run_immediate_dispatch(&inst, law, m, &mut LeastCount::default()),
                Err(SimError::InvalidInstance { .. })
            ),
            "least-count dispatch accepted m={m}"
        );
        assert!(
            matches!(
                run_immediate_dispatch(&inst, law, m, &mut SeededRandom::new(7)),
                Err(SimError::InvalidInstance { .. })
            ),
            "seeded-random dispatch accepted m={m}"
        );
        assert!(
            matches!(run_lazy_hdf(&inst, law, m, 5.0), Err(SimError::InvalidInstance { .. })),
            "lazy-HDF accepted m={m}"
        );
    }
}

#[test]
fn one_machine_matches_the_single_machine_algorithms_exactly() {
    // The m = 1 fleet is the single machine: same objective, same
    // completions, to floating-point identity tolerances.
    let inst = small_instance();
    for alpha in [2.0, 3.0] {
        let law = PowerLaw::new(alpha).expect("valid alpha");

        let par = run_c_par(&inst, law, 1).expect("C-PAR on one machine");
        let single = run_c(&inst, law).expect("C");
        assert!(rel_diff(par.objective.energy, single.objective.energy) < 1e-12);
        assert!(rel_diff(par.objective.frac_flow, single.objective.frac_flow) < 1e-12);
        for j in 0..inst.len() {
            assert!(
                rel_diff(par.per_job.completion[j], single.per_job.completion[j]) < 1e-12,
                "α={alpha} job {j}: {} vs {}",
                par.per_job.completion[j],
                single.per_job.completion[j]
            );
        }

        let par = run_nc_par(&inst, law, 1).expect("NC-PAR on one machine");
        let single = run_nc_uniform(&inst, law).expect("NC");
        assert!(rel_diff(par.objective.energy, single.objective.energy) < 1e-12);
        assert!(rel_diff(par.objective.frac_flow, single.objective.frac_flow) < 1e-12);
        for j in 0..inst.len() {
            assert!(
                rel_diff(par.per_job.completion[j], single.per_job.completion[j]) < 1e-12,
                "α={alpha} NC job {j}: {} vs {}",
                par.per_job.completion[j],
                single.per_job.completion[j]
            );
        }
    }
}

#[test]
fn more_machines_than_jobs_completes_and_passes_the_multi_audit() {
    // m > n leaves machines idle but must neither error nor emit anything
    // the cross-machine auditor rejects.
    let inst = small_instance();
    let law = PowerLaw::new(2.5).expect("valid alpha");
    let m = inst.len() + 5;
    for (name, out) in [
        ("c_par", run_c_par(&inst, law, m).expect("C-PAR")),
        ("nc_par", run_nc_par(&inst, law, m).expect("NC-PAR")),
    ] {
        assert_eq!(out.schedules.len(), m, "{name}: one timeline per machine");
        let reported = Evaluated { objective: out.objective, per_job: out.per_job.clone() };
        let report = audit_multi(&inst, &out.schedules, &reported);
        assert!(report.passed(), "{name} with m={m}:\n{report}");
        assert!(report.max_residual() < 1e-7, "{name}: residual {}", report.max_residual());
    }
}

#[test]
fn bounded_speed_caps_near_zero_and_infinity_respect_the_contract() {
    // Finite caps — however extreme — obey the robustness contract over
    // the fault suite; non-positive and non-finite caps are typed errors.
    let seed = fault_seed();
    let suite = fault_suite(seed, 40);
    let failures: Vec<Vec<String>> = Pool::auto().map_chunked(&suite, 0, |case| {
        let Ok(inst) = &case.instance else { return Vec::new() };
        let law = PowerLaw::new(2.0).expect("valid alpha");
        let mut failures = Vec::new();
        for cap in [1e-300, 1e-9, 1e9, 1e300, f64::MAX] {
            let tag = |algo: &str| format!("seed {seed} case {} cap={cap:e} {algo}", case.label);
            failures.extend(contract(&tag("run_c_bounded"), || {
                run_c_bounded(inst, law, cap).ok().map(|(_, ev)| ev.objective)
            }));
            failures.extend(contract(&tag("run_nc_uniform_bounded"), || {
                run_nc_uniform_bounded(inst, law, cap).ok().map(|(_, ev)| ev.objective)
            }));
        }
        for cap in [0.0, -1.0, f64::INFINITY, f64::NAN] {
            if !matches!(run_c_bounded(inst, law, cap), Err(SimError::InvalidInstance { .. })) {
                failures.push(format!("run_c_bounded accepted cap={cap}"));
            }
            if !matches!(
                run_nc_uniform_bounded(inst, law, cap),
                Err(SimError::InvalidInstance { .. })
            ) {
                failures.push(format!("run_nc_uniform_bounded accepted cap={cap}"));
            }
        }
        failures
    });
    assert_no_violations(failures.into_iter().flatten().collect());
}
