//! # ncss — Speed Scaling in the Non-clairvoyant Model
//!
//! A full Rust implementation of the algorithms and analysis of
//! *"Speed Scaling in the Non-clairvoyant Model"* (Azar, Devanur, Huang,
//! Panigrahi; SPAA 2015): scheduling jobs on speed-scalable machines with
//! power `P(s) = s^α` to minimise weighted flow-time plus energy, when a
//! job's **volume is unknown until it completes** but its density
//! (weight/volume) is known at release.
//!
//! ## What's inside
//!
//! | crate | contents |
//! |-------|----------|
//! | [`sim`] | continuous-time substrate: jobs, instances, exact power-curve kernels, analytic schedules, objectives |
//! | [`core`] | Algorithm C (clairvoyant comparator), Algorithm NC (uniform + non-uniform density), the fractional→integral reduction, baselines, theory constants |
//! | [`opt`] | offline optimum: closed forms + a convex solver with certified dual lower bounds |
//! | [`workloads`] | seeded generators, adversarial constructions, cloud-billing traces |
//! | [`multi`] | identical parallel machines: C-PAR, NC-PAR, dispatch policies, the `Ω(k^{1−1/α})` lower-bound game |
//! | [`audit`] | independent run auditing: closed-form re-derivation of objectives (sampled quadrature cross-check tier) + event-level invariants |
//! | [`analysis`] | ratio measurement, parallel sweeps, ASCII tables/charts |
//! | [`pool`] | persistent worker pool: order-preserving parallel maps used by sweeps, audits, the OPT solver, and the fault/contract suites |
//! | [`trace`] | crash-safe record/replay: CRC-framed WAL traces, torn-write recovery, checkpoint/resume, corruption contract |
//!
//! ## Quickstart
//!
//! ```
//! use ncss::prelude::*;
//!
//! // Three unit-density jobs; the scheduler will not see the volumes
//! // until each job completes.
//! let instance = Instance::new(vec![
//!     Job::unit_density(0.0, 2.0),
//!     Job::unit_density(0.4, 1.0),
//!     Job::unit_density(1.1, 0.5),
//! ]).unwrap();
//! let law = PowerLaw::cube(); // P(s) = s^3
//!
//! let clairvoyant = run_c(&instance, law).unwrap();
//! let nonclairvoyant = run_nc_uniform(&instance, law).unwrap();
//!
//! // Lemma 3: equal energies. Lemma 4: flow-times differ by 1/(1-1/alpha).
//! let ratio = nonclairvoyant.objective.frac_flow / clairvoyant.objective.frac_flow;
//! assert!((nonclairvoyant.objective.energy - clairvoyant.objective.energy).abs() < 1e-9);
//! assert!((ratio - 1.5).abs() < 1e-9);
//! ```

#![warn(missing_docs)]

pub use ncss_analysis as analysis;
pub use ncss_audit as audit;
pub use ncss_core as core;
pub use ncss_multi as multi;
pub use ncss_opt as opt;
pub use ncss_pool as pool;
pub use ncss_sim as sim;
pub use ncss_trace as trace;
pub use ncss_workloads as workloads;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use ncss_audit::{
        audit_multi, audit_outcome, audit_run, AuditConfig, AuditReport, MultiAudit, ScheduleAudit,
    };
    pub use ncss_core::{
        reduce_to_integral, run_c, run_checked, run_checked_multi, run_nc_nonuniform,
        run_nc_uniform, theory, CStream, CheckedMultiRun, CheckedRun, CRun, IntegralRun, MultiRun,
        NcRun, NcStream, NonUniformParams, StreamConfig,
    };
    pub use ncss_multi::{run_c_par, run_nc_par, ParOutcome, MAX_MACHINES};
    pub use ncss_opt::{
        single_job_opt, solve_fractional_opt, yds, yds_execution, DeadlineJob, SolverOptions,
        YdsExecution,
    };
    pub use ncss_sim::{evaluate, Instance, Job, Objective, PowerLaw, Schedule, SimError, SimResult};
    pub use ncss_workloads::{CloudSpec, VolumeDist, WorkloadSpec};
}
