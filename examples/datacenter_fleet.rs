//! Datacenter fleet: non-clairvoyant speed scaling across identical
//! machines (Section 6 of the paper).
//!
//! Shows (i) NC-PAR making the *same* dispatch decisions as clairvoyant
//! C-PAR without ever seeing a volume (Lemma 20), (ii) the exact energy
//! and flow-time relations lifting from one machine to many, and (iii) why
//! immediate dispatch is fundamentally harder: the adaptive adversary's
//! `Ω(k^{1−1/α})` game.
//!
//! Run with: `cargo run --release --example datacenter_fleet`

use ncss::core::theory;
use ncss::multi::{immediate_dispatch_game, RoundRobin};
use ncss::prelude::*;

fn main() -> SimResult<()> {
    let alpha = 3.0;
    let law = PowerLaw::new(alpha)?;
    let machines = 4;

    let workload = WorkloadSpec::uniform(24, 2.5, VolumeDist::Exponential { mean: 1.0 });
    let instance = workload.generate(77)?;

    let c = run_c_par(&instance, law, machines)?;
    let nc = run_nc_par(&instance, law, machines)?;

    println!("fleet of {machines} machines, {} jobs (Poisson arrivals)", instance.len());
    println!();
    println!("Lemma 20 — identical dispatch without volumes: {}",
        if c.assignment == nc.assignment { "yes (assignments match)" } else { "NO (bug!)" });
    println!("Lemma 21 — equal energy:      C {:.4}  NC {:.4}", c.objective.energy, nc.objective.energy);
    println!("Lemma 22 — flow ratio:        measured {:.6}, theory {:.6}",
        nc.objective.frac_flow / c.objective.frac_flow,
        theory::nc_over_c_flow_ratio(alpha));
    println!("Theorem 17 cost (fractional): C-PAR {:.4}, NC-PAR {:.4}",
        c.objective.fractional(), nc.objective.fractional());
    println!();

    // Per-machine load under the shared assignment.
    let mut counts = vec![0usize; machines];
    for &m in &nc.assignment {
        counts[m] += 1;
    }
    println!("jobs per machine: {counts:?}");
    println!();

    // The immediate-dispatch trap: if each job had to pick its machine at
    // release, look-alike jobs could not be balanced.
    println!("immediate-dispatch lower-bound game (round-robin dispatcher):");
    println!("{:>4} {:>12} {:>16}", "k", "ratio", "k^(1-1/alpha)");
    for k in [2usize, 4, 8, 16] {
        let mut policy = RoundRobin::default();
        let game = immediate_dispatch_game(law, k, &mut policy, 1.0, 1e-4)?;
        println!("{k:>4} {:>12.4} {:>16.4}", game.ratio, (k as f64).powf(1.0 - 1.0 / alpha));
    }
    println!();
    println!("NC-PAR avoids the trap by dispatching lazily (a global FIFO queue),\nwhich the paper shows costs only O(alpha) against the optimum.");
    Ok(())
}
