//! Beyond `s^α`: the paper's Section 3.1 remark, live.
//!
//! "Lemmas 6 and 3 are actually true for all power functions, not just
//! ones of the form s^α" — while the exact flow-time ratio of Lemma 4 is
//! specific to the power law. This example runs both algorithms under
//! `P(s) = s³ + ½s²` (a cube law with a quadratic leakage term) and then
//! shows what a hard speed cap does to the exact structure.
//!
//! Run with: `cargo run --release --example general_power`

use ncss::core::generic_runs::{generic_rearrangement_distance, run_c_generic, run_nc_uniform_generic};
use ncss::core::{run_c_bounded, run_nc_uniform_bounded};
use ncss::prelude::*;
use ncss::sim::generic::PolyPower;

fn main() -> SimResult<()> {
    let pf = PolyPower::new(vec![(1.0, 3.0), (0.5, 2.0)])?;
    let instance = Instance::new(vec![
        Job::unit_density(0.0, 1.2),
        Job::unit_density(0.4, 0.8),
        Job::unit_density(1.1, 1.5),
    ])?;

    println!("P(s) = s^3 + 0.5 s^2 (not a pure power law)");
    let c = run_c_generic(&instance, &pf)?;
    let nc = run_nc_uniform_generic(&instance, &pf)?;
    println!("  energy:   C {:.6}   NC {:.6}   (Lemma 3 survives)", c.objective.energy, nc.objective.energy);
    let d = generic_rearrangement_distance(&pf, &c, &nc, 64);
    println!("  speed-profile rearrangement distance: {d:.2e}  (Lemma 6 survives)");

    // Lemma 4's ratio drifts with the weight for general P:
    print!("  flow ratio NC/C by single-job weight:");
    for w in [0.2, 2.0, 20.0] {
        let one = Instance::new(vec![Job::unit_density(0.0, w)])?;
        let rc = run_c_generic(&one, &pf)?;
        let rn = run_nc_uniform_generic(&one, &pf)?;
        print!("  V={w}: {:.4}", rn.objective.frac_flow / rc.objective.frac_flow);
    }
    println!("  (not constant -> Lemma 4 needs s^alpha)");
    println!();

    // Speed caps: single-job equality is exact, multi-job only approximate.
    let law = PowerLaw::new(2.0)?;
    println!("hard speed cap s_max (P = s^2), instance with a binding-cap burst:");
    let bursty = Instance::new(vec![
        Job::unit_density(0.0, 2.0),
        Job::unit_density(0.3, 1.0),
        Job::unit_density(0.8, 0.5),
    ])?;
    for s_max in [0.8, 1.5, 3.0] {
        let (_, cb) = run_c_bounded(&bursty, law, s_max)?;
        let (_, nb) = run_nc_uniform_bounded(&bursty, law, s_max)?;
        println!(
            "  s_max = {s_max}: energy C {:.6} vs NC {:.6}  (rel. deviation {:.2e})",
            cb.objective.energy,
            nb.objective.energy,
            ((nb.objective.energy - cb.objective.energy) / cb.objective.energy).abs()
        );
    }
    println!("(exact when the cap never binds or for single jobs; ~1e-3 once it does)");

    // And a Gantt view of the capped clairvoyant schedule.
    let (sched, _) = run_c_bounded(&instance, law, 1.0)?;
    println!();
    println!("capped Algorithm C schedule (s_max = 1):");
    print!("{}", ncss::analysis::render_gantt(&sched, instance.len(), 80, sched.end_time()));
    Ok(())
}
