//! The single-job adversary game (Section 1.2 of the paper).
//!
//! Non-clairvoyant speed scaling is non-trivial even for ONE job: at every
//! instant the adversary may declare "the job just ended", and the
//! algorithm's cost so far must be competitive with the optimum for the
//! volume revealed. This example sweeps the adversary's choices and shows
//! Algorithm NC's cost hugging a constant multiple of OPT at *every*
//! stopping point, while naive speed policies lose at one end or the other.
//!
//! Run with: `cargo run --release --example adversary_game`

use ncss::core::baselines::run_constant_speed;
use ncss::prelude::*;

fn main() -> SimResult<()> {
    let alpha = 3.0;
    let law = PowerLaw::new(alpha)?;

    println!("adversary stops the single job at volume V; competitive ratio at each stop:");
    println!();
    println!("{:>8} {:>14} {:>16} {:>16}", "V", "OPT cost", "NC / OPT", "const-speed/OPT");

    for &v in &[0.01, 0.1, 0.5, 1.0, 2.0, 8.0, 32.0, 128.0] {
        let instance = Instance::new(vec![Job::unit_density(0.0, v)])?;
        let opt = single_job_opt(law, 1.0, v)?;
        let nc = run_nc_uniform(&instance, law)?;
        // A fixed-speed policy tuned for V = 1 (the adversary punishes any
        // fixed guess at one of the extremes).
        let tuned = run_constant_speed(&instance, law, 1.0)?;
        println!(
            "{v:>8.2} {:>14.4} {:>16.4} {:>16.4}",
            opt.cost(),
            nc.objective.fractional() / opt.cost(),
            tuned.objective.fractional() / opt.cost()
        );
    }

    println!();
    println!(
        "NC's ratio is the same at every stop (the power curve is the clairvoyant\n\
         curve in reverse, so its cost scales exactly like OPT's in V), while the\n\
         constant-speed policy blows up as V grows."
    );

    // Show the adaptive speed curve for one revealed volume.
    let v = 4.0;
    let instance = Instance::new(vec![Job::unit_density(0.0, v)])?;
    let nc = run_nc_uniform(&instance, law)?;
    println!();
    println!("NC speed curve for the V = {v} run (speeds sampled over time):");
    for (t, s, p) in nc.schedule.sample(8, nc.makespan()) {
        println!("  t = {t:>6.3}   speed = {s:>6.3}   power = {p:>7.3}");
    }
    Ok(())
}
