//! Cloud billing: the paper's Section 1 motivation, end to end.
//!
//! A cloud provider is paid `(λ − ρ·t_delay)` per unit volume; the penalty
//! rate ρ is contractual (known at submission) but the job's size is not —
//! exactly the known-density / unknown-weight model. This example generates
//! a synthetic multi-tenant trace and compares the provider's profit under
//! the clairvoyant comparator, the paper's non-clairvoyant algorithm, and
//! two naive non-clairvoyant baselines.
//!
//! Run with: `cargo run --release --example cloud_billing`

use ncss::core::baselines::{run_active_count, run_constant_speed};
use ncss::prelude::*;
use ncss::workloads::CloudTrace;

fn main() -> SimResult<()> {
    let alpha = 3.0;
    let law = PowerLaw::new(alpha)?;
    let spec = CloudSpec {
        n_jobs: 18,
        arrival_rate: 1.5,
        base_payment: 40.0,
        penalty_range: (0.5, 8.0),
        volumes: VolumeDist::Pareto { scale: 0.2, shape: 1.8 },
    };
    let trace: CloudTrace = spec.generate(2026)?;
    let energy_price = 1.0;

    println!("cloud trace: {} jobs, payment {}/unit, penalty rates in {:?}",
        trace.instance.len(), spec.base_payment, spec.penalty_range);
    println!();
    println!("{:<26} {:>10} {:>10} {:>10}", "scheduler", "revenue", "energy", "profit");

    let report = |name: &str, per_job: &ncss::sim::PerJob, energy: f64| {
        println!(
            "{name:<26} {:>10.2} {:>10.2} {:>10.2}",
            trace.revenue(per_job),
            energy,
            trace.profit(per_job, energy, energy_price)
        );
    };

    let c = run_c(&trace.instance, law)?;
    report("clairvoyant (Algorithm C)", &c.per_job, c.objective.energy);

    let nc = run_nc_nonuniform(&trace.instance, law, NonUniformParams::recommended(alpha))?;
    report("non-clairvoyant NC", &nc.per_job, nc.objective.energy);

    let ajc = run_active_count(&trace.instance, law)?;
    report("baseline: P = #active", &ajc.per_job, ajc.objective.energy);

    let cs = run_constant_speed(&trace.instance, law, 1.0)?;
    report("baseline: constant speed", &cs.per_job, cs.objective.energy);

    println!();
    println!(
        "the NC algorithm pays an eta^alpha energy premium for volume-blindness;\n\
         the baselines pay with unbounded delay penalties on heavy-tailed jobs."
    );
    Ok(())
}
