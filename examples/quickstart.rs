//! Quickstart: schedule a handful of jobs non-clairvoyantly and compare
//! against the clairvoyant comparator and the offline optimum.
//!
//! Run with: `cargo run --release --example quickstart`

use ncss::prelude::*;
use ncss::core::theory;

fn main() -> SimResult<()> {
    // A small uniform-density workload. In the non-clairvoyant model, the
    // scheduler learns each volume only when the job finishes.
    let instance = Instance::new(vec![
        Job::unit_density(0.0, 2.0),
        Job::unit_density(0.4, 1.0),
        Job::unit_density(1.1, 0.5),
        Job::unit_density(3.0, 1.7),
    ])?;
    let alpha = 3.0;
    let law = PowerLaw::new(alpha)?;

    // The clairvoyant 2-competitive comparator (Algorithm C) and the
    // paper's non-clairvoyant Algorithm NC.
    let c = run_c(&instance, law)?;
    let nc = run_nc_uniform(&instance, law)?;

    // Bracket the offline optimum with the convex solver.
    let opt = solve_fractional_opt(&instance, law, SolverOptions::default())?;

    println!("jobs: {}   alpha: {alpha}", instance.len());
    println!();
    println!("                     energy     frac flow   frac objective");
    let line = |name: &str, o: &Objective| {
        println!("{name:<18} {:>9.4}  {:>11.4}  {:>14.4}", o.energy, o.frac_flow, o.fractional());
    };
    line("Algorithm C", &c.objective);
    line("Algorithm NC", &nc.objective);
    println!();
    println!("offline OPT bracket: [{:.4}, {:.4}] (certified dual, feasible primal)", opt.dual_bound, opt.primal_cost);
    println!();

    // The paper's exact structural facts, live:
    println!("Lemma 3  — energy(NC) == energy(C):          {:.2e} relative error",
        (nc.objective.energy - c.objective.energy).abs() / c.objective.energy);
    let ratio = nc.objective.frac_flow / c.objective.frac_flow;
    println!("Lemma 4  — flow(NC)/flow(C) == 1/(1-1/a):    {ratio:.6} vs {:.6}",
        theory::nc_over_c_flow_ratio(alpha));
    println!("Theorem 5 — NC is (2 + 1/(a-1))-competitive: measured {:.4} <= {:.4}",
        nc.objective.fractional() / opt.dual_bound,
        theory::nc_uniform_fractional_bound(alpha));
    println!("Theorem 9 — integral objective:              measured {:.4} <= {:.4}",
        nc.objective.integral() / opt.dual_bound,
        theory::nc_uniform_integral_bound(alpha));
    Ok(())
}
