//! The information firewall, live: drive schedulers through the online
//! game interface of `ncss::core::driver`, where policies physically
//! cannot see job volumes until completion.
//!
//! Run with: `cargo run --release --example online_firewall`

use ncss::core::driver::{run_online, ActiveCountPolicy, Decision, NcUniformPolicy, NcView, NonClairvoyantPolicy};
use ncss::prelude::*;
use ncss::sim::SpeedLaw;

/// A custom policy written against the public firewall API: serve the
/// FIFO head with power equal to (number of active jobs)², an
/// over-aggressive guess.
struct Eager;

impl NonClairvoyantPolicy for Eager {
    fn decide(&mut self, view: &NcView<'_>) -> Decision {
        let active = view.active();
        match active.first() {
            None => Decision { job: None, law: SpeedLaw::Idle },
            Some(&j) => {
                let m = active.len() as f64;
                Decision { job: Some(j), law: SpeedLaw::Constant { speed: view.law.speed_for_power(m * m) } }
            }
        }
    }
    fn name(&self) -> &'static str {
        "eager (P = m^2)"
    }
}

fn main() -> SimResult<()> {
    let law = PowerLaw::cube();
    let instance = Instance::new(vec![
        Job::unit_density(0.0, 2.0),
        Job::unit_density(0.3, 0.7),
        Job::unit_density(0.9, 1.4),
        Job::unit_density(4.0, 0.5),
    ])?;

    println!("online non-clairvoyant game, {} jobs, P(s) = s^3", instance.len());
    println!("(policies receive releases+densities and completion signals; never volumes)");
    println!();
    println!("{:<22} {:>10} {:>11} {:>12}", "policy", "energy", "frac flow", "frac obj");

    let mut nc = NcUniformPolicy;
    let mut ajc = ActiveCountPolicy;
    let mut eager = Eager;
    let policies: Vec<&mut dyn NonClairvoyantPolicy> = vec![&mut nc, &mut ajc, &mut eager];
    for policy in policies {
        let name = policy.name();
        let (_, ev) = run_online(&instance, law, policy)?;
        println!(
            "{name:<22} {:>10.4} {:>11.4} {:>12.4}",
            ev.objective.energy,
            ev.objective.frac_flow,
            ev.objective.fractional()
        );
    }

    // The paper's algorithm through the firewall is *identical* to the
    // direct closed-form simulation — the executable non-clairvoyance proof.
    let direct = run_nc_uniform(&instance, law)?;
    let (_, online) = run_online(&instance, law, &mut NcUniformPolicy)?;
    println!();
    println!(
        "firewalled NC vs direct simulation: {:.3e} relative difference",
        (online.objective.fractional() - direct.objective.fractional()).abs()
            / direct.objective.fractional()
    );
    Ok(())
}
