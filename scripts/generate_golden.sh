#!/usr/bin/env sh
# Regenerate the committed golden traces under traces/ (EXPERIMENTS.md,
# "Record/replay and the golden-trace gate").
#
# Each golden is a small, fully-finalized `.nct` trace recorded from a
# seeded synthetic workload, with its generator line stored in the trace
# header's note field so the artifact is self-describing. verify.sh replays
# every golden on every run and requires bitwise-identical completions and
# objectives — a scheduler change that perturbs even one mantissa bit shows
# up as a red gate, not a silent drift.
#
# Regeneration is deterministic: same seed, same binary, same bytes. Run
# this only when a deliberate scheduler change makes the old goldens stale,
# and commit the new traces together with the change that explains them.

set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline -p ncss-cli"
cargo build --release --offline -p ncss-cli
cli=target/release/ncss-cli

mkdir -p traces

record() {
    out="$1"; algo="$2"; alpha="$3"; seed="$4"; n="$5"; rate="$6"
    note="generate_golden.sh: --synthetic $n --rate $rate --seed $seed --algorithm $algo --alpha $alpha"
    "$cli" record --synthetic "$n" --rate "$rate" --seed "$seed" \
        --algorithm "$algo" --alpha "$alpha" --checkpoint-every 10 \
        --note "$note" --out "traces/$out"
    # A golden must replay bitwise and pass the independent audit before
    # it is allowed to exist.
    "$cli" replay --trace "traces/$out" --audit 1 > /dev/null \
        || { echo "FAIL: fresh golden $out does not replay" >&2; exit 1; }
    echo "traces/$out: ok"
}

record c_alpha2.nct    c  2.0 101 48 1.4
record nc_alpha3.nct   nc 3.0 202 40 1.1
record c_alpha2_5.nct  c  2.5 303 56 1.7

echo "golden traces regenerated; commit traces/*.nct if the change is intentional"
