#!/usr/bin/env sh
# Offline verification gate for the ncss workspace.
#
# The dependency policy (DESIGN.md §5) requires the whole workspace to
# build, test, and document with zero external crates and no network
# access. This script is the enforcement: it must pass on a machine with
# no registry reachable.
#
#   1. offline release build of every crate
#   2. offline workspace test suite (unit + integration + property tests)
#   3. warning-clean `cargo doc --no-deps`
#
# Run from anywhere; it cd's to the repo root.

set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --workspace --release --offline"
cargo build --workspace --release --offline

echo "==> cargo test --workspace -q --offline"
cargo test --workspace -q --offline

echo "==> cargo doc --workspace --no-deps --offline (must be warning-clean)"
doc_log="$(RUSTDOCFLAGS="${RUSTDOCFLAGS:-}" cargo doc --workspace --no-deps --offline 2>&1)" || {
    printf '%s\n' "$doc_log"
    exit 1
}
printf '%s\n' "$doc_log"
if printf '%s\n' "$doc_log" | grep -q "^warning"; then
    echo "FAIL: cargo doc emitted warnings" >&2
    exit 1
fi

echo "verify.sh: all gates passed"
