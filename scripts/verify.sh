#!/usr/bin/env sh
# Offline verification gate for the ncss workspace.
#
# The dependency policy (DESIGN.md §5) requires the whole workspace to
# build, test, and document with zero external crates and no network
# access. This script is the enforcement: it must pass on a machine with
# no registry reachable.
#
#   1. offline release build of every crate
#   2. offline workspace test suite (unit + integration + property tests)
#   3. offline doc-tests (the rustdoc examples are executable contracts)
#   4. fault-injection robustness contract in --release (the guard rails
#      must hold where debug_assert! is compiled out); its wall-time is
#      reported so sharding/step-cap regressions are visible in CI logs
#   5. closed-form-vs-quadrature property tests in --release (the
#      analytic fast path must match the quadrature reference to 1e-12
#      where debug_assert! is compiled out)
#   6. audit smoke: every schedule-producing algorithm on a generated
#      trace must pass the independent audit; the parallel algorithms
#      go through the cross-machine auditor, and a deliberately
#      corrupted report must come back non-zero; the kernel gate checks
#      that alpha=2 compiles the specialised quadratic power kernel and
#      that a mis-selected kernel (--corrupt kernel) trips the
#      energy-recomputed check
#   7. fleet smoke: the sharded multi-machine runners (dispatch log +
#      per-machine pool tasks, DESIGN.md §12) must match the serial
#      runners bitwise and pass the incremental cross-machine audit;
#      a corrupted outcome must come back non-zero naming the tripped
#      check; with NCSS_SOAK=1 the full k-sweep study regenerates
#      BENCH_fleet.json and bench-diffs it against the committed
#      baseline (metrics held to float slack)
#   8. stream smoke: the bounded-memory streaming core must match the
#      batch runner bitwise and pass the audit (batch-rebuilt and O(delta)
#      incremental), ingest stdin, and a corrupted streamed objective must
#      exit non-zero under both audit modes; the default lane always runs
#      a short soak (NCSS_STREAM_SOAK_N=200000) through bench-diff against
#      the committed baseline — unlimited timing headroom (the normalised
#      ns/item report is the comparison), zero tolerance on audit-verdict,
#      mode, or metric flips; with NCSS_SOAK=1 the full ≥10M-release
#      flat-memory + audited-throughput soak bench runs too (off by
#      default), bench-diffed against the committed baseline
#   9. bench-diff smoke: each committed BENCH_*.json self-compares to
#      zero regressions (exercises the JSON parser + diff engine on the
#      real artifacts), and the tool's exit-code contract is probed
#  10. warning-clean `cargo doc --no-deps`
#
# Run from anywhere; it cd's to the repo root.

set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --workspace --release --offline"
cargo build --workspace --release --offline

echo "==> cargo test --workspace -q --offline"
cargo test --workspace -q --offline

echo "==> cargo test --workspace --doc -q --offline"
cargo test --workspace --doc -q --offline

echo "==> cargo test --release -q --offline --test fault_contract"
fault_start=$(date +%s)
cargo test --release -q --offline --test fault_contract
echo "fault contract wall-time: $(($(date +%s) - fault_start))s"

echo "==> cargo test --release -q --offline --test closed_form_quadrature --test audit_property --test fleet_identity"
cargo test --release -q --offline --test closed_form_quadrature --test audit_property --test fleet_identity

echo "==> audit smoke (ncss-cli audit on a generated trace)"
cli=target/release/ncss-cli
trace="$(mktemp /tmp/ncss_verify_trace.XXXXXX.csv)"
trap 'rm -f "$trace"' EXIT
"$cli" generate --n 8 --seed 42 > "$trace"
for algo in c nc active-count newest-first constant:1.5 known-sharing; do
    "$cli" audit --algorithm "$algo" --input "$trace" --alpha 2 > /dev/null \
        || { echo "FAIL: audit rejected $algo" >&2; exit 1; }
done
# The step-integrated algorithm is audited at its honest tolerance.
"$cli" audit --algorithm nc-nonuniform --input "$trace" --alpha 2 --rel-tol 1e-2 > /dev/null \
    || { echo "FAIL: audit rejected nc-nonuniform" >&2; exit 1; }
echo "audit smoke passed"

echo "==> kernel gate (compiled power-kernel strategy)"
# alpha = 2 must compile the specialised quadratic chains — the soak
# bench's attribution and the audit's shared-kernel doctrine (DESIGN.md
# §13) both assume the selection table.
"$cli" run --algorithm c --input "$trace" --alpha 2 | grep -q "kernel = quadratic" \
    || { echo "FAIL: alpha=2 did not report the quadratic kernel" >&2; exit 1; }
# Mandatory-red probe: a mis-selected kernel (reports alpha = 2, evaluates
# with the cubic chains) must trip the honest energy re-derivation.
kern_log="$(mktemp /tmp/ncss_verify_kern.XXXXXX.log)"
if "$cli" audit --algorithm c --input "$trace" --alpha 2 --corrupt kernel \
        > "$kern_log" 2>&1; then
    echo "FAIL: mis-selected kernel passed the audit" >&2
    rm -f "$kern_log"; exit 1
fi
grep -q "energy-recomputed" "$kern_log" \
    || { echo "FAIL: kernel probe did not name energy-recomputed" >&2; rm -f "$kern_log"; exit 1; }
rm -f "$kern_log"
echo "kernel gate passed"

echo "==> multi-machine audit smoke (cross-machine auditor via ncss-cli)"
for algo in c-par nc-par dispatch; do
    "$cli" audit --algorithm "$algo" --machines 3 --input "$trace" --alpha 2 > /dev/null \
        || { echo "FAIL: multi audit rejected $algo" >&2; exit 1; }
done
# A corrupted report must be rejected (non-zero exit) by the same gate.
if "$cli" audit --algorithm nc-par --machines 3 --input "$trace" --alpha 2 \
        --corrupt energy > /dev/null 2>&1; then
    echo "FAIL: corrupted nc-par report passed the multi audit" >&2
    exit 1
fi
echo "multi audit smoke passed"

echo "==> fleet smoke (sharded runners vs serial, incremental audit gate)"
# Every sharded algorithm on a small fleet must reproduce the serial runner
# bit for bit (the command itself enforces --check-serial 1 by default) and
# pass the event-driven cross-machine audit.
for algo in c-par nc-par dispatch; do
    "$cli" fleet --algorithm "$algo" --machines 4 --threads 3 --input "$trace" \
        --alpha 2 --audit incremental > /dev/null \
        || { echo "FAIL: sharded $algo diverged from serial or failed audit" >&2; exit 1; }
done
# Mandatory-red probe: a corrupted sharded outcome must exit non-zero AND
# name the tripped check in the report.
fleet_log="$(mktemp /tmp/ncss_verify_fleet.XXXXXX.log)"
if "$cli" fleet --algorithm nc-par --machines 4 --input "$trace" --alpha 2 \
        --audit incremental --corrupt energy > /dev/null 2> "$fleet_log"; then
    echo "FAIL: corrupted sharded outcome passed the fleet audit" >&2
    rm -f "$fleet_log"; exit 1
fi
grep -q "energy-recomputed" "$fleet_log" \
    || { echo "FAIL: fleet audit rejection did not name energy-recomputed" >&2; rm -f "$fleet_log"; exit 1; }
# A phantom duplicate machine timeline must trip the cross-machine check.
if "$cli" fleet --algorithm c-par --machines 4 --input "$trace" --alpha 2 \
        --corrupt schedule > /dev/null 2> "$fleet_log"; then
    echo "FAIL: duplicated machine timeline passed the fleet audit" >&2
    rm -f "$fleet_log"; exit 1
fi
grep -q "no-double-service" "$fleet_log" \
    || { echo "FAIL: fleet audit rejection did not name no-double-service" >&2; rm -f "$fleet_log"; exit 1; }
rm -f "$fleet_log"
echo "fleet smoke passed"

echo "==> stream smoke (bounded-memory streaming vs batch, bitwise)"
# The streamed run must agree with the batch runner bitwise and pass the
# independent audit; stdin ingestion must work; a deliberately skewed
# objective must turn both gates red (non-zero exit).
for algo in c nc; do
    "$cli" stream --algorithm "$algo" --input "$trace" --alpha 2 \
        --check-batch 1 --audit 1 > /dev/null \
        || { echo "FAIL: stream $algo diverged from batch or failed audit" >&2; exit 1; }
done
"$cli" stream --algorithm c --input - --alpha 2 --assert-active 64 < "$trace" > /dev/null \
    || { echo "FAIL: stream could not ingest stdin" >&2; exit 1; }
# Always-on auditor: the O(delta) incremental audit rides the bounded-
# memory configuration (no schedule rebuild) and must pass on honest runs.
for algo in c nc; do
    "$cli" stream --algorithm "$algo" --input "$trace" --alpha 2 \
        --audit incremental > /dev/null \
        || { echo "FAIL: stream $algo failed the incremental audit" >&2; exit 1; }
done
# Mandatory-red probe: the incremental auditor must reject a corrupted
# streamed objective with a non-zero exit and a named check.
inc_log="$(mktemp /tmp/ncss_verify_inc.XXXXXX.log)"
if "$cli" stream --algorithm c --input "$trace" --alpha 2 \
        --audit incremental --corrupt energy > /dev/null 2> "$inc_log"; then
    echo "FAIL: corrupted streamed objective passed the incremental audit" >&2
    rm -f "$inc_log"; exit 1
fi
grep -q "energy-recomputed" "$inc_log" \
    || { echo "FAIL: incremental audit rejection did not name energy-recomputed" >&2; rm -f "$inc_log"; exit 1; }
rm -f "$inc_log"
if "$cli" stream --algorithm c --input "$trace" --alpha 2 \
        --check-batch 1 --corrupt energy > /dev/null 2>&1; then
    echo "FAIL: corrupted streamed objective passed the batch cross-check" >&2
    exit 1
fi
if "$cli" stream --algorithm nc --input "$trace" --alpha 2 \
        --audit 1 --corrupt energy > /dev/null 2>&1; then
    echo "FAIL: corrupted streamed objective passed the audit" >&2
    exit 1
fi
echo "stream smoke passed"

echo "==> short soak gate (perf_stream at 200k releases through bench-diff)"
# A fast always-on cut of the 10M soak: regenerate BENCH_stream.json at
# 200k releases and bench-diff it against the committed full-length
# baseline. Raw quantiles get unlimited headroom (a shorter soak is just
# faster; the normalised ns/item throughput report is the real
# comparison), but an audit-verdict flip, an audit-mode flip, a drifted
# metric, or a vanished row fails with zero tolerance.
short_out="$(mktemp -d /tmp/ncss_verify_short.XXXXXX)"
NCSS_STREAM_SOAK_N=200000 NCSS_BENCH_DIR="$short_out" \
    cargo bench --offline -p ncss-bench --bench perf_stream > /dev/null
target/release/bench-diff BENCH_stream.json "$short_out/BENCH_stream.json" \
    --threshold 1000000 --floor-ns 100000000000 \
    || { echo "FAIL: short soak flipped a verdict/mode/metric vs the committed baseline" >&2; rm -rf "$short_out"; exit 1; }
rm -rf "$short_out"
echo "short soak gate passed"

echo "==> replay gate (committed golden traces + crash/tamper probes)"
# Every committed golden trace must strict-read, replay with bitwise-equal
# completions/objectives, and pass the independent audit — offline, no
# regeneration. A scheduler change that moves one mantissa bit goes red.
golden_count=0
for golden in traces/*.nct; do
    [ -f "$golden" ] || { echo "FAIL: no committed golden traces under traces/" >&2; exit 1; }
    golden_count=$((golden_count + 1))
    "$cli" replay --trace "$golden" --audit 1 > /dev/null \
        || { echo "FAIL: golden $golden does not replay bitwise" >&2; exit 1; }
done
echo "replayed $golden_count golden traces bitwise"
# Mandatory-red probe: a tampered golden must be rejected with a named
# trace error and a non-zero exit. Silent acceptance fails the gate.
nct_tmp="$(mktemp /tmp/ncss_verify_tamper.XXXXXX.nct)"
for kind in bit-flip truncate duplicate-frame reorder-frames bad-length stale-version; do
    "$cli" tamper --trace traces/c_alpha2.nct --out "$nct_tmp" --kind "$kind" --seed 7 > /dev/null
    if "$cli" replay --trace "$nct_tmp" > /dev/null 2>&1; then
        echo "FAIL: $kind-tampered golden replayed as clean" >&2
        rm -f "$nct_tmp"; exit 1
    fi
done
# Crash chain: record, kill mid-run leaving a torn tail, resume from the
# last checkpoint, and require the resumed trace to equal an uninterrupted
# recording event-for-event.
full_tmp="$(mktemp /tmp/ncss_verify_full.XXXXXX.nct)"
torn_tmp="$(mktemp /tmp/ncss_verify_torn.XXXXXX.nct)"
res_tmp="$(mktemp /tmp/ncss_verify_resumed.XXXXXX.nct)"
cleanup_nct() { rm -f "$nct_tmp" "$full_tmp" "$torn_tmp" "$res_tmp"; }
"$cli" record --synthetic 64 --rate 1.3 --seed 4242 --algorithm c --alpha 2.5 \
    --checkpoint-every 9 --out "$full_tmp" > /dev/null \
    || { echo "FAIL: record could not write a trace" >&2; cleanup_nct; exit 1; }
"$cli" record --synthetic 64 --rate 1.3 --seed 4242 --algorithm c --alpha 2.5 \
    --checkpoint-every 9 --kill-after 37 --torn-bytes 17 --out "$torn_tmp" > /dev/null \
    || { echo "FAIL: kill-after recording failed" >&2; cleanup_nct; exit 1; }
"$cli" resume --trace "$torn_tmp" --synthetic 64 --rate 1.3 --seed 4242 \
    --checkpoint-every 9 --out "$res_tmp" > /dev/null \
    || { echo "FAIL: resume could not recover the torn trace" >&2; cleanup_nct; exit 1; }
"$cli" replay --trace "$res_tmp" --audit 1 --check-against "$full_tmp" > /dev/null \
    || { echo "FAIL: resumed trace is not bitwise-equal to the uninterrupted run" >&2; cleanup_nct; exit 1; }
cleanup_nct
echo "replay gate passed"

# Soak gate, opt-in (NCSS_SOAK=1): pushes NCSS_STREAM_SOAK_N (default 10M)
# releases through each streaming core with flat-memory assertions; writes
# BENCH_stream.json. Too slow for the default CI lane.
if [ "${NCSS_SOAK:-0}" = "1" ]; then
    echo "==> soak bench (cargo bench -p ncss-bench --bench perf_stream)"
    bench_out="$(mktemp -d /tmp/ncss_verify_bench.XXXXXX)"
    NCSS_BENCH_DIR="$bench_out" cargo bench --offline -p ncss-bench --bench perf_stream
    # Bench-diff the fresh artifact against the committed baseline with
    # generous timing headroom (soak boxes vary wildly) but zero tolerance
    # for audit-verdict flips or vanished rows.
    target/release/bench-diff BENCH_stream.json "$bench_out/BENCH_stream.json" \
        --threshold 10000 --floor-ns 1000000000 \
        || { echo "FAIL: fresh soak artifact regressed vs committed baseline" >&2; rm -rf "$bench_out"; exit 1; }
    echo "==> fleet k-sweep bench (cargo bench -p ncss-bench --bench perf_fleet)"
    # Regenerate the k ∈ {2..4096} sharded study and hold it to the committed
    # baseline: generous timing headroom, but the deterministic `metrics`
    # columns (degradation ratios, lower-bound envelopes, log-log slopes) are
    # compared to float slack — any real drift means the algorithm changed.
    NCSS_BENCH_DIR="$bench_out" cargo bench --offline -p ncss-bench --bench perf_fleet
    target/release/bench-diff BENCH_fleet.json "$bench_out/BENCH_fleet.json" \
        --threshold 10000 --floor-ns 1000000000 \
        || { echo "FAIL: fresh fleet k-sweep regressed vs committed baseline" >&2; rm -rf "$bench_out"; exit 1; }
    rm -rf "$bench_out"
    echo "soak bench passed"
fi

echo "==> bench-diff smoke (committed BENCH_*.json self-compare)"
bench_diff=target/release/bench-diff
for artifact in BENCH_*.json; do
    [ -f "$artifact" ] || { echo "FAIL: no committed BENCH_*.json artifacts" >&2; exit 1; }
    "$bench_diff" "$artifact" "$artifact" > /dev/null \
        || { echo "FAIL: bench-diff flagged $artifact against itself" >&2; exit 1; }
done
# Exit-code contract: a missing file is a usage error (2), not a diff.
if "$bench_diff" BENCH_algorithms.json /nonexistent.json > /dev/null 2>&1; then
    echo "FAIL: bench-diff accepted a nonexistent candidate" >&2
    exit 1
fi
# Verdict-flip probe: an audit that goes pass→fail must be a regression
# (exit 1) no matter how generous the timing thresholds are.
bench_tmp="$(mktemp /tmp/ncss_verify_bench.XXXXXX.json)"
sed 's/"audit":"pass"/"audit":"fail"/' BENCH_algorithms.json > "$bench_tmp"
rc=0
"$bench_diff" BENCH_algorithms.json "$bench_tmp" --threshold 10000 --floor-ns 1000000000 \
    > /dev/null 2>&1 || rc=$?
if [ "$rc" != "1" ]; then
    echo "FAIL: bench-diff exit $rc on an audit verdict flip (want 1)" >&2
    rm -f "$bench_tmp"; exit 1
fi
# Metric-drift probe: a deterministic `metrics` scalar (schema /4) that
# moves past float slack — here every fleet row's job count — must be a
# regression (exit 1) regardless of timing headroom.
sed 's/"jobs":[0-9.e+-]*/"jobs":1e0/g' BENCH_fleet.json > "$bench_tmp"
rc=0
"$bench_diff" BENCH_fleet.json "$bench_tmp" --threshold 10000 --floor-ns 1000000000 \
    > /dev/null 2>&1 || rc=$?
if [ "$rc" != "1" ]; then
    echo "FAIL: bench-diff exit $rc on a drifted fleet metric (want 1)" >&2
    rm -f "$bench_tmp"; exit 1
fi
# Schema-drift probe: an unknown ncss-bench/N is a named tool error (exit
# 2), never a parse panic and never a silent pass. Version-agnostic so the
# probe survives schema bumps of the committed artifacts.
sed 's|"schema":"ncss-bench/[0-9]*"|"schema":"ncss-bench/9"|' BENCH_algorithms.json > "$bench_tmp"
rc=0
"$bench_diff" BENCH_algorithms.json "$bench_tmp" > /dev/null 2>&1 || rc=$?
if [ "$rc" != "2" ]; then
    echo "FAIL: bench-diff exit $rc on schema drift (want 2)" >&2
    rm -f "$bench_tmp"; exit 1
fi
rm -f "$bench_tmp"
echo "bench-diff smoke passed"

echo "==> cargo doc --workspace --no-deps --offline (must be warning-clean)"
doc_log="$(RUSTDOCFLAGS="${RUSTDOCFLAGS:-}" cargo doc --workspace --no-deps --offline 2>&1)" || {
    printf '%s\n' "$doc_log"
    exit 1
}
printf '%s\n' "$doc_log"
if printf '%s\n' "$doc_log" | grep -q "^warning"; then
    echo "FAIL: cargo doc emitted warnings" >&2
    exit 1
fi

echo "verify.sh: all gates passed"
