//! Distribution helpers shared by the workload generators.
//!
//! Every sampler is a pure function of the generator state, drawing a
//! fixed number of uniforms per call, so workload streams remain
//! bit-reproducible regardless of which distribution mix a spec uses.
//! All of them use inverse-transform sampling on a `(0, 1]` uniform —
//! no rejection loops — so the draw count per job is constant.

use crate::pcg::Pcg64;

/// Exponential with the given mean (`mean > 0`): `-mean · ln U`.
#[inline]
pub fn exponential(rng: &mut Pcg64, mean: f64) -> f64 {
    -mean * rng.f64_open().ln()
}

/// Pareto with minimum `scale` and tail index `shape`:
/// `scale · U^{-1/shape}`. Smaller `shape` = heavier tail; the mean is
/// finite only for `shape > 1`.
#[inline]
pub fn pareto(rng: &mut Pcg64, scale: f64, shape: f64) -> f64 {
    scale * rng.f64_open().powf(-1.0 / shape)
}

/// One inter-arrival gap of a homogeneous Poisson process with the given
/// rate (`rate > 0`) — exponential with mean `1/rate`.
#[inline]
pub fn poisson_gap(rng: &mut Pcg64, rate: f64) -> f64 {
    exponential(rng, 1.0 / rate)
}

/// Log-uniform on `[lo, hi]` (`0 < lo <= hi`): uniform in log-space.
#[inline]
pub fn log_uniform(rng: &mut Pcg64, lo: f64, hi: f64) -> f64 {
    rng.range_f64(lo.ln(), hi.ln()).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Pcg64 {
        Pcg64::seed_from_u64(42)
    }

    #[test]
    fn exponential_mean_converges() {
        let mut r = rng();
        let n = 50_000;
        let m: f64 = (0..n).map(|_| exponential(&mut r, 2.0)).sum::<f64>() / n as f64;
        assert!((m - 2.0).abs() < 0.05, "mean {m}");
    }

    #[test]
    fn exponential_is_nonnegative() {
        let mut r = rng();
        assert!((0..10_000).all(|_| exponential(&mut r, 1.0) >= 0.0));
    }

    #[test]
    fn pareto_respects_scale_and_tail() {
        let mut r = rng();
        let samples: Vec<f64> = (0..20_000).map(|_| pareto(&mut r, 1.0, 1.5)).collect();
        assert!(samples.iter().all(|&x| x >= 1.0));
        let max = samples.iter().cloned().fold(0.0, f64::max);
        assert!(max > 50.0, "heavy tail should produce large values, max {max}");
    }

    #[test]
    fn poisson_gaps_average_inverse_rate() {
        let mut r = rng();
        let n = 50_000;
        let m: f64 = (0..n).map(|_| poisson_gap(&mut r, 4.0)).sum::<f64>() / n as f64;
        assert!((m - 0.25).abs() < 0.01, "mean gap {m}");
    }

    #[test]
    fn log_uniform_stays_in_band_and_covers_decades() {
        let mut r = rng();
        let samples: Vec<f64> = (0..5_000).map(|_| log_uniform(&mut r, 0.1, 10.0)).collect();
        assert!(samples.iter().all(|&x| (0.1..=10.0).contains(&x)));
        let below_one = samples.iter().filter(|&&x| x < 1.0).count();
        // Log-uniform puts half the mass below the geometric midpoint 1.0.
        let frac = below_one as f64 / samples.len() as f64;
        assert!((frac - 0.5).abs() < 0.05, "frac below 1.0: {frac}");
    }
}
