//! # ncss-rng — in-repo deterministic randomness
//!
//! The workspace builds fully offline, so instead of pulling `rand` and
//! `proptest` from a registry this crate provides the three pieces the rest
//! of the workspace actually needs:
//!
//! * [`pcg`] — a seedable [`Pcg64`] generator (PCG XSL-RR 128/64, seeded
//!   through SplitMix64) with the usual range/bool/float draws,
//! * [`dist`] — the distribution helpers the workload generators use
//!   (uniform, exponential, Pareto, Poisson arrival gaps, log-uniform),
//! * [`check`] — a deterministic property-test harness with a
//!   `proptest!`-compatible macro surface: seeded cases, `prop_assert!` /
//!   `prop_assume!`, and shrinking by bisection on the seed index.
//!
//! Determinism guarantee: every draw is a pure function of the seed and the
//! draw index. The same seed produces bit-identical streams on every
//! platform, build profile, and thread — workload generation and property
//! tests are exactly reproducible (see DESIGN.md "Dependency policy").

#![warn(missing_docs)]

pub mod check;
pub mod dist;
pub mod pcg;

/// `proptest`-style collection strategies ([`collection::vec`]).
pub mod collection {
    pub use crate::check::vec;
}

/// One-stop prelude for property tests: `use ncss_rng::props::*;`.
pub mod props {
    pub use crate::check::{Just, ProptestConfig, Strategy};
    pub use crate::pcg::Pcg64;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

pub use pcg::{Pcg64, SplitMix64};
