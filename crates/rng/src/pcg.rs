//! Seedable generators: SplitMix64 (seed expansion) and PCG64 (the
//! workhorse stream).
//!
//! PCG64 here is the XSL-RR 128/64 member of O'Neill's PCG family: a
//! 128-bit LCG state narrowed to 64 output bits by a xor-shift-low and a
//! random rotation. It passes the statistical batteries that matter for
//! simulation workloads (BigCrush via the reference implementation) while
//! staying ~5 lines of arithmetic; it is *not* cryptographic. A 64-bit user
//! seed is expanded into the 192 bits of generator state (128-bit state +
//! 64-bit odd stream constant) through SplitMix64, so distinct small seeds
//! land on uncorrelated streams.

/// SplitMix64 — a tiny, full-period 64-bit generator used to expand seeds.
///
/// Every output bit passes avalanche: consecutive seeds (0, 1, 2, …) yield
/// statistically independent expansions, which is exactly the property a
/// seed-expander needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Start a stream at `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// PCG64 (XSL-RR 128/64): the workspace's standard generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pcg64 {
    state: u128,
    /// Stream selector; always odd.
    inc: u128,
}

const PCG_MULTIPLIER: u128 = 0x2360_ED05_1FC6_5DA4_4385_DF64_9FCC_F645;

impl Pcg64 {
    /// Seed deterministically from a 64-bit seed via SplitMix64 expansion.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let state = (u128::from(sm.next_u64()) << 64) | u128::from(sm.next_u64());
        let stream = (u128::from(sm.next_u64()) << 64) | u128::from(sm.next_u64());
        let inc = (stream << 1) | 1;
        let mut rng = Self { state: 0, inc };
        // Standard PCG initialisation: one step, add the seed state, step
        // again, so the first output already mixes both state and stream.
        rng.step();
        rng.state = rng.state.wrapping_add(state);
        rng.step();
        rng
    }

    #[inline]
    fn step(&mut self) {
        self.state = self.state.wrapping_mul(PCG_MULTIPLIER).wrapping_add(self.inc);
    }

    /// Next 64 output bits (XSL-RR on the pre-step state).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let state = self.state;
        self.step();
        let rot = (state >> 122) as u32;
        let xored = ((state >> 64) as u64) ^ (state as u64);
        xored.rotate_right(rot)
    }

    /// Uniform `f64` in `[0, 1)` with full 53-bit mantissa resolution.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `(0, 1]` — safe to feed into `ln()`.
    #[inline]
    pub fn f64_open(&mut self) -> f64 {
        ((self.next_u64() >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)` (degenerates to `lo` when `hi <= lo`).
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }

    /// Uniform `usize` in `[0, n)`. `n` must be positive.
    ///
    /// Uses multiply-shift with a rejection step, so the result is exactly
    /// uniform (no modulo bias) and still one multiplication in the common
    /// case.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is meaningless");
        let n = n as u64;
        // Lemire's method: x*n/2^64, rejecting the biased low fringe.
        let mut x = self.next_u64();
        let mut m = u128::from(x) * u128::from(n);
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                x = self.next_u64();
                m = u128::from(x) * u128::from(n);
                lo = m as u64;
            }
        }
        (m >> 64) as usize
    }

    /// Bernoulli draw: `true` with probability `p`.
    #[inline]
    pub fn bool(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Fork an independent generator for a sub-task, advancing this one.
    ///
    /// The child is seeded from a fresh 64-bit draw, so parent and child
    /// streams are uncorrelated and both remain deterministic.
    #[must_use]
    pub fn fork(&mut self) -> Self {
        Self::seed_from_u64(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // First outputs for seed 1234567 from the public-domain reference
        // implementation (Vigna).
        let mut sm = SplitMix64::new(1234567);
        assert_eq!(sm.next_u64(), 6457827717110365317);
        assert_eq!(sm.next_u64(), 3203168211198807973);
        assert_eq!(sm.next_u64(), 9817491932198370423);
    }

    #[test]
    fn pcg_is_deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = Pcg64::seed_from_u64(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Pcg64::seed_from_u64(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = Pcg64::seed_from_u64(43);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn f64_draws_are_in_bounds() {
        let mut r = Pcg64::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
            let y = r.f64_open();
            assert!(y > 0.0 && y <= 1.0);
            let z = r.range_f64(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&z));
        }
    }

    #[test]
    fn f64_mean_is_centered() {
        let mut r = Pcg64::seed_from_u64(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn below_is_unbiased_and_in_range() {
        let mut r = Pcg64::seed_from_u64(3);
        let mut counts = [0usize; 7];
        let n = 70_000;
        for _ in 0..n {
            let k = r.below(7);
            assert!(k < 7);
            counts[k] += 1;
        }
        for &c in &counts {
            let expect = n / 7;
            assert!(
                (c as i64 - expect as i64).unsigned_abs() < (expect / 10) as u64,
                "counts {counts:?}"
            );
        }
    }

    #[test]
    fn bool_respects_probability() {
        let mut r = Pcg64::seed_from_u64(5);
        let hits = (0..50_000).filter(|_| r.bool(0.3)).count();
        let frac = hits as f64 / 50_000.0;
        assert!((frac - 0.3).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn fork_streams_are_uncorrelated_and_deterministic() {
        let mut a = Pcg64::seed_from_u64(1);
        let mut b = Pcg64::seed_from_u64(1);
        let mut fa = a.fork();
        let mut fb = b.fork();
        let xs: Vec<u64> = (0..4).map(|_| fa.next_u64()).collect();
        let ys: Vec<u64> = (0..4).map(|_| fb.next_u64()).collect();
        assert_eq!(xs, ys);
        // The parent advanced, so its continuation differs from the fork.
        assert_ne!(a.next_u64(), xs[0]);
    }
}
