//! Closed-form segment integrals — the audit's analytic fast path.
//!
//! Every speed law a [`Segment`] can carry (`Idle`, `Constant`, and the
//! `W^{1−1/α}`-linear `Decay`/`Growth` power-law kernels) admits exact
//! antiderivatives under `P(s) = s^α`, so the audit does not need generic
//! quadrature for them: energy, processed volume, the volume inverse used
//! for completion re-derivation, and the `(c − t)`-weighted speed integral
//! behind fractional flow are all evaluated here analytically.
//!
//! ## Independence
//!
//! The formulas below are re-derived from the segment's *law parameters*
//! (Lemma 2 of the paper: with `β = 1 − 1/α`, the weight's `β`-th power is
//! linear in time), deliberately **not** by calling the simulator's
//! `ncss_sim::kernel` integrators, so an algebra slip in the simulators
//! cannot silently certify itself. Scalar exponentiation, however, routes
//! through the run's compiled [`PowKernel`](ncss_sim::PowKernel) strategy
//! (`pl.pow_beta`, `pl.power`, …) — the audit must evaluate `x^β` with the
//! *same* primitive the schedulers used, or the differential oracles stop
//! being bitwise within a run. The math is of course the same math — which
//! is why the audit keeps a *sampled quadrature cross-check tier*: every
//! `cross_check_stride`-th integral in an audit is still measured by
//! tanh-sinh quadrature of the pointwise speed/power curve
//! ([`crate::quad::integrate`]), so a shared-formula (or shared-kernel)
//! error would surface as a mismatch between the sampled and analytic
//! values inside the very same check. Generic laws without closed forms
//! (none today) would fall back to full quadrature.
//!
//! The scale factor `k` of a segment multiplies speed pointwise, so volume
//! scales by `k` and energy by `k^α`; all functions here handle it.
//!
//! ## Numerical form
//!
//! Everything is phrased in the dimensionless *drained fraction*
//! `y = ρβτ / X^β` of the linear-in-time quantity `X^β` (`X = w0` or
//! `u0`), and the factors `1 − (1−y)^p` / `(1+y)^p − 1` are computed via
//! `exp_m1`/`ln_1p` rather than as differences of two `powf` results.
//! The naive difference cancels catastrophically when `y ≪ 1` (a short
//! segment of a heavy job) and the error is amplified again in the
//! flow-time integral `∫ V dτ`, where the leading terms of `w0·τ` and the
//! energy integral cancel; the stable form keeps every function here
//! within a few ulp of exact across magnitudes `1e±150` (property-tested
//! against quadrature to `1e-12` relative in
//! `tests/closed_form_quadrature.rs`).

use ncss_sim::{PowerLaw, Segment, SpeedLaw};

/// `1 − (1−y)^p` without cancellation for small `y` (callers clamp
/// `y ≤ 1`; `ln_1p(−1) = −∞` makes `y = 1` return exactly `1`).
fn one_minus_pow1m(y: f64, p: f64) -> f64 {
    -f64::exp_m1(p * f64::ln_1p(-y))
}

/// `(1+y)^p − 1` without cancellation for small `y`.
fn powp1_minus_one(y: f64, p: f64) -> f64 {
    f64::exp_m1(p * f64::ln_1p(y))
}

/// Dimensionless flow-integral ratio `VI/(V·T) = ∫₀¹ φ(y·s) ds / φ(y)`
/// with `φ(x) = 1 − (1−x)^p` (decay, `sign = −1`) or `(1+x)^p − 1`
/// (growth, `sign = +1`), evaluated by power series.
///
/// Both series share the leading term `p·y`, which is factored out, so
/// the ratio is a quotient of two sums that start at `1/2` and `1` — no
/// intermediate ever leaves the unit scale. The closed forms cancel at
/// order `y` (and reach 0/0 = NaN once `y²` underflows), which is
/// exactly the sliver-segment regime ulp-level scheduling noise
/// produces; the series limit at `y → 0` is exactly `1/2`. Callers only
/// enter here for `p·|y| < 1/2`, where the term ratio is below `1/4`
/// and 64 iterations are far beyond f64 exhaustion.
fn vi_ratio_series(y: f64, p: f64, sign: f64) -> f64 {
    let mut term = 1.0; // u_k = t_k / (p·y·sign^{k+1}), u_1 = 1
    let mut num = 0.5; // Σ u_k / (k+1)
    let mut den = 1.0; // Σ u_k
    for k in 1..64 {
        let kf = k as f64;
        term *= (p - kf) * sign * y / (kf + 1.0);
        num += term / (kf + 2.0);
        den += term;
        if term.abs() <= f64::EPSILON * den.abs() {
            break;
        }
    }
    num / den
}

/// Volume processed in `[0, τ]` by growth from level zero:
/// `u(τ)/ρ = (ρβτ)^{1/β}/ρ`, factored as `ρ^{1/(α−1)}·(βτ)^{1/β}` (note
/// `(1−β)/β = 1/(α−1)`) so the level `u(τ)` — which can be subnormal or
/// overflow while the *volume* is perfectly representable — never appears
/// as an intermediate.
fn zero_growth_volume(pl: PowerLaw, rho: f64, tau: f64) -> f64 {
    pl.root_alpha_m1(rho) * pl.root_beta(pl.beta() * tau)
}

/// Processed volume over the whole segment: `∫ k·s(t) dt`.
///
/// * Constant `s`: `k·s·τ`.
/// * Decay from `w0` at density `ρ`: `k·(w0 − W(τ))/ρ` with
///   `W(τ) = (w0^β − ρβτ)^{1/β}` clamped at zero.
/// * Growth from `u0` at density `ρ`: `k·(u(τ) − u0)/ρ` with
///   `u(τ) = (u0^β + ρβτ)^{1/β}`.
#[must_use]
pub fn volume(pl: PowerLaw, seg: &Segment) -> f64 {
    volume_over(pl, seg, seg.duration())
}

/// Processed volume over `[seg.start, seg.start + tau]` (`tau` clamped to
/// the segment duration).
#[must_use]
pub fn volume_over(pl: PowerLaw, seg: &Segment, tau: f64) -> f64 {
    let tau = tau.clamp(0.0, seg.duration());
    let b = pl.beta();
    let base = match seg.law {
        SpeedLaw::Idle => 0.0,
        SpeedLaw::Constant { speed } => speed * tau,
        SpeedLaw::Decay { w0, rho } => {
            // Drained fraction of w0^β; ≥ 1 means the job empties inside
            // [0, tau] (the W = 0 clamp). NaN drains (w0 = tau = 0) take
            // the min to 1 and the w0 factor makes the volume 0.
            let y = (rho * b * tau / pl.pow_beta(w0)).min(1.0);
            (w0 / rho) * one_minus_pow1m(y, 1.0 / b)
        }
        SpeedLaw::Growth { u0, rho } => {
            if u0 <= 0.0 {
                zero_growth_volume(pl, rho, tau)
            } else {
                let y = rho * b * tau / pl.pow_beta(u0);
                (u0 / rho) * powp1_minus_one(y, 1.0 / b)
            }
        }
    };
    seg.scale * base
}

/// Energy over the whole segment: `∫ (k·s(t))^α dt = k^α ∫ s^α dt`.
///
/// Power equals the weight level for both kernels, so the energy is the
/// antiderivative of the linear-in-`t` quantity `X^β` raised to `1/β + 1`:
/// `(X_start^{1+β} − X_end^{1+β}) / (ρ(1+β))` (sign per direction).
#[must_use]
pub fn energy(pl: PowerLaw, seg: &Segment) -> f64 {
    let tau = seg.duration();
    let b = pl.beta();
    let q = (1.0 + b) / b;
    // Power equals the weight/level itself for both kernels (speed is
    // X^{1/α}), so the energy is `X·τ` times a dimensionless mean-level
    // factor in (0, 1] — a form whose intermediates stay at the result's
    // own scale. (`X^{1+β}/ρ`-style products under/overflow for
    // magnitudes whose result is perfectly representable.) The
    // `0.0 * X * tau` zero branches propagate NaN inputs.
    let base = match seg.law {
        SpeedLaw::Idle => 0.0,
        SpeedLaw::Constant { speed } => pl.power(speed) * tau,
        SpeedLaw::Decay { w0, rho } => {
            let y = rho * b * tau / pl.pow_beta(w0);
            if y > 0.0 {
                w0 * tau * (one_minus_pow1m(y.min(1.0), q) / (q * y))
            } else {
                0.0 * w0 * tau
            }
        }
        SpeedLaw::Growth { u0, rho } => {
            if u0 <= 0.0 {
                // u_end = v·ρ, so e = u_end·τ·β/(1+β) groups as
                // (v·τ)·ρ·β/(1+β) with the stable v.
                (zero_growth_volume(pl, rho, tau) * tau) * rho * b / (1.0 + b)
            } else {
                let y = rho * b * tau / pl.pow_beta(u0);
                if y > 0.0 {
                    u0 * tau * (powp1_minus_one(y, q) / (q * y))
                } else {
                    0.0 * u0 * tau
                }
            }
        }
    };
    pl.power(seg.scale) * base
}

/// Absolute time within the segment at which the cumulative processed
/// volume reaches `v` (callers must pass `0 ≤ v ≤ volume(seg)`); clamped
/// to `[seg.start, seg.end]`. Falls back to `seg.end` for laws that cannot
/// cross (idle, zero speed).
#[must_use]
pub fn time_at_volume(pl: PowerLaw, seg: &Segment, v: f64) -> f64 {
    if v <= 0.0 {
        return seg.start;
    }
    let b = pl.beta();
    let base_v = v / seg.scale;
    let tau = match seg.law {
        SpeedLaw::Idle => return seg.end,
        SpeedLaw::Constant { speed } => {
            if speed <= 0.0 {
                return seg.end;
            }
            base_v / speed
        }
        SpeedLaw::Decay { w0, rho } => {
            // Volume fraction of w0 delivered; ≥ 1 means the crossing sits
            // at (or past) the drain time.
            let z = (rho * base_v / w0).min(1.0);
            pl.pow_beta(w0) * one_minus_pow1m(z, b) / (rho * b)
        }
        SpeedLaw::Growth { u0, rho } => {
            if u0 <= 0.0 {
                // (ρ·v)^β/(ρβ) factored so ρ·v never underflows
                // (ρ^{β−1} = 1/ρ^{1/α} rides the speed_for_power chain).
                pl.pow_beta(base_v) / (pl.speed_for_power(rho) * b)
            } else {
                pl.pow_beta(u0) * powp1_minus_one(rho * base_v / u0, b) / (rho * b)
            }
        }
    };
    seg.start + tau.min(seg.duration())
}

/// `∫_{seg.start}^{min(seg.end, c)} (c − t) · k·s(t) dt` — the per-segment
/// served term of the fractional flow-time Fubini form.
///
/// With `d = c − seg.start`, `T = min(seg.end, c) − seg.start`, `V(τ)` the
/// running base volume and `VI(τ) = ∫₀^τ V`, integration by parts gives
/// `∫₀^T (d − τ) s(τ) dτ = (d − T)·V(T) + VI(T)`. `VI` is evaluated as
/// `V(T)·T·r` with `r = VI/(V·T) ∈ (0, 1]` the dimensionless mean-fill
/// ratio of the kernel — closed-form when the window drains/grows an
/// order-one fraction, a normalised power series (`vi_ratio_series`)
/// when it is a sliver.
#[must_use]
pub fn weighted_volume(pl: PowerLaw, seg: &Segment, c: f64) -> f64 {
    let hi = seg.end.min(c);
    if !(hi > seg.start) {
        return 0.0;
    }
    let t_cap = hi - seg.start;
    let d = c - seg.start;
    let b = pl.beta();
    let q = (1.0 + b) / b;
    let base = match seg.law {
        SpeedLaw::Idle => 0.0,
        SpeedLaw::Constant { speed } => speed * (d * t_cap - 0.5 * t_cap * t_cap),
        SpeedLaw::Decay { w0, rho } => {
            // VI = ∫V is expressed as `v·T·r` with `r = VI/(V·T)` the
            // dimensionless mean-fill ratio, so every intermediate stays
            // at the result's own scale. Three regimes for r:
            //
            // * `y ≥ 1` (window reaches the drain time, `w0 = 0` lands
            //   here as y = ∞): V is the constant `w0/ρ` past the drain,
            //   so VI keeps growing linearly and `r = 1 − 1/(qy)`.
            // * `p·y < 1/2` (sliver drains): the closed form for r
            //   cancels at order y, so use the normalised series — its
            //   `y → 0` limit is exactly 1/2.
            // * otherwise the closed form `(1 − F_q/(qy))/F_p` with
            //   `F_e = 1 − (1−y)^e`, whose subtraction is benign once
            //   `p·y` is order one.
            let p = 1.0 / b;
            let y = rho * b * t_cap / pl.pow_beta(w0);
            if y > 0.0 {
                let f = one_minus_pow1m(y.min(1.0), p);
                let v = (w0 / rho) * f;
                let r = if y >= 1.0 {
                    1.0 - 1.0 / (q * y)
                } else if p * y < 0.5 {
                    vi_ratio_series(y, p, -1.0)
                } else {
                    (1.0 - one_minus_pow1m(y, q) / (q * y)) / f
                };
                (d - t_cap) * v + v * t_cap * r
            } else {
                0.0 * w0 * t_cap
            }
        }
        SpeedLaw::Growth { u0, rho } => {
            let p = 1.0 / b;
            let y = if u0 > 0.0 { rho * b * t_cap / pl.pow_beta(u0) } else { f64::INFINITY };
            if y.is_infinite() {
                // Growth from (numerically) level zero: `u0^β ≪ ρβτ`.
                // The mean-fill ratio of `u(τ) ∝ τ^{1/β}` is exactly
                // `β/(1+β)`.
                let v = zero_growth_volume(pl, rho, t_cap);
                (d - t_cap) * v + v * t_cap * b / (1.0 + b)
            } else if y > 0.0 {
                let g = powp1_minus_one(y, p);
                let v = (u0 / rho) * g;
                let r = if p * y < 0.5 {
                    vi_ratio_series(y, p, 1.0)
                } else {
                    (powp1_minus_one(y, q) / (q * y) - 1.0) / g
                };
                (d - t_cap) * v + v * t_cap * r
            } else {
                0.0 * u0 * t_cap
            }
        }
    };
    seg.scale * base
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quad::integrate;

    fn pl(alpha: f64) -> PowerLaw {
        PowerLaw::new(alpha).unwrap()
    }

    fn laws() -> Vec<SpeedLaw> {
        vec![
            SpeedLaw::Idle,
            SpeedLaw::Constant { speed: 1.7 },
            SpeedLaw::Decay { w0: 5.0, rho: 1.2 },
            SpeedLaw::Growth { u0: 0.6, rho: 0.8 },
            SpeedLaw::Growth { u0: 0.0, rho: 1.0 },
        ]
    }

    #[test]
    fn closed_volume_and_energy_match_quadrature() {
        for alpha in [1.5, 2.0, 3.0] {
            let law = pl(alpha);
            for seg_law in laws() {
                let seg = Segment::new(0.3, 2.1, Some(0), seg_law).with_scale(1.3);
                let v_q = integrate(|t| seg.speed_at(law, t), seg.start, seg.end);
                let e_q = integrate(|t| seg.power_at(law, t), seg.start, seg.end);
                let v = volume(law, &seg);
                let e = energy(law, &seg);
                assert!((v - v_q).abs() <= 1e-12 * (1.0 + v_q.abs()), "{seg_law:?} α={alpha}: {v} vs {v_q}");
                assert!((e - e_q).abs() <= 1e-12 * (1.0 + e_q.abs()), "{seg_law:?} α={alpha}: {e} vs {e_q}");
            }
        }
    }

    #[test]
    fn weighted_volume_matches_quadrature_including_truncation() {
        for alpha in [1.5, 2.0, 3.0] {
            let law = pl(alpha);
            for seg_law in laws() {
                let seg = Segment::new(0.5, 2.5, Some(0), seg_law).with_scale(0.9);
                for c in [0.2, 1.4, 2.5, 4.0] {
                    let hi = seg.end.min(c);
                    let q = integrate(|t| (c - t) * seg.speed_at(law, t), seg.start, hi);
                    let w = weighted_volume(law, &seg, c);
                    assert!(
                        (w - q).abs() <= 1e-12 * (1.0 + q.abs()),
                        "{seg_law:?} α={alpha} c={c}: {w} vs {q}"
                    );
                }
            }
        }
    }

    #[test]
    fn time_at_volume_inverts_volume_over() {
        for alpha in [1.5, 2.0, 3.0] {
            let law = pl(alpha);
            for seg_law in laws() {
                let seg = Segment::new(1.0, 3.0, Some(0), seg_law).with_scale(1.1);
                let v_mid = volume_over(law, &seg, 1.2);
                if v_mid > 0.0 {
                    let t = time_at_volume(law, &seg, v_mid);
                    assert!((t - 2.2).abs() <= 1e-9, "{seg_law:?} α={alpha}: {t}");
                }
                // Zero volume maps to the segment start.
                assert_eq!(time_at_volume(law, &seg, 0.0), seg.start);
            }
        }
    }

    #[test]
    fn decay_past_empty_is_flat() {
        // A decay segment extended past its drain time contributes no
        // further volume or energy — the clamp at W = 0.
        let law = pl(2.0);
        let seg = Segment::new(0.0, 100.0, Some(0), SpeedLaw::Decay { w0: 1.0, rho: 1.0 });
        // t_empty = w0^β / (ρβ) = 2.
        let v = volume(law, &seg);
        assert!((v - 1.0).abs() < 1e-12, "all of w0/ρ = 1 is processed: {v}");
        let t = time_at_volume(law, &seg, v);
        assert!(t <= 2.0 + 1e-9, "crossing happens at drain time, not segment end: {t}");
    }
}
