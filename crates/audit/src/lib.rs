//! # ncss-audit — independent run auditing
//!
//! Every simulator in this workspace accounts its objective with *closed
//! forms* (exact kernel integrals in `ncss-sim::kernel`). A bookkeeping bug
//! in those closed forms would silently corrupt every experiment, so this
//! crate re-derives the three objective components — energy, fractional and
//! integral weighted flow-time — from the serving segments of a finished
//! [`ncss_sim::Schedule`] using its own arithmetic, and cross-checks the
//! result against the reported [`ncss_sim::Evaluated`]. The re-derivation
//! is **tiered** (DESIGN.md §8.4): segment integrals are evaluated by the
//! audit's independently written antiderivatives ([`closed_form`]), while
//! every `cross_check_stride`-th integral is instead measured by
//! double-exponential quadrature of the **pointwise speed curve**
//! ([`quad`]) and folded into the same check — so an algebra error shared
//! between the simulators and the audit's formulas still surfaces as a
//! residual blow-up, without paying quadrature prices on every segment.
//!
//! On top of the numeric cross-check, [`ScheduleAudit`] verifies the
//! event-level invariants any lawful run must satisfy:
//!
//! * segments are well-formed: finite, positively oriented, non-overlapping,
//!   in monotone time order;
//! * no job is served before its release;
//! * per-job volume conservation: the re-derived volume delivered to each
//!   job matches its size;
//! * completion consistency: completion times re-derived by inverting the
//!   cumulative volume (binary search over a prefix-sum
//!   [`ncss_sim::SegmentIndex`], analytic inversion inside the crossing
//!   segment) match the reported ones.
//!
//! The audit never panics: every finding is a [`CheckVerdict`] inside a
//! structured [`AuditReport`] with a per-invariant residual, so callers (the
//! `ncss audit` CLI, `run_checked`, the fault-injection contract test)
//! decide what to do with a failure.
//!
//! Parallel-machine runs are audited by [`MultiAudit`]: per-machine
//! segment invariants plus the cross-machine ones (no-double-service,
//! cross-machine volume conservation, fleet-total objective
//! re-derivation). Runs that produce no `Schedule` at all (processor
//! sharing) are covered by the weaker but still useful
//! [`ScheduleAudit::audit_outcome`].
//!
//! ## Parallelism and timing
//!
//! The integral derivations — per-job volume/completion re-derivation,
//! energy per segment, fractional flow per job, and the `O(k²)`
//! no-double-service pass — fan out over the shared `ncss-pool`
//! persistent worker pool ([`AuditConfig::threads`] picks the worker
//! count; workers are long-lived, so audits pay no per-call spawn). The
//! fan-out is order-preserving and every sum is reduced serially, so
//! **serial and parallel audits produce identical verdicts and residuals**
//! and the residual tolerances are unchanged under sharding (DESIGN.md
//! §8). Every verdict records the wall-time its check took
//! ([`CheckVerdict::elapsed_ns`]); bench binaries surface these as the
//! `audit_timing` block in `BENCH_*.json` (EXPERIMENTS.md).

#![deny(missing_docs)]

pub mod closed_form;
pub mod incremental;
mod multi_audit;
pub mod quad;
pub mod report;
mod schedule_audit;

pub use incremental::{IncrementalAudit, IncrementalMultiAudit, IncrementalSnapshot, Trip};
pub use multi_audit::MultiAudit;
pub use report::{AuditReport, CheckVerdict, Stopwatch};
pub use schedule_audit::{AuditConfig, ScheduleAudit};

use ncss_sim::{Evaluated, Instance, Objective, PerJob, Schedule};

/// Audit a schedule-producing run with the default configuration.
#[must_use]
pub fn audit_run(instance: &Instance, schedule: &Schedule, reported: &Evaluated) -> AuditReport {
    ScheduleAudit::default().audit(instance, schedule, reported)
}

/// Audit a schedule-less outcome with the default configuration.
#[must_use]
pub fn audit_outcome(instance: &Instance, objective: &Objective, per_job: &PerJob) -> AuditReport {
    ScheduleAudit::default().audit_outcome(instance, objective, per_job)
}

/// Audit a parallel-machine run (one schedule per machine) with the
/// default configuration.
#[must_use]
pub fn audit_multi(
    instance: &Instance,
    schedules: &[Schedule],
    reported: &Evaluated,
) -> AuditReport {
    MultiAudit::default().audit(instance, schedules, reported)
}
