//! Double-exponential (tanh–sinh) quadrature.
//!
//! The audit's integration path must be independent of the closed-form
//! kernel integrals it is checking, and it must stay accurate on the
//! paper's speed curves, which have *algebraic endpoint singularities* in
//! their derivatives: Algorithm C's decay speed behaves like
//! `(t* − t)^{1/(α−1)}` as the served weight drains to zero, so composite
//! Newton–Cotes rules lose several digits near completions. The tanh–sinh
//! substitution `x = tanh(π/2 · sinh t)` pushes the endpoints to infinity
//! at a double-exponential rate, restoring spectral accuracy for exactly
//! this class of integrands — with a fixed, modest number of evaluations.

use std::f64::consts::FRAC_PI_2;
use std::sync::OnceLock;

/// Step in the trapezoidal sum over the transformed axis.
const H: f64 = 0.0625;
/// Half-width of the truncated sum; `K·H ≈ 3.2` puts the discarded tail
/// weights below `1e-14`.
const K: i32 = 51;
/// Number of quadrature nodes: `2K + 1`.
const NODES: usize = (2 * K + 1) as usize;

/// The `(abscissa, weight)` table on `[-1, 1]`, computed once per process.
///
/// The transformed nodes depend only on `H` and `K`, never on the interval
/// or integrand, so the ~5 transcendentals per node are hoisted out of
/// every `integrate` call. The per-node arithmetic is exactly the loop body
/// the table replaced, in the same `k = -K..=K` order, so results are
/// bitwise identical to computing the nodes inline.
fn node_table() -> &'static [(f64, f64); NODES] {
    static TABLE: OnceLock<[(f64, f64); NODES]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [(0.0f64, 0.0f64); NODES];
        for (i, slot) in table.iter_mut().enumerate() {
            let k = i as i32 - K;
            let t = H * f64::from(k);
            let u = FRAC_PI_2 * t.sinh();
            let x = u.tanh();
            let sech = 1.0 / u.cosh();
            *slot = (x, FRAC_PI_2 * t.cosh() * sech * sech);
        }
        table
    })
}

/// `∫_a^b f(x) dx` by tanh–sinh quadrature (103 evaluations).
///
/// Returns 0 for empty or reversed intervals. Non-finite integrand values
/// propagate into the result rather than panicking — the audit's checks
/// treat a NaN integral as a failed verdict.
///
/// # Examples
///
/// ```
/// use ncss_audit::quad::integrate;
///
/// // Spectrally accurate on smooth integrands: ∫_0^2 3x² dx = 8.
/// let v = integrate(|x| 3.0 * x * x, 0.0, 2.0);
/// assert!((v - 8.0).abs() < 1e-12);
///
/// // …and on the audit's hard case, algebraic endpoint singularities in
/// // the derivative: ∫_0^1 √x dx = 2/3 (a decay-speed curve at α = 3).
/// let v = integrate(f64::sqrt, 0.0, 1.0);
/// assert!((v - 2.0 / 3.0).abs() < 1e-12);
///
/// // Degenerate intervals integrate to zero rather than erroring.
/// assert_eq!(integrate(|_| 1.0, 1.0, 1.0), 0.0);
/// ```
pub fn integrate<F: Fn(f64) -> f64>(f: F, a: f64, b: f64) -> f64 {
    if !(b > a) {
        return 0.0;
    }
    let mid = 0.5 * (a + b);
    let half = 0.5 * (b - a);
    let mut sum = 0.0;
    for &(x, weight) in node_table() {
        sum += weight * f(mid + half * x);
    }
    sum * H * half
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_on_polynomials() {
        let v = integrate(|x| 3.0 * x * x, 0.0, 2.0);
        assert!((v - 8.0).abs() < 1e-12, "{v}");
        let v = integrate(|x| x, -1.0, 3.0);
        assert!((v - 4.0).abs() < 1e-12, "{v}");
    }

    #[test]
    fn handles_endpoint_derivative_singularities() {
        // ∫_0^1 sqrt(x) dx = 2/3 — the shape of a decay-speed curve near a
        // completion at α = 3. Newton–Cotes stalls around 1e-5 here.
        let v = integrate(f64::sqrt, 0.0, 1.0);
        assert!((v - 2.0 / 3.0).abs() < 1e-12, "{v}");
        // ∫_0^1 x^{1/4} dx = 4/5 (α = 5 flavour).
        let v = integrate(|x: f64| x.powf(0.25), 0.0, 1.0);
        assert!((v - 0.8).abs() < 1e-11, "{v}");
    }

    #[test]
    fn empty_and_reversed_intervals_are_zero() {
        assert_eq!(integrate(|_| 1.0, 1.0, 1.0), 0.0);
        assert_eq!(integrate(|_| 1.0, 2.0, 1.0), 0.0);
        assert_eq!(integrate(|_| 1.0, f64::NAN, 1.0), 0.0);
    }

    #[test]
    fn nan_integrand_propagates() {
        assert!(integrate(|_| f64::NAN, 0.0, 1.0).is_nan());
    }

    #[test]
    fn long_interval_accuracy() {
        // ∫_0^10 e^{-x} dx = 1 − e^{-10}.
        let v = integrate(|x: f64| (-x).exp(), 0.0, 10.0);
        assert!((v - (1.0 - (-10.0f64).exp())).abs() < 1e-10, "{v}");
    }
}
