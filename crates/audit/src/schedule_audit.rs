//! The auditor: event-level invariants plus quadrature re-derivation.
//!
//! The derivation helpers in this module are shared with the
//! multi-machine pass in [`crate::multi_audit`]: both re-derive per-job
//! volumes, completions, and objective components from nothing but the
//! pointwise speed curves, they just differ in where the segments come
//! from (one timeline vs. one per machine).

use crate::closed_form;
use crate::quad::integrate;
use crate::report::{AuditReport, Stopwatch};
use ncss_pool::Pool;
use ncss_sim::{Evaluated, Instance, Objective, PerJob, PowerLaw, Schedule, Segment, SegmentIndex};

/// Tunable audit tolerances and sharding policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AuditConfig {
    /// Tolerance on the scale-free residuals (`|x − ref| / (1 + |ref|)`)
    /// of the recomputed objective components, per-job volumes, and
    /// completion times.
    pub rel_tol: f64,
    /// Absolute slack allowed on event-level time comparisons (overlap,
    /// release-before-service), per unit of schedule horizon.
    pub time_tol: f64,
    /// Worker count for the re-derivation fan-out: `None` sizes to the
    /// machine ([`Pool::auto`]), `Some(k)` forces exactly `k` workers.
    /// Serial (`Some(1)`) and parallel audits produce identical verdicts
    /// and residuals — the pool preserves order, every per-item sum is
    /// reduced serially, and tolerances are therefore unchanged under
    /// sharding (DESIGN.md §8).
    pub threads: Option<usize>,
    /// Quadrature cross-check stride for the closed-form fast path: every
    /// `stride`-th integral (by deterministic index, so serial == parallel)
    /// is still measured by tanh-sinh quadrature of the pointwise curve
    /// and folded into the *same* check, so a shared algebra error between
    /// the simulators and [`crate::closed_form`] cannot certify itself.
    /// `1` re-measures everything (the pre-fast-path behaviour); `0`
    /// disables the cross-check tier entirely.
    pub cross_check_stride: usize,
}

impl Default for AuditConfig {
    fn default() -> Self {
        Self { rel_tol: 1e-6, time_tol: 1e-9, threads: None, cross_check_stride: 8 }
    }
}

/// Whether index `i` falls on the quadrature cross-check tier.
pub(crate) fn sampled(stride: usize, i: usize) -> bool {
    stride > 0 && i % stride == 0
}

impl AuditConfig {
    /// The worker pool this configuration implies.
    #[must_use]
    pub fn pool(&self) -> Pool {
        self.threads.map_or_else(Pool::auto, Pool::with_threads)
    }
}

/// Independent invariant checker for finished runs.
///
/// See the crate docs for the invariant list; construct with a custom
/// [`AuditConfig`] to loosen tolerances for step-integrated algorithms
/// (the non-uniform NC simulation is accurate to its integration step, not
/// to machine precision).
#[derive(Debug, Clone, Copy, Default)]
pub struct ScheduleAudit {
    config: AuditConfig,
}

/// Scale-free residual: relative for large magnitudes, absolute near zero.
pub(crate) fn residual(x: f64, reference: f64) -> f64 {
    (x - reference).abs() / (1.0 + reference.abs())
}

/// Worst violation of "finite, positively oriented, monotone,
/// non-overlapping" over one machine's segment list, with the offending
/// segment named. (`Schedule::new` enforces this too; the audit re-derives
/// it so a constructor regression cannot hide.)
pub(crate) fn wellformed_residual(segments: &[Segment]) -> (f64, String) {
    let mut worst = 0.0f64;
    let mut detail = String::from("all segments ordered");
    let mut prev_end = f64::NEG_INFINITY;
    for (i, s) in segments.iter().enumerate() {
        let bad_times = !(s.start.is_finite() && s.end.is_finite() && s.scale.is_finite());
        let inversion = s.start - s.end; // > 0 means reversed
        let overlap = if prev_end.is_finite() { prev_end - s.start } else { 0.0 };
        let v = if bad_times { f64::INFINITY } else { inversion.max(overlap).max(0.0) };
        if v > worst {
            worst = v;
            detail = format!("segment {i}: [{:.6}, {:.6}]", s.start, s.end);
        }
        prev_end = prev_end.max(s.end);
    }
    (worst, detail)
}

/// Worst "served before release" violation over one machine's segments.
/// A segment naming a job outside the instance counts as an infinite
/// violation.
pub(crate) fn release_residual(instance: &Instance, segments: &[Segment]) -> (f64, String) {
    let n = instance.len();
    let mut worst = 0.0f64;
    let mut detail = String::from("no early service");
    for (i, s) in segments.iter().enumerate() {
        let Some(j) = s.job else { continue };
        if j >= n {
            return (f64::INFINITY, format!("segment {i} serves unknown job {j}"));
        }
        let early = instance.job(j).release - s.start;
        if early > worst {
            worst = early;
            detail = format!("job {j} served {early:.3e} before release (segment {i})");
        }
    }
    (worst, detail)
}

/// Measurement resolution of a set of timelines: a job's service is
/// representable only if its duration `V_j / s` exceeds one ulp of the
/// time axis. With mixed magnitudes (1e±150 faults) a normal-size job
/// served at speed ~1e74 finishes in ~1e-74 — far below `ulp(horizon)` —
/// so it legitimately leaves no segment behind. Any volume below
/// `peak_speed · horizon · ε` is therefore unmeasurable by *any* observer
/// of these schedules, auditor included.
pub(crate) fn measurement_resolution<'a>(
    pl: PowerLaw,
    timelines: impl Iterator<Item = &'a [Segment]>,
    horizon: f64,
) -> f64 {
    let peak_speed = timelines
        .flat_map(|segs| segs.iter().flat_map(|s| [s.speed_at(pl, s.start), s.speed_at(pl, s.end)]))
        .fold(0.0f64, f64::max);
    peak_speed * horizon.abs() * f64::EPSILON * 64.0
}

/// Re-derive per-job delivered volumes and completion times from the
/// serving segments alone. `by_job[j]` must hold job `j`'s serving
/// segments in increasing start order (across machines, in the multi
/// case). Per-segment volumes come from the audit's own closed forms
/// ([`crate::closed_form`]) with every `stride`-th integral re-measured by
/// tanh-sinh quadrature (the cross-check tier); the completion crossing is
/// located by binary search over a prefix-sum [`SegmentIndex`] and
/// inverted analytically inside the crossing segment. Jobs are
/// independent, so the derivation fans out over `pool` — the per-job
/// arithmetic is untouched, so any worker count gives the same
/// `(delivered, completions)` bit for bit. Returns
/// `(delivered, completions)`.
pub(crate) fn derive_per_job(
    pool: Pool,
    pl: PowerLaw,
    instance: &Instance,
    by_job: &[Vec<Segment>],
    reported_completion: &[f64],
    rel_tol: f64,
    resolution: f64,
    stride: usize,
) -> (Vec<f64>, Vec<f64>) {
    let speed_of = |s: &Segment| {
        let s = *s; // Segment is Copy; detach from the borrow
        move |t: f64| s.speed_at(pl, t)
    };
    let jobs: Vec<usize> = (0..instance.len()).collect();
    let derived: Vec<(f64, f64)> = pool.map(&jobs, |&j| {
        let segs = &by_job[j];
        let volume = instance.job(j).volume;
        // Closed-form per-segment volumes; the `(j + i)`-indexed sampling
        // spreads the quadrature tier across jobs and is a pure function
        // of position, so serial and parallel audits sample identically.
        let dvs: Vec<f64> = segs
            .iter()
            .enumerate()
            .map(|(i, s)| {
                if sampled(stride, j + i) {
                    integrate(speed_of(s), s.start, s.end)
                } else {
                    closed_form::volume(pl, s)
                }
            })
            .collect();
        let index = SegmentIndex::from_volumes(segs, dvs.iter().copied());
        // First segment in which the cumulative volume reaches the job
        // size: binary search over the prefix sums. The margin is
        // scale-free so 1e-150-scale volumes (which can underflow to 0)
        // still register.
        let margin = 1e-9 * (1.0 + volume);
        let mut completion = f64::NAN;
        let i = index.first_reaching(volume - margin);
        if let Some(s) = segs.get(i) {
            let target = (volume - index.volume_before(i)).min(dvs[i]).max(0.0);
            if dvs[i] - target <= margin {
                // The job's remaining volume at the segment boundary is
                // indistinguishable from zero, so the boundary is the
                // completion. Inverting would chase the vanishing-speed
                // tail and land early on curves that drain exactly at the
                // segment end (the closed-form optimum at α < 2 loses
                // ~1e-6 that way).
                completion = s.end;
            } else {
                completion = closed_form::time_at_volume(pl, s, target);
            }
        }
        let cum = index.total_volume();
        if completion.is_nan() && (cum - volume).abs() <= rel_tol * (1.0 + volume + resolution) {
            // All measurable volume was delivered but no crossing was
            // detectable (zero-scale jobs whose serving segments are
            // empty or underflow): the inversion cannot constrain the
            // completion, so adopt the last serving instant — or the
            // reported value when the job never measurably ran at all.
            let reported_c = reported_completion.get(j).copied().unwrap_or(f64::NAN);
            completion = segs.last().map_or(reported_c, |s| s.end).max(instance.job(j).release);
        }
        (cum, completion)
    });
    derived.into_iter().unzip()
}

/// Fractional weighted flow-time re-derivation. With `q_j(t)` the volume
/// of job `j` processed by `t` and `c_j` the *derived* completion,
///   `F_j = ρ_j ∫_{r_j}^{c_j} (V_j − q_j(t)) dt`
///       `= ρ_j [ V_j (c_j − r_j) − ∫_{r_j}^{c_j} (c_j − τ) s_j(τ) dτ ]`
/// by Fubini. The per-segment weighted integral is evaluated analytically
/// ([`closed_form::weighted_volume`]); every `stride`-th *job* is instead
/// integrated by tanh-sinh quadrature of the pointwise speed curve (the
/// cross-check tier). Segments at or past `c_j` contribute nothing, so a
/// binary search over the (start-ordered) serving segments skips the
/// tail. NaN when any completion is non-finite. Per-job contributions are
/// independent, so they fan out over `pool`; the final sum runs serially
/// in job order, so the result is identical for any worker count.
pub(crate) fn frac_flow_rederived(
    pool: Pool,
    pl: PowerLaw,
    instance: &Instance,
    by_job: &[Vec<Segment>],
    completions: &[f64],
    stride: usize,
) -> f64 {
    let jobs: Vec<usize> = (0..by_job.len()).collect();
    let contributions = pool.map(&jobs, |&j| {
        let segs = &by_job[j];
        let job = instance.job(j);
        let c = completions[j];
        if !c.is_finite() {
            return f64::NAN;
        }
        let cut = segs.partition_point(|s| s.start < c);
        let mut served = 0.0;
        for s in &segs[..cut] {
            served += if sampled(stride, j) {
                integrate(|t| (c - t) * s.speed_at(pl, t), s.start, s.end.min(c))
            } else {
                closed_form::weighted_volume(pl, s, c)
            };
        }
        job.density * (job.volume * (c - job.release) - served)
    });
    contributions.iter().sum()
}

impl ScheduleAudit {
    /// Auditor with explicit tolerances.
    #[must_use]
    pub fn new(config: AuditConfig) -> Self {
        Self { config }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> AuditConfig {
        self.config
    }

    /// Audit a schedule-producing run against its reported evaluation.
    ///
    /// The integral re-derivations (per-job volumes/completions, the
    /// energy and fractional-flow re-integrations) use the closed-form
    /// fast path in [`crate::closed_form`] with a sampled quadrature
    /// cross-check tier ([`AuditConfig::cross_check_stride`]) and fan out
    /// over [`AuditConfig::pool`]; every check also records the wall-time
    /// it took ([`crate::CheckVerdict::elapsed_ns`]). Shared derivation
    /// cost is attributed to the first consuming check
    /// (`volume-conservation` carries the per-job derivation).
    #[must_use]
    pub fn audit(&self, instance: &Instance, schedule: &Schedule, reported: &Evaluated) -> AuditReport {
        let mut report = AuditReport::default();
        let mut clock = Stopwatch::new();
        let pool = self.config.pool();
        let pl = schedule.power_law();
        let n = instance.len();
        let horizon_scale = 1.0 + schedule.end_time().abs();
        let time_tol = self.config.time_tol * horizon_scale;

        let (worst, detail) = wellformed_residual(schedule.segments());
        report.record_timed("segments-wellformed", worst, time_tol, detail, clock.lap());

        let (worst, detail) = release_residual(instance, schedule.segments());
        report.record_timed("release-before-service", worst, time_tol, detail, clock.lap());

        // --- per-job quadrature volumes and re-derived completions.
        let by_job: Vec<Vec<Segment>> = (0..n)
            .map(|j| schedule.segments().iter().filter(|s| s.job == Some(j)).copied().collect())
            .collect();
        let resolution = measurement_resolution(
            pl,
            std::iter::once(schedule.segments()),
            schedule.end_time(),
        );
        let (delivered, derived_completion) = derive_per_job(
            pool,
            pl,
            instance,
            &by_job,
            &reported.per_job.completion,
            self.config.rel_tol,
            resolution,
            self.config.cross_check_stride,
        );

        let mut vol_worst = 0.0f64;
        let mut vol_detail = String::from("all volumes conserved");
        for (j, &cum) in delivered.iter().enumerate() {
            let volume = instance.job(j).volume;
            let r = (cum - volume).abs() / (1.0 + volume + resolution);
            if !(r <= vol_worst) {
                vol_worst = r;
                vol_detail = format!("job {j}: delivered {cum:.9e} of {volume:.9e}");
            }
        }
        report.record_timed(
            "volume-conservation",
            vol_worst,
            self.config.rel_tol,
            vol_detail,
            clock.lap(),
        );

        let mut c_worst = 0.0f64;
        let mut c_detail = String::from("completions agree");
        for j in 0..n {
            let reported_c = reported.per_job.completion.get(j).copied().unwrap_or(f64::NAN);
            let r = residual(derived_completion[j], reported_c);
            let r = if r.is_nan() { f64::INFINITY } else { r };
            if r > c_worst {
                c_worst = r;
                c_detail = format!(
                    "job {j}: derived {:.9} vs reported {reported_c:.9}",
                    derived_completion[j]
                );
            }
        }
        report.record_timed(
            "completion-consistency",
            c_worst,
            self.config.rel_tol,
            c_detail,
            clock.lap(),
        );

        // --- energy re-derivation: closed-form antiderivative per segment
        // across the pool, with every stride-th segment re-measured by
        // quadrature of the pointwise power curve; summed serially in
        // segment order.
        let stride = self.config.cross_check_stride;
        let seg_idx: Vec<usize> = (0..schedule.segments().len()).collect();
        let energy: f64 = pool
            .map(&seg_idx, |&i| {
                let s = &schedule.segments()[i];
                if sampled(stride, i) {
                    integrate(|t| s.power_at(pl, t), s.start, s.end)
                } else {
                    closed_form::energy(pl, s)
                }
            })
            .iter()
            .sum();
        report.record_timed(
            "energy-recomputed",
            residual(energy, reported.objective.energy),
            self.config.rel_tol,
            format!("re-derived {energy:.9e} vs reported {:.9e}", reported.objective.energy),
            clock.lap(),
        );

        let frac = frac_flow_rederived(pool, pl, instance, &by_job, &derived_completion, stride);
        report.record_timed(
            "frac-flow-recomputed",
            residual(frac, reported.objective.frac_flow),
            self.config.rel_tol,
            format!("re-derived {frac:.9e} vs reported {:.9e}", reported.objective.frac_flow),
            clock.lap(),
        );

        // --- integral flow from the derived completions.
        let int: f64 = (0..n)
            .map(|j| {
                let job = instance.job(j);
                job.weight() * (derived_completion[j] - job.release)
            })
            .sum();
        report.record_timed(
            "int-flow-recomputed",
            residual(int, reported.objective.int_flow),
            self.config.rel_tol,
            format!("derived {int:.9e} vs reported {:.9e}", reported.objective.int_flow),
            clock.lap(),
        );

        self.outcome_checks(&mut report, instance, &reported.objective, &reported.per_job);
        report
    }

    /// Audit a run that produced no [`Schedule`] (processor sharing, the
    /// parallel-machine outcomes): internal-consistency and sanity
    /// invariants on the reported numbers only.
    #[must_use]
    pub fn audit_outcome(
        &self,
        instance: &Instance,
        objective: &Objective,
        per_job: &PerJob,
    ) -> AuditReport {
        let mut report = AuditReport::default();
        self.outcome_checks(&mut report, instance, objective, per_job);
        report
    }

    /// Checks shared by both audit modes: finiteness, completion ordering,
    /// per-job flow dominance, and sum consistency.
    pub(crate) fn outcome_checks(
        &self,
        report: &mut AuditReport,
        instance: &Instance,
        objective: &Objective,
        per_job: &PerJob,
    ) {
        let n = instance.len();
        let tol = self.config.rel_tol;
        let mut clock = Stopwatch::new();

        // --- objective-finite: every component a finite non-negative number.
        let mut worst = 0.0f64;
        let mut detail = String::from("all components finite");
        for (what, v) in [
            ("energy", objective.energy),
            ("frac_flow", objective.frac_flow),
            ("int_flow", objective.int_flow),
        ] {
            if !(v.is_finite() && v >= 0.0) {
                worst = f64::INFINITY;
                detail = format!("{what} = {v}");
            }
        }
        report.record_timed("objective-finite", worst, tol, detail, clock.lap());

        // --- completion-after-release (reported completions).
        let mut worst = 0.0f64;
        let mut detail = String::from("all completions after release");
        for j in 0..n.min(per_job.completion.len()) {
            let c = per_job.completion[j];
            let v = if c.is_finite() { instance.job(j).release - c } else { f64::INFINITY };
            if v > worst {
                worst = v;
                detail = format!("job {j}: completion {c} vs release {}", instance.job(j).release);
            }
        }
        if per_job.completion.len() != n {
            worst = f64::INFINITY;
            detail = format!("{} completions for {n} jobs", per_job.completion.len());
        }
        report.record_timed("completion-after-release", worst.max(0.0), tol, detail, clock.lap());

        // --- frac-dominated-by-int, per job: ρ_j ∫ V_j(t) dt never exceeds
        // w_j (c_j − r_j) because the remaining volume is at most V_j.
        let mut worst = 0.0f64;
        let mut detail = String::from("fractional ≤ integral per job");
        for j in 0..n.min(per_job.frac_flow.len()).min(per_job.int_flow.len()) {
            let v = residual(per_job.frac_flow[j].max(per_job.int_flow[j]), per_job.int_flow[j]);
            let v = if v.is_nan() { f64::INFINITY } else { v };
            if v > worst {
                worst = v;
                detail = format!(
                    "job {j}: frac {} vs int {}",
                    per_job.frac_flow[j], per_job.int_flow[j]
                );
            }
        }
        report.record_timed("frac-dominated-by-int", worst, tol, detail, clock.lap());

        // --- reported-sums-consistent: the aggregate objective must equal
        // the per-job sums it claims to summarise.
        let frac_sum: f64 = per_job.frac_flow.iter().sum();
        let int_sum: f64 = per_job.int_flow.iter().sum();
        let v = residual(frac_sum, objective.frac_flow).max(residual(int_sum, objective.int_flow));
        let v = if v.is_nan() { f64::INFINITY } else { v };
        report.record_timed(
            "reported-sums-consistent",
            v,
            tol,
            format!("Σfrac {frac_sum:.9e} / Σint {int_sum:.9e}"),
            clock.lap(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncss_sim::{evaluate, Job, PowerLaw, Segment, SpeedLaw};

    fn pl(alpha: f64) -> PowerLaw {
        PowerLaw::new(alpha).unwrap()
    }

    fn constant_run() -> (Instance, Schedule, Evaluated) {
        let inst = Instance::new(vec![
            Job::new(0.0, 2.0, 3.0),
            Job::new(0.5, 1.0, 1.0),
        ])
        .unwrap();
        let law = pl(2.0);
        let segs = vec![
            Segment::new(0.0, 2.0, Some(0), SpeedLaw::Constant { speed: 1.0 }),
            Segment::new(2.0, 3.0, Some(1), SpeedLaw::Constant { speed: 1.0 }),
        ];
        let sched = Schedule::new(law, segs).unwrap();
        let ev = evaluate(&sched, &inst).unwrap();
        (inst, sched, ev)
    }

    #[test]
    fn clean_constant_schedule_passes_tightly() {
        let (inst, sched, ev) = constant_run();
        let report = ScheduleAudit::default().audit(&inst, &sched, &ev);
        assert!(report.passed(), "{report}");
        assert!(report.max_residual() < 1e-7, "{report}");
    }

    #[test]
    fn decay_schedule_passes_near_completion_singularity() {
        // α = 3 decay to zero weight: the speed curve has a sqrt-type
        // endpoint, the hard case for the quadrature.
        let law = pl(3.0);
        let inst = Instance::new(vec![Job::unit_density(0.0, 1.0)]).unwrap();
        let k = ncss_sim::kernel::DecayKernel { law, w0: 1.0, rho: 1.0 };
        let t_done = k.time_to_volume(1.0);
        let segs = vec![Segment::new(0.0, t_done, Some(0), SpeedLaw::Decay { w0: 1.0, rho: 1.0 })];
        let sched = Schedule::new(law, segs).unwrap();
        let ev = evaluate(&sched, &inst).unwrap();
        let report = ScheduleAudit::default().audit(&inst, &sched, &ev);
        assert!(report.passed(), "{report}");
        assert!(report.max_residual() < 1e-7, "{report}");
    }

    #[test]
    fn tampered_energy_is_caught() {
        let (inst, sched, mut ev) = constant_run();
        ev.objective.energy *= 1.5;
        let report = ScheduleAudit::default().audit(&inst, &sched, &ev);
        assert!(!report.passed());
        assert!(report.failures().iter().any(|c| c.name == "energy-recomputed"));
    }

    #[test]
    fn tampered_completion_is_caught() {
        let (inst, sched, mut ev) = constant_run();
        ev.per_job.completion[1] += 0.25;
        let report = ScheduleAudit::default().audit(&inst, &sched, &ev);
        assert!(!report.passed());
        assert!(report.failures().iter().any(|c| c.name == "completion-consistency"));
    }

    #[test]
    fn early_service_is_caught() {
        // Job released at 0.5 but served from t = 0.
        let inst = Instance::new(vec![Job::new(0.5, 1.0, 1.0)]).unwrap();
        let law = pl(2.0);
        let segs = vec![Segment::new(0.0, 1.0, Some(0), SpeedLaw::Constant { speed: 1.0 })];
        let sched = Schedule::new(law, segs).unwrap();
        // Hand-build a "reported" evaluation so only the audit judges it.
        let per_job = PerJob { completion: vec![1.0], frac_flow: vec![0.25], int_flow: vec![0.5] };
        let ev = Evaluated {
            objective: Objective { energy: 1.0, frac_flow: 0.25, int_flow: 0.5 },
            per_job,
        };
        let report = ScheduleAudit::default().audit(&inst, &sched, &ev);
        assert!(!report.passed());
        assert!(report.failures().iter().any(|c| c.name == "release-before-service"));
    }

    #[test]
    fn missing_volume_is_caught() {
        // Schedule only delivers half the job.
        let inst = Instance::new(vec![Job::new(0.0, 2.0, 1.0)]).unwrap();
        let law = pl(2.0);
        let segs = vec![Segment::new(0.0, 1.0, Some(0), SpeedLaw::Constant { speed: 1.0 })];
        let sched = Schedule::new(law, segs).unwrap();
        let per_job = PerJob { completion: vec![1.0], frac_flow: vec![1.5], int_flow: vec![2.0] };
        let ev = Evaluated {
            objective: Objective { energy: 1.0, frac_flow: 1.5, int_flow: 2.0 },
            per_job,
        };
        let report = ScheduleAudit::default().audit(&inst, &sched, &ev);
        assert!(!report.passed());
        assert!(report.failures().iter().any(|c| c.name == "volume-conservation"));
    }

    #[test]
    fn outcome_audit_flags_nan_and_inversions() {
        let inst = Instance::new(vec![Job::unit_density(1.0, 1.0)]).unwrap();
        let objective = Objective { energy: f64::NAN, frac_flow: 1.0, int_flow: 0.5 };
        let per_job = PerJob {
            completion: vec![0.5], // before release
            frac_flow: vec![1.0],  // exceeds int_flow
            int_flow: vec![0.5],
        };
        let report = ScheduleAudit::default().audit_outcome(&inst, &objective, &per_job);
        assert!(!report.passed());
        let names: Vec<_> = report.failures().iter().map(|c| c.name).collect();
        assert!(names.contains(&"objective-finite"), "{names:?}");
        assert!(names.contains(&"completion-after-release"), "{names:?}");
        assert!(names.contains(&"frac-dominated-by-int"), "{names:?}");
    }

    #[test]
    fn outcome_audit_accepts_consistent_numbers() {
        let inst = Instance::new(vec![Job::unit_density(0.0, 1.0)]).unwrap();
        let per_job = PerJob { completion: vec![1.0], frac_flow: vec![0.5], int_flow: vec![1.0] };
        let objective = Objective { energy: 1.0, frac_flow: 0.5, int_flow: 1.0 };
        let report = ScheduleAudit::default().audit_outcome(&inst, &objective, &per_job);
        assert!(report.passed(), "{report}");
    }

    #[test]
    fn unknown_job_id_is_caught() {
        let inst = Instance::new(vec![Job::unit_density(0.0, 1.0)]).unwrap();
        let law = pl(2.0);
        let segs = vec![Segment::new(0.0, 1.0, Some(7), SpeedLaw::Constant { speed: 1.0 })];
        let sched = Schedule::new(law, segs).unwrap();
        let per_job = PerJob { completion: vec![1.0], frac_flow: vec![0.5], int_flow: vec![1.0] };
        let ev = Evaluated {
            objective: Objective { energy: 1.0, frac_flow: 0.5, int_flow: 1.0 },
            per_job,
        };
        let report = ScheduleAudit::default().audit(&inst, &sched, &ev);
        assert!(!report.passed());
        assert!(report.failures().iter().any(|c| c.name == "release-before-service"));
    }
}
