//! Structured audit verdicts with per-check wall-time.

use std::fmt;
use std::time::Instant;

/// Outcome of one audited invariant.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckVerdict {
    /// Stable kebab-case invariant name (e.g. `volume-conservation`).
    pub name: &'static str,
    /// Whether the invariant held within tolerance.
    pub passed: bool,
    /// Worst residual observed for this invariant (0 when trivially
    /// satisfied; may be `inf`/NaN when the underlying numbers were
    /// non-finite — that always fails).
    pub residual: f64,
    /// Human-readable context: which job / segment / component was worst.
    pub detail: String,
    /// Wall-clock nanoseconds spent producing this verdict (0 when the
    /// check was recorded without timing). Shared derivations feeding
    /// several checks are attributed to the first check that consumes
    /// them — see DESIGN.md §8 for the attribution rules.
    pub elapsed_ns: u64,
}

/// A stopwatch for attributing audit wall-time to consecutive checks.
///
/// [`Stopwatch::lap`] returns the nanoseconds since the previous lap (or
/// since construction), so an audit that runs its checks in order gets an
/// exhaustive, non-overlapping decomposition of its total wall-time with
/// one call per [`AuditReport::record_timed`].
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    mark: Instant,
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::new()
    }
}

impl Stopwatch {
    /// Start timing now.
    #[must_use]
    pub fn new() -> Self {
        Self { mark: Instant::now() }
    }

    /// Nanoseconds since the previous lap (or construction); resets the
    /// mark so consecutive laps tile the elapsed time exactly.
    pub fn lap(&mut self) -> u64 {
        let now = Instant::now();
        let ns = u64::try_from(now.duration_since(self.mark).as_nanos()).unwrap_or(u64::MAX);
        self.mark = now;
        ns
    }
}

/// A full audit: one verdict per invariant, never a panic.
///
/// # Examples
///
/// ```
/// use ncss_audit::AuditReport;
///
/// let mut report = AuditReport::default();
/// report.record("energy-recomputed", 3.0e-9, 1e-6, "quadrature agrees".into());
/// report.record("volume-conservation", 0.25, 1e-6, "job 1 short by 25%".into());
///
/// assert!(!report.passed());
/// assert_eq!(report.failures().len(), 1);
/// assert_eq!(report.failures()[0].name, "volume-conservation");
/// assert!((report.max_residual() - 0.25).abs() < 1e-15);
/// assert!(report.render().contains("FAIL volume-conservation"));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AuditReport {
    /// All verdicts, in the order the checks ran.
    pub checks: Vec<CheckVerdict>,
}

impl AuditReport {
    /// True when every invariant passed.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| c.passed)
    }

    /// The failing verdicts.
    #[must_use]
    pub fn failures(&self) -> Vec<&CheckVerdict> {
        self.checks.iter().filter(|c| !c.passed).collect()
    }

    /// Largest residual across all checks (NaN residuals count as `inf` so
    /// they can never hide below a threshold).
    #[must_use]
    pub fn max_residual(&self) -> f64 {
        self.checks
            .iter()
            .map(|c| if c.residual.is_nan() { f64::INFINITY } else { c.residual })
            .fold(0.0, f64::max)
    }

    /// Total wall-clock nanoseconds attributed across all checks — the
    /// audit's own cost, as surfaced in the `audit_timing` block of
    /// `BENCH_*.json` (see EXPERIMENTS.md).
    #[must_use]
    pub fn total_ns(&self) -> u64 {
        self.checks.iter().map(|c| c.elapsed_ns).fold(0, u64::saturating_add)
    }

    /// Append a verdict.
    pub fn push(&mut self, verdict: CheckVerdict) {
        self.checks.push(verdict);
    }

    /// Record a residual-style check: passes iff `residual ≤ tol` and the
    /// residual is a number. No wall-time is attributed (`elapsed_ns = 0`).
    pub fn record(&mut self, name: &'static str, residual: f64, tol: f64, detail: String) {
        self.record_timed(name, residual, tol, detail, 0);
    }

    /// Record a residual-style check together with the wall-clock
    /// nanoseconds spent producing it (typically a [`Stopwatch::lap`]).
    pub fn record_timed(
        &mut self,
        name: &'static str,
        residual: f64,
        tol: f64,
        detail: String,
        elapsed_ns: u64,
    ) {
        let passed = residual.is_finite() && residual <= tol;
        self.push(CheckVerdict { name, passed, residual, detail, elapsed_ns });
    }

    /// Plain-text rendering, one line per verdict.
    #[must_use]
    pub fn render(&self) -> String {
        self.to_string()
    }
}

/// Human-readable duration: picks ns/µs/ms/s by magnitude.
fn fmt_ns(ns: u64) -> String {
    let ns_f = ns as f64;
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns_f / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.1}ms", ns_f / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns_f / 1e3)
    } else {
        format!("{ns}ns")
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let timed = self.total_ns() > 0;
        for c in &self.checks {
            let tag = if c.passed { "PASS" } else { "FAIL" };
            if timed {
                writeln!(
                    f,
                    "{tag} {:<26} residual={:>12.3e}  t={:>8}  {}",
                    c.name,
                    c.residual,
                    fmt_ns(c.elapsed_ns),
                    c.detail
                )?;
            } else {
                writeln!(f, "{tag} {:<26} residual={:>12.3e}  {}", c.name, c.residual, c.detail)?;
            }
        }
        let overall = if self.passed() { "audit: PASS" } else { "audit: FAIL" };
        write!(f, "{overall} (max residual {:.3e}", self.max_residual())?;
        if timed {
            write!(f, ", total {}", fmt_ns(self.total_ns()))?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_passes() {
        let r = AuditReport::default();
        assert!(r.passed());
        assert_eq!(r.max_residual(), 0.0);
        assert_eq!(r.total_ns(), 0);
    }

    #[test]
    fn record_applies_tolerance() {
        let mut r = AuditReport::default();
        r.record("a", 1e-9, 1e-6, String::new());
        r.record("b", 1e-3, 1e-6, "too big".into());
        assert!(!r.passed());
        assert_eq!(r.failures().len(), 1);
        assert_eq!(r.failures()[0].name, "b");
        assert!((r.max_residual() - 1e-3).abs() < 1e-15);
    }

    #[test]
    fn nan_residual_fails_and_dominates() {
        let mut r = AuditReport::default();
        r.record("nan", f64::NAN, 1e-6, String::new());
        assert!(!r.passed());
        assert_eq!(r.max_residual(), f64::INFINITY);
    }

    #[test]
    fn render_mentions_every_check() {
        let mut r = AuditReport::default();
        r.record("alpha-check", 0.0, 1e-6, "fine".into());
        r.record("beta-check", 9.0, 1e-6, "broken".into());
        let s = r.render();
        assert!(s.contains("PASS alpha-check"));
        assert!(s.contains("FAIL beta-check"));
        assert!(s.contains("audit: FAIL"));
    }

    #[test]
    fn timed_checks_accumulate_and_render() {
        let mut r = AuditReport::default();
        r.record_timed("fast", 0.0, 1e-6, String::new(), 800);
        r.record_timed("slow", 0.0, 1e-6, String::new(), 2_500_000);
        assert_eq!(r.total_ns(), 2_500_800);
        let s = r.render();
        assert!(s.contains("t="), "{s}");
        assert!(s.contains("2.5ms"), "{s}");
        assert!(s.contains("800ns"), "{s}");
        assert!(s.contains("total"), "{s}");
    }

    #[test]
    fn untimed_reports_render_without_timing_columns() {
        let mut r = AuditReport::default();
        r.record("plain", 0.0, 1e-6, String::new());
        let s = r.render();
        assert!(!s.contains("t="), "{s}");
        assert!(!s.contains("total"), "{s}");
    }

    #[test]
    fn stopwatch_laps_tile_elapsed_time() {
        let mut sw = Stopwatch::new();
        let a = sw.lap();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let b = sw.lap();
        assert!(b >= 1_000_000, "sleep lap too short: {b}ns");
        assert!(a < b, "first lap {a} should be shorter than sleep lap {b}");
    }

    #[test]
    fn total_saturates_instead_of_overflowing() {
        let mut r = AuditReport::default();
        r.record_timed("a", 0.0, 1e-6, String::new(), u64::MAX);
        r.record_timed("b", 0.0, 1e-6, String::new(), 10);
        assert_eq!(r.total_ns(), u64::MAX);
    }
}
