//! Structured audit verdicts.

use std::fmt;

/// Outcome of one audited invariant.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckVerdict {
    /// Stable kebab-case invariant name (e.g. `volume-conservation`).
    pub name: &'static str,
    /// Whether the invariant held within tolerance.
    pub passed: bool,
    /// Worst residual observed for this invariant (0 when trivially
    /// satisfied; may be `inf`/NaN when the underlying numbers were
    /// non-finite — that always fails).
    pub residual: f64,
    /// Human-readable context: which job / segment / component was worst.
    pub detail: String,
}

/// A full audit: one verdict per invariant, never a panic.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AuditReport {
    /// All verdicts, in the order the checks ran.
    pub checks: Vec<CheckVerdict>,
}

impl AuditReport {
    /// True when every invariant passed.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| c.passed)
    }

    /// The failing verdicts.
    #[must_use]
    pub fn failures(&self) -> Vec<&CheckVerdict> {
        self.checks.iter().filter(|c| !c.passed).collect()
    }

    /// Largest residual across all checks (NaN residuals count as `inf` so
    /// they can never hide below a threshold).
    #[must_use]
    pub fn max_residual(&self) -> f64 {
        self.checks
            .iter()
            .map(|c| if c.residual.is_nan() { f64::INFINITY } else { c.residual })
            .fold(0.0, f64::max)
    }

    /// Append a verdict.
    pub fn push(&mut self, verdict: CheckVerdict) {
        self.checks.push(verdict);
    }

    /// Record a residual-style check: passes iff `residual ≤ tol` and the
    /// residual is a number.
    pub fn record(&mut self, name: &'static str, residual: f64, tol: f64, detail: String) {
        let passed = residual.is_finite() && residual <= tol;
        self.push(CheckVerdict { name, passed, residual, detail });
    }

    /// Plain-text rendering, one line per verdict.
    #[must_use]
    pub fn render(&self) -> String {
        self.to_string()
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for c in &self.checks {
            let tag = if c.passed { "PASS" } else { "FAIL" };
            writeln!(f, "{tag} {:<26} residual={:>12.3e}  {}", c.name, c.residual, c.detail)?;
        }
        let overall = if self.passed() { "audit: PASS" } else { "audit: FAIL" };
        write!(f, "{overall} (max residual {:.3e})", self.max_residual())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_passes() {
        let r = AuditReport::default();
        assert!(r.passed());
        assert_eq!(r.max_residual(), 0.0);
    }

    #[test]
    fn record_applies_tolerance() {
        let mut r = AuditReport::default();
        r.record("a", 1e-9, 1e-6, String::new());
        r.record("b", 1e-3, 1e-6, "too big".into());
        assert!(!r.passed());
        assert_eq!(r.failures().len(), 1);
        assert_eq!(r.failures()[0].name, "b");
        assert!((r.max_residual() - 1e-3).abs() < 1e-15);
    }

    #[test]
    fn nan_residual_fails_and_dominates() {
        let mut r = AuditReport::default();
        r.record("nan", f64::NAN, 1e-6, String::new());
        assert!(!r.passed());
        assert_eq!(r.max_residual(), f64::INFINITY);
    }

    #[test]
    fn render_mentions_every_check() {
        let mut r = AuditReport::default();
        r.record("alpha-check", 0.0, 1e-6, "fine".into());
        r.record("beta-check", 9.0, 1e-6, "broken".into());
        let s = r.render();
        assert!(s.contains("PASS alpha-check"));
        assert!(s.contains("FAIL beta-check"));
        assert!(s.contains("audit: FAIL"));
    }
}
