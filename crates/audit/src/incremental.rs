//! Incremental (streaming) auditing: O(delta) always-on checks.
//!
//! The batch auditors ([`crate::ScheduleAudit`], [`crate::MultiAudit`])
//! re-derive a *finished* run from its full segment list — O(run) work and
//! O(run) memory per audit, which cannot ride along with the streaming
//! cores soaking millions of releases on bounded memory (DESIGN.md §9).
//! [`IncrementalAudit`] subscribes to the stream's own event feed instead
//! — releases, retired segments from the `SpillRing`, completions — and
//! maintains rolling accumulators so that
//!
//! * each **segment** costs O(1): the wellformed / release-before-service
//!   folds, the running closed-form energy sum (same
//!   [`crate::closed_form`] fast path and quadrature cross-check tier as
//!   the batch pass, sampled by the same global segment index), and the
//!   running measurement-resolution state (peak speed, horizon);
//! * each **completion** costs O(its segments): the job's per-segment
//!   volumes, prefix-sum [`SegmentIndex`] completion inversion, and
//!   fractional-flow integral are derived with *bit-identical arithmetic*
//!   to [`crate::ScheduleAudit`]'s `derive_per_job` /
//!   `frac_flow_rederived`, then the job's retained segments are dropped —
//!   resident state is O(active jobs), independent of stream length;
//! * [`IncrementalAudit::finalize`] emits a standard [`AuditReport`] with
//!   the same named checks, in the same order, judged by the same
//!   scale-free residuals and tolerances as the batch auditor.
//!
//! # Feeding contract
//!
//! Events must be fed in the stream's retirement order: for every offer,
//! **buffer** the completions the sink emits, then drain the spill ring and
//! feed each retired segment via [`IncrementalAudit::on_segment`], then
//! feed the buffered completions via [`IncrementalAudit::on_complete`].
//! Both streaming cores retire every segment of a completing job before (or
//! at) the offer that emits its completion, so under this contract a job's
//! full segment history always precedes its completion event. Feeding a
//! completion before one of its segments shows up as lost volume — exactly
//! what it would mean.
//!
//! # Parity contract
//!
//! Against the batch auditor the contract is **verdict parity**: identical
//! check names in identical order, identical verdicts, and failing
//! residuals of the same order of magnitude (property-tested in
//! `tests/audit_property.rs` across the full tamper matrix). Most
//! accumulators are in fact bitwise equal to the batch pass (energy is
//! summed in the same global segment order; the per-job derivations are the
//! same arithmetic); the documented exceptions are sums accumulated in
//! completion order rather than job-id order (last-ulp differences) and the
//! volume-conservation *candidate selection*, which uses the measurement
//! resolution known at completion time rather than the end-of-run value
//! (the recorded residual is re-normalised with the final resolution).
//!
//! Against **itself** the contract is bitwise: the full accumulator state
//! round-trips through [`IncrementalSnapshot`] (and the `crates/trace`
//! codec), so a killed-and-resumed run's final report equals the
//! uninterrupted run's report bit for bit (`tests/incremental_resume.rs`).

use std::collections::{BTreeMap, HashMap};

use crate::closed_form;
use crate::quad::integrate;
use crate::report::{AuditReport, Stopwatch};
use crate::schedule_audit::{residual, sampled, AuditConfig};
use ncss_sim::profile::{Phase, PhaseScope};
use ncss_sim::{Job, JobId, Objective, PowerLaw, Segment, SegmentIndex, SimResult, SpeedLaw};

/// An eagerly tripped check: emitted by [`IncrementalAudit::on_segment`] /
/// [`IncrementalAudit::on_complete`] the moment a rolling check leaves
/// tolerance, so an always-on service can fail fast instead of waiting for
/// [`IncrementalAudit::finalize`]. The same violation is also folded into
/// the final report.
#[derive(Debug, Clone, PartialEq)]
pub struct Trip {
    /// Name of the tripped check (one of the batch auditor's check names).
    pub check: &'static str,
    /// The offending residual, judged against the check's tolerance.
    pub residual: f64,
    /// Human-readable description of the violation.
    pub detail: String,
}

/// A running worst-violation fold: the largest residual seen so far and
/// the detail string describing it.
#[derive(Debug, Clone, PartialEq)]
struct Worst {
    value: f64,
    detail: String,
}

impl Worst {
    fn new(ok: &str) -> Self {
        Self { value: 0.0, detail: ok.to_string() }
    }

    /// Batch-auditor fold rule for plain maxima (`r > worst`).
    fn fold(&mut self, value: f64, detail: impl FnOnce() -> String) {
        if value > self.value {
            self.value = value;
            self.detail = detail();
        }
    }
}

/// A released-but-not-yet-audited job: its static fields plus every
/// serving segment retired so far. Dropped as soon as the completion
/// event is audited, so the map of these is O(active jobs).
#[derive(Debug, Clone, PartialEq)]
struct ActiveJob {
    release: f64,
    volume: f64,
    density: f64,
    segs: Vec<Segment>,
}

/// A serving segment that named a job id the auditor has not seen released
/// (tampered feeds only — honest streams release before serving). Resolved
/// at [`IncrementalAudit::finalize`]: still-unknown ids reproduce the batch
/// auditor's infinite release-before-service residual.
#[derive(Debug, Clone, PartialEq)]
struct PendingSegment {
    index: u64,
    job: u64,
    seg: Segment,
    /// True when the id *was* known but its job had already completed and
    /// been audited — service after completion, an infinite volume fault.
    late: bool,
}

/// Plain-data snapshot of an [`IncrementalAudit`]: every accumulator,
/// bit for bit. Round-trips through `ncss-trace`'s frame codec so that a
/// checkpointed stream can checkpoint its auditor alongside and a resumed
/// run reproduces the uninterrupted run's verdicts bitwise.
#[derive(Debug, Clone, PartialEq)]
pub struct IncrementalSnapshot {
    /// Power-law exponent α (the law is rebuilt via [`PowerLaw::new`]).
    pub alpha: f64,
    /// [`AuditConfig::rel_tol`] of the running auditor.
    pub rel_tol: f64,
    /// [`AuditConfig::time_tol`] of the running auditor.
    pub time_tol: f64,
    /// [`AuditConfig::cross_check_stride`] of the running auditor.
    pub cross_check_stride: u64,
    /// Releases fed so far.
    pub released: u64,
    /// Completions audited so far.
    pub completed: u64,
    /// Segments fed so far (the global energy-sampling index).
    pub seg_count: u64,
    /// Running peak of the segment-endpoint speeds (resolution state).
    pub peak_speed: f64,
    /// End of the last fed segment (the running horizon), 0 before any.
    pub horizon: f64,
    /// `prev_end` of the wellformed fold (−∞ before the first segment).
    pub wf_prev_end: f64,
    /// Worst wellformed violation so far.
    pub wf_worst: f64,
    /// Detail of the worst wellformed violation.
    pub wf_detail: String,
    /// Worst early-service violation so far.
    pub rel_worst: f64,
    /// Detail of the worst early-service violation.
    pub rel_detail: String,
    /// Volume-conservation candidate: |delivered − volume| of the worst job.
    pub vol_a: f64,
    /// Volume-conservation candidate: its denominator base `1 + volume`.
    pub vol_b: f64,
    /// Selection value the candidate won with (resolution-at-completion).
    pub vol_sel: f64,
    /// Detail of the volume-conservation candidate.
    pub vol_detail: String,
    /// Worst completion-consistency residual so far.
    pub comp_worst: f64,
    /// Detail of the worst completion-consistency violation.
    pub comp_detail: String,
    /// Running energy sum (global segment order — bitwise the batch sum).
    pub energy: f64,
    /// Running re-derived fractional-flow sum (completion order).
    pub frac_derived: f64,
    /// Running re-derived integral-flow sum (completion order).
    pub int_derived: f64,
    /// Worst completion-after-release violation over reported completions.
    pub car_worst: f64,
    /// Detail of the worst completion-after-release violation.
    pub car_detail: String,
    /// Worst frac-dominated-by-int residual over reported per-job flows.
    pub fdi_worst: f64,
    /// Detail of the worst frac-dominated-by-int violation.
    pub fdi_detail: String,
    /// Running sum of reported per-job fractional flows.
    pub rep_frac: f64,
    /// Running sum of reported per-job integral flows.
    pub rep_int: f64,
    /// Active (released, not yet audited) jobs, ascending id:
    /// `(id, release, volume, density, serving segments so far)`.
    pub active: Vec<(u64, f64, f64, f64, Vec<Segment>)>,
    /// Unresolved segments naming unknown or completed jobs:
    /// `(global index, job id, segment, late?)`.
    pub pending: Vec<(u64, u64, Segment, bool)>,
}

/// Streaming single-machine auditor; see the module docs for the feeding
/// and parity contracts.
///
/// ```
/// use ncss_audit::{AuditConfig, IncrementalAudit};
/// use ncss_sim::{Job, PowerLaw, Segment, SpeedLaw};
///
/// let law = PowerLaw::new(2.0).unwrap();
/// let mut audit = IncrementalAudit::new(law, AuditConfig::default());
/// audit.on_release(0, Job::new(0.0, 1.0, 1.0));
/// audit.on_segment(Segment::new(0.0, 1.0, Some(0), SpeedLaw::Constant { speed: 1.0 }));
/// // Job 0 delivered its unit volume at speed 1: completes at t = 1.
/// assert!(audit.on_complete(0, 1.0, 0.5, 1.0).is_none());
/// let report = audit.finalize(&ncss_sim::Objective { energy: 1.0, frac_flow: 0.5, int_flow: 1.0 });
/// assert!(report.passed(), "{report}");
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalAudit {
    config: AuditConfig,
    law: PowerLaw,
    released: u64,
    completed: u64,
    seg_count: u64,
    peak_speed: f64,
    horizon: f64,
    wf_prev_end: f64,
    wf: Worst,
    rel: Worst,
    vol_a: f64,
    vol_b: f64,
    vol_sel: f64,
    vol_detail: String,
    comp: Worst,
    energy: f64,
    frac_derived: f64,
    int_derived: f64,
    car: Worst,
    fdi: Worst,
    rep_frac: f64,
    rep_int: f64,
    /// Hash-indexed for O(1) per-event lookups; every consumer that
    /// observes more than one entry (`finalize`, `snapshot`) sorts by id
    /// first, so nothing depends on iteration order.
    active: HashMap<JobId, ActiveJob>,
    pending: Vec<PendingSegment>,
    /// Scratch per-segment volumes, reused across completions. Dead
    /// between events; never snapshotted.
    scratch_dvs: Vec<f64>,
    /// Scratch inclusive prefix sums of `scratch_dvs`, same lifecycle.
    scratch_cum: Vec<f64>,
    /// Recycled per-job segment buffers (≤ peak active jobs entries):
    /// completions return their emptied vec here, releases take one back.
    seg_pool: Vec<Vec<Segment>>,
}

impl IncrementalAudit {
    /// A fresh auditor for a stream running under `law`. Only `rel_tol`,
    /// `time_tol`, and `cross_check_stride` of `config` are used — the
    /// incremental path is strictly serial (every event is O(1) or O(one
    /// job), so there is nothing to shard).
    #[must_use]
    pub fn new(law: PowerLaw, config: AuditConfig) -> Self {
        Self {
            config,
            law,
            released: 0,
            completed: 0,
            seg_count: 0,
            peak_speed: 0.0,
            horizon: 0.0,
            wf_prev_end: f64::NEG_INFINITY,
            wf: Worst::new("all segments ordered"),
            rel: Worst::new("no early service"),
            vol_a: 0.0,
            vol_b: 1.0,
            vol_sel: 0.0,
            vol_detail: String::from("all volumes conserved"),
            comp: Worst::new("completions agree"),
            energy: 0.0,
            frac_derived: 0.0,
            int_derived: 0.0,
            car: Worst::new("all completions after release"),
            fdi: Worst::new("fractional ≤ integral per job"),
            rep_frac: 0.0,
            rep_int: 0.0,
            active: HashMap::new(),
            pending: Vec::new(),
            scratch_dvs: Vec::new(),
            scratch_cum: Vec::new(),
            seg_pool: Vec::new(),
        }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> AuditConfig {
        self.config
    }

    /// Number of released jobs whose completion has not been audited yet —
    /// the auditor's resident state is proportional to this (plus their
    /// retained segments), never to the stream length.
    #[must_use]
    pub fn active_jobs(&self) -> usize {
        self.active.len()
    }

    /// Releases fed so far.
    #[must_use]
    pub fn released(&self) -> u64 {
        self.released
    }

    /// Completions audited so far.
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Measurement resolution implied by the segments fed so far (the
    /// batch auditor's `measurement_resolution` over the running peak
    /// speed and horizon).
    fn resolution(&self) -> f64 {
        self.peak_speed * self.horizon.abs() * f64::EPSILON * 64.0
    }

    /// Record job `id`'s release. Ids must be the stream's arrival indices
    /// (dense from 0); re-releasing a live id resets its segment history.
    pub fn on_release(&mut self, id: JobId, job: Job) {
        let _p = PhaseScope::enter(Phase::Audit);
        self.released = self.released.max(id as u64 + 1);
        let mut segs = self.seg_pool.pop().unwrap_or_default();
        // A tampered feed can serve a job before releasing it: adopt the
        // pended segments (feed order preserved) and charge the early
        // service to the release fold, as the batch scan would.
        let mut i = 0;
        while i < self.pending.len() {
            if !self.pending[i].late && self.pending[i].job == id as u64 {
                let p = self.pending.remove(i);
                let early = job.release - p.seg.start;
                self.rel.fold(early, || {
                    format!(
                        "job {id} served {early:.3e} before release (segment {})",
                        p.index
                    )
                });
                segs.push(p.seg);
            } else {
                i += 1;
            }
        }
        self.active.insert(
            id,
            ActiveJob { release: job.release, volume: job.volume, density: job.density, segs },
        );
    }

    /// Feed one retired segment (in retirement order). O(1): folds the
    /// wellformed / early-service checks, the running energy sum, and the
    /// resolution state, and appends serving segments to their job's
    /// retained history. Returns a [`Trip`] if a time-axis check left
    /// tolerance at this segment.
    pub fn on_segment(&mut self, seg: Segment) -> Option<Trip> {
        let _p = PhaseScope::enter(Phase::Audit);
        let i = self.seg_count;
        self.seg_count += 1;
        let pl = self.law;

        // --- wellformed fold (exactly `wellformed_residual`'s scan).
        let bad_times = !(seg.start.is_finite() && seg.end.is_finite() && seg.scale.is_finite());
        let inversion = seg.start - seg.end;
        let overlap =
            if self.wf_prev_end.is_finite() { self.wf_prev_end - seg.start } else { 0.0 };
        let v = if bad_times { f64::INFINITY } else { inversion.max(overlap).max(0.0) };
        self.wf.fold(v, || format!("segment {i}: [{:.6}, {:.6}]", seg.start, seg.end));
        self.wf_prev_end = self.wf_prev_end.max(seg.end);

        // --- resolution state (running peak speed and horizon). Every
        // speed law is monotone within its segment (constant, decaying,
        // or growing), so with a non-negative scale only the dominating
        // endpoint can raise the running max — evaluating just that one
        // yields the identical max bits at half the kernel evaluations.
        // A negative scale (representable, never emitted) reverses the
        // ordering, so it falls back to both endpoints.
        self.peak_speed = if seg.scale >= 0.0 {
            let t = match seg.law {
                SpeedLaw::Growth { .. } => seg.end,
                SpeedLaw::Idle | SpeedLaw::Constant { .. } | SpeedLaw::Decay { .. } => seg.start,
            };
            self.peak_speed.max(seg.speed_at(pl, t))
        } else {
            self.peak_speed
                .max(seg.speed_at(pl, seg.start))
                .max(seg.speed_at(pl, seg.end))
        };
        self.horizon = seg.end;

        // --- running energy, sampled by the global segment index — the
        // same index the batch pass uses over the rebuilt schedule, so the
        // sum is bitwise identical.
        let de = if sampled(self.config.cross_check_stride, i as usize) {
            integrate(|t| seg.power_at(pl, t), seg.start, seg.end)
        } else {
            closed_form::energy(pl, &seg)
        };
        self.energy += de;

        // --- early-service fold and per-job retention.
        if let Some(j) = seg.job {
            if let Some(job) = self.active.get_mut(&j) {
                let early = job.release - seg.start;
                self.rel
                    .fold(early, || format!("job {j} served {early:.3e} before release (segment {i})"));
                job.segs.push(seg);
            } else {
                let late = (j as u64) < self.released;
                self.pending.push(PendingSegment { index: i, job: j as u64, seg, late });
            }
        }

        let time_tol = self.config.time_tol * (1.0 + self.horizon.abs());
        if !(self.wf.value.is_finite() && self.wf.value <= time_tol) {
            return Some(Trip {
                check: "segments-wellformed",
                residual: self.wf.value,
                detail: self.wf.detail.clone(),
            });
        }
        if !(self.rel.value.is_finite() && self.rel.value <= time_tol) {
            return Some(Trip {
                check: "release-before-service",
                residual: self.rel.value,
                detail: self.rel.detail.clone(),
            });
        }
        None
    }

    /// Audit job `id`'s completion: derive its delivered volume,
    /// completion time, and flow contributions from its retained segments
    /// (O(its segments), bit-identical arithmetic to the batch
    /// `derive_per_job` / `frac_flow_rederived`), fold every rolling
    /// check, and drop the job's state. `completion`, `frac_flow`, and
    /// `int_flow` are the *reported* per-job values from the stream's
    /// completion event. Returns the first per-job check that left
    /// tolerance, if any.
    pub fn on_complete(
        &mut self,
        id: JobId,
        completion: f64,
        frac_flow: f64,
        int_flow: f64,
    ) -> Option<Trip> {
        let _p = PhaseScope::enter(Phase::Audit);
        let Some(job) = self.active.remove(&id) else {
            // Completion for a job never released (or audited twice):
            // nothing to derive against, which is itself a finding.
            let detail = format!("job {id}: completed but never released");
            self.comp.fold(f64::INFINITY, || detail.clone());
            self.completed += 1;
            return Some(Trip {
                check: "completion-consistency",
                residual: f64::INFINITY,
                detail,
            });
        };
        self.completed += 1;
        let pl = self.law;
        let j = id;
        let stride = self.config.cross_check_stride;
        let resolution = self.resolution();

        // --- per-segment volumes + completion inversion: the exact
        // arithmetic of the batch `derive_per_job` for this one job. The
        // volume and prefix-sum vectors are scratch space reused across
        // completions; the sums accumulate in the same order as the batch
        // [`SegmentIndex`], so every derived value keeps its batch bits.
        let speed_of = |s: &Segment| {
            let s = *s;
            move |t: f64| s.speed_at(pl, t)
        };
        let mut dvs = std::mem::take(&mut self.scratch_dvs);
        dvs.clear();
        dvs.extend(job.segs.iter().enumerate().map(|(i, s)| {
            if sampled(stride, j + i) {
                integrate(speed_of(s), s.start, s.end)
            } else {
                closed_form::volume(pl, s)
            }
        }));
        let mut cum_volume = std::mem::take(&mut self.scratch_cum);
        cum_volume.clear();
        let mut running = 0.0;
        cum_volume.extend(dvs.iter().map(|&v| {
            running += v;
            running
        }));
        let margin = 1e-9 * (1.0 + job.volume);
        let mut derived_c = f64::NAN;
        // `SegmentIndex::first_reaching` / `volume_before` over the
        // scratch prefix sums.
        let target_v = job.volume - margin;
        let i = cum_volume.partition_point(|&p| !(p >= target_v));
        if let Some(s) = job.segs.get(i) {
            let before = if i == 0 { 0.0 } else { cum_volume[i - 1] };
            let target = (job.volume - before).min(dvs[i]).max(0.0);
            if dvs[i] - target <= margin {
                derived_c = s.end;
            } else {
                derived_c = closed_form::time_at_volume(pl, s, target);
            }
        }
        let cum = cum_volume.last().copied().unwrap_or(0.0);
        if derived_c.is_nan()
            && (cum - job.volume).abs() <= self.config.rel_tol * (1.0 + job.volume + resolution)
        {
            derived_c = job.segs.last().map_or(completion, |s| s.end).max(job.release);
        }

        // --- volume-conservation candidate. Selection uses the resolution
        // known *now* (it only grows, so a job that passes now passes the
        // final judgement too); the recorded residual is re-normalised
        // with the end-of-run resolution in `finalize`.
        let a = (cum - job.volume).abs();
        let b = 1.0 + job.volume;
        let sel = a / (b + resolution);
        if !(sel <= self.vol_sel) {
            self.vol_sel = sel;
            self.vol_a = a;
            self.vol_b = b;
            self.vol_detail = format!("job {j}: delivered {cum:.9e} of {:.9e}", job.volume);
        }

        // --- completion-consistency fold.
        let r = residual(derived_c, completion);
        let r = if r.is_nan() { f64::INFINITY } else { r };
        self.comp
            .fold(r, || format!("job {j}: derived {derived_c:.9} vs reported {completion:.9}"));

        // --- fractional flow contribution (batch `frac_flow_rederived`
        // for this one job, with the derived completion).
        let dfrac = if derived_c.is_finite() {
            let cut = job.segs.partition_point(|s| s.start < derived_c);
            let mut served = 0.0;
            for s in &job.segs[..cut] {
                served += if sampled(stride, j) {
                    integrate(|t| (derived_c - t) * s.speed_at(pl, t), s.start, s.end.min(derived_c))
                } else {
                    closed_form::weighted_volume(pl, s, derived_c)
                };
            }
            job.density * (job.volume * (derived_c - job.release) - served)
        } else {
            f64::NAN
        };
        self.frac_derived += dfrac;
        self.int_derived += (job.density * job.volume) * (derived_c - job.release);

        // Hand the per-job buffers back: scratch for the next completion,
        // the emptied segment vec to the release pool.
        self.scratch_dvs = dvs;
        self.scratch_cum = cum_volume;
        let mut segs = job.segs;
        segs.clear();
        self.seg_pool.push(segs);

        // --- outcome folds over the *reported* per-job values.
        let car = if completion.is_finite() { job.release - completion } else { f64::INFINITY };
        self.car
            .fold(car, || format!("job {j}: completion {completion} vs release {}", job.release));
        let fdi = residual(frac_flow.max(int_flow), int_flow);
        let fdi = if fdi.is_nan() { f64::INFINITY } else { fdi };
        self.fdi.fold(fdi, || format!("job {j}: frac {frac_flow} vs int {int_flow}"));
        self.rep_frac += frac_flow;
        self.rep_int += int_flow;

        // --- eager verdict: first per-job check out of tolerance.
        let tol = self.config.rel_tol;
        let trip = |check, residual: f64, detail: String| Some(Trip { check, residual, detail });
        if !(sel.is_finite() && sel <= tol) {
            return trip(
                "volume-conservation",
                sel,
                format!("job {j}: delivered {cum:.9e} of {:.9e}", job.volume),
            );
        }
        if !(r.is_finite() && r <= tol) {
            return trip(
                "completion-consistency",
                r,
                format!("job {j}: derived {derived_c:.9} vs reported {completion:.9}"),
            );
        }
        if !(car.is_finite() && car.max(0.0) <= tol) {
            return trip(
                "completion-after-release",
                car,
                format!("job {j}: completion {completion} vs release {}", job.release),
            );
        }
        if !(fdi.is_finite() && fdi <= tol) {
            return trip(
                "frac-dominated-by-int",
                fdi,
                format!("job {j}: frac {frac_flow} vs int {int_flow}"),
            );
        }
        None
    }

    /// Close the run against the stream's reported aggregate `objective`
    /// and emit the final [`AuditReport`]: the batch auditor's checks, in
    /// the batch auditor's order, judged with the batch tolerances.
    ///
    /// Jobs still active (released, never completed) are derived here with
    /// no reported completion to compare against — they trip
    /// `completion-consistency` exactly as a short reported-completions
    /// array trips the batch pass.
    #[must_use]
    pub fn finalize(mut self, objective: &Objective) -> AuditReport {
        let mut report = AuditReport::default();
        let mut clock = Stopwatch::new();
        let tol = self.config.rel_tol;
        let time_tol = self.config.time_tol * (1.0 + self.horizon.abs());

        // Jobs that never completed: audit them now (reported completion
        // NaN), ascending id — the batch scan's order — so lost jobs
        // cannot hide from the per-job checks.
        let mut leftover: Vec<JobId> = self.active.keys().copied().collect();
        leftover.sort_unstable();
        for id in leftover {
            let _ = self.on_complete(id, f64::NAN, f64::NAN, f64::NAN);
            self.completed -= 1; // they did not actually complete
        }

        // Pending segments that never resolved: unknown ids reproduce the
        // batch release scan's infinite residual; service *after* a job's
        // audited completion is unaccountable volume.
        for p in &self.pending {
            if p.late {
                self.vol_sel = f64::INFINITY;
                self.vol_a = f64::INFINITY;
                self.vol_b = 1.0;
                self.vol_detail =
                    format!("job {}: served after completion (segment {})", p.job, p.index);
            } else {
                self.rel.value = f64::INFINITY;
                self.rel.detail = format!("segment {} serves unknown job {}", p.index, p.job);
            }
        }

        let res_final = self.resolution();
        report.record_timed(
            "segments-wellformed",
            self.wf.value,
            time_tol,
            self.wf.detail,
            clock.lap(),
        );
        report.record_timed(
            "release-before-service",
            self.rel.value,
            time_tol,
            self.rel.detail,
            clock.lap(),
        );

        // Recorded volume residual: the winning candidate re-normalised
        // with the end-of-run resolution (bitwise the batch value whenever
        // the candidate is the batch argmax — see the module docs).
        let vol = self.vol_a / (self.vol_b + res_final);
        report.record_timed("volume-conservation", vol, tol, self.vol_detail, clock.lap());
        report.record_timed(
            "completion-consistency",
            self.comp.value,
            tol,
            self.comp.detail,
            clock.lap(),
        );
        report.record_timed(
            "energy-recomputed",
            residual(self.energy, objective.energy),
            tol,
            format!("re-derived {:.9e} vs reported {:.9e}", self.energy, objective.energy),
            clock.lap(),
        );
        report.record_timed(
            "frac-flow-recomputed",
            residual(self.frac_derived, objective.frac_flow),
            tol,
            format!(
                "re-derived {:.9e} vs reported {:.9e}",
                self.frac_derived, objective.frac_flow
            ),
            clock.lap(),
        );
        report.record_timed(
            "int-flow-recomputed",
            residual(self.int_derived, objective.int_flow),
            tol,
            format!("derived {:.9e} vs reported {:.9e}", self.int_derived, objective.int_flow),
            clock.lap(),
        );

        // --- outcome checks, batch order and arithmetic.
        let mut worst = 0.0f64;
        let mut detail = String::from("all components finite");
        for (what, v) in [
            ("energy", objective.energy),
            ("frac_flow", objective.frac_flow),
            ("int_flow", objective.int_flow),
        ] {
            if !(v.is_finite() && v >= 0.0) {
                worst = f64::INFINITY;
                detail = format!("{what} = {v}");
            }
        }
        report.record_timed("objective-finite", worst, tol, detail, clock.lap());

        if self.completed != self.released {
            self.car.value = f64::INFINITY;
            self.car.detail =
                format!("{} completions for {} jobs", self.completed, self.released);
        }
        report.record_timed(
            "completion-after-release",
            self.car.value.max(0.0),
            tol,
            self.car.detail,
            clock.lap(),
        );
        report.record_timed(
            "frac-dominated-by-int",
            self.fdi.value,
            tol,
            self.fdi.detail,
            clock.lap(),
        );
        let v = residual(self.rep_frac, objective.frac_flow)
            .max(residual(self.rep_int, objective.int_flow));
        let v = if v.is_nan() { f64::INFINITY } else { v };
        report.record_timed(
            "reported-sums-consistent",
            v,
            tol,
            format!("Σfrac {:.9e} / Σint {:.9e}", self.rep_frac, self.rep_int),
            clock.lap(),
        );
        report
    }

    /// Capture the full accumulator state, bit for bit.
    #[must_use]
    pub fn snapshot(&self) -> IncrementalSnapshot {
        IncrementalSnapshot {
            alpha: self.law.alpha(),
            rel_tol: self.config.rel_tol,
            time_tol: self.config.time_tol,
            cross_check_stride: self.config.cross_check_stride as u64,
            released: self.released,
            completed: self.completed,
            seg_count: self.seg_count,
            peak_speed: self.peak_speed,
            horizon: self.horizon,
            wf_prev_end: self.wf_prev_end,
            wf_worst: self.wf.value,
            wf_detail: self.wf.detail.clone(),
            rel_worst: self.rel.value,
            rel_detail: self.rel.detail.clone(),
            vol_a: self.vol_a,
            vol_b: self.vol_b,
            vol_sel: self.vol_sel,
            vol_detail: self.vol_detail.clone(),
            comp_worst: self.comp.value,
            comp_detail: self.comp.detail.clone(),
            energy: self.energy,
            frac_derived: self.frac_derived,
            int_derived: self.int_derived,
            car_worst: self.car.value,
            car_detail: self.car.detail.clone(),
            fdi_worst: self.fdi.value,
            fdi_detail: self.fdi.detail.clone(),
            rep_frac: self.rep_frac,
            rep_int: self.rep_int,
            active: {
                let mut rows: Vec<_> = self
                    .active
                    .iter()
                    .map(|(&id, j)| (id as u64, j.release, j.volume, j.density, j.segs.clone()))
                    .collect();
                rows.sort_unstable_by_key(|r| r.0);
                rows
            },
            pending: self
                .pending
                .iter()
                .map(|p| (p.index, p.job, p.seg, p.late))
                .collect(),
        }
    }

    /// Rebuild an auditor from a snapshot. Fails only if the snapshot's α
    /// does not name a valid power law.
    pub fn from_snapshot(snap: IncrementalSnapshot) -> SimResult<Self> {
        let law = PowerLaw::new(snap.alpha)?;
        let config = AuditConfig {
            rel_tol: snap.rel_tol,
            time_tol: snap.time_tol,
            threads: Some(1),
            cross_check_stride: snap.cross_check_stride as usize,
        };
        Ok(Self {
            config,
            law,
            released: snap.released,
            completed: snap.completed,
            seg_count: snap.seg_count,
            peak_speed: snap.peak_speed,
            horizon: snap.horizon,
            wf_prev_end: snap.wf_prev_end,
            wf: Worst { value: snap.wf_worst, detail: snap.wf_detail },
            rel: Worst { value: snap.rel_worst, detail: snap.rel_detail },
            vol_a: snap.vol_a,
            vol_b: snap.vol_b,
            vol_sel: snap.vol_sel,
            vol_detail: snap.vol_detail,
            comp: Worst { value: snap.comp_worst, detail: snap.comp_detail },
            energy: snap.energy,
            frac_derived: snap.frac_derived,
            int_derived: snap.int_derived,
            car: Worst { value: snap.car_worst, detail: snap.car_detail },
            fdi: Worst { value: snap.fdi_worst, detail: snap.fdi_detail },
            rep_frac: snap.rep_frac,
            rep_int: snap.rep_int,
            active: snap
                .active
                .into_iter()
                .map(|(id, release, volume, density, segs)| {
                    (id as JobId, ActiveJob { release, volume, density, segs })
                })
                .collect(),
            pending: snap
                .pending
                .into_iter()
                .map(|(index, job, seg, late)| PendingSegment { index, job, seg, late })
                .collect(),
            scratch_dvs: Vec::new(),
            scratch_cum: Vec::new(),
            seg_pool: Vec::new(),
        })
    }
}

/// Per-machine fold state of the multi-machine incremental auditor.
#[derive(Debug, Clone)]
struct MachineState {
    seg_count: u64,
    prev_end: f64,
    last_end: f64,
    wf: Worst,
    rel: Worst,
    energy: f64,
    pending: Vec<(u64, u64, Segment)>,
}

/// A fleet job's cross-machine state while active: static fields plus its
/// serving segments tagged `(machine, arrival index)`.
#[derive(Debug, Clone)]
struct MultiActiveJob {
    release: f64,
    volume: f64,
    density: f64,
    segs: Vec<(usize, u64, Segment)>,
}

/// Streaming cross-machine auditor: the incremental counterpart of
/// [`crate::MultiAudit`]. Feed per-machine retired segments via
/// [`IncrementalMultiAudit::on_segment`] and fleet completions via
/// [`IncrementalMultiAudit::on_complete`]; resident state is O(active
/// jobs' segments + machines).
///
/// Parity with the batch pass is at the verdict level (same check names,
/// same order, same verdicts, failing residuals of the same order); the
/// energy cross-check tier samples by per-machine segment index rather
/// than the batch pass's fleet-concatenation index, so the energy residual
/// can differ from the batch value by quadrature-vs-closed-form slack
/// (≲1e-12), far below the audit tolerance.
#[derive(Debug, Clone)]
pub struct IncrementalMultiAudit {
    config: AuditConfig,
    laws: Vec<PowerLaw>,
    machines: Vec<MachineState>,
    peak_speed: f64,
    released: u64,
    completed: u64,
    nds: Worst,
    vol_a: f64,
    vol_b: f64,
    vol_sel: f64,
    vol_detail: String,
    comp: Worst,
    frac_derived: f64,
    int_derived: f64,
    car: Worst,
    fdi: Worst,
    rep_frac: f64,
    rep_int: f64,
    active: BTreeMap<JobId, MultiActiveJob>,
}

impl IncrementalMultiAudit {
    /// A fresh fleet auditor: one power law per machine (the fleet is
    /// fixed for the run, as in [`crate::MultiAudit`]).
    #[must_use]
    pub fn new(laws: Vec<PowerLaw>, config: AuditConfig) -> Self {
        let machines = laws
            .iter()
            .map(|_| MachineState {
                seg_count: 0,
                prev_end: f64::NEG_INFINITY,
                last_end: 0.0,
                wf: Worst { value: 0.0, detail: String::from("all segments ordered") },
                rel: Worst { value: 0.0, detail: String::from("no early service") },
                energy: 0.0,
                pending: Vec::new(),
            })
            .collect();
        Self {
            config,
            laws,
            machines,
            peak_speed: 0.0,
            released: 0,
            completed: 0,
            nds: Worst::new("no cross-machine overlap"),
            vol_a: 0.0,
            vol_b: 1.0,
            vol_sel: 0.0,
            vol_detail: String::from("all volumes conserved across machines"),
            comp: Worst::new("completions agree"),
            frac_derived: 0.0,
            int_derived: 0.0,
            car: Worst::new("all completions after release"),
            fdi: Worst::new("fractional ≤ integral per job"),
            rep_frac: 0.0,
            rep_int: 0.0,
            active: BTreeMap::new(),
        }
    }

    /// The fleet's reference law (machine 0's, or the inert cube fallback
    /// of the batch pass for an empty fleet).
    fn law(&self) -> PowerLaw {
        self.laws.first().copied().unwrap_or_else(PowerLaw::cube)
    }

    fn horizon(&self) -> f64 {
        self.machines.iter().map(|m| m.last_end.abs()).fold(0.0f64, f64::max)
    }

    fn resolution(&self) -> f64 {
        self.peak_speed * self.horizon() * f64::EPSILON * 64.0
    }

    /// Jobs released but not yet audited.
    #[must_use]
    pub fn active_jobs(&self) -> usize {
        self.active.len()
    }

    /// Record job `id`'s release to the fleet.
    pub fn on_release(&mut self, id: JobId, job: Job) {
        let _p = PhaseScope::enter(Phase::Audit);
        self.released = self.released.max(id as u64 + 1);
        let mut segs = Vec::new();
        for (m, ms) in self.machines.iter_mut().enumerate() {
            let mut i = 0;
            while i < ms.pending.len() {
                if ms.pending[i].1 == id as u64 {
                    let (idx, _, seg) = ms.pending.remove(i);
                    let early = job.release - seg.start;
                    ms.rel.fold(early, || {
                        format!("job {id} served {early:.3e} before release (segment {idx})")
                    });
                    segs.push((m, idx, seg));
                } else {
                    i += 1;
                }
            }
        }
        self.active.insert(
            id,
            MultiActiveJob {
                release: job.release,
                volume: job.volume,
                density: job.density,
                segs,
            },
        );
    }

    /// Feed machine `m`'s next retired segment (machine-chronological
    /// order per machine; machines may interleave freely).
    ///
    /// # Panics
    /// Panics if `m` is outside the fleet declared at construction.
    pub fn on_segment(&mut self, m: usize, seg: Segment) -> Option<Trip> {
        let _p = PhaseScope::enter(Phase::Audit);
        let pl = self.laws[m];
        let ms = &mut self.machines[m];
        let i = ms.seg_count;
        ms.seg_count += 1;

        let bad_times = !(seg.start.is_finite() && seg.end.is_finite() && seg.scale.is_finite());
        let inversion = seg.start - seg.end;
        let overlap = if ms.prev_end.is_finite() { ms.prev_end - seg.start } else { 0.0 };
        let v = if bad_times { f64::INFINITY } else { inversion.max(overlap).max(0.0) };
        ms.wf.fold(v, || format!("segment {i}: [{:.6}, {:.6}]", seg.start, seg.end));
        ms.prev_end = ms.prev_end.max(seg.end);
        ms.last_end = seg.end;

        self.peak_speed = self
            .peak_speed
            .max(seg.speed_at(pl, seg.start))
            .max(seg.speed_at(pl, seg.end));

        let de = if sampled(self.config.cross_check_stride, i as usize) {
            integrate(|t| seg.power_at(pl, t), seg.start, seg.end)
        } else {
            closed_form::energy(pl, &seg)
        };
        self.machines[m].energy += de;

        if let Some(j) = seg.job {
            if let Some(job) = self.active.get_mut(&j) {
                let early = job.release - seg.start;
                self.machines[m]
                    .rel
                    .fold(early, || format!("job {j} served {early:.3e} before release (segment {i})"));
                job.segs.push((m, i, seg));
            } else {
                self.machines[m].pending.push((i, j as u64, seg));
            }
        }

        let time_tol = self.config.time_tol * (1.0 + self.horizon());
        let wf = &self.machines[m].wf;
        if !(wf.value.is_finite() && wf.value <= time_tol) {
            return Some(Trip {
                check: "segments-wellformed",
                residual: wf.value,
                detail: format!("machine {m}: {}", wf.detail),
            });
        }
        None
    }

    /// Audit job `id`'s fleet completion: merge its cross-machine serving
    /// intervals (batch sort order: start, then machine, then arrival),
    /// run the O(k²) no-double-service scan, derive volume / completion /
    /// flows over the merged timeline, fold every check, and drop the
    /// job's state.
    pub fn on_complete(
        &mut self,
        id: JobId,
        completion: f64,
        frac_flow: f64,
        int_flow: f64,
    ) -> Option<Trip> {
        let _p = PhaseScope::enter(Phase::Audit);
        let Some(mut job) = self.active.remove(&id) else {
            let detail = format!("job {id}: completed but never released");
            self.comp.fold(f64::INFINITY, || detail.clone());
            self.completed += 1;
            return Some(Trip {
                check: "completion-consistency",
                residual: f64::INFINITY,
                detail,
            });
        };
        self.completed += 1;
        let pl = self.law();
        let j = id;
        let stride = self.config.cross_check_stride;
        let resolution = self.resolution();

        // Batch merge order: machine-major insertion, stable sort by
        // start. `(start, machine, arrival)` reproduces it exactly.
        job.segs
            .sort_by(|a, b| a.2.start.total_cmp(&b.2.start).then(a.0.cmp(&b.0)).then(a.1.cmp(&b.1)));

        // --- no-double-service: O(k²) over this job's intervals, batch
        // scan order.
        let mut worst = f64::NEG_INFINITY;
        let mut detail = String::new();
        for (i, (m_a, _, a)) in job.segs.iter().enumerate() {
            for (m_b, _, b) in &job.segs[i + 1..] {
                if m_a == m_b {
                    continue;
                }
                let lo = a.start.max(b.start);
                let hi = a.end.min(b.end);
                let overlap = hi - lo;
                if overlap > worst {
                    worst = overlap;
                    detail = format!("machines {m_a}/{m_b} both serve [{lo:.6}, {hi:.6}]");
                }
            }
        }
        self.nds.fold(worst, || format!("job {j}: {detail}"));

        // --- merged-timeline derivation (batch `derive_per_job` body).
        let segs: Vec<Segment> = job.segs.iter().map(|&(_, _, s)| s).collect();
        let speed_of = |s: &Segment| {
            let s = *s;
            move |t: f64| s.speed_at(pl, t)
        };
        let dvs: Vec<f64> = segs
            .iter()
            .enumerate()
            .map(|(i, s)| {
                if sampled(stride, j + i) {
                    integrate(speed_of(s), s.start, s.end)
                } else {
                    closed_form::volume(pl, s)
                }
            })
            .collect();
        let index = SegmentIndex::from_volumes(&segs, dvs.iter().copied());
        let margin = 1e-9 * (1.0 + job.volume);
        let mut derived_c = f64::NAN;
        let i = index.first_reaching(job.volume - margin);
        if let Some(s) = segs.get(i) {
            let target = (job.volume - index.volume_before(i)).min(dvs[i]).max(0.0);
            if dvs[i] - target <= margin {
                derived_c = s.end;
            } else {
                derived_c = closed_form::time_at_volume(pl, s, target);
            }
        }
        let cum = index.total_volume();
        if derived_c.is_nan()
            && (cum - job.volume).abs() <= self.config.rel_tol * (1.0 + job.volume + resolution)
        {
            derived_c = segs.last().map_or(completion, |s| s.end).max(job.release);
        }

        let a = (cum - job.volume).abs();
        let b = 1.0 + job.volume;
        let sel = a / (b + resolution);
        if !(sel <= self.vol_sel) {
            self.vol_sel = sel;
            self.vol_a = a;
            self.vol_b = b;
            self.vol_detail =
                format!("job {j}: machines delivered {cum:.9e} of {:.9e}", job.volume);
        }

        let r = residual(derived_c, completion);
        let r = if r.is_nan() { f64::INFINITY } else { r };
        self.comp
            .fold(r, || format!("job {j}: derived {derived_c:.9} vs reported {completion:.9}"));

        let dfrac = if derived_c.is_finite() {
            let cut = segs.partition_point(|s| s.start < derived_c);
            let mut served = 0.0;
            for s in &segs[..cut] {
                served += if sampled(stride, j) {
                    integrate(|t| (derived_c - t) * s.speed_at(pl, t), s.start, s.end.min(derived_c))
                } else {
                    closed_form::weighted_volume(pl, s, derived_c)
                };
            }
            job.density * (job.volume * (derived_c - job.release) - served)
        } else {
            f64::NAN
        };
        self.frac_derived += dfrac;
        self.int_derived += (job.density * job.volume) * (derived_c - job.release);

        let car = if completion.is_finite() { job.release - completion } else { f64::INFINITY };
        self.car
            .fold(car, || format!("job {j}: completion {completion} vs release {}", job.release));
        let fdi = residual(frac_flow.max(int_flow), int_flow);
        let fdi = if fdi.is_nan() { f64::INFINITY } else { fdi };
        self.fdi.fold(fdi, || format!("job {j}: frac {frac_flow} vs int {int_flow}"));
        self.rep_frac += frac_flow;
        self.rep_int += int_flow;

        let tol = self.config.rel_tol;
        let time_tol = self.config.time_tol * (1.0 + self.horizon());
        if !(self.nds.value.max(0.0) <= time_tol && self.nds.value.is_finite() || self.nds.value == f64::NEG_INFINITY)
        {
            return Some(Trip {
                check: "no-double-service",
                residual: self.nds.value.max(0.0),
                detail: self.nds.detail.clone(),
            });
        }
        if !(sel.is_finite() && sel <= tol) {
            return Some(Trip {
                check: "cross-machine-volume",
                residual: sel,
                detail: format!("job {j}: machines delivered {cum:.9e} of {:.9e}", job.volume),
            });
        }
        if !(r.is_finite() && r <= tol) {
            return Some(Trip {
                check: "completion-consistency",
                residual: r,
                detail: format!("job {j}: derived {derived_c:.9} vs reported {completion:.9}"),
            });
        }
        None
    }

    /// Close the run and emit the final report — [`crate::MultiAudit`]'s
    /// checks, in its order, with its tolerances.
    #[must_use]
    pub fn finalize(mut self, objective: &Objective) -> AuditReport {
        let mut report = AuditReport::default();
        let mut clock = Stopwatch::new();
        let tol = self.config.rel_tol;
        let pl = self.law();
        let time_tol = self.config.time_tol * (1.0 + self.horizon());

        let leftover: Vec<JobId> = self.active.keys().copied().collect();
        for id in leftover {
            let _ = self.on_complete(id, f64::NAN, f64::NAN, f64::NAN);
            self.completed -= 1;
        }
        for m in 0..self.machines.len() {
            if let Some(&(idx, j, _)) = self.machines[m].pending.first() {
                self.machines[m].rel.value = f64::INFINITY;
                self.machines[m].rel.detail =
                    format!("segment {idx} serves unknown job {j}");
            }
        }

        // --- power-law-consistent (batch loop, verbatim).
        let mut worst = 0.0f64;
        let mut detail = String::from("all machines share one power law");
        for (m, law) in self.laws.iter().enumerate() {
            let d = (law.alpha() - pl.alpha()).abs();
            if !(d <= worst) {
                worst = if d.is_nan() { f64::INFINITY } else { d };
                detail = format!(
                    "machine {m}: α = {} vs machine 0: α = {}",
                    law.alpha(),
                    pl.alpha()
                );
            }
        }
        report.record_timed("power-law-consistent", worst, tol, detail, clock.lap());

        // --- per-machine folds, machine-order worst-of (batch `worst_of`).
        let mut worst = 0.0f64;
        let mut detail = String::from("all machine timelines ordered");
        for (m, ms) in self.machines.iter().enumerate() {
            if ms.wf.value > worst {
                worst = ms.wf.value;
                detail = format!("machine {m}: {}", ms.wf.detail);
            }
        }
        report.record_timed("segments-wellformed", worst, time_tol, detail, clock.lap());

        let mut worst = 0.0f64;
        let mut detail = String::from("no early service");
        for (m, ms) in self.machines.iter().enumerate() {
            if ms.rel.value > worst {
                worst = ms.rel.value;
                detail = format!("machine {m}: {}", ms.rel.detail);
            }
        }
        report.record_timed("release-before-service", worst, time_tol, detail, clock.lap());

        let res_final = self.resolution();
        report.record_timed(
            "no-double-service",
            self.nds.value.max(0.0),
            time_tol,
            self.nds.detail,
            clock.lap(),
        );

        let vol = self.vol_a / (self.vol_b + res_final);
        report.record_timed("cross-machine-volume", vol, tol, self.vol_detail, clock.lap());
        report.record_timed(
            "completion-consistency",
            self.comp.value,
            tol,
            self.comp.detail,
            clock.lap(),
        );

        let energy: f64 = self.machines.iter().map(|m| m.energy).sum();
        report.record_timed(
            "energy-recomputed",
            residual(energy, objective.energy),
            tol,
            format!("re-derived {energy:.9e} vs reported {:.9e}", objective.energy),
            clock.lap(),
        );
        report.record_timed(
            "frac-flow-recomputed",
            residual(self.frac_derived, objective.frac_flow),
            tol,
            format!(
                "re-derived {:.9e} vs reported {:.9e}",
                self.frac_derived, objective.frac_flow
            ),
            clock.lap(),
        );
        report.record_timed(
            "int-flow-recomputed",
            residual(self.int_derived, objective.int_flow),
            tol,
            format!("derived {:.9e} vs reported {:.9e}", self.int_derived, objective.int_flow),
            clock.lap(),
        );

        let mut worst = 0.0f64;
        let mut detail = String::from("all components finite");
        for (what, v) in [
            ("energy", objective.energy),
            ("frac_flow", objective.frac_flow),
            ("int_flow", objective.int_flow),
        ] {
            if !(v.is_finite() && v >= 0.0) {
                worst = f64::INFINITY;
                detail = format!("{what} = {v}");
            }
        }
        report.record_timed("objective-finite", worst, tol, detail, clock.lap());

        if self.completed != self.released {
            self.car.value = f64::INFINITY;
            self.car.detail =
                format!("{} completions for {} jobs", self.completed, self.released);
        }
        report.record_timed(
            "completion-after-release",
            self.car.value.max(0.0),
            tol,
            self.car.detail,
            clock.lap(),
        );
        report.record_timed(
            "frac-dominated-by-int",
            self.fdi.value,
            tol,
            self.fdi.detail,
            clock.lap(),
        );
        let v = residual(self.rep_frac, objective.frac_flow)
            .max(residual(self.rep_int, objective.int_flow));
        let v = if v.is_nan() { f64::INFINITY } else { v };
        report.record_timed(
            "reported-sums-consistent",
            v,
            tol,
            format!("Σfrac {:.9e} / Σint {:.9e}", self.rep_frac, self.rep_int),
            clock.lap(),
        );
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MultiAudit, ScheduleAudit};
    use ncss_sim::{evaluate, Instance, Schedule, SpeedLaw};

    fn pl(alpha: f64) -> PowerLaw {
        PowerLaw::new(alpha).unwrap()
    }

    /// Feed a finished batch run (schedule order, then completions in job
    /// order) through a fresh incremental auditor.
    fn incremental_report(
        law: PowerLaw,
        jobs: &[Job],
        segments: &[Segment],
        per_job: &ncss_sim::PerJob,
        objective: &Objective,
    ) -> AuditReport {
        let mut audit = IncrementalAudit::new(law, AuditConfig::default());
        for (id, job) in jobs.iter().enumerate() {
            audit.on_release(id, *job);
        }
        for seg in segments {
            let _ = audit.on_segment(*seg);
        }
        for j in 0..jobs.len() {
            let _ = audit.on_complete(
                j,
                per_job.completion.get(j).copied().unwrap_or(f64::NAN),
                per_job.frac_flow.get(j).copied().unwrap_or(f64::NAN),
                per_job.int_flow.get(j).copied().unwrap_or(f64::NAN),
            );
        }
        audit.finalize(objective)
    }

    fn constant_run() -> (Instance, Schedule, ncss_sim::Evaluated) {
        let inst =
            Instance::new(vec![Job::new(0.0, 2.0, 3.0), Job::new(0.5, 1.0, 1.0)]).unwrap();
        let law = pl(2.0);
        let segs = vec![
            Segment::new(0.0, 2.0, Some(0), SpeedLaw::Constant { speed: 1.0 }),
            Segment::new(2.0, 3.0, Some(1), SpeedLaw::Constant { speed: 1.0 }),
        ];
        let sched = Schedule::new(law, segs).unwrap();
        let ev = evaluate(&sched, &inst).unwrap();
        (inst, sched, ev)
    }

    #[test]
    fn honest_run_matches_batch_bitwise() {
        let (inst, sched, ev) = constant_run();
        let batch = ScheduleAudit::default().audit(&inst, &sched, &ev);
        let inc = incremental_report(
            sched.power_law(),
            inst.jobs(),
            sched.segments(),
            &ev.per_job,
            &ev.objective,
        );
        assert!(batch.passed(), "{batch}");
        assert!(inc.passed(), "{inc}");
        assert_eq!(batch.checks.len(), inc.checks.len());
        for (b, i) in batch.checks.iter().zip(&inc.checks) {
            assert_eq!(b.name, i.name);
            assert_eq!(b.passed, i.passed, "{}: {b:?} vs {i:?}", b.name);
            assert_eq!(
                b.residual.to_bits(),
                i.residual.to_bits(),
                "{}: batch {:e} vs incremental {:e}",
                b.name,
                b.residual,
                i.residual
            );
        }
    }

    #[test]
    fn tampered_energy_trips_same_check_as_batch() {
        let (inst, sched, mut ev) = constant_run();
        ev.objective.energy *= 1.5;
        let batch = ScheduleAudit::default().audit(&inst, &sched, &ev);
        let inc = incremental_report(
            sched.power_law(),
            inst.jobs(),
            sched.segments(),
            &ev.per_job,
            &ev.objective,
        );
        assert!(!batch.passed());
        assert!(!inc.passed());
        assert!(inc.failures().iter().any(|c| c.name == "energy-recomputed"), "{inc}");
    }

    #[test]
    fn eager_verdict_fires_at_the_offending_completion() {
        let (inst, _sched, ev) = constant_run();
        let law = pl(2.0);
        let mut audit = IncrementalAudit::new(law, AuditConfig::default());
        for (id, job) in inst.jobs().iter().enumerate() {
            audit.on_release(id, *job);
        }
        // Job 0's serving segment never arrives: its completion must trip
        // volume-conservation immediately.
        let trip = audit
            .on_complete(0, ev.per_job.completion[0], ev.per_job.frac_flow[0], ev.per_job.int_flow[0])
            .expect("lost volume must trip eagerly");
        assert_eq!(trip.check, "volume-conservation");
        assert!(trip.residual > 1e-3, "{trip:?}");
    }

    #[test]
    fn snapshot_round_trip_is_bitwise() {
        let (inst, sched, ev) = constant_run();
        let mut audit = IncrementalAudit::new(sched.power_law(), AuditConfig::default());
        for (id, job) in inst.jobs().iter().enumerate() {
            audit.on_release(id, *job);
        }
        let _ = audit.on_segment(sched.segments()[0]);
        let snap = audit.snapshot();
        let restored = IncrementalAudit::from_snapshot(snap.clone()).unwrap();
        assert_eq!(restored.snapshot(), snap);

        // Continue both; final reports must be bitwise identical.
        let mut a = audit;
        let mut b = restored;
        for side in [&mut a, &mut b] {
            let _ = side.on_segment(sched.segments()[1]);
            for j in 0..inst.len() {
                let _ = side.on_complete(
                    j,
                    ev.per_job.completion[j],
                    ev.per_job.frac_flow[j],
                    ev.per_job.int_flow[j],
                );
            }
        }
        let ra = a.finalize(&ev.objective);
        let rb = b.finalize(&ev.objective);
        for (x, y) in ra.checks.iter().zip(&rb.checks) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.passed, y.passed);
            assert_eq!(x.residual.to_bits(), y.residual.to_bits());
            assert_eq!(x.detail, y.detail);
        }
    }

    #[test]
    fn multi_duplicated_timeline_trips_like_batch() {
        let inst =
            Instance::new(vec![Job::new(0.0, 2.0, 1.0), Job::new(0.0, 1.0, 1.0)]).unwrap();
        let law = pl(2.0);
        let m0 = vec![Segment::new(0.0, 2.0, Some(0), SpeedLaw::Constant { speed: 1.0 })];
        let m1 = vec![Segment::new(0.0, 1.0, Some(1), SpeedLaw::Constant { speed: 1.0 })];
        let per_job = ncss_sim::PerJob {
            completion: vec![2.0, 1.0],
            frac_flow: vec![2.0, 0.5],
            int_flow: vec![4.0, 1.0],
        };
        let objective = Objective { energy: 3.0, frac_flow: 2.5, int_flow: 5.0 };

        // Honest fleet passes.
        let mut audit = IncrementalMultiAudit::new(vec![law, law], AuditConfig::default());
        for (id, job) in inst.jobs().iter().enumerate() {
            audit.on_release(id, *job);
        }
        for s in &m0 {
            let _ = audit.on_segment(0, *s);
        }
        for s in &m1 {
            let _ = audit.on_segment(1, *s);
        }
        for j in 0..2 {
            assert!(audit
                .on_complete(j, per_job.completion[j], per_job.frac_flow[j], per_job.int_flow[j])
                .is_none());
        }
        let honest = audit.finalize(&objective);
        assert!(honest.passed(), "{honest}");

        // Machine 1 duplicating machine 0's timeline trips the same named
        // checks as the batch cross-machine auditor.
        let mut audit = IncrementalMultiAudit::new(vec![law, law], AuditConfig::default());
        for (id, job) in inst.jobs().iter().enumerate() {
            audit.on_release(id, *job);
        }
        for s in &m0 {
            let _ = audit.on_segment(0, *s);
            let _ = audit.on_segment(1, *s);
        }
        let mut tripped = None;
        for j in 0..2 {
            if let Some(t) = audit.on_complete(
                j,
                per_job.completion[j],
                per_job.frac_flow[j],
                per_job.int_flow[j],
            ) {
                tripped.get_or_insert(t);
            }
        }
        let inc = audit.finalize(&objective);
        let schedules = vec![
            Schedule::new(law, m0.clone()).unwrap(),
            Schedule::new(law, m0.clone()).unwrap(),
        ];
        let ev = ncss_sim::Evaluated { objective, per_job };
        let batch = MultiAudit::default().audit(&inst, &schedules, &ev);
        assert!(!batch.passed());
        assert!(!inc.passed());
        let batch_names: Vec<_> = batch.failures().iter().map(|c| c.name).collect();
        let inc_names: Vec<_> = inc.failures().iter().map(|c| c.name).collect();
        assert_eq!(batch_names, inc_names, "batch {batch} vs incremental {inc}");
        assert!(tripped.is_some(), "duplicated service must trip eagerly");
        let names: Vec<_> = inc.checks.iter().map(|c| c.name).collect();
        let batch_all: Vec<_> = batch.checks.iter().map(|c| c.name).collect();
        assert_eq!(names, batch_all);
    }
}
