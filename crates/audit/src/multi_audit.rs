//! Cross-machine auditing for parallel-machine runs.
//!
//! A multi-machine run (`C-PAR`, `NC-PAR`, immediate dispatch, the
//! assignment runners) reports one [`Evaluated`] for the whole fleet but
//! executes on `m` independent timelines — one [`Schedule`] per machine.
//! The outcome-level audit cannot see cross-machine violations: a job
//! double-served on two machines in overlapping wall-clock time still sums
//! to plausible objective numbers. [`MultiAudit`] closes that gap by
//! re-deriving everything from the per-machine speed curves:
//!
//! * every machine's timeline satisfies the single-machine segment
//!   invariants (wellformed, release-before-service) — the same helpers
//!   the single-machine pass uses;
//! * **no-double-service**: no job is served on two different machines in
//!   overlapping time (the residual is the worst overlap duration);
//! * **cross-machine-volume**: per-job re-derived volume summed over all
//!   machines equals the job size;
//! * total energy, fractional and integral flow re-derived from the
//!   merged per-job timelines match the reported outcome;
//! * the reported numbers are internally consistent (the shared outcome
//!   checks).
//!
//! Machines legitimately overlap each other in wall-clock time, so the
//! slice of schedules can *not* be concatenated into a single
//! [`Schedule`] — the merge happens per job, where serial service is an
//! invariant rather than an accident.

use crate::closed_form;
use crate::report::{AuditReport, Stopwatch};
use crate::schedule_audit::{
    derive_per_job, frac_flow_rederived, measurement_resolution, release_residual, residual,
    sampled, wellformed_residual, AuditConfig, ScheduleAudit,
};
use ncss_sim::{Evaluated, Instance, PowerLaw, Schedule, Segment};

use crate::quad::integrate;

/// Independent invariant checker for parallel-machine runs.
///
/// Construct with [`MultiAudit::new`] for custom tolerances; the
/// [`AuditConfig`] semantics are identical to [`ScheduleAudit`]'s.
#[derive(Debug, Clone, Copy, Default)]
pub struct MultiAudit {
    config: AuditConfig,
}

impl MultiAudit {
    /// Auditor with explicit tolerances.
    #[must_use]
    pub fn new(config: AuditConfig) -> Self {
        Self { config }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> AuditConfig {
        self.config
    }

    /// Audit a parallel-machine run: `schedules[m]` is machine `m`'s
    /// timeline (empty schedules for idle machines are fine), `reported`
    /// the fleet-wide evaluation the run claims.
    ///
    /// Per-machine scans, the `O(k²)` per-job no-double-service pass, and
    /// every quadrature re-derivation fan out over [`AuditConfig::pool`];
    /// each check records its wall-time. As in the single-machine pass,
    /// shared derivation cost rides with the first consuming check
    /// (`cross-machine-volume` carries the per-job derivation).
    #[must_use]
    pub fn audit(
        &self,
        instance: &Instance,
        schedules: &[Schedule],
        reported: &Evaluated,
    ) -> AuditReport {
        let mut report = AuditReport::default();
        let mut clock = Stopwatch::new();
        let pool = self.config.pool();
        let n = instance.len();
        // An all-idle fleet has no law to read; any law integrates the
        // empty segment set to zero, so the fallback is inert.
        let pl = schedules.first().map_or_else(PowerLaw::cube, Schedule::power_law);
        let horizon = schedules.iter().map(|s| s.end_time().abs()).fold(0.0f64, f64::max);
        let time_tol = self.config.time_tol * (1.0 + horizon);

        // Fold order-preserved per-machine `(residual, detail)` rows into
        // the single worst row, serially, so the verdict is identical for
        // any worker count (strict `>` keeps the first/lowest machine on
        // ties, matching the serial scan).
        let worst_of = |rows: Vec<(f64, String)>, ok: &str| -> (f64, String) {
            let mut worst = 0.0f64;
            let mut detail = String::from(ok);
            for (m, (w, d)) in rows.into_iter().enumerate() {
                if w > worst {
                    worst = w;
                    detail = format!("machine {m}: {d}");
                }
            }
            (worst, detail)
        };

        // --- power-law-consistent: one fleet, one energy model.
        let mut worst = 0.0f64;
        let mut detail = String::from("all machines share one power law");
        for (m, s) in schedules.iter().enumerate() {
            let d = (s.power_law().alpha() - pl.alpha()).abs();
            if !(d <= worst) {
                worst = if d.is_nan() { f64::INFINITY } else { d };
                detail = format!(
                    "machine {m}: α = {} vs machine 0: α = {}",
                    s.power_law().alpha(),
                    pl.alpha()
                );
            }
        }
        report.record_timed("power-law-consistent", worst, self.config.rel_tol, detail, clock.lap());

        // --- per-machine segment invariants, via the single-machine
        // helpers, one machine per pool cell.
        let rows = pool.map(schedules, |s| wellformed_residual(s.segments()));
        let (worst, detail) = worst_of(rows, "all machine timelines ordered");
        report.record_timed("segments-wellformed", worst, time_tol, detail, clock.lap());

        let rows = pool.map(schedules, |s| release_residual(instance, s.segments()));
        let (worst, detail) = worst_of(rows, "no early service");
        report.record_timed("release-before-service", worst, time_tol, detail, clock.lap());

        // --- gather each job's serving segments across machines, in
        // increasing start order.
        let mut by_job: Vec<Vec<(usize, Segment)>> = vec![Vec::new(); n];
        for (m, sched) in schedules.iter().enumerate() {
            for s in sched.segments() {
                if let Some(j) = s.job {
                    if j < n {
                        by_job[j].push((m, *s));
                    }
                }
            }
        }
        for segs in &mut by_job {
            segs.sort_by(|a, b| a.1.start.total_cmp(&b.1.start));
        }

        // --- no-double-service: a job's serving intervals on *different*
        // machines must not overlap in wall-clock time. (Same-machine
        // overlap is already excluded by segments-wellformed.) The
        // residual is the worst overlap duration, so a clean run audits
        // at exactly zero. The O(k²) interval comparison is per job, so
        // jobs fan out over the pool and the worst rows fold serially.
        let per_job_overlap: Vec<(f64, String)> = pool.map(&by_job, |segs| {
            let mut worst = f64::NEG_INFINITY;
            let mut detail = String::new();
            for (i, (m_a, a)) in segs.iter().enumerate() {
                for (m_b, b) in &segs[i + 1..] {
                    if m_a == m_b {
                        continue;
                    }
                    let lo = a.start.max(b.start);
                    let hi = a.end.min(b.end);
                    let overlap = hi - lo;
                    if overlap > worst {
                        worst = overlap;
                        detail = format!("machines {m_a}/{m_b} both serve [{lo:.6}, {hi:.6}]");
                    }
                }
            }
            (worst, detail)
        });
        let mut worst = 0.0f64;
        let mut detail = String::from("no cross-machine overlap");
        for (j, (w, d)) in per_job_overlap.into_iter().enumerate() {
            if w > worst {
                worst = w;
                detail = format!("job {j}: {d}");
            }
        }
        report.record_timed("no-double-service", worst.max(0.0), time_tol, detail, clock.lap());

        // --- cross-machine volume conservation and derived completions,
        // over the merged per-job timelines.
        let merged: Vec<Vec<Segment>> =
            by_job.iter().map(|segs| segs.iter().map(|(_, s)| *s).collect()).collect();
        let resolution =
            measurement_resolution(pl, schedules.iter().map(Schedule::segments), horizon);
        let (delivered, completions) = derive_per_job(
            pool,
            pl,
            instance,
            &merged,
            &reported.per_job.completion,
            self.config.rel_tol,
            resolution,
            self.config.cross_check_stride,
        );

        let mut worst = 0.0f64;
        let mut detail = String::from("all volumes conserved across machines");
        for (j, &cum) in delivered.iter().enumerate() {
            let volume = instance.job(j).volume;
            let r = (cum - volume).abs() / (1.0 + volume + resolution);
            if !(r <= worst) {
                worst = r;
                detail = format!("job {j}: machines delivered {cum:.9e} of {volume:.9e}");
            }
        }
        report.record_timed("cross-machine-volume", worst, self.config.rel_tol, detail, clock.lap());

        let mut worst = 0.0f64;
        let mut detail = String::from("completions agree");
        for j in 0..n {
            let reported_c = reported.per_job.completion.get(j).copied().unwrap_or(f64::NAN);
            let r = residual(completions[j], reported_c);
            let r = if r.is_nan() { f64::INFINITY } else { r };
            if r > worst {
                worst = r;
                detail =
                    format!("job {j}: derived {:.9} vs reported {reported_c:.9}", completions[j]);
            }
        }
        report.record_timed("completion-consistency", worst, self.config.rel_tol, detail, clock.lap());

        // --- total energy: closed-form antiderivative per segment across
        // the whole fleet (every stride-th segment re-measured by
        // quadrature — the cross-check tier), fanned over the pool and
        // summed serially in timeline order (machine 0's segments first,
        // as in the serial pass).
        let stride = self.config.cross_check_stride;
        let fleet_segments: Vec<Segment> =
            schedules.iter().flat_map(Schedule::segments).copied().collect();
        let seg_idx: Vec<usize> = (0..fleet_segments.len()).collect();
        let energy: f64 = pool
            .map(&seg_idx, |&i| {
                let s = &fleet_segments[i];
                if sampled(stride, i) {
                    integrate(|t| s.power_at(pl, t), s.start, s.end)
                } else {
                    closed_form::energy(pl, s)
                }
            })
            .iter()
            .sum();
        report.record_timed(
            "energy-recomputed",
            residual(energy, reported.objective.energy),
            self.config.rel_tol,
            format!("re-derived {energy:.9e} vs reported {:.9e}", reported.objective.energy),
            clock.lap(),
        );

        let frac = frac_flow_rederived(pool, pl, instance, &merged, &completions, stride);
        report.record_timed(
            "frac-flow-recomputed",
            residual(frac, reported.objective.frac_flow),
            self.config.rel_tol,
            format!("re-derived {frac:.9e} vs reported {:.9e}", reported.objective.frac_flow),
            clock.lap(),
        );

        let int: f64 = (0..n)
            .map(|j| {
                let job = instance.job(j);
                job.weight() * (completions[j] - job.release)
            })
            .sum();
        report.record_timed(
            "int-flow-recomputed",
            residual(int, reported.objective.int_flow),
            self.config.rel_tol,
            format!("derived {int:.9e} vs reported {:.9e}", reported.objective.int_flow),
            clock.lap(),
        );

        ScheduleAudit::new(self.config).outcome_checks(
            &mut report,
            instance,
            &reported.objective,
            &reported.per_job,
        );
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncss_sim::{Job, Objective, PerJob, PowerLaw, SpeedLaw};

    fn pl2() -> PowerLaw {
        PowerLaw::new(2.0).unwrap()
    }

    /// Two jobs released at 0, one machine each, unit speed.
    fn two_machine_run() -> (Instance, Vec<Schedule>, Evaluated) {
        let inst = Instance::new(vec![
            Job::new(0.0, 2.0, 1.0), // job 0 on machine 0: [0, 2]
            Job::new(0.0, 1.0, 1.0), // job 1 on machine 1: [0, 1]
        ])
        .unwrap();
        let m0 = Schedule::new(
            pl2(),
            vec![Segment::new(0.0, 2.0, Some(0), SpeedLaw::Constant { speed: 1.0 })],
        )
        .unwrap();
        let m1 = Schedule::new(
            pl2(),
            vec![Segment::new(0.0, 1.0, Some(1), SpeedLaw::Constant { speed: 1.0 })],
        )
        .unwrap();
        // At speed 1, F_j = ρ_j V_j²/2 per machine; E = Σ durations.
        let per_job = PerJob {
            completion: vec![2.0, 1.0],
            frac_flow: vec![2.0, 0.5],
            int_flow: vec![4.0, 1.0],
        };
        let ev = Evaluated {
            objective: Objective { energy: 3.0, frac_flow: 2.5, int_flow: 5.0 },
            per_job,
        };
        (inst, vec![m0, m1], ev)
    }

    #[test]
    fn clean_two_machine_run_passes_tightly() {
        let (inst, schedules, ev) = two_machine_run();
        let report = MultiAudit::default().audit(&inst, &schedules, &ev);
        assert!(report.passed(), "{report}");
        assert!(report.max_residual() < 1e-7, "{report}");
    }

    #[test]
    fn double_service_is_caught() {
        // Machine 1 also serves job 0 while machine 0 is serving it —
        // and the "reported" numbers are kept self-consistent so only the
        // cross-machine checks can notice.
        let (inst, mut schedules, ev) = two_machine_run();
        schedules[1] = Schedule::new(
            pl2(),
            vec![
                Segment::new(0.0, 1.0, Some(1), SpeedLaw::Constant { speed: 1.0 }),
                Segment::new(1.0, 2.0, Some(0), SpeedLaw::Constant { speed: 1.0 }),
            ],
        )
        .unwrap();
        let report = MultiAudit::default().audit(&inst, &schedules, &ev);
        assert!(!report.passed());
        let names: Vec<_> = report.failures().iter().map(|c| c.name).collect();
        assert!(names.contains(&"no-double-service"), "{report}");
        assert!(names.contains(&"cross-machine-volume"), "{report}");
        // The outcome-level checks alone would have let this through.
        let outcome =
            ScheduleAudit::default().audit_outcome(&inst, &ev.objective, &ev.per_job);
        assert!(outcome.passed(), "{outcome}");
    }

    #[test]
    fn lost_volume_across_machines_is_caught() {
        let (inst, mut schedules, ev) = two_machine_run();
        schedules[0] = Schedule::new(
            pl2(),
            vec![Segment::new(0.0, 1.0, Some(0), SpeedLaw::Constant { speed: 1.0 })],
        )
        .unwrap();
        let report = MultiAudit::default().audit(&inst, &schedules, &ev);
        assert!(!report.passed());
        assert!(report.failures().iter().any(|c| c.name == "cross-machine-volume"), "{report}");
    }

    #[test]
    fn tampered_total_energy_is_caught() {
        let (inst, schedules, mut ev) = two_machine_run();
        ev.objective.energy *= 1.5;
        let report = MultiAudit::default().audit(&inst, &schedules, &ev);
        assert!(!report.passed());
        assert!(report.failures().iter().any(|c| c.name == "energy-recomputed"));
    }

    #[test]
    fn mismatched_power_laws_are_caught() {
        let (inst, mut schedules, ev) = two_machine_run();
        schedules[1] = Schedule::new(
            PowerLaw::new(3.0).unwrap(),
            schedules[1].segments().to_vec(),
        )
        .unwrap();
        let report = MultiAudit::default().audit(&inst, &schedules, &ev);
        assert!(!report.passed());
        assert!(report.failures().iter().any(|c| c.name == "power-law-consistent"));
    }

    #[test]
    fn idle_machines_and_empty_fleet_are_fine() {
        // Empty fleet over an empty instance: trivially lawful.
        let inst = Instance::new(vec![]).unwrap();
        let ev = Evaluated {
            objective: Objective::default(),
            per_job: PerJob { completion: vec![], frac_flow: vec![], int_flow: vec![] },
        };
        let report = MultiAudit::default().audit(&inst, &[], &ev);
        assert!(report.passed(), "{report}");

        // Idle third machine alongside a working pair.
        let (inst, mut schedules, ev) = two_machine_run();
        schedules.push(Schedule::new(pl2(), vec![]).unwrap());
        let report = MultiAudit::default().audit(&inst, &schedules, &ev);
        assert!(report.passed(), "{report}");
    }

    #[test]
    fn single_machine_slice_matches_schedule_audit() {
        // MultiAudit over a one-schedule slice must agree with the
        // single-machine auditor on a lawful run.
        let inst = Instance::new(vec![Job::new(0.0, 1.0, 1.0)]).unwrap();
        let sched = Schedule::new(
            pl2(),
            vec![Segment::new(0.0, 1.0, Some(0), SpeedLaw::Constant { speed: 1.0 })],
        )
        .unwrap();
        let ev = ncss_sim::evaluate(&sched, &inst).unwrap();
        let single = ScheduleAudit::default().audit(&inst, &sched, &ev);
        let multi = MultiAudit::default().audit(&inst, std::slice::from_ref(&sched), &ev);
        assert!(single.passed(), "{single}");
        assert!(multi.passed(), "{multi}");
    }
}
