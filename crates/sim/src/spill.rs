//! Bounded spill ring for retired schedule segments.
//!
//! A streaming run produces one analytic [`Segment`] per event; keeping all
//! of them resident would defeat the O(active jobs) memory model. Instead
//! closed segments are *retired* into this ring, and the consumer (batch
//! collector, auditor, or nobody) drains it at its own cadence:
//!
//! * **batch wrappers** use an [unbounded](SpillRing::unbounded) ring and
//!   drain once at the end into a `ScheduleBuilder`;
//! * **streaming consumers** cap the ring and drain between events, so
//!   resident segments stay bounded by the cap;
//! * **soak runs** that only care about objectives drain-and-discard; if a
//!   consumer falls behind, the ring drops its *oldest* segments and counts
//!   them, which downstream audits must treat as a broken chain of custody
//!   (a schedule rebuilt from a ring with `dropped() > 0` is missing
//!   history, and the volume-conservation check will trip on it).
//!
//! # Examples
//!
//! ```
//! use ncss_sim::spill::SpillRing;
//! use ncss_sim::{Segment, SpeedLaw};
//!
//! let mut ring = SpillRing::with_capacity(2);
//! for i in 0..3 {
//!     let t = f64::from(i);
//!     ring.push(Segment::new(t, t + 1.0, Some(i as usize), SpeedLaw::Constant { speed: 1.0 }));
//! }
//! assert_eq!(ring.resident(), 2);
//! assert_eq!(ring.dropped(), 1); // oldest segment evicted
//! assert_eq!(ring.total_retired(), 3);
//! let drained: Vec<_> = ring.drain().collect();
//! assert_eq!(drained.len(), 2);
//! assert_eq!(ring.resident(), 0);
//! ```

use crate::error::{SimError, SimResult};
use crate::schedule::Segment;
use std::collections::VecDeque;

/// Drop-oldest ring buffer of retired [`Segment`]s with drop accounting.
#[derive(Debug, Clone)]
pub struct SpillRing {
    buf: VecDeque<Segment>,
    capacity: usize,
    dropped: u64,
    total: u64,
    peak: usize,
}

impl SpillRing {
    /// A ring holding at most `capacity` resident segments (≥ 1).
    ///
    /// Small bounded rings pre-allocate their full backing store up front
    /// so the steady-state `push`/`drain` cycle of a streaming run never
    /// touches the allocator (the unbounded batch ring still grows lazily).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        // VecDeque keeps one spare slot; +1 avoids a doubling at the cap.
        let buf = if capacity <= 1 << 20 {
            VecDeque::with_capacity(capacity + 1)
        } else {
            VecDeque::new()
        };
        Self { buf, capacity, dropped: 0, total: 0, peak: 0 }
    }

    /// A ring with no practical bound — what the batch wrappers use, where
    /// the whole schedule is collected at the end.
    #[must_use]
    pub fn unbounded() -> Self {
        Self::with_capacity(usize::MAX)
    }

    /// Retire a segment; evicts (and counts) the oldest when full.
    pub fn push(&mut self, seg: Segment) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(seg);
        self.total += 1;
        self.peak = self.peak.max(self.buf.len());
    }

    /// Drain all resident segments in retirement (chronological) order.
    pub fn drain(&mut self) -> impl Iterator<Item = Segment> + '_ {
        self.buf.drain(..)
    }

    /// Segments currently resident.
    #[must_use]
    pub fn resident(&self) -> usize {
        self.buf.len()
    }

    /// High-water mark of resident segments.
    #[must_use]
    pub fn peak_resident(&self) -> usize {
        self.peak
    }

    /// Segments evicted because the consumer fell behind the cap.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Segments ever retired through the ring.
    #[must_use]
    pub fn total_retired(&self) -> u64 {
        self.total
    }

    /// The configured resident cap.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Capture the ring — resident segments *and* accounting counters — as
    /// plain data for checkpointing. Restoring via [`SpillRing::restore`]
    /// preserves drop accounting across a crash/resume boundary, so a
    /// resumed run's chain-of-custody counters match the uninterrupted run.
    #[must_use]
    pub fn snapshot(&self) -> SpillSnapshot {
        SpillSnapshot {
            segments: self.buf.iter().copied().collect(),
            capacity: self.capacity,
            dropped: self.dropped,
            total: self.total,
            peak: self.peak,
        }
    }

    /// Rebuild a ring from a snapshot, validating the counters first (a
    /// tampered checkpoint must surface as an error, not a panic or a
    /// silently wrong ring).
    pub fn restore(snap: SpillSnapshot) -> SimResult<Self> {
        let bad = |reason| Err(SimError::InvalidInstance { reason });
        if snap.capacity == 0 {
            return bad("spill snapshot: zero capacity");
        }
        if snap.segments.len() > snap.capacity {
            return bad("spill snapshot: more resident segments than capacity");
        }
        if snap.peak < snap.segments.len() || snap.peak > snap.capacity {
            return bad("spill snapshot: peak outside [resident, capacity]");
        }
        if snap.total < snap.dropped + snap.segments.len() as u64 {
            return bad("spill snapshot: total below dropped + resident");
        }
        Ok(Self {
            buf: snap.segments.into(),
            capacity: snap.capacity,
            dropped: snap.dropped,
            total: snap.total,
            peak: snap.peak,
        })
    }
}

/// Plain-data image of a [`SpillRing`], produced by [`SpillRing::snapshot`]
/// and consumed by [`SpillRing::restore`].
#[derive(Debug, Clone, PartialEq)]
pub struct SpillSnapshot {
    /// Resident segments in retirement order.
    pub segments: Vec<Segment>,
    /// Configured resident cap (`usize::MAX` = unbounded).
    pub capacity: usize,
    /// Segments evicted so far.
    pub dropped: u64,
    /// Segments ever retired.
    pub total: u64,
    /// High-water mark of resident segments.
    pub peak: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::SpeedLaw;

    fn seg(i: usize) -> Segment {
        let t = i as f64;
        Segment::new(t, t + 1.0, Some(i), SpeedLaw::Constant { speed: 1.0 })
    }

    #[test]
    fn fifo_order_preserved() {
        let mut ring = SpillRing::with_capacity(8);
        for i in 0..5 {
            ring.push(seg(i));
        }
        let jobs: Vec<_> = ring.drain().map(|s| s.job).collect();
        assert_eq!(jobs, vec![Some(0), Some(1), Some(2), Some(3), Some(4)]);
        assert_eq!(ring.dropped(), 0);
        assert_eq!(ring.total_retired(), 5);
    }

    #[test]
    fn drops_oldest_when_full() {
        let mut ring = SpillRing::with_capacity(3);
        for i in 0..7 {
            ring.push(seg(i));
        }
        assert_eq!(ring.dropped(), 4);
        assert_eq!(ring.peak_resident(), 3);
        let jobs: Vec<_> = ring.drain().map(|s| s.job).collect();
        assert_eq!(jobs, vec![Some(4), Some(5), Some(6)], "newest survive");
    }

    #[test]
    fn snapshot_restore_round_trips_counters_and_segments() {
        let mut ring = SpillRing::with_capacity(3);
        for i in 0..5 {
            ring.push(seg(i));
        }
        let snap = ring.snapshot();
        let restored = SpillRing::restore(snap.clone()).unwrap();
        assert_eq!(restored.snapshot(), snap);
        assert_eq!(restored.dropped(), 2);
        assert_eq!(restored.total_retired(), 5);
        assert_eq!(restored.resident(), 3);

        let mut bad = snap.clone();
        bad.capacity = 1;
        assert!(SpillRing::restore(bad).is_err(), "resident beyond capacity");
        let mut bad = snap.clone();
        bad.total = 0;
        assert!(SpillRing::restore(bad).is_err(), "total below dropped+resident");
        let mut bad = snap;
        bad.peak = 0;
        assert!(SpillRing::restore(bad).is_err(), "peak below resident");
    }

    #[test]
    fn drain_resets_resident_but_not_counters() {
        let mut ring = SpillRing::with_capacity(4);
        for i in 0..4 {
            ring.push(seg(i));
        }
        assert_eq!(ring.drain().count(), 4);
        assert_eq!(ring.resident(), 0);
        assert_eq!(ring.total_retired(), 4);
        ring.push(seg(9));
        assert_eq!(ring.resident(), 1);
        assert_eq!(ring.total_retired(), 5);
    }
}
