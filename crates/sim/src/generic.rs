//! General (non-`s^α`) power functions and their evolution kernels.
//!
//! The paper notes that Lemmas 3 and 6 — energy equality and the
//! measure-preserving speed mapping between Algorithms C and NC — hold for
//! *every* monotone convex power function, while Lemma 4's exact flow-time
//! ratio needs the `s^α` form. This module makes that statement executable:
//! [`PolyPower`] models positive combinations `P(s) = Σ aᵢ s^{αᵢ}` with all
//! exponents `> 1` (so jobs still finish in finite time), and the kernels
//! below evaluate the same quantities as [`crate::kernel`] by quadrature.
//!
//! Everything is phrased as integrals in the weight variable: with
//! `s(W) = P⁻¹(W)`,
//!
//! ```text
//! time     = ∫ dW / (ρ·s(W))        energy = ∫ W dW / (ρ·s(W))
//! volume   = ΔW / ρ                 ∫vol dt = ∫ (w₀−W) dW / (ρ²·s(W))
//! ```
//!
//! The time integrand has an integrable singularity at `W = 0`
//! (`s(W) ~ W^{1/α}`); the substitution `W = x^p` with a sufficiently large
//! `p` removes it before Simpson integration.

use crate::error::{SimError, SimResult};
use crate::power::PowerLaw;

/// A power function `P(s) = Σ aᵢ · s^{αᵢ}` with `aᵢ > 0`, `αᵢ > 1`.
#[derive(Debug, Clone, PartialEq)]
pub struct PolyPower {
    terms: Vec<(f64, f64)>, // (coefficient, exponent)
}

impl PolyPower {
    /// Build from `(coefficient, exponent)` terms; every coefficient must
    /// be positive and every exponent `> 1`.
    pub fn new(terms: Vec<(f64, f64)>) -> SimResult<Self> {
        if terms.is_empty() {
            return Err(SimError::InvalidInstance { reason: "power function needs at least one term" });
        }
        for &(a, e) in &terms {
            if !(a.is_finite() && a > 0.0 && e.is_finite() && e > 1.0) {
                return Err(SimError::InvalidAlpha { alpha: e });
            }
        }
        Ok(Self { terms })
    }

    /// The pure power law `a · s^α` as a [`PolyPower`].
    pub fn from_power_law(law: PowerLaw) -> Self {
        Self { terms: vec![(1.0, law.alpha())] }
    }

    /// The terms `(coefficient, exponent)`.
    #[must_use]
    pub fn terms(&self) -> &[(f64, f64)] {
        &self.terms
    }

    /// Smallest exponent (governs the behaviour near `s = 0`).
    #[must_use]
    pub fn min_exponent(&self) -> f64 {
        self.terms.iter().map(|&(_, e)| e).fold(f64::INFINITY, f64::min)
    }

    /// `P(s)`.
    #[must_use]
    pub fn power(&self, s: f64) -> f64 {
        debug_assert!(s >= 0.0);
        self.terms.iter().map(|&(a, e)| a * s.powf(e)).sum()
    }

    /// `P'(s)`.
    #[must_use]
    pub fn power_deriv(&self, s: f64) -> f64 {
        self.terms.iter().map(|&(a, e)| a * e * s.powf(e - 1.0)).sum()
    }

    /// `P⁻¹(p)`: the speed at power `p` (monotone; safeguarded Newton —
    /// this sits in the inner loop of every quadrature, so it must be
    /// cheap).
    #[must_use]
    pub fn speed_for_power(&self, p: f64) -> f64 {
        if p <= 0.0 {
            return 0.0;
        }
        // Initial guess from the dominant term; P is convex and
        // increasing, so Newton from any positive point converges, with a
        // multiplicative clamp as a safety net.
        let &(a, e) = self
            .terms
            .iter()
            .max_by(|x, y| x.0.partial_cmp(&y.0).expect("finite"))
            .expect("non-empty");
        let mut s = (p / a).powf(1.0 / e).max(1e-300);
        for _ in 0..64 {
            let f = self.power(s) - p;
            if f.abs() <= 1e-13 * p {
                return s;
            }
            let d = self.power_deriv(s);
            let next = s - f / d;
            s = if next > 0.0 { next } else { s * 0.5 };
        }
        s
    }
}

/// Number of Simpson panels used by the kernels (even).
const PANELS: usize = 800;

/// `∫_0^{b} f(W) dW` with an integrable singularity at `W = 0`, via the
/// substitution `W = x^p` (then Simpson on the regularised integrand).
fn integrate_from_zero(f: &impl Fn(f64) -> f64, b: f64, p: f64) -> f64 {
    if b <= 0.0 {
        return 0.0;
    }
    let top = b.powf(1.0 / p);
    let g = |x: f64| {
        if x <= 0.0 {
            0.0
        } else {
            f(x.powf(p)) * p * x.powf(p - 1.0)
        }
    };
    simpson(g, 0.0, top)
}

fn simpson(f: impl Fn(f64) -> f64, a: f64, b: f64) -> f64 {
    let h = (b - a) / PANELS as f64;
    let mut acc = f(a) + f(b);
    for i in 1..PANELS {
        let x = a + h * i as f64;
        acc += f(x) * if i % 2 == 1 { 4.0 } else { 2.0 };
    }
    acc * h / 3.0
}

/// Smooth (non-singular) integral over `[a, b]` in the weight variable.
fn integrate(f: &impl Fn(f64) -> f64, a: f64, b: f64) -> f64 {
    if b <= a {
        return 0.0;
    }
    simpson(f, a, b)
}

/// Regularising exponent for the `1/s(W)` singularity: needs
/// `p (1 − 1/α_min) > 1` with margin.
fn reg_exponent(pf: &PolyPower) -> f64 {
    let beta_min = 1.0 - 1.0 / pf.min_exponent();
    (2.0 / beta_min).max(3.0)
}

/// Decaying kernel under a general power function: total remaining weight
/// `W` with `dW/dt = −ρ·P⁻¹(W)` from `w0`.
#[derive(Debug, Clone)]
pub struct GenericDecay<'a> {
    /// The power function.
    pub pf: &'a PolyPower,
    /// Initial weight.
    pub w0: f64,
    /// Density of the processed job.
    pub rho: f64,
}

impl GenericDecay<'_> {
    /// Time for the weight to drop from `w0` to `w_target`.
    #[must_use]
    pub fn time_to_weight(&self, w_target: f64) -> f64 {
        let f = |w: f64| 1.0 / (self.rho * self.pf.speed_for_power(w));
        let p = reg_exponent(self.pf);
        integrate_from_zero(&f, self.w0, p) - integrate_from_zero(&f, w_target, p)
    }

    /// Weight after `tau` (inverse of [`Self::time_to_weight`], monotone).
    #[must_use]
    pub fn weight_at(&self, tau: f64) -> f64 {
        if tau <= 0.0 {
            return self.w0;
        }
        let total = self.time_to_weight(0.0);
        if tau >= total {
            return 0.0;
        }
        // The bracket [0, w0] is valid by the monotonicity of
        // `time_to_weight` and the range checks above, so the root finder
        // can only fail if the quadrature itself produced NaN; surface that
        // as NaN and let the run-level finiteness guards reject it.
        crate::numeric::bisect(|w| self.time_to_weight(w) - tau, 0.0, self.w0, 1e-12 * (1.0 + self.w0))
            .unwrap_or(f64::NAN)
    }

    /// Energy released while the weight drops from `w0` to `w_target`
    /// (power = weight, so `∫P dt = ∫W dt`).
    #[must_use]
    pub fn energy_to_weight(&self, w_target: f64) -> f64 {
        // Integrand W/(rho s(W)) is bounded near 0; no substitution needed,
        // but reuse it for uniform accuracy near the endpoint.
        let f = |w: f64| w / (self.rho * self.pf.speed_for_power(w));
        let p = reg_exponent(self.pf);
        integrate_from_zero(&f, self.w0, p) - integrate_from_zero(&f, w_target, p)
    }

    /// Time-integral of the processed volume while the weight drops to
    /// `w_target`: `∫ vol dt = ∫ (w0 − W) dW / (ρ² s(W))`.
    #[must_use]
    pub fn volume_integral_to_weight(&self, w_target: f64) -> f64 {
        let f = |w: f64| (self.w0 - w) / (self.rho * self.rho * self.pf.speed_for_power(w));
        let p = reg_exponent(self.pf);
        integrate_from_zero(&f, self.w0, p) - integrate_from_zero(&f, w_target, p)
    }

    /// Time spent at speed ≥ `x` before the weight reaches `w_target`.
    #[must_use]
    pub fn time_with_speed_at_least(&self, x: f64, w_target: f64) -> f64 {
        let w_for_x = self.pf.power(x);
        if w_for_x >= self.w0 {
            return 0.0;
        }
        self.time_to_weight(w_for_x.max(w_target)).max(0.0)
    }
}

/// Growing kernel under a general power function: power level `u` with
/// `du/dt = +ρ·P⁻¹(u)` from `u0`.
#[derive(Debug, Clone)]
pub struct GenericGrowth<'a> {
    /// The power function.
    pub pf: &'a PolyPower,
    /// Initial power level (≥ 0).
    pub u0: f64,
    /// Density of the processed job.
    pub rho: f64,
}

impl GenericGrowth<'_> {
    /// Time for the level to rise from `u0` to `u_target`.
    #[must_use]
    pub fn time_to_u(&self, u_target: f64) -> f64 {
        let f = |u: f64| 1.0 / (self.rho * self.pf.speed_for_power(u));
        let p = reg_exponent(self.pf);
        integrate_from_zero(&f, u_target, p) - integrate_from_zero(&f, self.u0, p)
    }

    /// Energy consumed while the level rises to `u_target`.
    #[must_use]
    pub fn energy_to_u(&self, u_target: f64) -> f64 {
        // The integrand u/s(u) → 0 as u → 0, but its derivative is
        // singular; use the same regularising substitution from zero.
        let f = |u: f64| u / (self.rho * self.pf.speed_for_power(u));
        let p = reg_exponent(self.pf);
        integrate_from_zero(&f, u_target, p) - integrate_from_zero(&f, self.u0, p)
    }

    /// Time-integral of the processed volume while rising to `u_target`:
    /// `∫ vol dt = ∫ (u − u0) du / (ρ² s(u))`.
    #[must_use]
    pub fn volume_integral_to_u(&self, u_target: f64) -> f64 {
        let f = |u: f64| (u - self.u0) / (self.rho * self.rho * self.pf.speed_for_power(u));
        let p = reg_exponent(self.pf);
        if self.u0 == 0.0 {
            integrate_from_zero(&f, u_target, p)
        } else {
            integrate(&f, self.u0, u_target)
        }
    }

    /// Time spent at speed ≥ `x` before the level reaches `u_target`.
    #[must_use]
    pub fn time_with_speed_at_least(&self, x: f64, u_target: f64) -> f64 {
        let u_for_x = self.pf.power(x);
        if u_for_x >= u_target {
            return 0.0;
        }
        self.time_to_u(u_target) - self.time_to_u(u_for_x.max(self.u0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{DecayKernel, GrowthKernel};
    use crate::numeric::approx_eq;

    fn cube() -> PolyPower {
        PolyPower::from_power_law(PowerLaw::cube())
    }

    fn mixed() -> PolyPower {
        PolyPower::new(vec![(1.0, 3.0), (0.5, 2.0)]).unwrap()
    }

    #[test]
    fn validation() {
        assert!(PolyPower::new(vec![]).is_err());
        assert!(PolyPower::new(vec![(1.0, 1.0)]).is_err());
        assert!(PolyPower::new(vec![(-1.0, 2.0)]).is_err());
        assert!(PolyPower::new(vec![(1.0, 2.0), (0.1, 1.5)]).is_ok());
    }

    #[test]
    fn inverse_roundtrip() {
        let pf = mixed();
        for &s in &[0.01, 0.5, 1.0, 7.0] {
            let p = pf.power(s);
            assert!(approx_eq(pf.speed_for_power(p), s, 1e-9), "s = {s}");
        }
        assert_eq!(pf.speed_for_power(0.0), 0.0);
    }

    #[test]
    fn deriv_matches_finite_difference() {
        let pf = mixed();
        let s = 1.3;
        let h = 1e-6;
        let fd = (pf.power(s + h) - pf.power(s - h)) / (2.0 * h);
        assert!(approx_eq(pf.power_deriv(s), fd, 1e-7));
    }

    #[test]
    fn decay_matches_closed_form_for_pure_power_law() {
        // Single-term PolyPower must agree with the exact kernel.
        let law = PowerLaw::cube();
        let pf = cube();
        let (w0, rho) = (5.0, 1.3);
        let exact = DecayKernel { law, w0, rho };
        let gen = GenericDecay { pf: &pf, w0, rho };
        for &wt in &[4.0, 2.0, 0.5, 0.0] {
            assert!(
                approx_eq(gen.time_to_weight(wt), exact.time_to_weight(wt), 1e-6),
                "time to {wt}: {} vs {}",
                gen.time_to_weight(wt),
                exact.time_to_weight(wt)
            );
            let tau = exact.time_to_weight(wt);
            assert!(approx_eq(gen.energy_to_weight(wt), exact.energy(tau), 1e-6));
            assert!(approx_eq(gen.volume_integral_to_weight(wt), exact.volume_integral(tau), 1e-6));
        }
        // Inverse map.
        let tau = exact.time_to_weight(1.7);
        assert!(approx_eq(gen.weight_at(tau), 1.7, 1e-6));
    }

    #[test]
    fn growth_matches_closed_form_for_pure_power_law() {
        let law = PowerLaw::new(2.0).unwrap();
        let pf = PolyPower::from_power_law(law);
        let (u0, rho) = (0.0, 0.8);
        let exact = GrowthKernel { law, u0, rho };
        let gen = GenericGrowth { pf: &pf, u0, rho };
        for &ut in &[0.5, 2.0, 6.0] {
            let t_exact = exact.time_to_u(ut);
            assert!(approx_eq(gen.time_to_u(ut), t_exact, 1e-6));
            assert!(approx_eq(gen.energy_to_u(ut), exact.energy(t_exact), 1e-6));
            assert!(approx_eq(gen.volume_integral_to_u(ut), exact.volume_integral(t_exact), 1e-6));
        }
    }

    #[test]
    fn decay_growth_time_reversal_for_general_p() {
        // The reverse-curve identity behind Lemma 3 holds for any P: the
        // time/energy to decay w -> 0 equals the time/energy to grow 0 -> w.
        let pf = mixed();
        let (w, rho) = (3.0, 1.0);
        let d = GenericDecay { pf: &pf, w0: w, rho };
        let g = GenericGrowth { pf: &pf, u0: 0.0, rho };
        assert!(approx_eq(d.time_to_weight(0.0), g.time_to_u(w), 1e-8));
        assert!(approx_eq(d.energy_to_weight(0.0), g.energy_to_u(w), 1e-8));
        // Level sets agree too (Lemma 6 at the kernel level).
        for &x in &[0.2, 0.7, 1.1] {
            assert!(approx_eq(
                d.time_with_speed_at_least(x, 0.0),
                g.time_with_speed_at_least(x, w),
                1e-7
            ));
        }
    }

    #[test]
    fn mixed_power_decays_faster_than_cube_alone() {
        // Adding a positive s^2 term raises power at every speed, so the
        // decay at equal power target runs at lower speed... but the speed
        // for a given power is *smaller*, hence decay takes longer.
        let cube_pf = cube();
        let mix = mixed();
        let d_cube = GenericDecay { pf: &cube_pf, w0: 4.0, rho: 1.0 };
        let d_mix = GenericDecay { pf: &mix, w0: 4.0, rho: 1.0 };
        assert!(d_mix.time_to_weight(0.0) > d_cube.time_to_weight(0.0));
    }
}
