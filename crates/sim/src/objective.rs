//! Objective values: energy, fractional and integral weighted flow-time.
//!
//! The simulators in `ncss-core` account for these quantities incrementally
//! with closed forms; [`evaluate`] here recomputes them *independently* from
//! a finished [`Schedule`] and the ground-truth [`Instance`]. The tests use
//! both paths against each other, so a bookkeeping bug in either one is
//! caught immediately.

use crate::error::{SimError, SimResult};
use crate::job::Instance;
use crate::schedule::Schedule;

/// The three cost components of a schedule.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Objective {
    /// Total energy `∫ P(s(t)) dt`.
    pub energy: f64,
    /// Fractional weighted flow-time `Σ_j ρ_j ∫ V_j(t) dt`.
    pub frac_flow: f64,
    /// Integral weighted flow-time `Σ_j W_j (c_j − r_j)`.
    pub int_flow: f64,
}

impl Objective {
    /// The fractional objective `G_frac = E + Σ F_j`.
    #[must_use]
    pub fn fractional(&self) -> f64 {
        self.energy + self.frac_flow
    }

    /// The integral objective `G_int = E + Σ F_int[j]`.
    #[must_use]
    pub fn integral(&self) -> f64 {
        self.energy + self.int_flow
    }

    /// Numeric guard rail: pass the objective through unchanged when all
    /// three components are finite and non-negative, otherwise return
    /// [`SimError::Numeric`] naming the bad component.
    ///
    /// Every public run function in the workspace funnels its final
    /// objective through this check, so extreme α/volume scales overflow
    /// into a structured error instead of a NaN/inf result — in release
    /// builds too.
    pub fn validated(self, context: &'static str) -> SimResult<Self> {
        let checks = [
            ("energy", self.energy),
            ("fractional flow", self.frac_flow),
            ("integral flow", self.int_flow),
        ];
        for (_, v) in checks {
            if !(v.is_finite() && v >= 0.0) {
                // `context` names the producing algorithm; the component
                // name is recoverable from the value pattern, and keeping
                // `what` a &'static str avoids allocating on the hot path.
                return Err(SimError::Numeric { what: context, value: v });
            }
        }
        Ok(self)
    }
}

/// Per-job outcomes of a schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct PerJob {
    /// Completion time of each job.
    pub completion: Vec<f64>,
    /// Fractional flow-time `ρ_j ∫ V_j(t) dt` of each job.
    pub frac_flow: Vec<f64>,
    /// Integral flow-time `W_j (c_j − r_j)` of each job.
    pub int_flow: Vec<f64>,
}

/// A fully evaluated schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluated {
    /// Aggregate objective.
    pub objective: Objective,
    /// Per-job breakdown.
    pub per_job: PerJob,
}

/// Relative volume tolerance under which a job counts as completed.
const COMPLETION_RTOL: f64 = 1e-6;

/// Evaluate a schedule against an instance from first principles.
///
/// Walks the merged timeline of segment boundaries and release times,
/// accruing waiting-job flow-time exactly (remaining volumes are constant
/// for jobs not in service) and in-service flow-time via the segments'
/// closed-form volume integrals. Completion points are located inside
/// segments with the analytic inverse volume map.
///
/// Fails with [`SimError::IncompleteSchedule`] if any job's volume is not
/// fully processed by the end of the schedule.
pub fn evaluate(schedule: &Schedule, instance: &Instance) -> SimResult<Evaluated> {
    let pl = schedule.power_law();
    let n = instance.len();
    let mut remaining: Vec<f64> = instance.jobs().iter().map(|j| j.volume).collect();
    let mut completion = vec![f64::NAN; n];
    let mut frac_flow = vec![0.0; n];

    // Event times: all segment boundaries plus all release times.
    let mut times: Vec<f64> = Vec::with_capacity(2 * schedule.segments().len() + n);
    for s in schedule.segments() {
        times.push(s.start);
        times.push(s.end);
    }
    for j in instance.jobs() {
        times.push(j.release);
    }
    // Segment times and releases are validated finite upstream, but a
    // total order keeps this panic-free even if that ever regresses.
    times.sort_by(f64::total_cmp);
    times.dedup_by(|a, b| (*a - *b).abs() <= 1e-15);

    let mut energy = 0.0;
    let mut seg_idx = 0;
    let segs = schedule.segments();

    for w in times.windows(2) {
        let (a, b) = (w[0], w[1]);
        if b <= a {
            continue;
        }
        // Advance to the segment covering [a, b], if any.
        while seg_idx < segs.len() && segs[seg_idx].end <= a + 1e-15 {
            seg_idx += 1;
        }
        let seg = segs.get(seg_idx).filter(|s| s.start <= a + 1e-12 && s.end >= b - 1e-12);

        // Which job is actually receiving service in this interval?
        let in_service = seg.and_then(|s| s.job).filter(|&j| {
            instance.job(j).release <= a + 1e-12 && remaining[j] > 0.0
        });

        // Waiting accrual: every released, unfinished job except the one in
        // service has constant remaining volume over [a, b].
        for (j, job) in instance.jobs().iter().enumerate() {
            if job.release <= a + 1e-12 && remaining[j] > 0.0 && in_service != Some(j) {
                frac_flow[j] += job.density * remaining[j] * (b - a);
            }
        }

        let Some(seg) = seg else {
            continue; // gap: idle, no energy
        };

        // Energy always accrues over the active segment slice.
        energy += seg.energy_to(pl, b) - seg.energy_to(pl, a);

        let Some(jid) = in_service else {
            continue;
        };
        let job = instance.job(jid);
        let v_a = seg.volume_to(pl, a);
        let v_b = seg.volume_to(pl, b);
        let dv = v_b - v_a;
        let rem = remaining[jid];

        if dv >= rem * (1.0 - COMPLETION_RTOL) && dv > 0.0 {
            // Completion inside (or at the end of) this interval.
            let c = seg
                .time_at_volume(pl, (v_a + rem).min(seg.volume_to(pl, seg.end)))
                .unwrap_or(b)
                .clamp(a, b);
            // Exact accrual up to completion:
            // rho * ∫_a^c V_j dt with V_j(t) = rem − (vol(t) − v_a).
            let vi = seg.volume_integral_to(pl, c) - seg.volume_integral_to(pl, a);
            frac_flow[jid] += job.density * ((rem + v_a) * (c - a) - vi);
            remaining[jid] = 0.0;
            completion[jid] = c;
            // Any residual service in [c, b] is wasted work (energy already
            // counted above); correct schedules do not produce it.
        } else {
            let vi = seg.volume_integral_to(pl, b) - seg.volume_integral_to(pl, a);
            frac_flow[jid] += job.density * ((rem + v_a) * (b - a) - vi);
            remaining[jid] -= dv;
        }
    }

    for (j, &rem) in remaining.iter().enumerate() {
        if rem > COMPLETION_RTOL * instance.job(j).volume {
            return Err(SimError::IncompleteSchedule { job: j, remaining: rem });
        }
        if completion[j].is_nan() {
            // Completed exactly at the horizon within tolerance.
            completion[j] = schedule.end_time();
        }
    }

    let int_flow: Vec<f64> = instance
        .jobs()
        .iter()
        .enumerate()
        .map(|(j, job)| job.weight() * (completion[j] - job.release))
        .collect();

    let objective = Objective {
        energy,
        frac_flow: frac_flow.iter().sum(),
        int_flow: int_flow.iter().sum(),
    }
    .validated("evaluate: objective")?;
    Ok(Evaluated { objective, per_job: PerJob { completion, frac_flow, int_flow } })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Job;
    use crate::numeric::approx_eq;
    use crate::power::PowerLaw;
    use crate::schedule::{Segment, SpeedLaw};

    fn pl(alpha: f64) -> PowerLaw {
        PowerLaw::new(alpha).unwrap()
    }

    #[test]
    fn single_job_constant_speed() {
        // Job of volume 2 at t=0, density 3, processed at speed 1 over [0,2].
        let inst = Instance::new(vec![Job::new(0.0, 2.0, 3.0)]).unwrap();
        let law = pl(2.0);
        let seg = Segment::new(0.0, 2.0, Some(0), SpeedLaw::Constant { speed: 1.0 });
        let sched = Schedule::new(law, vec![seg]).unwrap();
        let ev = evaluate(&sched, &inst).unwrap();
        // Energy = 1^2 * 2 = 2. Frac flow = rho * ∫ V dt = 3 * ∫ (2 - t) dt over [0,2] = 3*2 = 6.
        assert!(approx_eq(ev.objective.energy, 2.0, 1e-12));
        assert!(approx_eq(ev.objective.frac_flow, 6.0, 1e-12));
        // Int flow = W * c = 6 * 2 = 12.
        assert!(approx_eq(ev.objective.int_flow, 12.0, 1e-12));
        assert!(approx_eq(ev.per_job.completion[0], 2.0, 1e-9));
    }

    #[test]
    fn waiting_job_accrues_before_service() {
        // Two unit jobs at t=0; job 0 served [0,1], job 1 served [1,2], speed 1.
        let inst = Instance::new(vec![Job::unit_density(0.0, 1.0), Job::unit_density(0.0, 1.0)]).unwrap();
        let law = pl(2.0);
        let segs = vec![
            Segment::new(0.0, 1.0, Some(0), SpeedLaw::Constant { speed: 1.0 }),
            Segment::new(1.0, 2.0, Some(1), SpeedLaw::Constant { speed: 1.0 }),
        ];
        let sched = Schedule::new(law, segs).unwrap();
        let ev = evaluate(&sched, &inst).unwrap();
        // Job 0: ∫(1-t) over [0,1] = 0.5. Job 1: waits 1 unit (1.0) + ∫(1-t) = 0.5 -> 1.5.
        assert!(approx_eq(ev.per_job.frac_flow[0], 0.5, 1e-12));
        assert!(approx_eq(ev.per_job.frac_flow[1], 1.5, 1e-12));
        assert!(approx_eq(ev.per_job.completion[1], 2.0, 1e-9));
    }

    #[test]
    fn incomplete_schedule_is_an_error() {
        let inst = Instance::new(vec![Job::unit_density(0.0, 5.0)]).unwrap();
        let law = pl(2.0);
        let seg = Segment::new(0.0, 1.0, Some(0), SpeedLaw::Constant { speed: 1.0 });
        let sched = Schedule::new(law, vec![seg]).unwrap();
        match evaluate(&sched, &inst) {
            Err(SimError::IncompleteSchedule { job: 0, remaining }) => {
                assert!(approx_eq(remaining, 4.0, 1e-9));
            }
            other => panic!("expected IncompleteSchedule, got {other:?}"),
        }
    }

    #[test]
    fn completion_mid_segment_is_located_exactly() {
        // Volume 1 at speed 2 completes at t = 0.5 inside a [0,2] segment.
        let inst = Instance::new(vec![Job::unit_density(0.0, 1.0)]).unwrap();
        let law = pl(2.0);
        let seg = Segment::new(0.0, 2.0, Some(0), SpeedLaw::Constant { speed: 2.0 });
        let sched = Schedule::new(law, vec![seg]).unwrap();
        let ev = evaluate(&sched, &inst).unwrap();
        assert!(approx_eq(ev.per_job.completion[0], 0.5, 1e-9));
        // Frac flow: ∫ (1 - 2t) dt over [0, 0.5] = 0.25.
        assert!(approx_eq(ev.per_job.frac_flow[0], 0.25, 1e-9));
        // Energy still counts the whole segment's burn: 4 * 2 = 8.
        assert!(approx_eq(ev.objective.energy, 8.0, 1e-12));
    }

    #[test]
    fn release_inside_segment_starts_accrual_late() {
        // Job released at t = 1 while an unrelated segment runs [0, 2].
        let inst = Instance::new(vec![Job::unit_density(0.0, 2.0), Job::unit_density(1.0, 1.0)]).unwrap();
        let law = pl(2.0);
        let segs = vec![
            Segment::new(0.0, 2.0, Some(0), SpeedLaw::Constant { speed: 1.0 }),
            Segment::new(2.0, 3.0, Some(1), SpeedLaw::Constant { speed: 1.0 }),
        ];
        let sched = Schedule::new(law, segs).unwrap();
        let ev = evaluate(&sched, &inst).unwrap();
        // Job 1 waits [1,2] with volume 1 (accrues 1), then ∫(1-t)dt = 0.5.
        assert!(approx_eq(ev.per_job.frac_flow[1], 1.5, 1e-12));
        // Integral flow of job 1: completion 3 - release 1 = 2, weight 1.
        assert!(approx_eq(ev.per_job.int_flow[1], 2.0, 1e-9));
    }

    #[test]
    fn fractional_never_exceeds_integral_flow() {
        // General sanity on a decay-law schedule with two jobs.
        let inst = Instance::new(vec![Job::unit_density(0.0, 1.0), Job::unit_density(0.5, 1.0)]).unwrap();
        let law = pl(3.0);
        // Serve job 0 with decay law from total weight 1 until its weight is
        // exhausted, then job 1. (Not a real Algorithm C run; evaluation only.)
        let k0 = crate::kernel::DecayKernel { law, w0: 1.0, rho: 1.0 };
        let t0 = k0.time_to_volume(1.0);
        let k1w = 1.0;
        let k1 = crate::kernel::DecayKernel { law, w0: k1w, rho: 1.0 };
        let t1 = k1.time_to_volume(1.0);
        let segs = vec![
            Segment::new(0.0, t0, Some(0), SpeedLaw::Decay { w0: 1.0, rho: 1.0 }),
            Segment::new(t0, t0 + t1, Some(1), SpeedLaw::Decay { w0: k1w, rho: 1.0 }),
        ];
        let sched = Schedule::new(law, segs).unwrap();
        let ev = evaluate(&sched, &inst).unwrap();
        assert!(ev.objective.frac_flow <= ev.objective.int_flow + 1e-9);
        assert!(ev.objective.fractional() <= ev.objective.integral() + 1e-9);
    }

    #[test]
    fn objective_combinators() {
        let o = Objective { energy: 1.0, frac_flow: 2.0, int_flow: 3.0 };
        assert_eq!(o.fractional(), 3.0);
        assert_eq!(o.integral(), 4.0);
    }
}
