//! Speed-profile comparison tools.
//!
//! Lemma 6 of the paper states that Algorithm NC's speed profile is a
//! *measure-preserving rearrangement* of Algorithm C's: for every speed
//! level `x > 0`, the two algorithms spend identical total time at speed
//! `≥ x`. These helpers compute and compare those level-set measures.

use crate::schedule::Schedule;

/// The level-set function `x ↦ time with speed ≥ x` of a schedule sampled on
/// a grid of speed levels.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeedProfile {
    /// Sampled speed levels (ascending, all > 0).
    pub levels: Vec<f64>,
    /// `durations[i]` = total time spent at speed ≥ `levels[i]`.
    pub durations: Vec<f64>,
}

impl SpeedProfile {
    /// Extract the profile of `schedule` on `n` levels spanning
    /// `(0, max_speed]`.
    #[must_use]
    pub fn extract(schedule: &Schedule, n: usize) -> Self {
        let max = schedule.max_speed().max(f64::MIN_POSITIVE);
        let levels: Vec<f64> = (1..=n).map(|i| max * i as f64 / n as f64).collect();
        let durations = levels.iter().map(|&x| schedule.time_with_speed_at_least(x)).collect();
        Self { levels, durations }
    }
}

/// Maximum absolute discrepancy between the level-set measures of two
/// schedules over a shared grid of `n` levels spanning both profiles.
///
/// Zero (up to numerical noise) certifies that one speed profile is a
/// measure-preserving rearrangement of the other.
#[must_use]
pub fn rearrangement_distance(a: &Schedule, b: &Schedule, n: usize) -> f64 {
    let max = a.max_speed().max(b.max_speed()).max(f64::MIN_POSITIVE);
    let mut worst: f64 = 0.0;
    for i in 1..=n {
        let x = max * i as f64 / n as f64;
        let da = a.time_with_speed_at_least(x);
        let db = b.time_with_speed_at_least(x);
        worst = worst.max((da - db).abs());
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::PowerLaw;
    use crate::schedule::{Segment, SpeedLaw};

    fn pl() -> PowerLaw {
        PowerLaw::new(2.0).unwrap()
    }

    fn const_sched(blocks: &[(f64, f64, f64)]) -> Schedule {
        // (start, end, speed)
        let segs = blocks
            .iter()
            .map(|&(s, e, v)| Segment::new(s, e, Some(0), SpeedLaw::Constant { speed: v }))
            .collect();
        Schedule::new(pl(), segs).unwrap()
    }

    #[test]
    fn identical_profiles_have_zero_distance() {
        let a = const_sched(&[(0.0, 1.0, 2.0), (1.0, 3.0, 1.0)]);
        let b = const_sched(&[(0.0, 2.0, 1.0), (2.0, 3.0, 2.0)]); // time-rearranged
        assert!(rearrangement_distance(&a, &b, 64) < 1e-12);
    }

    #[test]
    fn different_profiles_detected() {
        let a = const_sched(&[(0.0, 1.0, 2.0)]);
        let b = const_sched(&[(0.0, 2.0, 1.0)]);
        assert!(rearrangement_distance(&a, &b, 64) > 0.5);
    }

    #[test]
    fn decay_vs_reversed_growth_is_a_rearrangement() {
        // Figure 1: the NC growth curve is the C decay curve in reverse, so
        // their level-set measures agree exactly.
        let law = PowerLaw::new(3.0).unwrap();
        let w = 5.0;
        let kd = crate::kernel::DecayKernel { law, w0: w, rho: 1.0 };
        let t = kd.time_to_empty();
        let a = Schedule::new(
            law,
            vec![Segment::new(0.0, t, Some(0), SpeedLaw::Decay { w0: w, rho: 1.0 })],
        )
        .unwrap();
        let b = Schedule::new(
            law,
            vec![Segment::new(0.0, t, Some(0), SpeedLaw::Growth { u0: 0.0, rho: 1.0 })],
        )
        .unwrap();
        assert!(rearrangement_distance(&a, &b, 256) < 1e-9);
    }

    #[test]
    fn profile_extraction_monotone() {
        let a = const_sched(&[(0.0, 1.0, 2.0), (1.0, 3.0, 1.0)]);
        let p = SpeedProfile::extract(&a, 32);
        assert_eq!(p.levels.len(), 32);
        // Durations are non-increasing in the level.
        assert!(p.durations.windows(2).all(|w| w[1] <= w[0] + 1e-12));
    }
}
