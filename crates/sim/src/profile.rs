//! Speed-profile comparison tools and the per-phase attribution profiler.
//!
//! Lemma 6 of the paper states that Algorithm NC's speed profile is a
//! *measure-preserving rearrangement* of Algorithm C's: for every speed
//! level `x > 0`, the two algorithms spend identical total time at speed
//! `≥ x`. These helpers compute and compare those level-set measures.
//!
//! The second half of this module is the **phase profiler** (DESIGN.md
//! §13): thread-local scoped timers that attribute wall time in the hot
//! event loops to a fixed set of [`Phase`]s — dispatch, root-finding,
//! heap operations, audit. Disabled it costs one thread-local boolean
//! read per scope; enabled, the bench harness runs a *separate*
//! attribution pass and serializes the totals into `ncss-bench/5`
//! `phases` rows, so a `bench-diff` can say not just "the soak got 2×
//! faster" but *which phase* the time came out of.

use crate::schedule::Schedule;
use std::cell::Cell;
use std::time::Instant;

/// The level-set function `x ↦ time with speed ≥ x` of a schedule sampled on
/// a grid of speed levels.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeedProfile {
    /// Sampled speed levels (ascending, all > 0).
    pub levels: Vec<f64>,
    /// `durations[i]` = total time spent at speed ≥ `levels[i]`.
    pub durations: Vec<f64>,
}

impl SpeedProfile {
    /// Extract the profile of `schedule` on `n` levels spanning
    /// `(0, max_speed]`.
    #[must_use]
    pub fn extract(schedule: &Schedule, n: usize) -> Self {
        let max = schedule.max_speed().max(f64::MIN_POSITIVE);
        let levels: Vec<f64> = (1..=n).map(|i| max * i as f64 / n as f64).collect();
        let durations = levels.iter().map(|&x| schedule.time_with_speed_at_least(x)).collect();
        Self { levels, durations }
    }
}

/// Maximum absolute discrepancy between the level-set measures of two
/// schedules over a shared grid of `n` levels spanning both profiles.
///
/// Zero (up to numerical noise) certifies that one speed profile is a
/// measure-preserving rearrangement of the other.
#[must_use]
pub fn rearrangement_distance(a: &Schedule, b: &Schedule, n: usize) -> f64 {
    let max = a.max_speed().max(b.max_speed()).max(f64::MIN_POSITIVE);
    let mut worst: f64 = 0.0;
    for i in 1..=n {
        let x = max * i as f64 / n as f64;
        let da = a.time_with_speed_at_least(x);
        let db = b.time_with_speed_at_least(x);
        worst = worst.max((da - db).abs());
    }
    worst
}

/// A hot-loop phase the attribution profiler can bill time to.
///
/// The set is deliberately small and fixed: every nanosecond of a
/// streaming run should land in exactly one of these (or in untimed glue,
/// which shows up as the gap between the phase total and the row's wall
/// time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Event selection and job bookkeeping: deciding what runs next,
    /// arena reads/writes, completion emission.
    Dispatch,
    /// Closed-form kernel evaluation: the `DecayKernel`/`GrowthKernel`
    /// step and inverse maps (the power-kernel arithmetic itself).
    RootFind,
    /// Priority-queue traffic: pushes, pops, and lazy-deletion skips.
    HeapOps,
    /// Incremental-audit accrual and checks riding the run.
    Audit,
}

/// Number of distinct [`Phase`] values.
pub const PHASE_COUNT: usize = 4;

impl Phase {
    /// All phases, in serialization order.
    pub const ALL: [Phase; PHASE_COUNT] = [Phase::Dispatch, Phase::RootFind, Phase::HeapOps, Phase::Audit];

    /// Stable lowercase name used in bench-row serialization.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Phase::Dispatch => "dispatch",
            Phase::RootFind => "root_find",
            Phase::HeapOps => "heap_ops",
            Phase::Audit => "audit",
        }
    }

    #[inline]
    fn index(self) -> usize {
        self as usize
    }
}

thread_local! {
    static PHASE_ENABLED: Cell<bool> = const { Cell::new(false) };
    static PHASE_NANOS: Cell<[u64; PHASE_COUNT]> = const { Cell::new([0; PHASE_COUNT]) };
    static PHASE_COUNTS: Cell<[u64; PHASE_COUNT]> = const { Cell::new([0; PHASE_COUNT]) };
}

/// Accumulated phase totals for one thread's profiled interval.
///
/// Produced by [`take_phase_report`]; consumed by the bench harness which
/// serializes it as the `phases` array of a `ncss-bench/5` row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseReport {
    nanos: [u64; PHASE_COUNT],
    counts: [u64; PHASE_COUNT],
}

impl PhaseReport {
    /// Total nanoseconds billed to `phase`.
    #[must_use]
    pub fn nanos(&self, phase: Phase) -> u64 {
        self.nanos[phase.index()]
    }

    /// Number of scopes that billed to `phase`.
    #[must_use]
    pub fn count(&self, phase: Phase) -> u64 {
        self.counts[phase.index()]
    }

    /// `(name, total_ns, scope_count)` rows in serialization order,
    /// skipping phases that never ran.
    #[must_use]
    pub fn rows(&self) -> Vec<(&'static str, u64, u64)> {
        Phase::ALL
            .iter()
            .filter(|p| self.counts[p.index()] > 0)
            .map(|&p| (p.name(), self.nanos[p.index()], self.counts[p.index()]))
            .collect()
    }

    /// True if no scope ever fired (profiling was off or nothing ran).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counts.iter().all(|&c| c == 0)
    }
}

/// Reset this thread's phase totals and start billing scopes.
///
/// Profiling is per-thread: a pool-sharded run profiles whichever thread
/// calls this (the bench harness profiles the driver thread of a separate
/// attribution pass, never the timed row itself).
pub fn enable_phase_profiling() {
    PHASE_NANOS.with(|n| n.set([0; PHASE_COUNT]));
    PHASE_COUNTS.with(|c| c.set([0; PHASE_COUNT]));
    PHASE_ENABLED.with(|e| e.set(true));
}

/// Stop billing and return the totals accumulated since
/// [`enable_phase_profiling`].
pub fn take_phase_report() -> PhaseReport {
    PHASE_ENABLED.with(|e| e.set(false));
    PhaseReport {
        nanos: PHASE_NANOS.with(Cell::get),
        counts: PHASE_COUNTS.with(Cell::get),
    }
}

/// True while this thread is billing phase scopes.
#[must_use]
pub fn phase_profiling_enabled() -> bool {
    PHASE_ENABLED.with(Cell::get)
}

/// RAII guard billing the enclosed extent to a [`Phase`].
///
/// When profiling is disabled (the default, and always the case inside
/// timed bench rows) construction reads one thread-local flag and the
/// drop is a no-op — cheap enough to leave in the hot loops permanently.
#[derive(Debug)]
pub struct PhaseScope {
    phase: Phase,
    start: Option<Instant>,
}

impl PhaseScope {
    /// Open a scope billing to `phase` until drop.
    #[inline]
    #[must_use]
    pub fn enter(phase: Phase) -> Self {
        let start =
            if PHASE_ENABLED.with(Cell::get) { Some(Instant::now()) } else { None };
        Self { phase, start }
    }
}

impl Drop for PhaseScope {
    #[inline]
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let elapsed = start.elapsed().as_nanos() as u64;
            let i = self.phase.index();
            PHASE_NANOS.with(|n| {
                let mut v = n.get();
                v[i] = v[i].saturating_add(elapsed);
                n.set(v);
            });
            PHASE_COUNTS.with(|c| {
                let mut v = c.get();
                v[i] += 1;
                c.set(v);
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::PowerLaw;
    use crate::schedule::{Segment, SpeedLaw};

    fn pl() -> PowerLaw {
        PowerLaw::new(2.0).unwrap()
    }

    fn const_sched(blocks: &[(f64, f64, f64)]) -> Schedule {
        // (start, end, speed)
        let segs = blocks
            .iter()
            .map(|&(s, e, v)| Segment::new(s, e, Some(0), SpeedLaw::Constant { speed: v }))
            .collect();
        Schedule::new(pl(), segs).unwrap()
    }

    #[test]
    fn identical_profiles_have_zero_distance() {
        let a = const_sched(&[(0.0, 1.0, 2.0), (1.0, 3.0, 1.0)]);
        let b = const_sched(&[(0.0, 2.0, 1.0), (2.0, 3.0, 2.0)]); // time-rearranged
        assert!(rearrangement_distance(&a, &b, 64) < 1e-12);
    }

    #[test]
    fn different_profiles_detected() {
        let a = const_sched(&[(0.0, 1.0, 2.0)]);
        let b = const_sched(&[(0.0, 2.0, 1.0)]);
        assert!(rearrangement_distance(&a, &b, 64) > 0.5);
    }

    #[test]
    fn decay_vs_reversed_growth_is_a_rearrangement() {
        // Figure 1: the NC growth curve is the C decay curve in reverse, so
        // their level-set measures agree exactly.
        let law = PowerLaw::new(3.0).unwrap();
        let w = 5.0;
        let kd = crate::kernel::DecayKernel { law, w0: w, rho: 1.0 };
        let t = kd.time_to_empty();
        let a = Schedule::new(
            law,
            vec![Segment::new(0.0, t, Some(0), SpeedLaw::Decay { w0: w, rho: 1.0 })],
        )
        .unwrap();
        let b = Schedule::new(
            law,
            vec![Segment::new(0.0, t, Some(0), SpeedLaw::Growth { u0: 0.0, rho: 1.0 })],
        )
        .unwrap();
        assert!(rearrangement_distance(&a, &b, 256) < 1e-9);
    }

    #[test]
    fn phase_scopes_noop_when_disabled() {
        assert!(!phase_profiling_enabled());
        {
            let _s = PhaseScope::enter(Phase::Dispatch);
        }
        let r = take_phase_report();
        assert!(r.is_empty());
        assert!(r.rows().is_empty());
    }

    #[test]
    fn phase_scopes_accumulate_when_enabled() {
        enable_phase_profiling();
        for _ in 0..3 {
            let _s = PhaseScope::enter(Phase::RootFind);
            std::hint::black_box(1.0f64.exp());
        }
        {
            let _s = PhaseScope::enter(Phase::HeapOps);
        }
        let r = take_phase_report();
        assert_eq!(r.count(Phase::RootFind), 3);
        assert_eq!(r.count(Phase::HeapOps), 1);
        assert_eq!(r.count(Phase::Dispatch), 0);
        let rows = r.rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, "root_find");
        // Second enable resets the totals.
        enable_phase_profiling();
        assert!(take_phase_report().is_empty());
    }

    #[test]
    fn profile_extraction_monotone() {
        let a = const_sched(&[(0.0, 1.0, 2.0), (1.0, 3.0, 1.0)]);
        let p = SpeedProfile::extract(&a, 32);
        assert_eq!(p.levels.len(), 32);
        // Durations are non-increasing in the level.
        assert!(p.durations.windows(2).all(|w| w[1] <= w[0] + 1e-12));
    }
}
