//! The power function `P(s) = s^α`.
//!
//! The paper analyses power-law functions with α > 1 (typically α ≈ 3 for
//! CMOS dynamic power). All closed forms in [`crate::kernel`] specialise to
//! this family; [`PowerLaw`] centralises the exponent arithmetic so that the
//! many `1 - 1/α` style constants appear exactly once.

use crate::error::{SimError, SimResult};

/// Power-law power function `P(s) = s^α` with `α > 1`.
///
/// # Examples
///
/// ```
/// use ncss_sim::PowerLaw;
///
/// let p = PowerLaw::cube(); // P(s) = s³, the CMOS rule of thumb
/// assert_eq!(p.power(2.0), 8.0);
/// // The paper's speed-setting rule: run so that power equals weight.
/// assert!((p.speed_for_power(27.0) - 3.0).abs() < 1e-12);
/// assert!(PowerLaw::new(0.9).is_err()); // needs α > 1
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLaw {
    alpha: f64,
}

impl PowerLaw {
    /// Construct `P(s) = s^α`. Fails unless `α > 1` and finite: the paper's
    /// algorithms (and the convexity arguments behind them) need a strictly
    /// super-linear power function.
    pub fn new(alpha: f64) -> SimResult<Self> {
        if !(alpha.is_finite() && alpha > 1.0) {
            return Err(SimError::InvalidAlpha { alpha });
        }
        Ok(Self { alpha })
    }

    /// The cube law `P(s) = s³` that dominates practice.
    #[must_use]
    pub fn cube() -> Self {
        Self { alpha: 3.0 }
    }

    /// The exponent α.
    #[must_use]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// `β = 1 − 1/α ∈ (0, 1)`, the exponent governing every weight-evolution
    /// closed form (`W^β` is linear in time under both C and NC dynamics).
    #[must_use]
    pub fn beta(&self) -> f64 {
        1.0 - 1.0 / self.alpha
    }

    /// Instantaneous power at speed `s`.
    #[must_use]
    pub fn power(&self, s: f64) -> f64 {
        debug_assert!(s >= 0.0);
        s.powf(self.alpha)
    }

    /// The speed whose power equals `p`, i.e. `P⁻¹(p) = p^{1/α}`.
    ///
    /// This is the paper's ubiquitous speed-setting rule "run so that the
    /// power equals (some) weight".
    #[must_use]
    pub fn speed_for_power(&self, p: f64) -> f64 {
        debug_assert!(p >= 0.0);
        p.powf(1.0 / self.alpha)
    }

    /// Marginal power `P'(s) = α s^{α−1}`; used by the offline-optimum KKT
    /// conditions.
    #[must_use]
    pub fn power_deriv(&self, s: f64) -> f64 {
        debug_assert!(s >= 0.0);
        self.alpha * s.powf(self.alpha - 1.0)
    }

    /// Inverse of the marginal power: the speed with `P'(s) = y`.
    #[must_use]
    pub fn speed_for_power_deriv(&self, y: f64) -> f64 {
        debug_assert!(y >= 0.0);
        (y / self.alpha).powf(1.0 / (self.alpha - 1.0))
    }

    /// Convex conjugate `P*(y) = sup_{s ≥ 0} (s·y − P(s))`.
    ///
    /// For `P(s) = s^α`: `P*(y) = (α−1) · (y/α)^{α/(α−1)}` for `y ≥ 0`, and
    /// `0` for `y < 0`. This is the building block of the certified dual
    /// lower bound in `ncss-opt`.
    #[must_use]
    pub fn conjugate(&self, y: f64) -> f64 {
        if y <= 0.0 {
            return 0.0;
        }
        (self.alpha - 1.0) * (y / self.alpha).powf(self.alpha / (self.alpha - 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::numeric::approx_eq;

    #[test]
    fn rejects_invalid_alpha() {
        assert!(PowerLaw::new(1.0).is_err());
        assert!(PowerLaw::new(0.5).is_err());
        assert!(PowerLaw::new(f64::NAN).is_err());
        assert!(PowerLaw::new(f64::INFINITY).is_err());
        assert!(PowerLaw::new(2.0).is_ok());
    }

    #[test]
    fn cube_law() {
        let p = PowerLaw::cube();
        assert_eq!(p.alpha(), 3.0);
        assert_eq!(p.power(2.0), 8.0);
        assert!(approx_eq(p.speed_for_power(8.0), 2.0, 1e-12));
    }

    #[test]
    fn power_and_inverse_roundtrip() {
        for &alpha in &[1.5, 2.0, 2.5, 3.0, 4.0] {
            let p = PowerLaw::new(alpha).unwrap();
            for &s in &[0.1, 0.7, 1.0, 3.3, 100.0] {
                assert!(approx_eq(p.speed_for_power(p.power(s)), s, 1e-12));
            }
        }
    }

    #[test]
    fn deriv_matches_finite_difference() {
        let p = PowerLaw::new(2.7).unwrap();
        let s = 1.9;
        let h = 1e-6;
        let fd = (p.power(s + h) - p.power(s - h)) / (2.0 * h);
        assert!(approx_eq(p.power_deriv(s), fd, 1e-7));
    }

    #[test]
    fn deriv_inverse_roundtrip() {
        let p = PowerLaw::new(3.0).unwrap();
        for &s in &[0.2, 1.0, 5.0] {
            assert!(approx_eq(p.speed_for_power_deriv(p.power_deriv(s)), s, 1e-12));
        }
    }

    #[test]
    fn conjugate_via_supremum() {
        // Check P*(y) against a numeric supremum over a fine grid of s.
        let p = PowerLaw::new(2.5).unwrap();
        for &y in &[0.5, 1.0, 4.0] {
            let mut best = f64::NEG_INFINITY;
            let mut s = 0.0;
            while s < 50.0 {
                best = best.max(s * y - p.power(s));
                s += 1e-4;
            }
            assert!(approx_eq(p.conjugate(y), best, 1e-6), "y = {y}");
        }
        assert_eq!(p.conjugate(-1.0), 0.0);
    }

    #[test]
    fn beta_range() {
        for &alpha in &[1.01, 2.0, 10.0] {
            let b = PowerLaw::new(alpha).unwrap().beta();
            assert!(b > 0.0 && b < 1.0);
        }
    }
}
