//! The power function `P(s) = s^α` and its compiled evaluation kernel.
//!
//! The paper analyses power-law functions with α > 1 (typically α ≈ 3 for
//! CMOS dynamic power). All closed forms in [`crate::kernel`] specialise to
//! this family; [`PowerLaw`] centralises the exponent arithmetic so that the
//! many `1 − 1/α` style constants appear exactly once.
//!
//! ## The power-kernel strategy (DESIGN.md §13)
//!
//! Every scheduler decision, root-find, and closed-form audit integral in
//! the workspace bottoms out in a handful of fixed real exponents of α:
//! `α`, `1/α`, `β = 1 − 1/α`, `1/β`, `1 + β`, `α − 1`, `1/(α − 1)`, and
//! `α/(α − 1)`. [`PowerLaw::new`] therefore *compiles* a [`PowKernel`]
//! strategy once per run:
//!
//! * **α = 2** ([`PowKernel::Quadratic`]): every exponent is a square,
//!   a square root, or a product of the two — no `powf` at all.
//! * **α = 3** ([`PowKernel::Cubic`]): cube/cube-root chains
//!   (`x^{2/3} = ∛x·∛x`, `x^{3/2} = x·√x`, `x^{5/3} = x·∛x·∛x`).
//! * **α = 3/2** ([`PowKernel::ThreeHalves`]): the mirror-image chains
//!   (`β = 1/3`).
//! * **2α ∈ ℤ** ([`PowKernel::HalfInteger`]): `P(s) = s^{k/2}` evaluates
//!   as a `√`-seeded multiply chain; the fractional β-direction maps fall
//!   back to the cached-exponent path.
//! * **anything else** ([`PowKernel::General`]): `powf` (`exp(c·ln s)` in
//!   the libm) with every reciprocal exponent precomputed at construction,
//!   so no per-call divisions remain on the hot path.
//!
//! The specialised chains agree with the `powf` reference to a few ulp
//! (≤ 1e-15 relative; property-tested across magnitudes `1e±150` in
//! `tests/pow_kernel.rs`) but cost single-digit nanoseconds instead of
//! tens. Because the kernel is part of the [`PowerLaw`] value itself,
//! every consumer of a run's law — batch runners, streaming cores, sharded
//! fleet replays, audit closed forms — evaluates through the *same*
//! strategy, which is what keeps the differential oracles
//! (batch == stream, serial == sharded) bitwise *within* a run.

use crate::error::{SimError, SimResult};

/// The evaluation strategy [`PowerLaw::new`] compiled for its α.
///
/// See the [module docs](self) for the selection rules. The variant is
/// observable (via [`PowerLaw::kernel`] / [`PowerLaw::kernel_name`]) so CI
/// can assert that e.g. an α = 2 run actually selected the multiply/`sqrt`
/// chains rather than silently falling back to `powf`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PowKernel {
    /// α = 2: squares and square roots only.
    Quadratic,
    /// α = 3: cube / cube-root chains.
    Cubic,
    /// α = 3/2: the β = 1/3 mirror of the cubic chains.
    ThreeHalves,
    /// `2α` is a small integer (α = k/2): `P(s)` runs as a `√`-seeded
    /// multiply chain; β-direction maps use the cached-exponent path.
    HalfInteger,
    /// Cached-exponent `exp(c·ln s)` path (`powf` with all reciprocals
    /// precomputed).
    General,
}

impl PowKernel {
    /// Stable lowercase name, for CLI/CI assertions.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Quadratic => "quadratic",
            Self::Cubic => "cubic",
            Self::ThreeHalves => "three-halves",
            Self::HalfInteger => "half-integer",
            Self::General => "general",
        }
    }
}

/// Largest `2α` the half-integer multiply chain covers; beyond this the
/// chain's accumulated rounding stops beating `powf`'s single rounding.
const HALF_INT_MAX_TWICE_ALPHA: f64 = 64.0;

/// Power-law power function `P(s) = s^α` with `α > 1`.
///
/// # Examples
///
/// ```
/// use ncss_sim::PowerLaw;
///
/// let p = PowerLaw::cube(); // P(s) = s³, the CMOS rule of thumb
/// assert_eq!(p.power(2.0), 8.0);
/// // The paper's speed-setting rule: run so that power equals weight.
/// assert!((p.speed_for_power(27.0) - 3.0).abs() < 1e-12);
/// assert!(PowerLaw::new(0.9).is_err()); // needs α > 1
/// // The cube law compiles to cbrt/multiply chains, not powf.
/// assert_eq!(p.kernel_name(), "cubic");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLaw {
    alpha: f64,
    kernel: PowKernel,
    /// `2α` as an integer, for the half-integer multiply chain (0 unless
    /// [`PowKernel::HalfInteger`]).
    half_k: i32,
    // Cached exponents — every reciprocal the kernels and audit integrals
    // need, computed once here so no division survives on the hot path.
    beta: f64,          // 1 − 1/α
    inv_alpha: f64,     // 1/α
    inv_beta: f64,      // 1/β = α/(α − 1)
    one_plus_beta: f64, // 1 + β = 2 − 1/α
    alpha_m1: f64,      // α − 1
    inv_alpha_m1: f64,  // 1/(α − 1)
}

impl PowerLaw {
    /// Construct `P(s) = s^α` and compile its [`PowKernel`]. Fails unless
    /// `α > 1` and finite: the paper's algorithms (and the convexity
    /// arguments behind them) need a strictly super-linear power function.
    pub fn new(alpha: f64) -> SimResult<Self> {
        if !(alpha.is_finite() && alpha > 1.0) {
            return Err(SimError::InvalidAlpha { alpha });
        }
        let twice = 2.0 * alpha;
        let (kernel, half_k) = if alpha == 2.0 {
            (PowKernel::Quadratic, 0)
        } else if alpha == 3.0 {
            (PowKernel::Cubic, 0)
        } else if alpha == 1.5 {
            (PowKernel::ThreeHalves, 0)
        } else if twice == twice.trunc() && twice <= HALF_INT_MAX_TWICE_ALPHA {
            (PowKernel::HalfInteger, twice as i32)
        } else {
            (PowKernel::General, 0)
        };
        Ok(Self {
            alpha,
            kernel,
            half_k,
            beta: 1.0 - 1.0 / alpha,
            inv_alpha: 1.0 / alpha,
            inv_beta: alpha / (alpha - 1.0),
            one_plus_beta: 1.0 + (1.0 - 1.0 / alpha),
            alpha_m1: alpha - 1.0,
            inv_alpha_m1: 1.0 / (alpha - 1.0),
        })
    }

    /// The cube law `P(s) = s³` that dominates practice.
    #[must_use]
    pub fn cube() -> Self {
        Self::new(3.0).expect("alpha = 3 is valid")
    }

    /// Deliberately pair α with the *wrong* specialised chains — a
    /// fault-injection constructor for CI's mandatory-red kernel probe.
    ///
    /// The returned law reports [`Self::alpha`] faithfully but evaluates
    /// every map with the constants of `α + 1`, so a run driven by it
    /// produces objectives an honest auditor (constructed from the same α
    /// via [`PowerLaw::new`]) must reject via `energy-recomputed`. Never
    /// use outside deliberate corruption probes.
    #[doc(hidden)]
    #[must_use]
    pub fn misselected_for_fault_injection(alpha: f64) -> Self {
        let wrong = Self::new(alpha + 1.0).expect("alpha + 1 > 1");
        Self { alpha, ..wrong }
    }

    /// The exponent α.
    #[must_use]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The evaluation strategy compiled for this α.
    #[must_use]
    pub fn kernel(&self) -> PowKernel {
        self.kernel
    }

    /// Stable name of the compiled strategy (e.g. `quadratic`), for CLI
    /// output and CI assertions.
    #[must_use]
    pub fn kernel_name(&self) -> &'static str {
        self.kernel.name()
    }

    /// `β = 1 − 1/α ∈ (0, 1)`, the exponent governing every weight-evolution
    /// closed form (`W^β` is linear in time under both C and NC dynamics).
    #[must_use]
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// `1 + β = 2 − 1/α`, the energy-antiderivative exponent.
    #[must_use]
    pub fn one_plus_beta(&self) -> f64 {
        self.one_plus_beta
    }

    /// Instantaneous power at speed `s`: `s^α`.
    #[must_use]
    #[inline]
    pub fn power(&self, s: f64) -> f64 {
        debug_assert!(s >= 0.0);
        match self.kernel {
            PowKernel::Quadratic => s * s,
            PowKernel::Cubic => s * s * s,
            PowKernel::ThreeHalves => s * s.sqrt(),
            PowKernel::HalfInteger => {
                // s^{k/2}: integer part by multiply chain, odd half by √s.
                let whole = s.powi(self.half_k / 2);
                if self.half_k % 2 == 0 {
                    whole
                } else {
                    whole * s.sqrt()
                }
            }
            PowKernel::General => s.powf(self.alpha),
        }
    }

    /// The speed whose power equals `p`, i.e. `P⁻¹(p) = p^{1/α}`.
    ///
    /// This is the paper's ubiquitous speed-setting rule "run so that the
    /// power equals (some) weight".
    #[must_use]
    #[inline]
    pub fn speed_for_power(&self, p: f64) -> f64 {
        debug_assert!(p >= 0.0);
        match self.kernel {
            PowKernel::Quadratic => p.sqrt(),
            PowKernel::Cubic => p.cbrt(),
            PowKernel::ThreeHalves => {
                // p^{2/3} = ∛p·∛p (squaring after the root cannot overflow).
                let c = p.cbrt();
                c * c
            }
            _ => p.powf(self.inv_alpha),
        }
    }

    /// `x^β` — the linear-in-time transform of the weight level.
    #[must_use]
    #[inline]
    pub fn pow_beta(&self, x: f64) -> f64 {
        debug_assert!(x >= 0.0);
        match self.kernel {
            PowKernel::Quadratic => x.sqrt(),
            PowKernel::Cubic => {
                // x^{2/3} = ∛x·∛x.
                let c = x.cbrt();
                c * c
            }
            PowKernel::ThreeHalves => x.cbrt(),
            _ => x.powf(self.beta),
        }
    }

    /// `x^{1/β}` — the inverse of [`Self::pow_beta`].
    #[must_use]
    #[inline]
    pub fn root_beta(&self, x: f64) -> f64 {
        debug_assert!(x >= 0.0);
        match self.kernel {
            PowKernel::Quadratic => x * x,
            PowKernel::Cubic => x * x.sqrt(), // x^{3/2}
            PowKernel::ThreeHalves => x * x * x,
            _ => x.powf(self.inv_beta),
        }
    }

    /// `x^{1+β}` — the energy antiderivative of the weight level.
    #[must_use]
    #[inline]
    pub fn pow_one_plus_beta(&self, x: f64) -> f64 {
        debug_assert!(x >= 0.0);
        match self.kernel {
            PowKernel::Quadratic => x * x.sqrt(), // x^{3/2}
            PowKernel::Cubic => {
                // x^{5/3} = x·∛x·∛x.
                let c = x.cbrt();
                x * c * c
            }
            PowKernel::ThreeHalves => x * x.cbrt(), // x^{4/3}
            _ => x.powf(self.one_plus_beta),
        }
    }

    /// Marginal power `P'(s) = α s^{α−1}`; used by the offline-optimum KKT
    /// conditions.
    #[must_use]
    #[inline]
    pub fn power_deriv(&self, s: f64) -> f64 {
        debug_assert!(s >= 0.0);
        match self.kernel {
            PowKernel::Quadratic => 2.0 * s,
            PowKernel::Cubic => 3.0 * (s * s),
            PowKernel::ThreeHalves => 1.5 * s.sqrt(),
            _ => self.alpha * s.powf(self.alpha_m1),
        }
    }

    /// Inverse of the marginal power: the speed with `P'(s) = y`.
    #[must_use]
    #[inline]
    pub fn speed_for_power_deriv(&self, y: f64) -> f64 {
        debug_assert!(y >= 0.0);
        let z = y * self.inv_alpha;
        match self.kernel {
            PowKernel::Quadratic => z,
            PowKernel::Cubic => z.sqrt(),
            PowKernel::ThreeHalves => z * z,
            _ => z.powf(self.inv_alpha_m1),
        }
    }

    /// `x^{1/(α−1)}` — the factor that peels a density off a volume in the
    /// zero-level growth closed form (`(1−β)/β = 1/(α−1)`).
    #[must_use]
    #[inline]
    pub fn root_alpha_m1(&self, x: f64) -> f64 {
        debug_assert!(x >= 0.0);
        match self.kernel {
            PowKernel::Quadratic => x,
            PowKernel::Cubic => x.sqrt(),
            PowKernel::ThreeHalves => x * x,
            _ => x.powf(self.inv_alpha_m1),
        }
    }

    /// Convex conjugate `P*(y) = sup_{s ≥ 0} (s·y − P(s))`.
    ///
    /// For `P(s) = s^α`: `P*(y) = (α−1) · (y/α)^{α/(α−1)}` for `y ≥ 0`, and
    /// `0` for `y < 0`. This is the building block of the certified dual
    /// lower bound in `ncss-opt`.
    #[must_use]
    pub fn conjugate(&self, y: f64) -> f64 {
        if y <= 0.0 {
            return 0.0;
        }
        let z = y * self.inv_alpha;
        // α/(α−1) = 1/β, so the conjugate rides the root_beta chain.
        self.alpha_m1 * self.root_beta(z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::numeric::approx_eq;

    #[test]
    fn rejects_invalid_alpha() {
        assert!(PowerLaw::new(1.0).is_err());
        assert!(PowerLaw::new(0.5).is_err());
        assert!(PowerLaw::new(f64::NAN).is_err());
        assert!(PowerLaw::new(f64::INFINITY).is_err());
        assert!(PowerLaw::new(2.0).is_ok());
    }

    #[test]
    fn kernel_selection_rules() {
        assert_eq!(PowerLaw::new(2.0).unwrap().kernel(), PowKernel::Quadratic);
        assert_eq!(PowerLaw::new(3.0).unwrap().kernel(), PowKernel::Cubic);
        assert_eq!(PowerLaw::new(1.5).unwrap().kernel(), PowKernel::ThreeHalves);
        assert_eq!(PowerLaw::new(2.5).unwrap().kernel(), PowKernel::HalfInteger);
        assert_eq!(PowerLaw::new(4.0).unwrap().kernel(), PowKernel::HalfInteger);
        assert_eq!(PowerLaw::new(2.75).unwrap().kernel(), PowKernel::General);
        assert_eq!(PowerLaw::new(7.3).unwrap().kernel(), PowKernel::General);
        // Beyond the chain cutoff the general path takes over.
        assert_eq!(PowerLaw::new(40.0).unwrap().kernel(), PowKernel::General);
        assert_eq!(PowerLaw::new(2.0).unwrap().kernel_name(), "quadratic");
    }

    #[test]
    fn cube_law() {
        let p = PowerLaw::cube();
        assert_eq!(p.alpha(), 3.0);
        assert_eq!(p.power(2.0), 8.0);
        assert!(approx_eq(p.speed_for_power(8.0), 2.0, 1e-12));
    }

    #[test]
    fn specialised_chains_match_powf() {
        // Each specialised map against its powf definition, at moderate
        // magnitudes (the 1e±150 sweep lives in tests/pow_kernel.rs).
        for &alpha in &[1.5, 2.0, 2.5, 3.0, 4.0, 2.75] {
            let p = PowerLaw::new(alpha).unwrap();
            let b = p.beta();
            for &x in &[0.03, 0.7, 1.0, 3.3, 117.0] {
                assert!(approx_eq(p.power(x), x.powf(alpha), 1e-13), "power α={alpha} x={x}");
                assert!(
                    approx_eq(p.speed_for_power(x), x.powf(1.0 / alpha), 1e-13),
                    "speed_for_power α={alpha} x={x}"
                );
                assert!(approx_eq(p.pow_beta(x), x.powf(b), 1e-13), "pow_beta α={alpha} x={x}");
                assert!(
                    approx_eq(p.root_beta(x), x.powf(1.0 / b), 1e-13),
                    "root_beta α={alpha} x={x}"
                );
                assert!(
                    approx_eq(p.pow_one_plus_beta(x), x.powf(1.0 + b), 1e-13),
                    "pow_one_plus_beta α={alpha} x={x}"
                );
                assert!(
                    approx_eq(p.power_deriv(x), alpha * x.powf(alpha - 1.0), 1e-13),
                    "power_deriv α={alpha} x={x}"
                );
                assert!(
                    approx_eq(
                        p.speed_for_power_deriv(x),
                        (x / alpha).powf(1.0 / (alpha - 1.0)),
                        1e-13
                    ),
                    "speed_for_power_deriv α={alpha} x={x}"
                );
                assert!(
                    approx_eq(p.root_alpha_m1(x), x.powf(1.0 / (alpha - 1.0)), 1e-13),
                    "root_alpha_m1 α={alpha} x={x}"
                );
            }
        }
    }

    #[test]
    fn misselected_kernel_is_visibly_wrong() {
        let honest = PowerLaw::new(2.0).unwrap();
        let wrong = PowerLaw::misselected_for_fault_injection(2.0);
        assert_eq!(wrong.alpha(), 2.0, "reports the honest alpha");
        // ...but evaluates with α = 3's chains: 2² vs 2³.
        assert_eq!(honest.power(2.0), 4.0);
        assert_eq!(wrong.power(2.0), 8.0);
    }

    #[test]
    fn power_and_inverse_roundtrip() {
        for &alpha in &[1.5, 2.0, 2.5, 3.0, 4.0] {
            let p = PowerLaw::new(alpha).unwrap();
            for &s in &[0.1, 0.7, 1.0, 3.3, 100.0] {
                assert!(approx_eq(p.speed_for_power(p.power(s)), s, 1e-12));
                assert!(approx_eq(p.root_beta(p.pow_beta(s)), s, 1e-12));
            }
        }
    }

    #[test]
    fn deriv_matches_finite_difference() {
        let p = PowerLaw::new(2.7).unwrap();
        let s = 1.9;
        let h = 1e-6;
        let fd = (p.power(s + h) - p.power(s - h)) / (2.0 * h);
        assert!(approx_eq(p.power_deriv(s), fd, 1e-7));
    }

    #[test]
    fn deriv_inverse_roundtrip() {
        let p = PowerLaw::new(3.0).unwrap();
        for &s in &[0.2, 1.0, 5.0] {
            assert!(approx_eq(p.speed_for_power_deriv(p.power_deriv(s)), s, 1e-12));
        }
    }

    #[test]
    fn conjugate_via_supremum() {
        // Check P*(y) against a numeric supremum over a fine grid of s.
        let p = PowerLaw::new(2.5).unwrap();
        for &y in &[0.5, 1.0, 4.0] {
            let mut best = f64::NEG_INFINITY;
            let mut s = 0.0;
            while s < 50.0 {
                best = best.max(s * y - p.power(s));
                s += 1e-4;
            }
            assert!(approx_eq(p.conjugate(y), best, 1e-6), "y = {y}");
        }
        assert_eq!(p.conjugate(-1.0), 0.0);
    }

    #[test]
    fn beta_range() {
        for &alpha in &[1.01, 2.0, 10.0] {
            let b = PowerLaw::new(alpha).unwrap().beta();
            assert!(b > 0.0 && b < 1.0);
        }
    }
}
