//! Small numerical utilities shared across the workspace.
//!
//! Everything in the simulator is driven by closed forms, but root finding is
//! still needed in a few places (completion-crossing detection inside the
//! numerically-integrated non-uniform algorithm, horizon solving in the
//! offline optimum) and the tests lean heavily on tolerance helpers.

use crate::error::{SimError, SimResult};

/// Guard rail: pass `value` through unchanged when it is finite, otherwise
/// return [`SimError::Numeric`] naming the quantity.
///
/// This is the release-build replacement for the `debug_assert!`s that used
/// to protect kernel outputs: at extreme `α`/volume scales (1e±150 and
/// beyond) closed forms overflow to `inf` or collapse to NaN, and every
/// public run function funnels its outputs through this check so callers see
/// a structured error instead of a poisoned objective.
#[inline]
pub fn ensure_finite(what: &'static str, value: f64) -> SimResult<f64> {
    if value.is_finite() {
        Ok(value)
    } else {
        Err(SimError::Numeric { what, value })
    }
}

/// Like [`ensure_finite`] but additionally requires `value >= 0`.
///
/// Energies, flow-times, volumes, and elapsed durations are all
/// nonnegative-by-construction; a negative value signals catastrophic
/// cancellation upstream.
#[inline]
pub fn ensure_finite_nonneg(what: &'static str, value: f64) -> SimResult<f64> {
    if value.is_finite() && value >= 0.0 {
        Ok(value)
    } else {
        Err(SimError::Numeric { what, value })
    }
}

/// Relative difference `|a - b| / max(|a|, |b|, 1)`.
///
/// The `1` floor makes the measure behave like an absolute difference near
/// zero, which is what the invariant tests want (energies and flow-times of
/// interest are O(1) or larger).
#[must_use]
pub fn rel_diff(a: f64, b: f64) -> f64 {
    (a - b).abs() / (a.abs().max(b.abs())).max(1.0)
}

/// True when `a` and `b` agree to relative tolerance `rtol` (with the same
/// near-zero floor as [`rel_diff`]).
#[must_use]
pub fn approx_eq(a: f64, b: f64, rtol: f64) -> bool {
    rel_diff(a, b) <= rtol
}

/// Bisection root finder for a continuous function with a sign change on
/// `[lo, hi]`.
///
/// Returns the midpoint of the final bracket. Returns
/// [`SimError::Numeric`] when an endpoint evaluates to NaN and
/// [`SimError::NonConvergence`] when the initial bracket does not straddle a
/// root (both endpoints strictly the same sign). Call sites construct
/// brackets from monotonicity arguments, but under fault injection
/// (perturbed instances, extreme scales) those arguments can break in
/// floating point — a structured error keeps the failure diagnosable
/// without taking the process down.
pub fn bisect(mut f: impl FnMut(f64) -> f64, mut lo: f64, mut hi: f64, tol: f64) -> SimResult<f64> {
    let flo = f(lo);
    let fhi = f(hi);
    if flo == 0.0 {
        return Ok(lo);
    }
    if fhi == 0.0 {
        return Ok(hi);
    }
    if flo.is_nan() {
        return Err(SimError::Numeric { what: "bisect: f(lo)", value: flo });
    }
    if fhi.is_nan() {
        return Err(SimError::Numeric { what: "bisect: f(hi)", value: fhi });
    }
    if flo.signum() == fhi.signum() {
        return Err(SimError::NonConvergence { what: "bisect: no sign change on bracket" });
    }
    // 200 iterations halve the bracket far past f64 resolution for any sane
    // initial bracket; the tol check below usually exits much earlier.
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if hi - lo <= tol {
            return Ok(mid);
        }
        let fmid = f(mid);
        if fmid == 0.0 {
            return Ok(mid);
        }
        if fmid.is_nan() {
            return Err(SimError::Numeric { what: "bisect: f(mid)", value: fmid });
        }
        if fmid.signum() == flo.signum() {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(0.5 * (lo + hi))
}

/// Monotone-increasing root finder: find `x >= lo` with `f(x) = target`,
/// where `f` is nondecreasing and unbounded. Expands the bracket
/// geometrically from `hint`, then bisects.
///
/// Returns [`SimError::NonConvergence`] if 200 doublings fail to bracket
/// `target` (e.g. `f` saturates at `inf` below the target after overflow)
/// and propagates [`SimError::Numeric`] from the bisection stage.
pub fn solve_increasing(
    mut f: impl FnMut(f64) -> f64,
    target: f64,
    lo: f64,
    hint: f64,
    tol: f64,
) -> SimResult<f64> {
    debug_assert!(hint > lo);
    let mut hi = hint;
    let mut guard = 0;
    while f(hi) < target {
        hi = lo + (hi - lo) * 2.0;
        guard += 1;
        if guard >= 200 {
            return Err(SimError::NonConvergence { what: "solve_increasing: bracket expansion" });
        }
    }
    bisect(|x| f(x) - target, lo, hi, tol)
}

/// Kahan compensated summation, used where many small accruals are summed
/// over long horizons (objective accumulation in the step-based integrator).
#[derive(Debug, Clone, Copy, Default)]
pub struct KahanSum {
    sum: f64,
    carry: f64,
}

impl KahanSum {
    /// A fresh zero accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one term.
    pub fn add(&mut self, x: f64) {
        let y = x - self.carry;
        let t = self.sum + y;
        self.carry = (t - self.sum) - y;
        self.sum = t;
    }

    /// Current total.
    #[must_use]
    pub fn value(&self) -> f64 {
        self.sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rel_diff_basics() {
        assert_eq!(rel_diff(1.0, 1.0), 0.0);
        assert!(rel_diff(100.0, 101.0) < 0.011);
        // Near-zero floor: behaves like absolute difference.
        assert!(rel_diff(1e-12, 0.0) < 1e-11);
    }

    #[test]
    fn approx_eq_tolerances() {
        assert!(approx_eq(1.0, 1.0 + 1e-10, 1e-9));
        assert!(!approx_eq(1.0, 1.1, 1e-3));
    }

    #[test]
    fn bisect_finds_sqrt2() {
        let r = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-12).unwrap();
        assert!((r - std::f64::consts::SQRT_2).abs() < 1e-10);
    }

    #[test]
    fn bisect_exact_endpoint() {
        assert_eq!(bisect(|x| x, 0.0, 1.0, 1e-12).unwrap(), 0.0);
        assert_eq!(bisect(|x| x - 1.0, 0.0, 1.0, 1e-12).unwrap(), 1.0);
    }

    #[test]
    fn bisect_rejects_bad_bracket() {
        let err = bisect(|x| x + 10.0, 0.0, 1.0, 1e-9).unwrap_err();
        assert!(matches!(err, SimError::NonConvergence { .. }), "{err}");
    }

    #[test]
    fn bisect_reports_nan_endpoint() {
        let err = bisect(|x| (x - 0.5).sqrt(), -1.0, 1.0, 1e-9).unwrap_err();
        assert!(matches!(err, SimError::Numeric { .. }), "{err}");
    }

    #[test]
    fn solve_increasing_expands_bracket() {
        // f(x) = x^3 on [0, inf); target far beyond the hint.
        let r = solve_increasing(|x| x * x * x, 1000.0, 0.0, 0.5, 1e-10).unwrap();
        assert!((r - 10.0).abs() < 1e-7);
    }

    #[test]
    fn solve_increasing_reports_saturated_bracket() {
        // f saturates below the target: expansion can never bracket it.
        let err = solve_increasing(|x| x.min(1.0), 2.0, 0.0, 0.5, 1e-10).unwrap_err();
        assert!(matches!(err, SimError::NonConvergence { .. }), "{err}");
    }

    #[test]
    fn ensure_finite_guards() {
        assert_eq!(ensure_finite("x", 2.5).unwrap(), 2.5);
        assert!(ensure_finite("x", f64::INFINITY).is_err());
        assert!(ensure_finite("x", f64::NAN).is_err());
        assert_eq!(ensure_finite_nonneg("x", 0.0).unwrap(), 0.0);
        assert!(ensure_finite_nonneg("x", -1.0).is_err());
        assert!(ensure_finite_nonneg("x", f64::NEG_INFINITY).is_err());
    }

    #[test]
    fn kahan_beats_naive_on_small_terms() {
        let mut k = KahanSum::new();
        k.add(1.0);
        for _ in 0..10_000_000 {
            k.add(1e-16);
        }
        // Naive summation would stay at exactly 1.0.
        assert!((k.value() - (1.0 + 1e-9)).abs() < 1e-12);
    }
}
