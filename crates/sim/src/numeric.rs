//! Small numerical utilities shared across the workspace.
//!
//! Everything in the simulator is driven by closed forms, but root finding is
//! still needed in a few places (completion-crossing detection inside the
//! numerically-integrated non-uniform algorithm, horizon solving in the
//! offline optimum) and the tests lean heavily on tolerance helpers.

/// Relative difference `|a - b| / max(|a|, |b|, 1)`.
///
/// The `1` floor makes the measure behave like an absolute difference near
/// zero, which is what the invariant tests want (energies and flow-times of
/// interest are O(1) or larger).
#[must_use]
pub fn rel_diff(a: f64, b: f64) -> f64 {
    (a - b).abs() / (a.abs().max(b.abs())).max(1.0)
}

/// True when `a` and `b` agree to relative tolerance `rtol` (with the same
/// near-zero floor as [`rel_diff`]).
#[must_use]
pub fn approx_eq(a: f64, b: f64, rtol: f64) -> bool {
    rel_diff(a, b) <= rtol
}

/// Bisection root finder for a continuous function with a sign change on
/// `[lo, hi]`.
///
/// Returns the midpoint of the final bracket. Panics if the initial bracket
/// does not straddle a root (both endpoints strictly the same sign), because
/// every call site constructs the bracket from a monotonicity argument and a
/// violation means a logic error, not a data error.
#[must_use]
pub fn bisect(mut f: impl FnMut(f64) -> f64, mut lo: f64, mut hi: f64, tol: f64) -> f64 {
    let flo = f(lo);
    let fhi = f(hi);
    if flo == 0.0 {
        return lo;
    }
    if fhi == 0.0 {
        return hi;
    }
    assert!(
        flo.signum() != fhi.signum(),
        "bisect: no sign change on [{lo}, {hi}] (f = {flo}, {fhi})"
    );
    // 200 iterations halve the bracket far past f64 resolution for any sane
    // initial bracket; the tol check below usually exits much earlier.
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if hi - lo <= tol {
            return mid;
        }
        let fmid = f(mid);
        if fmid == 0.0 {
            return mid;
        }
        if fmid.signum() == flo.signum() {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Monotone-increasing root finder: find `x >= lo` with `f(x) = target`,
/// where `f` is nondecreasing and unbounded. Expands the bracket
/// geometrically from `hint`, then bisects.
#[must_use]
pub fn solve_increasing(mut f: impl FnMut(f64) -> f64, target: f64, lo: f64, hint: f64, tol: f64) -> f64 {
    debug_assert!(hint > lo);
    let mut hi = hint;
    let mut guard = 0;
    while f(hi) < target {
        hi = lo + (hi - lo) * 2.0;
        guard += 1;
        assert!(guard < 200, "solve_increasing: failed to bracket target {target}");
    }
    bisect(|x| f(x) - target, lo, hi, tol)
}

/// Kahan compensated summation, used where many small accruals are summed
/// over long horizons (objective accumulation in the step-based integrator).
#[derive(Debug, Clone, Copy, Default)]
pub struct KahanSum {
    sum: f64,
    carry: f64,
}

impl KahanSum {
    /// A fresh zero accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one term.
    pub fn add(&mut self, x: f64) {
        let y = x - self.carry;
        let t = self.sum + y;
        self.carry = (t - self.sum) - y;
        self.sum = t;
    }

    /// Current total.
    #[must_use]
    pub fn value(&self) -> f64 {
        self.sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rel_diff_basics() {
        assert_eq!(rel_diff(1.0, 1.0), 0.0);
        assert!(rel_diff(100.0, 101.0) < 0.011);
        // Near-zero floor: behaves like absolute difference.
        assert!(rel_diff(1e-12, 0.0) < 1e-11);
    }

    #[test]
    fn approx_eq_tolerances() {
        assert!(approx_eq(1.0, 1.0 + 1e-10, 1e-9));
        assert!(!approx_eq(1.0, 1.1, 1e-3));
    }

    #[test]
    fn bisect_finds_sqrt2() {
        let r = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-12);
        assert!((r - std::f64::consts::SQRT_2).abs() < 1e-10);
    }

    #[test]
    fn bisect_exact_endpoint() {
        assert_eq!(bisect(|x| x, 0.0, 1.0, 1e-12), 0.0);
        assert_eq!(bisect(|x| x - 1.0, 0.0, 1.0, 1e-12), 1.0);
    }

    #[test]
    #[should_panic(expected = "no sign change")]
    fn bisect_rejects_bad_bracket() {
        let _ = bisect(|x| x + 10.0, 0.0, 1.0, 1e-9);
    }

    #[test]
    fn solve_increasing_expands_bracket() {
        // f(x) = x^3 on [0, inf); target far beyond the hint.
        let r = solve_increasing(|x| x * x * x, 1000.0, 0.0, 0.5, 1e-10);
        assert!((r - 10.0).abs() < 1e-7);
    }

    #[test]
    fn kahan_beats_naive_on_small_terms() {
        let mut k = KahanSum::new();
        k.add(1.0);
        for _ in 0..10_000_000 {
            k.add(1e-16);
        }
        // Naive summation would stay at exactly 1.0.
        assert!((k.value() - (1.0 + 1e-9)).abs() < 1e-12);
    }
}
