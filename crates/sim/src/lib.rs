//! # ncss-sim — speed-scaling simulation substrate
//!
//! Continuous-time substrate for the SPAA 2015 paper *"Speed Scaling in the
//! Non-clairvoyant Model"* (Azar, Devanur, Huang, Panigrahi). This crate
//! knows nothing about specific scheduling algorithms; it provides:
//!
//! * [`job::Job`] / [`job::Instance`] — the problem input model,
//! * [`power::PowerLaw`] — the power function `P(s) = s^α`,
//! * [`kernel`] — exact closed-form evolution of the paper's power curves,
//! * [`schedule::Schedule`] — piecewise-analytic machine schedules,
//! * [`objective`] — independent evaluation of energy and flow-times,
//! * [`profile`] — measure-preserving speed-profile comparison (Lemma 6),
//! * [`numeric`] — root finding and tolerance helpers,
//! * [`arena`] / [`spill`] — flat SoA stores backing the streaming core
//!   (DESIGN.md §9): O(active jobs) resident state under unbounded streams.
//!
//! The algorithms themselves (clairvoyant Algorithm C, non-clairvoyant
//! Algorithm NC, the fractional-to-integral reduction, parallel-machine
//! variants) live in `ncss-core` and `ncss-multi` on top of this crate.

#![deny(missing_docs)]
// `!(x > 1.0)`-style validation is deliberate: unlike `x <= 1.0`, it also
// rejects NaN, which is exactly what input validation wants.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod arena;
pub mod error;
pub mod generic;
pub mod job;
pub mod kernel;
pub mod numeric;
pub mod objective;
pub mod power;
pub mod profile;
pub mod schedule;
pub mod spill;
pub mod validate;

pub use arena::{ArenaSnapshot, JobArena};
pub use error::{SimError, SimResult};
pub use spill::{SpillRing, SpillSnapshot};
pub use job::{Instance, Job, JobId};
pub use objective::{evaluate, Evaluated, Objective, PerJob};
pub use power::{PowKernel, PowerLaw};
pub use schedule::{Schedule, ScheduleBuilder, Segment, SegmentIndex, SpeedLaw};
