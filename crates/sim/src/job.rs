//! Jobs and problem instances.
//!
//! A job has a release time, a processing **volume**, and a **density** ρ;
//! its weight is `W = ρ · V`. In the non-clairvoyant model the density is
//! public at release while the volume is revealed only on completion — the
//! types here carry the ground truth, and `ncss-core`'s driver is what
//! restricts algorithm visibility.

use crate::error::{SimError, SimResult};

/// Identifier of a job: its index in the owning [`Instance`].
pub type JobId = usize;

/// A single job of the flow-time-plus-energy scheduling problem.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Job {
    /// Release (arrival) time `r ≥ 0`.
    pub release: f64,
    /// Processing volume `V > 0` (unknown to non-clairvoyant algorithms).
    pub volume: f64,
    /// Density `ρ > 0` (known at release; weight = ρ·V).
    pub density: f64,
}

impl Job {
    /// Convenience constructor.
    #[must_use]
    pub fn new(release: f64, volume: f64, density: f64) -> Self {
        Self { release, volume, density }
    }

    /// A unit-density job, the common case of Section 3.
    #[must_use]
    pub fn unit_density(release: f64, volume: f64) -> Self {
        Self::new(release, volume, 1.0)
    }

    /// Weight `W = ρ · V`.
    #[must_use]
    pub fn weight(&self) -> f64 {
        self.density * self.volume
    }

    /// Validate the job's fields, reporting it as `index` on failure.
    ///
    /// [`Instance::new`] runs this on every job; streaming consumers that
    /// never build an `Instance` (the `ncss-core` streaming module, the CLI
    /// `stream` command) call it per arrival instead.
    ///
    /// # Examples
    ///
    /// ```
    /// use ncss_sim::Job;
    /// assert!(Job::new(0.0, 1.0, 2.0).validated(0).is_ok());
    /// assert!(Job::new(0.0, -1.0, 2.0).validated(7).is_err());
    /// ```
    pub fn validated(&self, index: usize) -> SimResult<()> {
        self.validate(index)
    }

    fn validate(&self, index: usize) -> SimResult<()> {
        let bad = |reason| Err(SimError::InvalidJob { index, reason });
        if !self.release.is_finite() || self.release < 0.0 {
            return bad("release must be finite and non-negative");
        }
        if !self.volume.is_finite() || self.volume <= 0.0 {
            return bad("volume must be finite and positive");
        }
        if !self.density.is_finite() || self.density <= 0.0 {
            return bad("density must be finite and positive");
        }
        Ok(())
    }
}

/// An instance: a set of jobs, stored sorted by `(release, id)`.
///
/// [`JobId`]s refer to positions in the *sorted* order, so ids are stable
/// once the instance is built. The paper assumes w.l.o.g. distinct release
/// times; we instead break ties deterministically by id everywhere.
///
/// # Examples
///
/// ```
/// use ncss_sim::{Instance, Job};
///
/// let inst = Instance::new(vec![
///     Job::unit_density(1.0, 2.0),   // arrives second...
///     Job::new(0.0, 4.0, 0.5),       // ...but this one sorts first
/// ]).unwrap();
/// assert_eq!(inst.job(0).release, 0.0);
/// assert_eq!(inst.total_weight(), 2.0 + 2.0); // ρ·V summed
/// assert!(!inst.is_uniform_density());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Instance {
    jobs: Vec<Job>,
}

impl Instance {
    /// Build an instance, sorting jobs by release time (stable, so equal
    /// releases keep their given order) and validating every job.
    pub fn new(mut jobs: Vec<Job>) -> SimResult<Self> {
        // total_cmp keeps the sort panic-free even when a release is NaN;
        // validation below then rejects the NaN with a structured error.
        jobs.sort_by(|a, b| a.release.total_cmp(&b.release));
        for (i, j) in jobs.iter().enumerate() {
            j.validate(i)?;
        }
        Ok(Self { jobs })
    }

    /// A single-job instance.
    pub fn single(job: Job) -> SimResult<Self> {
        Self::new(vec![job])
    }

    /// Number of jobs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True when the instance has no jobs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// The jobs in release order.
    #[must_use]
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Job by id.
    #[must_use]
    pub fn job(&self, id: JobId) -> &Job {
        &self.jobs[id]
    }

    /// Total weight `Σ ρ_j V_j`.
    #[must_use]
    pub fn total_weight(&self) -> f64 {
        self.jobs.iter().map(Job::weight).sum()
    }

    /// Total volume `Σ V_j`.
    #[must_use]
    pub fn total_volume(&self) -> f64 {
        self.jobs.iter().map(|j| j.volume).sum()
    }

    /// True when all jobs share one density (to relative tolerance 1e-12).
    #[must_use]
    pub fn is_uniform_density(&self) -> bool {
        match self.jobs.first() {
            None => true,
            Some(first) => self
                .jobs
                .iter()
                .all(|j| (j.density - first.density).abs() <= 1e-12 * first.density.abs()),
        }
    }

    /// The common density, if uniform.
    #[must_use]
    pub fn uniform_density(&self) -> Option<f64> {
        if self.is_uniform_density() {
            self.jobs.first().map(|j| j.density)
        } else {
            None
        }
    }

    /// The sub-instance of jobs released strictly before `t`, with ids
    /// preserved via the returned mapping (new id -> original id).
    ///
    /// This is the "prefix instance" Algorithm NC simulates Algorithm C on:
    /// by the time NC starts a job released at `t`, all strictly earlier
    /// jobs are complete and their volumes known.
    #[must_use]
    pub fn prefix_before(&self, t: f64) -> (Instance, Vec<JobId>) {
        let mut jobs = Vec::new();
        let mut ids = Vec::new();
        for (id, j) in self.jobs.iter().enumerate() {
            if j.release < t {
                jobs.push(*j);
                ids.push(id);
            }
        }
        (Instance { jobs }, ids)
    }

    /// Returns a copy with every density replaced by
    /// `β^floor(log_β ρ)` — the paper's Section 4 rounding of densities
    /// down to integer powers of `β > 1`.
    pub fn with_rounded_densities(&self, beta: f64) -> SimResult<Instance> {
        if !(beta.is_finite() && beta > 1.0) {
            return Err(SimError::InvalidInstance { reason: "rounding base must be > 1" });
        }
        let jobs = self
            .jobs
            .iter()
            .map(|j| {
                let k = j.density.ln() / beta.ln();
                // Guard against 3.9999999 flooring to 3 when ρ is an exact power.
                let k = (k + 1e-12).floor();
                Job { density: beta.powf(k), ..*j }
            })
            .collect();
        Ok(Self { jobs })
    }

    /// Latest release time (0 for empty instances).
    #[must_use]
    pub fn last_release(&self) -> f64 {
        self.jobs.last().map_or(0.0, |j| j.release)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jobs_sorted_by_release() {
        let inst = Instance::new(vec![
            Job::unit_density(3.0, 1.0),
            Job::unit_density(1.0, 2.0),
            Job::unit_density(2.0, 3.0),
        ])
        .unwrap();
        let releases: Vec<f64> = inst.jobs().iter().map(|j| j.release).collect();
        assert_eq!(releases, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn validation_rejects_bad_jobs() {
        assert!(Instance::new(vec![Job::new(-1.0, 1.0, 1.0)]).is_err());
        assert!(Instance::new(vec![Job::new(0.0, 0.0, 1.0)]).is_err());
        assert!(Instance::new(vec![Job::new(0.0, 1.0, -2.0)]).is_err());
        assert!(Instance::new(vec![Job::new(f64::NAN, 1.0, 1.0)]).is_err());
        // NaN releases must not panic the sort either (multi-job path).
        assert!(Instance::new(vec![
            Job::unit_density(1.0, 1.0),
            Job::new(f64::NAN, 1.0, 1.0),
            Job::unit_density(0.0, 1.0),
        ])
        .is_err());
    }

    #[test]
    fn weights_and_totals() {
        let inst = Instance::new(vec![Job::new(0.0, 2.0, 3.0), Job::new(1.0, 4.0, 0.5)]).unwrap();
        assert_eq!(inst.job(0).weight(), 6.0);
        assert_eq!(inst.total_weight(), 8.0);
        assert_eq!(inst.total_volume(), 6.0);
    }

    #[test]
    fn uniform_density_detection() {
        let u = Instance::new(vec![Job::unit_density(0.0, 1.0), Job::unit_density(1.0, 2.0)]).unwrap();
        assert!(u.is_uniform_density());
        assert_eq!(u.uniform_density(), Some(1.0));
        let m = Instance::new(vec![Job::new(0.0, 1.0, 1.0), Job::new(1.0, 1.0, 2.0)]).unwrap();
        assert!(!m.is_uniform_density());
        assert_eq!(m.uniform_density(), None);
    }

    #[test]
    fn prefix_before_strict() {
        let inst = Instance::new(vec![
            Job::unit_density(0.0, 1.0),
            Job::unit_density(1.0, 1.0),
            Job::unit_density(2.0, 1.0),
        ])
        .unwrap();
        let (p, ids) = inst.prefix_before(1.0);
        assert_eq!(p.len(), 1);
        assert_eq!(ids, vec![0]);
        let (p, ids) = inst.prefix_before(2.5);
        assert_eq!(p.len(), 3);
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn density_rounding_powers_of_beta() {
        let inst = Instance::new(vec![
            Job::new(0.0, 1.0, 1.0),
            Job::new(0.0, 1.0, 7.0),
            Job::new(0.0, 1.0, 25.0),
            Job::new(0.0, 1.0, 0.3),
        ])
        .unwrap();
        let r = inst.with_rounded_densities(5.0).unwrap();
        let d: Vec<f64> = r.jobs().iter().map(|j| j.density).collect();
        // 1 -> 5^0, 7 -> 5^1, 25 -> 5^2, 0.3 -> 5^{-1}
        assert!((d[0] - 1.0).abs() < 1e-12);
        assert!((d[1] - 5.0).abs() < 1e-12);
        assert!((d[2] - 25.0).abs() < 1e-9);
        assert!((d[3] - 0.2).abs() < 1e-12);
    }

    #[test]
    fn density_rounding_exact_power_stays_put() {
        let inst = Instance::new(vec![Job::new(0.0, 1.0, 125.0)]).unwrap();
        let r = inst.with_rounded_densities(5.0).unwrap();
        assert!((r.job(0).density - 125.0).abs() < 1e-9);
    }

    #[test]
    fn rounding_rejects_bad_base() {
        let inst = Instance::new(vec![Job::unit_density(0.0, 1.0)]).unwrap();
        assert!(inst.with_rounded_densities(1.0).is_err());
        assert!(inst.with_rounded_densities(f64::NAN).is_err());
    }

    #[test]
    fn equal_release_ties_keep_input_order() {
        let a = Job::new(1.0, 1.0, 1.0);
        let b = Job::new(1.0, 2.0, 1.0);
        let inst = Instance::new(vec![a, b]).unwrap();
        assert_eq!(inst.job(0).volume, 1.0);
        assert_eq!(inst.job(1).volume, 2.0);
    }
}
