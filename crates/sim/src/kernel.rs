//! Closed-form evolution kernels for power-law speed scaling.
//!
//! Both algorithms in the paper set the machine's power equal to a weight
//! quantity `X(t)` that changes at rate `±ρ·s(t)` with `s = X^{1/α}`:
//!
//! * **Algorithm C** (clairvoyant): power = total *remaining* weight `W`,
//!   which decays: `dW/dt = −ρ W^{1/α}`, so `W^β` is linear in `t` with
//!   slope `−ρβ`, where `β = 1 − 1/α` (this is Lemma 2 of the paper).
//! * **Algorithm NC** (non-clairvoyant, uniform density): power = base +
//!   *processed* weight `U`, which grows: `dU/dt = +ρ U^{1/α}`, so `U^β` is
//!   linear with slope `+ρβ` — the clairvoyant power curve run in reverse
//!   (Figure 1b of the paper).
//!
//! These kernels give exact (machine-precision) values for the state, the
//! energy `∫P dt`, the processed volume `∫s dt`, and the *integral of the
//! processed volume* (needed for fractional flow-time accounting), plus the
//! inverse maps used for event scheduling. The ODE `dU/dt = U^{1/α}` has a
//! non-unique solution through `U = 0`; the closed form selects the
//! non-trivial branch, which is exactly the paper's power curve starting at
//! zero — a step-based integrator would get stuck at the fixed point, which
//! is why the kernels exist.

use crate::power::PowerLaw;

/// Everything a streaming event loop needs to know about advancing a
/// [`DecayKernel`] by `τ`, computed in one pass.
///
/// The fields are **bitwise identical** to calling [`DecayKernel::weight_at`],
/// [`DecayKernel::energy`], [`DecayKernel::volume`], and
/// [`DecayKernel::volume_integral`] separately — [`DecayKernel::step`] just
/// evaluates the shared sub-expressions (`w0^β`, `W(τ)`, the energy) once
/// instead of up to four times, which is what makes it the hot-path entry
/// point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecayStep {
    /// Remaining weight at the end of the step, `W(τ)` (clamped at 0).
    pub w_end: f64,
    /// Energy consumed over the step, `∫₀^τ W dt`.
    pub energy: f64,
    /// Volume of the in-service job processed over the step.
    pub volume: f64,
    /// `∫₀^τ volume(x) dx`, for fractional flow-time accrual.
    pub volume_integral: f64,
}

/// The growth-side mirror of [`DecayStep`], produced by
/// [`GrowthKernel::step`]. Same bitwise contract: each field equals the
/// corresponding individual method call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GrowthStep {
    /// Power level at the end of the step, `u(τ)`.
    pub u_end: f64,
    /// Energy consumed over the step, `∫₀^τ u dt`.
    pub energy: f64,
    /// Volume processed over the step.
    pub volume: f64,
    /// `∫₀^τ volume(x) dx`.
    pub volume_integral: f64,
}

/// Outcome of [`DecayKernel::serve`]: one planned service interval, either
/// running to the job's completion or truncated at the caller's horizon.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecayServe {
    /// Duration actually served (`min(time-to-completion, dt)`).
    pub tau: f64,
    /// True when the job's remaining volume drained within `dt`.
    pub completes: bool,
    /// The fused step quantities over `tau`.
    pub step: DecayStep,
}

/// Outcome of [`GrowthKernel::serve_volume`]: the interval that processes a
/// fixed volume (a growth curve always completes it in finite time).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GrowthServe {
    /// Duration of the interval.
    pub tau: f64,
    /// The fused step quantities over `tau`.
    pub step: GrowthStep,
}

/// Decaying kernel: Algorithm C processing a job of density `rho` while the
/// total remaining active weight is `w0` at local time 0.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecayKernel {
    /// Power function.
    pub law: PowerLaw,
    /// Weight at local time zero (must be > 0; a zero-weight machine idles).
    pub w0: f64,
    /// Density of the job being processed.
    pub rho: f64,
}

impl DecayKernel {
    /// Remaining weight after `tau` time units: `(w0^β − ρβτ)^{1/β}`,
    /// clamped at zero (the curve reaches zero in finite time).
    #[must_use]
    #[inline]
    pub fn weight_at(&self, tau: f64) -> f64 {
        let x = self.law.pow_beta(self.w0) - self.rho * self.law.beta() * tau;
        if x <= 0.0 {
            0.0
        } else {
            self.law.root_beta(x)
        }
    }

    /// Machine speed after `tau`: `W(τ)^{1/α}` (power = remaining weight).
    #[must_use]
    pub fn speed_at(&self, tau: f64) -> f64 {
        self.law.speed_for_power(self.weight_at(tau))
    }

    /// Local time at which the remaining weight reaches `w_target ≤ w0`.
    #[must_use]
    pub fn time_to_weight(&self, w_target: f64) -> f64 {
        debug_assert!(w_target <= self.w0 + 1e-12 * self.w0.abs());
        debug_assert!(w_target >= 0.0);
        (self.law.pow_beta(self.w0) - self.law.pow_beta(w_target)) / (self.rho * self.law.beta())
    }

    /// Time for the whole weight to drain to zero.
    #[must_use]
    pub fn time_to_empty(&self) -> f64 {
        self.time_to_weight(0.0)
    }

    /// Energy consumed in `[0, τ]`. Since power = weight,
    /// `∫P dt = ∫W dt = (w0^{1+β} − W(τ)^{1+β}) / (ρ(1+β))`.
    #[must_use]
    pub fn energy(&self, tau: f64) -> f64 {
        self.energy_to_weight(self.weight_at(tau))
    }

    /// Energy consumed draining from `w0` down to `w_end` (a `weight_at`
    /// value): the shared body of [`Self::energy`] and [`Self::step`].
    #[inline]
    fn energy_to_weight(&self, w_end: f64) -> f64 {
        (self.law.pow_one_plus_beta(self.w0) - self.law.pow_one_plus_beta(w_end))
            / (self.rho * self.law.one_plus_beta())
    }

    /// Volume of the processed job completed in `[0, τ]`: all weight drained
    /// belongs to the processed job, so `vol = (w0 − W(τ)) / ρ`.
    #[must_use]
    pub fn volume(&self, tau: f64) -> f64 {
        (self.w0 - self.weight_at(tau)) / self.rho
    }

    /// Local time at which the processed job has received `v` volume.
    #[must_use]
    pub fn time_to_volume(&self, v: f64) -> f64 {
        self.time_to_weight(self.w0 - self.rho * v)
    }

    /// `∫₀^τ volume(x) dx`, the time-integral of the processed volume (used
    /// for exact fractional flow-time accrual of the in-service job).
    #[must_use]
    pub fn volume_integral(&self, tau: f64) -> f64 {
        (self.w0 * tau - self.energy(tau)) / self.rho
    }

    /// Time spent in `[0, τ]` with speed at least `x` (speed is decreasing).
    #[must_use]
    pub fn time_with_speed_at_least(&self, x: f64, tau: f64) -> f64 {
        let w_for_x = self.law.power(x);
        if w_for_x >= self.w0 {
            return 0.0;
        }
        self.time_to_weight(w_for_x.max(self.weight_at(tau))).min(tau)
    }

    /// Advance the kernel by `tau` in one fused pass.
    ///
    /// Returns the same values as [`Self::weight_at`], [`Self::energy`],
    /// [`Self::volume`], and [`Self::volume_integral`] at `tau` — **bitwise**
    /// — but evaluates `w0^β`, the end weight, and the energy once each
    /// instead of re-deriving them per quantity (4 power-kernel calls total
    /// versus 12 for the separate methods). The streaming cores call this
    /// once per service interval.
    #[must_use]
    #[inline]
    pub fn step(&self, tau: f64) -> DecayStep {
        let w_end = self.weight_at(tau);
        let energy = self.energy_to_weight(w_end);
        DecayStep {
            w_end,
            energy,
            volume: (self.w0 - w_end) / self.rho,
            volume_integral: (self.w0 * tau - energy) / self.rho,
        }
    }

    /// Plan serving `rem` volume of the in-service job with at most `dt`
    /// time available, in one fused pass — the event loop's sole kernel
    /// entry point for Algorithm C.
    ///
    /// This is cheaper than `time_to_volume` followed by [`Self::step`]
    /// because it exploits two identities:
    ///
    /// * the end weight on completion is **exact**: `W = w0 − ρ·rem` (no
    ///   `(·)^{1/β}` inversion of the linearized curve is ever needed);
    /// * `x^{1+β} = x · x^β`, so once `w0^β` and `W(τ)^β` are in hand the
    ///   energy needs no further power-kernel call.
    ///
    /// Per event that's 2 `pow_beta` calls when the job completes and
    /// 2 `pow_beta` + 1 `root_beta` when it is truncated at `dt`, versus 6+
    /// through the individual methods. The completing branch also makes
    /// `step.volume == rem` exactly, so callers can retire the job without
    /// a residual-volume epsilon.
    ///
    /// `rem` must satisfy `ρ·rem ≤ w0` up to accumulated rounding (the
    /// in-service job's weight is part of `w0`); small negative targets
    /// from drift are clamped to 0.
    #[must_use]
    #[inline]
    pub fn serve(&self, rem: f64, dt: f64) -> DecayServe {
        let wb0 = self.law.pow_beta(self.w0);
        let w_target = (self.w0 - self.rho * rem).max(0.0);
        let wbt = self.law.pow_beta(w_target);
        let rho_beta = self.rho * self.law.beta();
        let tau_c = (wb0 - wbt) / rho_beta;
        let inv_e = self.rho * self.law.one_plus_beta();
        if tau_c <= dt {
            let energy = (self.w0 * wb0 - w_target * wbt) / inv_e;
            DecayServe {
                tau: tau_c,
                completes: true,
                step: DecayStep {
                    w_end: w_target,
                    energy,
                    volume: rem,
                    volume_integral: (self.w0 * tau_c - energy) / self.rho,
                },
            }
        } else {
            // x = W(dt)^β on the linearized curve; reuse it for the energy
            // instead of re-deriving w_end^β. Overflowed inputs make x NaN
            // (inf − inf); keep propagating NaN so the caller's numeric
            // guard sees it, rather than feeding it to the kernel chains.
            let x = wb0 - rho_beta * dt;
            let w_end = if x > 0.0 {
                self.law.root_beta(x)
            } else if x.is_nan() {
                f64::NAN
            } else {
                0.0
            };
            let energy = (self.w0 * wb0 - w_end * x) / inv_e;
            DecayServe {
                tau: dt,
                completes: false,
                step: DecayStep {
                    w_end,
                    energy,
                    volume: (self.w0 - w_end) / self.rho,
                    volume_integral: (self.w0 * dt - energy) / self.rho,
                },
            }
        }
    }
}

/// Growing kernel: Algorithm NC processing a job of density `rho` with power
/// equal to `u(t) = base + processed weight`, starting from `u0` at local
/// time 0 (possibly `u0 = 0`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GrowthKernel {
    /// Power function.
    pub law: PowerLaw,
    /// Power/weight level at local time zero (`≥ 0`).
    pub u0: f64,
    /// Density of the job being processed.
    pub rho: f64,
}

impl GrowthKernel {
    /// Power level after `tau`: `(u0^β + ρβτ)^{1/β}`.
    #[must_use]
    #[inline]
    pub fn u_at(&self, tau: f64) -> f64 {
        self.law
            .root_beta(self.law.pow_beta(self.u0) + self.rho * self.law.beta() * tau)
    }

    /// Machine speed after `tau`: `u(τ)^{1/α}`.
    #[must_use]
    pub fn speed_at(&self, tau: f64) -> f64 {
        self.law.speed_for_power(self.u_at(tau))
    }

    /// Local time at which the power level reaches `u_target ≥ u0`.
    #[must_use]
    pub fn time_to_u(&self, u_target: f64) -> f64 {
        debug_assert!(u_target + 1e-12 * u_target.abs() >= self.u0);
        (self.law.pow_beta(u_target) - self.law.pow_beta(self.u0)) / (self.rho * self.law.beta())
    }

    /// Energy consumed in `[0, τ]`: `(u(τ)^{1+β} − u0^{1+β}) / (ρ(1+β))`.
    #[must_use]
    pub fn energy(&self, tau: f64) -> f64 {
        self.energy_to_u(self.u_at(tau))
    }

    /// Energy consumed growing from `u0` up to `u_end` (a `u_at` value):
    /// the shared body of [`Self::energy`] and [`Self::step`].
    #[inline]
    fn energy_to_u(&self, u_end: f64) -> f64 {
        (self.law.pow_one_plus_beta(u_end) - self.law.pow_one_plus_beta(self.u0))
            / (self.rho * self.law.one_plus_beta())
    }

    /// Volume processed in `[0, τ]`: `(u(τ) − u0) / ρ`.
    #[must_use]
    pub fn volume(&self, tau: f64) -> f64 {
        (self.u_at(tau) - self.u0) / self.rho
    }

    /// Local time at which the processed job has received `v` volume.
    #[must_use]
    pub fn time_to_volume(&self, v: f64) -> f64 {
        self.time_to_u(self.u0 + self.rho * v)
    }

    /// `∫₀^τ volume(x) dx`.
    #[must_use]
    pub fn volume_integral(&self, tau: f64) -> f64 {
        (self.energy(tau) - self.u0 * tau) / self.rho
    }

    /// Time spent in `[0, τ]` with speed at least `x` (speed is increasing).
    #[must_use]
    pub fn time_with_speed_at_least(&self, x: f64, tau: f64) -> f64 {
        let u_for_x = self.law.power(x);
        let u_end = self.u_at(tau);
        if u_for_x <= self.u0 {
            return tau;
        }
        if u_for_x >= u_end {
            return 0.0;
        }
        tau - self.time_to_u(u_for_x)
    }

    /// Advance the kernel by `tau` in one fused pass — the growth-side
    /// mirror of [`DecayKernel::step`], with the same bitwise contract
    /// against the individual methods.
    #[must_use]
    #[inline]
    pub fn step(&self, tau: f64) -> GrowthStep {
        let u_end = self.u_at(tau);
        let energy = self.energy_to_u(u_end);
        GrowthStep {
            u_end,
            energy,
            volume: (u_end - self.u0) / self.rho,
            volume_integral: (energy - self.u0 * tau) / self.rho,
        }
    }

    /// Plan the interval that processes exactly `v` volume, in one fused
    /// pass — the event loop's sole kernel entry point for Algorithm NC
    /// (a growth curve always finishes a finite volume in finite time).
    ///
    /// Exploits the same identities as [`DecayKernel::serve`]: the end
    /// level is exact (`u_end = u0 + ρ·v`), and `x^{1+β} = x·x^β` turns the
    /// energy into a multiply once `u0^β` and `u_end^β` are known. Two
    /// `pow_beta` calls per offer, no `root_beta`, and `step.volume == v`
    /// exactly. Returns a non-finite `tau` only if the inputs overflow.
    #[must_use]
    #[inline]
    pub fn serve_volume(&self, v: f64) -> GrowthServe {
        let ub0 = self.law.pow_beta(self.u0);
        let u_end = self.u0 + self.rho * v;
        let ube = self.law.pow_beta(u_end);
        let tau = (ube - ub0) / (self.rho * self.law.beta());
        let energy = (u_end * ube - self.u0 * ub0) / (self.rho * self.law.one_plus_beta());
        GrowthServe {
            tau,
            step: GrowthStep {
                u_end,
                energy,
                volume: v,
                volume_integral: (energy - self.u0 * tau) / self.rho,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::numeric::approx_eq;

    fn law(alpha: f64) -> PowerLaw {
        PowerLaw::new(alpha).unwrap()
    }

    /// Numerically integrate `f` over `[0, tau]` with Simpson's rule.
    fn simpson(f: impl Fn(f64) -> f64, tau: f64, n: usize) -> f64 {
        let h = tau / n as f64;
        let mut s = f(0.0) + f(tau);
        for i in 1..n {
            let x = i as f64 * h;
            s += f(x) * if i % 2 == 1 { 4.0 } else { 2.0 };
        }
        s * h / 3.0
    }

    #[test]
    fn decay_ode_satisfied() {
        // dW/dt = -rho * W^{1/alpha}, checked by finite differences.
        let k = DecayKernel { law: law(3.0), w0: 8.0, rho: 1.5 };
        for &tau in &[0.0, 0.3, 1.0] {
            let h = 1e-6;
            let dw = (k.weight_at(tau + h) - k.weight_at(tau - h).max(0.0)) / (2.0 * h);
            let expect = -k.rho * k.weight_at(tau).powf(1.0 / 3.0);
            assert!(approx_eq(dw, expect, 1e-5), "tau = {tau}: {dw} vs {expect}");
        }
    }

    #[test]
    fn growth_ode_satisfied() {
        let k = GrowthKernel { law: law(2.5), u0: 0.7, rho: 2.0 };
        for &tau in &[0.0, 0.4, 2.0] {
            let h = 1e-6;
            let du = (k.u_at(tau + h) - k.u_at(tau - h)) / (2.0 * h);
            let expect = k.rho * k.u_at(tau).powf(1.0 / 2.5);
            assert!(approx_eq(du, expect, 1e-5));
        }
    }

    #[test]
    fn decay_energy_matches_numeric_integral() {
        let k = DecayKernel { law: law(3.0), w0: 5.0, rho: 1.0 };
        let tau = 1.7;
        let numeric = simpson(|x| k.law.power(k.speed_at(x)), tau, 20_000);
        assert!(approx_eq(k.energy(tau), numeric, 1e-8));
    }

    #[test]
    fn growth_energy_matches_numeric_integral() {
        let k = GrowthKernel { law: law(2.0), u0: 0.0, rho: 1.0 };
        let tau = 2.3;
        let numeric = simpson(|x| k.law.power(k.speed_at(x)), tau, 20_000);
        assert!(approx_eq(k.energy(tau), numeric, 1e-8));
    }

    #[test]
    fn decay_volume_matches_numeric_integral_of_speed() {
        let k = DecayKernel { law: law(2.2), w0: 3.0, rho: 0.7 };
        let tau = 0.9;
        let numeric = simpson(|x| k.speed_at(x), tau, 20_000);
        assert!(approx_eq(k.volume(tau), numeric, 1e-8));
    }

    #[test]
    fn growth_volume_matches_numeric_integral_of_speed() {
        let k = GrowthKernel { law: law(3.0), u0: 1.0, rho: 1.3 };
        let tau = 1.1;
        let numeric = simpson(|x| k.speed_at(x), tau, 20_000);
        assert!(approx_eq(k.volume(tau), numeric, 1e-8));
    }

    #[test]
    fn decay_inverse_maps_roundtrip() {
        let k = DecayKernel { law: law(3.0), w0: 4.0, rho: 2.0 };
        let tau = 0.5;
        let w = k.weight_at(tau);
        assert!(approx_eq(k.time_to_weight(w), tau, 1e-10));
        let v = k.volume(tau);
        assert!(approx_eq(k.time_to_volume(v), tau, 1e-10));
    }

    #[test]
    fn growth_inverse_maps_roundtrip() {
        let k = GrowthKernel { law: law(2.0), u0: 0.3, rho: 0.5 };
        let tau = 2.0;
        assert!(approx_eq(k.time_to_u(k.u_at(tau)), tau, 1e-10));
        assert!(approx_eq(k.time_to_volume(k.volume(tau)), tau, 1e-10));
    }

    #[test]
    fn growth_from_zero_escapes_fixed_point() {
        // The non-trivial branch of du/dt = u^{1/alpha} through u(0) = 0.
        let k = GrowthKernel { law: law(3.0), u0: 0.0, rho: 1.0 };
        assert_eq!(k.u_at(0.0), 0.0);
        assert!(k.u_at(0.1) > 0.0);
        // Closed form: u = (beta * tau)^{1/beta}, beta = 2/3.
        let tau = 1.5;
        let base: f64 = 2.0 / 3.0 * tau;
        let expect = base.powf(1.5);
        assert!(approx_eq(k.u_at(tau), expect, 1e-12));
    }

    #[test]
    fn decay_reaches_zero_in_finite_time_and_clamps() {
        let k = DecayKernel { law: law(2.0), w0: 1.0, rho: 1.0 };
        let t_empty = k.time_to_empty();
        // beta = 1/2: t = w0^{1/2} / (rho/2) = 2.
        assert!(approx_eq(t_empty, 2.0, 1e-12));
        assert_eq!(k.weight_at(t_empty + 1.0), 0.0);
        assert_eq!(k.speed_at(t_empty + 1.0), 0.0);
    }

    #[test]
    fn volume_integral_matches_numeric() {
        let kd = DecayKernel { law: law(3.0), w0: 6.0, rho: 2.0 };
        let tau = 0.8;
        let numeric = simpson(|x| kd.volume(x), tau, 20_000);
        assert!(approx_eq(kd.volume_integral(tau), numeric, 1e-8));

        let kg = GrowthKernel { law: law(3.0), u0: 0.4, rho: 2.0 };
        let numeric = simpson(|x| kg.volume(x), tau, 20_000);
        assert!(approx_eq(kg.volume_integral(tau), numeric, 1e-8));
    }

    #[test]
    fn reverse_symmetry_of_curves() {
        // Figure 1 of the paper: the NC power curve is the C power curve in
        // reverse. Running decay from W and growth from 0 for the same
        // duration must consume identical energy and volume.
        let alpha = 3.0;
        let w = 5.0;
        let kd = DecayKernel { law: law(alpha), w0: w, rho: 1.0 };
        let t = kd.time_to_empty();
        let kg = GrowthKernel { law: law(alpha), u0: 0.0, rho: 1.0 };
        assert!(approx_eq(kg.u_at(t), w, 1e-10));
        assert!(approx_eq(kg.energy(t), kd.energy(t), 1e-10));
        assert!(approx_eq(kg.volume(t), kd.volume(t), 1e-10));
        // Pointwise time reversal of the power level.
        for &x in &[0.1, 0.5, 0.9] {
            let tau = x * t;
            assert!(approx_eq(kg.u_at(tau), kd.weight_at(t - tau), 1e-9));
        }
    }

    #[test]
    fn lemma2_identities() {
        // Lemma 2: a single job of weight W, density rho completed by C in
        // time t satisfies rho (1 - 1/alpha) t = W^{1 - 1/alpha} and
        // W / t = (1 - 1/alpha) dW/dt (magnitudes at the start of the run).
        for &(alpha, rho, w) in &[(2.0, 1.0, 3.0), (3.0, 2.0, 10.0), (1.5, 0.5, 1.0)] {
            let k = DecayKernel { law: law(alpha), w0: w, rho };
            let t = k.time_to_empty();
            let beta = 1.0 - 1.0 / alpha;
            assert!(approx_eq(rho * beta * t, w.powf(beta), 1e-10));
            let dw_dt = rho * w.powf(1.0 / alpha); // |dW/dt| at time 0
            assert!(approx_eq(w / t, beta * dw_dt, 1e-10));
        }
    }

    #[test]
    fn fused_step_is_bitwise_equal_to_individual_methods() {
        // The streaming cores depend on step() being a pure fusion: every
        // field must be bit-identical to the corresponding method call,
        // under every kernel variant.
        for &alpha in &[1.5, 2.0, 2.5, 3.0, 4.0, 2.75, 7.3] {
            let l = law(alpha);
            for &tau in &[0.0, 0.3, 1.1, 5.0] {
                let kd = DecayKernel { law: l, w0: 6.0, rho: 1.3 };
                let s = kd.step(tau);
                assert_eq!(s.w_end.to_bits(), kd.weight_at(tau).to_bits(), "α={alpha}");
                assert_eq!(s.energy.to_bits(), kd.energy(tau).to_bits(), "α={alpha}");
                assert_eq!(s.volume.to_bits(), kd.volume(tau).to_bits(), "α={alpha}");
                assert_eq!(
                    s.volume_integral.to_bits(),
                    kd.volume_integral(tau).to_bits(),
                    "α={alpha}"
                );
                let kg = GrowthKernel { law: l, u0: 0.4, rho: 2.0 };
                let g = kg.step(tau);
                assert_eq!(g.u_end.to_bits(), kg.u_at(tau).to_bits(), "α={alpha}");
                assert_eq!(g.energy.to_bits(), kg.energy(tau).to_bits(), "α={alpha}");
                assert_eq!(g.volume.to_bits(), kg.volume(tau).to_bits(), "α={alpha}");
                assert_eq!(
                    g.volume_integral.to_bits(),
                    kg.volume_integral(tau).to_bits(),
                    "α={alpha}"
                );
            }
        }
    }

    #[test]
    fn serve_agrees_with_step_and_completes_exactly() {
        for &alpha in &[1.5, 2.0, 2.5, 3.0, 2.75, 7.3] {
            let l = law(alpha);
            let kd = DecayKernel { law: l, w0: 6.0, rho: 1.3 };
            // Truncated at the horizon: same numbers as step(dt).
            let rem = 4.0 / kd.rho; // more volume than a short dt can drain
            let sv = kd.serve(rem, 0.2);
            assert!(!sv.completes);
            assert_eq!(sv.tau, 0.2);
            let st = kd.step(0.2);
            assert!(approx_eq(sv.step.w_end, st.w_end, 1e-13), "α={alpha}");
            assert!(approx_eq(sv.step.energy, st.energy, 1e-13), "α={alpha}");
            assert!(approx_eq(sv.step.volume, st.volume, 1e-13), "α={alpha}");
            assert!(approx_eq(sv.step.volume_integral, st.volume_integral, 1e-13));

            // Completing: volume and end weight are exact, tau matches the
            // inverse map, energy matches the τ-parameterized form.
            let rem = 1.75;
            let sv = kd.serve(rem, f64::INFINITY);
            assert!(sv.completes);
            assert_eq!(sv.step.volume, rem, "completion volume is exact");
            assert_eq!(sv.step.w_end, kd.w0 - kd.rho * rem, "end weight is exact");
            assert!(approx_eq(sv.tau, kd.time_to_volume(rem), 1e-12), "α={alpha}");
            assert!(approx_eq(sv.step.energy, kd.energy(sv.tau), 1e-10), "α={alpha}");

            // Growth side: serve_volume vs time_to_volume + step.
            let kg = GrowthKernel { law: l, u0: 0.4, rho: 2.0 };
            let v = 1.3;
            let gs = kg.serve_volume(v);
            assert_eq!(gs.step.volume, v);
            assert_eq!(gs.step.u_end, kg.u0 + kg.rho * v, "end level is exact");
            assert!(approx_eq(gs.tau, kg.time_to_volume(v), 1e-12), "α={alpha}");
            let st = kg.step(gs.tau);
            assert!(approx_eq(gs.step.energy, st.energy, 1e-10), "α={alpha}");
            assert!(approx_eq(gs.step.volume_integral, st.volume_integral, 1e-10));
        }
    }

    #[test]
    fn serve_handles_horizon_edge_cases() {
        let kd = DecayKernel { law: law(3.0), w0: 2.0, rho: 1.0 };
        // dt = 0 with volume left: nothing happens.
        let sv = kd.serve(1.0, 0.0);
        assert!(!sv.completes);
        assert_eq!(sv.step.volume, 0.0);
        assert_eq!(sv.step.energy, 0.0);
        assert_eq!(sv.step.w_end, kd.w0);
        // rem = 0: completes instantly.
        let sv = kd.serve(0.0, 0.0);
        assert!(sv.completes);
        assert_eq!(sv.tau, 0.0);
        // Draining the whole weight (single-job case): w_end exactly 0.
        let sv = kd.serve(2.0, f64::INFINITY);
        assert!(sv.completes);
        assert_eq!(sv.step.w_end, 0.0);
        // Growth from the u = 0 fixed point still escapes.
        let kg = GrowthKernel { law: law(3.0), u0: 0.0, rho: 1.0 };
        let gs = kg.serve_volume(1.0);
        assert!(gs.tau.is_finite() && gs.tau > 0.0);
        assert!(approx_eq(gs.tau, kg.time_to_volume(1.0), 1e-12));
    }

    #[test]
    fn speed_level_sets() {
        let k = DecayKernel { law: law(2.0), w0: 4.0, rho: 1.0 };
        let tau = k.time_to_empty();
        // Speed starts at 2 and decays to 0; time with speed >= 0 is all of it.
        assert!(approx_eq(k.time_with_speed_at_least(0.0, tau), tau, 1e-12));
        assert_eq!(k.time_with_speed_at_least(2.5, tau), 0.0);
        let half = k.time_with_speed_at_least(1.0, tau);
        assert!(half > 0.0 && half < tau);
        // Growth mirror.
        let g = GrowthKernel { law: law(2.0), u0: 0.0, rho: 1.0 };
        let gh = g.time_with_speed_at_least(1.0, tau);
        assert!(approx_eq(gh, tau - half, 1e-10));
    }
}
