//! Flat arena-backed structure-of-arrays store for active jobs.
//!
//! The streaming scheduler core (ncss-core's `streaming` module) keeps only
//! the *active* jobs resident. This arena backs that set with parallel flat
//! `Vec`s — one per field — so the per-event accounting (`Σ ρ_i · R_i`
//! total-weight recompute, waiting-flow accrual) runs as tight loops over
//! contiguous slices instead of chasing a heap or a map.
//!
//! Slots are recycled through a free list, so the arena's footprint is
//! `O(peak active jobs)` no matter how many jobs stream through. Retired
//! slots are zeroed (`ρ = 0`, `R = 0`), which makes them exact no-ops in
//! the slice kernels: adding `0.0 · 0.0` to a non-negative accumulator
//! does not change a single bit, so the kernels can sweep the whole slice
//! without a liveness branch.
//!
//! # Examples
//!
//! ```
//! use ncss_sim::arena::JobArena;
//! use ncss_sim::Job;
//!
//! let mut arena = JobArena::new();
//! let a = arena.alloc(Job::new(0.0, 2.0, 1.0), 0);
//! let b = arena.alloc(Job::new(0.5, 1.0, 3.0), 1);
//! assert_eq!(arena.total_weight(), 2.0 + 3.0);
//!
//! arena.retire(a);
//! assert_eq!(arena.live(), 1);
//! assert_eq!(arena.total_weight(), 3.0); // retired slot contributes +0.0
//!
//! // The freed slot is reused: capacity tracks *peak* active jobs.
//! let c = arena.alloc(Job::new(1.0, 4.0, 1.0), 2);
//! assert_eq!(c, a);
//! assert_eq!(arena.capacity(), 2);
//! let _ = b;
//! ```

use crate::error::{SimError, SimResult};
use crate::job::{Job, JobId};

/// Weighted remaining volume `Σ ρ_i · R_i` over parallel slices.
///
/// This is the `W(t)` recompute the event loop performs after every event
/// (re-deriving from per-job remainders kills accumulation drift). Retired
/// slots hold `ρ = R = 0` and contribute an exact `+0.0`.
///
/// ```
/// use ncss_sim::arena::weighted_remaining;
/// assert_eq!(weighted_remaining(&[1.0, 3.0], &[2.0, 0.5]), 3.5);
/// ```
#[must_use]
pub fn weighted_remaining(density: &[f64], remaining: &[f64]) -> f64 {
    debug_assert_eq!(density.len(), remaining.len());
    let mut w = 0.0;
    for i in 0..density.len() {
        w += density[i] * remaining[i];
    }
    w
}

/// Accrue waiting fractional flow `ρ_i · R_i · τ` into `frac_flow` for every
/// slot except `in_service` (whose drain follows the evolution kernel, not a
/// constant remainder).
///
/// ```
/// use ncss_sim::arena::accrue_waiting_flow;
/// let mut frac = [0.0, 0.0];
/// accrue_waiting_flow(&[1.0, 2.0], &[3.0, 1.0], &mut frac, 0.5, 0);
/// assert_eq!(frac, [0.0, 1.0]); // slot 0 is in service and skipped
/// ```
pub fn accrue_waiting_flow(
    density: &[f64],
    remaining: &[f64],
    frac_flow: &mut [f64],
    tau: f64,
    in_service: usize,
) {
    debug_assert_eq!(density.len(), remaining.len());
    debug_assert_eq!(density.len(), frac_flow.len());
    for i in 0..density.len() {
        if i != in_service {
            frac_flow[i] += density[i] * remaining[i] * tau;
        }
    }
}

/// Structure-of-arrays store for the active-job working set.
///
/// See the [module docs](self) for the layout and recycling contract.
#[derive(Debug, Clone, Default)]
pub struct JobArena {
    release: Vec<f64>,
    volume: Vec<f64>,
    density: Vec<f64>,
    remaining: Vec<f64>,
    frac_flow: Vec<f64>,
    acc_t: Vec<f64>,
    id: Vec<JobId>,
    free: Vec<usize>,
    live: usize,
    peak_live: usize,
}

impl JobArena {
    /// An empty arena.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Place a job in a slot (recycling a retired one when available) and
    /// return the slot index. `id` is the caller's external [`JobId`].
    pub fn alloc(&mut self, job: Job, id: JobId) -> usize {
        let slot = match self.free.pop() {
            Some(slot) => {
                self.release[slot] = job.release;
                self.volume[slot] = job.volume;
                self.density[slot] = job.density;
                self.remaining[slot] = job.volume;
                self.frac_flow[slot] = 0.0;
                self.acc_t[slot] = job.release;
                self.id[slot] = id;
                slot
            }
            None => {
                self.release.push(job.release);
                self.volume.push(job.volume);
                self.density.push(job.density);
                self.remaining.push(job.volume);
                self.frac_flow.push(0.0);
                self.acc_t.push(job.release);
                self.id.push(id);
                self.release.len() - 1
            }
        };
        self.live += 1;
        self.peak_live = self.peak_live.max(self.live);
        slot
    }

    /// Retire a completed job: zero the slot (so slice kernels stay exact
    /// without a liveness mask) and push it onto the free list.
    pub fn retire(&mut self, slot: usize) {
        self.release[slot] = 0.0;
        self.volume[slot] = 0.0;
        self.density[slot] = 0.0;
        self.remaining[slot] = 0.0;
        self.frac_flow[slot] = 0.0;
        self.acc_t[slot] = 0.0;
        self.free.push(slot);
        self.live -= 1;
    }

    /// The job currently in `slot` (release/volume/density as allocated).
    #[must_use]
    pub fn job(&self, slot: usize) -> Job {
        Job::new(self.release[slot], self.volume[slot], self.density[slot])
    }

    /// External [`JobId`] of the job in `slot`.
    #[must_use]
    pub fn id(&self, slot: usize) -> JobId {
        self.id[slot]
    }

    /// Density of the job in `slot`.
    #[must_use]
    pub fn density(&self, slot: usize) -> f64 {
        self.density[slot]
    }

    /// Remaining volume of the job in `slot`.
    #[must_use]
    pub fn remaining(&self, slot: usize) -> f64 {
        self.remaining[slot]
    }

    /// Overwrite the remaining volume of the job in `slot`.
    pub fn set_remaining(&mut self, slot: usize, remaining: f64) {
        self.remaining[slot] = remaining;
    }

    /// Fractional flow accrued so far by the job in `slot`.
    #[must_use]
    pub fn frac_flow(&self, slot: usize) -> f64 {
        self.frac_flow[slot]
    }

    /// Add to the fractional flow of the job in `slot`.
    pub fn add_frac_flow(&mut self, slot: usize, delta: f64) {
        self.frac_flow[slot] += delta;
    }

    /// Total weight `Σ ρ_i · R_i` over all slots ([`weighted_remaining`]).
    #[must_use]
    pub fn total_weight(&self) -> f64 {
        weighted_remaining(&self.density, &self.remaining)
    }

    /// Accrue waiting flow over all slots except `in_service`
    /// ([`accrue_waiting_flow`]).
    pub fn accrue_waiting(&mut self, tau: f64, in_service: usize) {
        accrue_waiting_flow(&self.density, &self.remaining, &mut self.frac_flow, tau, in_service);
    }

    /// Settle the *deferred* waiting-flow accrual of one slot through `now`.
    ///
    /// The streaming core does not touch waiting jobs per event (that would
    /// be O(active) work each time); instead each slot remembers the time
    /// `acc_t` through which its fractional flow is already accounted, and
    /// the whole waiting stretch `ρ·R·(now − acc_t)` is added in **one
    /// multiply** when the job next enters service or completes. Because a
    /// waiting job's remainder `R` is constant over the stretch, the settled
    /// total equals the per-event accrual up to f64 associativity — and is
    /// typically *more* accurate, not less.
    pub fn settle_waiting(&mut self, slot: usize, now: f64) {
        self.frac_flow[slot] +=
            self.density[slot] * self.remaining[slot] * (now - self.acc_t[slot]);
        self.acc_t[slot] = now;
    }

    /// Mark the flow of `slot` as accounted through `now` without accruing
    /// (used at the end of a service interval, whose drain-side flow is
    /// added analytically by the kernel).
    pub fn set_accrued(&mut self, slot: usize, now: f64) {
        self.acc_t[slot] = now;
    }

    /// Time through which the flow of `slot` is already accounted.
    #[must_use]
    pub fn accrued_through(&self, slot: usize) -> f64 {
        self.acc_t[slot]
    }

    /// Number of live (allocated, not yet retired) jobs.
    #[must_use]
    pub fn live(&self) -> usize {
        self.live
    }

    /// High-water mark of simultaneously live jobs.
    #[must_use]
    pub fn peak_live(&self) -> usize {
        self.peak_live
    }

    /// Number of slots ever created — the arena's resident footprint, which
    /// equals [`Self::peak_live`] thanks to slot recycling.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.release.len()
    }

    /// Capture the complete arena state as plain data, for checkpointing.
    ///
    /// The snapshot is exact: every `f64` is carried bit-for-bit, the free
    /// list keeps its order, so [`JobArena::restore`] rebuilds an arena whose
    /// subsequent allocations and slice sweeps are bitwise identical to the
    /// original's.
    #[must_use]
    pub fn snapshot(&self) -> ArenaSnapshot {
        ArenaSnapshot {
            release: self.release.clone(),
            volume: self.volume.clone(),
            density: self.density.clone(),
            remaining: self.remaining.clone(),
            frac_flow: self.frac_flow.clone(),
            acc_t: self.acc_t.clone(),
            id: self.id.clone(),
            free: self.free.clone(),
            live: self.live,
            peak_live: self.peak_live,
        }
    }

    /// Rebuild an arena from a snapshot, validating its structure first.
    ///
    /// A snapshot decoded from an on-disk checkpoint may have been tampered
    /// with; this constructor refuses inconsistent shapes (mismatched column
    /// lengths, free-list entries out of range or duplicated, live counts
    /// that do not add up) with a structured error instead of panicking
    /// later inside a slice kernel.
    pub fn restore(snap: ArenaSnapshot) -> SimResult<Self> {
        let n = snap.release.len();
        let bad = |reason| Err(SimError::InvalidInstance { reason });
        if [
            snap.volume.len(),
            snap.density.len(),
            snap.remaining.len(),
            snap.frac_flow.len(),
            snap.acc_t.len(),
            snap.id.len(),
        ]
        .iter()
        .any(|&len| len != n)
        {
            return bad("arena snapshot: column lengths disagree");
        }
        let mut seen = vec![false; n];
        for &slot in &snap.free {
            if slot >= n {
                return bad("arena snapshot: free-list slot out of range");
            }
            if std::mem::replace(&mut seen[slot], true) {
                return bad("arena snapshot: free-list slot duplicated");
            }
        }
        if snap.live != n - snap.free.len() {
            return bad("arena snapshot: live count disagrees with free list");
        }
        if snap.peak_live < snap.live || snap.peak_live > n {
            return bad("arena snapshot: peak-live outside [live, capacity]");
        }
        Ok(Self {
            release: snap.release,
            volume: snap.volume,
            density: snap.density,
            remaining: snap.remaining,
            frac_flow: snap.frac_flow,
            acc_t: snap.acc_t,
            id: snap.id,
            free: snap.free,
            live: snap.live,
            peak_live: snap.peak_live,
        })
    }
}

/// Plain-data image of a [`JobArena`], produced by [`JobArena::snapshot`]
/// and consumed by [`JobArena::restore`]. Serialized into checkpoint frames
/// by `ncss-trace`.
#[derive(Debug, Clone, PartialEq)]
pub struct ArenaSnapshot {
    /// Per-slot release times.
    pub release: Vec<f64>,
    /// Per-slot total volumes.
    pub volume: Vec<f64>,
    /// Per-slot densities (0 for retired slots).
    pub density: Vec<f64>,
    /// Per-slot remaining volumes (0 for retired slots).
    pub remaining: Vec<f64>,
    /// Per-slot accrued fractional flow.
    pub frac_flow: Vec<f64>,
    /// Per-slot time through which flow is accounted (deferred accrual).
    pub acc_t: Vec<f64>,
    /// Per-slot external [`JobId`]s.
    pub id: Vec<JobId>,
    /// Free (retired, reusable) slots in pop order.
    pub free: Vec<usize>,
    /// Live slot count (`capacity - free.len()`).
    pub live: usize,
    /// High-water mark of simultaneously live slots.
    pub peak_live: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycles_slots_and_tracks_peak() {
        let mut a = JobArena::new();
        let s0 = a.alloc(Job::unit_density(0.0, 1.0), 0);
        let s1 = a.alloc(Job::unit_density(0.1, 2.0), 1);
        assert_eq!((s0, s1), (0, 1));
        a.retire(s0);
        let s2 = a.alloc(Job::unit_density(0.2, 3.0), 2);
        assert_eq!(s2, 0, "freed slot reused");
        assert_eq!(a.capacity(), 2);
        assert_eq!(a.peak_live(), 2);
        assert_eq!(a.id(s2), 2);
    }

    #[test]
    fn retired_slots_are_exact_noops() {
        let mut a = JobArena::new();
        let s0 = a.alloc(Job::new(0.0, 2.0, 3.0), 0);
        let s1 = a.alloc(Job::new(0.0, 1.0, 5.0), 1);
        let before = a.total_weight();
        assert_eq!(before, 3.0 * 2.0 + 5.0);
        a.retire(s1);
        assert_eq!(a.total_weight(), 6.0);
        a.accrue_waiting(1.0, usize::MAX); // no slot in service
        assert_eq!(a.frac_flow(s0), 6.0);
        assert_eq!(a.frac_flow(s1), 0.0, "retired slot accrues nothing");
    }

    #[test]
    fn snapshot_restore_round_trips_bitwise() {
        let mut a = JobArena::new();
        let s0 = a.alloc(Job::new(0.0, 2.0, 3.0), 0);
        let _s1 = a.alloc(Job::new(0.5, 1.0, 5.0), 1);
        a.retire(s0);
        a.alloc(Job::new(1.0, 0.25, 2.0), 2);
        a.set_remaining(1, 0.125);
        a.add_frac_flow(1, 0.75);
        let snap = a.snapshot();
        let b = JobArena::restore(snap.clone()).unwrap();
        assert_eq!(b.snapshot(), snap);
        assert_eq!(b.total_weight().to_bits(), a.total_weight().to_bits());
        assert_eq!(b.live(), a.live());
        assert_eq!(b.peak_live(), a.peak_live());
    }

    #[test]
    fn restore_rejects_inconsistent_snapshots() {
        let mut a = JobArena::new();
        let s = a.alloc(Job::unit_density(0.0, 1.0), 0);
        a.alloc(Job::unit_density(0.5, 1.0), 1);
        a.retire(s);
        let good = a.snapshot();

        let mut bad = good.clone();
        bad.volume.pop();
        assert!(JobArena::restore(bad).is_err(), "mismatched columns");

        let mut bad = good.clone();
        bad.free[0] = 99;
        assert!(JobArena::restore(bad).is_err(), "free slot out of range");

        let mut bad = good.clone();
        bad.free.push(bad.free[0]);
        assert!(JobArena::restore(bad).is_err(), "duplicated free slot");

        let mut bad = good.clone();
        bad.live = 7;
        assert!(JobArena::restore(bad).is_err(), "live count off");

        let mut bad = good;
        bad.peak_live = 0;
        assert!(JobArena::restore(bad).is_err(), "peak below live");
    }

    #[test]
    fn deferred_settle_matches_eager_accrual() {
        // Settling once over [release, now] equals accruing the same stretch
        // eagerly in one piece; acc_t advances so a second settle is a no-op.
        let mut a = JobArena::new();
        let s = a.alloc(Job::new(1.0, 2.0, 3.0), 0);
        assert_eq!(a.accrued_through(s), 1.0, "accounted through release at alloc");
        a.settle_waiting(s, 2.5);
        assert_eq!(a.frac_flow(s), 3.0 * 2.0 * 1.5);
        a.settle_waiting(s, 2.5);
        assert_eq!(a.frac_flow(s), 9.0, "repeated settle at same time adds zero");
        a.set_accrued(s, 4.0);
        a.settle_waiting(s, 5.0);
        assert_eq!(a.frac_flow(s), 9.0 + 6.0, "stretch [4,5] only");
    }

    #[test]
    fn capacity_bounded_by_peak_under_churn() {
        let mut a = JobArena::new();
        for i in 0..1000 {
            let s = a.alloc(Job::unit_density(i as f64, 1.0), i);
            a.retire(s);
        }
        assert_eq!(a.capacity(), 1, "churn of 1000 jobs with 1 active fits 1 slot");
        assert_eq!(a.peak_live(), 1);
        assert_eq!(a.live(), 0);
    }
}
