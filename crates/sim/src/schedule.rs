//! Piecewise-analytic machine schedules.
//!
//! Speeds under the paper's algorithms are continuous curves, not step
//! functions, so a schedule is a sequence of [`Segment`]s each carrying an
//! analytic [`SpeedLaw`] (idle, constant, clairvoyant decay, non-clairvoyant
//! growth) plus a pointwise speed `scale` factor. The scale factor exists
//! for the Section 5 fractional-to-integral reduction, which runs at exactly
//! `(1+ε)` times a base schedule's speed at every instant. Energies,
//! processed volumes, and their time-integrals are exact per segment via
//! [`crate::kernel`]; figures sample the curves.

use crate::error::{SimError, SimResult};
use crate::job::JobId;
use crate::kernel::{DecayKernel, GrowthKernel};
use crate::power::PowerLaw;

/// The analytic speed law in force during one segment (before scaling).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SpeedLaw {
    /// Machine off.
    Idle,
    /// Constant speed (used by baselines and by step-integrated algorithms).
    Constant {
        /// The speed.
        speed: f64,
    },
    /// Algorithm C dynamics: power = remaining weight, starting from `w0`
    /// and decaying while a job of density `rho` is processed.
    Decay {
        /// Remaining weight at segment start.
        w0: f64,
        /// Density of the processed job.
        rho: f64,
    },
    /// Algorithm NC dynamics: power = `u0` + weight processed since segment
    /// start, growing while a job of density `rho` is processed.
    Growth {
        /// Power level at segment start.
        u0: f64,
        /// Density of the processed job.
        rho: f64,
    },
}

/// One schedule segment: a time interval, the job in service (if any), the
/// base speed law, and a pointwise speed multiplier.
///
/// With scale `c`, the actual speed is `c · s_base(t)`, so energy scales by
/// `c^α` and processed volume by `c`. The *base* law's internal state (e.g.
/// the decaying weight of the curve it was copied from) is unaffected —
/// exactly the semantics of the paper's `A_int` shadowing `A_frac`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Absolute start time.
    pub start: f64,
    /// Absolute end time (`> start`).
    pub end: f64,
    /// Job in service, or `None` when idle.
    pub job: Option<JobId>,
    /// Base speed law over `[start, end]`.
    pub law: SpeedLaw,
    /// Pointwise speed multiplier (1 for ordinary segments).
    pub scale: f64,
}

impl Segment {
    /// An unscaled segment.
    #[must_use]
    pub fn new(start: f64, end: f64, job: Option<JobId>, law: SpeedLaw) -> Self {
        Self { start, end, job, law, scale: 1.0 }
    }

    /// The same segment with speed multiplied pointwise by `scale`.
    #[must_use]
    pub fn with_scale(self, scale: f64) -> Self {
        Self { scale, ..self }
    }

    /// Segment duration.
    #[must_use]
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }

    fn base_speed_at(&self, pl: PowerLaw, t: f64) -> f64 {
        let tau = (t - self.start).clamp(0.0, self.duration());
        match self.law {
            SpeedLaw::Idle => 0.0,
            SpeedLaw::Constant { speed } => speed,
            SpeedLaw::Decay { w0, rho } => DecayKernel { law: pl, w0, rho }.speed_at(tau),
            SpeedLaw::Growth { u0, rho } => GrowthKernel { law: pl, u0, rho }.speed_at(tau),
        }
    }

    /// Speed at absolute time `t ∈ [start, end]`.
    #[must_use]
    pub fn speed_at(&self, pl: PowerLaw, t: f64) -> f64 {
        self.scale * self.base_speed_at(pl, t)
    }

    /// Instantaneous power at absolute time `t`.
    #[must_use]
    pub fn power_at(&self, pl: PowerLaw, t: f64) -> f64 {
        pl.power(self.speed_at(pl, t))
    }

    fn base_energy_to(&self, pl: PowerLaw, t: f64) -> f64 {
        let tau = (t - self.start).clamp(0.0, self.duration());
        match self.law {
            SpeedLaw::Idle => 0.0,
            SpeedLaw::Constant { speed } => pl.power(speed) * tau,
            SpeedLaw::Decay { w0, rho } => DecayKernel { law: pl, w0, rho }.energy(tau),
            SpeedLaw::Growth { u0, rho } => GrowthKernel { law: pl, u0, rho }.energy(tau),
        }
    }

    /// Energy consumed over `[start, t]` (scales as `scale^α`).
    #[must_use]
    pub fn energy_to(&self, pl: PowerLaw, t: f64) -> f64 {
        pl.power(self.scale) * self.base_energy_to(pl, t)
    }

    /// Energy consumed over the whole segment.
    #[must_use]
    pub fn energy(&self, pl: PowerLaw) -> f64 {
        self.energy_to(pl, self.end)
    }

    fn base_volume_to(&self, pl: PowerLaw, t: f64) -> f64 {
        let tau = (t - self.start).clamp(0.0, self.duration());
        match self.law {
            SpeedLaw::Idle => 0.0,
            SpeedLaw::Constant { speed } => speed * tau,
            SpeedLaw::Decay { w0, rho } => DecayKernel { law: pl, w0, rho }.volume(tau),
            SpeedLaw::Growth { u0, rho } => GrowthKernel { law: pl, u0, rho }.volume(tau),
        }
    }

    /// Volume processed over `[start, t]` (scales linearly).
    #[must_use]
    pub fn volume_to(&self, pl: PowerLaw, t: f64) -> f64 {
        self.scale * self.base_volume_to(pl, t)
    }

    /// Volume processed over the whole segment.
    #[must_use]
    pub fn volume(&self, pl: PowerLaw) -> f64 {
        self.volume_to(pl, self.end)
    }

    /// `∫_{start}^{t} volume_to(x) dx` — the time-integral of the processed
    /// volume, for exact fractional flow-time accrual.
    #[must_use]
    pub fn volume_integral_to(&self, pl: PowerLaw, t: f64) -> f64 {
        let tau = (t - self.start).clamp(0.0, self.duration());
        let base = match self.law {
            SpeedLaw::Idle => 0.0,
            SpeedLaw::Constant { speed } => 0.5 * speed * tau * tau,
            SpeedLaw::Decay { w0, rho } => DecayKernel { law: pl, w0, rho }.volume_integral(tau),
            SpeedLaw::Growth { u0, rho } => GrowthKernel { law: pl, u0, rho }.volume_integral(tau),
        };
        self.scale * base
    }

    /// Absolute time within the segment at which cumulative processed volume
    /// reaches `v` (requires `0 ≤ v ≤ volume()`), or `None` for idle laws or
    /// `v` beyond the segment's capacity.
    #[must_use]
    pub fn time_at_volume(&self, pl: PowerLaw, v: f64) -> Option<f64> {
        if v <= 0.0 {
            return Some(self.start);
        }
        let total = self.volume(pl);
        if v > total * (1.0 + 1e-12) {
            return None;
        }
        let v = (v / self.scale).min(total / self.scale);
        let tau = match self.law {
            SpeedLaw::Idle => return None,
            SpeedLaw::Constant { speed } => {
                if speed <= 0.0 {
                    return None;
                }
                v / speed
            }
            SpeedLaw::Decay { w0, rho } => DecayKernel { law: pl, w0, rho }.time_to_volume(v),
            SpeedLaw::Growth { u0, rho } => GrowthKernel { law: pl, u0, rho }.time_to_volume(v),
        };
        Some(self.start + tau.min(self.duration()))
    }

    /// Time spent within the segment at (scaled) speed at least `x > 0`.
    #[must_use]
    pub fn time_with_speed_at_least(&self, pl: PowerLaw, x: f64) -> f64 {
        let x = x / self.scale;
        let tau = self.duration();
        match self.law {
            SpeedLaw::Idle => 0.0,
            SpeedLaw::Constant { speed } => {
                if speed >= x {
                    tau
                } else {
                    0.0
                }
            }
            SpeedLaw::Decay { w0, rho } => {
                DecayKernel { law: pl, w0, rho }.time_with_speed_at_least(x, tau)
            }
            SpeedLaw::Growth { u0, rho } => {
                GrowthKernel { law: pl, u0, rho }.time_with_speed_at_least(x, tau)
            }
        }
    }

    /// Largest speed attained in the segment (laws are monotone in time).
    #[must_use]
    pub fn max_speed(&self, pl: PowerLaw) -> f64 {
        self.speed_at(pl, self.start).max(self.speed_at(pl, self.end))
    }

    /// Split at absolute time `t ∈ (start, end)` into two equivalent
    /// segments.
    #[must_use]
    pub fn split_at(&self, pl: PowerLaw, t: f64) -> (Segment, Segment) {
        debug_assert!(t > self.start && t < self.end);
        let left = Segment { end: t, ..*self };
        let right_law = match self.law {
            SpeedLaw::Idle => SpeedLaw::Idle,
            SpeedLaw::Constant { speed } => SpeedLaw::Constant { speed },
            SpeedLaw::Decay { w0, rho } => SpeedLaw::Decay {
                w0: DecayKernel { law: pl, w0, rho }.weight_at(t - self.start),
                rho,
            },
            SpeedLaw::Growth { u0, rho } => SpeedLaw::Growth {
                u0: GrowthKernel { law: pl, u0, rho }.u_at(t - self.start),
                rho,
            },
        };
        let right = Segment { start: t, end: self.end, job: self.job, law: right_law, scale: self.scale };
        (left, right)
    }
}

/// A complete machine schedule: ordered, non-overlapping segments under one
/// power law. Gaps between segments are implicit idle time.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    law: PowerLaw,
    segments: Vec<Segment>,
}

impl Schedule {
    /// Build a schedule, validating segment ordering.
    pub fn new(law: PowerLaw, segments: Vec<Segment>) -> SimResult<Self> {
        let mut prev_end = f64::NEG_INFINITY;
        for s in &segments {
            if !(s.start.is_finite() && s.end.is_finite()) || s.end <= s.start {
                return Err(SimError::MalformedSchedule { reason: "segment with non-positive duration" });
            }
            if !(s.scale.is_finite() && s.scale > 0.0) {
                return Err(SimError::MalformedSchedule { reason: "segment with non-positive scale" });
            }
            if s.start < prev_end - 1e-12 {
                return Err(SimError::MalformedSchedule { reason: "overlapping segments" });
            }
            prev_end = s.end;
        }
        Ok(Self { law, segments })
    }

    /// The power function.
    #[must_use]
    pub fn power_law(&self) -> PowerLaw {
        self.law
    }

    /// The segments in time order.
    #[must_use]
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Time at which the last segment ends (0 for an empty schedule).
    #[must_use]
    pub fn end_time(&self) -> f64 {
        self.segments.last().map_or(0.0, |s| s.end)
    }

    /// Speed at absolute time `t` (0 during gaps and outside the horizon).
    #[must_use]
    pub fn speed_at(&self, t: f64) -> f64 {
        match self.segments.binary_search_by(|s| {
            if t < s.start {
                std::cmp::Ordering::Greater
            } else if t >= s.end {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Equal
            }
        }) {
            Ok(i) => self.segments[i].speed_at(self.law, t),
            Err(i) => {
                // Segments are half-open [start, end); at the very end of a
                // segment with no successor covering t (e.g. the schedule's
                // final instant), report the closing speed instead of 0.
                if i > 0 && (t - self.segments[i - 1].end).abs() <= 1e-12 {
                    self.segments[i - 1].speed_at(self.law, t)
                } else {
                    0.0
                }
            }
        }
    }

    /// Power at absolute time `t`.
    #[must_use]
    pub fn power_at(&self, t: f64) -> f64 {
        self.law.power(self.speed_at(t))
    }

    /// Total energy.
    #[must_use]
    pub fn energy(&self) -> f64 {
        self.segments.iter().map(|s| s.energy(self.law)).sum()
    }

    /// Total processed volume.
    #[must_use]
    pub fn total_volume(&self) -> f64 {
        self.segments.iter().map(|s| s.volume(self.law)).sum()
    }

    /// Total time spent at speed at least `x > 0` — the level-set measure of
    /// the speed profile used to verify the paper's measure-preserving
    /// mapping (Lemma 6).
    #[must_use]
    pub fn time_with_speed_at_least(&self, x: f64) -> f64 {
        self.segments.iter().map(|s| s.time_with_speed_at_least(self.law, x)).sum()
    }

    /// Largest speed attained anywhere.
    #[must_use]
    pub fn max_speed(&self) -> f64 {
        self.segments.iter().map(|s| s.max_speed(self.law)).fold(0.0, f64::max)
    }

    /// Total time covered by (non-idle-law) segments.
    #[must_use]
    pub fn busy_time(&self) -> f64 {
        self.segments
            .iter()
            .filter(|s| !matches!(s.law, SpeedLaw::Idle))
            .map(Segment::duration)
            .sum()
    }

    /// Idle time within the span `[first start, end_time]`: gaps between
    /// segments plus explicit idle segments.
    #[must_use]
    pub fn idle_time(&self) -> f64 {
        let Some(first) = self.segments.first() else {
            return 0.0;
        };
        (self.end_time() - first.start) - self.busy_time()
    }

    /// Volume processed per job id (length `n_jobs`).
    #[must_use]
    pub fn volume_by_job(&self, n_jobs: usize) -> Vec<f64> {
        let mut v = vec![0.0; n_jobs];
        for s in &self.segments {
            if let Some(j) = s.job {
                if j < n_jobs {
                    v[j] += s.volume(self.law);
                }
            }
        }
        v
    }

    /// Build a prefix-sum [`SegmentIndex`] over this schedule's segments
    /// for `O(log n)` time/volume queries.
    #[must_use]
    pub fn index(&self) -> SegmentIndex {
        SegmentIndex::new(self.law, &self.segments)
    }

    /// Sample `(t, speed, power)` at `n + 1` evenly spaced points over
    /// `[0, horizon]` for plotting.
    #[must_use]
    pub fn sample(&self, n: usize, horizon: f64) -> Vec<(f64, f64, f64)> {
        (0..=n)
            .map(|i| {
                let t = horizon * i as f64 / n as f64;
                let s = self.speed_at(t);
                (t, s, self.law.power(s))
            })
            .collect()
    }
}

/// Prefix-sum time/volume index over an ordered segment list, for
/// `O(log n)` "which segment covers time `t`" / "where does cumulative
/// volume reach `v`" queries instead of linear scans.
///
/// Built either from the segments' own closed forms
/// ([`SegmentIndex::new`], [`Schedule::index`]) or from caller-supplied
/// per-segment volumes ([`SegmentIndex::from_volumes`]) — the audit passes
/// its independently re-derived values so the index never launders the
/// simulator's arithmetic into the checker.
///
/// # Examples
///
/// ```
/// use ncss_sim::{PowerLaw, Schedule, Segment, SpeedLaw};
///
/// let law = PowerLaw::new(2.0).unwrap();
/// let segs = vec![
///     Segment::new(0.0, 1.0, Some(0), SpeedLaw::Constant { speed: 2.0 }),
///     Segment::new(1.0, 3.0, Some(1), SpeedLaw::Constant { speed: 0.5 }),
/// ];
/// let sched = Schedule::new(law, segs).unwrap();
/// let index = sched.index();
/// // Cumulative volume crosses 2.5 inside the second segment, at t = 2.
/// assert_eq!(index.first_reaching(2.5), 1);
/// let t = index.time_at_volume(law, sched.segments(), 2.5).unwrap();
/// assert!((t - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentIndex {
    ends: Vec<f64>,
    cum_volume: Vec<f64>,
}

impl SegmentIndex {
    /// Index `segments` using their own closed-form volumes.
    #[must_use]
    pub fn new(pl: PowerLaw, segments: &[Segment]) -> Self {
        Self::from_volumes(segments, segments.iter().map(|s| s.volume(pl)))
    }

    /// Index `segments` with externally supplied per-segment volumes
    /// (must be in segment order and of equal length).
    #[must_use]
    pub fn from_volumes(segments: &[Segment], volumes: impl IntoIterator<Item = f64>) -> Self {
        let ends: Vec<f64> = segments.iter().map(|s| s.end).collect();
        let mut cum = 0.0;
        let cum_volume: Vec<f64> = volumes
            .into_iter()
            .map(|v| {
                cum += v;
                cum
            })
            .collect();
        debug_assert_eq!(ends.len(), cum_volume.len());
        Self { ends, cum_volume }
    }

    /// Number of indexed segments.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ends.len()
    }

    /// Whether the index is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ends.is_empty()
    }

    /// Total indexed volume (0 when empty).
    #[must_use]
    pub fn total_volume(&self) -> f64 {
        self.cum_volume.last().copied().unwrap_or(0.0)
    }

    /// Cumulative volume delivered strictly before segment `i`.
    #[must_use]
    pub fn volume_before(&self, i: usize) -> f64 {
        if i == 0 { 0.0 } else { self.cum_volume[i - 1] }
    }

    /// First segment index whose *inclusive* cumulative volume reaches
    /// `target` (binary search over the prefix sums); `len()` when the
    /// target is never reached. NaN prefixes never satisfy the predicate,
    /// matching a scan that skips unmeasurable values.
    #[must_use]
    pub fn first_reaching(&self, target: f64) -> usize {
        self.cum_volume.partition_point(|&p| !(p >= target))
    }

    /// Number of segments ending at or before `t` — equivalently, the
    /// index of the first segment whose interior could contain `t`.
    #[must_use]
    pub fn segments_ending_by(&self, t: f64) -> usize {
        self.ends.partition_point(|&e| e <= t)
    }

    /// Absolute time at which the cumulative volume reaches `v`, inverting
    /// within the crossing segment; `None` when `v` exceeds the total or
    /// the crossing segment cannot be inverted (idle).
    #[must_use]
    pub fn time_at_volume(&self, pl: PowerLaw, segments: &[Segment], v: f64) -> Option<f64> {
        if v <= 0.0 {
            return segments.first().map(|s| s.start);
        }
        let i = self.first_reaching(v);
        let seg = segments.get(i)?;
        seg.time_at_volume(pl, v - self.volume_before(i))
    }
}

/// Incremental builder used by the simulators.
#[derive(Debug, Clone)]
pub struct ScheduleBuilder {
    law: PowerLaw,
    segments: Vec<Segment>,
}

impl ScheduleBuilder {
    /// New empty builder.
    #[must_use]
    pub fn new(law: PowerLaw) -> Self {
        Self { law, segments: Vec::new() }
    }

    /// Append a segment; it must start at or after the previous segment's
    /// end. Zero-duration segments are dropped.
    pub fn push(&mut self, seg: Segment) {
        if seg.duration() <= 0.0 {
            return;
        }
        debug_assert!(
            self.segments.last().is_none_or(|p| seg.start >= p.end - 1e-9),
            "segments pushed out of order"
        );
        self.segments.push(seg);
    }

    /// Finish and validate.
    pub fn build(self) -> SimResult<Schedule> {
        Schedule::new(self.law, self.segments)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::numeric::approx_eq;

    fn pl(alpha: f64) -> PowerLaw {
        PowerLaw::new(alpha).unwrap()
    }

    #[test]
    fn rejects_overlap_and_reversed() {
        let law = pl(2.0);
        let a = Segment::new(0.0, 1.0, None, SpeedLaw::Idle);
        let b = Segment::new(0.5, 2.0, None, SpeedLaw::Idle);
        assert!(Schedule::new(law, vec![a, b]).is_err());
        let c = Segment::new(1.0, 1.0, None, SpeedLaw::Idle);
        assert!(Schedule::new(law, vec![c]).is_err());
        let d = Segment::new(0.0, 1.0, None, SpeedLaw::Idle).with_scale(0.0);
        assert!(Schedule::new(law, vec![d]).is_err());
    }

    #[test]
    fn gaps_read_as_idle() {
        let law = pl(2.0);
        let a = Segment::new(0.0, 1.0, Some(0), SpeedLaw::Constant { speed: 2.0 });
        let b = Segment::new(3.0, 4.0, Some(1), SpeedLaw::Constant { speed: 1.0 });
        let s = Schedule::new(law, vec![a, b]).unwrap();
        assert_eq!(s.speed_at(0.5), 2.0);
        assert_eq!(s.speed_at(2.0), 0.0);
        assert_eq!(s.speed_at(3.5), 1.0);
        assert_eq!(s.speed_at(10.0), 0.0);
        assert!(approx_eq(s.energy(), 4.0 + 1.0, 1e-12));
        assert!(approx_eq(s.total_volume(), 3.0, 1e-12));
    }

    #[test]
    fn decay_segment_accounting() {
        let law = pl(3.0);
        let seg = Segment::new(1.0, 2.0, Some(0), SpeedLaw::Decay { w0: 8.0, rho: 1.0 });
        let s = Schedule::new(law, vec![seg]).unwrap();
        // Speed at start is 8^{1/3} = 2.
        assert!(approx_eq(s.speed_at(1.0), 2.0, 1e-12));
        assert!(s.speed_at(1.9) < 2.0);
        assert!(s.energy() > 0.0);
    }

    #[test]
    fn split_preserves_totals() {
        let law = pl(2.5);
        for seg_law in [
            SpeedLaw::Constant { speed: 1.7 },
            SpeedLaw::Decay { w0: 5.0, rho: 1.2 },
            SpeedLaw::Growth { u0: 0.6, rho: 0.8 },
        ] {
            let seg = Segment::new(0.5, 2.5, Some(3), seg_law).with_scale(1.3);
            let (l, r) = seg.split_at(law, 1.3);
            assert!(approx_eq(l.energy(law) + r.energy(law), seg.energy(law), 1e-10));
            assert!(approx_eq(l.volume(law) + r.volume(law), seg.volume(law), 1e-10));
            // Speed is continuous across the split point.
            assert!(approx_eq(l.speed_at(law, 1.3), r.speed_at(law, 1.3), 1e-10));
        }
    }

    #[test]
    fn time_at_volume_inverts_volume_to() {
        let law = pl(3.0);
        for seg_law in [
            SpeedLaw::Constant { speed: 2.0 },
            SpeedLaw::Decay { w0: 4.0, rho: 1.0 },
            SpeedLaw::Growth { u0: 0.0, rho: 1.0 },
        ] {
            let seg = Segment::new(2.0, 4.0, Some(0), seg_law).with_scale(1.5);
            let t = 3.1;
            let v = seg.volume_to(law, t);
            let back = seg.time_at_volume(law, v).unwrap();
            assert!(approx_eq(back, t, 1e-9), "{seg_law:?}");
        }
        let idle = Segment::new(0.0, 1.0, None, SpeedLaw::Idle);
        assert_eq!(idle.time_at_volume(law, 0.5), None);
        assert_eq!(idle.time_at_volume(law, 0.0), Some(0.0));
    }

    #[test]
    fn scaled_segment_quantities() {
        let law = pl(3.0);
        let base = Segment::new(0.0, 2.0, Some(0), SpeedLaw::Constant { speed: 1.0 });
        let scaled = base.with_scale(1.5);
        assert!(approx_eq(scaled.speed_at(law, 1.0), 1.5, 1e-12));
        // Energy scales by 1.5^3, volume by 1.5.
        assert!(approx_eq(scaled.energy(law), base.energy(law) * 1.5f64.powi(3), 1e-12));
        assert!(approx_eq(scaled.volume(law), base.volume(law) * 1.5, 1e-12));
        assert!(approx_eq(
            scaled.volume_integral_to(law, 2.0),
            base.volume_integral_to(law, 2.0) * 1.5,
            1e-12
        ));
        // Level sets shift by the scale.
        assert!(approx_eq(scaled.time_with_speed_at_least(law, 1.2), 2.0, 1e-12));
        assert_eq!(base.time_with_speed_at_least(law, 1.2), 0.0);
    }

    #[test]
    fn level_set_measure_sums_over_segments() {
        let law = pl(2.0);
        let a = Segment::new(0.0, 1.0, Some(0), SpeedLaw::Constant { speed: 2.0 });
        let b = Segment::new(1.0, 3.0, Some(1), SpeedLaw::Constant { speed: 0.5 });
        let s = Schedule::new(law, vec![a, b]).unwrap();
        assert!(approx_eq(s.time_with_speed_at_least(1.0), 1.0, 1e-12));
        assert!(approx_eq(s.time_with_speed_at_least(0.4), 3.0, 1e-12));
        assert_eq!(s.time_with_speed_at_least(3.0), 0.0);
    }

    #[test]
    fn sampling_has_expected_shape() {
        let law = pl(2.0);
        let seg = Segment::new(0.0, 2.0, Some(0), SpeedLaw::Growth { u0: 0.0, rho: 1.0 });
        let s = Schedule::new(law, vec![seg]).unwrap();
        let pts = s.sample(10, 2.0);
        assert_eq!(pts.len(), 11);
        // Growth law: speed increases.
        assert!(pts.windows(2).all(|w| w[1].1 >= w[0].1));
        // power = speed^2 at each sample.
        for (_, sp, pw) in pts {
            assert!(approx_eq(pw, sp * sp, 1e-12));
        }
    }

    #[test]
    fn busy_idle_and_per_job_volumes() {
        let law = pl(2.0);
        let segs = vec![
            Segment::new(1.0, 2.0, Some(0), SpeedLaw::Constant { speed: 2.0 }),
            Segment::new(3.0, 4.0, Some(1), SpeedLaw::Constant { speed: 1.0 }),
            Segment::new(4.0, 5.0, None, SpeedLaw::Idle),
        ];
        let s = Schedule::new(law, segs).unwrap();
        assert!(approx_eq(s.busy_time(), 2.0, 1e-12));
        // Span [1, 5] minus 2 busy = 2 idle (1 gap + 1 explicit idle).
        assert!(approx_eq(s.idle_time(), 2.0, 1e-12));
        let v = s.volume_by_job(2);
        assert!(approx_eq(v[0], 2.0, 1e-12));
        assert!(approx_eq(v[1], 1.0, 1e-12));
    }

    #[test]
    fn builder_drops_empty_segments() {
        let law = pl(2.0);
        let mut b = ScheduleBuilder::new(law);
        b.push(Segment::new(0.0, 0.0, None, SpeedLaw::Idle));
        b.push(Segment::new(0.0, 1.0, Some(0), SpeedLaw::Constant { speed: 1.0 }));
        let s = b.build().unwrap();
        assert_eq!(s.segments().len(), 1);
    }
}
