//! Error types for the simulation substrate.

use std::fmt;

/// Result alias used throughout the workspace.
pub type SimResult<T> = Result<T, SimError>;

/// Errors raised by instance validation, schedule construction, and
/// objective evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The power-law exponent must satisfy `α > 1`.
    InvalidAlpha {
        /// The offending exponent.
        alpha: f64,
    },
    /// A job failed validation (non-positive volume/density, negative or
    /// non-finite release, ...).
    InvalidJob {
        /// Index of the offending job.
        index: usize,
        /// Human-readable reason.
        reason: &'static str,
    },
    /// The instance as a whole is unusable (e.g. empty where an algorithm
    /// requires at least one job).
    InvalidInstance {
        /// Human-readable reason.
        reason: &'static str,
    },
    /// An algorithm requiring uniform densities was given a mixed-density
    /// instance.
    NonUniformDensity,
    /// A schedule did not complete every job, so a flow-time objective is
    /// undefined (would be infinite).
    IncompleteSchedule {
        /// Index of a job left unfinished.
        job: usize,
        /// Volume still remaining for that job.
        remaining: f64,
    },
    /// Schedule segments are malformed (overlapping or reversed in time).
    MalformedSchedule {
        /// Human-readable reason.
        reason: &'static str,
    },
    /// An iterative routine failed to converge within its budget.
    NonConvergence {
        /// Which routine.
        what: &'static str,
    },
    /// A numeric intermediate or final quantity left the finite range
    /// (overflowed to infinity, underflowed a required positivity, or became
    /// NaN). Raised in both debug and release builds: the guard rails that
    /// defend the exact-arithmetic claims of the engine are not
    /// `debug_assert!`s that vanish under `--release`.
    Numeric {
        /// Which quantity went bad.
        what: &'static str,
        /// The offending value (inf, NaN, ...), for diagnostics.
        value: f64,
    },
    /// A row of an instance file failed to parse or validate.
    InvalidRow {
        /// 1-based line number in the source text.
        line: usize,
        /// What was wrong with the row (owned: includes the offending field).
        detail: String,
    },
    /// An I/O failure while reading or writing an instance file.
    ///
    /// Carries the rendered `std::io::Error` so `read_instance` can expose a
    /// single error type instead of nesting `io::Result<SimResult<_>>`.
    Io {
        /// Rendered I/O error plus context (path, operation).
        detail: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidAlpha { alpha } => {
                write!(f, "power-law exponent must be finite and > 1, got {alpha}")
            }
            Self::InvalidJob { index, reason } => write!(f, "job {index} invalid: {reason}"),
            Self::InvalidInstance { reason } => write!(f, "invalid instance: {reason}"),
            Self::NonUniformDensity => {
                write!(f, "algorithm requires uniform job densities")
            }
            Self::IncompleteSchedule { job, remaining } => {
                write!(f, "schedule leaves job {job} with {remaining} volume unprocessed")
            }
            Self::MalformedSchedule { reason } => write!(f, "malformed schedule: {reason}"),
            Self::NonConvergence { what } => write!(f, "{what} failed to converge"),
            Self::Numeric { what, value } => {
                write!(f, "numeric guard: {what} is not usable (got {value})")
            }
            Self::InvalidRow { line, detail } => {
                write!(f, "instance file line {line}: {detail}")
            }
            Self::Io { detail } => write!(f, "i/o error: {detail}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::InvalidAlpha { alpha: 0.5 };
        assert!(e.to_string().contains("0.5"));
        let e = SimError::IncompleteSchedule { job: 3, remaining: 1.25 };
        assert!(e.to_string().contains("job 3"));
        assert!(e.to_string().contains("1.25"));
    }

    #[test]
    fn new_variants_display() {
        let e = SimError::Numeric { what: "completion time", value: f64::INFINITY };
        assert!(e.to_string().contains("completion time"));
        assert!(e.to_string().contains("inf"));
        let e = SimError::InvalidRow { line: 7, detail: "volume `abc` is not a number".into() };
        assert!(e.to_string().contains("line 7"));
        assert!(e.to_string().contains("abc"));
        let e = SimError::Io { detail: "open missing.csv: not found".into() };
        assert!(e.to_string().contains("missing.csv"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&SimError::NonUniformDensity);
    }
}
