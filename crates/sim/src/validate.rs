//! A deliberately naive discrete-time reference simulator, for
//! differential testing.
//!
//! Every exact closed-form result in this workspace is cross-checked in
//! tests against this independent oracle: a fixed-step Euler integrator
//! that knows nothing about decay/growth kernels or event scheduling. It
//! executes an arbitrary *speed policy* — a callback deciding `(job,
//! speed)` from the full ground-truth state — with first-order accuracy,
//! and accounts energy and flow-times by simple Riemann sums.
//!
//! If the exact simulators and this oracle ever disagree beyond O(h), one
//! of them is wrong; historically this style of differential test catches
//! sign errors and off-by-one event handling that unit tests miss.

use crate::error::{SimError, SimResult};
use crate::job::Instance;
use crate::objective::Objective;
use crate::power::PowerLaw;

/// Ground-truth state handed to a reference policy at every step.
#[derive(Debug)]
pub struct RefState<'a> {
    /// Current time.
    pub time: f64,
    /// Remaining volume per job (release-ordered ids).
    pub remaining: &'a [f64],
    /// The instance being executed.
    pub instance: &'a Instance,
}

/// Outcome of a reference simulation.
#[derive(Debug, Clone)]
pub struct RefRun {
    /// Riemann-sum objective.
    pub objective: Objective,
    /// First-order completion times.
    pub completion: Vec<f64>,
    /// Steps executed.
    pub steps: usize,
}

/// Execute `policy` with fixed step `dt` until all jobs complete.
///
/// Returns [`SimError::NonConvergence`] once `max_steps` is exhausted — a
/// stalled policy (or an unreachable horizon) is reported, not a panic, so
/// the oracle can run inside checked-mode harnesses.
///
/// The policy returns `(job, speed)`; `None` idles the step. Jobs released
/// strictly after the current time are invisible to progress (the driver
/// clamps service to released, unfinished jobs).
pub fn reference_run(
    instance: &Instance,
    law: PowerLaw,
    dt: f64,
    max_steps: usize,
    mut policy: impl FnMut(&RefState<'_>) -> Option<(usize, f64)>,
) -> SimResult<RefRun> {
    let jobs = instance.jobs();
    let n = jobs.len();
    let mut remaining: Vec<f64> = jobs.iter().map(|j| j.volume).collect();
    let mut completion = vec![f64::NAN; n];
    let mut t = 0.0;
    let mut energy = 0.0;
    let mut frac = 0.0;
    let mut steps = 0;

    while completion.iter().any(|c| c.is_nan()) {
        steps += 1;
        if steps > max_steps {
            return Err(SimError::NonConvergence { what: "reference run: step budget exhausted" });
        }
        let action = {
            let state = RefState { time: t, remaining: &remaining, instance };
            policy(&state)
        };
        // Accrue flow for all released, unfinished jobs at the step start.
        for (j, job) in jobs.iter().enumerate() {
            if job.release <= t && remaining[j] > 0.0 {
                frac += job.density * remaining[j] * dt;
            }
        }
        if let Some((j, speed)) = action {
            if j < n && jobs[j].release <= t && remaining[j] > 0.0 && speed > 0.0 {
                energy += law.power(speed) * dt;
                remaining[j] -= speed * dt;
                if remaining[j] <= 0.0 {
                    remaining[j] = 0.0;
                    completion[j] = t + dt;
                }
            }
        }
        t += dt;
    }

    let int_flow = jobs
        .iter()
        .enumerate()
        .map(|(j, job)| job.weight() * (completion[j] - job.release))
        .sum();
    Ok(RefRun {
        objective: Objective { energy, frac_flow: frac, int_flow },
        completion,
        steps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Job;
    use crate::numeric::approx_eq;

    #[test]
    fn constant_speed_oracle_is_first_order_accurate() {
        // One unit job at speed 1: exact energy 1, frac flow 1/2.
        let inst = Instance::new(vec![Job::unit_density(0.0, 1.0)]).unwrap();
        let law = PowerLaw::new(2.0).unwrap();
        let run = reference_run(&inst, law, 1e-4, 10_000_000, |state| {
            state.remaining.iter().position(|&r| r > 0.0).map(|j| (j, 1.0))
        })
        .unwrap();
        assert!(approx_eq(run.objective.energy, 1.0, 1e-3));
        assert!(approx_eq(run.objective.frac_flow, 0.5, 1e-3));
        assert!(approx_eq(run.completion[0], 1.0, 1e-3));
    }

    #[test]
    fn respects_release_times() {
        let inst = Instance::new(vec![Job::unit_density(2.0, 1.0)]).unwrap();
        let law = PowerLaw::new(2.0).unwrap();
        let run = reference_run(&inst, law, 1e-3, 10_000_000, |_| Some((0, 1.0))).unwrap();
        // Service cannot start before release.
        assert!(run.completion[0] >= 3.0 - 1e-2);
    }

    #[test]
    fn stalled_policy_is_a_structured_error() {
        let inst = Instance::new(vec![Job::unit_density(0.0, 1.0)]).unwrap();
        let law = PowerLaw::new(2.0).unwrap();
        let err = reference_run(&inst, law, 1e-3, 100, |_| None).unwrap_err();
        assert!(matches!(err, SimError::NonConvergence { .. }), "{err}");
    }
}
