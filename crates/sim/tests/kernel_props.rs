//! Property tests for the closed-form kernels and schedule algebra: these
//! are the foundation every algorithm builds on, so their invariants get
//! randomized coverage beyond the hand-picked unit tests.

use ncss_sim::kernel::{DecayKernel, GrowthKernel};
use ncss_sim::numeric::approx_eq;
use ncss_sim::{PowerLaw, Schedule, Segment, SpeedLaw};
use ncss_rng::props::*;

fn params() -> impl Strategy<Value = (f64, f64, f64)> {
    // (alpha, rho, w0/u-range)
    (1.2f64..5.0, 0.1f64..5.0, 0.1f64..20.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn decay_inverse_roundtrip((alpha, rho, w0) in params(), frac in 0.01f64..0.99) {
        let law = PowerLaw::new(alpha).unwrap();
        let k = DecayKernel { law, w0, rho };
        let w_target = w0 * frac;
        let tau = k.time_to_weight(w_target);
        prop_assert!(tau >= 0.0);
        prop_assert!(approx_eq(k.weight_at(tau), w_target, 1e-9));
    }

    #[test]
    fn growth_inverse_roundtrip((alpha, rho, u1) in params(), frac in 0.0f64..0.95) {
        let law = PowerLaw::new(alpha).unwrap();
        let u0 = u1 * frac;
        let k = GrowthKernel { law, u0, rho };
        let tau = k.time_to_u(u1);
        prop_assert!(approx_eq(k.u_at(tau), u1, 1e-9));
        // Volume/weight consistency.
        prop_assert!(approx_eq(k.volume(tau), (u1 - u0) / rho, 1e-9));
    }

    #[test]
    fn decay_energy_additive_over_splits((alpha, rho, w0) in params(), split in 0.1f64..0.9) {
        // E[0, tau] = E[0, s] + E_from_state(s)[0, tau - s].
        let law = PowerLaw::new(alpha).unwrap();
        let k = DecayKernel { law, w0, rho };
        let tau = k.time_to_empty() * 0.8;
        let s = tau * split;
        let mid = k.weight_at(s);
        prop_assume!(mid > 0.0);
        let k2 = DecayKernel { law, w0: mid, rho };
        let whole = k.energy(tau);
        let parts = k.energy(s) + k2.energy(tau - s);
        prop_assert!(approx_eq(whole, parts, 1e-8), "{whole} vs {parts}");
    }

    #[test]
    fn growth_reverses_decay((alpha, rho, w0) in params()) {
        // Energy and duration of "w0 -> 0" equal those of "0 -> w0".
        let law = PowerLaw::new(alpha).unwrap();
        let d = DecayKernel { law, w0, rho };
        let g = GrowthKernel { law, u0: 0.0, rho };
        let t = d.time_to_empty();
        prop_assert!(approx_eq(g.time_to_u(w0), t, 1e-9));
        prop_assert!(approx_eq(g.energy(t), d.energy(t), 1e-8));
    }

    #[test]
    fn segment_split_conserves((alpha, rho, w0) in params(), at in 0.15f64..0.85) {
        let law = PowerLaw::new(alpha).unwrap();
        let d = DecayKernel { law, w0, rho };
        let end = d.time_to_empty() * 0.9;
        let seg = Segment::new(0.0, end, Some(0), SpeedLaw::Decay { w0, rho });
        let (l, r) = seg.split_at(law, end * at);
        prop_assert!(approx_eq(l.energy(law) + r.energy(law), seg.energy(law), 1e-8));
        prop_assert!(approx_eq(l.volume(law) + r.volume(law), seg.volume(law), 1e-8));
        prop_assert!(approx_eq(
            l.volume_integral_to(law, l.end)
                + r.volume_integral_to(law, r.end)
                + l.volume(law) * r.duration(),
            seg.volume_integral_to(law, seg.end),
            1e-7
        ));
    }

    #[test]
    fn level_set_measures_are_monotone((alpha, rho, w0) in params()) {
        let law = PowerLaw::new(alpha).unwrap();
        let d = DecayKernel { law, w0, rho };
        let end = d.time_to_empty();
        let sched = Schedule::new(
            law,
            vec![Segment::new(0.0, end, Some(0), SpeedLaw::Decay { w0, rho })],
        )
        .unwrap();
        let max = sched.max_speed();
        let mut prev = f64::INFINITY;
        for i in 1..=16 {
            let x = max * i as f64 / 16.0;
            let t = sched.time_with_speed_at_least(x);
            prop_assert!(t <= prev + 1e-12);
            prop_assert!(t >= 0.0);
            prev = t;
        }
        // Nothing exceeds the max, and the level-set time never exceeds
        // the duration. (The x -> 0 limit equals `end`, but convergence is
        // slow for alpha near 1 — the tail below any fixed ε has length
        // Θ(ε^{α−1}/ρ(1−1/α)) — so no equality assertion at tiny x.)
        prop_assert!(sched.time_with_speed_at_least(max * 1.001) <= 1e-12);
        prop_assert!(sched.time_with_speed_at_least(max * 1e-9) <= end + 1e-9);
    }

    #[test]
    fn schedule_volume_equals_kernel_volume((alpha, rho, w0) in params(), cut in 0.2f64..1.0) {
        let law = PowerLaw::new(alpha).unwrap();
        let d = DecayKernel { law, w0, rho };
        let end = d.time_to_empty() * cut;
        let seg = Segment::new(0.0, end, Some(3), SpeedLaw::Decay { w0, rho });
        let sched = Schedule::new(law, vec![seg]).unwrap();
        let by_job = sched.volume_by_job(4);
        prop_assert!(approx_eq(by_job[3], d.volume(end), 1e-9));
        prop_assert_eq!(by_job[0], 0.0);
    }
}
