//! F1 — Figure 1: the single-job power curves.
//!
//! Figure 1a (clairvoyant): the power curve decays from `W` to zero;
//! flow-time equals energy (the areas under and over the curve coincide by
//! the `P = W` rule). Figure 1b (non-clairvoyant): the same curve run in
//! reverse; energy is unchanged, and the ratio of flow-time to energy is
//! `1/(1 − 1/α)` — *independent of the weight*, the paper's crucial
//! single-job observation.

use ncss_analysis::{fmt_f, render_chart, ChartOptions, Series, Table};
use ncss_core::{run_c, run_nc_uniform, theory};
use ncss_sim::{Instance, Job, PowerLaw};

/// Run the experiment and return the report.
#[must_use]
pub fn run() -> String {
    let mut out = String::from("\n==== F1: Figure 1 — single-job power curves ====\n");
    let mut table = Table::new(
        "single-job invariants (paper: E_NC = E_C, F_NC/E_NC = 1/(1-1/alpha), any W)",
        &["alpha", "W", "E_C", "E_NC", "F_NC/E_NC", "theory", "F_C/E_C"],
    );

    for &alpha in &[2.0, 3.0] {
        let law = PowerLaw::new(alpha).expect("valid alpha");
        for &w in &[1.0, 4.0, 16.0] {
            let inst = Instance::new(vec![Job::unit_density(0.0, w)]).expect("valid instance");
            let c = run_c(&inst, law).expect("C run");
            let nc = run_nc_uniform(&inst, law).expect("NC run");
            table.row(vec![
                fmt_f(alpha),
                fmt_f(w),
                fmt_f(c.objective.energy),
                fmt_f(nc.objective.energy),
                fmt_f(nc.objective.frac_flow / nc.objective.energy),
                fmt_f(theory::nc_over_c_flow_ratio(alpha)),
                fmt_f(c.objective.frac_flow / c.objective.energy),
            ]);
        }
    }
    out.push_str(&table.render());

    // The curves themselves for alpha = 3, W = 4 (Figure 1a/1b shapes).
    let law = PowerLaw::new(3.0).expect("valid alpha");
    let inst = Instance::new(vec![Job::unit_density(0.0, 4.0)]).expect("valid instance");
    let c = run_c(&inst, law).expect("C run");
    let nc = run_nc_uniform(&inst, law).expect("NC run");
    let horizon = c.makespan().max(nc.makespan());
    let c_curve: Vec<(f64, f64)> = c.schedule.sample(64, horizon).into_iter().map(|(t, _, p)| (t, p)).collect();
    let nc_curve: Vec<(f64, f64)> = nc.schedule.sample(64, horizon).into_iter().map(|(t, _, p)| (t, p)).collect();
    let series = [
        Series::new("Algorithm C power", 'C', c_curve),
        Series::new("Algorithm NC power", 'N', nc_curve),
    ];
    out.push_str(&render_chart(
        "power curves, alpha=3, W=4 (C decays — Fig 1a; NC is its reverse — Fig 1b)",
        &series,
        ChartOptions::default(),
    ));
    if let Ok(path) = ncss_analysis::write_svg(
        "fig1_power_curves",
        "Figure 1: single-job power curves (alpha=3, W=4)",
        &series,
        &ncss_analysis::SvgOptions { y_label: "power".into(), ..Default::default() },
    ) {
        out.push_str(&format!("svg written: {}\n", path.display()));
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn report_contains_invariants() {
        let r = super::run();
        assert!(r.contains("F1"));
        assert!(r.contains("Algorithm NC power"));
        // The flow/energy ratio column for alpha=2 should read 2.0000.
        assert!(r.contains("2.0000"));
    }
}
