//! E1–E6 — the paper's exactly-quantified structural lemmas, measured.
//!
//! | id | claim | tested as |
//! |----|-------|-----------|
//! | E1 | Lemma 3/21: Energy(NC) = Energy(C)              | max relative error |
//! | E2 | Lemma 4/22: F(NC) = F(C)/(1−1/α)                | max relative error |
//! | E3 | Lemma 8: F_int(NC) ≤ (2 − 1/α)·F(NC)            | max margin ≤ 0 |
//! | E4 | Lemma 6: speed profiles are rearrangements      | level-set distance |
//! | E5 | Lemma 2: single-job Algorithm C identities      | max relative error |
//! | E6 | Lemma 20: NC-PAR ≡ C-PAR assignments            | #mismatches |

use ncss_analysis::{fmt_f, parallel_map, Table};
use ncss_core::{run_c, run_nc_uniform, theory};
use ncss_multi::{run_c_par, run_nc_par};
use ncss_sim::kernel::DecayKernel;
use ncss_sim::profile::rearrangement_distance;
use ncss_sim::{Instance, PowerLaw};
use ncss_workloads::suite::uniform_suite;

use super::BASE_SEED;

/// Per-(α, suite) lemma measurements.
struct LemmaErrors {
    e1: f64,
    e2: f64,
    e3_margin: f64,
    e4: f64,
}

fn measure(instances: &[Instance], alpha: f64) -> LemmaErrors {
    let law = PowerLaw::new(alpha).expect("valid alpha");
    let per: Vec<LemmaErrors> = parallel_map(instances, |inst| {
        let c = run_c(inst, law).expect("C run");
        let nc = run_nc_uniform(inst, law).expect("NC run");
        let e1 = ncss_sim::numeric::rel_diff(nc.objective.energy, c.objective.energy);
        let ratio = theory::nc_over_c_flow_ratio(alpha);
        let e2 = ncss_sim::numeric::rel_diff(nc.objective.frac_flow, c.objective.frac_flow * ratio);
        let bound = theory::nc_integral_over_fractional_flow_bound(alpha);
        let e3_margin = nc.objective.int_flow / nc.objective.frac_flow - bound;
        let scale = (1.0 + nc.makespan()).max(1.0);
        let e4 = rearrangement_distance(&c.schedule, &nc.schedule, 256) / scale;
        LemmaErrors { e1, e2, e3_margin, e4 }
    });
    per.into_iter().fold(
        LemmaErrors { e1: 0.0, e2: 0.0, e3_margin: f64::NEG_INFINITY, e4: 0.0 },
        |acc, x| LemmaErrors {
            e1: acc.e1.max(x.e1),
            e2: acc.e2.max(x.e2),
            e3_margin: acc.e3_margin.max(x.e3_margin),
            e4: acc.e4.max(x.e4),
        },
    )
}

/// E5: Lemma 2 identities over a parameter grid.
fn lemma2_error() -> f64 {
    let mut worst: f64 = 0.0;
    for &alpha in &[1.5, 2.0, 2.5, 3.0, 4.0] {
        let law = PowerLaw::new(alpha).expect("valid alpha");
        for &rho in &[0.5, 1.0, 3.0] {
            for &w in &[0.25, 1.0, 10.0] {
                let k = DecayKernel { law, w0: w, rho };
                let t = k.time_to_empty();
                let beta = 1.0 - 1.0 / alpha;
                // (2): rho (1 - 1/alpha) t = W^{1-1/alpha}
                worst = worst.max(ncss_sim::numeric::rel_diff(rho * beta * t, w.powf(beta)));
                // (1)+(3): W/t = (1-1/alpha) dW/dt with dW/dt = rho W^{1/alpha}
                worst = worst.max(ncss_sim::numeric::rel_diff(w / t, beta * rho * w.powf(1.0 / alpha)));
            }
        }
    }
    worst
}

/// E6: Lemma 20 assignment identity over the suite.
fn lemma20_mismatches(instances: &[Instance], alpha: f64) -> usize {
    let law = PowerLaw::new(alpha).expect("valid alpha");
    let small: Vec<&Instance> = instances.iter().filter(|i| i.len() <= 20).collect();
    let counts: Vec<usize> = parallel_map(&small, |inst| {
        let mut bad = 0;
        for k in [2usize, 3, 4] {
            let c = run_c_par(inst, law, k).expect("C-PAR");
            let nc = run_nc_par(inst, law, k).expect("NC-PAR");
            if c.assignment != nc.assignment {
                bad += 1;
            }
        }
        bad
    });
    counts.into_iter().sum()
}

/// Run the experiment and return the report.
#[must_use]
pub fn run() -> String {
    let mut out = String::from("\n==== E1-E6: structural lemmas, measured on the uniform suite ====\n");
    let suite = uniform_suite(BASE_SEED);
    out.push_str(&format!("suite: {} instances, sizes 1..=40, seed {}\n", suite.len(), BASE_SEED));

    let mut table = Table::new(
        "maximum deviations over the suite (all should be ~1e-9 except E3's margin <= 0)",
        &["alpha", "E1 energy rel.err", "E2 flow-ratio rel.err", "E3 margin (<=0 ok)", "E4 profile dist", "E6 mismatches"],
    );
    for &alpha in &[1.5, 2.0, 3.0] {
        let e = measure(&suite, alpha);
        let m = lemma20_mismatches(&suite, alpha);
        table.row(vec![
            fmt_f(alpha),
            fmt_f(e.e1),
            fmt_f(e.e2),
            fmt_f(e.e3_margin),
            fmt_f(e.e4),
            format!("{m}"),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(&format!("E5 Lemma 2 identity max rel.err over grid: {}\n", fmt_f(lemma2_error())));
    out.push_str(&properties_section());
    out
}

/// Lemmas 11–13 (full-version Properties A/B and the completion stretch):
/// the empirical constants ζ, γ, ψ over the non-uniform suite.
fn properties_section() -> String {
    use ncss_core::properties::measure_properties;
    use ncss_core::{run_nc_nonuniform, NonUniformParams};
    use ncss_workloads::suite::nonuniform_suite;

    let alpha = 3.0;
    let law = PowerLaw::new(alpha).expect("valid alpha");
    let params = NonUniformParams { steps_per_job: 150, ..NonUniformParams::recommended(alpha) };
    let suite: Vec<Instance> = nonuniform_suite(BASE_SEED).into_iter().filter(|i| i.len() <= 10).collect();
    let results: Vec<_> = parallel_map(&suite, |inst| {
        let run = run_nc_nonuniform(inst, law, params).expect("NC run");
        measure_properties(inst, law, params.rounding_base, &run, 16).expect("properties")
    });
    let (mut zeta, mut gamma, mut psi) = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for p in &results {
        zeta = zeta.min(p.zeta);
        gamma = gamma.min(p.gamma);
        psi = psi.min(p.psi);
    }
    let mut table = Table::new(
        format!("Lemmas 11-13: empirical constants over {} non-uniform instances (alpha = {alpha}, eta = recommended)", suite.len()),
        &["constant", "paper claim", "measured worst"],
    );
    table.row(vec!["zeta (Property A)".into(), "some constant > 0".into(), fmt_f(zeta)]);
    table.row(vec!["gamma (Property B)".into(), "some constant > 0".into(), fmt_f(gamma)]);
    table.row(vec!["psi (Lemma 13)".into(), "some constant > 0".into(), fmt_f(psi)]);
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lemma_errors_are_tiny_on_a_subsuite() {
        let suite: Vec<Instance> = uniform_suite(BASE_SEED).into_iter().take(12).collect();
        for alpha in [2.0, 3.0] {
            let e = measure(&suite, alpha);
            assert!(e.e1 < 1e-7, "E1 {}", e.e1);
            assert!(e.e2 < 1e-7, "E2 {}", e.e2);
            assert!(e.e3_margin <= 1e-9, "E3 {}", e.e3_margin);
            assert!(e.e4 < 1e-6, "E4 {}", e.e4);
        }
        assert!(lemma2_error() < 1e-9);
    }

    #[test]
    fn no_assignment_mismatches_on_subsuite() {
        let suite: Vec<Instance> = uniform_suite(BASE_SEED).into_iter().filter(|i| i.len() <= 8).take(6).collect();
        assert_eq!(lemma20_mismatches(&suite, 2.0), 0);
    }
}
