//! F2 — Figure 2: how the two algorithms absorb an extra `dw` of weight
//! (the uniform-density inductive step).
//!
//! Two jobs: job 1 of weight `w₁` at time 0 (fully processed by time `T`)
//! and job 2 released at `r₂`, currently processed. Growing job 2 by `dw`
//! extends the non-clairvoyant run *locally at the end* by `dT` (Fig 2a),
//! while the clairvoyant run on the current instance changes from `r₂`
//! onward yet its completion shifts right by the **same** `dT` (Fig 2b) —
//! the heart of the Lemma 7 measure-preserving induction.

use ncss_analysis::{fmt_f, render_chart, ChartOptions, Series, Table};
use ncss_core::current_instance::current_instance;
use ncss_core::{run_c, run_nc_uniform};
use ncss_sim::{Instance, Job, PowerLaw};

/// Run the experiment and return the report.
#[must_use]
pub fn run() -> String {
    let mut out = String::from("\n==== F2: Figure 2 — absorbing dw of extra weight (uniform density) ====\n");
    let law = PowerLaw::new(2.0).expect("valid alpha");
    let (w1, r2, w2) = (2.0, 0.5, 1.5);
    let dw = 1e-4;

    let base = Instance::new(vec![Job::unit_density(0.0, w1), Job::unit_density(r2, w2)]).expect("instance");
    let grown = Instance::new(vec![Job::unit_density(0.0, w1), Job::unit_density(r2, w2 + dw)]).expect("instance");

    let nc_base = run_nc_uniform(&base, law).expect("NC base");
    let nc_grown = run_nc_uniform(&grown, law).expect("NC grown");
    let dt_nc = nc_grown.makespan() - nc_base.makespan();

    // Clairvoyant runs on the *current instances* I(T) and I(T + dT): at
    // the end of the NC runs these equal the base/grown instances.
    let (it, _) = current_instance(&base, &nc_base.schedule, nc_base.makespan() + 1.0).expect("I(T)");
    let (it_dt, _) =
        current_instance(&grown, &nc_grown.schedule, nc_grown.makespan() + 1.0).expect("I(T+dT)");
    let c_base = run_c(&it, law).expect("C on I(T)");
    let c_grown = run_c(&it_dt, law).expect("C on I(T+dT)");
    let dt_c = c_grown.makespan() - c_base.makespan();

    let mut table = Table::new(
        "the same dT on both sides (paper: dT' = dT)",
        &["quantity", "value"],
    );
    table.row(vec!["dw added to job 2".into(), fmt_f(dw)]);
    table.row(vec!["dT in Algorithm NC".into(), fmt_f(dt_nc)]);
    table.row(vec!["dT in Algorithm C on I(T)".into(), fmt_f(dt_c)]);
    table.row(vec!["relative difference".into(), fmt_f((dt_nc - dt_c).abs() / dt_nc.abs().max(1e-300))]);
    out.push_str(&table.render());

    // Weight trajectories of Algorithm C on I(T) vs I(T+dT): the curve
    // shifts right from r2 onward (Fig 2b shape).
    let horizon = c_grown.makespan();
    let curve = |run: &ncss_core::CRun, label: &str, sym: char| {
        Series::new(
            label,
            sym,
            run.schedule.sample(64, horizon).into_iter().map(|(t, _, p)| (t, p)).collect(),
        )
    };
    let series = [curve(&c_base, "C on I(T)", 'o'), curve(&c_grown, "C on I(T+dT)", 'x')];
    out.push_str(&render_chart(
        "Algorithm C remaining weight on I(T) (o) vs I(T+dT) (x)",
        &series,
        ChartOptions::default(),
    ));
    if let Ok(path) = ncss_analysis::write_svg(
        "fig2_weight_shift",
        "Figure 2: clairvoyant weight curves on I(T) vs I(T+dT)",
        &series,
        &ncss_analysis::SvgOptions { y_label: "remaining weight".into(), ..Default::default() },
    ) {
        out.push_str(&format!("svg written: {}\n", path.display()));
    }
    out.push_str(&inductive_framework(law));
    out
}

/// The Section 1.2 inductive framework, measured: the costs
/// `algo^{NC}(I(T))` and `algo^{C}(I(T))` as functions of `T`, and the
/// paper's Eqn (2): every increment of the NC cost is at most
/// `Γ' = 1/(1−1/α)` times the corresponding increment of the C surrogate
/// (energy increments are equal, flow increments carry the Lemma 4 ratio).
fn inductive_framework(law: PowerLaw) -> String {
    let mut out = String::from("\n-- Eqn (1)/(2): instantaneous competitiveness along the evolution --\n");
    let alpha = law.alpha();
    let inst = Instance::new(vec![
        Job::unit_density(0.0, 1.2),
        Job::unit_density(0.4, 0.8),
        Job::unit_density(1.0, 1.5),
    ])
    .expect("instance");
    let nc = run_nc_uniform(&inst, law).expect("NC");
    let horizon = nc.makespan();
    let gamma_prime = 1.0 / (1.0 - 1.0 / alpha);

    let mut prev = (0.0f64, 0.0f64);
    let mut worst_ratio = 0.0f64;
    let mut rows = Vec::new();
    let samples = 24;
    for i in 1..=samples {
        let t = horizon * i as f64 / samples as f64;
        let (it, _) = current_instance(&inst, &nc.schedule, t).expect("I(T)");
        if it.is_empty() {
            continue;
        }
        let cost_nc = run_nc_uniform(&it, law).expect("NC on I(T)").objective.fractional();
        let cost_c = run_c(&it, law).expect("C on I(T)").objective.fractional();
        let (d_nc, d_c) = (cost_nc - prev.0, cost_c - prev.1);
        if d_c > 1e-12 {
            worst_ratio = worst_ratio.max(d_nc / d_c);
        }
        prev = (cost_nc, cost_c);
        rows.push((t, cost_nc, cost_c));
    }
    let mut table = Table::new(
        format!("evolving costs on I(T) (alpha = {alpha}); increments must satisfy dNC <= {:.4} dC", gamma_prime),
        &["T", "algo_NC(I(T))", "algo_C(I(T))"],
    );
    for (t, a, b) in &rows {
        table.row(vec![fmt_f(*t), fmt_f(*a), fmt_f(*b)]);
    }
    out.push_str(&table.render());
    out.push_str(&format!(
        "worst observed increment ratio dNC/dC = {} (Eqn (2) bound {})\n",
        fmt_f(worst_ratio),
        fmt_f(gamma_prime)
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn dts_match_to_first_order() {
        let r = super::run();
        assert!(r.contains("F2"));
        // The relative-difference row exists; correctness of the value is
        // asserted in the integration tests (parse-free here).
        assert!(r.contains("relative difference"));
        assert!(r.contains("worst observed increment ratio"));
    }

    #[test]
    fn inductive_increments_respect_eqn2() {
        use ncss_core::current_instance::current_instance;
        use ncss_core::{run_c, run_nc_uniform};
        use ncss_sim::{Instance, Job, PowerLaw};
        let law = PowerLaw::new(3.0).unwrap();
        let inst = Instance::new(vec![
            Job::unit_density(0.0, 1.2),
            Job::unit_density(0.4, 0.8),
        ])
        .unwrap();
        let nc = run_nc_uniform(&inst, law).unwrap();
        let gamma_prime = 1.0 / (1.0 - 1.0 / 3.0);
        let mut prev = (0.0f64, 0.0f64);
        for i in 1..=16 {
            let t = nc.makespan() * i as f64 / 16.0;
            let (it, _) = current_instance(&inst, &nc.schedule, t).unwrap();
            if it.is_empty() {
                continue;
            }
            let a = run_nc_uniform(&it, law).unwrap().objective.fractional();
            let b = run_c(&it, law).unwrap().objective.fractional();
            let (da, db) = (a - prev.0, b - prev.1);
            if db > 1e-9 {
                assert!(da <= gamma_prime * db * (1.0 + 1e-6), "t={t}: {da} vs {} * {db}", gamma_prime);
            }
            prev = (a, b);
        }
    }
}
