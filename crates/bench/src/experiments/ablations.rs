//! E10 + A1–A3 — ablations of the design choices DESIGN.md calls out.
//!
//! * **E10** — the Section 5 reduction's ε: measured integral-cost factor
//!   vs the proven `max((1+ε)^α, 1+1/ε)`, and the location of the optimum.
//! * **A1** — the density-rounding base β of the non-uniform algorithm
//!   (the analysis wants β > 4).
//! * **A2** — the speed multiplier η, including the degeneration below the
//!   cold-start threshold `η_min(α)`.
//! * **A3** — FIFO vs newest-first information gathering under growth-law
//!   speed rules (the Section 1.2 FIFO/HDF conflict).

use ncss_analysis::{fmt_f, parallel_map, Table};
use ncss_core::baselines::{run_active_count, run_newest_first};
use ncss_core::{
    reduce_to_integral, run_c, run_nc_nonuniform, run_nc_uniform, theory, NonUniformParams,
};
use ncss_sim::{Instance, PowerLaw};
use ncss_workloads::fifo_stress;
use ncss_workloads::suite::{nonuniform_suite, tiny_suite};

use super::BASE_SEED;

fn e10_reduction_sweep(out: &mut String) {
    let alpha = 3.0;
    let law = PowerLaw::new(alpha).expect("valid alpha");
    let suite = tiny_suite(BASE_SEED, true);
    let base: Vec<_> = suite
        .iter()
        .map(|i| (i.clone(), run_nc_uniform(i, law).expect("NC base")))
        .collect();

    let mut table = Table::new(
        format!("E10: reduction cost factor vs eps (alpha = {alpha})"),
        &["eps", "max measured int/frac factor", "theory max((1+eps)^a, 1+1/eps)"],
    );
    let mut best = (f64::INFINITY, 0.0);
    for &eps in &[0.05, 0.1, 0.2, 0.3, 0.5, 0.8, 1.2, 2.0] {
        let factor = base
            .iter()
            .map(|(inst, nc)| {
                let red = reduce_to_integral(&nc.schedule, inst, eps).expect("reduction");
                red.objective.integral() / nc.objective.fractional()
            })
            .fold(0.0, f64::max);
        if factor < best.0 {
            best = (factor, eps);
        }
        table.row(vec![fmt_f(eps), fmt_f(factor), fmt_f(theory::reduction_factor(alpha, eps))]);
    }
    out.push_str(&table.render());
    out.push_str(&format!(
        "best measured eps ~ {} (theory argmin: {})\n",
        fmt_f(best.1),
        fmt_f(theory::optimal_reduction_epsilon(alpha))
    ));
}

fn a1_beta_sweep(out: &mut String) {
    let alpha = 3.0;
    let law = PowerLaw::new(alpha).expect("valid alpha");
    let suite: Vec<Instance> = nonuniform_suite(BASE_SEED).into_iter().filter(|i| i.len() <= 10).collect();
    let betas = [2.0, 3.0, 4.0, 5.0, 6.0, 8.0, 10.0];
    let rows: Vec<(f64, f64)> = parallel_map(&betas, |&beta| {
        let params = NonUniformParams { rounding_base: beta, ..NonUniformParams::recommended(alpha) };
        let worst = suite
            .iter()
            .map(|i| {
                let nc = run_nc_nonuniform(i, law, params).expect("NC run");
                let c = run_c(i, law).expect("C run");
                nc.objective.fractional() / c.objective.fractional()
            })
            .fold(0.0, f64::max);
        (beta, worst)
    });
    let mut table = Table::new(
        format!("A1: rounding base beta sweep (alpha = {alpha}; analysis requires beta > 4)"),
        &["beta", "worst cost vs Algorithm C"],
    );
    for (beta, worst) in rows {
        table.row(vec![fmt_f(beta), fmt_f(worst)]);
    }
    out.push_str(&table.render());
}

fn a2_eta_sweep(out: &mut String) {
    let alpha = 3.0;
    let law = PowerLaw::new(alpha).expect("valid alpha");
    let eta_min = theory::nonuniform_eta_min(alpha);
    let suite: Vec<Instance> = nonuniform_suite(BASE_SEED).into_iter().filter(|i| i.len() <= 5).collect();
    let factors = [0.6, 0.9, 1.05, 1.25, 1.6, 2.5];
    let rows: Vec<(f64, f64, f64)> = parallel_map(&factors, |&f| {
        let params = NonUniformParams { eta: f * eta_min, ..NonUniformParams::default() };
        let (mut flow, mut energy) = (0.0, 0.0);
        for i in &suite {
            let nc = run_nc_nonuniform(i, law, params).expect("NC run");
            flow += nc.objective.frac_flow;
            energy += nc.objective.energy;
        }
        (f, flow, energy)
    });
    let mut table = Table::new(
        format!("A2: speed multiplier eta sweep (eta_min(alpha={alpha}) = {})", fmt_f(eta_min)),
        &["eta/eta_min", "total frac flow", "total energy"],
    );
    for (f, flow, energy) in rows {
        table.row(vec![fmt_f(f), fmt_f(flow), fmt_f(energy)]);
    }
    out.push_str(&table.render());
    out.push_str("below eta/eta_min = 1 the flow-time blows up (the epsilon crawl); above, energy grows like eta^alpha.\n");
}

fn a3_fifo_vs_lifo(out: &mut String) {
    let alpha = 2.0;
    let law = PowerLaw::new(alpha).expect("valid alpha");
    let mut table = Table::new(
        "A3: information-gathering order on FIFO-stress instances (cost vs Algorithm C)",
        &["#small jobs", "NC (FIFO)", "newest-first (LIFO)", "active-count"],
    );
    for &n in &[4usize, 8, 16, 32] {
        let inst = fifo_stress(n, 8.0, 0.05, 0.2).expect("instance");
        let c = run_c(&inst, law).expect("C").objective.fractional();
        let nc = run_nc_uniform(&inst, law).expect("NC").objective.fractional();
        let lifo = run_newest_first(&inst, law).expect("LIFO").objective.fractional();
        let ajc = run_active_count(&inst, law).expect("AJC").objective.fractional();
        table.row(vec![format!("{n}"), fmt_f(nc / c), fmt_f(lifo / c), fmt_f(ajc / c)]);
    }
    out.push_str(&table.render());
}

/// A5: convergence of the non-uniform integrator — the only numerical
/// component. The midpoint rule should show roughly second-order decay of
/// the objective error against a fine reference.
fn a5_integrator_convergence(out: &mut String) {
    let alpha = 3.0;
    let law = PowerLaw::new(alpha).expect("valid alpha");
    let inst = nonuniform_suite(BASE_SEED).into_iter().find(|i| i.len() >= 4).expect("instance");
    let cost_at = |steps: usize| {
        let params = NonUniformParams { steps_per_job: steps, ..NonUniformParams::recommended(alpha) };
        run_nc_nonuniform(&inst, law, params).expect("NC run").objective.fractional()
    };
    let reference = cost_at(3200);
    let mut table = Table::new(
        "A5: integrator convergence (relative error vs 3200-step reference)",
        &["steps/job", "fractional objective", "rel. error"],
    );
    for &steps in &[50usize, 100, 200, 400, 800] {
        let c = cost_at(steps);
        table.row(vec![
            format!("{steps}"),
            fmt_f(c),
            fmt_f((c - reference).abs() / reference),
        ]);
    }
    out.push_str(&table.render());
}

/// Run the experiment and return the report.
#[must_use]
pub fn run() -> String {
    let mut out = String::from("\n==== E10 + A1-A3 (+A5): ablations ====\n");
    e10_reduction_sweep(&mut out);
    a1_beta_sweep(&mut out);
    a2_eta_sweep(&mut out);
    a3_fifo_vs_lifo(&mut out);
    a5_integrator_convergence(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduction_factor_never_exceeds_theory() {
        let alpha = 2.0;
        let law = PowerLaw::new(alpha).unwrap();
        let inst = tiny_suite(BASE_SEED, true).remove(2);
        let nc = run_nc_uniform(&inst, law).unwrap();
        for eps in [0.2, 0.5, 1.0] {
            let red = reduce_to_integral(&nc.schedule, &inst, eps).unwrap();
            let factor = red.objective.integral() / nc.objective.fractional();
            assert!(factor <= theory::reduction_factor(alpha, eps) * (1.0 + 1e-9), "eps {eps}: {factor}");
        }
    }

    #[test]
    fn fifo_beats_lifo_on_stress() {
        let law = PowerLaw::new(2.0).unwrap();
        let inst = fifo_stress(16, 8.0, 0.05, 0.2).unwrap();
        let nc = run_nc_uniform(&inst, law).unwrap().objective.fractional();
        let lifo = run_newest_first(&inst, law).unwrap().objective.fractional();
        assert!(nc < lifo, "FIFO {nc} vs LIFO {lifo}");
    }
}
