//! E7 — the Section 6 immediate-dispatch lower bound `Ω(k^{1−1/α})`.
//!
//! Plays the adaptive-adversary game against deterministic dispatch
//! policies for growing machine counts and fits the log-log slope of the
//! measured ratio, which should track the paper's exponent `1 − 1/α`.

use ncss_analysis::{fmt_f, parallel_map, render_chart, ChartOptions, Series, Table};
use ncss_core::theory;
use ncss_multi::{fit_loglog_slope, immediate_dispatch_game, LeastCount, RoundRobin};
use ncss_sim::PowerLaw;

const KS: [usize; 5] = [2, 4, 8, 16, 32];

/// Ratio curve for one (α, policy) combination.
fn curve(alpha: f64, policy_name: &str) -> Vec<(usize, f64)> {
    let law = PowerLaw::new(alpha).expect("valid alpha");
    let ks: Vec<usize> = KS.to_vec();
    parallel_map(&ks, |&k| {
        let out = match policy_name {
            "round-robin" => {
                let mut p = RoundRobin::default();
                immediate_dispatch_game(law, k, &mut p, 1.0, 1e-4)
            }
            _ => {
                let mut p = LeastCount::default();
                immediate_dispatch_game(law, k, &mut p, 1.0, 1e-4)
            }
        }
        .expect("game");
        (k, out.ratio)
    })
}

/// Run the experiment and return the report.
#[must_use]
pub fn run() -> String {
    let mut out = String::from("\n==== E7: immediate-dispatch lower bound Omega(k^{1-1/alpha}) ====\n");
    let mut table = Table::new(
        "measured ratio vs k (adaptive adversary, k^2 look-alike jobs)",
        &["alpha", "policy", "k=2", "k=4", "k=8", "k=16", "k=32", "fitted slope", "theory 1-1/alpha"],
    );
    let mut series = Vec::new();
    for &alpha in &[1.5, 2.0, 3.0] {
        for policy in ["round-robin", "least-count"] {
            let pts = curve(alpha, policy);
            let slope = fit_loglog_slope(&pts);
            let mut row = vec![fmt_f(alpha), policy.to_string()];
            row.extend(pts.iter().map(|&(_, r)| fmt_f(r)));
            row.push(fmt_f(slope));
            row.push(fmt_f(theory::immediate_dispatch_lb_exponent(alpha)));
            table.row(row);
            if policy == "round-robin" {
                series.push(Series::new(
                    format!("alpha={alpha}"),
                    char::from_digit(alpha as u32, 10).unwrap_or('*'),
                    pts.iter().map(|&(k, r)| (k as f64, r)).collect(),
                ));
            }
        }
    }
    out.push_str(&table.render());
    out.push_str(&render_chart(
        "ratio vs k (log-log; straight lines with slope 1-1/alpha)",
        &series,
        ChartOptions { log_x: true, log_y: true, ..Default::default() },
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slope_tracks_exponent() {
        for &alpha in &[2.0, 3.0] {
            let pts = curve(alpha, "round-robin");
            let slope = fit_loglog_slope(&pts);
            let theory = theory::immediate_dispatch_lb_exponent(alpha);
            assert!(
                (slope - theory).abs() < 0.2,
                "alpha={alpha}: slope {slope} vs theory {theory}"
            );
        }
    }
}
