//! T1 — Table 1: the paper's summary of competitive ratios, with measured
//! counterparts.
//!
//! For each of the four settings (integral/fractional × uniform/arbitrary
//! density) the paper reports the best clairvoyant bound, the known-weight
//! non-clairvoyant bound, and its own known-density bound. This experiment
//! reprints those theory columns and adds the *measured* worst ratio of our
//! implementations over the corresponding instance suite, against the
//! certified fractional-OPT dual lower bound (so measured ratios
//! over-state, never under-state, the truth; see `ncss-opt`).

use ncss_analysis::{fmt_f, measure_suite, Table};
use ncss_core::{
    reduce_to_integral, run_c, run_nc_nonuniform, run_nc_uniform, theory, NonUniformParams,
};
use ncss_sim::{Instance, PowerLaw};
use ncss_workloads::suite::tiny_suite;

use super::{solver_options, BASE_SEED};

fn max_ratio(
    instances: &[Instance],
    law: PowerLaw,
    alg: impl Fn(&Instance) -> ncss_sim::SimResult<f64> + Sync,
) -> f64 {
    measure_suite(instances, law, solver_options(), alg)
        .expect("suite measurement")
        .summary
        .max
}

/// Run the experiment and return the report.
#[must_use]
pub fn run() -> String {
    let mut out = String::from("\n==== T1: Table 1 — summary of competitive ratios (theory vs measured) ====\n");
    out.push_str("measured = worst algorithm-cost / certified OPT lower bound over the suite\n");

    let uniform = tiny_suite(BASE_SEED, true);
    let nonuniform = tiny_suite(BASE_SEED.wrapping_add(1), false);

    let mut table = Table::new(
        "Table 1 (paper) + measured columns",
        &[
            "setting",
            "alpha",
            "clairvoyant",
            "NC known-weight",
            "NC known-density (paper)",
            "measured C",
            "measured NC",
        ],
    );

    for &alpha in &[1.5, 2.0, 3.0] {
        let law = PowerLaw::new(alpha).expect("valid alpha");

        // Fractional, unit density.
        let c_frac = max_ratio(&uniform, law, |i| Ok(run_c(i, law)?.objective.fractional()));
        let nc_frac = max_ratio(&uniform, law, |i| Ok(run_nc_uniform(i, law)?.objective.fractional()));
        table.row(vec![
            "fractional / unit density".into(),
            fmt_f(alpha),
            format!("{} [BCP09]", fmt_f(theory::c_fractional_bound())),
            "-".into(),
            fmt_f(theory::nc_uniform_fractional_bound(alpha)),
            fmt_f(c_frac),
            fmt_f(nc_frac),
        ]);

        // Integral, unit density. OPT_int >= OPT_frac, so the dual bound
        // stays valid. The known-weight column also gets a measured value:
        // the weighted-processor-sharing algorithm of that model.
        let c_int = max_ratio(&uniform, law, |i| Ok(run_c(i, law)?.objective.integral()));
        let nc_int = max_ratio(&uniform, law, |i| Ok(run_nc_uniform(i, law)?.objective.integral()));
        let kw_int = max_ratio(&uniform, law, |i| {
            Ok(ncss_core::run_known_weight_sharing(i, law)?.objective.integral())
        });
        table.row(vec![
            "integral / unit density".into(),
            fmt_f(alpha),
            format!("{} [BPS09]", fmt_f(theory::c_integral_unit_bound())),
            format!("{} [CELLMP11], measured {}", fmt_f(theory::known_weight_unit_bound(alpha)), fmt_f(kw_int)),
            fmt_f(theory::nc_uniform_integral_bound(alpha)),
            fmt_f(c_int),
            fmt_f(nc_int),
        ]);

        if alpha >= 2.0 {
            // Arbitrary density (the non-uniform algorithm is integrated
            // numerically; keep it to the alphas its defaults target).
            let params = NonUniformParams::recommended(alpha);
            let c_nfrac = max_ratio(&nonuniform, law, |i| Ok(run_c(i, law)?.objective.fractional()));
            let nc_nfrac = max_ratio(&nonuniform, law, |i| {
                Ok(run_nc_nonuniform(i, law, params)?.objective.fractional())
            });
            table.row(vec![
                "fractional / arbitrary density".into(),
                fmt_f(alpha),
                format!("{} [BCP09]", fmt_f(theory::c_fractional_bound())),
                "-".into(),
                format!("2^O(alpha) (~{})", fmt_f(theory::nc_nonuniform_indicative_bound(alpha))),
                fmt_f(c_nfrac),
                fmt_f(nc_nfrac),
            ]);

            let eps = theory::optimal_reduction_epsilon(alpha);
            let nc_nint = max_ratio(&nonuniform, law, |i| {
                let base = run_nc_nonuniform(i, law, params)?;
                Ok(reduce_to_integral(&base.schedule, i, eps)?.objective.integral())
            });
            table.row(vec![
                "integral / arbitrary density".into(),
                fmt_f(alpha),
                "O(alpha/log alpha) [BPS09+BCP09]".into(),
                format!("{} [LLTW08, r=0]", fmt_f(theory::known_weight_batch_bound(alpha))),
                format!("2^O(alpha) (~{})", fmt_f(theory::nc_nonuniform_indicative_bound(alpha))),
                "-".into(),
                fmt_f(nc_nint),
            ]);
        }
    }
    out.push_str(&table.render());
    out.push_str(
        "notes: measured C <= 2 and measured NC <= paper bound certify the reproduction;\n\
         the known-weight column is the contrasting model from the related work.\n",
    );
    out.push_str(&integral_bracket_section(&uniform));
    out
}

/// The integral columns above use the fractional dual as the OPT proxy; on
/// the smallest instances we can bracket the *integral* optimum directly
/// (YDS energy under a completion-time search) and report the truer ratio.
fn integral_bracket_section(uniform: &[Instance]) -> String {
    use ncss_opt::integral_opt_upper;
    let alpha = 2.0;
    let law = PowerLaw::new(alpha).expect("valid alpha");
    let mut table = Table::new(
        "integral-OPT bracket on the small instances (alpha = 2)",
        &["jobs", "frac dual (lb)", "integral upper", "NC int cost", "NC ratio vs int-ub"],
    );
    for inst in uniform.iter().filter(|i| i.len() <= 4) {
        let frac = ncss_opt::solve_fractional_opt(inst, law, super::solver_options()).expect("solver");
        let ub = integral_opt_upper(inst, law, 20).expect("integral bracket");
        let nc = run_nc_uniform(inst, law).expect("NC").objective.integral();
        table.row(vec![
            format!("{}", inst.len()),
            fmt_f(frac.dual_bound),
            fmt_f(ub.cost),
            fmt_f(nc),
            fmt_f(nc / ub.cost),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_rows_respect_paper_bounds() {
        // A trimmed inline version of T1's pass criteria (alpha = 2).
        let law = PowerLaw::new(2.0).unwrap();
        let suite = tiny_suite(BASE_SEED, true);
        let c = max_ratio(&suite, law, |i| Ok(run_c(i, law)?.objective.fractional()));
        let nc = max_ratio(&suite, law, |i| Ok(run_nc_uniform(i, law)?.objective.fractional()));
        // 10% slack absorbs the OPT duality gap.
        assert!(c <= theory::c_fractional_bound() * 1.10, "C {c}");
        assert!(nc <= theory::nc_uniform_fractional_bound(2.0) * 1.10, "NC {nc}");
        let nc_int = max_ratio(&suite, law, |i| Ok(run_nc_uniform(i, law)?.objective.integral()));
        assert!(nc_int <= theory::nc_uniform_integral_bound(2.0) * 1.10, "NC int {nc_int}");
    }
}
