//! E9 + A4 — the Section 7 open-problems observations.
//!
//! * **E9** — the "somewhat surprising fact": `l` jobs with densities
//!   `1, ρ, …, ρ^{l−1}`, each costing `c` alone, cost at most `4·l·c` on a
//!   *single* machine when `ρ ≥ 4` — so non-uniform densities cannot force
//!   the immediate-dispatch lower bound via the Section 6 route.
//! * **A4** — the natural non-clairvoyant heuristic for non-uniform
//!   densities on parallel machines (explicit dispatch + per-machine
//!   non-uniform NC), measured against clairvoyant C-PAR.

use ncss_analysis::{fmt_f, Table};
use ncss_core::{run_c, NonUniformParams};
use ncss_multi::{run_c_par, run_nonuniform_with_assignment, LeastCount, RoundRobin, ImmediateDispatch};
use ncss_opt::{solve_fractional_opt, SolverOptions};
use ncss_sim::PowerLaw;
use ncss_workloads::geometric_density_chain;
use ncss_workloads::suite::nonuniform_suite;

use super::BASE_SEED;

fn e9_geometric_chain(out: &mut String) {
    let alpha = 3.0;
    let law = PowerLaw::new(alpha).expect("valid alpha");
    let unit_cost = 1.0;
    let mut table = Table::new(
        "E9: l geometric-density jobs, each costing c alone, on ONE machine (paper: <= 4 l c for rho >= 4)",
        &["l", "rho", "OPT upper (solver) / (l c)", "Algorithm C / (l c)"],
    );
    for &rho in &[4.0, 6.0] {
        for &l in &[2usize, 4, 6, 8] {
            let inst = geometric_density_chain(law, l, rho, unit_cost).expect("chain");
            let c = run_c(&inst, law).expect("C").objective.fractional();
            let opts = SolverOptions { steps: 600, max_iters: 400, ..Default::default() };
            let opt = solve_fractional_opt(&inst, law, opts).expect("solver");
            let denom = l as f64 * unit_cost;
            table.row(vec![
                format!("{l}"),
                fmt_f(rho),
                fmt_f(opt.primal_cost / denom),
                fmt_f(c / denom),
            ]);
        }
    }
    out.push_str(&table.render());
    out.push_str("the OPT-upper column staying below 4 reproduces the paper's fact.\n");
}

fn a4_nonuniform_multi(out: &mut String) {
    let alpha = 3.0;
    let law = PowerLaw::new(alpha).expect("valid alpha");
    let params = NonUniformParams::recommended(alpha);
    let suite: Vec<_> = nonuniform_suite(BASE_SEED).into_iter().filter(|i| i.len() <= 10).take(4).collect();
    let mut table = Table::new(
        "A4: non-uniform density on k machines — heuristics vs C-PAR (open problem)",
        &["instance", "k", "round-robin / C-PAR", "least-count / C-PAR", "lazy-HDF / C-PAR"],
    );
    for (idx, inst) in suite.iter().enumerate() {
        for &k in &[2usize, 3] {
            let cpar = run_c_par(inst, law, k).expect("C-PAR").objective.fractional();
            let ratio_for = |policy: &mut dyn ImmediateDispatch| {
                let assignment = ncss_multi::collect_assignment(inst, k, policy);
                run_nonuniform_with_assignment(inst, law, &assignment, k, params)
                    .expect("NC per machine")
                    .objective
                    .fractional()
                    / cpar
            };
            let rr = ratio_for(&mut RoundRobin::default());
            let lc = ratio_for(&mut LeastCount::default());
            let lazy = ncss_multi::run_lazy_hdf(inst, law, k, params.rounding_base)
                .expect("lazy HDF")
                .objective
                .fractional()
                / cpar;
            table.row(vec![format!("#{idx}"), format!("{k}"), fmt_f(rr), fmt_f(lc), fmt_f(lazy)]);
        }
    }
    out.push_str(&table.render());
    out.push_str(
        "no constant-competitive algorithm is known here (Section 7); lazy-HDF is the\n\
         paper's suggested candidate (dispatch only as needed, HDF on rounded densities).\n",
    );
}

/// Theorem 17's shape: the NC-PAR/C-PAR cost ratio must stay flat as the
/// machine count grows (the competitive loss of non-clairvoyance is a
/// constant in k, only a function of α).
fn theorem17_machine_sweep(out: &mut String) {
    use ncss_multi::run_nc_par;
    use ncss_workloads::{VolumeDist, WorkloadSpec};

    let mut table = Table::new(
        "Theorem 17 shape: NC-PAR / C-PAR fractional cost vs machine count (uniform density)",
        &["alpha", "k=1", "k=2", "k=4", "k=8", "theory 1/2 + 1/(2-2/alpha)"],
    );
    for &alpha in &[2.0, 3.0] {
        let law = PowerLaw::new(alpha).expect("valid alpha");
        let inst = WorkloadSpec::uniform(30, 2.0, VolumeDist::Exponential { mean: 1.0 })
            .generate(super::BASE_SEED)
            .expect("valid spec");
        let mut row = vec![fmt_f(alpha)];
        for &k in &[1usize, 2, 4, 8] {
            let c = run_c_par(&inst, law, k).expect("C-PAR").objective.fractional();
            let nc = run_nc_par(&inst, law, k).expect("NC-PAR").objective.fractional();
            row.push(fmt_f(nc / c));
        }
        // E_NC = E_C, F_NC = F_C/(1-1/alpha), E_C = F_C: ratio is exactly
        // (1 + 1/(1-1/alpha))/2, independent of k.
        let gamma = 1.0 / (1.0 - 1.0 / alpha);
        row.push(fmt_f(0.5 * (1.0 + gamma)));
        table.row(row);
    }
    out.push_str(&table.render());
    out.push_str("the flat rows are Lemmas 21-22 lifting to any machine count.\n");
}

/// Run the experiment and return the report.
#[must_use]
pub fn run() -> String {
    let mut out = String::from("\n==== E9 + A4: Section 7 open problems ====\n");
    e9_geometric_chain(&mut out);
    a4_nonuniform_multi(&mut out);
    theorem17_machine_sweep(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e9_fact_holds_for_small_chain() {
        let alpha = 3.0;
        let law = PowerLaw::new(alpha).unwrap();
        let inst = geometric_density_chain(law, 4, 4.0, 1.0).unwrap();
        let opts = SolverOptions { steps: 500, max_iters: 300, ..Default::default() };
        let opt = solve_fractional_opt(&inst, law, opts).unwrap();
        // OPT (via the feasible primal) <= 4 l c.
        assert!(opt.primal_cost <= 4.0 * 4.0 * 1.0, "primal {}", opt.primal_cost);
    }
}
