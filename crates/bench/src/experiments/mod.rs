//! Experiment implementations, one module per paper artifact.
//!
//! Each experiment is a pure function returning its full report as a
//! `String`, so the same code backs the `src/bin/*` binaries, the
//! `repro_experiments` bench target, and the integration tests. The
//! experiment ids (T1, F1–F3, E1–E10, A1–A4) are indexed in DESIGN.md.

pub mod ablations;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod lemmas;
pub mod lower_bound;
pub mod open_problems;
pub mod table1;

use ncss_opt::SolverOptions;

/// Base seed for every suite (the conference's opening date).
pub const BASE_SEED: u64 = 20150613;

/// Solver options balancing accuracy and harness runtime.
#[must_use]
pub fn solver_options() -> SolverOptions {
    SolverOptions { steps: 700, max_iters: 500, ..Default::default() }
}

/// Run every experiment in DESIGN.md order, concatenating the reports.
#[must_use]
pub fn run_all() -> String {
    let mut out = String::new();
    out.push_str(&table1::run());
    out.push_str(&fig1::run());
    out.push_str(&fig2::run());
    out.push_str(&fig3::run());
    out.push_str(&lemmas::run());
    out.push_str(&lower_bound::run());
    out.push_str(&ablations::run());
    out.push_str(&open_problems::run());
    out
}
