//! F3 — Figure 3: the preemption-interval structure of Algorithm C in the
//! non-uniform analysis.
//!
//! A low-density job `j*` is repeatedly preempted by higher-density
//! arrivals; the paper indexes the preemption intervals `[R̂_i, ·]` with
//! preempting volumes `V̂_i` and argues about the last one separately. This
//! experiment reconstructs the figure's annotated quantities from a real
//! Algorithm C run.

use ncss_analysis::{fmt_f, render_chart, ChartOptions, Series, Table};
use ncss_core::preemption::preemption_intervals;
use ncss_core::run_c;
use ncss_sim::{Instance, Job, PowerLaw};

/// The instance sketched in Figure 3: `j*` released at `t₁` with two
/// preemption intervals, the second still open at the "current time".
#[must_use]
pub fn figure3_instance() -> Instance {
    Instance::new(vec![
        Job::new(0.0, 5.0, 1.0),  // j* (low density)
        Job::new(0.6, 0.4, 25.0), // first preemptor burst
        Job::new(0.7, 0.3, 5.0),
        Job::new(2.2, 0.5, 25.0), // second preemptor burst
        Job::new(2.3, 0.4, 5.0),
    ])
    .expect("valid instance")
}

/// Run the experiment and return the report.
#[must_use]
pub fn run() -> String {
    let mut out = String::from("\n==== F3: Figure 3 — preemption intervals of j* in Algorithm C ====\n");
    let law = PowerLaw::new(2.0).expect("valid alpha");
    let inst = figure3_instance();
    let run = run_c(&inst, law).expect("C run");
    let ivs = preemption_intervals(&run, &inst, 0);

    let mut table = Table::new(
        "preemption intervals of j* (paper notation: Rhat_i, Vhat_i)",
        &["i", "Rhat_i (start)", "end", "Vhat_i (preempting volume)"],
    );
    for (i, iv) in ivs.iter().enumerate() {
        table.row(vec![format!("{}", i + 1), fmt_f(iv.start), fmt_f(iv.end), fmt_f(iv.volume)]);
    }
    out.push_str(&table.render());

    // Remaining volume of j* over time: flat during preemption intervals,
    // draining while in service (the dotted/solid alternation of Fig 3).
    let horizon = run.per_job.completion[0];
    let pl = run.schedule.power_law();
    let mut pts = Vec::new();
    let samples = 96;
    for i in 0..=samples {
        let t = horizon * i as f64 / samples as f64;
        let processed: f64 = run
            .schedule
            .segments()
            .iter()
            .filter(|s| s.job == Some(0) && s.start < t)
            .map(|s| s.volume_to(pl, t.min(s.end)))
            .sum();
        pts.push((t, inst.job(0).volume - processed));
    }
    let series = [Series::new("V_{j*}(t)", '*', pts)];
    out.push_str(&render_chart(
        "remaining volume of j* (flat spans = preemption intervals)",
        &series,
        ChartOptions::default(),
    ));
    if let Ok(path) = ncss_analysis::write_svg(
        "fig3_preemption_intervals",
        "Figure 3: remaining volume of j* with preemption intervals",
        &series,
        &ncss_analysis::SvgOptions { y_label: "remaining volume of j*".into(), ..Default::default() },
    ) {
        out.push_str(&format!("svg written: {}\n", path.display()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_preemption_intervals_detected() {
        let law = PowerLaw::new(2.0).unwrap();
        let inst = figure3_instance();
        let c = run_c(&inst, law).unwrap();
        let ivs = preemption_intervals(&c, &inst, 0);
        assert_eq!(ivs.len(), 2, "{ivs:?}");
        let report = super::run();
        assert!(report.contains("Rhat_i"));
    }
}
