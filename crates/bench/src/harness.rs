//! Minimal in-repo benchmark harness — the offline replacement for
//! Criterion.
//!
//! Each measurement runs `warmup` unrecorded iterations, then `iters`
//! timed iterations, and reports min / mean / median / p95 / max
//! wall-clock nanoseconds per iteration. Results print as an aligned
//! table and are appended to a `BENCH_<suite>.json` file in the current
//! directory (override with `NCSS_BENCH_DIR`), so the perf trajectory of
//! the hot paths can be recorded per commit. See EXPERIMENTS.md
//! ("Performance benches") for the JSON schema and how to read it.
//!
//! Environment knobs:
//! * `NCSS_BENCH_ITERS` — override every measurement's iteration count,
//! * `NCSS_BENCH_WARMUP` — override every measurement's warmup count.

use std::io::Write as _;
use std::time::Instant;

use ncss_audit::AuditReport;

/// Re-export of [`std::hint::black_box`] so benches don't reach into
/// `std::hint` themselves (Criterion's `black_box` had the same role).
pub use std::hint::black_box;

/// Audit verdict attached to a measurement: was the timed algorithm's
/// output independently checked (`ncss-audit`) before measurement?
///
/// Every `BENCH_*.json` entry carries one of these, so a regression that
/// makes an algorithm faster *by making it wrong* cannot slip through a
/// perf run unnoticed. [`Suite::finish`] fails the whole bench binary when
/// any verdict is [`AuditVerdict::Fail`] — after writing the JSON, so the
/// failing entry is on disk for inspection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AuditVerdict {
    /// The run was audited and every invariant held.
    Pass,
    /// The run was audited and at least one invariant was violated.
    Fail,
    /// No audit was attempted (micro-benches of non-algorithm code, or
    /// outputs with no schedule to check).
    #[default]
    Skipped,
}

impl AuditVerdict {
    /// Map an audit's boolean outcome (e.g. `CheckedRun::audit_passed`).
    #[must_use]
    pub fn from_passed(passed: bool) -> Self {
        if passed {
            Self::Pass
        } else {
            Self::Fail
        }
    }

    /// The JSON string value.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Pass => "pass",
            Self::Fail => "fail",
            Self::Skipped => "skipped",
        }
    }
}

/// Which auditor produced a measurement's verdict: the batch
/// [`ScheduleAudit`](ncss_audit::ScheduleAudit) over the finished run, or
/// the event-driven [`IncrementalAudit`](ncss_audit::IncrementalAudit)
/// riding the stream. Recorded per row (`audit_mode` in `BENCH_*.json`,
/// schema `ncss-bench/3`) so a baseline diff can tell "the auditor got
/// slower" apart from "a different auditor was measured".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AuditMode {
    /// Batch audit of the completed schedule (the default).
    #[default]
    Batch,
    /// Incremental audit fed event-by-event during the run.
    Incremental,
}

impl AuditMode {
    /// The JSON string value.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Batch => "batch",
            Self::Incremental => "incremental",
        }
    }
}

/// One named check's cost and worst residual, copied from the audit that
/// gated a measurement — the `audit_timing.checks[]` rows of
/// `BENCH_*.json` (schema in EXPERIMENTS.md, "Performance benches").
#[derive(Debug, Clone, PartialEq)]
pub struct CheckTiming {
    /// The invariant's stable kebab-case name (e.g. `energy-recomputed`).
    pub name: String,
    /// Wall-clock nanoseconds the check took inside the audit.
    pub elapsed_ns: u64,
    /// Worst residual the check observed (serialised as `null` when
    /// non-finite, since JSON has no `inf`/NaN).
    pub residual: f64,
}

/// The audit's own cost, attached to every measurement: per-check timing
/// and residual magnitude plus the audit's total wall-time. Present on
/// every `BENCH_*.json` row — empty (`total_ns: 0`, no checks) when the
/// measurement was not audit-gated — so the perf trajectory of the
/// auditor itself is recorded alongside the algorithms it guards.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AuditTiming {
    /// Total wall-clock nanoseconds across all checks.
    pub total_ns: u64,
    /// One row per check, in the order the audit ran them.
    pub checks: Vec<CheckTiming>,
}

impl AuditTiming {
    /// Copy the timing and residual columns out of an [`AuditReport`].
    #[must_use]
    pub fn from_report(report: &AuditReport) -> Self {
        Self {
            total_ns: report.total_ns(),
            checks: report
                .checks
                .iter()
                .map(|c| CheckTiming {
                    name: c.name.to_string(),
                    elapsed_ns: c.elapsed_ns,
                    residual: c.residual,
                })
                .collect(),
        }
    }

    fn json(&self) -> String {
        let checks: Vec<String> = self
            .checks
            .iter()
            .map(|c| {
                format!(
                    "{{\"name\":{},\"elapsed_ns\":{},\"residual\":{}}}",
                    json_string(&c.name),
                    c.elapsed_ns,
                    json_f64(c.residual),
                )
            })
            .collect();
        format!("{{\"total_ns\":{},\"checks\":[{}]}}", self.total_ns, checks.join(","))
    }
}

/// JSON-safe float: JSON has no `inf`/NaN, so non-finite residuals
/// serialise as `null` (readers treat `null` as "off the scale").
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:e}")
    } else {
        "null".to_string()
    }
}

/// One benchmark measurement: per-iteration wall-clock statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Benchmark id, e.g. `algorithm_c/100`.
    pub name: String,
    /// Audit verdict for the benched algorithm's output.
    pub audit: AuditVerdict,
    /// Which auditor produced the verdict (batch or incremental).
    pub audit_mode: AuditMode,
    /// Per-check audit cost (empty when the audit was skipped).
    pub audit_timing: AuditTiming,
    /// Unrecorded warmup iterations that preceded timing.
    pub warmup: u32,
    /// Timed iterations.
    pub iters: u32,
    /// Fastest iteration, nanoseconds.
    pub min_ns: u64,
    /// Arithmetic mean, nanoseconds.
    pub mean_ns: u64,
    /// Median iteration, nanoseconds.
    pub median_ns: u64,
    /// 95th-percentile iteration, nanoseconds.
    pub p95_ns: u64,
    /// Slowest iteration, nanoseconds.
    pub max_ns: u64,
    /// Named scalar results the bench derived alongside the timing — e.g.
    /// the fleet k-sweep's measured degradation ratio next to the paper's
    /// `k^{1−1/α}` bound. Serialised as a `"metrics":{...}` object (schema
    /// `ncss-bench/4`) only when non-empty, so rows without metrics are
    /// byte-identical to the `ncss-bench/3` layout. `bench-diff` compares
    /// metrics by relative drift the way it compares residuals.
    pub metrics: Vec<(String, f64)>,
    /// Per-phase attribution from the `ncss_sim::profile` scoped timers:
    /// `(phase name, total ns, scope count)` rows from a *separate*
    /// profiled pass — never the timed iterations themselves, since the
    /// thread-local timestamping would contaminate the quantiles.
    /// Serialised as a `"phases":{...}` object (schema `ncss-bench/5`)
    /// only when non-empty; phase totals answer "which stage got slower"
    /// when a timing row regresses, not "how fast is it" (use the
    /// quantiles for that).
    pub phases: Vec<(String, u64, u64)>,
}

impl Measurement {
    fn json(&self) -> String {
        let metrics = if self.metrics.is_empty() {
            String::new()
        } else {
            let rows: Vec<String> = self
                .metrics
                .iter()
                .map(|(k, v)| format!("{}:{}", json_string(k), json_f64(*v)))
                .collect();
            format!(",\"metrics\":{{{}}}", rows.join(","))
        };
        let phases = if self.phases.is_empty() {
            String::new()
        } else {
            let rows: Vec<String> = self
                .phases
                .iter()
                .map(|(k, ns, count)| {
                    format!("{}:{{\"ns\":{ns},\"count\":{count}}}", json_string(k))
                })
                .collect();
            format!(",\"phases\":{{{}}}", rows.join(","))
        };
        format!(
            "{{\"name\":{},\"audit\":{},\"audit_mode\":{},\"audit_timing\":{},\"warmup\":{},\"iters\":{},\
             \"min_ns\":{},\"mean_ns\":{},\"median_ns\":{},\"p95_ns\":{},\"max_ns\":{}{}{}}}",
            json_string(&self.name),
            json_string(self.audit.as_str()),
            json_string(self.audit_mode.as_str()),
            self.audit_timing.json(),
            self.warmup,
            self.iters,
            self.min_ns,
            self.mean_ns,
            self.median_ns,
            self.p95_ns,
            self.max_ns,
            metrics,
            phases,
        )
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Percentile by the nearest-rank method on a sorted slice.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    debug_assert!(!sorted.is_empty());
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// A named collection of measurements, written out as one JSON file.
#[derive(Debug)]
pub struct Suite {
    name: String,
    env_warmup: Option<u32>,
    env_iters: Option<u32>,
    results: Vec<Measurement>,
}

impl Suite {
    /// New suite with default warmup 3 / iters 30 (env-overridable).
    #[must_use]
    pub fn new(name: &str) -> Self {
        let env = |key: &str| std::env::var(key).ok().and_then(|s| s.parse::<u32>().ok());
        Self {
            name: name.to_string(),
            env_warmup: env("NCSS_BENCH_WARMUP"),
            env_iters: env("NCSS_BENCH_ITERS"),
            results: Vec::new(),
        }
    }

    /// Measure `f` with the suite defaults (warmup 3, iters 30) and no
    /// audit verdict ([`AuditVerdict::Skipped`]).
    pub fn bench<F: FnMut()>(&mut self, name: &str, f: F) {
        self.bench_with(name, 3, 30, f);
    }

    /// Measure `f` with explicit warmup/iteration counts and no audit
    /// verdict. The `NCSS_BENCH_WARMUP` / `NCSS_BENCH_ITERS` env knobs
    /// override both counts globally so smoke runs can cut every bench
    /// short.
    pub fn bench_with<F: FnMut()>(&mut self, name: &str, warmup: u32, iters: u32, f: F) {
        self.bench_audited_with(name, AuditVerdict::Skipped, warmup, iters, f);
    }

    /// Measure `f` with the suite defaults, recording the audit verdict the
    /// caller obtained by running the algorithm once through
    /// `run_checked` / `run_checked_multi` before timing it.
    pub fn bench_audited<F: FnMut()>(&mut self, name: &str, audit: AuditVerdict, f: F) {
        self.bench_audited_with(name, audit, 3, 30, f);
    }

    /// Measure `f` with an explicit audit verdict and warmup/iter counts.
    pub fn bench_audited_with<F: FnMut()>(
        &mut self,
        name: &str,
        audit: AuditVerdict,
        warmup: u32,
        iters: u32,
        f: F,
    ) {
        self.measure(name, audit, AuditTiming::default(), warmup, iters, f);
    }

    /// Measure `f` with the suite defaults, deriving the verdict *and* the
    /// per-check `audit_timing` block from the gating [`AuditReport`]
    /// (`None` records a skipped audit with empty timing).
    pub fn bench_report<F: FnMut()>(&mut self, name: &str, report: Option<&AuditReport>, f: F) {
        self.bench_report_with(name, report, 3, 30, f);
    }

    /// Measure `f` with an [`AuditReport`]-derived verdict and timing block
    /// plus explicit warmup/iter counts. Prefer this over
    /// [`Suite::bench_audited_with`] whenever the report is at hand — it
    /// puts the auditor's own perf trajectory into `BENCH_*.json`.
    pub fn bench_report_with<F: FnMut()>(
        &mut self,
        name: &str,
        report: Option<&AuditReport>,
        warmup: u32,
        iters: u32,
        f: F,
    ) {
        self.bench_report_mode_with(name, report, AuditMode::Batch, warmup, iters, f);
    }

    /// Like [`Suite::bench_report_with`], but recording which auditor
    /// produced the report — use [`AuditMode::Incremental`] for rows whose
    /// verdict came from an [`IncrementalAudit`](ncss_audit::IncrementalAudit)
    /// attached to the stream.
    pub fn bench_report_mode_with<F: FnMut()>(
        &mut self,
        name: &str,
        report: Option<&AuditReport>,
        mode: AuditMode,
        warmup: u32,
        iters: u32,
        f: F,
    ) {
        self.bench_report_mode_metrics_with(name, report, mode, Vec::new(), warmup, iters, f);
    }

    /// Like [`Suite::bench_report_mode_with`], but attaching named scalar
    /// `metrics` to the row (schema `ncss-bench/4`) — derived quantities the
    /// bench wants baselined alongside its timing, such as the fleet
    /// k-sweep's measured dispatch-degradation ratio and the paper's
    /// `k^{1−1/α}` bound for that k.
    #[allow(clippy::too_many_arguments)]
    pub fn bench_report_mode_metrics_with<F: FnMut()>(
        &mut self,
        name: &str,
        report: Option<&AuditReport>,
        mode: AuditMode,
        metrics: Vec<(String, f64)>,
        warmup: u32,
        iters: u32,
        f: F,
    ) {
        let audit = report.map_or(AuditVerdict::Skipped, |r| AuditVerdict::from_passed(r.passed()));
        let timing = report.map(AuditTiming::from_report).unwrap_or_default();
        self.measure_full(name, audit, mode, timing, metrics, warmup, iters, f);
    }

    fn measure<F: FnMut()>(
        &mut self,
        name: &str,
        audit: AuditVerdict,
        audit_timing: AuditTiming,
        warmup: u32,
        iters: u32,
        f: F,
    ) {
        self.measure_full(name, audit, AuditMode::Batch, audit_timing, Vec::new(), warmup, iters, f);
    }

    #[allow(clippy::too_many_arguments)]
    fn measure_full<F: FnMut()>(
        &mut self,
        name: &str,
        audit: AuditVerdict,
        audit_mode: AuditMode,
        audit_timing: AuditTiming,
        metrics: Vec<(String, f64)>,
        warmup: u32,
        iters: u32,
        mut f: F,
    ) {
        let warmup = self.env_warmup.unwrap_or(warmup);
        let iters = self.env_iters.unwrap_or(iters).max(1);
        for _ in 0..warmup {
            f();
        }
        let mut samples: Vec<u64> = (0..iters)
            .map(|_| {
                let start = Instant::now();
                f();
                u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
            })
            .collect();
        samples.sort_unstable();
        let sum: u128 = samples.iter().map(|&x| u128::from(x)).sum();
        let m = Measurement {
            name: name.to_string(),
            audit,
            audit_mode,
            audit_timing,
            warmup,
            iters,
            min_ns: samples[0],
            mean_ns: u64::try_from(sum / u128::from(iters)).unwrap_or(u64::MAX),
            median_ns: percentile(&samples, 50.0),
            p95_ns: percentile(&samples, 95.0),
            max_ns: *samples.last().expect("at least one sample"),
            metrics,
            phases: Vec::new(),
        };
        eprintln!(
            "  {:<44} median {:>12} ns   p95 {:>12} ns   ({} iters, audit {})",
            m.name,
            m.median_ns,
            m.p95_ns,
            m.iters,
            m.audit.as_str()
        );
        self.results.push(m);
    }

    /// Attach a per-phase attribution report to the named (already
    /// recorded) row. The report must come from a *separate* profiled
    /// pass of the same workload — enable profiling, run once, call
    /// `take_phase_report()` — never from the timed iterations, whose
    /// quantiles must stay free of timestamping overhead. Panics if the
    /// row does not exist (a typo would otherwise drop the attribution
    /// silently).
    pub fn attach_phases(&mut self, name: &str, report: &ncss_sim::profile::PhaseReport) {
        let row = self
            .results
            .iter_mut()
            .find(|m| m.name == name)
            .unwrap_or_else(|| panic!("attach_phases: no bench row named {name}"));
        row.phases =
            report.rows().into_iter().map(|(k, ns, count)| (k.to_string(), ns, count)).collect();
    }

    /// Serialise all measurements to the suite's JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let results: Vec<String> = self.results.iter().map(Measurement::json).collect();
        format!(
            "{{\"suite\":{},\"schema\":\"ncss-bench/5\",\"results\":[{}]}}\n",
            json_string(&self.name),
            results.join(",")
        )
    }

    /// Write `BENCH_<suite>.json` (into `NCSS_BENCH_DIR` or the current
    /// directory) and return the path written.
    pub fn write_json(&self) -> std::io::Result<std::path::PathBuf> {
        let dir = std::env::var("NCSS_BENCH_DIR").unwrap_or_else(|_| ".".into());
        let path = std::path::Path::new(&dir).join(format!("BENCH_{}.json", self.name));
        let mut file = std::fs::File::create(&path)?;
        file.write_all(self.to_json().as_bytes())?;
        Ok(path)
    }

    /// Names of measurements whose audit verdict is [`AuditVerdict::Fail`].
    #[must_use]
    pub fn audit_failures(&self) -> Vec<&str> {
        self.results
            .iter()
            .filter(|m| m.audit == AuditVerdict::Fail)
            .map(|m| m.name.as_str())
            .collect()
    }

    /// Print the summary line, write the JSON, and panic on I/O failure or
    /// any failed audit verdict — the convenience tail call for bench
    /// `main`s. The JSON is written *before* the audit gate fires so the
    /// failing entries are on disk for inspection.
    pub fn finish(self) {
        let path = self.write_json().expect("write bench JSON");
        eprintln!("{}: {} measurements -> {}", self.name, self.results.len(), path.display());
        let failures = self.audit_failures();
        assert!(
            failures.is_empty(),
            "{}: audit FAILED for {} (see {})",
            self.name,
            failures.join(", "),
            path.display()
        );
    }

    /// Measurements recorded so far.
    #[must_use]
    pub fn results(&self) -> &[Measurement] {
        &self.results
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn busy_work() -> u64 {
        black_box((0..200u64).fold(0, |a, b| a.wrapping_add(b * b)))
    }

    #[test]
    fn measures_and_orders_statistics() {
        let mut suite = Suite::new("harness-selftest");
        suite.bench_with("busy", 1, 9, || {
            busy_work();
        });
        let m = &suite.results()[0];
        assert_eq!(m.iters.min(9), m.iters);
        assert!(m.min_ns <= m.median_ns);
        assert!(m.median_ns <= m.p95_ns);
        assert!(m.p95_ns <= m.max_ns);
        assert!(m.min_ns <= m.mean_ns && m.mean_ns <= m.max_ns);
    }

    #[test]
    fn json_document_is_well_formed() {
        let mut suite = Suite::new("json\"test");
        suite.bench_with("a/1", 1, 3, || {
            busy_work();
        });
        suite.bench_with("b/2", 1, 3, || {
            busy_work();
        });
        let json = suite.to_json();
        assert!(json.starts_with("{\"suite\":\"json\\\"test\""));
        assert!(json.contains("\"schema\":\"ncss-bench/5\""));
        // Rows without metrics/phases serialise without those keys at
        // all, so pre-/4 readers see the exact /3 row layout.
        assert!(!json.contains("\"metrics\""));
        assert!(!json.contains("\"phases\""));
        assert_eq!(json.matches("\"median_ns\":").count(), 2);
        // Every entry carries an audit verdict; plain bench() records it
        // as "skipped".
        assert_eq!(json.matches("\"audit\":\"skipped\"").count(), 2);
        // ...and an audit_mode, defaulting to the batch auditor.
        assert_eq!(json.matches("\"audit_mode\":\"batch\"").count(), 2);
        // ...and every entry carries an audit_timing block (empty when the
        // measurement was not audit-gated).
        assert_eq!(json.matches("\"audit_timing\":{\"total_ns\":0,\"checks\":[]}").count(), 2);
        assert!(json.trim_end().ends_with("]}"));
        // Balanced braces/brackets (cheap well-formedness proxy without a
        // JSON parser in the dependency-free workspace).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn audit_verdicts_are_recorded_and_gate_finish() {
        let mut suite = Suite::new("audit-verdicts");
        suite.bench_audited_with("good", AuditVerdict::Pass, 0, 2, || {
            busy_work();
        });
        suite.bench_audited_with("bad", AuditVerdict::from_passed(false), 0, 2, || {
            busy_work();
        });
        let json = suite.to_json();
        assert!(json.contains("\"name\":\"good\",\"audit\":\"pass\""));
        assert!(json.contains("\"name\":\"bad\",\"audit\":\"fail\""));
        assert_eq!(suite.audit_failures(), vec!["bad"]);
        // finish() would panic here; the gate itself is what we assert.
        assert!(!suite.audit_failures().is_empty());
    }

    #[test]
    fn report_backed_bench_serialises_per_check_timing() {
        let mut report = AuditReport::default();
        report.record_timed("energy-recomputed", 2.5e-9, 1e-6, "fine".into(), 1200);
        report.record_timed("volume-conservation", f64::INFINITY, 1e-6, "blown".into(), 800);
        let mut suite = Suite::new("timing");
        suite.bench_report_with("audited", Some(&report), 0, 2, || {
            busy_work();
        });
        suite.bench_report_with("unaudited", None, 0, 2, || {
            busy_work();
        });
        let json = suite.to_json();
        // The failing report yields a fail verdict and per-check rows with
        // nanosecond costs; the non-finite residual serialises as null.
        assert!(json.contains("\"name\":\"audited\",\"audit\":\"fail\""), "{json}");
        assert!(json.contains("\"total_ns\":2000"), "{json}");
        assert!(
            json.contains("{\"name\":\"energy-recomputed\",\"elapsed_ns\":1200,\"residual\":2.5e-9}"),
            "{json}"
        );
        assert!(
            json.contains("{\"name\":\"volume-conservation\",\"elapsed_ns\":800,\"residual\":null}"),
            "{json}"
        );
        assert!(json.contains("\"name\":\"unaudited\",\"audit\":\"skipped\""), "{json}");
        assert_eq!(suite.audit_failures(), vec!["audited"]);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn incremental_mode_rows_are_tagged() {
        let mut report = AuditReport::default();
        report.record_timed("energy-recomputed", 2.5e-9, 1e-6, "fine".into(), 1200);
        let mut suite = Suite::new("modes");
        suite.bench_report_mode_with("soak_audited", Some(&report), AuditMode::Incremental, 0, 2, || {
            busy_work();
        });
        suite.bench_report_with("soak", Some(&report), 0, 2, || {
            busy_work();
        });
        let json = suite.to_json();
        assert!(
            json.contains("\"name\":\"soak_audited\",\"audit\":\"pass\",\"audit_mode\":\"incremental\""),
            "{json}"
        );
        assert!(
            json.contains("\"name\":\"soak\",\"audit\":\"pass\",\"audit_mode\":\"batch\""),
            "{json}"
        );
    }

    #[test]
    fn metrics_rows_serialise_and_skip_when_empty() {
        let mut suite = Suite::new("metrics");
        suite.bench_report_mode_metrics_with(
            "fleet_replay/k64",
            None,
            AuditMode::Incremental,
            vec![("ratio".to_string(), 4.5), ("bound".to_string(), f64::NAN)],
            0,
            2,
            || {
                busy_work();
            },
        );
        suite.bench_with("plain", 0, 2, || {
            busy_work();
        });
        let json = suite.to_json();
        // Metrics land as a keyed object after the quantiles; non-finite
        // values serialise as null like residuals do.
        assert!(json.contains(",\"metrics\":{\"ratio\":4.5e0,\"bound\":null}}"), "{json}");
        // The metric-free row has no metrics key.
        let plain = json.split("\"name\":\"plain\"").nth(1).expect("plain row");
        assert!(!plain.contains("\"metrics\""), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn phases_attach_to_named_rows_and_serialise() {
        use ncss_sim::profile::{enable_phase_profiling, take_phase_report, Phase, PhaseScope};
        let mut suite = Suite::new("phases");
        suite.bench_with("hot/1", 0, 2, || {
            busy_work();
        });
        suite.bench_with("cold/1", 0, 2, || {
            busy_work();
        });
        // Separate attribution pass, then attach to the recorded row.
        enable_phase_profiling();
        {
            let _p = PhaseScope::enter(Phase::Dispatch);
            busy_work();
        }
        let report = take_phase_report();
        suite.attach_phases("hot/1", &report);
        let json = suite.to_json();
        assert!(json.contains("\"phases\":{\"dispatch\":{\"ns\":"), "{json}");
        // The row without an attribution pass carries no phases key.
        let cold = json.split("\"name\":\"cold/1\"").nth(1).expect("cold row");
        assert!(!cold.contains("\"phases\""), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    #[should_panic(expected = "no bench row named")]
    fn attach_phases_rejects_unknown_rows() {
        use ncss_sim::profile::take_phase_report;
        let mut suite = Suite::new("phases-typo");
        suite.attach_phases("missing", &take_phase_report());
    }

    #[test]
    fn percentile_nearest_rank() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sorted, 50.0), 50);
        assert_eq!(percentile(&sorted, 95.0), 95);
        assert_eq!(percentile(&sorted, 100.0), 100);
        assert_eq!(percentile(&[7], 95.0), 7);
    }
}
