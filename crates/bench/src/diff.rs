//! Compare two `BENCH_<suite>.json` artifacts and flag regressions.
//!
//! The workspace records a perf trajectory per commit (see [`crate::harness`]
//! and EXPERIMENTS.md, "Performance benches"). This module is the reader
//! side: parse two bench documents — a *baseline* (usually the committed
//! artifact) and a *candidate* (a fresh run) — match their entries by name,
//! and report every measurement that got slower, every audit check whose
//! cost or residual blew up, and every verdict that flipped from `pass`.
//!
//! Comparison rules (all tunable through [`DiffOptions`]):
//!
//! * a timing quantile (`min/mean/median/p95/max_ns`) regresses when the
//!   candidate exceeds `base × (1 + threshold)` **and** grows by more than
//!   `floor_ns` absolute nanoseconds (the floor suppresses noise on
//!   sub-microsecond rows where ±40% is timer jitter);
//! * an `audit_timing` check regresses on the same rule applied to its
//!   `elapsed_ns`, keyed by `entry/check` name;
//! * a check's residual regresses when it grows past both
//!   `base × residual_factor` and the `residual_floor` — residuals live on
//!   a log scale, so the factor defaults to an order of magnitude;
//! * an audit verdict that was `pass` in the baseline and is anything else
//!   in the candidate is **always** a regression, no thresholds;
//! * an `audit_mode` flip (`batch` ↔ `incremental`, new in `ncss-bench/3`;
//!   `/2` rows default to `batch`) is **always** a regression — the row is
//!   measuring a different auditor, so the trajectory is not comparable
//!   until the baseline is regenerated;
//! * a named `metrics` value (new in `ncss-bench/4` — derived scalars like
//!   the fleet k-sweep's degradation ratio) regresses when it drifts
//!   relatively by more than `metric_rel_tol`, or when a baseline metric
//!   goes missing / non-finite — metrics are deterministic functions of the
//!   committed traces, so *any* real drift means the algorithm changed;
//! * entries present in the baseline but missing from the candidate are
//!   regressions (a silently dropped bench reads as "covered" when it
//!   isn't); new entries are reported but never fail the diff;
//! * rows where **both** documents carry the deterministic
//!   [`WORK_ITEMS_METRIC`] metric also get a normalised per-item
//!   throughput delta (`median_ns / work_items`) in
//!   [`DiffReport::throughput`] — informational only, since the quantile
//!   comparison already gates the timing; `work_items` itself is exempt
//!   from the metric gate (it is a workload size, and normalisation is
//!   how soaks of different lengths are compared);
//! * `phases` attribution blocks (new in `ncss-bench/5` — per-phase
//!   profiler totals from a separately profiled pass) parse into
//!   [`BenchEntry::phases`] but are never diffed: they exist to explain a
//!   quantile regression, and carry a single profiled run's jitter.
//!
//! The JSON reader is a minimal recursive-descent parser scoped to what the
//! harness emits (objects, arrays, strings, numbers, `null`, booleans) —
//! the workspace is dependency-free by policy, so there is no serde.

use std::collections::BTreeMap;
use std::fmt;

// ---------------------------------------------------------------------------
// Minimal JSON value model + parser
// ---------------------------------------------------------------------------

/// A parsed JSON value. `Number` keeps `f64` — bench files only carry
/// nanosecond counts (exact in `f64` below 2^53) and residuals.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; `BTreeMap` keeps iteration deterministic.
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Parse a complete JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }

    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(map) => map.get(key),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(v) => Some(*v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(v) => Some(v),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", b as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Json::String),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>().map(Json::Number).map_err(|e| format!("bad number {text:?}: {e}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy a full UTF-8 scalar, not a byte.
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Object(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        map.insert(key, parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Object(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

// ---------------------------------------------------------------------------
// Bench document model
// ---------------------------------------------------------------------------

/// One `audit_timing.checks[]` row.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckRow {
    /// Check name (e.g. `energy-recomputed`).
    pub name: String,
    /// Wall-clock nanoseconds the check took.
    pub elapsed_ns: u64,
    /// Worst residual; `None` when serialised as `null` (non-finite).
    pub residual: Option<f64>,
}

/// One `results[]` entry of a bench document.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Benchmark id, e.g. `algorithm_c/100`.
    pub name: String,
    /// Audit verdict string (`pass` / `fail` / `skipped`).
    pub audit: String,
    /// Which auditor produced the verdict (`batch` / `incremental`).
    /// Schema `ncss-bench/2` rows predate the field and default to
    /// `batch` — the only auditor that harness had.
    pub audit_mode: String,
    /// Total audit nanoseconds.
    pub audit_total_ns: u64,
    /// Per-check audit rows.
    pub checks: Vec<CheckRow>,
    /// The five timing quantiles, in `QUANTILES` order.
    pub quantiles: [u64; 5],
    /// Named derived scalars (`metrics` object, new in `ncss-bench/4`);
    /// `None` values were serialised as `null` (non-finite). Rows from
    /// older schemas parse with an empty map.
    pub metrics: BTreeMap<String, Option<f64>>,
    /// Per-phase attribution rows (`phases` object, new in `ncss-bench/5`):
    /// phase name → `(total ns, scope count)` from a separately profiled
    /// pass. Attribution context for diagnosing a quantile regression, not
    /// itself diffed — phase totals come from one profiled run and carry
    /// full run-to-run jitter.
    pub phases: BTreeMap<String, (u64, u64)>,
}

/// The quantile keys of a bench entry, in document order.
pub const QUANTILES: [&str; 5] = ["min_ns", "mean_ns", "median_ns", "p95_ns", "max_ns"];

/// Schema tags this reader understands. A document with any other
/// `ncss-bench/N` tag is **schema drift**: written by a newer (or older)
/// harness whose rows this reader would misinterpret. The diff refuses it
/// with a named error (exit 2 in `bench-diff` — tool error, not a perf
/// regression) instead of guessing.
pub const KNOWN_SCHEMAS: [&str; 4] =
    ["ncss-bench/2", "ncss-bench/3", "ncss-bench/4", "ncss-bench/5"];

/// A parsed `BENCH_<suite>.json` document.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchDoc {
    /// Suite name (`algorithms`, `opt`, …).
    pub suite: String,
    /// Schema tag (one of [`KNOWN_SCHEMAS`]).
    pub schema: String,
    /// All measurements, in file order.
    pub entries: Vec<BenchEntry>,
}

fn req_u64(obj: &Json, key: &str, ctx: &str) -> Result<u64, String> {
    let v = obj
        .get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("{ctx}: missing numeric {key:?}"))?;
    if !(v >= 0.0 && v.is_finite()) {
        return Err(format!("{ctx}: {key:?} is not a non-negative finite number"));
    }
    Ok(v as u64)
}

fn req_str(obj: &Json, key: &str, ctx: &str) -> Result<String, String> {
    obj.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("{ctx}: missing string {key:?}"))
}

impl BenchDoc {
    /// Parse a bench JSON document, validating the schema tag.
    pub fn parse(text: &str) -> Result<Self, String> {
        let root = Json::parse(text)?;
        let suite = req_str(&root, "suite", "document")?;
        let schema = req_str(&root, "schema", "document")?;
        if !schema.starts_with("ncss-bench/") {
            return Err(format!("unrecognised schema {schema:?} (want ncss-bench/*)"));
        }
        if !KNOWN_SCHEMAS.contains(&schema.as_str()) {
            return Err(format!(
                "schema drift: document declares {schema:?} but this reader only \
                 understands {} — regenerate the artifact with the matching \
                 harness, or rebuild bench-diff",
                KNOWN_SCHEMAS.join(", ")
            ));
        }
        let mut entries = Vec::new();
        for (i, entry) in root
            .get("results")
            .and_then(Json::as_array)
            .ok_or("document: missing \"results\" array")?
            .iter()
            .enumerate()
        {
            let ctx = format!("results[{i}]");
            let name = req_str(entry, "name", &ctx)?;
            let audit = req_str(entry, "audit", &ctx)?;
            // `audit_mode` arrived with ncss-bench/3; older rows were all
            // produced by the batch auditor.
            let audit_mode = match entry.get("audit_mode") {
                None => "batch".to_string(),
                Some(v) => {
                    let mode = v
                        .as_str()
                        .ok_or_else(|| format!("{ctx}: \"audit_mode\" is not a string"))?;
                    if mode != "batch" && mode != "incremental" {
                        return Err(format!(
                            "{ctx} ({name:?}): unknown audit_mode {mode:?} \
                             (want \"batch\" or \"incremental\")"
                        ));
                    }
                    mode.to_string()
                }
            };
            let timing = entry.get("audit_timing").ok_or_else(|| {
                format!(
                    "schema drift: {ctx} ({name:?}) has no \"audit_timing\" block — \
                     the row predates schema ncss-bench/2; regenerate the artifact \
                     with the current harness"
                )
            })?;
            let audit_total_ns = req_u64(timing, "total_ns", &ctx)?;
            let mut checks = Vec::new();
            for (k, row) in timing
                .get("checks")
                .and_then(Json::as_array)
                .ok_or_else(|| format!("{ctx}: missing \"checks\" array"))?
                .iter()
                .enumerate()
            {
                let rctx = format!("{ctx}.checks[{k}]");
                checks.push(CheckRow {
                    name: req_str(row, "name", &rctx)?,
                    elapsed_ns: req_u64(row, "elapsed_ns", &rctx)?,
                    residual: match row.get("residual") {
                        Some(Json::Null) | None => None,
                        Some(v) => v.as_f64(),
                    },
                });
            }
            let mut quantiles = [0u64; 5];
            for (q, key) in QUANTILES.iter().enumerate() {
                quantiles[q] = req_u64(entry, key, &ctx)?;
            }
            // `metrics` arrived with ncss-bench/4 and is omitted entirely
            // on metric-free rows, so absence is not an error.
            let mut metrics = BTreeMap::new();
            match entry.get("metrics") {
                None => {}
                Some(Json::Object(map)) => {
                    for (k, v) in map {
                        let value = match v {
                            Json::Null => None,
                            Json::Number(x) => Some(*x),
                            _ => {
                                return Err(format!(
                                    "{ctx} ({name:?}): metric {k:?} is not a number or null"
                                ))
                            }
                        };
                        metrics.insert(k.clone(), value);
                    }
                }
                Some(_) => {
                    return Err(format!("{ctx} ({name:?}): \"metrics\" is not an object"))
                }
            }
            // `phases` arrived with ncss-bench/5 and is omitted entirely on
            // rows without an attribution pass, so absence is not an error.
            let mut phases = BTreeMap::new();
            match entry.get("phases") {
                None => {}
                Some(Json::Object(map)) => {
                    for (k, v) in map {
                        let pctx = format!("{ctx} ({name:?}): phase {k:?}");
                        let ns = req_u64(v, "ns", &pctx)?;
                        let count = req_u64(v, "count", &pctx)?;
                        phases.insert(k.clone(), (ns, count));
                    }
                }
                Some(_) => {
                    return Err(format!("{ctx} ({name:?}): \"phases\" is not an object"))
                }
            }
            entries.push(BenchEntry {
                name,
                audit,
                audit_mode,
                audit_total_ns,
                checks,
                quantiles,
                metrics,
                phases,
            });
        }
        Ok(Self { suite, schema, entries })
    }

    fn by_name(&self) -> BTreeMap<&str, &BenchEntry> {
        self.entries.iter().map(|e| (e.name.as_str(), e)).collect()
    }
}

// ---------------------------------------------------------------------------
// Diffing
// ---------------------------------------------------------------------------

/// Thresholds controlling what counts as a regression.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiffOptions {
    /// Relative slowdown needed to flag a timing (0.25 = 25% slower).
    pub threshold: f64,
    /// Absolute floor: a timing must also grow by this many nanoseconds.
    /// Suppresses jitter on sub-microsecond rows.
    pub floor_ns: u64,
    /// Multiplicative growth needed to flag a residual (residuals live on a
    /// log scale, so the default is one order of magnitude).
    pub residual_factor: f64,
    /// Residuals below this are noise regardless of growth.
    pub residual_floor: f64,
    /// Relative drift allowed on a named `metrics` value before it flags.
    /// Metrics are deterministic functions of committed traces, so the
    /// default is float-comparison slack, not a perf threshold.
    pub metric_rel_tol: f64,
}

impl Default for DiffOptions {
    fn default() -> Self {
        Self {
            threshold: 0.25,
            floor_ns: 50_000,
            residual_factor: 10.0,
            residual_floor: 1e-9,
            metric_rel_tol: 1e-6,
        }
    }
}

/// What kind of regression a [`Finding`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// A timing quantile of the measurement itself got slower.
    Quantile,
    /// An audit check's `elapsed_ns` got slower.
    CheckTime,
    /// An audit check's residual grew.
    Residual,
    /// The audit verdict flipped away from `pass` (always fatal).
    Verdict,
    /// The audit mode changed (`batch` ↔ `incremental`): the row is no
    /// longer measuring the same auditor, so its trajectory is not
    /// comparable until the baseline is regenerated (always fatal).
    Mode,
    /// A named `metrics` value drifted past `metric_rel_tol`, went
    /// non-finite, or disappeared — a derived result (e.g. a degradation
    /// ratio) changed, not just a timing.
    Metric,
    /// A per-item throughput delta (informational, never a regression —
    /// see [`DiffReport::throughput`]).
    Throughput,
    /// A baseline entry or check is missing from the candidate.
    Missing,
}

/// One flagged difference between baseline and candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// What regressed.
    pub kind: Kind,
    /// `entry` or `entry/check` or `entry/check@quantile` locator.
    pub what: String,
    /// Baseline value (ns or residual; 0 for verdict rows).
    pub base: f64,
    /// Candidate value.
    pub new: f64,
    /// Human-readable one-liner.
    pub detail: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:<52} {}", self.what, self.detail)
    }
}

/// The metric name under which benches record their deterministic item
/// count (events processed, jobs dispatched). When *both* rows of a diff
/// carry it, [`diff`] also reports the per-item throughput delta — the
/// normalised number a human wants when comparing soak rows.
pub const WORK_ITEMS_METRIC: &str = "work_items";

/// The outcome of comparing two bench documents.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DiffReport {
    /// Everything that regressed; non-empty means the diff fails.
    pub regressions: Vec<Finding>,
    /// Timings that improved past the same threshold (informational).
    pub improvements: Vec<Finding>,
    /// Per-item throughput deltas (`median_ns / work_items`) for rows
    /// where both documents carry the [`WORK_ITEMS_METRIC`] metric.
    /// Informational: the quantile comparison already gates the timing,
    /// and `work_items` itself is exempt from the metric gate (it is a
    /// workload size — a short soak against a long baseline is exactly
    /// the comparison this normalisation exists for).
    pub throughput: Vec<Finding>,
    /// Candidate entries with no baseline counterpart (informational).
    pub added: Vec<String>,
    /// Number of (entry, quantile) and (entry, check) pairs compared.
    pub compared: usize,
}

impl DiffReport {
    /// True when no regression was found.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }
}

fn slower(base: u64, new: u64, opts: &DiffOptions) -> bool {
    new.saturating_sub(base) > opts.floor_ns
        && (new as f64) > (base as f64) * (1.0 + opts.threshold)
}

fn faster(base: u64, new: u64, opts: &DiffOptions) -> bool {
    slower(new, base, opts)
}

/// Compare `new` against `base`, entry by entry.
#[must_use]
pub fn diff(base: &BenchDoc, new: &BenchDoc, opts: &DiffOptions) -> DiffReport {
    let mut report = DiffReport::default();
    let new_by_name = new.by_name();
    let base_names: std::collections::BTreeSet<&str> =
        base.entries.iter().map(|e| e.name.as_str()).collect();
    for entry in &new.entries {
        if !base_names.contains(entry.name.as_str()) {
            report.added.push(entry.name.clone());
        }
    }

    for b in &base.entries {
        let Some(n) = new_by_name.get(b.name.as_str()) else {
            report.regressions.push(Finding {
                kind: Kind::Missing,
                what: b.name.clone(),
                base: 0.0,
                new: 0.0,
                detail: "present in baseline, missing from candidate".into(),
            });
            continue;
        };

        // Audit mode must not drift silently: an incremental row compared
        // against a batch baseline (or vice versa) is measuring a
        // different auditor, not a perf change.
        if b.audit_mode != n.audit_mode {
            report.regressions.push(Finding {
                kind: Kind::Mode,
                what: b.name.clone(),
                base: 0.0,
                new: 0.0,
                detail: format!(
                    "audit mode {} -> {} — regenerate the baseline to compare",
                    b.audit_mode, n.audit_mode
                ),
            });
        }

        // Verdict: pass must stay pass. (skipped→skipped etc. is fine;
        // fail→pass is an improvement, not a regression.)
        if b.audit == "pass" && n.audit != "pass" {
            report.regressions.push(Finding {
                kind: Kind::Verdict,
                what: b.name.clone(),
                base: 0.0,
                new: 0.0,
                detail: format!("audit verdict pass -> {}", n.audit),
            });
        }

        // Timing quantiles.
        for (q, key) in QUANTILES.iter().enumerate() {
            report.compared += 1;
            let (bv, nv) = (b.quantiles[q], n.quantiles[q]);
            let finding = |kind| Finding {
                kind,
                what: format!("{}@{}", b.name, key),
                base: bv as f64,
                new: nv as f64,
                detail: format!("{bv} ns -> {nv} ns ({:+.1}%)", rel_change(bv, nv)),
            };
            if slower(bv, nv, opts) {
                report.regressions.push(finding(Kind::Quantile));
            } else if faster(bv, nv, opts) {
                report.improvements.push(finding(Kind::Quantile));
            }
        }

        // Audit checks, keyed by name.
        let new_checks: BTreeMap<&str, &CheckRow> =
            n.checks.iter().map(|c| (c.name.as_str(), c)).collect();
        for bc in &b.checks {
            report.compared += 1;
            let Some(nc) = new_checks.get(bc.name.as_str()) else {
                report.regressions.push(Finding {
                    kind: Kind::Missing,
                    what: format!("{}/{}", b.name, bc.name),
                    base: 0.0,
                    new: 0.0,
                    detail: "audit check present in baseline, missing from candidate".into(),
                });
                continue;
            };
            let finding = |kind, detail| Finding {
                kind,
                what: format!("{}/{}", b.name, bc.name),
                base: bc.elapsed_ns as f64,
                new: nc.elapsed_ns as f64,
                detail,
            };
            if slower(bc.elapsed_ns, nc.elapsed_ns, opts) {
                report.regressions.push(finding(
                    Kind::CheckTime,
                    format!(
                        "{} ns -> {} ns ({:+.1}%)",
                        bc.elapsed_ns,
                        nc.elapsed_ns,
                        rel_change(bc.elapsed_ns, nc.elapsed_ns)
                    ),
                ));
            } else if faster(bc.elapsed_ns, nc.elapsed_ns, opts) {
                report.improvements.push(finding(
                    Kind::CheckTime,
                    format!(
                        "{} ns -> {} ns ({:+.1}%)",
                        bc.elapsed_ns,
                        nc.elapsed_ns,
                        rel_change(bc.elapsed_ns, nc.elapsed_ns)
                    ),
                ));
            }
            // Residuals: null (non-finite) in the candidate is always a
            // regression if the baseline had a finite one.
            match (bc.residual, nc.residual) {
                (Some(br), None) => report.regressions.push(Finding {
                    kind: Kind::Residual,
                    what: format!("{}/{}", b.name, bc.name),
                    base: br,
                    new: f64::INFINITY,
                    detail: format!("residual {br:.3e} -> non-finite"),
                }),
                (Some(br), Some(nr)) => {
                    if nr > opts.residual_floor && nr > br.max(opts.residual_floor) * opts.residual_factor
                    {
                        report.regressions.push(Finding {
                            kind: Kind::Residual,
                            what: format!("{}/{}", b.name, bc.name),
                            base: br,
                            new: nr,
                            detail: format!("residual {br:.3e} -> {nr:.3e}"),
                        });
                    }
                }
                (None, _) => {}
            }
        }

        // Named metrics: deterministic derived scalars, compared to float
        // slack. A metric the baseline has and the candidate lost (or that
        // went non-finite) is flagged; candidate-only metrics are new
        // coverage and pass silently, like added entries. `work_items` is
        // the one exception: it is a workload *size*, not a derived scalar,
        // and pinning it would forbid diffing a short verification soak
        // against the committed full-length baseline — the normalised
        // throughput report below is how differing counts are compared.
        for (key, bv) in &b.metrics {
            if key == WORK_ITEMS_METRIC {
                continue;
            }
            report.compared += 1;
            let what = format!("{}#{}", b.name, key);
            match (bv, n.metrics.get(key)) {
                (Some(bm), Some(Some(nm))) => {
                    let scale = bm.abs().max(1e-12);
                    if ((nm - bm) / scale).abs() > opts.metric_rel_tol {
                        report.regressions.push(Finding {
                            kind: Kind::Metric,
                            what,
                            base: *bm,
                            new: *nm,
                            detail: format!("metric {bm:.6e} -> {nm:.6e}"),
                        });
                    }
                }
                (Some(bm), Some(None)) => report.regressions.push(Finding {
                    kind: Kind::Metric,
                    what,
                    base: *bm,
                    new: f64::INFINITY,
                    detail: format!("metric {bm:.6e} -> non-finite"),
                }),
                (Some(bm), None) => report.regressions.push(Finding {
                    kind: Kind::Metric,
                    what,
                    base: *bm,
                    new: 0.0,
                    detail: "metric present in baseline, missing from candidate".into(),
                }),
                // A baseline null never comparable; skip.
                (None, _) => {}
            }
        }

        // Throughput: when both rows carry the deterministic work_items
        // metric, report the normalised ns/item delta on the median.
        if let (Some(Some(bw)), Some(Some(nw))) =
            (b.metrics.get(WORK_ITEMS_METRIC), n.metrics.get(WORK_ITEMS_METRIC))
        {
            if *bw > 0.0 && *nw > 0.0 {
                let bt = b.quantiles[2] as f64 / bw;
                let nt = n.quantiles[2] as f64 / nw;
                report.throughput.push(Finding {
                    kind: Kind::Throughput,
                    what: format!("{}@ns_per_item", b.name),
                    base: bt,
                    new: nt,
                    detail: format!(
                        "{bt:.1} ns/item -> {nt:.1} ns/item ({:+.1}%, {} items)",
                        (nt / bt - 1.0) * 100.0,
                        nw,
                    ),
                });
            }
        }
    }
    report
}

fn rel_change(base: u64, new: u64) -> f64 {
    if base == 0 {
        if new == 0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (new as f64 / base as f64 - 1.0) * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(entries: &str) -> String {
        format!("{{\"suite\":\"t\",\"schema\":\"ncss-bench/2\",\"results\":[{entries}]}}")
    }

    fn doc3(entries: &str) -> String {
        format!("{{\"suite\":\"t\",\"schema\":\"ncss-bench/3\",\"results\":[{entries}]}}")
    }

    fn entry3(name: &str, median: u64, check_ns: u64, residual: &str, audit: &str, mode: &str) -> String {
        format!(
            "{{\"name\":\"{name}\",\"audit\":\"{audit}\",\"audit_mode\":\"{mode}\",\
             \"audit_timing\":{{\"total_ns\":{check_ns},\
             \"checks\":[{{\"name\":\"energy-recomputed\",\"elapsed_ns\":{check_ns},\"residual\":{residual}}}]}},\
             \"warmup\":3,\"iters\":30,\"min_ns\":{median},\"mean_ns\":{median},\"median_ns\":{median},\
             \"p95_ns\":{median},\"max_ns\":{median}}}"
        )
    }

    fn entry(name: &str, median: u64, check_ns: u64, residual: &str, audit: &str) -> String {
        format!(
            "{{\"name\":\"{name}\",\"audit\":\"{audit}\",\"audit_timing\":{{\"total_ns\":{check_ns},\
             \"checks\":[{{\"name\":\"energy-recomputed\",\"elapsed_ns\":{check_ns},\"residual\":{residual}}}]}},\
             \"warmup\":3,\"iters\":30,\"min_ns\":{median},\"mean_ns\":{median},\"median_ns\":{median},\
             \"p95_ns\":{median},\"max_ns\":{median}}}"
        )
    }

    #[test]
    fn parser_round_trips_harness_output() {
        let text = doc(&entry("algorithm_c/100", 19228, 1917324, "5.2e-16", "pass"));
        let parsed = BenchDoc::parse(&text).unwrap();
        assert_eq!(parsed.suite, "t");
        assert_eq!(parsed.entries.len(), 1);
        let e = &parsed.entries[0];
        assert_eq!(e.name, "algorithm_c/100");
        assert_eq!(e.audit, "pass");
        assert_eq!(e.quantiles, [19228; 5]);
        assert_eq!(e.checks[0].elapsed_ns, 1917324);
        assert!((e.checks[0].residual.unwrap() - 5.2e-16).abs() < 1e-30);
    }

    #[test]
    fn parser_handles_null_residuals_escapes_and_rejects_garbage() {
        let text = doc(&entry("x/1", 10, 5, "null", "pass"));
        let parsed = BenchDoc::parse(&text).unwrap();
        assert_eq!(parsed.entries[0].checks[0].residual, None);

        assert_eq!(Json::parse("\"a\\nb\\u0041\"").unwrap(), Json::String("a\nbA".into()));
        assert!(Json::parse("{\"a\":1,}").is_err());
        assert!(Json::parse("[1 2]").is_err());
        assert!(BenchDoc::parse("{\"suite\":\"t\",\"schema\":\"other/1\",\"results\":[]}").is_err());
    }

    #[test]
    fn unknown_schema_version_is_named_drift_not_a_guess() {
        let err = BenchDoc::parse(
            "{\"suite\":\"t\",\"schema\":\"ncss-bench/9\",\"results\":[]}",
        )
        .unwrap_err();
        assert!(err.contains("schema drift"), "{err}");
        assert!(err.contains("ncss-bench/9"), "{err}");
        assert!(err.contains("ncss-bench/2"), "{err}");
        assert!(err.contains("ncss-bench/3"), "{err}");
        assert!(err.contains("ncss-bench/4"), "{err}");
        // Same for an ancient tag.
        let err = BenchDoc::parse(
            "{\"suite\":\"t\",\"schema\":\"ncss-bench/1\",\"results\":[]}",
        )
        .unwrap_err();
        assert!(err.contains("schema drift"), "{err}");
    }

    #[test]
    fn audit_mode_parses_defaults_and_rejects_unknowns() {
        // A /2 row has no audit_mode: it defaults to the batch auditor.
        let old = BenchDoc::parse(&doc(&entry("a/1", 1000, 500, "1e-15", "pass"))).unwrap();
        assert_eq!(old.entries[0].audit_mode, "batch");
        // A /3 row carries it explicitly.
        let new = BenchDoc::parse(&doc3(&entry3(
            "a/1",
            1000,
            500,
            "1e-15",
            "pass",
            "incremental",
        )))
        .unwrap();
        assert_eq!(new.schema, "ncss-bench/3");
        assert_eq!(new.entries[0].audit_mode, "incremental");
        // An unknown mode is a named parse error, not a silent default.
        let err = BenchDoc::parse(&doc3(&entry3("a/1", 1000, 500, "1e-15", "pass", "psychic")))
            .unwrap_err();
        assert!(err.contains("audit_mode"), "{err}");
        assert!(err.contains("psychic"), "{err}");
    }

    #[test]
    fn audit_mode_flip_is_a_regression_same_mode_is_not() {
        // Baseline /2 (implicit batch) vs candidate /3 tagged batch: the
        // schema bump alone must not flag anything.
        let base = BenchDoc::parse(&doc(&entry("a/1", 1000, 500, "1e-15", "pass"))).unwrap();
        let same =
            BenchDoc::parse(&doc3(&entry3("a/1", 1000, 500, "1e-15", "pass", "batch"))).unwrap();
        assert!(diff(&base, &same, &DiffOptions::default()).passed());
        // ...but a row that silently became incremental is flagged even
        // with identical timings.
        let flipped = BenchDoc::parse(&doc3(&entry3("a/1", 1000, 500, "1e-15", "pass", "incremental")))
            .unwrap();
        let report = diff(&base, &flipped, &DiffOptions::default());
        assert_eq!(report.regressions.len(), 1);
        assert_eq!(report.regressions[0].kind, Kind::Mode);
        assert!(report.regressions[0].detail.contains("batch -> incremental"));
        // Incremental vs incremental compares cleanly again.
        assert!(diff(&flipped, &flipped, &DiffOptions::default()).passed());
    }

    #[test]
    fn missing_audit_timing_is_named_drift_not_a_panic() {
        let text = "{\"suite\":\"t\",\"schema\":\"ncss-bench/2\",\"results\":[\
                    {\"name\":\"a/1\",\"audit\":\"pass\",\"min_ns\":1,\"mean_ns\":1,\
                    \"median_ns\":1,\"p95_ns\":1,\"max_ns\":1}]}";
        let err = BenchDoc::parse(text).unwrap_err();
        assert!(err.contains("schema drift"), "{err}");
        assert!(err.contains("audit_timing"), "{err}");
        assert!(err.contains("a/1"), "{err}");
        // A non-object audit_timing is also an error, not a panic.
        let text = "{\"suite\":\"t\",\"schema\":\"ncss-bench/2\",\"results\":[\
                    {\"name\":\"a/1\",\"audit\":\"pass\",\"audit_timing\":7,\"min_ns\":1,\
                    \"mean_ns\":1,\"median_ns\":1,\"p95_ns\":1,\"max_ns\":1}]}";
        assert!(BenchDoc::parse(text).is_err());
    }

    #[test]
    fn self_compare_reports_zero_regressions() {
        let text = doc(&format!(
            "{},{}",
            entry("a/1", 1000, 500, "1e-15", "pass"),
            entry("b/2", 2_000_000, 900_000, "3e-14", "skipped")
        ));
        let base = BenchDoc::parse(&text).unwrap();
        let report = diff(&base, &base, &DiffOptions::default());
        assert!(report.passed(), "{:?}", report.regressions);
        assert!(report.improvements.is_empty());
        assert!(report.compared > 0);
    }

    #[test]
    fn slowdowns_past_threshold_and_floor_are_flagged() {
        let base = BenchDoc::parse(&doc(&entry("a/1", 1_000_000, 800_000, "1e-15", "pass"))).unwrap();
        // 2x slower on every quantile and on the check: all flagged.
        let new = BenchDoc::parse(&doc(&entry("a/1", 2_000_000, 1_600_000, "1e-15", "pass"))).unwrap();
        let report = diff(&base, &new, &DiffOptions::default());
        assert_eq!(report.regressions.iter().filter(|f| f.kind == Kind::Quantile).count(), 5);
        assert_eq!(report.regressions.iter().filter(|f| f.kind == Kind::CheckTime).count(), 1);
        // Same slowdown below the absolute floor: suppressed as jitter.
        let base = BenchDoc::parse(&doc(&entry("a/1", 1_000, 800, "1e-15", "pass"))).unwrap();
        let new = BenchDoc::parse(&doc(&entry("a/1", 2_000, 1_600, "1e-15", "pass"))).unwrap();
        assert!(diff(&base, &new, &DiffOptions::default()).passed());
        // ...unless the floor is lowered.
        let tight = DiffOptions { floor_ns: 100, ..DiffOptions::default() };
        assert!(!diff(&base, &new, &tight).passed());
        // Improvements are informational, not failures.
        let report = diff(&new, &base, &tight);
        assert!(report.passed());
        assert!(!report.improvements.is_empty());
    }

    #[test]
    fn verdict_flip_and_residual_blowup_always_flagged() {
        let base = BenchDoc::parse(&doc(&entry("a/1", 1000, 500, "1e-15", "pass"))).unwrap();
        let flipped = BenchDoc::parse(&doc(&entry("a/1", 1000, 500, "1e-15", "fail"))).unwrap();
        let report = diff(&base, &flipped, &DiffOptions::default());
        assert_eq!(report.regressions.len(), 1);
        assert_eq!(report.regressions[0].kind, Kind::Verdict);

        // Residual 1e-15 -> 1e-6: past the floor and the factor.
        let blown = BenchDoc::parse(&doc(&entry("a/1", 1000, 500, "1e-6", "pass"))).unwrap();
        let report = diff(&base, &blown, &DiffOptions::default());
        assert_eq!(report.regressions.len(), 1);
        assert_eq!(report.regressions[0].kind, Kind::Residual);
        // Residual 1e-15 -> 1e-13: grew 100x but still under the noise
        // floor — not flagged.
        let tiny = BenchDoc::parse(&doc(&entry("a/1", 1000, 500, "1e-13", "pass"))).unwrap();
        assert!(diff(&base, &tiny, &DiffOptions::default()).passed());
        // Finite -> null is always a regression.
        let gone = BenchDoc::parse(&doc(&entry("a/1", 1000, 500, "null", "pass"))).unwrap();
        let report = diff(&base, &gone, &DiffOptions::default());
        assert_eq!(report.regressions[0].kind, Kind::Residual);
    }

    fn doc4(entries: &str) -> String {
        format!("{{\"suite\":\"fleet\",\"schema\":\"ncss-bench/4\",\"results\":[{entries}]}}")
    }

    fn entry4(name: &str, median: u64, metrics: &str) -> String {
        format!(
            "{{\"name\":\"{name}\",\"audit\":\"pass\",\"audit_mode\":\"incremental\",\
             \"audit_timing\":{{\"total_ns\":500,\
             \"checks\":[{{\"name\":\"energy-recomputed\",\"elapsed_ns\":500,\"residual\":1e-15}}]}},\
             \"warmup\":3,\"iters\":30,\"min_ns\":{median},\"mean_ns\":{median},\"median_ns\":{median},\
             \"p95_ns\":{median},\"max_ns\":{median}{metrics}}}"
        )
    }

    #[test]
    fn schema_4_metrics_parse_and_default_empty() {
        // A /4 row with metrics (including a null one) parses.
        let text = doc4(&entry4("fleet/k64", 1000, ",\"metrics\":{\"ratio\":4.5,\"bound\":null}"));
        let parsed = BenchDoc::parse(&text).unwrap();
        assert_eq!(parsed.schema, "ncss-bench/4");
        let m = &parsed.entries[0].metrics;
        assert_eq!(m.get("ratio"), Some(&Some(4.5)));
        assert_eq!(m.get("bound"), Some(&None));
        // Metric-free /4 rows and all older-schema rows parse to empty maps.
        let plain = BenchDoc::parse(&doc4(&entry4("fleet/k64", 1000, ""))).unwrap();
        assert!(plain.entries[0].metrics.is_empty());
        let old = BenchDoc::parse(&doc(&entry("a/1", 1000, 500, "1e-15", "pass"))).unwrap();
        assert!(old.entries[0].metrics.is_empty());
        // Malformed metrics are named errors.
        let bad = doc4(&entry4("fleet/k64", 1000, ",\"metrics\":{\"ratio\":\"big\"}"));
        let err = BenchDoc::parse(&bad).unwrap_err();
        assert!(err.contains("ratio"), "{err}");
        let bad = doc4(&entry4("fleet/k64", 1000, ",\"metrics\":[1,2]"));
        assert!(BenchDoc::parse(&bad).is_err());
    }

    #[test]
    fn metric_drift_loss_and_nullification_are_regressions() {
        let base = BenchDoc::parse(&doc4(&entry4(
            "fleet/k64",
            1000,
            ",\"metrics\":{\"ratio\":4.5,\"bound\":8.0}",
        )))
        .unwrap();
        // Identical metrics: clean.
        assert!(diff(&base, &base, &DiffOptions::default()).passed());
        // Sub-tolerance float noise: clean.
        let noisy = BenchDoc::parse(&doc4(&entry4(
            "fleet/k64",
            1000,
            ",\"metrics\":{\"ratio\":4.5000000001,\"bound\":8.0}",
        )))
        .unwrap();
        assert!(diff(&base, &noisy, &DiffOptions::default()).passed());
        // Real drift on one metric: exactly one Metric finding.
        let drifted = BenchDoc::parse(&doc4(&entry4(
            "fleet/k64",
            1000,
            ",\"metrics\":{\"ratio\":4.6,\"bound\":8.0}",
        )))
        .unwrap();
        let report = diff(&base, &drifted, &DiffOptions::default());
        assert_eq!(report.regressions.len(), 1);
        assert_eq!(report.regressions[0].kind, Kind::Metric);
        assert_eq!(report.regressions[0].what, "fleet/k64#ratio");
        // A metric that disappears or goes null is flagged too.
        let lost = BenchDoc::parse(&doc4(&entry4(
            "fleet/k64",
            1000,
            ",\"metrics\":{\"bound\":8.0}",
        )))
        .unwrap();
        let report = diff(&base, &lost, &DiffOptions::default());
        assert_eq!(report.regressions.len(), 1);
        assert_eq!(report.regressions[0].kind, Kind::Metric);
        let nulled = BenchDoc::parse(&doc4(&entry4(
            "fleet/k64",
            1000,
            ",\"metrics\":{\"ratio\":null,\"bound\":8.0}",
        )))
        .unwrap();
        let report = diff(&base, &nulled, &DiffOptions::default());
        assert_eq!(report.regressions.len(), 1);
        // Candidate-only metrics are new coverage, not failures; and a
        // metric-free baseline never flags a metric-carrying candidate.
        let report = diff(&lost, &base, &DiffOptions::default());
        assert!(report.passed(), "{:?}", report.regressions);
    }

    fn doc5(entries: &str) -> String {
        format!("{{\"suite\":\"stream\",\"schema\":\"ncss-bench/5\",\"results\":[{entries}]}}")
    }

    #[test]
    fn schema_5_phases_parse_and_default_empty() {
        let text = doc5(&entry4(
            "stream_c/soak",
            1000,
            ",\"phases\":{\"dispatch\":{\"ns\":400,\"count\":10},\"root-find\":{\"ns\":100,\"count\":10}}",
        ));
        let parsed = BenchDoc::parse(&text).unwrap();
        assert_eq!(parsed.schema, "ncss-bench/5");
        let p = &parsed.entries[0].phases;
        assert_eq!(p.get("dispatch"), Some(&(400, 10)));
        assert_eq!(p.get("root-find"), Some(&(100, 10)));
        // Phase-free /5 rows and all older-schema rows parse to empty maps.
        let plain = BenchDoc::parse(&doc5(&entry4("stream_c/soak", 1000, ""))).unwrap();
        assert!(plain.entries[0].phases.is_empty());
        // Malformed phases are named errors.
        let bad = doc5(&entry4("s/1", 1000, ",\"phases\":{\"dispatch\":{\"ns\":1}}"));
        let err = BenchDoc::parse(&bad).unwrap_err();
        assert!(err.contains("count"), "{err}");
        let bad = doc5(&entry4("s/1", 1000, ",\"phases\":[]"));
        assert!(BenchDoc::parse(&bad).is_err());
        // Phases never flag a diff on their own (attribution jitters).
        let shifted = BenchDoc::parse(&doc5(&entry4(
            "stream_c/soak",
            1000,
            ",\"phases\":{\"dispatch\":{\"ns\":900,\"count\":10}}",
        )))
        .unwrap();
        let parsed = BenchDoc::parse(&text).unwrap();
        assert!(diff(&parsed, &shifted, &DiffOptions::default()).passed());
    }

    #[test]
    fn work_items_rows_report_throughput_deltas() {
        let base = BenchDoc::parse(&doc5(&entry4(
            "stream_c/soak",
            850_000,
            ",\"metrics\":{\"work_items\":1e3}",
        )))
        .unwrap();
        let new = BenchDoc::parse(&doc5(&entry4(
            "stream_c/soak",
            261_000,
            ",\"metrics\":{\"work_items\":1e3}",
        )))
        .unwrap();
        let report = diff(&base, &new, &DiffOptions::default());
        assert!(report.passed(), "faster is never a regression");
        assert_eq!(report.throughput.len(), 1);
        let t = &report.throughput[0];
        assert_eq!(t.kind, Kind::Throughput);
        assert_eq!(t.what, "stream_c/soak@ns_per_item");
        assert!((t.base - 850.0).abs() < 1e-9 && (t.new - 261.0).abs() < 1e-9, "{t:?}");
        assert!(t.detail.contains("ns/item"), "{}", t.detail);
        // A row without the metric on either side reports no throughput.
        let plain = BenchDoc::parse(&doc5(&entry4("stream_c/soak", 850_000, ""))).unwrap();
        assert!(diff(&plain, &new, &DiffOptions::default()).throughput.is_empty());
        assert!(diff(&base, &plain, &DiffOptions::default()).throughput.is_empty());
    }

    #[test]
    fn work_items_is_exempt_from_the_metric_gate() {
        // A short verification soak (1e3 items) diffed against the full
        // committed baseline (1e7 items): the count difference must not be
        // a metric regression — the throughput delta is the comparison —
        // while any *other* metric still gates at float slack.
        let base = BenchDoc::parse(&doc5(&entry4(
            "stream_c/soak",
            850_000,
            ",\"metrics\":{\"work_items\":1e7,\"jobs\":5e1}",
        )))
        .unwrap();
        let new = BenchDoc::parse(&doc5(&entry4(
            "stream_c/soak",
            261_000,
            ",\"metrics\":{\"work_items\":1e3,\"jobs\":5e1}",
        )))
        .unwrap();
        let report = diff(&base, &new, &DiffOptions::default());
        assert!(report.passed(), "work_items drift flagged: {:?}", report.regressions);
        assert_eq!(report.throughput.len(), 1);

        let drifted = BenchDoc::parse(&doc5(&entry4(
            "stream_c/soak",
            261_000,
            ",\"metrics\":{\"work_items\":1e3,\"jobs\":6e1}",
        )))
        .unwrap();
        let report = diff(&base, &drifted, &DiffOptions::default());
        assert!(!report.passed(), "a drifted real metric must still fail");
        assert!(report.regressions.iter().any(|f| f.what == "stream_c/soak#jobs"));
    }

    #[test]
    fn missing_entries_and_checks_are_regressions_added_are_not() {
        let base = BenchDoc::parse(&doc(&format!(
            "{},{}",
            entry("a/1", 1000, 500, "1e-15", "pass"),
            entry("b/2", 1000, 500, "1e-15", "pass")
        )))
        .unwrap();
        let new = BenchDoc::parse(&doc(&format!(
            "{},{}",
            entry("a/1", 1000, 500, "1e-15", "pass"),
            entry("c/3", 1000, 500, "1e-15", "pass")
        )))
        .unwrap();
        let report = diff(&base, &new, &DiffOptions::default());
        assert_eq!(report.regressions.len(), 1);
        assert_eq!(report.regressions[0].kind, Kind::Missing);
        assert_eq!(report.regressions[0].what, "b/2");
        assert_eq!(report.added, vec!["c/3".to_string()]);
    }
}
