fn main() {
    print!("{}", ncss_bench::experiments::open_problems::run());
}
