//! `bench-diff` — compare two `BENCH_<suite>.json` files and fail on
//! regressions.
//!
//! ```text
//! bench-diff <baseline.json> <candidate.json> [--threshold PCT]
//!            [--floor-ns N] [--residual-factor F] [--residual-floor R]
//! ```
//!
//! Exits 0 when no regression is found, 1 on regressions, 2 on usage or
//! parse errors. See EXPERIMENTS.md ("Comparing bench runs") for a worked
//! diagnosis.

use std::process::ExitCode;

use ncss_bench::diff::{diff, BenchDoc, DiffOptions, Kind};

const USAGE: &str = "usage: bench-diff <baseline.json> <candidate.json> \
[--threshold PCT] [--floor-ns N] [--residual-factor F] [--residual-floor R]

Compares every timing quantile (min/mean/median/p95/max_ns) and every
audit_timing check (elapsed_ns + residual) of the candidate against the
baseline. A quantile or check regresses when it is both PCT percent and
N nanoseconds slower; a residual regresses when it grows by more than F x
past the noise floor R; an audit verdict that leaves \"pass\" always fails.

Named \"metrics\" values (schema ncss-bench/4 — derived scalars such as
the fleet k-sweep's degradation ratio) are compared to float slack: any
real drift, loss, or nullification of a baseline metric fails the diff.

Rows where both documents carry the deterministic \"work_items\" metric
additionally print a normalised per-item throughput delta
(median_ns / work_items) — informational, never a failure, since the
quantile comparison already gates the timing. \"work_items\" itself is
exempt from the metric gate: it is a workload size, and the normalised
delta is how soaks of different lengths are compared. \"phases\"
attribution blocks (schema ncss-bench/5) parse but are not diffed.

  --threshold PCT        relative slowdown to flag, percent (default 25)
  --floor-ns N           absolute slowdown floor, nanoseconds (default 50000)
  --residual-factor F    residual growth factor to flag (default 10)
  --residual-floor R     residuals below R are noise (default 1e-9)
  --metric-rel-tol T     relative drift allowed on metrics (default 1e-6)
";

fn fail(msg: &str) -> ExitCode {
    eprintln!("bench-diff: {msg}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<&str> = Vec::new();
    let mut opts = DiffOptions::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut flag = |name: &str| -> Result<f64, String> {
            it.next()
                .ok_or_else(|| format!("{name} needs a value"))?
                .parse::<f64>()
                .map_err(|e| format!("bad {name} value: {e}"))
        };
        match arg.as_str() {
            "--threshold" => match flag("--threshold") {
                Ok(v) => opts.threshold = v / 100.0,
                Err(e) => return fail(&e),
            },
            "--floor-ns" => match flag("--floor-ns") {
                Ok(v) => opts.floor_ns = v as u64,
                Err(e) => return fail(&e),
            },
            "--residual-factor" => match flag("--residual-factor") {
                Ok(v) => opts.residual_factor = v,
                Err(e) => return fail(&e),
            },
            "--residual-floor" => match flag("--residual-floor") {
                Ok(v) => opts.residual_floor = v,
                Err(e) => return fail(&e),
            },
            "--metric-rel-tol" => match flag("--metric-rel-tol") {
                Ok(v) => opts.metric_rel_tol = v,
                Err(e) => return fail(&e),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => return fail(&format!("unknown flag {other:?}")),
            path => paths.push(path),
        }
    }
    let [base_path, new_path] = paths.as_slice() else {
        return fail("expected exactly two bench JSON paths");
    };

    // Load errors — unreadable files, malformed JSON, schema drift (an
    // unknown ncss-bench/N tag or a row without audit_timing) — are tool
    // errors: a named warning and exit 2, distinct from exit 1 (a real
    // perf/verdict regression). No usage spam: the command line was fine.
    let load = |path: &str| -> Result<BenchDoc, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        BenchDoc::parse(&text).map_err(|e| format!("{path}: {e}"))
    };
    let tool_error = |msg: &str| -> ExitCode {
        eprintln!("bench-diff: warning: {msg}");
        eprintln!("bench-diff: cannot compare (tool error, not a regression)");
        ExitCode::from(2)
    };
    let base = match load(base_path) {
        Ok(doc) => doc,
        Err(e) => return tool_error(&e),
    };
    let new = match load(new_path) {
        Ok(doc) => doc,
        Err(e) => return tool_error(&e),
    };
    if base.suite != new.suite {
        eprintln!(
            "bench-diff: warning: comparing different suites ({:?} vs {:?})",
            base.suite, new.suite
        );
    }

    let report = diff(&base, &new, &opts);
    println!(
        "bench-diff: {} vs {} — {} comparisons, {} regression(s), {} improvement(s)",
        base_path,
        new_path,
        report.compared,
        report.regressions.len(),
        report.improvements.len()
    );
    for f in &report.improvements {
        println!("  improved   {f}");
    }
    for f in &report.throughput {
        println!("  throughput {f}");
    }
    for name in &report.added {
        println!("  added      {name} (no baseline; not compared)");
    }
    for f in &report.regressions {
        let tag = match f.kind {
            Kind::Quantile => "SLOWER",
            Kind::CheckTime => "CHECK-SLOWER",
            Kind::Residual => "RESIDUAL",
            Kind::Verdict => "VERDICT",
            Kind::Mode => "MODE",
            Kind::Metric => "METRIC",
            Kind::Throughput => "THROUGHPUT",
            Kind::Missing => "MISSING",
        };
        println!("  {tag:<10} {f}");
    }
    if report.passed() {
        println!("bench-diff: OK");
        ExitCode::SUCCESS
    } else {
        println!("bench-diff: FAIL");
        ExitCode::FAILURE
    }
}
