fn main() {
    print!("{}", ncss_bench::experiments::ablations::run());
}
