fn main() {
    print!("{}", ncss_bench::experiments::lower_bound::run());
}
