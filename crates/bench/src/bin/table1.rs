fn main() {
    print!("{}", ncss_bench::experiments::table1::run());
}
