fn main() {
    print!("{}", ncss_bench::experiments::fig3::run());
}
