fn main() {
    print!("{}", ncss_bench::experiments::fig1::run());
}
