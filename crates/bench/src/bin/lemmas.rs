fn main() {
    print!("{}", ncss_bench::experiments::lemmas::run());
}
