fn main() {
    print!("{}", ncss_bench::experiments::fig2::run());
}
