//! Run the full reproduction suite and mirror the report to
//! `target/experiments/report.txt` alongside the SVG figure exports.

fn main() {
    let report = ncss_bench::experiments::run_all();
    print!("{report}");
    let dir = std::path::Path::new("target").join("experiments");
    if std::fs::create_dir_all(&dir).is_ok() {
        let path = dir.join("report.txt");
        if std::fs::write(&path, &report).is_ok() {
            eprintln!("(report mirrored to {})", path.display());
        }
    }
}
