//! # ncss-bench — experiment harness
//!
//! Regenerates every table and figure of the paper (see DESIGN.md §2 for
//! the experiment index). Run individual experiments with the binaries
//! (`cargo run -p ncss-bench --release --bin table1`, `fig1`, …) or all of
//! them with `all_experiments`; `cargo bench` additionally runs the
//! in-repo performance benches ([`harness`]) — each writes a
//! `BENCH_<suite>.json` with median/p95 timings — plus the same
//! reproduction suite via the `repro_experiments` bench target.
//!
//! Two bench artifacts (e.g. the committed baseline and a fresh run) are
//! compared with the `bench-diff` binary ([`diff`]), which flags per-check
//! and per-quantile regressions and exits non-zero when any are found.

#![warn(missing_docs)]

pub mod diff;
pub mod experiments;
pub mod harness;
