//! Benches for the parameter-sweep schedulers: serial vs. dynamic
//! (one-item claims) vs. chunked claims, on the in-repo harness
//! (median/p95 to `BENCH_sweep.json`).
//!
//! Two cell profiles bracket the design space: cheap uniform cells (where
//! chunking amortises the atomic cursor) and heavy skewed cells (where
//! dynamic one-item claims win by balancing the tail).

use ncss_analysis::{parallel_map, parallel_map_chunked};
use ncss_bench::harness::{black_box, Suite};
use ncss_core::run_c;
use ncss_sim::PowerLaw;
use ncss_workloads::{VolumeDist, WorkloadSpec};

fn main() {
    let mut suite = Suite::new("sweep");

    // Cheap uniform cells: per-item cost is tiny, scheduling overhead shows.
    let cheap: Vec<u64> = (0..20_000).collect();
    let cheap_cell = |&x: &u64| (0..400u64).fold(x, |a, b| a.wrapping_add(b ^ a));
    suite.bench("cheap_cells/serial", || {
        black_box(cheap.iter().map(cheap_cell).collect::<Vec<_>>());
    });
    suite.bench("cheap_cells/dynamic", || {
        black_box(parallel_map(&cheap, cheap_cell));
    });
    suite.bench("cheap_cells/chunked_auto", || {
        black_box(parallel_map_chunked(&cheap, 0, cheap_cell));
    });

    // Heavy skewed cells: real algorithm runs of very different sizes.
    let law = PowerLaw::cube();
    let sizes = [5usize, 10, 20, 40, 80, 160, 5, 10, 20, 40, 80, 160];
    let instances: Vec<_> = sizes
        .iter()
        .enumerate()
        .map(|(i, &n)| {
            WorkloadSpec::uniform(n, 1.0, VolumeDist::Exponential { mean: 1.0 })
                .generate(i as u64)
                .expect("valid spec")
        })
        .collect();
    let heavy_cell = |inst: &ncss_sim::Instance| run_c(inst, law).expect("C run").objective.energy;
    suite.bench_with("skewed_cells/serial", 2, 15, || {
        black_box(instances.iter().map(heavy_cell).collect::<Vec<_>>());
    });
    suite.bench_with("skewed_cells/dynamic", 2, 15, || {
        black_box(parallel_map(&instances, heavy_cell));
    });
    suite.bench_with("skewed_cells/chunked_auto", 2, 15, || {
        black_box(parallel_map_chunked(&instances, 0, heavy_cell));
    });

    suite.finish();
}
