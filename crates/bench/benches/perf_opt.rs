//! Criterion benches for the offline-optimum solver.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ncss_opt::{single_job_opt, solve_fractional_opt, SolverOptions};
use ncss_sim::PowerLaw;
use ncss_workloads::{VolumeDist, WorkloadSpec};

fn bench_closed_form(c: &mut Criterion) {
    let law = PowerLaw::cube();
    c.bench_function("single_job_opt_closed_form", |b| {
        b.iter(|| single_job_opt(law, 1.3, 2.7).expect("closed form"));
    });
}

fn bench_solver(c: &mut Criterion) {
    let law = PowerLaw::cube();
    let mut group = c.benchmark_group("fractional_opt_solver");
    group.sample_size(10);
    for n in [2usize, 6, 12] {
        let inst = WorkloadSpec::uniform(n, 1.0, VolumeDist::Uniform { lo: 0.3, hi: 1.8 })
            .generate(5)
            .expect("valid spec");
        let opts = SolverOptions { steps: 500, max_iters: 300, ..Default::default() };
        group.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, inst| {
            b.iter(|| solve_fractional_opt(inst, law, opts).expect("solver"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_closed_form, bench_solver);
criterion_main!(benches);
