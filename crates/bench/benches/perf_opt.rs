//! Benches for the offline-optimum solver, on the in-repo harness
//! (median/p95 to `BENCH_opt.json`).
//!
//! The closed-form optimum is audited before timing: its emitted decay
//! schedule goes through `ncss-audit` against the closed-form numbers, and
//! the verdict is recorded in the JSON. The projected-gradient solver's
//! discretised primal has no `Schedule` form, so it stays unaudited.

use ncss_audit::audit_run;
use ncss_bench::harness::{black_box, Suite};
use ncss_opt::{single_job_opt, solve_fractional_opt, SolverOptions};
use ncss_sim::{Instance, Job, PowerLaw};
use ncss_workloads::{VolumeDist, WorkloadSpec};

fn main() {
    let law = PowerLaw::cube();
    let mut suite = Suite::new("opt");

    let closed_form_report = {
        let (rho, volume) = (1.3, 2.7);
        let opt = single_job_opt(law, rho, volume).expect("closed form");
        let inst = Instance::single(Job::new(0.0, volume, rho)).expect("single job");
        let sched = opt.to_schedule(law, 0.0).expect("opt schedule");
        audit_run(&inst, &sched, &opt.evaluated(0.0))
    };
    suite.bench_report("single_job_opt_closed_form", Some(&closed_form_report), || {
        black_box(single_job_opt(law, 1.3, 2.7).expect("closed form"));
    });

    for n in [2usize, 6, 12] {
        let inst = WorkloadSpec::uniform(n, 1.0, VolumeDist::Uniform { lo: 0.3, hi: 1.8 })
            .generate(5)
            .expect("valid spec");
        let opts = SolverOptions { steps: 500, max_iters: 300, ..Default::default() };
        suite.bench_with(&format!("fractional_opt_solver/{n}"), 2, 10, || {
            black_box(solve_fractional_opt(&inst, law, opts).expect("solver"));
        });
    }

    suite.finish();
}
