//! Streaming-core benches (`BENCH_stream.json`): audited throughput rows
//! for the event-driven `CStream`/`NcStream` cores, plus a soak row that
//! pushes millions of Poisson releases through each core on one thread and
//! asserts the memory footprint stays flat.
//!
//! The soak is the load-bearing claim of DESIGN.md §9 — resident state is
//! O(active jobs), independent of how many releases have streamed past. It
//! is checked three ways after the run: the arena never held more slots
//! than the peak active set, the per-arrival-drained spill ring dropped
//! nothing, and (best effort, Linux) the process RSS grew by less than a
//! fixed ceiling across the whole run.
//!
//! Sizing: `NCSS_STREAM_SOAK_N` overrides the default 10 000 000 releases
//! per algorithm; `NCSS_BENCH_WARMUP`/`NCSS_BENCH_ITERS` override loop
//! counts as for every other bench.

use ncss_audit::{AuditConfig, AuditReport, IncrementalAudit, ScheduleAudit};
use ncss_bench::harness::{black_box, AuditMode, Suite};
use ncss_core::streaming::{CCompletion, CStream, NcStream, StreamConfig};
use ncss_rng::{dist, Pcg64};
use ncss_sim::{Evaluated, Instance, Job, PerJob, PowerLaw, ScheduleBuilder, Segment};
use ncss_trace::{read_file, replay, Algo, Event, Recorder, TraceHeader, TraceSummary};

/// Poisson arrivals with exponential unit-mean volumes at density 1 — the
/// same synthetic source as `ncss-cli stream --synthetic`.
struct Poisson {
    rng: Pcg64,
    rate: f64,
    clock: f64,
}

impl Poisson {
    fn new(seed: u64, rate: f64) -> Self {
        Self { rng: Pcg64::seed_from_u64(seed), rate, clock: 0.0 }
    }

    fn next_job(&mut self) -> Job {
        self.clock += dist::poisson_gap(&mut self.rng, self.rate);
        Job::unit_density(self.clock, dist::exponential(&mut self.rng, 1.0))
    }

    fn take(&mut self, n: usize) -> Vec<Job> {
        (0..n).map(|_| self.next_job()).collect()
    }
}

/// Largest active set the soak tolerates before the "flat memory" claim is
/// considered broken. At rate 4 the observed peak is a few dozen; the
/// ceiling leaves stochastic headroom while still being O(1) in `n`.
const ACTIVE_CEILING: usize = 4096;

/// Spill-ring capacity for drained (streaming-mode) runs.
const SPILL_CAP: usize = 4096;

/// Best-effort resident-set size in bytes from `/proc/self/statm`.
/// Returns `None` off Linux so the RSS check degrades to a no-op.
fn rss_bytes() -> Option<u64> {
    let statm = std::fs::read_to_string("/proc/self/statm").ok()?;
    let pages: u64 = statm.split_whitespace().nth(1)?.parse().ok()?;
    Some(pages * 4096)
}

/// Run a retained (batch-config) streamed C pass over `jobs` and audit the
/// rebuilt schedule against the stream's own reported objectives. The
/// verdict gates the timed rows exactly as `run_checked` gates the batch
/// benches.
fn gate_c(jobs: &[Job], law: PowerLaw) -> AuditReport {
    let run = || -> Result<AuditReport, String> {
        let mut stream = CStream::new(law, StreamConfig::batch());
        let mut per_job =
            PerJob { completion: vec![f64::NAN; jobs.len()], frac_flow: vec![0.0; jobs.len()], int_flow: vec![0.0; jobs.len()] };
        let mut sink = |c: ncss_core::CCompletion| {
            per_job.completion[c.id] = c.completion;
            per_job.frac_flow[c.id] = c.frac_flow;
            per_job.int_flow[c.id] = c.int_flow;
        };
        for job in jobs {
            stream.offer(*job, &mut sink).map_err(|e| e.to_string())?;
        }
        let summary = stream.finish(&mut sink).map_err(|e| e.to_string())?;
        let segments: Vec<Segment> = stream.spill_mut().drain().collect();
        audit_rebuilt(jobs, law, segments, Evaluated { objective: summary.objective, per_job })
    };
    run().unwrap_or_else(placeholder)
}

/// Same gate for the non-clairvoyant uniform-density stream.
fn gate_nc(jobs: &[Job], law: PowerLaw) -> AuditReport {
    let run = || -> Result<AuditReport, String> {
        let mut stream = NcStream::new(law, StreamConfig::batch());
        let mut per_job =
            PerJob { completion: vec![f64::NAN; jobs.len()], frac_flow: vec![0.0; jobs.len()], int_flow: vec![0.0; jobs.len()] };
        for job in jobs {
            stream
                .offer(*job, &mut |c: ncss_core::NcCompletion| {
                    per_job.completion[c.id] = c.completion;
                    per_job.frac_flow[c.id] = c.frac_flow;
                    per_job.int_flow[c.id] = c.int_flow;
                })
                .map_err(|e| e.to_string())?;
        }
        let summary = stream.finish().map_err(|e| e.to_string())?;
        let segments: Vec<Segment> = stream.spill_mut().drain().collect();
        audit_rebuilt(jobs, law, segments, Evaluated { objective: summary.objective, per_job })
    };
    run().unwrap_or_else(placeholder)
}

fn audit_rebuilt(
    jobs: &[Job],
    law: PowerLaw,
    segments: Vec<Segment>,
    reported: Evaluated,
) -> Result<AuditReport, String> {
    let inst = Instance::new(jobs.to_vec()).map_err(|e| e.to_string())?;
    let mut builder = ScheduleBuilder::new(law);
    for seg in segments {
        builder.push(seg);
    }
    let schedule = builder.build().map_err(|e| e.to_string())?;
    Ok(ScheduleAudit::new(AuditConfig::default()).audit(&inst, &schedule, &reported))
}

fn placeholder(why: String) -> AuditReport {
    let mut report = AuditReport::default();
    report.record("algorithm-ran", f64::INFINITY, 0.0, why);
    report
}

/// Streaming-mode C pass: spill drained after every offer, nothing retained.
/// Returns (objective sum, stats) so the caller can assert flatness.
fn soak_c(law: PowerLaw, n: usize, seed: u64, rate: f64) -> (f64, ncss_core::StreamStats) {
    let mut source = Poisson::new(seed, rate);
    let mut stream = CStream::new(law, StreamConfig::streaming(SPILL_CAP));
    let mut sink = |c: ncss_core::CCompletion| {
        black_box(c.completion);
    };
    for _ in 0..n {
        stream.offer(source.next_job(), &mut sink).expect("stream offer");
        stream.spill_mut().drain().for_each(drop);
    }
    let summary = stream.finish(&mut sink).expect("stream finish");
    stream.spill_mut().drain().for_each(drop);
    (summary.objective.fractional(), stream.stats())
}

/// Streaming-mode NC pass, same shape.
fn soak_nc(law: PowerLaw, n: usize, seed: u64, rate: f64) -> (f64, ncss_core::StreamStats) {
    let mut source = Poisson::new(seed, rate);
    let mut stream = NcStream::new(law, StreamConfig::streaming(SPILL_CAP));
    for _ in 0..n {
        stream
            .offer(source.next_job(), &mut |c: ncss_core::NcCompletion| {
                black_box(c.completion);
            })
            .expect("stream offer");
        stream.spill_mut().drain().for_each(drop);
    }
    let summary = stream.finish().expect("stream finish");
    stream.spill_mut().drain().for_each(drop);
    (summary.objective.fractional(), stream.stats())
}

/// Streaming-mode C pass with an [`IncrementalAudit`] riding the stream:
/// every release, retired segment, and completion feeds the auditor as it
/// happens (O(segments of the job) per completion, O(active) state — the
/// always-on audit must not reintroduce the O(n) memory the streaming mode
/// exists to avoid). Returns the finalized report, the stream stats, and
/// the auditor's peak active-job count.
fn soak_c_audited(
    law: PowerLaw,
    n: usize,
    seed: u64,
    rate: f64,
    config: AuditConfig,
) -> (AuditReport, ncss_core::StreamStats, usize) {
    let mut source = Poisson::new(seed, rate);
    let mut stream = CStream::new(law, StreamConfig::streaming(SPILL_CAP));
    let mut audit = IncrementalAudit::new(law, config);
    let mut buf: Vec<(usize, f64, f64, f64)> = Vec::new();
    let mut audit_peak_active = 0usize;
    for i in 0..n {
        let job = source.next_job();
        audit.on_release(i, job);
        stream
            .offer(job, &mut |c: ncss_core::CCompletion| {
                buf.push((c.id, c.completion, c.frac_flow, c.int_flow));
            })
            .expect("stream offer");
        for seg in stream.spill_mut().drain() {
            if let Some(t) = audit.on_segment(seg) {
                panic!("honest soak tripped {}: {}", t.check, t.detail);
            }
        }
        for (id, completion, frac, int) in buf.drain(..) {
            if let Some(t) = audit.on_complete(id, completion, frac, int) {
                panic!("honest soak tripped {}: {}", t.check, t.detail);
            }
        }
        audit_peak_active = audit_peak_active.max(audit.active_jobs());
    }
    let summary = stream
        .finish(&mut |c: ncss_core::CCompletion| {
            buf.push((c.id, c.completion, c.frac_flow, c.int_flow));
        })
        .expect("stream finish");
    for seg in stream.spill_mut().drain() {
        if let Some(t) = audit.on_segment(seg) {
            panic!("honest soak tripped {}: {}", t.check, t.detail);
        }
    }
    for (id, completion, frac, int) in buf.drain(..) {
        if let Some(t) = audit.on_complete(id, completion, frac, int) {
            panic!("honest soak tripped {}: {}", t.check, t.detail);
        }
    }
    let stats = stream.stats();
    (audit.finalize(&summary.objective), stats, audit_peak_active)
}

/// Same audited pass for the non-clairvoyant uniform-density stream.
fn soak_nc_audited(
    law: PowerLaw,
    n: usize,
    seed: u64,
    rate: f64,
    config: AuditConfig,
) -> (AuditReport, ncss_core::StreamStats, usize) {
    let mut source = Poisson::new(seed, rate);
    let mut stream = NcStream::new(law, StreamConfig::streaming(SPILL_CAP));
    let mut audit = IncrementalAudit::new(law, config);
    let mut buf: Vec<(usize, f64, f64, f64)> = Vec::new();
    let mut audit_peak_active = 0usize;
    for i in 0..n {
        let job = source.next_job();
        audit.on_release(i, job);
        stream
            .offer(job, &mut |c: ncss_core::NcCompletion| {
                buf.push((c.id, c.completion, c.frac_flow, c.int_flow));
            })
            .expect("stream offer");
        for seg in stream.spill_mut().drain() {
            if let Some(t) = audit.on_segment(seg) {
                panic!("honest soak tripped {}: {}", t.check, t.detail);
            }
        }
        for (id, completion, frac, int) in buf.drain(..) {
            if let Some(t) = audit.on_complete(id, completion, frac, int) {
                panic!("honest soak tripped {}: {}", t.check, t.detail);
            }
        }
        audit_peak_active = audit_peak_active.max(audit.active_jobs());
    }
    let summary = stream.finish().expect("stream finish");
    for seg in stream.spill_mut().drain() {
        if let Some(t) = audit.on_segment(seg) {
            panic!("honest soak tripped {}: {}", t.check, t.detail);
        }
    }
    let stats = stream.stats();
    (audit.finalize(&summary.objective), stats, audit_peak_active)
}

/// Panic unless the run's footprint was flat: bounded active set, arena
/// sized by the peak active set alone, and a spill ring that never dropped
/// a segment (every one was drained downstream).
fn assert_flat(name: &str, stats: &ncss_core::StreamStats, n: usize) {
    assert_eq!(stats.ingested, n, "{name}: ingested {} of {n}", stats.ingested);
    assert_eq!(stats.completed, n, "{name}: completed {} of {n}", stats.completed);
    assert!(
        stats.peak_active <= ACTIVE_CEILING,
        "{name}: peak active {} exceeds flat-memory ceiling {ACTIVE_CEILING}",
        stats.peak_active
    );
    assert_eq!(
        stats.arena_slots, stats.peak_active,
        "{name}: arena allocated {} slots for a peak active set of {}",
        stats.arena_slots, stats.peak_active
    );
    assert_eq!(stats.spill_dropped, 0, "{name}: spill ring dropped {} segments", stats.spill_dropped);
    assert!(
        stats.spill_peak_resident <= SPILL_CAP,
        "{name}: spill resident {} exceeds capacity {SPILL_CAP}",
        stats.spill_peak_resident
    );
}

/// How many arrivals of the soak process the record/replay gate captures.
/// Bounded so the WAL row costs milliseconds while still exercising the
/// full frame set (releases, completions, segments, checkpoints, summary).
const RECORD_PREFIX: usize = 5_000;

/// Record the first [`RECORD_PREFIX`] arrivals of the soak process to a
/// CRC-framed trace, checkpointing as `ncss-cli record` would. Returns the
/// trace path so the gate can replay it.
fn record_soak_prefix(law: PowerLaw, seed: u64, rate: f64) -> Result<std::path::PathBuf, String> {
    let path = std::env::temp_dir().join(format!("ncss_bench_soak_{seed}.nct"));
    let header = TraceHeader::new(
        Algo::C,
        law.alpha(),
        seed,
        format!("perf_stream soak prefix, rate {rate}"),
    );
    let mut rec = Recorder::create(&path, &header).map_err(|e| e.to_string())?;
    let mut source = Poisson::new(seed, rate);
    let mut stream = CStream::new(law, StreamConfig::streaming(SPILL_CAP));
    let append_all =
        |rec: &mut Recorder<_>, stream: &mut CStream, pending: &mut Vec<CCompletion>| {
            for c in pending.drain(..) {
                rec.append(&Event::CompleteC {
                    id: c.id as u64,
                    completion: c.completion,
                    frac_flow: c.frac_flow,
                    int_flow: c.int_flow,
                })
                .map_err(|e| e.to_string())?;
            }
            for seg in stream.spill_mut().drain() {
                rec.append(&Event::Segment(seg)).map_err(|e| e.to_string())?;
            }
            Ok::<(), String>(())
        };
    let mut pending: Vec<CCompletion> = Vec::new();
    for i in 0..RECORD_PREFIX {
        let job = source.next_job();
        rec.append(&Event::Release { id: i as u64, job }).map_err(|e| e.to_string())?;
        stream.offer(job, &mut |c| pending.push(c)).map_err(|e| e.to_string())?;
        append_all(&mut rec, &mut stream, &mut pending)?;
        if (i + 1) % 512 == 0 {
            rec.append(&Event::Checkpoint(Box::new(ncss_trace::Checkpoint::C(
                stream.snapshot(),
            ))))
            .map_err(|e| e.to_string())?;
        }
    }
    let summary = stream.finish(&mut |c| pending.push(c)).map_err(|e| e.to_string())?;
    append_all(&mut rec, &mut stream, &mut pending)?;
    rec.finalize(&TraceSummary {
        ingested: RECORD_PREFIX as u64,
        completed: summary.completed as u64,
        makespan: summary.makespan,
        energy: summary.objective.energy,
        frac_flow: summary.objective.frac_flow,
        int_flow: summary.objective.int_flow,
    })
    .map_err(|e| e.to_string())?;
    Ok(path)
}

/// Gate for the record/replay row: replay the recorded prefix and require
/// bitwise-identical completions, segments, checkpoints, and objectives —
/// the DESIGN.md §10 contract applied to the bench's own workload.
fn gate_record_replay(law: PowerLaw, seed: u64, rate: f64) -> AuditReport {
    let run = || -> Result<AuditReport, String> {
        let path = record_soak_prefix(law, seed, rate)?;
        let trace = read_file(&path).map_err(|e| format!("[{}] {e}", e.name()))?;
        let report = replay(&trace).map_err(|e| format!("[{}] {e}", e.name()))?;
        let mut out = AuditReport::default();
        out.record(
            "trace-replay-bitwise",
            0.0,
            0.0,
            format!(
                "{} jobs, {} segments, {} checkpoints verified, objectives bitwise-equal",
                report.jobs.len(),
                report.segments.len(),
                report.checkpoints_verified
            ),
        );
        let _ = std::fs::remove_file(&path);
        Ok(out)
    };
    run().unwrap_or_else(placeholder)
}

fn main() {
    let law = PowerLaw::cube();
    let mut suite = Suite::new("stream");

    let soak_n: usize = std::env::var("NCSS_STREAM_SOAK_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000_000);
    let rate = 4.0;

    // Throughput rows: moderate-n streams, gated by an audited retained run
    // over the same arrivals.
    for n in [10_000usize, 100_000] {
        let jobs = Poisson::new(11, rate).take(n);
        let r = gate_c(&jobs[..n.min(2_000)], law);
        suite.bench_report_with(&format!("stream_c/{n}"), Some(&r), 1, 10, || {
            let (obj, stats) = soak_c(law, n, 11, rate);
            black_box(obj);
            assert_flat("stream_c", &stats, n);
        });

        let r = gate_nc(&jobs[..n.min(2_000)], law);
        suite.bench_report_with(&format!("stream_nc_uniform/{n}"), Some(&r), 1, 10, || {
            let (obj, stats) = soak_nc(law, n, 11, rate);
            black_box(obj);
            assert_flat("stream_nc_uniform", &stats, n);
        });
    }

    // Record/replay row: the soak's own arrival process, recorded to a
    // CRC-framed WAL and replayed bitwise (the gate), with the recording
    // pass itself timed — the crash-safety tax on streaming throughput.
    let r = gate_record_replay(law, 97, rate);
    suite.bench_report_with("stream_c/record_prefix", Some(&r), 1, 5, || {
        let path = record_soak_prefix(law, 97, rate).expect("record soak prefix");
        black_box(&path);
        let _ = std::fs::remove_file(&path);
    });

    // Soak rows: ≥10M releases per core on a single thread, one timed pass,
    // flat-memory ceiling asserted inside the measured closure. The gate
    // audits a retained prefix of the same arrival process (auditing all
    // 10M would itself need O(n) memory, which is the point of the mode).
    let rss_before = rss_bytes();
    let prefix = Poisson::new(97, rate).take(2_000);

    // Every soak row carries the deterministic event count as the
    // `work_items` metric, so `bench-diff` can report normalised ns/event
    // throughput deltas between runs (and flag a baseline comparison whose
    // n silently changed).
    let work_items = vec![("work_items".to_string(), soak_n as f64)];

    let r = gate_c(&prefix, law);
    suite.bench_report_mode_metrics_with(
        "stream_c/soak",
        Some(&r),
        AuditMode::Batch,
        work_items.clone(),
        0,
        1,
        || {
            let (obj, stats) = soak_c(law, soak_n, 97, rate);
            assert!(obj.is_finite(), "soak objective overflowed");
            assert_flat("stream_c/soak", &stats, soak_n);
        },
    );

    let r = gate_nc(&prefix, law);
    suite.bench_report_mode_metrics_with(
        "stream_nc_uniform/soak",
        Some(&r),
        AuditMode::Batch,
        work_items.clone(),
        0,
        1,
        || {
            let (obj, stats) = soak_nc(law, soak_n, 97, rate);
            assert!(obj.is_finite(), "soak objective overflowed");
            assert_flat("stream_nc_uniform/soak", &stats, soak_n);
        },
    );

    // Audited-throughput soak rows: the same release stream with an
    // incremental auditor attached to every event. The row's verdict is the
    // auditor's own finalized report over the *full* soak (not a prefix —
    // the O(delta) design is what makes auditing all of it affordable), and
    // the flat-memory claim now covers the auditor's state too. The
    // quadrature cross-check tier runs at a soak-appropriate stride: every
    // segment and completion still gets its closed-form re-derivation, and
    // at 10M releases stride 512 still pits tanh–sinh quadrature against
    // ~100k closed-form integrals. A 103-node quadrature costs ~7 µs vs
    // ~100 ns closed-form, so the default stride 8 would triple the audit
    // cost for no additional coverage kind (see EXPERIMENTS.md).
    let soak_cfg = AuditConfig { cross_check_stride: 512, ..AuditConfig::default() };
    let (r, _, _) = soak_c_audited(law, soak_n.min(50_000), 97, rate, soak_cfg);
    suite.bench_report_mode_metrics_with(
        "stream_c/soak_audited",
        Some(&r),
        AuditMode::Incremental,
        work_items.clone(),
        0,
        1,
        || {
            let (report, stats, audit_peak) = soak_c_audited(law, soak_n, 97, rate, soak_cfg);
            assert!(report.passed(), "audited soak failed:\n{}", report.render());
            assert_flat("stream_c/soak_audited", &stats, soak_n);
            assert!(
                audit_peak <= ACTIVE_CEILING,
                "auditor held {audit_peak} active jobs (> {ACTIVE_CEILING}): audit state is not O(active)"
            );
        },
    );

    let (r, _, _) = soak_nc_audited(law, soak_n.min(50_000), 97, rate, soak_cfg);
    suite.bench_report_mode_metrics_with(
        "stream_nc_uniform/soak_audited",
        Some(&r),
        AuditMode::Incremental,
        work_items,
        0,
        1,
        || {
            let (report, stats, audit_peak) = soak_nc_audited(law, soak_n, 97, rate, soak_cfg);
            assert!(report.passed(), "audited soak failed:\n{}", report.render());
            assert_flat("stream_nc_uniform/soak_audited", &stats, soak_n);
            assert!(
                audit_peak <= ACTIVE_CEILING,
                "auditor held {audit_peak} active jobs (> {ACTIVE_CEILING}): audit state is not O(active)"
            );
        },
    );

    // Phase attribution for the soak rows (schema ncss-bench/5 `phases`):
    // a *separate* profiled pass per row — never the timed one, whose
    // quantiles must stay free of timestamping overhead — capped at 1M
    // events, since attribution is about proportions, not totals. Runs
    // after every timed row above so the enabled profiler never overlaps
    // a measurement.
    {
        use ncss_sim::profile::{enable_phase_profiling, take_phase_report};
        let attr_n = soak_n.min(1_000_000);
        enable_phase_profiling();
        let _ = soak_c(law, attr_n, 97, rate);
        suite.attach_phases("stream_c/soak", &take_phase_report());
        enable_phase_profiling();
        let _ = soak_nc(law, attr_n, 97, rate);
        suite.attach_phases("stream_nc_uniform/soak", &take_phase_report());
        enable_phase_profiling();
        let _ = soak_c_audited(law, attr_n, 97, rate, soak_cfg);
        suite.attach_phases("stream_c/soak_audited", &take_phase_report());
        enable_phase_profiling();
        let _ = soak_nc_audited(law, attr_n, 97, rate, soak_cfg);
        suite.attach_phases("stream_nc_uniform/soak_audited", &take_phase_report());
    }

    // RSS growth across all four soaks (the audited pair included), best
    // effort: a leak proportional to n would show up as hundreds of MB
    // here; flat cores stay in the noise.
    if let (Some(before), Some(after)) = (rss_before, rss_bytes()) {
        let grown = after.saturating_sub(before);
        assert!(
            grown < 64 * 1024 * 1024,
            "soak RSS grew by {grown} bytes (> 64 MiB): resident memory is not flat"
        );
    }

    // The always-on audit is a tax, not a cliff: the *extra* cost of the
    // audited soak over the plain one must stay within an absolute
    // per-event budget. (This used to be a ratio guard — audited ≤ 2×
    // plain — but a ratio punishes core speedups: once the fused serve()
    // path dropped the plain soak under ~300 ns/event, an unchanged audit
    // tax tripped it with no audit regression at all.) The 1.5 µs/event
    // budget is ~2× the measured tax and still catches the real cliffs —
    // an unamortised quadrature tier or an O(active)-per-event accrual
    // slip costs several µs/event. The absolute slack keeps tiny smoke
    // runs (NCSS_STREAM_SOAK_N=1000) from flaking on scheduler jitter.
    const AUDIT_TAX_BUDGET_NS_PER_EVENT: f64 = 1500.0;
    let mean_of = |name: &str| {
        suite
            .results()
            .iter()
            .find(|m| m.name == name)
            .unwrap_or_else(|| panic!("missing bench row {name}"))
            .mean_ns
    };
    for core in ["stream_c", "stream_nc_uniform"] {
        let plain = mean_of(&format!("{core}/soak"));
        let audited = mean_of(&format!("{core}/soak_audited"));
        let tax = (audited as f64) - (plain as f64);
        let budget = AUDIT_TAX_BUDGET_NS_PER_EVENT * soak_n as f64 + 5e7;
        assert!(
            tax <= budget,
            "{core}: audited soak {audited} ns vs un-audited {plain} ns — \
             audit tax {:.0} ns/event exceeds the {AUDIT_TAX_BUDGET_NS_PER_EVENT} ns/event budget",
            tax / soak_n as f64
        );
    }

    suite.finish();
}
