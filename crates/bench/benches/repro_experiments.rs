//! Reproduction suite as a bench target so that `cargo bench --workspace`
//! regenerates every table and figure of the paper in one pass.
fn main() {
    print!("{}", ncss_bench::experiments::run_all());
}
