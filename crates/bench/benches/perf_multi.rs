//! Criterion benches for the parallel-machine algorithms and the
//! lower-bound game.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ncss_multi::{immediate_dispatch_game, run_c_par, run_nc_par, RoundRobin};
use ncss_sim::PowerLaw;
use ncss_workloads::{VolumeDist, WorkloadSpec};

fn bench_par_algorithms(c: &mut Criterion) {
    let law = PowerLaw::cube();
    let inst = WorkloadSpec::uniform(60, 2.0, VolumeDist::Exponential { mean: 1.0 })
        .generate(3)
        .expect("valid spec");
    let mut group = c.benchmark_group("parallel_machines_60_jobs");
    group.sample_size(20);
    for k in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("c_par", k), &k, |b, &k| {
            b.iter(|| run_c_par(&inst, law, k).expect("C-PAR"));
        });
        group.bench_with_input(BenchmarkId::new("nc_par", k), &k, |b, &k| {
            b.iter(|| run_nc_par(&inst, law, k).expect("NC-PAR"));
        });
    }
    group.finish();
}

fn bench_lower_bound_game(c: &mut Criterion) {
    let law = PowerLaw::cube();
    let mut group = c.benchmark_group("immediate_dispatch_game");
    group.sample_size(10);
    for k in [4usize, 8, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                let mut p = RoundRobin::default();
                immediate_dispatch_game(law, k, &mut p, 1.0, 1e-4).expect("game")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_par_algorithms, bench_lower_bound_game);
criterion_main!(benches);
