//! Benches for the parallel-machine algorithms and the lower-bound game,
//! on the in-repo harness (median/p95 to `BENCH_multi.json`).
//!
//! C-PAR and NC-PAR each run once through `run_checked_multi` (the
//! cross-machine auditor: per-machine invariants, no-double-service,
//! cross-machine volume conservation, objective re-derivation) before
//! timing; the verdict is recorded with the measurement and a failure
//! fails the binary. The adversary game produces no fleet schedule, so it
//! stays unaudited.

use ncss_audit::{AuditConfig, AuditReport};
use ncss_bench::harness::{black_box, Suite};
use ncss_core::run_checked_multi;
use ncss_multi::{immediate_dispatch_game, run_c_par, run_nc_par, RoundRobin};
use ncss_sim::{Instance, PowerLaw, SimResult};
use ncss_workloads::{VolumeDist, WorkloadSpec};

/// One audited run of a parallel-machine algorithm before timing it; the
/// full report carries the cross-machine per-check timings into
/// `BENCH_multi.json`.
fn multi_gate<F>(inst: &Instance, law: PowerLaw, machines: usize, run: F) -> AuditReport
where
    F: FnOnce(&Instance, PowerLaw, usize) -> SimResult<ncss_core::MultiRun>,
{
    match run_checked_multi(inst, law, machines, AuditConfig::default(), run) {
        Ok(checked) => checked.report,
        Err(_) => {
            let mut report = AuditReport::default();
            report.record("algorithm-ran", f64::INFINITY, 0.0, "run_checked_multi errored".into());
            report
        }
    }
}

fn main() {
    let law = PowerLaw::cube();
    let mut suite = Suite::new("multi");

    let inst = WorkloadSpec::uniform(60, 2.0, VolumeDist::Exponential { mean: 1.0 })
        .generate(3)
        .expect("valid spec");
    for k in [2usize, 4, 8] {
        let r = multi_gate(&inst, law, k, |i, l, m| run_c_par(i, l, m).map(Into::into));
        suite.bench_report_with(&format!("c_par/60x{k}"), Some(&r), 2, 20, || {
            black_box(run_c_par(&inst, law, k).expect("C-PAR"));
        });
        let r = multi_gate(&inst, law, k, |i, l, m| run_nc_par(i, l, m).map(Into::into));
        suite.bench_report_with(&format!("nc_par/60x{k}"), Some(&r), 2, 20, || {
            black_box(run_nc_par(&inst, law, k).expect("NC-PAR"));
        });
    }

    for k in [4usize, 8, 16] {
        suite.bench_with(&format!("immediate_dispatch_game/{k}"), 2, 10, || {
            let mut p = RoundRobin::default();
            black_box(immediate_dispatch_game(law, k, &mut p, 1.0, 1e-4).expect("game"));
        });
    }

    suite.finish();
}
