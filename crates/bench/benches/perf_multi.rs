//! Benches for the parallel-machine algorithms and the lower-bound game,
//! on the in-repo harness (median/p95 to `BENCH_multi.json`).

use ncss_bench::harness::{black_box, Suite};
use ncss_multi::{immediate_dispatch_game, run_c_par, run_nc_par, RoundRobin};
use ncss_sim::PowerLaw;
use ncss_workloads::{VolumeDist, WorkloadSpec};

fn main() {
    let law = PowerLaw::cube();
    let mut suite = Suite::new("multi");

    let inst = WorkloadSpec::uniform(60, 2.0, VolumeDist::Exponential { mean: 1.0 })
        .generate(3)
        .expect("valid spec");
    for k in [2usize, 4, 8] {
        suite.bench_with(&format!("c_par/60x{k}"), 2, 20, || {
            black_box(run_c_par(&inst, law, k).expect("C-PAR"));
        });
        suite.bench_with(&format!("nc_par/60x{k}"), 2, 20, || {
            black_box(run_nc_par(&inst, law, k).expect("NC-PAR"));
        });
    }

    for k in [4usize, 8, 16] {
        suite.bench_with(&format!("immediate_dispatch_game/{k}"), 2, 10, || {
            let mut p = RoundRobin::default();
            black_box(immediate_dispatch_game(law, k, &mut p, 1.0, 1e-4).expect("game"));
        });
    }

    suite.finish();
}
