//! Throughput benches for the single-machine algorithms, on the in-repo
//! harness (median/p95 to `BENCH_algorithms.json`).
//!
//! These quantify the cost model stated in DESIGN.md: Algorithm C is
//! event-driven (near-linear in jobs with an O(active) accrual scan per
//! event), Algorithm NC rides a continuous shadow C stream for its base
//! powers (O(n log n); it re-simulated prefixes at O(n²·log n) before
//! DESIGN.md §9), and the non-uniform algorithm pays two nested C runs
//! per integration step.
//!
//! Before timing, each algorithm runs once through `run_checked` so its
//! audit verdict — and the audit's own per-check `audit_timing` block —
//! lands next to the numbers in `BENCH_algorithms.json`: a speedup that
//! breaks an invariant fails the bench binary.

use ncss_audit::{AuditConfig, AuditReport};
use ncss_bench::harness::{black_box, Suite};
use ncss_core::{
    run_c, run_checked, run_nc_nonuniform, run_nc_uniform, CheckedAlgorithm, NonUniformParams,
};
use ncss_sim::{Instance, PowerLaw};
use ncss_workloads::{DensityDist, VolumeDist, WorkloadSpec};

fn uniform_instance(n: usize) -> ncss_sim::Instance {
    WorkloadSpec::uniform(n, 1.0, VolumeDist::Exponential { mean: 1.0 })
        .generate(42)
        .expect("valid spec")
}

/// One checked run before the clock starts: the full report (verdict plus
/// per-check timing) is recorded with the measurement. An algorithm error
/// yields an all-failed placeholder so the bench binary still fails.
fn gate(
    inst: &Instance,
    law: PowerLaw,
    algo: CheckedAlgorithm,
    config: AuditConfig,
) -> AuditReport {
    match run_checked(inst, law, algo, config) {
        Ok(run) => run.report,
        Err(_) => {
            let mut report = AuditReport::default();
            report.record("algorithm-ran", f64::INFINITY, 0.0, "run_checked errored".into());
            report
        }
    }
}

fn main() {
    let law = PowerLaw::cube();
    let mut suite = Suite::new("algorithms");

    // Uniform-density hot path: Algorithm C and Algorithm NC.
    for n in [10usize, 100, 1000] {
        let inst = uniform_instance(n);
        let r = gate(&inst, law, CheckedAlgorithm::C, AuditConfig::default());
        suite.bench_report(&format!("algorithm_c/{n}"), Some(&r), || {
            black_box(run_c(&inst, law).expect("C run"));
        });
    }
    for n in [10usize, 100, 400] {
        let inst = uniform_instance(n);
        let r = gate(&inst, law, CheckedAlgorithm::NcUniform, AuditConfig::default());
        suite.bench_report(&format!("algorithm_nc_uniform/{n}"), Some(&r), || {
            black_box(run_nc_uniform(&inst, law).expect("NC run"));
        });
    }

    // Non-uniform-density hot path: nested C runs per integration step.
    for n in [4usize, 8, 16] {
        let inst = WorkloadSpec {
            n_jobs: n,
            arrival_rate: 1.0,
            volumes: VolumeDist::Exponential { mean: 1.0 },
            densities: DensityDist::LogUniform { lo: 0.5, hi: 10.0 },
        }
        .generate(7)
        .expect("valid spec");
        let params = NonUniformParams { steps_per_job: 150, ..NonUniformParams::recommended(3.0) };
        // Step-integrated: reported numbers are accurate to the integration
        // step, so the audit runs at step-level tolerance.
        let config = AuditConfig { rel_tol: 1e-2, ..AuditConfig::default() };
        let r = gate(&inst, law, CheckedAlgorithm::NcNonUniform(params), config);
        suite.bench_report_with(&format!("algorithm_nc_nonuniform/{n}"), Some(&r), 2, 10, || {
            black_box(run_nc_nonuniform(&inst, law, params).expect("NC run"));
        });
    }

    {
        // The evaluator is itself part of the audit path, so it gets no
        // verdict of its own.
        let inst = uniform_instance(500);
        let run = run_c(&inst, law).expect("C run");
        suite.bench("evaluate_schedule/500", || {
            black_box(ncss_sim::evaluate(&run.schedule, &inst).expect("evaluation"));
        });
    }

    suite.finish();
}
