//! Throughput benches for the single-machine algorithms, on the in-repo
//! harness (median/p95 to `BENCH_algorithms.json`).
//!
//! These quantify the cost model stated in DESIGN.md: Algorithm C is
//! event-driven (near-linear in jobs with an O(n) accrual scan per event),
//! Algorithm NC re-simulates C on prefixes (O(n²·log n)), and the
//! non-uniform algorithm pays two nested C runs per integration step.

use ncss_bench::harness::{black_box, Suite};
use ncss_core::{run_c, run_nc_nonuniform, run_nc_uniform, NonUniformParams};
use ncss_sim::PowerLaw;
use ncss_workloads::{DensityDist, VolumeDist, WorkloadSpec};

fn uniform_instance(n: usize) -> ncss_sim::Instance {
    WorkloadSpec::uniform(n, 1.0, VolumeDist::Exponential { mean: 1.0 })
        .generate(42)
        .expect("valid spec")
}

fn main() {
    let law = PowerLaw::cube();
    let mut suite = Suite::new("algorithms");

    // Uniform-density hot path: Algorithm C and Algorithm NC.
    for n in [10usize, 100, 1000] {
        let inst = uniform_instance(n);
        suite.bench(&format!("algorithm_c/{n}"), || {
            black_box(run_c(&inst, law).expect("C run"));
        });
    }
    for n in [10usize, 100, 400] {
        let inst = uniform_instance(n);
        suite.bench(&format!("algorithm_nc_uniform/{n}"), || {
            black_box(run_nc_uniform(&inst, law).expect("NC run"));
        });
    }

    // Non-uniform-density hot path: nested C runs per integration step.
    for n in [4usize, 8, 16] {
        let inst = WorkloadSpec {
            n_jobs: n,
            arrival_rate: 1.0,
            volumes: VolumeDist::Exponential { mean: 1.0 },
            densities: DensityDist::LogUniform { lo: 0.5, hi: 10.0 },
        }
        .generate(7)
        .expect("valid spec");
        let params = NonUniformParams { steps_per_job: 150, ..NonUniformParams::recommended(3.0) };
        suite.bench_with(&format!("algorithm_nc_nonuniform/{n}"), 2, 10, || {
            black_box(run_nc_nonuniform(&inst, law, params).expect("NC run"));
        });
    }

    {
        let inst = uniform_instance(500);
        let run = run_c(&inst, law).expect("C run");
        suite.bench("evaluate_schedule/500", || {
            black_box(ncss_sim::evaluate(&run.schedule, &inst).expect("evaluation"));
        });
    }

    suite.finish();
}
