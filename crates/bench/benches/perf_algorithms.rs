//! Criterion throughput benches for the single-machine algorithms.
//!
//! These quantify the cost model stated in DESIGN.md: Algorithm C is
//! event-driven (near-linear in jobs with an O(n) accrual scan per event),
//! Algorithm NC re-simulates C on prefixes (O(n²·log n)), and the
//! non-uniform algorithm pays two nested C runs per integration step.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ncss_core::{run_c, run_nc_nonuniform, run_nc_uniform, NonUniformParams};
use ncss_sim::PowerLaw;
use ncss_workloads::{DensityDist, VolumeDist, WorkloadSpec};

fn uniform_instance(n: usize) -> ncss_sim::Instance {
    WorkloadSpec::uniform(n, 1.0, VolumeDist::Exponential { mean: 1.0 })
        .generate(42)
        .expect("valid spec")
}

fn bench_algorithm_c(c: &mut Criterion) {
    let law = PowerLaw::cube();
    let mut group = c.benchmark_group("algorithm_c");
    for n in [10usize, 100, 1000] {
        let inst = uniform_instance(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, inst| {
            b.iter(|| run_c(inst, law).expect("C run"));
        });
    }
    group.finish();
}

fn bench_algorithm_nc(c: &mut Criterion) {
    let law = PowerLaw::cube();
    let mut group = c.benchmark_group("algorithm_nc_uniform");
    for n in [10usize, 100, 400] {
        let inst = uniform_instance(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, inst| {
            b.iter(|| run_nc_uniform(inst, law).expect("NC run"));
        });
    }
    group.finish();
}

fn bench_algorithm_nc_nonuniform(c: &mut Criterion) {
    let law = PowerLaw::cube();
    let mut group = c.benchmark_group("algorithm_nc_nonuniform");
    group.sample_size(10);
    for n in [4usize, 8, 16] {
        let inst = WorkloadSpec {
            n_jobs: n,
            arrival_rate: 1.0,
            volumes: VolumeDist::Exponential { mean: 1.0 },
            densities: DensityDist::LogUniform { lo: 0.5, hi: 10.0 },
        }
        .generate(7)
        .expect("valid spec");
        let params = NonUniformParams { steps_per_job: 150, ..NonUniformParams::recommended(3.0) };
        group.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, inst| {
            b.iter(|| run_nc_nonuniform(inst, law, params).expect("NC run"));
        });
    }
    group.finish();
}

fn bench_schedule_evaluation(c: &mut Criterion) {
    let law = PowerLaw::cube();
    let inst = uniform_instance(500);
    let run = run_c(&inst, law).expect("C run");
    c.bench_function("evaluate_schedule_500_jobs", |b| {
        b.iter(|| ncss_sim::evaluate(&run.schedule, &inst).expect("evaluation"));
    });
}

criterion_group!(
    benches,
    bench_algorithm_c,
    bench_algorithm_nc,
    bench_algorithm_nc_nonuniform,
    bench_schedule_evaluation
);
criterion_main!(benches);
