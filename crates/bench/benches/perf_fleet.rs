//! Fleet k-sweep: the sharded C-PAR/NC-PAR replay across k ∈ {2..4096}
//! plus the `Ω(k^{1−1/α})` dispatch-degradation study, writing
//! `BENCH_fleet.json` (schema ncss-bench/5, with `metrics` columns).
//!
//! Two row families (methodology in EXPERIMENTS.md, "Fleet k-sweep"):
//!
//! * `fleet_{c,nc}_par/<trace>xK` — the committed golden traces under
//!   `traces/` are tiled (period-shifted copies, densities normalised to 1
//!   so NC-PAR's uniform-density setting applies and the NC/C ratio is
//!   apples-to-apples) into instances of `max(2048, 2k)` jobs and replayed
//!   through the sharded fleet. The dispatch log is built once by the
//!   serial dispatcher outside the timed region; what is timed is the
//!   sharded per-machine execution (`replay_c` / `replay_nc`) over the
//!   worker pool. Every cell is gated by `IncrementalMultiAudit` via
//!   `audit_fleet`, and carries deterministic `metrics`:
//!   `frac_objective`, plus on NC rows `degradation_vs_c_par`
//!   (frac NC-PAR ÷ frac C-PAR at the same k) and `k_pow_bound`
//!   (`k^{1−1/α}` — the paper's dispatch lower-bound envelope).
//!
//! * `dispatch_game/aA/kK` — the Section 6 adaptive-adversary game at
//!   each k, with `metrics` `ratio` (measured cost ÷ feasible spread
//!   bound), `bound` (`k^{1−1/α}`), and `max_colocated`. The game's final
//!   adversarial instance is reconstructed with the same deterministic
//!   policy and replayed sharded (`replay_nc_assigned`), audit-gated, and
//!   checked bitwise against the game's own serial cost. A
//!   `dispatch_slope/aA` summary row fits `ln ratio` against `ln k` and
//!   records the slope next to the theoretical exponent `1 − 1/α`.
//!
//! Every `metrics` value is a deterministic function of the committed
//! traces and seeds, so `bench-diff` holds them to float slack
//! (`--metric-rel-tol`) rather than timing thresholds: a drifted ratio
//! means the algorithm changed, not the machine.

use ncss_audit::AuditConfig;
use ncss_bench::harness::{black_box, AuditMode, Suite};
use ncss_multi::fleet::{audit_fleet, replay_c, replay_nc, replay_nc_assigned, DispatchLog};
use ncss_multi::{collect_assignment, fit_loglog_slope, immediate_dispatch_game, RoundRobin};
use ncss_pool::Pool;
use ncss_sim::{Instance, Job, PowerLaw};
use ncss_workloads::lookalike_batch;

/// Load a committed golden trace's release set as a job motif,
/// density-normalised to the uniform setting.
fn trace_motif(name: &str) -> Vec<Job> {
    let dir = std::env::var("CARGO_MANIFEST_DIR").unwrap_or_else(|_| ".".into());
    let path = std::path::Path::new(&dir).join("../../traces").join(name);
    let trace = ncss_trace::read_file(&path)
        .unwrap_or_else(|e| panic!("read golden trace {}: {e:?}", path.display()));
    let jobs: Vec<Job> = trace
        .jobs()
        .into_iter()
        .map(|j| Job::unit_density(j.release, j.volume))
        .collect();
    assert!(!jobs.is_empty(), "golden trace {name} has no releases");
    jobs
}

/// Tile a motif to `n` jobs by repeating it with period shifts — the
/// trace's arrival pattern at fleet scale, still fully deterministic.
fn tile(motif: &[Job], n: usize) -> Instance {
    let span = motif.iter().map(|j| j.release).fold(0.0f64, f64::max) + 1.0;
    let jobs: Vec<Job> = (0..n)
        .map(|i| {
            let j = motif[i % motif.len()];
            let copy = (i / motif.len()) as f64;
            Job::unit_density(j.release + copy * span, j.volume)
        })
        .collect();
    Instance::new(jobs).expect("tiled trace instance")
}

fn main() {
    let pool = Pool::auto();
    let config = AuditConfig::default();
    let mut suite = Suite::new("fleet");

    // ------------------------------------------------------------------
    // Family 1: sharded trace replay across the k sweep, both algorithms,
    // every cell audit-gated by the incremental cross-machine auditor.
    // ------------------------------------------------------------------
    let law = PowerLaw::cube(); // alpha = 3: bound exponent 1 - 1/3 = 2/3
    let alpha = 3.0;
    let motif = trace_motif("c_alpha2.nct");
    for &k in &[2usize, 8, 64, 512, 4096] {
        let n = (2 * k).max(2048);
        let inst = tile(&motif, n);
        let (warmup, iters) = if k >= 512 { (1, 5) } else { (2, 10) };

        // Serial dispatch once, outside the timed region: the sharded
        // executor is the subject, the dispatch log is its input.
        let c_log = DispatchLog::c_par(&inst, law, k).expect("C-PAR dispatch");
        let c_out = replay_c(&inst, law, &c_log, &pool).expect("C-PAR replay");
        let c_report = audit_fleet(&inst, law, &c_out, config);
        suite.bench_report_mode_metrics_with(
            &format!("fleet_c_par/c_alpha2x{k}"),
            Some(&c_report),
            AuditMode::Incremental,
            vec![
                ("frac_objective".into(), c_out.objective.fractional()),
                ("jobs".into(), n as f64),
                // Deterministic item count under the name bench-diff
                // normalises throughput by (ns/item deltas).
                ("work_items".into(), n as f64),
            ],
            warmup,
            iters,
            || {
                black_box(replay_c(&inst, law, &c_log, &pool).expect("C-PAR replay"));
            },
        );

        let nc_log = DispatchLog::nc_par(&inst, law, k).expect("NC-PAR dispatch");
        let nc_out = replay_nc(&inst, law, &nc_log, &pool).expect("NC-PAR replay");
        let nc_report = audit_fleet(&inst, law, &nc_out, config);
        suite.bench_report_mode_metrics_with(
            &format!("fleet_nc_par/c_alpha2x{k}"),
            Some(&nc_report),
            AuditMode::Incremental,
            vec![
                ("frac_objective".into(), nc_out.objective.fractional()),
                ("jobs".into(), n as f64),
                (
                    "degradation_vs_c_par".into(),
                    nc_out.objective.fractional() / c_out.objective.fractional(),
                ),
                ("k_pow_bound".into(), (k as f64).powf(1.0 - 1.0 / alpha)),
                ("work_items".into(), n as f64),
            ],
            warmup,
            iters,
            || {
                black_box(replay_nc(&inst, law, &nc_log, &pool).expect("NC-PAR replay"));
            },
        );
    }

    // ------------------------------------------------------------------
    // Family 2: the Ω(k^{1−1/α}) dispatch game, ratio vs bound per k, the
    // adversarial instance replayed sharded and audit-gated.
    // ------------------------------------------------------------------
    for &alpha in &[2.0f64, 3.0] {
        let law = PowerLaw::new(alpha).expect("power law");
        let mut points = Vec::new();
        for &k in &[4usize, 8, 16, 32, 64] {
            // The serial game run supplies the measured ratio.
            let mut policy = RoundRobin::default();
            let game = immediate_dispatch_game(law, k, &mut policy, 1.0, 1e-4).expect("game");
            points.push((k, game.ratio));

            // Reconstruct the committed adversarial instance with a fresh
            // (deterministic) policy: probe batch -> assignment -> inflate
            // the k co-located jobs on the most-loaded machine — the same
            // three phases the game plays.
            let probe = lookalike_batch(k, &[], 1.0, 1.0).expect("probe batch");
            let mut policy = RoundRobin::default();
            let assignment = collect_assignment(&probe, k, &mut policy);
            let mut counts = vec![0usize; k];
            for &m in &assignment {
                counts[m] += 1;
            }
            let target =
                counts.iter().enumerate().max_by_key(|(_, &c)| c).expect("k >= 1").0;
            let high_ids: Vec<usize> =
                (0..k * k).filter(|&j| assignment[j] == target).take(k).collect();
            let inst = lookalike_batch(k, &high_ids, 1.0, 1e-4).expect("adversary batch");
            let log =
                DispatchLog::from_assignment(&inst, &assignment, k).expect("dispatch log");
            let out = replay_nc_assigned(&inst, law, &log, &pool).expect("sharded game replay");
            // The sharded replay must reproduce the serial game's cost to
            // the bit — the fleet contract, asserted inside the study.
            assert_eq!(
                out.objective.fractional().to_bits(),
                game.algorithm_cost.to_bits(),
                "sharded game replay diverged from serial at k={k}, alpha={alpha}"
            );
            let report = audit_fleet(&inst, law, &out, config);
            suite.bench_report_mode_metrics_with(
                &format!("dispatch_game/a{alpha}/k{k}"),
                Some(&report),
                AuditMode::Incremental,
                vec![
                    ("ratio".into(), game.ratio),
                    ("bound".into(), (k as f64).powf(1.0 - 1.0 / alpha)),
                    ("max_colocated".into(), game.max_colocated as f64),
                ],
                1,
                5,
                || {
                    black_box(
                        replay_nc_assigned(&inst, law, &log, &pool).expect("sharded game replay"),
                    );
                },
            );
        }
        // Summary row: measured log-log slope vs the theoretical exponent.
        let slope = fit_loglog_slope(&points);
        suite.bench_report_mode_metrics_with(
            &format!("dispatch_slope/a{alpha}"),
            None,
            AuditMode::Incremental,
            vec![
                ("slope".into(), slope),
                ("exponent".into(), 1.0 - 1.0 / alpha),
            ],
            1,
            3,
            || {
                black_box(fit_loglog_slope(&points));
            },
        );
    }

    suite.finish();
}
