//! The Section 4.1 amortised-charging instrument.
//!
//! The extended abstract sketches the potential-function argument behind
//! Lemma 10: one **bin per ordered pair of density levels** `(k, k')` with
//! `k > k'`. While Algorithm NC processes a job of rounded density `β^k`, a
//! `2^{k'−k}` fraction of the clairvoyant flow-time increase is *stored*
//! into bin `(k, k')`; later, while a job of density `β^{k'}` is processed,
//! the analysis *withdraws* from `(k, k')` to pay for the long last
//! preemption interval — and the withdrawals stay covered because with
//! `β > 4` a `2^{k'−k}` weight fraction corresponds to a `(β/2)^{k−k'} >
//! 2^{k−k'}` volume factor, making the stored job's processing time
//! negligible.
//!
//! [`PotentialBins`] is the bookkeeping data structure (deposits,
//! withdrawals, non-negativity accounting), and [`charging_report`] replays
//! a finished non-uniform NC run through it, reporting the deposit/withdraw
//! flows per level pair. It is a *diagnostic* of the mechanism — the exact
//! constants live in the unpublished full version — but it makes the bin
//! flows observable and lets the β-ablation show how the coverage margin
//! grows with the rounding base.

use crate::nc_nonuniform::NonUniformRun;
use ncss_sim::{Instance, SimError, SimResult};
use std::collections::BTreeMap;

/// Bookkeeping for the `(k, k')` potential bins.
#[derive(Debug, Clone, Default)]
pub struct PotentialBins {
    bins: BTreeMap<(i32, i32), f64>,
    total_deposited: f64,
    total_withdrawn: f64,
    /// Amount that withdrawals exceeded the stored potential (0 when the
    /// charging argument is fully covered).
    pub uncovered: f64,
}

impl PotentialBins {
    /// New empty bins.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Store `amount` into bin `(k, k')`; requires `k > k'`.
    pub fn deposit(&mut self, k: i32, k_prime: i32, amount: f64) {
        debug_assert!(k > k_prime, "deposits flow from high to low density levels");
        debug_assert!(amount >= 0.0);
        *self.bins.entry((k, k_prime)).or_insert(0.0) += amount;
        self.total_deposited += amount;
    }

    /// Withdraw up to `amount` from bin `(k, k')`; returns the amount
    /// actually available. Shortfalls accumulate in [`Self::uncovered`].
    pub fn withdraw(&mut self, k: i32, k_prime: i32, amount: f64) -> f64 {
        debug_assert!(amount >= 0.0);
        let bin = self.bins.entry((k, k_prime)).or_insert(0.0);
        let paid = amount.min(*bin);
        *bin -= paid;
        self.total_withdrawn += paid;
        self.uncovered += amount - paid;
        paid
    }

    /// Current balance of a bin.
    #[must_use]
    pub fn balance(&self, k: i32, k_prime: i32) -> f64 {
        self.bins.get(&(k, k_prime)).copied().unwrap_or(0.0)
    }

    /// Total ever deposited.
    #[must_use]
    pub fn total_deposited(&self) -> f64 {
        self.total_deposited
    }

    /// Total successfully withdrawn.
    #[must_use]
    pub fn total_withdrawn(&self) -> f64 {
        self.total_withdrawn
    }

    /// All bins with their balances, ordered by `(k, k')`.
    #[must_use]
    pub fn balances(&self) -> Vec<((i32, i32), f64)> {
        self.bins.iter().map(|(&k, &v)| (k, v)).collect()
    }
}

/// Outcome of replaying a run through the charging scheme.
#[derive(Debug, Clone)]
pub struct ChargingReport {
    /// Final bin state.
    pub bins: PotentialBins,
    /// Density levels (exponents of β) present in the instance.
    pub levels: Vec<i32>,
    /// Fraction of withdrawal demand that was covered by stored potential.
    pub coverage: f64,
}

/// Replay a non-uniform NC run through the Section 4.1 bins.
///
/// Deposits: while serving a level-`k` job, each lower level `k'` receives
/// a `2^{k'−k}` fraction of the serving segment's weighted service effort
/// (`ρ̃ · dv · t_service`, the "change in processing time times weight"
/// proxy the sketch describes). Withdrawals: while serving a level-`k'`
/// job, each higher level `k` is charged the same functional form. The
/// interesting output is [`ChargingReport::coverage`].
pub fn charging_report(
    instance: &Instance,
    run: &NonUniformRun,
    rounding_base: f64,
) -> SimResult<ChargingReport> {
    if !(rounding_base > 1.0) {
        return Err(SimError::InvalidInstance { reason: "rounding base must be > 1" });
    }
    let rounded = instance.with_rounded_densities(rounding_base)?;
    let level_of = |j: usize| -> i32 {
        (rounded.job(j).density.ln() / rounding_base.ln()).round() as i32
    };
    let mut levels: Vec<i32> = (0..instance.len()).map(&level_of).collect();
    levels.sort_unstable();
    levels.dedup();

    let pl = run.schedule.power_law();
    let mut bins = PotentialBins::new();
    let mut demand = 0.0;
    for seg in run.schedule.segments() {
        let Some(j) = seg.job else { continue };
        let k = level_of(j);
        let effort = rounded.job(j).density * seg.volume(pl) * seg.duration();
        for &k2 in &levels {
            if k2 < k {
                // Store for the lower levels we may later preempt.
                bins.deposit(k, k2, effort * 2f64.powi(k2 - k));
            } else if k2 > k {
                // Pay for having been preempted by the higher level.
                let want = effort * 2f64.powi(k - k2);
                demand += want;
                bins.withdraw(k2, k, want);
            }
        }
    }
    let coverage = if demand > 0.0 { bins.total_withdrawn() / demand } else { 1.0 };
    Ok(ChargingReport { bins, levels, coverage })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nc_nonuniform::{run_nc_nonuniform, NonUniformParams};
    use ncss_sim::{Job, PowerLaw};

    #[test]
    fn bins_account_exactly() {
        let mut b = PotentialBins::new();
        b.deposit(2, 0, 1.0);
        b.deposit(2, 0, 0.5);
        assert_eq!(b.balance(2, 0), 1.5);
        let paid = b.withdraw(2, 0, 1.0);
        assert_eq!(paid, 1.0);
        assert_eq!(b.balance(2, 0), 0.5);
        // Over-withdrawal is clipped and recorded.
        let paid = b.withdraw(2, 0, 2.0);
        assert_eq!(paid, 0.5);
        assert_eq!(b.balance(2, 0), 0.0);
        assert!((b.uncovered - 1.5).abs() < 1e-12);
        assert_eq!(b.total_deposited(), 1.5);
        assert_eq!(b.total_withdrawn(), 1.5);
    }

    #[test]
    fn empty_bin_withdrawal_is_uncovered() {
        let mut b = PotentialBins::new();
        assert_eq!(b.withdraw(3, 1, 1.0), 0.0);
        assert_eq!(b.uncovered, 1.0);
    }

    fn ladder_instance() -> Instance {
        Instance::new(vec![
            Job::new(0.0, 1.0, 1.0),
            Job::new(0.2, 0.3, 5.0),
            Job::new(0.4, 0.15, 25.0),
            Job::new(0.9, 0.8, 1.0),
        ])
        .unwrap()
    }

    #[test]
    fn charging_replay_produces_flows() {
        let alpha = 3.0;
        let law = PowerLaw::new(alpha).unwrap();
        let params = NonUniformParams { steps_per_job: 150, ..NonUniformParams::recommended(alpha) };
        let run = run_nc_nonuniform(&ladder_instance(), law, params).unwrap();
        let report = charging_report(&ladder_instance(), &run, params.rounding_base).unwrap();
        assert_eq!(report.levels, vec![0, 1, 2]);
        assert!(report.bins.total_deposited() > 0.0);
        assert!(report.coverage >= 0.0 && report.coverage <= 1.0 + 1e-12);
    }

    #[test]
    fn larger_beta_improves_coverage_margin() {
        // The paper picks beta > 4 so that stored potential dominates the
        // demand; the margin (deposited / demanded) must not shrink when
        // beta grows on the same workload shape.
        let alpha = 3.0;
        let law = PowerLaw::new(alpha).unwrap();
        let margin_for = |beta: f64| {
            let params = NonUniformParams {
                rounding_base: beta,
                steps_per_job: 150,
                ..NonUniformParams::recommended(alpha)
            };
            let run = run_nc_nonuniform(&ladder_instance(), law, params).unwrap();
            let report = charging_report(&ladder_instance(), &run, beta).unwrap();
            report.coverage
        };
        let c2 = margin_for(2.0);
        let c5 = margin_for(5.0);
        assert!(c5 >= c2 * 0.8, "coverage at beta=5 ({c5}) vs beta=2 ({c2})");
    }

    #[test]
    fn rejects_bad_base() {
        let law = PowerLaw::new(2.0).unwrap();
        let run = run_nc_nonuniform(&ladder_instance(), law, NonUniformParams::default()).unwrap();
        assert!(charging_report(&ladder_instance(), &run, 1.0).is_err());
    }
}
