//! Algorithms C and NC under **general** power functions.
//!
//! The paper remarks (Section 3.1) that Lemma 6 — and with it Lemma 3's
//! energy equality — "are actually true for all power functions, not just
//! ones of the form `s^α`", while Lemma 4's exact flow-time ratio *needs*
//! the power-law form. These runs make that split observable: they execute
//! the same event logic as [`crate::clairvoyant`] / [`crate::nc_uniform`]
//! but over [`ncss_sim::generic::PolyPower`] kernels (quadrature instead of
//! closed forms), and the tests confirm that the energy equality and the
//! measure-preserving profile survive a `s³ + ½s²` power function while the
//! flow-time ratio stops being weight-invariant.

use crate::clairvoyant::ActiveKey;
use ncss_sim::generic::{GenericDecay, GenericGrowth, PolyPower};
use ncss_sim::{Instance, Objective, SimError, SimResult};

/// One maximal service stint of a generic run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenericStint {
    /// Absolute start time.
    pub start: f64,
    /// Absolute end time.
    pub end: f64,
    /// Job in service.
    pub job: usize,
    /// Density of the job in service.
    pub rho: f64,
    /// Power level at the start (total remaining weight for C; base +
    /// processed weight for NC).
    pub level_start: f64,
    /// Power level at the end.
    pub level_end: f64,
    /// Whether the power level decays (Algorithm C) or grows (NC).
    pub decaying: bool,
}

/// Outcome of a generic-power-function run.
#[derive(Debug, Clone)]
pub struct GenericRun {
    /// Aggregate objective.
    pub objective: Objective,
    /// Completion times per job.
    pub completion: Vec<f64>,
    /// The service stints in time order.
    pub stints: Vec<GenericStint>,
}

impl GenericRun {
    /// Makespan.
    #[must_use]
    pub fn makespan(&self) -> f64 {
        self.stints.last().map_or(0.0, |s| s.end)
    }

    /// Total time spent at speed at least `x` (the Lemma 6 level-set
    /// measure), computed per stint from the generic kernels.
    #[must_use]
    pub fn time_with_speed_at_least(&self, pf: &PolyPower, x: f64) -> f64 {
        self.stints
            .iter()
            .map(|s| {
                if s.decaying {
                    GenericDecay { pf, w0: s.level_start, rho: s.rho }
                        .time_with_speed_at_least(x, s.level_end)
                } else {
                    GenericGrowth { pf, u0: s.level_start, rho: s.rho }
                        .time_with_speed_at_least(x, s.level_end)
                }
            })
            .sum()
    }

    /// Largest speed attained.
    #[must_use]
    pub fn max_speed(&self, pf: &PolyPower) -> f64 {
        self.stints
            .iter()
            .map(|s| pf.speed_for_power(s.level_start.max(s.level_end)))
            .fold(0.0, f64::max)
    }
}

/// Maximum discrepancy of the two runs' level-set measures over `n` speed
/// levels — the generic analogue of
/// [`ncss_sim::profile::rearrangement_distance`].
#[must_use]
pub fn generic_rearrangement_distance(pf: &PolyPower, a: &GenericRun, b: &GenericRun, n: usize) -> f64 {
    let max = a.max_speed(pf).max(b.max_speed(pf)).max(f64::MIN_POSITIVE);
    let mut worst: f64 = 0.0;
    for i in 1..=n {
        let x = max * i as f64 / n as f64;
        worst = worst.max((a.time_with_speed_at_least(pf, x) - b.time_with_speed_at_least(pf, x)).abs());
    }
    worst
}

/// Run Algorithm C under a general power function.
pub fn run_c_generic(instance: &Instance, pf: &PolyPower) -> SimResult<GenericRun> {
    let jobs = instance.jobs();
    let n = jobs.len();
    let mut remaining: Vec<f64> = jobs.iter().map(|j| j.volume).collect();
    let mut completion = vec![f64::NAN; n];
    let mut frac_flow = vec![0.0; n];
    let mut energy = 0.0;
    let mut stints = Vec::new();

    let mut heap = std::collections::BinaryHeap::new();
    let mut next = 0usize;
    let mut total_w = 0.0;
    let mut t = jobs.first().map_or(0.0, |j| j.release);

    let admit = |t: f64,
                 next: &mut usize,
                 heap: &mut std::collections::BinaryHeap<ActiveKey>,
                 total_w: &mut f64| {
        while *next < n && jobs[*next].release <= t {
            let j = &jobs[*next];
            heap.push(ActiveKey { density: j.density, release: j.release, id: *next });
            *total_w += j.weight();
            *next += 1;
        }
    };
    admit(t, &mut next, &mut heap, &mut total_w);

    let mut guard = 0usize;
    while !heap.is_empty() || next < n {
        guard += 1;
        if guard > 10 * n + 16 {
            return Err(SimError::NonConvergence { what: "generic C event loop" });
        }
        if heap.is_empty() {
            t = jobs[next].release;
            admit(t, &mut next, &mut heap, &mut total_w);
            continue;
        }
        let top = *heap.peek().expect("non-empty heap");
        let j = top.id;
        let rho = jobs[j].density;
        let kernel = GenericDecay { pf, w0: total_w, rho };
        let w_complete = total_w - rho * remaining[j];
        let t_complete = t + kernel.time_to_weight(w_complete);
        let t_release = if next < n { jobs[next].release } else { f64::INFINITY };
        let completes = t_complete <= t_release;
        let t_end = if completes { t_complete } else { t_release };
        let tau = t_end - t;
        let w_end = if completes { w_complete } else { kernel.weight_at(tau) };

        if tau > 0.0 {
            stints.push(GenericStint {
                start: t,
                end: t_end,
                job: j,
                rho,
                level_start: total_w,
                level_end: w_end,
                decaying: true,
            });
            energy += kernel.energy_to_weight(w_end);
            for key in heap.iter() {
                if key.id != j {
                    frac_flow[key.id] += jobs[key.id].density * remaining[key.id] * tau;
                }
            }
            frac_flow[j] += rho * (remaining[j] * tau - kernel.volume_integral_to_weight(w_end));
            remaining[j] = (remaining[j] - (total_w - w_end) / rho).max(0.0);
        }
        t = t_end;
        if completes {
            heap.pop();
            remaining[j] = 0.0;
            completion[j] = t;
        }
        total_w = heap.iter().map(|k| jobs[k.id].density * remaining[k.id]).sum();
        admit(t, &mut next, &mut heap, &mut total_w);
    }

    let int_flow: f64 = jobs
        .iter()
        .enumerate()
        .map(|(j, job)| job.weight() * (completion[j] - job.release))
        .sum();
    Ok(GenericRun {
        objective: Objective { energy, frac_flow: frac_flow.iter().sum(), int_flow },
        completion,
        stints,
    })
}

/// Left limit of the remaining weight of a generic C run at time `t`,
/// resolved by inverting the stint the instant falls into.
fn generic_remaining_weight_before(pf: &PolyPower, run: &GenericRun, t: f64) -> f64 {
    for s in &run.stints {
        if s.start < t && t <= s.end {
            let kernel = GenericDecay { pf, w0: s.level_start, rho: s.rho };
            return kernel.weight_at(t - s.start);
        }
    }
    0.0
}

/// Run Algorithm NC (uniform density) under a general power function.
pub fn run_nc_uniform_generic(instance: &Instance, pf: &PolyPower) -> SimResult<GenericRun> {
    if !instance.is_uniform_density() {
        return Err(SimError::NonUniformDensity);
    }
    let jobs = instance.jobs();
    let n = jobs.len();
    let mut completion = vec![f64::NAN; n];
    let mut frac_flow = vec![0.0; n];
    let mut energy = 0.0;
    let mut stints = Vec::new();
    let mut t = 0.0f64;

    for (j, job) in jobs.iter().enumerate() {
        t = t.max(job.release);
        // K_j with the same distinct-release-limit tie rule as the
        // specialised implementation.
        let (prefix, _) = instance.prefix_before(job.release);
        let strictly_before = if prefix.is_empty() {
            0.0
        } else {
            let run = run_c_generic(&prefix, pf)?;
            generic_remaining_weight_before(pf, &run, job.release)
        };
        let ties: f64 = jobs[..j]
            .iter()
            .filter(|i| i.release == job.release)
            .map(|i| i.weight())
            .sum();
        let k_j = strictly_before + ties;

        let rho = job.density;
        let kernel = GenericGrowth { pf, u0: k_j, rho };
        let u_end = k_j + job.weight();
        let tau = kernel.time_to_u(u_end);
        stints.push(GenericStint {
            start: t,
            end: t + tau,
            job: j,
            rho,
            level_start: k_j,
            level_end: u_end,
            decaying: false,
        });
        energy += kernel.energy_to_u(u_end);
        frac_flow[j] = rho * job.volume * (t - job.release)
            + rho * (job.volume * tau - kernel.volume_integral_to_u(u_end));
        t += tau;
        completion[j] = t;
    }

    let int_flow: f64 = jobs
        .iter()
        .enumerate()
        .map(|(j, job)| job.weight() * (completion[j] - job.release))
        .sum();
    Ok(GenericRun {
        objective: Objective { energy, frac_flow: frac_flow.iter().sum(), int_flow },
        completion,
        stints,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_c, run_nc_uniform};
    use ncss_sim::numeric::{approx_eq, rel_diff};
    use ncss_sim::{Job, PowerLaw};

    fn mixed() -> PolyPower {
        PolyPower::new(vec![(1.0, 3.0), (0.5, 2.0)]).unwrap()
    }

    fn instances() -> Vec<Instance> {
        vec![
            Instance::new(vec![Job::unit_density(0.0, 1.5)]).unwrap(),
            Instance::new(vec![
                Job::unit_density(0.0, 1.0),
                Job::unit_density(0.2, 0.8),
                Job::unit_density(0.9, 0.4),
            ])
            .unwrap(),
            Instance::new(vec![
                Job::unit_density(0.0, 0.5),
                Job::unit_density(0.0, 1.2),
            ])
            .unwrap(),
        ]
    }

    #[test]
    fn generic_c_matches_specialised_for_pure_power_law() {
        let law = PowerLaw::cube();
        let pf = PolyPower::from_power_law(law);
        for inst in instances() {
            let exact = run_c(&inst, law).unwrap();
            let gen = run_c_generic(&inst, &pf).unwrap();
            assert!(rel_diff(gen.objective.energy, exact.objective.energy) < 1e-6);
            assert!(rel_diff(gen.objective.frac_flow, exact.objective.frac_flow) < 1e-6);
            for j in 0..inst.len() {
                assert!(approx_eq(gen.completion[j], exact.per_job.completion[j], 1e-6));
            }
        }
    }

    #[test]
    fn generic_nc_matches_specialised_for_pure_power_law() {
        let law = PowerLaw::new(2.0).unwrap();
        let pf = PolyPower::from_power_law(law);
        for inst in instances() {
            let exact = run_nc_uniform(&inst, law).unwrap();
            let gen = run_nc_uniform_generic(&inst, &pf).unwrap();
            assert!(rel_diff(gen.objective.energy, exact.objective.energy) < 1e-6);
            assert!(rel_diff(gen.objective.frac_flow, exact.objective.frac_flow) < 1e-6);
        }
    }

    #[test]
    fn lemma3_energy_equality_for_general_p() {
        // The paper's claim: energy equality holds for ALL power functions.
        let pf = mixed();
        for inst in instances() {
            let c = run_c_generic(&inst, &pf).unwrap();
            let nc = run_nc_uniform_generic(&inst, &pf).unwrap();
            assert!(
                rel_diff(c.objective.energy, nc.objective.energy) < 1e-5,
                "C {} vs NC {}",
                c.objective.energy,
                nc.objective.energy
            );
        }
    }

    #[test]
    fn lemma6_rearrangement_for_general_p() {
        let pf = mixed();
        for inst in instances() {
            let c = run_c_generic(&inst, &pf).unwrap();
            let nc = run_nc_uniform_generic(&inst, &pf).unwrap();
            let d = generic_rearrangement_distance(&pf, &c, &nc, 64);
            assert!(d < 1e-4 * (1.0 + nc.makespan()), "distance {d}");
        }
    }

    #[test]
    fn lemma4_ratio_needs_the_power_law_form() {
        // For P = s^alpha the single-job flow ratio NC/C is 1/(1-1/alpha)
        // independent of the weight; for a mixed P it must drift with the
        // weight — exactly why the paper's flow-time comparison needs s^alpha.
        let pf = mixed();
        let ratio_for = |v: f64| {
            let inst = Instance::new(vec![Job::unit_density(0.0, v)]).unwrap();
            let c = run_c_generic(&inst, &pf).unwrap();
            let nc = run_nc_uniform_generic(&inst, &pf).unwrap();
            nc.objective.frac_flow / c.objective.frac_flow
        };
        let r_small = ratio_for(0.2);
        let r_large = ratio_for(20.0);
        assert!(
            (r_small - r_large).abs() > 1e-3,
            "ratio unexpectedly weight-invariant: {r_small} vs {r_large}"
        );
    }

    #[test]
    fn rejects_non_uniform_density() {
        let pf = mixed();
        let inst = Instance::new(vec![Job::new(0.0, 1.0, 1.0), Job::new(0.1, 1.0, 2.0)]).unwrap();
        assert!(run_nc_uniform_generic(&inst, &pf).is_err());
    }
}
