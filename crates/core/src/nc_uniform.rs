//! Algorithm NC for uniform densities (Section 3) — the paper's first main
//! contribution.
//!
//! Jobs are processed **FIFO** (earliest release first; the information-
//! gathering order), and while job `j` is in service the speed satisfies
//! `P(s(t)) = W^{(C)}(r_j^-) + W̆_j(t)`: the remaining weight Algorithm C
//! would have just before `j`'s release (on the already-known prefix of the
//! instance) plus the weight of `j` processed so far. The power curve is the
//! clairvoyant curve run in reverse (Figure 1b), which is what makes the
//! energies of NC and C *equal* (Lemma 3) and their fractional flow-times
//! differ by exactly `1/(1 − 1/α)` (Lemma 4).
//!
//! Non-clairvoyance: the speed rule only consults (i) volumes of jobs
//! released strictly before `r_j` — all complete by the time `j` starts,
//! because FIFO — and (ii) the volume of `j` processed so far. The true
//! volume of `j` enters only through the *termination* of the growth
//! segment, which is exactly the adversary saying "the job just ended".

use crate::clairvoyant::run_c;
use crate::streaming::{NcStream, StreamConfig};
use ncss_sim::{Instance, Job, Objective, PerJob, PowerLaw, Schedule, ScheduleBuilder, SimError, SimResult};

/// A completed run of Algorithm NC.
#[derive(Debug, Clone)]
pub struct NcRun {
    /// The machine schedule (growth-law segments).
    pub schedule: Schedule,
    /// Aggregate objective, accounted exactly.
    pub objective: Objective,
    /// Per-job completions and flow-times.
    pub per_job: PerJob,
    /// `K_j = W^{(C)}(r_j^-)` — the base power level used for each job.
    pub base_powers: Vec<f64>,
}

impl NcRun {
    /// Makespan of the run.
    #[must_use]
    pub fn makespan(&self) -> f64 {
        self.schedule.end_time()
    }
}

/// `K_j = W^{(C)}(r_j^-)`: the remaining weight Algorithm C would have just
/// before job `j`'s release, over the jobs that precede `j` in FIFO order.
///
/// The paper assumes w.l.o.g. distinct release times; simultaneous releases
/// are handled as the limit of vanishing gaps, in which a job released "at
/// the same instant but earlier in FIFO order" contributes its **full**
/// weight (Algorithm C has had no time to process it). Concretely:
/// simulate C on the strictly-earlier jobs and take the left limit at
/// `r_j`, then add the whole weight of earlier-indexed jobs tied at `r_j`.
/// Without the tie term, NC would restart its power curve from zero on
/// every job of a simultaneous batch and the Lemma 3 energy equality would
/// fail in the batch limit.
pub fn base_power(instance: &Instance, law: PowerLaw, j: usize) -> SimResult<f64> {
    let job = instance.job(j);
    let (prefix, _) = instance.prefix_before(job.release);
    let strictly_before = if prefix.is_empty() {
        0.0
    } else {
        run_c(&prefix, law)?.remaining_weight_before(job.release)
    };
    let ties: f64 = instance.jobs()[..j]
        .iter()
        .filter(|i| i.release == job.release)
        .map(|i| i.weight())
        .sum();
    Ok(strictly_before + ties)
}

/// [`base_power`] over an explicit machine history: `K = W^{(C)}(r^-)` for
/// a job released at `release` arriving at a machine whose previously
/// assigned jobs are `history`, **in release order with releases ≤
/// `release`** (the parallel-machine FIFO invariant).
///
/// Semantically identical to appending the job to the history and calling
/// [`base_power`] on the resulting instance, but the parallel runners call
/// this once per dispatch, so it copies only the strictly-earlier prefix
/// instead of cloning, re-sorting, and re-validating the whole history
/// twice per call.
pub fn base_power_over_history(history: &[Job], release: f64, law: PowerLaw) -> SimResult<f64> {
    let cut = history.partition_point(|i| i.release < release);
    let strictly_before = if cut == 0 {
        0.0
    } else {
        run_c(&Instance::new(history[..cut].to_vec())?, law)?.remaining_weight_before(release)
    };
    let ties: f64 =
        history[cut..].iter().filter(|i| i.release == release).map(Job::weight).sum();
    Ok(strictly_before + ties)
}

/// Run Algorithm NC on a uniform-density instance.
///
/// Returns [`SimError::NonUniformDensity`] when densities differ; use
/// [`crate::nc_nonuniform`] for the general case.
///
/// # Examples
///
/// ```
/// use ncss_core::{run_c, run_nc_uniform};
/// use ncss_sim::{Instance, Job, PowerLaw};
///
/// let inst = Instance::new(vec![
///     Job::unit_density(0.0, 1.0),
///     Job::unit_density(0.5, 2.0),
/// ]).unwrap();
/// let law = PowerLaw::cube();
/// let c = run_c(&inst, law).unwrap();
/// let nc = run_nc_uniform(&inst, law).unwrap();
/// // Lemma 3 and Lemma 4, live:
/// assert!((nc.objective.energy - c.objective.energy).abs() < 1e-9);
/// assert!((nc.objective.frac_flow / c.objective.frac_flow - 1.5).abs() < 1e-9);
/// ```
pub fn run_nc_uniform(instance: &Instance, law: PowerLaw) -> SimResult<NcRun> {
    if !instance.is_uniform_density() {
        return Err(SimError::NonUniformDensity);
    }
    let n = instance.len();
    let mut completion = vec![f64::NAN; n];
    let mut frac_flow = vec![0.0; n];
    let mut int_flow = vec![0.0; n];
    let mut base_powers = vec![0.0; n];

    // Delegate to the streaming core (DESIGN.md §9): the embedded shadow C
    // run replaces the former per-job prefix re-simulation of base_power,
    // turning the O(n²) loop into a single O(n log n) pass.
    let mut stream = NcStream::new(law, StreamConfig::batch());
    let mut sink = |c: crate::streaming::NcCompletion| {
        completion[c.id] = c.completion;
        frac_flow[c.id] = c.frac_flow;
        int_flow[c.id] = c.int_flow;
        base_powers[c.id] = c.base_power;
    };
    for &job in instance.jobs() {
        stream.offer(job, &mut sink)?;
    }
    let summary = stream.finish()?;

    let mut builder = ScheduleBuilder::new(law);
    for seg in stream.spill_mut().drain() {
        builder.push(seg);
    }
    Ok(NcRun {
        schedule: builder.build()?,
        objective: summary.objective,
        per_job: PerJob { completion, frac_flow, int_flow },
        base_powers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::theory;
    use ncss_sim::numeric::approx_eq;
    use ncss_sim::profile::rearrangement_distance;
    use ncss_sim::Job;

    fn pl(alpha: f64) -> PowerLaw {
        PowerLaw::new(alpha).unwrap()
    }

    fn sample_instances() -> Vec<Instance> {
        vec![
            // Single job.
            Instance::new(vec![Job::unit_density(0.0, 2.0)]).unwrap(),
            // Back-to-back queueing.
            Instance::new(vec![
                Job::unit_density(0.0, 1.0),
                Job::unit_density(0.3, 2.0),
                Job::unit_density(0.4, 0.5),
            ])
            .unwrap(),
            // Idle gap between bursts.
            Instance::new(vec![
                Job::unit_density(0.0, 0.2),
                Job::unit_density(10.0, 1.0),
                Job::unit_density(10.1, 1.5),
            ])
            .unwrap(),
            // Non-unit uniform density.
            Instance::new(vec![
                Job::new(0.0, 1.0, 2.5),
                Job::new(0.5, 0.7, 2.5),
                Job::new(0.9, 1.3, 2.5),
            ])
            .unwrap(),
            // Simultaneous batch (ties resolved as the distinct-release limit).
            Instance::new(vec![
                Job::unit_density(0.0, 1.0),
                Job::unit_density(0.0, 2.0),
                Job::unit_density(0.0, 0.5),
            ])
            .unwrap(),
        ]
    }

    #[test]
    fn rejects_non_uniform() {
        let inst = Instance::new(vec![Job::new(0.0, 1.0, 1.0), Job::new(0.1, 1.0, 2.0)]).unwrap();
        assert!(matches!(run_nc_uniform(&inst, pl(2.0)), Err(SimError::NonUniformDensity)));
    }

    #[test]
    fn lemma3_energy_equality() {
        for alpha in [1.5, 2.0, 3.0] {
            for inst in sample_instances() {
                let c = run_c(&inst, pl(alpha)).unwrap();
                let nc = run_nc_uniform(&inst, pl(alpha)).unwrap();
                assert!(
                    approx_eq(nc.objective.energy, c.objective.energy, 1e-8),
                    "alpha={alpha}: NC {} vs C {}",
                    nc.objective.energy,
                    c.objective.energy
                );
            }
        }
    }

    #[test]
    fn lemma4_flow_ratio_exact() {
        for alpha in [1.5, 2.0, 3.0] {
            let ratio = theory::nc_over_c_flow_ratio(alpha);
            for inst in sample_instances() {
                let c = run_c(&inst, pl(alpha)).unwrap();
                let nc = run_nc_uniform(&inst, pl(alpha)).unwrap();
                assert!(
                    approx_eq(nc.objective.frac_flow, c.objective.frac_flow * ratio, 1e-8),
                    "alpha={alpha}: NC {} vs C {} * {ratio}",
                    nc.objective.frac_flow,
                    c.objective.frac_flow
                );
            }
        }
    }

    #[test]
    fn lemma6_speed_profiles_are_rearrangements() {
        for inst in sample_instances() {
            let c = run_c(&inst, pl(3.0)).unwrap();
            let nc = run_nc_uniform(&inst, pl(3.0)).unwrap();
            let d = rearrangement_distance(&c.schedule, &nc.schedule, 512);
            // Distances are in time units; compare to the makespan scale.
            assert!(d < 1e-7 * (1.0 + nc.makespan()), "distance {d}");
        }
    }

    #[test]
    fn lemma8_integral_vs_fractional_flow() {
        for alpha in [1.5, 2.0, 3.0] {
            let bound = theory::nc_integral_over_fractional_flow_bound(alpha);
            for inst in sample_instances() {
                let nc = run_nc_uniform(&inst, pl(alpha)).unwrap();
                assert!(
                    nc.objective.int_flow <= bound * nc.objective.frac_flow * (1.0 + 1e-9),
                    "alpha={alpha}: {} vs {} * {bound}",
                    nc.objective.int_flow,
                    nc.objective.frac_flow
                );
            }
        }
    }

    #[test]
    fn single_job_flow_ratio_is_figure1() {
        // Figure 1: for one job, Flow(NC)/Energy(NC) = 1/(1-1/alpha) exactly,
        // independent of the weight.
        for alpha in [2.0, 3.0] {
            for w in [1.0, 4.0, 16.0] {
                let inst = Instance::new(vec![Job::unit_density(0.0, w)]).unwrap();
                let nc = run_nc_uniform(&inst, pl(alpha)).unwrap();
                let expect = theory::nc_over_c_flow_ratio(alpha);
                assert!(approx_eq(nc.objective.frac_flow / nc.objective.energy, expect, 1e-9));
            }
        }
    }

    #[test]
    fn matches_independent_evaluator() {
        for inst in sample_instances() {
            let nc = run_nc_uniform(&inst, pl(2.5)).unwrap();
            let ev = ncss_sim::evaluate(&nc.schedule, &inst).unwrap();
            assert!(approx_eq(ev.objective.energy, nc.objective.energy, 1e-7));
            assert!(approx_eq(ev.objective.frac_flow, nc.objective.frac_flow, 1e-7));
            assert!(approx_eq(ev.objective.int_flow, nc.objective.int_flow, 1e-7));
        }
    }

    #[test]
    fn fifo_order_and_no_preemption() {
        let inst = Instance::new(vec![
            Job::unit_density(0.0, 5.0),
            Job::unit_density(0.1, 0.01),
        ])
        .unwrap();
        let nc = run_nc_uniform(&inst, pl(2.0)).unwrap();
        // Despite job 1 being tiny, FIFO finishes job 0 first.
        assert!(nc.per_job.completion[0] < nc.per_job.completion[1]);
        // One growth segment per job.
        assert_eq!(nc.schedule.segments().len(), 2);
        assert_eq!(nc.schedule.segments()[0].job, Some(0));
    }

    #[test]
    fn base_power_matches_clairvoyant_prefix() {
        let inst = Instance::new(vec![Job::unit_density(0.0, 4.0), Job::unit_density(1.0, 1.0)]).unwrap();
        let nc = run_nc_uniform(&inst, pl(2.0)).unwrap();
        assert_eq!(nc.base_powers[0], 0.0);
        // From the clairvoyant test: W(1^-) = 2.25 for alpha = 2.
        assert!(approx_eq(nc.base_powers[1], 2.25, 1e-9));
    }

    #[test]
    fn batch_ties_accumulate_base_power() {
        // Three simultaneous unit-density jobs: K_0 = 0, K_1 = w_0,
        // K_2 = w_0 + w_1 (the distinct-release limit).
        let inst = Instance::new(vec![
            Job::unit_density(0.0, 1.0),
            Job::unit_density(0.0, 2.0),
            Job::unit_density(0.0, 0.5),
        ])
        .unwrap();
        let nc = run_nc_uniform(&inst, pl(2.0)).unwrap();
        assert_eq!(nc.base_powers[0], 0.0);
        assert!(approx_eq(nc.base_powers[1], 1.0, 1e-12));
        assert!(approx_eq(nc.base_powers[2], 3.0, 1e-12));
    }

    #[test]
    fn theorem5_cost_vs_twice_c() {
        // G_frac(NC) = E_C + F_C / (1-1/alpha) and C is 2-competitive, so
        // G_frac(NC) <= (1 + ratio)/2 * G_frac(C); check the identity.
        for alpha in [2.0, 3.0] {
            for inst in sample_instances() {
                let c = run_c(&inst, pl(alpha)).unwrap();
                let nc = run_nc_uniform(&inst, pl(alpha)).unwrap();
                let ratio = theory::nc_over_c_flow_ratio(alpha);
                let predicted = c.objective.energy + c.objective.frac_flow * ratio;
                assert!(approx_eq(nc.objective.fractional(), predicted, 1e-8));
            }
        }
    }
}
