//! Empirical measurement of the full-version invariants behind Lemma 10.
//!
//! The extended abstract states three properties of the non-uniform
//! algorithm whose proofs (and constants) are deferred to the full version:
//!
//! * **Property (A), Lemma 11** — for every active job `j`, Algorithm C on
//!   the current instance still has a `ζ` fraction of `j`'s current weight
//!   remaining at time `t`: `W_t^{(C)}(t)[j] ≥ ζ · W_t[j]`.
//! * **Property (B), Lemma 12** — over any window `[t₁, t]`, NC has
//!   processed at least a `γ` fraction of the volume C-on-`I(t)` processed:
//!   `V^{(NC)}(t₁, t) ≥ γ · V^{(C)}_t(t₁, t)`.
//! * **Lemma 13** — every active job's completion in C-on-`I(t)` lies far
//!   in the future: `c_t^{(C)}[j] − t ≥ ψ · (t − r[j])`.
//!
//! [`measure_properties`] replays a finished non-uniform run and reports
//! the worst observed ζ, γ, ψ over a time grid — the empirical constants
//! the full version proves positive for η above threshold. Below the
//! threshold ζ collapses to ~0 (the ε-crawl state), which the tests verify.

use crate::clairvoyant::run_c;
use crate::nc_nonuniform::NonUniformRun;
use ncss_sim::{Instance, Job, PowerLaw, SimError, SimResult};

/// Worst-case observed values of the three invariants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PropertyConstants {
    /// Worst `W_t^{(C)}(t)[j] / W_t[j]` over active jobs and sample times.
    pub zeta: f64,
    /// Worst `V^{(NC)}(t₁,t) / V^{(C)}_t(t₁,t)` over windows and times.
    pub gamma: f64,
    /// Worst `(c_t^{(C)}[j] − t) / (t − r[j])` over active jobs and times.
    pub psi: f64,
    /// Number of (time, job/window) observations that entered each minimum.
    pub observations: usize,
}

/// Measure ζ, γ, ψ on `samples` evenly spaced times of a finished run.
pub fn measure_properties(
    instance: &Instance,
    law: PowerLaw,
    rounding_base: f64,
    run: &NonUniformRun,
    samples: usize,
) -> SimResult<PropertyConstants> {
    if samples < 2 {
        return Err(SimError::InvalidInstance { reason: "need at least 2 samples" });
    }
    let rounded = instance.with_rounded_densities(rounding_base)?;
    let pl = run.schedule.power_law();
    let makespan = run.makespan();
    let n = instance.len();

    let processed_at = |t: f64| -> Vec<f64> {
        let mut v = vec![0.0; n];
        for seg in run.schedule.segments() {
            if seg.start >= t {
                break;
            }
            if let Some(j) = seg.job {
                v[j] += seg.volume_to(pl, t.min(seg.end));
            }
        }
        v
    };

    let mut zeta = f64::INFINITY;
    let mut gamma = f64::INFINITY;
    let mut psi = f64::INFINITY;
    let mut observations = 0usize;

    for i in 1..samples {
        let t = makespan * i as f64 / samples as f64;
        let processed = processed_at(t);
        // Current instance I(t) over rounded densities; remember the map
        // back to original ids.
        let mut jobs = Vec::new();
        let mut ids = Vec::new();
        for (j, &v) in processed.iter().enumerate() {
            if v > 0.0 {
                jobs.push(Job { release: rounded.job(j).release, volume: v, density: rounded.job(j).density });
                ids.push(j);
            }
        }
        if jobs.is_empty() {
            continue;
        }
        let cur = Instance::new(jobs)?;
        let crun = run_c(&cur, law)?;

        // Per-job processed volume in the C run up to time t.
        let mut c_done = vec![0.0; cur.len()];
        for seg in crun.schedule.segments() {
            if seg.start >= t {
                break;
            }
            if let Some(local) = seg.job {
                c_done[local] += seg.volume_to(law, t.min(seg.end));
            }
        }

        for (local, &orig) in ids.iter().enumerate() {
            // Active in NC at t?
            let active = instance.job(orig).release <= t
                && (run.per_job.completion[orig].is_nan() || run.per_job.completion[orig] > t);
            if !active {
                continue;
            }
            let w_cur = cur.job(local).weight();
            if w_cur <= 0.0 {
                continue;
            }
            let c_remaining = (cur.job(local).volume - c_done[local]).max(0.0) * cur.job(local).density;
            zeta = zeta.min(c_remaining / w_cur);
            let waited = t - instance.job(orig).release;
            if waited > 1e-9 {
                let c_completion = crun.per_job.completion[local];
                psi = psi.min((c_completion - t).max(0.0) / waited);
            }
            observations += 1;
        }

        // Property (B) over a window grid. Windows are confined to the NC
        // busy period containing t: across an idle gap NC has (by
        // definition) nothing to process while the slower C run may still
        // be working, so the unrestricted ratio degenerates to 0 without
        // contradicting the analysis (which charges within busy periods).
        let busy_start = {
            let mut start = t;
            for seg in run.schedule.segments().iter().rev() {
                if seg.start > t {
                    continue;
                }
                if seg.end < start - 1e-9 {
                    break; // an idle gap ends the busy period
                }
                start = seg.start;
            }
            start
        };
        for frac in [0.0, 0.25, 0.5, 0.75] {
            let t1 = busy_start + (t - busy_start) * frac;
            let nc_vol: f64 = processed.iter().sum::<f64>() - processed_at(t1).iter().sum::<f64>();
            let c_vol: f64 = {
                let at = |x: f64| -> f64 {
                    crun.schedule
                        .segments()
                        .iter()
                        .filter(|s| s.start < x)
                        .map(|s| s.volume_to(law, x.min(s.end)))
                        .sum()
                };
                at(t) - at(t1)
            };
            if c_vol > 1e-9 {
                gamma = gamma.min(nc_vol / c_vol);
                observations += 1;
            }
        }
    }

    Ok(PropertyConstants {
        zeta: if zeta.is_finite() { zeta } else { 0.0 },
        gamma: if gamma.is_finite() { gamma } else { 0.0 },
        psi: if psi.is_finite() { psi } else { 0.0 },
        observations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nc_nonuniform::{run_nc_nonuniform, NonUniformParams};

    fn mixed_instance() -> Instance {
        Instance::new(vec![
            Job::new(0.0, 1.0, 1.0),
            Job::new(0.2, 0.5, 6.0),
            Job::new(0.6, 0.8, 1.0),
            Job::new(1.0, 0.3, 30.0),
        ])
        .unwrap()
    }

    #[test]
    fn properties_positive_above_threshold() {
        let alpha = 3.0;
        let law = PowerLaw::new(alpha).unwrap();
        let params = NonUniformParams { steps_per_job: 200, ..NonUniformParams::recommended(alpha) };
        let run = run_nc_nonuniform(&mixed_instance(), law, params).unwrap();
        let p = measure_properties(&mixed_instance(), law, params.rounding_base, &run, 24).unwrap();
        assert!(p.observations > 10);
        // Property (A): a real fraction of every active job still waits in C.
        assert!(p.zeta > 0.05, "zeta {}", p.zeta);
        // Property (B): NC volume dominates a constant fraction of C's.
        assert!(p.gamma > 0.2, "gamma {}", p.gamma);
        // Lemma 13: completions in C are pushed into the future.
        assert!(p.psi > 0.05, "psi {}", p.psi);
    }

    #[test]
    fn zeta_collapses_below_threshold() {
        // With eta far below eta_min the current-instance C run finishes
        // before "now" — exactly zeta -> 0.
        let alpha = 3.0;
        let law = PowerLaw::new(alpha).unwrap();
        let params = NonUniformParams { eta: 1.0, steps_per_job: 150, ..NonUniformParams::default() };
        let single = Instance::new(vec![Job::new(0.0, 0.5, 1.0)]).unwrap();
        let run = run_nc_nonuniform(&single, law, params).unwrap();
        let p = measure_properties(&single, law, params.rounding_base, &run, 24).unwrap();
        assert!(p.zeta < 0.02, "zeta {}", p.zeta);
    }

    #[test]
    fn sample_count_validated() {
        let law = PowerLaw::new(2.0).unwrap();
        let run = run_nc_nonuniform(&mixed_instance(), law, NonUniformParams::default()).unwrap();
        assert!(measure_properties(&mixed_instance(), law, 5.0, &run, 1).is_err());
    }
}
