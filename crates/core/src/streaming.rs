//! Streaming, event-driven scheduler core — O(active jobs) resident memory.
//!
//! The paper's algorithms are naturally online: Algorithm C reacts only to
//! release and completion events, and Algorithm NC additionally never
//! preempts. The batch runners ([`crate::run_c`], [`crate::run_nc_uniform`])
//! are therefore thin wrappers over the state machines in this module —
//! same instance in, **bitwise-identical** objectives out, because batch
//! and stream literally execute the same arithmetic in the same order
//! (DESIGN.md §9 calls this the batch-vs-stream equivalence contract, and
//! `tests/differential_oracle.rs` enforces it).
//!
//! Resident state per stream:
//!
//! * a [`JobArena`] slot per **active** job (SoA slices, recycled on
//!   completion), over which the `W^{1−1/α}` decay kernels batch their
//!   per-event accounting;
//! * a binary heap of active-job keys (HDF order for C);
//! * O(1) running objective accumulators (energy, fractional and integral
//!   flow of completed jobs);
//! * a [`SpillRing`] of retired segments, drained by the consumer (batch
//!   collector, auditor) or capped and dropped-oldest for objective-only
//!   soak runs.
//!
//! Jobs enter through [`CStream::offer`] / [`NcStream::offer`] in
//! non-decreasing release order — the online arrival order — and
//! completions are pushed to a caller-supplied sink as the event loop
//! crosses them.

use crate::clairvoyant::ActiveKey;
use ncss_sim::arena::{ArenaSnapshot, JobArena};
use ncss_sim::kernel::{DecayKernel, GrowthKernel};
use ncss_sim::profile::{Phase, PhaseScope};
use ncss_sim::spill::{SpillRing, SpillSnapshot};
use ncss_sim::{Job, JobId, Objective, PowerLaw, Segment, SimError, SimResult, SpeedLaw};
use std::collections::BinaryHeap;

/// Initial capacity of the active-job heap. One stream exists per run (the
/// fleet layer replays dispatch logs rather than nesting streams), so a
/// generous pre-size trades a few KiB for an allocation-free steady state;
/// streams whose active set outgrows it just fall back to amortized
/// doubling.
const HEAP_PRESIZE: usize = 1024;

/// Exact total-weight resync cadence. `W(t)` is maintained incrementally
/// (one multiply per event) and re-derived from the per-job remainders over
/// the arena slices every this many events, bounding accumulation drift at
/// a few thousand rounding errors — far below the audit tolerances — while
/// removing the O(active) per-event recompute. The counter is part of the
/// stream snapshot, so a resumed run resyncs on the same events as an
/// uninterrupted one (bitwise-resume contract).
const WEIGHT_RESYNC_EVERY: u32 = 4096;

/// Cancellation guard for the incremental total weight: when one event
/// removes weight `delta` and leaves less than `delta * GUARD` behind, the
/// subtraction was catastrophic (the survivors' weights were absorbed into
/// the big value's rounding) and the total is re-derived exactly right
/// away. On homogeneous workloads this never fires; on mixed-magnitude
/// (fault-injection) workloads it bounds the relative error of the kept
/// total near `ulp / GUARD`. The trigger depends only on snapshotted values,
/// so resumed runs resync on the same events.
const WEIGHT_CANCEL_GUARD: f64 = 1e-3;

/// Configuration of a stream's segment-retention policy.
#[derive(Debug, Clone, Copy)]
pub struct StreamConfig {
    /// Retire closed segments into the spill ring (`false` for shadow runs
    /// that only need the weight trajectory, e.g. NC's embedded C run).
    pub keep_segments: bool,
    /// Resident cap of the spill ring; `None` means unbounded (the batch
    /// wrappers, which drain once at the end).
    pub spill_capacity: Option<usize>,
}

impl StreamConfig {
    /// Unbounded ring, segments kept — what [`crate::run_c`] and
    /// [`crate::run_nc_uniform`] use to reassemble a full [`ncss_sim::Schedule`].
    #[must_use]
    pub fn batch() -> Self {
        Self { keep_segments: true, spill_capacity: None }
    }

    /// Bounded ring of `capacity` segments, segments kept — the streaming
    /// mode; the consumer must drain between events or accept drops.
    #[must_use]
    pub fn streaming(capacity: usize) -> Self {
        Self { keep_segments: true, spill_capacity: Some(capacity) }
    }

    fn ring(&self) -> SpillRing {
        match self.spill_capacity {
            Some(cap) => SpillRing::with_capacity(cap),
            None => SpillRing::unbounded(),
        }
    }
}

impl Default for StreamConfig {
    fn default() -> Self {
        Self::batch()
    }
}

/// A completed job as emitted by [`CStream`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CCompletion {
    /// Arrival index of the job (0-based ingest order = [`JobId`] in the
    /// equivalent batch [`ncss_sim::Instance`]).
    pub id: JobId,
    /// The job as offered.
    pub job: Job,
    /// Completion time.
    pub completion: f64,
    /// Fractional flow-time accrued by this job.
    pub frac_flow: f64,
    /// Integral (weighted) flow-time `W · (completion − release)`.
    pub int_flow: f64,
}

/// A completed job as emitted by [`NcStream`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NcCompletion {
    /// Arrival index of the job.
    pub id: JobId,
    /// The job as offered.
    pub job: Job,
    /// Base power level `K_j = W^{(C)}(r_j^-)` used for this job.
    pub base_power: f64,
    /// Service start time (FIFO: after all earlier jobs complete).
    pub start: f64,
    /// Completion time.
    pub completion: f64,
    /// Fractional flow-time accrued by this job.
    pub frac_flow: f64,
    /// Integral (weighted) flow-time.
    pub int_flow: f64,
}

/// Final tally of a finished stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamSummary {
    /// Aggregate objective, accounted incrementally during the run.
    pub objective: Objective,
    /// Jobs completed (equals jobs offered once `finish` returns).
    pub completed: usize,
    /// Completion time of the last job (0 for an empty stream).
    pub makespan: f64,
}

/// Resident-memory counters of a stream — what the soak bench asserts its
/// flat-memory ceiling against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamStats {
    /// Jobs offered so far.
    pub ingested: usize,
    /// Jobs completed so far.
    pub completed: usize,
    /// Jobs currently active (released, not complete).
    pub active: usize,
    /// High-water mark of simultaneously active jobs.
    pub peak_active: usize,
    /// Arena slots ever created (= peak active, by slot recycling).
    pub arena_slots: usize,
    /// Segments currently resident in the spill ring.
    pub spill_resident: usize,
    /// High-water mark of resident spill segments.
    pub spill_peak_resident: usize,
    /// Segments dropped because the consumer fell behind the ring cap.
    pub spill_dropped: u64,
    /// Segments ever retired.
    pub spill_total: u64,
}

/// Heap key: [`ActiveKey`] ordering (highest density, earliest release,
/// smallest id) plus the arena slot the job lives in and the slot's
/// generation at push time. Neither the slot nor the generation
/// participates in the ordering.
///
/// The generation implements *lazy deletion*: retiring a slot bumps its
/// generation, so any key still in the heap for that slot goes stale and is
/// skipped (popped and discarded) when it surfaces, instead of requiring an
/// O(n) sift-out. The current C policy only ever completes the top job, so
/// stale keys cannot arise today — the machinery is what lets future
/// policies (cancellation, re-prioritisation in the algorithm zoo) reuse
/// this heap without restructuring it.
#[derive(Debug, Clone, Copy)]
struct StreamKey {
    key: ActiveKey,
    slot: usize,
    gen: u32,
}

impl PartialEq for StreamKey {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}

impl Eq for StreamKey {}

impl PartialOrd for StreamKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for StreamKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

/// Streaming Algorithm C: highest-density-first with `P(s(t)) = W(t)`,
/// driven by an ordered release stream.
///
/// This *is* the Algorithm C event loop — [`crate::run_c`] wraps it — with
/// the per-job `Vec`s replaced by an arena over active jobs only.
///
/// # Examples
///
/// ```
/// use ncss_core::streaming::{CStream, StreamConfig};
/// use ncss_sim::{Job, PowerLaw};
///
/// let mut stream = CStream::new(PowerLaw::new(2.0).unwrap(), StreamConfig::batch());
/// let mut done = Vec::new();
/// stream.offer(Job::unit_density(0.0, 4.0), &mut |c| done.push(c)).unwrap();
/// let summary = stream.finish(&mut |c| done.push(c)).unwrap();
/// // Lemma 2: a weight-4 job at alpha = 2 finishes at t = 4.
/// assert!((done[0].completion - 4.0).abs() < 1e-9);
/// assert_eq!(summary.completed, 1);
/// // Energy = fractional flow for Algorithm C.
/// assert!((summary.objective.energy - summary.objective.frac_flow).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct CStream {
    law: PowerLaw,
    arena: JobArena,
    heap: BinaryHeap<StreamKey>,
    /// Generation counter per arena slot, bumped on retire; heap keys
    /// carrying an older generation are stale and lazily deleted.
    slot_gen: Vec<u32>,
    spill: SpillRing,
    keep_segments: bool,
    t: f64,
    watermark: f64,
    total_w: f64,
    /// Events since the last exact `total_w` resync (see
    /// [`WEIGHT_RESYNC_EVERY`]).
    events_since_sync: u32,
    last_seg: Option<Segment>,
    ingested: usize,
    completed: usize,
    energy: f64,
    frac_done: f64,
    int_done: f64,
}

impl CStream {
    /// A fresh stream under power law `law`.
    #[must_use]
    pub fn new(law: PowerLaw, config: StreamConfig) -> Self {
        Self {
            law,
            arena: JobArena::new(),
            heap: BinaryHeap::with_capacity(HEAP_PRESIZE),
            slot_gen: Vec::new(),
            spill: config.ring(),
            keep_segments: config.keep_segments,
            t: 0.0,
            watermark: f64::NEG_INFINITY,
            total_w: 0.0,
            events_since_sync: 0,
            last_seg: None,
            ingested: 0,
            completed: 0,
            energy: 0.0,
            frac_done: 0.0,
            int_done: 0.0,
        }
    }

    /// Offer the next released job. Releases must be non-decreasing; the
    /// event loop first advances to `job.release` (emitting any completions
    /// crossed on the way), then admits the job. Returns the job's
    /// [`JobId`] (its arrival index).
    pub fn offer<F: FnMut(CCompletion)>(&mut self, job: Job, sink: &mut F) -> SimResult<JobId> {
        let id = self.ingested;
        job.validated(id)?;
        if job.release < self.watermark {
            return Err(SimError::InvalidInstance {
                reason: "streamed releases must be non-decreasing",
            });
        }
        self.watermark = job.release;
        self.advance_to(job.release, sink)?;
        let slot = {
            let _p = PhaseScope::enter(Phase::Dispatch);
            let slot = self.arena.alloc(job, id);
            if slot >= self.slot_gen.len() {
                self.slot_gen.resize(slot + 1, 0);
            }
            slot
        };
        {
            let _p = PhaseScope::enter(Phase::HeapOps);
            self.heap.push(StreamKey {
                key: ActiveKey { density: job.density, release: job.release, id },
                slot,
                gen: self.slot_gen[slot],
            });
        }
        self.total_w += job.weight();
        self.ingested += 1;
        Ok(id)
    }

    /// Advance the event loop to time `bound`, emitting completions crossed
    /// on the way. The caller promises no job is released before `bound`
    /// (this is what "ordered release stream" buys: the future is silent
    /// until the next offer).
    pub fn advance_to<F: FnMut(CCompletion)>(&mut self, bound: f64, sink: &mut F) -> SimResult<()> {
        self.drain_events(bound, false, sink)
    }

    /// Declare the release stream exhausted and run every remaining job to
    /// completion. Idempotent; the summary restates the accumulated
    /// objective (validated for finiteness).
    pub fn finish<F: FnMut(CCompletion)>(&mut self, sink: &mut F) -> SimResult<StreamSummary> {
        self.drain_events(f64::INFINITY, true, sink)?;
        let objective = self.objective_so_far().validated("run_c: objective")?;
        Ok(StreamSummary { objective, completed: self.completed, makespan: self.t })
    }

    /// The event loop. With `finishing` no further release bounds segments,
    /// so a non-finite completion time cannot make progress and is a
    /// numeric error (same contract as the batch loop had).
    ///
    /// Per service interval the loop makes exactly one fused
    /// [`DecayKernel::serve`] call (2 power-kernel evaluations when the top
    /// job completes, 3 when the interval is truncated at `bound`), touches
    /// only the in-service job's arena slot (waiting jobs settle their flow
    /// lazily via [`JobArena::settle_waiting`]), maintains `W(t)` with one
    /// multiply (exact resync every [`WEIGHT_RESYNC_EVERY`] events), and
    /// emits completions allocation-free: [`CCompletion`] is `Copy` and
    /// goes straight to the caller's sink.
    fn drain_events<F: FnMut(CCompletion)>(
        &mut self,
        bound: f64,
        finishing: bool,
        sink: &mut F,
    ) -> SimResult<()> {
        loop {
            // Lazily delete stale keys (slot generation moved on) before
            // reading the top. See [`StreamKey`]; never fires under the
            // current complete-at-top-only policy.
            while let Some(&k) = self.heap.peek() {
                if self.slot_gen[k.slot] == k.gen {
                    break;
                }
                let _p = PhaseScope::enter(Phase::HeapOps);
                self.heap.pop();
            }
            let Some(&top) = self.heap.peek() else {
                // Idle until the next release (gap segments stay implicit).
                if self.t < bound && bound.is_finite() {
                    self.t = bound;
                }
                return Ok(());
            };
            let slot = top.slot;
            let rho = top.key.density;
            let kernel = DecayKernel { law: self.law, w0: self.total_w, rho };
            let rem = self.arena.remaining(slot);
            let sv = {
                let _p = PhaseScope::enter(Phase::RootFind);
                kernel.serve(rem, bound - self.t)
            };
            if finishing && !(self.t + sv.tau).is_finite() {
                // Kernel overflow at extreme weight scales: with no further
                // release to bound the segment, the event loop cannot make
                // progress — report instead of spinning or emitting NaN.
                return Err(SimError::Numeric {
                    what: "run_c: completion time",
                    value: self.t + sv.tau,
                });
            }
            let t_end = if sv.completes { self.t + sv.tau } else { bound };
            let tau = sv.tau;

            // Guard on *clock-visible* progress: a service interval shorter
            // than the clock's ulp (huge-W, tiny-volume degeneracies) closes
            // no segment and accrues nothing — same as a zero-length
            // interval; the job's waiting flow settles at completion below.
            if t_end > self.t {
                let _p = PhaseScope::enter(Phase::Dispatch);
                let seg = Segment::new(
                    self.t,
                    t_end,
                    Some(top.key.id),
                    SpeedLaw::Decay { w0: self.total_w, rho },
                );
                if self.keep_segments {
                    self.spill.push(seg);
                }
                self.last_seg = Some(seg);
                self.energy += sv.step.energy;
                // Waiting stretches settle lazily: bring the in-service
                // job's flow current through the interval start, add the
                // drain-side flow analytically, and mark it accounted
                // through the interval end. Every *other* active job keeps
                // deferring (its remainder is constant while it waits).
                self.arena.settle_waiting(slot, self.t);
                self.arena.add_frac_flow(slot, rho * (rem * tau - sv.step.volume_integral));
                self.arena.set_remaining(
                    slot,
                    if sv.completes { 0.0 } else { (rem - sv.step.volume).max(0.0) },
                );
                self.arena.set_accrued(slot, t_end);
            }
            self.t = t_end;

            let rem_end = if sv.completes {
                {
                    let _p = PhaseScope::enter(Phase::HeapOps);
                    self.heap.pop();
                }
                let _p = PhaseScope::enter(Phase::Dispatch);
                // Settle any outstanding waiting stretch first: a no-op when
                // the job was served this event (remaining is already 0),
                // but a zero-length completion (volume below W's ulp) skips
                // the service block entirely and still owes its waiting flow.
                self.arena.settle_waiting(slot, self.t);
                self.arena.set_remaining(slot, 0.0);
                let job = self.arena.job(slot);
                let frac = self.arena.frac_flow(slot);
                let int = job.weight() * (self.t - job.release);
                self.frac_done += frac;
                self.int_done += int;
                self.completed += 1;
                sink(CCompletion {
                    id: top.key.id,
                    job,
                    completion: self.t,
                    frac_flow: frac,
                    int_flow: int,
                });
                self.arena.retire(slot);
                self.slot_gen[slot] = self.slot_gen[slot].wrapping_add(1);
                0.0
            } else {
                self.arena.remaining(slot)
            };
            // Incremental total-weight maintenance: one multiply per event,
            // snapped back to the exactly re-derived slice sum every
            // WEIGHT_RESYNC_EVERY events (and to exactly 0 when the active
            // set empties) so drift never accumulates past a few thousand
            // rounding errors.
            {
                let _p = PhaseScope::enter(Phase::Dispatch);
                let delta = rho * (rem - rem_end);
                self.total_w -= delta;
                if self.arena.live() == 0 {
                    self.total_w = 0.0;
                    self.events_since_sync = 0;
                } else {
                    self.events_since_sync += 1;
                    if self.events_since_sync >= WEIGHT_RESYNC_EVERY
                        || self.total_w < delta * WEIGHT_CANCEL_GUARD
                    {
                        self.events_since_sync = 0;
                        self.total_w = self.arena.total_weight();
                    }
                }
            }
            if !sv.completes {
                return Ok(());
            }
        }
    }

    /// The left limit `W(t^-)` of the total remaining weight — the quantity
    /// `W^{(C)}(r^-)` Algorithm NC reads at each release. Valid for `t` at
    /// or behind the stream clock; reads the last closed segment with
    /// `(start, end]` semantics, exactly like the batch
    /// [`crate::CRun::remaining_weight_before`].
    #[must_use]
    pub fn weight_before(&self, t: f64) -> f64 {
        match &self.last_seg {
            Some(s) if s.start < t && t <= s.end => s.power_at(self.law, t),
            _ => 0.0,
        }
    }

    /// Objective accumulated so far: energy spent (including on
    /// partially-served jobs), flow-times of *completed* jobs.
    #[must_use]
    pub fn objective_so_far(&self) -> Objective {
        Objective { energy: self.energy, frac_flow: self.frac_done, int_flow: self.int_done }
    }

    /// Current event-loop clock.
    #[must_use]
    pub fn clock(&self) -> f64 {
        self.t
    }

    /// Resident-memory counters.
    #[must_use]
    pub fn stats(&self) -> StreamStats {
        StreamStats {
            ingested: self.ingested,
            completed: self.completed,
            active: self.arena.live(),
            peak_active: self.arena.peak_live(),
            arena_slots: self.arena.capacity(),
            spill_resident: self.spill.resident(),
            spill_peak_resident: self.spill.peak_resident(),
            spill_dropped: self.spill.dropped(),
            spill_total: self.spill.total_retired(),
        }
    }

    /// The spill ring of retired segments, for draining.
    pub fn spill_mut(&mut self) -> &mut SpillRing {
        &mut self.spill
    }

    /// Capture the complete stream state as plain data (DESIGN.md §10).
    ///
    /// The snapshot is taken between events (the stream is always quiescent
    /// between [`CStream::offer`] calls), carries every `f64` bit-for-bit,
    /// and is sufficient for [`CStream::from_snapshot`] to rebuild a stream
    /// whose future completions and objectives are **bitwise identical** to
    /// this one's — the checkpoint/resume contract that
    /// `tests/checkpoint_determinism.rs` enforces.
    #[must_use]
    pub fn snapshot(&self) -> CStreamSnapshot {
        CStreamSnapshot {
            alpha: self.law.alpha(),
            keep_segments: self.keep_segments,
            arena: self.arena.snapshot(),
            heap: self
                .heap
                .iter()
                .filter(|k| self.slot_gen[k.slot] == k.gen) // drop lazily-deleted keys
                .map(|k| HeapEntry {
                    density: k.key.density,
                    release: k.key.release,
                    id: k.key.id,
                    slot: k.slot,
                })
                .collect(),
            spill: self.spill.snapshot(),
            t: self.t,
            watermark: self.watermark,
            total_w: self.total_w,
            events_since_sync: self.events_since_sync,
            last_seg: self.last_seg,
            ingested: self.ingested,
            completed: self.completed,
            energy: self.energy,
            frac_done: self.frac_done,
            int_done: self.int_done,
        }
    }

    /// Rebuild a stream from a snapshot, validating its structure.
    ///
    /// Snapshots restored from disk may be corrupt; inconsistent shapes
    /// (heap slots outside the arena, live/heap cardinality mismatch, bad
    /// α) come back as structured errors, never panics. The rebuilt binary
    /// heap may have a different *internal* layout than the original — pop
    /// order is still unique because `ActiveKey`s are totally ordered, so
    /// the event loop's arithmetic is unaffected.
    pub fn from_snapshot(snap: CStreamSnapshot) -> SimResult<Self> {
        let law = PowerLaw::new(snap.alpha)?;
        let arena = JobArena::restore(snap.arena)?;
        let bad = |reason| Err(SimError::InvalidInstance { reason });
        if snap.heap.len() != arena.live() {
            return bad("stream snapshot: heap size disagrees with live jobs");
        }
        // Snapshots carry no stale keys (filtered at capture), so every
        // restored key starts at generation zero.
        let mut heap = BinaryHeap::with_capacity(snap.heap.len().max(HEAP_PRESIZE));
        for e in &snap.heap {
            if e.slot >= arena.capacity() {
                return bad("stream snapshot: heap entry slot out of range");
            }
            heap.push(StreamKey {
                key: ActiveKey { density: e.density, release: e.release, id: e.id },
                slot: e.slot,
                gen: 0,
            });
        }
        let slot_gen = vec![0; arena.capacity()];
        if snap.completed > snap.ingested || snap.ingested - snap.completed != arena.live() {
            return bad("stream snapshot: ingested/completed/live counts disagree");
        }
        if snap.events_since_sync >= WEIGHT_RESYNC_EVERY {
            return bad("stream snapshot: resync counter out of range");
        }
        let spill = SpillRing::restore(snap.spill)?;
        Ok(Self {
            law,
            arena,
            heap,
            slot_gen,
            spill,
            keep_segments: snap.keep_segments,
            t: snap.t,
            watermark: snap.watermark,
            total_w: snap.total_w,
            events_since_sync: snap.events_since_sync,
            last_seg: snap.last_seg,
            ingested: snap.ingested,
            completed: snap.completed,
            energy: snap.energy,
            frac_done: snap.frac_done,
            int_done: snap.int_done,
        })
    }
}

/// One active-job entry of a [`CStreamSnapshot`] heap: the HDF ordering key
/// plus the arena slot the job lives in.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeapEntry {
    /// Job density (primary HDF key).
    pub density: f64,
    /// Release time (tie-break).
    pub release: f64,
    /// External job id (final tie-break).
    pub id: JobId,
    /// Arena slot of the job.
    pub slot: usize,
}

/// Plain-data image of a [`CStream`], produced by [`CStream::snapshot`] and
/// consumed by [`CStream::from_snapshot`]. Serialized into trace checkpoint
/// frames by `ncss-trace`.
#[derive(Debug, Clone, PartialEq)]
pub struct CStreamSnapshot {
    /// Power-law exponent α.
    pub alpha: f64,
    /// Whether closed segments are retired into the spill ring.
    pub keep_segments: bool,
    /// Active-job store.
    pub arena: ArenaSnapshot,
    /// Active-job heap entries (order is the heap's internal layout; only
    /// the *set* matters, see [`CStream::from_snapshot`]).
    pub heap: Vec<HeapEntry>,
    /// Spill ring (resident segments + drop accounting).
    pub spill: SpillSnapshot,
    /// Event-loop clock.
    pub t: f64,
    /// Highest release offered so far (−∞ before the first offer).
    pub watermark: f64,
    /// Cached total remaining weight `W(t)`.
    pub total_w: f64,
    /// Events since the last exact total-weight resync (< 4096).
    pub events_since_sync: u32,
    /// Last closed segment (for the `W(t⁻)` left limit).
    pub last_seg: Option<Segment>,
    /// Jobs offered.
    pub ingested: usize,
    /// Jobs completed.
    pub completed: usize,
    /// Energy accumulated.
    pub energy: f64,
    /// Fractional flow of completed jobs.
    pub frac_done: f64,
    /// Integral flow of completed jobs.
    pub int_done: f64,
}

/// Streaming Algorithm NC for uniform densities: FIFO, one growth segment
/// per job, `P(s(t)) = K_j + W̆_j(t)`.
///
/// Completions are emitted *eagerly at offer time*: under FIFO without
/// preemption, a later arrival can never change an already-queued job's
/// service curve, so the moment job `j` is offered its start (when the
/// machine frees up), growth curve (from `K_j`), and completion are all
/// determined. The embedded shadow [`CStream`] supplies `K_j = W^{(C)}(r_j^-)`
/// without ever re-running a prefix — which also makes the batch wrapper
/// [`crate::run_nc_uniform`] O(n log n) instead of the former O(n²).
///
/// # Examples
///
/// ```
/// use ncss_core::streaming::{NcStream, StreamConfig};
/// use ncss_sim::{Job, PowerLaw};
///
/// let mut stream = NcStream::new(PowerLaw::cube(), StreamConfig::batch());
/// let mut done = Vec::new();
/// stream.offer(Job::unit_density(0.0, 1.0), &mut |c| done.push(c)).unwrap();
/// stream.offer(Job::unit_density(0.5, 2.0), &mut |c| done.push(c)).unwrap();
/// let summary = stream.finish().unwrap();
/// assert_eq!(done.len(), 2);
/// assert_eq!(done[0].base_power, 0.0); // nothing released before job 0
/// assert!(done[1].base_power > 0.0);   // W^(C)(0.5^-) of the prefix
/// assert_eq!(summary.completed, 2);
/// ```
#[derive(Debug, Clone)]
pub struct NcStream {
    law: PowerLaw,
    shadow: CStream,
    spill: SpillRing,
    t_free: f64,
    density0: Option<f64>,
    tie_release: f64,
    tie_weight: f64,
    watermark: f64,
    ingested: usize,
    energy: f64,
    frac_sum: f64,
    int_sum: f64,
    makespan: f64,
}

impl NcStream {
    /// A fresh stream under power law `law`.
    #[must_use]
    pub fn new(law: PowerLaw, config: StreamConfig) -> Self {
        let shadow_cfg = StreamConfig { keep_segments: false, spill_capacity: Some(1) };
        Self {
            law,
            shadow: CStream::new(law, shadow_cfg),
            spill: config.ring(),
            t_free: 0.0,
            density0: None,
            tie_release: f64::NEG_INFINITY,
            tie_weight: 0.0,
            watermark: f64::NEG_INFINITY,
            ingested: 0,
            energy: 0.0,
            frac_sum: 0.0,
            int_sum: 0.0,
            makespan: 0.0,
        }
    }

    /// Offer the next released job; its completion is emitted immediately
    /// (see the type docs for why that is sound under FIFO). Releases must
    /// be non-decreasing and densities uniform.
    pub fn offer<F: FnMut(NcCompletion)>(&mut self, job: Job, sink: &mut F) -> SimResult<JobId> {
        let id = self.ingested;
        job.validated(id)?;
        if job.release < self.watermark {
            return Err(SimError::InvalidInstance {
                reason: "streamed releases must be non-decreasing",
            });
        }
        self.watermark = job.release;
        match self.density0 {
            None => self.density0 = Some(job.density),
            // Same tolerance as Instance::is_uniform_density.
            Some(d0) => {
                if (job.density - d0).abs() > 1e-12 * d0.abs() {
                    return Err(SimError::NonUniformDensity);
                }
            }
        }

        // K_j = W^(C)(r_j^-) from the shadow clairvoyant run, plus the full
        // weight of jobs tied at r_j that arrived earlier (the
        // distinct-release limit of the paper's w.l.o.g. assumption).
        let mut drop_sink = |_c: CCompletion| {};
        self.shadow.advance_to(job.release, &mut drop_sink)?;
        if job.release != self.tie_release {
            self.tie_release = job.release;
            self.tie_weight = 0.0;
        }
        let k_j = self.shadow.weight_before(job.release) + self.tie_weight;
        self.shadow.offer(job, &mut drop_sink)?;
        self.tie_weight += job.weight();

        // FIFO: job j starts once jobs 0..j are done and j is released.
        let start = self.t_free.max(job.release);
        let rho = job.density;
        let kernel = GrowthKernel { law: self.law, u0: k_j, rho };
        let sv = {
            let _p = PhaseScope::enter(Phase::RootFind);
            kernel.serve_volume(job.volume)
        };
        if !sv.tau.is_finite() {
            return Err(SimError::Numeric { what: "run_nc_uniform: service time", value: sv.tau });
        }
        let (tau, step) = (sv.tau, sv.step);
        let _p = PhaseScope::enter(Phase::Dispatch);
        if tau > 0.0 {
            self.spill.push(Segment::new(
                start,
                start + tau,
                Some(id),
                SpeedLaw::Growth { u0: k_j, rho },
            ));
        }
        self.energy += step.energy;
        // Fractional flow: full volume waits from release to service start,
        // then drains along the growth curve.
        let frac = rho * job.volume * (start - job.release)
            + rho * (job.volume * tau - step.volume_integral);
        let completion = start + tau;
        let int = job.weight() * (completion - job.release);
        self.frac_sum += frac;
        self.int_sum += int;
        self.t_free = completion;
        self.makespan = self.makespan.max(completion);
        self.ingested += 1;
        sink(NcCompletion {
            id,
            job,
            base_power: k_j,
            start,
            completion,
            frac_flow: frac,
            int_flow: int,
        });
        Ok(id)
    }

    /// Declare the stream exhausted: every offered job already completed
    /// (FIFO emits eagerly), so this validates and returns the tally.
    pub fn finish(&mut self) -> SimResult<StreamSummary> {
        let objective = self.objective_so_far().validated("run_nc_uniform: objective")?;
        Ok(StreamSummary { objective, completed: self.ingested, makespan: self.makespan })
    }

    /// Objective accumulated so far (all offered jobs, completed by
    /// construction).
    #[must_use]
    pub fn objective_so_far(&self) -> Objective {
        Objective { energy: self.energy, frac_flow: self.frac_sum, int_flow: self.int_sum }
    }

    /// Time at which the machine frees up (completion of the last queued job).
    #[must_use]
    pub fn clock(&self) -> f64 {
        self.t_free
    }

    /// Resident-memory counters. `spill_*` describe this stream's own ring;
    /// the arena/heap numbers come from the embedded shadow C run, which is
    /// the only per-job state NC keeps.
    #[must_use]
    pub fn stats(&self) -> StreamStats {
        let shadow = self.shadow.stats();
        StreamStats {
            ingested: self.ingested,
            completed: self.ingested,
            active: shadow.active,
            peak_active: shadow.peak_active,
            arena_slots: shadow.arena_slots,
            spill_resident: self.spill.resident(),
            spill_peak_resident: self.spill.peak_resident(),
            spill_dropped: self.spill.dropped(),
            spill_total: self.spill.total_retired(),
        }
    }

    /// The spill ring of retired segments, for draining.
    pub fn spill_mut(&mut self) -> &mut SpillRing {
        &mut self.spill
    }

    /// Capture the complete stream state — including the embedded shadow
    /// [`CStream`] — as plain data. Same bitwise-resume contract as
    /// [`CStream::snapshot`].
    #[must_use]
    pub fn snapshot(&self) -> NcStreamSnapshot {
        NcStreamSnapshot {
            alpha: self.law.alpha(),
            shadow: self.shadow.snapshot(),
            spill: self.spill.snapshot(),
            t_free: self.t_free,
            density0: self.density0,
            tie_release: self.tie_release,
            tie_weight: self.tie_weight,
            watermark: self.watermark,
            ingested: self.ingested,
            energy: self.energy,
            frac_sum: self.frac_sum,
            int_sum: self.int_sum,
            makespan: self.makespan,
        }
    }

    /// Rebuild a stream from a snapshot, validating its structure (the
    /// shadow stream and spill ring are validated by their own restores).
    pub fn from_snapshot(snap: NcStreamSnapshot) -> SimResult<Self> {
        let law = PowerLaw::new(snap.alpha)?;
        let shadow = CStream::from_snapshot(snap.shadow)?;
        if shadow.law.alpha() != snap.alpha {
            return Err(SimError::InvalidInstance {
                reason: "stream snapshot: shadow alpha disagrees with stream alpha",
            });
        }
        if shadow.ingested != snap.ingested {
            return Err(SimError::InvalidInstance {
                reason: "stream snapshot: shadow ingest count disagrees with stream",
            });
        }
        let spill = SpillRing::restore(snap.spill)?;
        Ok(Self {
            law,
            shadow,
            spill,
            t_free: snap.t_free,
            density0: snap.density0,
            tie_release: snap.tie_release,
            tie_weight: snap.tie_weight,
            watermark: snap.watermark,
            ingested: snap.ingested,
            energy: snap.energy,
            frac_sum: snap.frac_sum,
            int_sum: snap.int_sum,
            makespan: snap.makespan,
        })
    }
}

/// Plain-data image of an [`NcStream`], produced by [`NcStream::snapshot`]
/// and consumed by [`NcStream::from_snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct NcStreamSnapshot {
    /// Power-law exponent α.
    pub alpha: f64,
    /// The embedded shadow clairvoyant stream supplying `K_j`.
    pub shadow: CStreamSnapshot,
    /// This stream's own spill ring.
    pub spill: SpillSnapshot,
    /// Time the machine frees up.
    pub t_free: f64,
    /// Locked-in uniform density (None before the first offer).
    pub density0: Option<f64>,
    /// Release time of the current tie group.
    pub tie_release: f64,
    /// Weight of earlier arrivals tied at `tie_release`.
    pub tie_weight: f64,
    /// Highest release offered so far.
    pub watermark: f64,
    /// Jobs offered (= completed; NC emits eagerly).
    pub ingested: usize,
    /// Energy accumulated.
    pub energy: f64,
    /// Fractional flow accumulated.
    pub frac_sum: f64,
    /// Integral flow accumulated.
    pub int_sum: f64,
    /// Completion time of the latest-finishing job.
    pub makespan: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncss_sim::numeric::approx_eq;
    use ncss_sim::{Instance, ScheduleBuilder};

    fn pl(alpha: f64) -> PowerLaw {
        PowerLaw::new(alpha).unwrap()
    }

    #[test]
    fn rejects_out_of_order_releases() {
        let mut s = CStream::new(pl(2.0), StreamConfig::batch());
        s.offer(Job::unit_density(1.0, 1.0), &mut |_| {}).unwrap();
        let err = s.offer(Job::unit_density(0.5, 1.0), &mut |_| {});
        assert!(matches!(err, Err(SimError::InvalidInstance { .. })));
        let mut nc = NcStream::new(pl(2.0), StreamConfig::batch());
        nc.offer(Job::unit_density(1.0, 1.0), &mut |_| {}).unwrap();
        assert!(matches!(
            nc.offer(Job::unit_density(0.5, 1.0), &mut |_| {}),
            Err(SimError::InvalidInstance { .. })
        ));
    }

    #[test]
    fn rejects_invalid_jobs() {
        let mut s = CStream::new(pl(2.0), StreamConfig::batch());
        assert!(matches!(
            s.offer(Job::new(0.0, -1.0, 1.0), &mut |_| {}),
            Err(SimError::InvalidJob { index: 0, .. })
        ));
    }

    #[test]
    fn nc_stream_rejects_non_uniform() {
        let mut nc = NcStream::new(pl(2.0), StreamConfig::batch());
        nc.offer(Job::new(0.0, 1.0, 1.0), &mut |_| {}).unwrap();
        assert!(matches!(
            nc.offer(Job::new(0.5, 1.0, 2.0), &mut |_| {}),
            Err(SimError::NonUniformDensity)
        ));
    }

    #[test]
    fn completions_arrive_in_event_order() {
        // Two jobs, the second denser: it preempts and completes first.
        let mut s = CStream::new(pl(2.0), StreamConfig::batch());
        let mut order = Vec::new();
        s.offer(Job::new(0.0, 10.0, 1.0), &mut |c| order.push(c.id)).unwrap();
        s.offer(Job::new(0.1, 0.1, 100.0), &mut |c| order.push(c.id)).unwrap();
        s.finish(&mut |c| order.push(c.id)).unwrap();
        assert_eq!(order, vec![1, 0]);
    }

    #[test]
    fn drained_spill_rebuilds_a_valid_schedule() {
        let law = pl(2.5);
        let jobs = vec![
            Job::unit_density(0.0, 1.0),
            Job::unit_density(0.2, 2.0),
            Job::unit_density(1.5, 0.5),
        ];
        let mut s = CStream::new(law, StreamConfig::batch());
        for &j in &jobs {
            s.offer(j, &mut |_| {}).unwrap();
        }
        let summary = s.finish(&mut |_| {}).unwrap();
        let mut builder = ScheduleBuilder::new(law);
        for seg in s.spill_mut().drain() {
            builder.push(seg);
        }
        let schedule = builder.build().unwrap();
        let inst = Instance::new(jobs).unwrap();
        let ev = ncss_sim::evaluate(&schedule, &inst).unwrap();
        assert!(approx_eq(ev.objective.energy, summary.objective.energy, 1e-7));
        assert!(approx_eq(ev.objective.frac_flow, summary.objective.frac_flow, 1e-7));
    }

    #[test]
    fn memory_stays_flat_under_churn() {
        // 10k sequential jobs, never more than a handful active: the arena
        // must stay at its peak-active footprint, not grow with n.
        let law = pl(2.0);
        let mut s = CStream::new(law, StreamConfig::streaming(64));
        let mut completions = 0usize;
        for i in 0..10_000 {
            let release = i as f64 * 0.5;
            s.offer(Job::unit_density(release, 0.2), &mut |_| completions += 1).unwrap();
            let _ = s.spill_mut().drain().count();
        }
        s.finish(&mut |_| completions += 1).unwrap();
        let stats = s.stats();
        assert_eq!(completions, 10_000);
        assert_eq!(stats.spill_dropped, 0, "drained between offers: nothing may drop");
        assert!(stats.peak_active <= 4, "peak active {} for a trickle", stats.peak_active);
        assert_eq!(stats.arena_slots, stats.peak_active);
    }

    #[test]
    fn snapshot_resume_is_bitwise_identical() {
        // Kill a C stream after every prefix of offers; the resumed stream
        // must finish with bitwise-equal completions and objectives.
        let law = pl(2.5);
        let jobs = vec![
            Job::new(0.0, 1.0, 2.0),
            Job::new(0.2, 2.0, 1.0),
            Job::new(0.2, 0.5, 5.0),
            Job::new(1.7, 0.3, 1.0),
        ];
        let mut full = Vec::new();
        let mut s = CStream::new(law, StreamConfig::batch());
        for &j in &jobs {
            s.offer(j, &mut |c| full.push(c)).unwrap();
        }
        let full_summary = s.finish(&mut |c| full.push(c)).unwrap();

        for k in 0..=jobs.len() {
            let mut done = Vec::new();
            let mut s = CStream::new(law, StreamConfig::batch());
            for &j in &jobs[..k] {
                s.offer(j, &mut |c| done.push(c)).unwrap();
            }
            let snap = s.snapshot();
            drop(s); // the "crash"
            let mut r = CStream::from_snapshot(snap).unwrap();
            for &j in &jobs[k..] {
                r.offer(j, &mut |c| done.push(c)).unwrap();
            }
            let summary = r.finish(&mut |c| done.push(c)).unwrap();
            assert_eq!(summary.objective.energy.to_bits(), full_summary.objective.energy.to_bits());
            assert_eq!(
                summary.objective.frac_flow.to_bits(),
                full_summary.objective.frac_flow.to_bits()
            );
            assert_eq!(done.len(), full.len());
            for (a, b) in done.iter().zip(&full) {
                assert_eq!(a.id, b.id);
                assert_eq!(a.completion.to_bits(), b.completion.to_bits());
                assert_eq!(a.frac_flow.to_bits(), b.frac_flow.to_bits());
            }
        }
    }

    #[test]
    fn nc_snapshot_resume_is_bitwise_identical() {
        let law = pl(3.0);
        let jobs = vec![
            Job::unit_density(0.0, 4.0),
            Job::unit_density(1.0, 1.0),
            Job::unit_density(1.0, 2.0),
            Job::unit_density(3.0, 0.7),
        ];
        let mut full = Vec::new();
        let mut s = NcStream::new(law, StreamConfig::batch());
        for &j in &jobs {
            s.offer(j, &mut |c| full.push(c)).unwrap();
        }
        let full_summary = s.finish().unwrap();

        for k in 0..=jobs.len() {
            let mut done = Vec::new();
            let mut s = NcStream::new(law, StreamConfig::batch());
            for &j in &jobs[..k] {
                s.offer(j, &mut |c| done.push(c)).unwrap();
            }
            let snap = s.snapshot();
            drop(s);
            let mut r = NcStream::from_snapshot(snap).unwrap();
            for &j in &jobs[k..] {
                r.offer(j, &mut |c| done.push(c)).unwrap();
            }
            let summary = r.finish().unwrap();
            assert_eq!(summary.objective.energy.to_bits(), full_summary.objective.energy.to_bits());
            assert_eq!(summary.objective.int_flow.to_bits(), full_summary.objective.int_flow.to_bits());
            for (a, b) in done[k..].iter().zip(&full[k..]) {
                assert_eq!(a.base_power.to_bits(), b.base_power.to_bits());
                assert_eq!(a.completion.to_bits(), b.completion.to_bits());
            }
        }
    }

    #[test]
    fn from_snapshot_rejects_inconsistent_state() {
        let mut s = CStream::new(pl(2.0), StreamConfig::batch());
        s.offer(Job::unit_density(0.0, 2.0), &mut |_| {}).unwrap();
        let good = s.snapshot();

        let mut bad = good.clone();
        bad.alpha = 0.5;
        assert!(CStream::from_snapshot(bad).is_err(), "bad alpha");

        let mut bad = good.clone();
        bad.heap.clear();
        assert!(CStream::from_snapshot(bad).is_err(), "heap/live mismatch");

        let mut bad = good.clone();
        bad.heap[0].slot = 99;
        assert!(CStream::from_snapshot(bad).is_err(), "slot out of range");

        let mut bad = good;
        bad.completed = 5;
        assert!(CStream::from_snapshot(bad).is_err(), "count mismatch");
    }

    #[test]
    fn shadow_base_power_matches_prefix_rerun() {
        // The NC shadow's K_j against the O(n²) prefix-rerun definition.
        let jobs = vec![
            Job::unit_density(0.0, 4.0),
            Job::unit_density(1.0, 1.0),
            Job::unit_density(1.0, 2.0),
            Job::unit_density(3.0, 0.7),
        ];
        let inst = Instance::new(jobs.clone()).unwrap();
        let law = pl(2.0);
        let mut nc = NcStream::new(law, StreamConfig::batch());
        let mut ks = Vec::new();
        for &j in &jobs {
            nc.offer(j, &mut |c| ks.push(c.base_power)).unwrap();
        }
        for (j, &k) in ks.iter().enumerate() {
            let reference = crate::nc_uniform::base_power(&inst, law, j).unwrap();
            assert!(approx_eq(k, reference, 1e-9), "K_{j}: stream {k} vs prefix {reference}");
        }
    }
}
