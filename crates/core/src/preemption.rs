//! Preemption-interval structure of Algorithm C runs (Figure 3, Section 4).
//!
//! In the non-uniform analysis, the time a job `j*` spends in Algorithm C
//! between its release and completion alternates between intervals where
//! `j*` is in service and *preemption intervals* where strictly
//! higher-density jobs run. The analysis tracks, per preemption interval
//! `i`, its start `R̂_i` and the total preempting volume `V̂_i`; this module
//! extracts exactly those quantities from a finished [`CRun`].

use crate::clairvoyant::CRun;
use ncss_sim::{Instance, JobId};

/// One maximal interval during which `j*` was active but other (higher
/// density) jobs were processed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PreemptionInterval {
    /// Start time `R̂_i`.
    pub start: f64,
    /// End time (service of `j*` resumes, or `j*`'s completion horizon).
    pub end: f64,
    /// Total volume of preempting jobs processed inside the interval `V̂_i`.
    pub volume: f64,
}

/// Extract the chronological preemption intervals of job `target` in a run
/// of Algorithm C.
#[must_use]
pub fn preemption_intervals(run: &CRun, instance: &Instance, target: JobId) -> Vec<PreemptionInterval> {
    let pl = run.schedule.power_law();
    let release = instance.job(target).release;
    let completion = run.per_job.completion[target];
    let mut out: Vec<PreemptionInterval> = Vec::new();
    for seg in run.schedule.segments() {
        if seg.end <= release || seg.start >= completion {
            continue;
        }
        if seg.job == Some(target) {
            continue;
        }
        // Clip to the active window of the target job.
        let s = seg.start.max(release);
        let e = seg.end.min(completion);
        if e <= s {
            continue;
        }
        let vol = seg.volume_to(pl, e) - seg.volume_to(pl, s);
        match out.last_mut() {
            Some(last) if (last.end - s).abs() <= 1e-12 => {
                last.end = e;
                last.volume += vol;
            }
            _ => out.push(PreemptionInterval { start: s, end: e, volume: vol }),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clairvoyant::run_c;
    use ncss_sim::numeric::approx_eq;
    use ncss_sim::{Job, PowerLaw};

    #[test]
    fn no_preemption_for_highest_density_job() {
        let inst = Instance::new(vec![Job::new(0.0, 1.0, 10.0), Job::new(0.1, 1.0, 1.0)]).unwrap();
        let run = run_c(&inst, PowerLaw::new(2.0).unwrap()).unwrap();
        assert!(preemption_intervals(&run, &inst, 0).is_empty());
    }

    #[test]
    fn low_density_job_sees_preemptions() {
        // j* = job 0 (density 1); two high-density jobs arrive while it runs.
        let inst = Instance::new(vec![
            Job::new(0.0, 4.0, 1.0),
            Job::new(0.5, 0.2, 10.0),
            Job::new(1.5, 0.3, 10.0),
        ])
        .unwrap();
        let run = run_c(&inst, PowerLaw::new(2.0).unwrap()).unwrap();
        let ivs = preemption_intervals(&run, &inst, 0);
        assert_eq!(ivs.len(), 2, "{ivs:?}");
        assert!(approx_eq(ivs[0].start, 0.5, 1e-9));
        assert!(approx_eq(ivs[0].volume, 0.2, 1e-9));
        assert!(approx_eq(ivs[1].start, 1.5, 1e-9));
        assert!(approx_eq(ivs[1].volume, 0.3, 1e-9));
        // Intervals are disjoint and chronological.
        assert!(ivs[0].end <= ivs[1].start);
    }

    #[test]
    fn back_to_back_preemptors_merge() {
        // Two preemptors released at the same instant form one interval.
        let inst = Instance::new(vec![
            Job::new(0.0, 4.0, 1.0),
            Job::new(0.5, 0.2, 10.0),
            Job::new(0.5, 0.1, 20.0),
        ])
        .unwrap();
        let run = run_c(&inst, PowerLaw::new(2.0).unwrap()).unwrap();
        let ivs = preemption_intervals(&run, &inst, 0);
        assert_eq!(ivs.len(), 1, "{ivs:?}");
        assert!(approx_eq(ivs[0].volume, 0.3, 1e-9));
    }
}
