//! The evolving "current instance" `I(T)` (Sections 3–4).
//!
//! For a non-clairvoyant run in progress at time `T`, the current instance
//! has the original release times but each job's volume replaced by the
//! amount the non-clairvoyant algorithm has processed so far — this is the
//! instance the adversary could end at time `T`. Both the paper's inductive
//! analysis and Algorithm NC's non-uniform speed rule are phrased in terms
//! of Algorithm C run on `I(T)`.

use ncss_sim::{Instance, Job, JobId, Schedule, SimResult};

/// Processed volume of every job under `schedule` up to time `t`.
#[must_use]
pub fn processed_volumes(schedule: &Schedule, n_jobs: usize, t: f64) -> Vec<f64> {
    let pl = schedule.power_law();
    let mut v = vec![0.0; n_jobs];
    for seg in schedule.segments() {
        if seg.start >= t {
            break;
        }
        if let Some(j) = seg.job {
            v[j] += seg.volume_to(pl, t.min(seg.end));
        }
    }
    v
}

/// Build `I(T)` from an original instance and the non-clairvoyant schedule
/// that has been executed up to time `t`.
///
/// Jobs with zero processed volume are dropped (they have zero weight in
/// `I(T)` and cannot affect Algorithm C); the second return value maps the
/// new ids back to the original ids.
pub fn current_instance(
    instance: &Instance,
    schedule: &Schedule,
    t: f64,
) -> SimResult<(Instance, Vec<JobId>)> {
    let processed = processed_volumes(schedule, instance.len(), t);
    let mut jobs = Vec::new();
    let mut ids = Vec::new();
    for (id, job) in instance.jobs().iter().enumerate() {
        if processed[id] > 0.0 {
            jobs.push(Job { release: job.release, volume: processed[id], density: job.density });
            ids.push(id);
        }
    }
    Ok((Instance::new(jobs)?, ids))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nc_uniform::run_nc_uniform;
    use ncss_sim::numeric::approx_eq;
    use ncss_sim::PowerLaw;

    #[test]
    fn processed_volumes_grow_monotonically() {
        let inst = Instance::new(vec![
            Job::unit_density(0.0, 1.0),
            Job::unit_density(0.5, 2.0),
        ])
        .unwrap();
        let nc = run_nc_uniform(&inst, PowerLaw::new(2.0).unwrap()).unwrap();
        let m = nc.makespan();
        let mut prev = vec![0.0, 0.0];
        for i in 1..=20 {
            let t = m * i as f64 / 20.0;
            let v = processed_volumes(&nc.schedule, 2, t);
            assert!(v[0] >= prev[0] - 1e-12 && v[1] >= prev[1] - 1e-12);
            prev = v;
        }
        assert!(approx_eq(prev[0], 1.0, 1e-9));
        assert!(approx_eq(prev[1], 2.0, 1e-9));
    }

    #[test]
    fn current_instance_at_makespan_is_original() {
        let inst = Instance::new(vec![
            Job::unit_density(0.0, 1.5),
            Job::unit_density(0.2, 0.7),
        ])
        .unwrap();
        let nc = run_nc_uniform(&inst, PowerLaw::new(3.0).unwrap()).unwrap();
        let (cur, ids) = current_instance(&inst, &nc.schedule, nc.makespan() + 1.0).unwrap();
        assert_eq!(ids, vec![0, 1]);
        for (new_id, &orig) in ids.iter().enumerate() {
            assert!(approx_eq(cur.job(new_id).volume, inst.job(orig).volume, 1e-9));
            assert_eq!(cur.job(new_id).release, inst.job(orig).release);
        }
    }

    #[test]
    fn untouched_jobs_are_dropped() {
        let inst = Instance::new(vec![
            Job::unit_density(0.0, 1.0),
            Job::unit_density(100.0, 1.0),
        ])
        .unwrap();
        let nc = run_nc_uniform(&inst, PowerLaw::new(2.0).unwrap()).unwrap();
        let (cur, ids) = current_instance(&inst, &nc.schedule, 1.0).unwrap();
        assert_eq!(ids, vec![0]);
        assert!(cur.job(0).volume > 0.0 && cur.job(0).volume < 1.0);
    }
}
