//! Non-clairvoyant baselines from the related-work landscape.
//!
//! These populate the comparison columns of the experiments:
//!
//! * [`run_constant_speed`] — the naive fixed-speed FIFO machine,
//! * [`run_active_count`] — "power = number of active jobs", the natural
//!   non-clairvoyant adaptation of the active-job-count speed rules of Lam
//!   et al. (speed is observable without knowing volumes),
//! * [`run_newest_first`] — preemptive LIFO with a reset growth power rule
//!   (`P = processed weight of the current job`). This deliberately drops
//!   the `W^{(C)}(r_j^-)` base term and the FIFO information-gathering
//!   order, isolating the two design choices of Algorithm NC for the
//!   ablation experiments (A3 in DESIGN.md).
//!
//! All three are genuinely implementable in the non-clairvoyant model: they
//! consult only releases, densities, their own processed volumes, and
//! completion signals.

use ncss_sim::kernel::GrowthKernel;
use ncss_sim::{
    evaluate, Instance, Objective, PerJob, PowerLaw, Schedule, ScheduleBuilder, Segment, SimError,
    SimResult, SpeedLaw,
};

/// Outcome of a baseline run: the schedule plus its evaluated objective.
#[derive(Debug, Clone)]
pub struct BaselineRun {
    /// The machine schedule.
    pub schedule: Schedule,
    /// Evaluated objective.
    pub objective: Objective,
    /// Per-job outcomes.
    pub per_job: PerJob,
}

fn finish(schedule: Schedule, instance: &Instance) -> SimResult<BaselineRun> {
    let ev = evaluate(&schedule, instance)?;
    Ok(BaselineRun { schedule, objective: ev.objective, per_job: ev.per_job })
}

/// FIFO processing at a fixed speed `s > 0`.
pub fn run_constant_speed(instance: &Instance, law: PowerLaw, speed: f64) -> SimResult<BaselineRun> {
    if !(speed.is_finite() && speed > 0.0) {
        return Err(SimError::InvalidInstance { reason: "constant speed must be positive" });
    }
    let mut builder = ScheduleBuilder::new(law);
    let mut t = 0.0f64;
    for (j, job) in instance.jobs().iter().enumerate() {
        t = t.max(job.release);
        let tau = job.volume / speed;
        builder.push(Segment::new(t, t + tau, Some(j), SpeedLaw::Constant { speed }));
        t += tau;
    }
    finish(builder.build()?, instance)
}

/// FIFO processing with `P(s) = m(t)` where `m(t)` is the number of active
/// jobs — the job-count analogue of the clairvoyant `P = W` rule, which is
/// observable non-clairvoyantly.
pub fn run_active_count(instance: &Instance, law: PowerLaw) -> SimResult<BaselineRun> {
    let jobs = instance.jobs();
    let n = jobs.len();
    let mut remaining: Vec<f64> = jobs.iter().map(|j| j.volume).collect();
    let mut builder = ScheduleBuilder::new(law);
    let mut next = 0usize;
    let mut active: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
    let mut t = jobs.first().map_or(0.0, |j| j.release);

    let admit = |t: f64, next: &mut usize, active: &mut std::collections::VecDeque<usize>| {
        while *next < n && jobs[*next].release <= t {
            active.push_back(*next);
            *next += 1;
        }
    };
    admit(t, &mut next, &mut active);

    while !active.is_empty() || next < n {
        if active.is_empty() {
            t = jobs[next].release;
            admit(t, &mut next, &mut active);
            continue;
        }
        let cur = *active.front().expect("non-empty queue");
        let speed = law.speed_for_power(active.len() as f64);
        let t_complete = t + remaining[cur] / speed;
        let t_release = if next < n { jobs[next].release } else { f64::INFINITY };
        let completes = t_complete <= t_release;
        let t_end = if completes { t_complete } else { t_release };
        if t_end > t {
            builder.push(Segment::new(t, t_end, Some(cur), SpeedLaw::Constant { speed }));
            remaining[cur] -= speed * (t_end - t);
        }
        t = t_end;
        if completes {
            remaining[cur] = 0.0;
            active.pop_front();
        }
        admit(t, &mut next, &mut active);
    }
    finish(builder.build()?, instance)
}

/// Preemptive newest-first (LIFO) with the reset power rule
/// `P(s) = ρ_j · (volume of j processed so far)` for the job in service.
pub fn run_newest_first(instance: &Instance, law: PowerLaw) -> SimResult<BaselineRun> {
    let jobs = instance.jobs();
    let n = jobs.len();
    let mut processed = vec![0.0f64; n];
    let mut builder = ScheduleBuilder::new(law);
    let mut next = 0usize;
    // LIFO stack of active jobs (most recent release on top).
    let mut stack: Vec<usize> = Vec::new();
    let mut t = jobs.first().map_or(0.0, |j| j.release);

    let admit = |t: f64, next: &mut usize, stack: &mut Vec<usize>| {
        while *next < n && jobs[*next].release <= t {
            stack.push(*next);
            *next += 1;
        }
    };
    admit(t, &mut next, &mut stack);

    while !stack.is_empty() || next < n {
        if stack.is_empty() {
            t = jobs[next].release;
            admit(t, &mut next, &mut stack);
            continue;
        }
        let cur = *stack.last().expect("non-empty stack");
        let rho = jobs[cur].density;
        let u0 = rho * processed[cur];
        let kernel = GrowthKernel { law, u0, rho };
        let rem = jobs[cur].volume - processed[cur];
        let t_complete = t + kernel.time_to_volume(rem);
        let t_release = if next < n { jobs[next].release } else { f64::INFINITY };
        let completes = t_complete <= t_release;
        let t_end = if completes { t_complete } else { t_release };
        if t_end > t {
            builder.push(Segment::new(t, t_end, Some(cur), SpeedLaw::Growth { u0, rho }));
            processed[cur] += kernel.volume(t_end - t);
        }
        t = t_end;
        if completes {
            processed[cur] = jobs[cur].volume;
            stack.pop();
        }
        admit(t, &mut next, &mut stack);
    }
    finish(builder.build()?, instance)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncss_sim::numeric::approx_eq;
    use ncss_sim::Job;

    fn pl(alpha: f64) -> PowerLaw {
        PowerLaw::new(alpha).unwrap()
    }

    fn inst() -> Instance {
        Instance::new(vec![
            Job::unit_density(0.0, 1.0),
            Job::unit_density(0.3, 0.5),
            Job::unit_density(2.0, 1.5),
        ])
        .unwrap()
    }

    #[test]
    fn constant_speed_basics() {
        let run = run_constant_speed(&inst(), pl(2.0), 2.0).unwrap();
        // Total volume 3 at speed 2: busy time 1.5, energy = 4 * 1.5 = 6.
        assert!(approx_eq(run.objective.energy, 6.0, 1e-9));
        assert!(run.per_job.completion[0] < run.per_job.completion[1]);
        assert!(run_constant_speed(&inst(), pl(2.0), 0.0).is_err());
    }

    #[test]
    fn active_count_speed_levels() {
        // Single active job -> speed 1 for any alpha (P(s)=1).
        let one = Instance::new(vec![Job::unit_density(0.0, 2.0)]).unwrap();
        let run = run_active_count(&one, pl(3.0)).unwrap();
        assert!(approx_eq(run.schedule.speed_at(0.5), 1.0, 1e-12));
        assert!(approx_eq(run.per_job.completion[0], 2.0, 1e-9));

        // Two overlapping jobs -> speed 2^{1/alpha} while both active.
        let two = Instance::new(vec![Job::unit_density(0.0, 2.0), Job::unit_density(0.5, 1.0)]).unwrap();
        let run = run_active_count(&two, pl(2.0)).unwrap();
        assert!(approx_eq(run.schedule.speed_at(1.0), 2f64.sqrt(), 1e-12));
    }

    #[test]
    fn newest_first_preempts() {
        let i = Instance::new(vec![Job::unit_density(0.0, 5.0), Job::unit_density(0.5, 0.1)]).unwrap();
        let run = run_newest_first(&i, pl(2.0)).unwrap();
        // The later, tiny job jumps the queue.
        assert!(run.per_job.completion[1] < run.per_job.completion[0]);
        // Serving segments alternate 0, 1, 0.
        let served: Vec<_> = run.schedule.segments().iter().map(|s| s.job).collect();
        assert_eq!(served, vec![Some(0), Some(1), Some(0)]);
    }

    #[test]
    fn all_baselines_complete_everything() {
        let i = inst();
        for run in [
            run_constant_speed(&i, pl(2.5), 1.3).unwrap(),
            run_active_count(&i, pl(2.5)).unwrap(),
            run_newest_first(&i, pl(2.5)).unwrap(),
        ] {
            for c in &run.per_job.completion {
                assert!(c.is_finite());
            }
            assert!(run.objective.fractional() > 0.0);
            assert!(run.objective.fractional() <= run.objective.integral() + 1e-9);
        }
    }

    #[test]
    fn newest_first_resumes_progress() {
        // After preemption, the first job's progress is retained: its total
        // service volume still equals its volume.
        let i = Instance::new(vec![Job::unit_density(0.0, 2.0), Job::unit_density(0.4, 0.3)]).unwrap();
        let run = run_newest_first(&i, pl(2.0)).unwrap();
        let pl2 = pl(2.0);
        let vol0: f64 = run
            .schedule
            .segments()
            .iter()
            .filter(|s| s.job == Some(0))
            .map(|s| s.volume(pl2))
            .sum();
        assert!(approx_eq(vol0, 2.0, 1e-9));
    }
}
