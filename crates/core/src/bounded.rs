//! Speed-bounded variants — the "speed bounded processors" model the paper
//! contrasts with (its reference \[6\], Bansal–Chan–Lam–Lee ICALP'08).
//!
//! Real processors cannot run arbitrarily fast; with a hard cap `s_max`,
//! the natural adaptations clip the paper's speed rules:
//!
//! * **Capped Algorithm C** — `s = min(P⁻¹(W), s_max)`: while the remaining
//!   weight exceeds `P(s_max)` the machine runs flat at the cap (linear
//!   weight decay), then follows the usual power curve.
//! * **Capped Algorithm NC** — the growth curve `P(s) = K_j + W̆_j(t)`
//!   clipped at the cap: the power level keeps growing while in service,
//!   but the speed saturates.
//!
//! The single-job time-reversal symmetry survives the cap (the capped
//! growth curve is the capped decay curve in reverse), so the Lemma 3
//! energy equality is still *exact* for a single job. On multi-job
//! instances the cap binds against different weight levels in the two
//! algorithms (C caps on total remaining weight, NC per service stint), so
//! both the energy equality and the `1/(1−1/α)` flow ratio become
//! approximate once the cap binds — the tests quantify the deviation
//! (< 1% on the sample instances). This measured breakage is itself a
//! finding: the paper's exact structure is specific to unbounded speeds.

use crate::nc_uniform::base_power;
use ncss_sim::kernel::{DecayKernel, GrowthKernel};
use ncss_sim::{
    evaluate, Evaluated, Instance, PowerLaw, Schedule, ScheduleBuilder, Segment, SimError,
    SimResult, SpeedLaw,
};

fn check_cap(s_max: f64) -> SimResult<()> {
    if !(s_max.is_finite() && s_max > 0.0) {
        return Err(SimError::InvalidInstance { reason: "speed cap must be positive and finite" });
    }
    Ok(())
}

/// Run the speed-capped Algorithm C.
pub fn run_c_bounded(instance: &Instance, law: PowerLaw, s_max: f64) -> SimResult<(Schedule, Evaluated)> {
    check_cap(s_max)?;
    let jobs = instance.jobs();
    let n = jobs.len();
    let w_cap = law.power(s_max);
    let mut remaining: Vec<f64> = jobs.iter().map(|j| j.volume).collect();
    let mut builder = ScheduleBuilder::new(law);

    // Active set in HDF order, small-n scan (bounded runs are study tools,
    // not the hot path).
    let mut t = jobs.first().map_or(0.0, |j| j.release);
    let mut next = 0usize;
    let mut active: Vec<usize> = Vec::new();
    let admit = |t: f64, next: &mut usize, active: &mut Vec<usize>| {
        while *next < n && jobs[*next].release <= t {
            active.push(*next);
            *next += 1;
        }
    };
    admit(t, &mut next, &mut active);

    let mut guard = 0;
    while !active.is_empty() || next < n {
        guard += 1;
        if guard > 20 * n + 64 {
            return Err(SimError::NonConvergence { what: "bounded C event loop" });
        }
        if active.is_empty() {
            t = jobs[next].release;
            admit(t, &mut next, &mut active);
            continue;
        }
        // HDF with (release, id) tie-break.
        let &j = active
            .iter()
            .min_by(|&&a, &&b| {
                jobs[b].density
                    .partial_cmp(&jobs[a].density)
                    .expect("finite")
                    .then(jobs[a].release.partial_cmp(&jobs[b].release).expect("finite"))
                    .then(a.cmp(&b))
            })
            .expect("non-empty");
        let rho = jobs[j].density;
        let total_w: f64 = active.iter().map(|&k| jobs[k].density * remaining[k]).sum();
        let t_release = if next < n { jobs[next].release } else { f64::INFINITY };

        // Relative margin: at the exact crossing, rounding can leave W a
        // few ulps above the cap, which would yield an endless sequence of
        // zero-length flat segments.
        if total_w > w_cap * (1.0 + 1e-9) {
            // Flat phase at the cap: weight decays linearly at rho*s_max.
            let t_cross = t + (total_w - w_cap) / (rho * s_max);
            let t_complete = t + remaining[j] / s_max;
            let t_end = t_cross.min(t_complete).min(t_release);
            if t_end > t {
                builder.push(Segment::new(t, t_end, Some(j), SpeedLaw::Constant { speed: s_max }));
                remaining[j] = (remaining[j] - s_max * (t_end - t)).max(0.0);
            }
            t = t_end;
        } else {
            // Unconstrained decay phase.
            let kernel = DecayKernel { law, w0: total_w, rho };
            let t_complete = t + kernel.time_to_volume(remaining[j]);
            let t_end = t_complete.min(t_release);
            if t_end > t {
                builder.push(Segment::new(t, t_end, Some(j), SpeedLaw::Decay { w0: total_w, rho }));
                remaining[j] = (remaining[j] - kernel.volume(t_end - t)).max(0.0);
            }
            t = t_end;
        }
        active.retain(|&k| remaining[k] > 1e-12 * jobs[k].volume);
        for &k in &active.clone() {
            if remaining[k] <= 1e-12 * jobs[k].volume {
                remaining[k] = 0.0;
            }
        }
        admit(t, &mut next, &mut active);
    }

    let schedule = builder.build()?;
    let ev = evaluate(&schedule, instance)?;
    Ok((schedule, ev))
}

/// Run the speed-capped Algorithm NC (uniform densities).
pub fn run_nc_uniform_bounded(
    instance: &Instance,
    law: PowerLaw,
    s_max: f64,
) -> SimResult<(Schedule, Evaluated)> {
    check_cap(s_max)?;
    if !instance.is_uniform_density() {
        return Err(SimError::NonUniformDensity);
    }
    let jobs = instance.jobs();
    let u_cap = law.power(s_max);
    let mut builder = ScheduleBuilder::new(law);
    let mut t = 0.0f64;

    for (j, job) in jobs.iter().enumerate() {
        t = t.max(job.release);
        let rho = job.density;
        let k_j = base_power(instance, law, j)?;
        let u_end = k_j + job.weight();
        if k_j < u_cap {
            // Growth phase up to the cap (or completion).
            let kernel = GrowthKernel { law, u0: k_j, rho };
            let u_stop = u_end.min(u_cap);
            let tau = kernel.time_to_u(u_stop);
            builder.push(Segment::new(t, t + tau, Some(j), SpeedLaw::Growth { u0: k_j, rho }));
            t += tau;
            if u_stop < u_end {
                // Saturated phase: remaining volume at the cap speed.
                let rem = (u_end - u_cap) / rho;
                let tau2 = rem / s_max;
                builder.push(Segment::new(t, t + tau2, Some(j), SpeedLaw::Constant { speed: s_max }));
                t += tau2;
            }
        } else {
            // The base power already exceeds the cap: the whole job runs
            // saturated.
            let tau = job.volume / s_max;
            builder.push(Segment::new(t, t + tau, Some(j), SpeedLaw::Constant { speed: s_max }));
            t += tau;
        }
    }

    let schedule = builder.build()?;
    let ev = evaluate(&schedule, instance)?;
    Ok((schedule, ev))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_c, run_nc_uniform};
    use ncss_sim::numeric::rel_diff;
    use ncss_sim::Job;

    fn pl(alpha: f64) -> PowerLaw {
        PowerLaw::new(alpha).unwrap()
    }

    fn inst() -> Instance {
        Instance::new(vec![
            Job::unit_density(0.0, 2.0),
            Job::unit_density(0.3, 1.0),
            Job::unit_density(0.8, 0.5),
        ])
        .unwrap()
    }

    #[test]
    fn rejects_bad_cap_and_mixed_density() {
        assert!(run_c_bounded(&inst(), pl(2.0), 0.0).is_err());
        assert!(run_nc_uniform_bounded(&inst(), pl(2.0), f64::INFINITY).is_err());
        let mixed = Instance::new(vec![Job::new(0.0, 1.0, 1.0), Job::new(0.1, 1.0, 2.0)]).unwrap();
        assert!(run_nc_uniform_bounded(&mixed, pl(2.0), 1.0).is_err());
    }

    #[test]
    fn huge_cap_recovers_unbounded_runs() {
        let law = pl(3.0);
        let (_, c_b) = run_c_bounded(&inst(), law, 1e6).unwrap();
        let c = run_c(&inst(), law).unwrap();
        assert!(rel_diff(c_b.objective.fractional(), c.objective.fractional()) < 1e-7);

        let (_, nc_b) = run_nc_uniform_bounded(&inst(), law, 1e6).unwrap();
        let nc = run_nc_uniform(&inst(), law).unwrap();
        assert!(rel_diff(nc_b.objective.fractional(), nc.objective.fractional()) < 1e-7);
    }

    #[test]
    fn cap_never_exceeded() {
        let law = pl(2.0);
        let s_max = 0.9;
        let (sched, _) = run_c_bounded(&inst(), law, s_max).unwrap();
        assert!(sched.max_speed() <= s_max + 1e-9);
        let (sched, _) = run_nc_uniform_bounded(&inst(), law, s_max).unwrap();
        assert!(sched.max_speed() <= s_max + 1e-9);
    }

    #[test]
    fn tighter_cap_costs_more_flow_less_energy_rate() {
        let law = pl(3.0);
        let (_, loose) = run_c_bounded(&inst(), law, 5.0).unwrap();
        let (_, tight) = run_c_bounded(&inst(), law, 0.7).unwrap();
        // A binding cap delays everything.
        assert!(tight.objective.frac_flow > loose.objective.frac_flow);
        // And caps the instantaneous power (total energy may go either way;
        // the integral flow must rise).
        assert!(tight.objective.int_flow > loose.objective.int_flow);
    }

    #[test]
    fn energy_equality_exact_for_single_job_close_for_many() {
        // For a single job, the capped growth curve is the capped decay
        // curve in reverse, so the Lemma 3 energy equality is exact. On
        // multi-job instances the cap binds against *different* weight
        // levels in the two algorithms (C caps on total remaining weight,
        // NC per service stint), so the equality becomes approximate —
        // measured here at well under 1%.
        let law = pl(2.0);
        let single = Instance::new(vec![Job::unit_density(0.0, 2.0)]).unwrap();
        for s_max in [0.8, 1.5, 3.0] {
            let (_, c) = run_c_bounded(&single, law, s_max).unwrap();
            let (_, nc) = run_nc_uniform_bounded(&single, law, s_max).unwrap();
            assert!(
                rel_diff(c.objective.energy, nc.objective.energy) < 1e-7,
                "single job, s_max={s_max}: C {} vs NC {}",
                c.objective.energy,
                nc.objective.energy
            );
        }
        for s_max in [0.8, 1.5, 3.0] {
            let (_, c) = run_c_bounded(&inst(), law, s_max).unwrap();
            let (_, nc) = run_nc_uniform_bounded(&inst(), law, s_max).unwrap();
            assert!(
                rel_diff(c.objective.energy, nc.objective.energy) < 0.01,
                "multi-job, s_max={s_max}: C {} vs NC {}",
                c.objective.energy,
                nc.objective.energy
            );
        }
    }

    #[test]
    fn all_volume_processed() {
        let law = pl(2.5);
        let (sched, ev) = run_nc_uniform_bounded(&inst(), law, 1.1).unwrap();
        assert!(rel_diff(sched.total_volume(), inst().total_volume()) < 1e-9);
        for c in &ev.per_job.completion {
            assert!(c.is_finite());
        }
    }
}
