//! Algorithm NC for non-uniform densities (Section 4) — the paper's second
//! main contribution.
//!
//! The algorithm:
//!
//! 1. Round every density **down to a power of β** (the analysis needs
//!    β > 4; the rounding base is a parameter here).
//! 2. Process the active job with the highest *rounded* density, FIFO among
//!    equal rounded densities.
//! 3. At time `t`, run at `η` times the speed Algorithm C would have at
//!    time `t` on the **current instance** `I(t)` (original release times,
//!    weights equal to what NC has processed so far), plus an arbitrarily
//!    small ε so the speed is bootstrapped away from zero.
//!
//! Unlike the uniform case, the speed rule requires a *nested* simulation of
//! Algorithm C on `I(t)` at every instant, so this run is numerically
//! integrated (midpoint rule with event-aligned adaptive steps and exact
//! completion solving) rather than closed-form. The inner C runs themselves
//! remain exact. Tolerances in tests are correspondingly looser (~1e-3).

use crate::clairvoyant::run_c;
use ncss_sim::numeric::KahanSum;
use ncss_sim::{
    Instance, Job, Objective, PerJob, PowerLaw, Schedule, ScheduleBuilder, Segment, SimError,
    SimResult, SpeedLaw,
};

/// Tunable parameters of the non-uniform algorithm.
///
/// The extended abstract defers the exact constants (η, β, ζ, γ) to the full
/// version; defaults follow the constraints its analysis states: β > 4 and
/// η > 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NonUniformParams {
    /// Density rounding base β (> 1; the paper's analysis chooses β > 4).
    pub rounding_base: f64,
    /// Speed multiplier η (> 1) applied to the current-instance C speed.
    pub eta: f64,
    /// Additive bootstrap speed ε (> 0).
    pub epsilon: f64,
    /// Integration resolution: target number of steps per job service.
    pub steps_per_job: usize,
    /// Hard cap on total integration steps (guards against mis-tuned runs).
    pub max_steps: usize,
}

impl Default for NonUniformParams {
    /// α-agnostic defaults. The speed multiplier is safe for `α ≥ 2` (see
    /// [`crate::theory::nonuniform_eta_min`]); prefer [`Self::recommended`]
    /// when α is known.
    fn default() -> Self {
        Self { rounding_base: 5.0, eta: 5.0, epsilon: 1e-3, steps_per_job: 400, max_steps: 4_000_000 }
    }
}

impl NonUniformParams {
    /// Parameters tuned for a given power-law exponent: η is set 25% above
    /// the cold-start self-sustainability threshold
    /// [`crate::theory::nonuniform_eta_min`], below which the algorithm
    /// degenerates to its ε bootstrap speed.
    #[must_use]
    pub fn recommended(alpha: f64) -> Self {
        Self { eta: 1.25 * crate::theory::nonuniform_eta_min(alpha), ..Self::default() }
    }
}

/// A completed (numerically integrated) run of non-uniform Algorithm NC.
#[derive(Debug, Clone)]
pub struct NonUniformRun {
    /// The machine schedule (piecewise-constant step segments).
    pub schedule: Schedule,
    /// Aggregate objective, measured against the **original** densities.
    pub objective: Objective,
    /// Per-job completions and flow-times (original densities).
    pub per_job: PerJob,
    /// Number of integration steps taken.
    pub steps: usize,
}

impl NonUniformRun {
    /// Makespan of the run.
    #[must_use]
    pub fn makespan(&self) -> f64 {
        self.schedule.end_time()
    }
}

/// State snapshot handed to the nested clairvoyant simulation.
struct SpeedOracle<'a> {
    law: PowerLaw,
    releases: &'a [f64],
    rounded_density: &'a [f64],
    eta: f64,
    epsilon: f64,
}

impl SpeedOracle<'_> {
    /// `η · s^{(C)}_{I(t)}(t) + ε`: the speed of Algorithm C at time `t`
    /// when run on the current instance defined by `processed` volumes.
    ///
    /// Propagates failures of the nested simulation (degenerate current
    /// instances or kernel overflow at extreme scales) instead of
    /// panicking, so the outer integrator can surface a structured error.
    fn speed(&self, t: f64, processed: &[f64]) -> SimResult<f64> {
        let mut jobs = Vec::with_capacity(processed.len());
        for (j, &v) in processed.iter().enumerate() {
            if v > 0.0 {
                jobs.push(Job { release: self.releases[j], volume: v, density: self.rounded_density[j] });
            }
        }
        let s_c = if jobs.is_empty() {
            0.0
        } else {
            let inst = Instance::new(jobs)?;
            let run = run_c(&inst, self.law)?;
            run.schedule.speed_at(t)
        };
        Ok(self.eta * s_c + self.epsilon)
    }
}

/// Run non-uniform Algorithm NC on `instance`.
pub fn run_nc_nonuniform(
    instance: &Instance,
    law: PowerLaw,
    params: NonUniformParams,
) -> SimResult<NonUniformRun> {
    if !(params.rounding_base > 1.0) {
        return Err(SimError::InvalidInstance { reason: "rounding base must be > 1" });
    }
    if !(params.eta >= 1.0) {
        return Err(SimError::InvalidInstance { reason: "eta must be >= 1" });
    }
    if !(params.epsilon > 0.0) {
        return Err(SimError::InvalidInstance { reason: "epsilon must be positive" });
    }
    let rounded = instance.with_rounded_densities(params.rounding_base)?;
    let jobs = instance.jobs();
    let n = jobs.len();
    let releases: Vec<f64> = jobs.iter().map(|j| j.release).collect();
    let rounded_density: Vec<f64> = rounded.jobs().iter().map(|j| j.density).collect();
    let oracle = SpeedOracle {
        law,
        releases: &releases,
        rounded_density: &rounded_density,
        eta: params.eta,
        epsilon: params.epsilon,
    };

    let mut processed = vec![0.0f64; n];
    let mut completion = vec![f64::NAN; n];
    let mut frac_flow = vec![KahanSum::new(); n];
    let mut energy = KahanSum::new();
    let mut builder = ScheduleBuilder::new(law);
    let mut t = jobs.first().map_or(0.0, |j| j.release);
    let mut done = 0usize;
    let mut steps = 0usize;
    // Service-stint tracking for the bootstrap time grid.
    let mut stint_job: Option<usize> = None;
    let mut stint_start = t;

    // Pick the job to serve: highest rounded density among active jobs,
    // FIFO (earliest release, then id) among ties.
    let pick = |t: f64, processed: &[f64], completion: &[f64]| -> Option<usize> {
        let mut best: Option<usize> = None;
        for j in 0..n {
            if releases[j] > t + 1e-15 || !completion[j].is_nan() {
                continue;
            }
            let _ = processed;
            match best {
                None => best = Some(j),
                Some(b) => {
                    let better = rounded_density[j] > rounded_density[b] + 1e-15
                        || ((rounded_density[j] - rounded_density[b]).abs() <= 1e-15
                            && (releases[j], j) < (releases[b], b));
                    if better {
                        best = Some(j);
                    }
                }
            }
        }
        best
    };

    while done < n {
        steps += 1;
        if steps > params.max_steps {
            return Err(SimError::NonConvergence { what: "non-uniform NC integration" });
        }
        let cur = match pick(t, &processed, &completion) {
            Some(c) => c,
            None => {
                // Idle: jump to the next release.
                let next = releases
                    .iter()
                    .zip(&completion)
                    .filter(|(r, c)| **r > t && c.is_nan())
                    .map(|(r, _)| *r)
                    .fold(f64::INFINITY, f64::min);
                if !next.is_finite() {
                    // No active job and no future release: a bookkeeping
                    // impossibility, but spin-looping in release builds is
                    // worse than reporting it.
                    return Err(SimError::Numeric { what: "run_nc_nonuniform: idle jump", value: next });
                }
                t = next;
                continue;
            }
        };

        if stint_job != Some(cur) {
            stint_job = Some(cur);
            stint_start = t;
        }
        let rem = jobs[cur].volume - processed[cur];
        let s0 = oracle.speed(t, &processed)?;
        let dt_rel = releases
            .iter()
            .filter(|&&r| r > t + 1e-15)
            .fold(f64::INFINITY, |a, &r| a.min(r - t));
        // Volume-uniform stepping: each step processes 1/steps_per_job of
        // the job's volume (a fixed grid, so service always terminates in
        // O(steps_per_job) steps), clipped at the next release.
        let dv_grid = jobs[cur].volume / params.steps_per_job as f64;
        let dv_target = dv_grid.min(rem);
        // Bootstrap time grid: the ε phase is stiff (the speed escalates on
        // the timescale t_boot at which (ρ̃εt)^β overtakes ρ̃βt), so steps
        // are additionally capped to grow geometrically from a floor well
        // below t_boot. Without this cap, the first volume step would leap
        // far past t_boot at speed ε and the nested C run would look
        // finished forever after.
        let beta = law.beta();
        let rho_r = rounded_density[cur];
        let t_boot = (params.epsilon.powf(beta) / (rho_r.powf(1.0 - beta) * beta)).powf(1.0 / (1.0 - beta));
        let dt_cap = ((t - stint_start) * 0.02).max(t_boot * 1e-2);

        // Midpoint refinement of the speed over the step.
        let dt_guess = (dv_target / s0).min(dt_cap).min(dt_rel);
        let mut half = processed.clone();
        half[cur] += s0 * dt_guess * 0.5;
        let s_mid = oracle.speed(t + dt_guess * 0.5, &half)?;
        if !s_mid.is_finite() {
            return Err(SimError::Numeric { what: "run_nc_nonuniform: speed", value: s_mid });
        }
        let mut dt = (dv_target / s_mid).min(dt_cap).min(dt_rel);
        let mut dv = s_mid * dt;
        let mut completes = dv >= rem * (1.0 - 1e-12);
        if completes {
            dv = rem;
            dt = rem / s_mid;
            if dt > dt_rel {
                completes = false;
                dt = dt_rel;
                dv = s_mid * dt;
            }
        }
        if !(dt.is_finite() && dt >= 0.0) {
            return Err(SimError::Numeric { what: "run_nc_nonuniform: step size", value: dt });
        }

        builder.push(Segment::new(t, t + dt, Some(cur), SpeedLaw::Constant { speed: s_mid }));
        energy.add(law.power(s_mid) * dt);
        // Fractional flow accrual with ORIGINAL densities: waiting jobs hold
        // constant remaining volume; the served job drains linearly.
        for j in 0..n {
            if releases[j] > t + 1e-15 || !completion[j].is_nan() {
                continue;
            }
            let rem_j = jobs[j].volume - processed[j];
            if j == cur {
                frac_flow[j].add(jobs[j].density * (rem_j * dt - 0.5 * s_mid * dt * dt));
            } else {
                frac_flow[j].add(jobs[j].density * rem_j * dt);
            }
        }
        processed[cur] += dv;
        t += dt;
        if completes {
            processed[cur] = jobs[cur].volume;
            completion[cur] = t;
            done += 1;
        }
    }

    let frac: Vec<f64> = frac_flow.iter().map(KahanSum::value).collect();
    let int_flow: Vec<f64> = jobs
        .iter()
        .enumerate()
        .map(|(j, job)| job.weight() * (completion[j] - job.release))
        .collect();
    let objective = Objective {
        energy: energy.value(),
        frac_flow: frac.iter().sum(),
        int_flow: int_flow.iter().sum(),
    }
    .validated("run_nc_nonuniform: objective")?;
    Ok(NonUniformRun {
        schedule: builder.build()?,
        objective,
        per_job: PerJob { completion, frac_flow: frac, int_flow },
        steps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clairvoyant::run_c;
    use ncss_sim::numeric::approx_eq;

    fn pl(alpha: f64) -> PowerLaw {
        PowerLaw::new(alpha).unwrap()
    }

    fn mixed_instance() -> Instance {
        Instance::new(vec![
            Job::new(0.0, 1.0, 1.0),
            Job::new(0.2, 0.5, 6.0),
            Job::new(0.5, 0.8, 1.0),
            Job::new(1.0, 0.3, 30.0),
        ])
        .unwrap()
    }

    #[test]
    fn completes_all_jobs() {
        let run = run_nc_nonuniform(&mixed_instance(), pl(3.0), NonUniformParams::default()).unwrap();
        for (j, c) in run.per_job.completion.iter().enumerate() {
            assert!(c.is_finite(), "job {j} incomplete");
        }
        assert!(run.objective.fractional() > 0.0);
    }

    #[test]
    fn accounting_matches_independent_evaluator() {
        let inst = mixed_instance();
        let run = run_nc_nonuniform(&inst, pl(2.5), NonUniformParams::default()).unwrap();
        let ev = ncss_sim::evaluate(&run.schedule, &inst).unwrap();
        assert!(approx_eq(ev.objective.energy, run.objective.energy, 1e-6));
        assert!(approx_eq(ev.objective.frac_flow, run.objective.frac_flow, 1e-5));
        assert!(approx_eq(ev.objective.int_flow, run.objective.int_flow, 1e-5));
    }

    #[test]
    fn hdf_on_rounded_densities() {
        // Job 1 (rounded density 5) arrives while job 0 (density 1) runs and
        // must preempt it.
        let inst = Instance::new(vec![Job::new(0.0, 2.0, 1.0), Job::new(0.5, 0.1, 6.0)]).unwrap();
        let run = run_nc_nonuniform(&inst, pl(2.0), NonUniformParams::default()).unwrap();
        assert!(run.per_job.completion[1] < run.per_job.completion[0]);
    }

    #[test]
    fn same_rounded_bucket_is_fifo() {
        // Densities 1.0 and 1.4 both round to 1 (base 5): FIFO order wins,
        // so the earlier, slightly-lower-density job finishes first.
        let inst = Instance::new(vec![Job::new(0.0, 1.0, 1.0), Job::new(0.1, 0.2, 1.4)]).unwrap();
        let run = run_nc_nonuniform(&inst, pl(2.0), NonUniformParams::default()).unwrap();
        assert!(run.per_job.completion[0] < run.per_job.completion[1]);
    }

    #[test]
    fn epsilon_bootstraps_from_zero() {
        // A single job: the current instance starts empty, so without ε the
        // speed would be stuck at zero forever.
        let inst = Instance::new(vec![Job::new(0.0, 1.0, 1.0)]).unwrap();
        let run = run_nc_nonuniform(&inst, pl(3.0), NonUniformParams::default()).unwrap();
        assert!(run.per_job.completion[0].is_finite());
        assert!(run.per_job.completion[0] > 0.0);
    }

    #[test]
    fn cost_within_constant_of_clairvoyant() {
        // Sanity envelope, not the paper's constant: the measured fractional
        // cost should stay within a modest multiple of Algorithm C's.
        let inst = mixed_instance();
        let c = run_c(&inst, pl(3.0)).unwrap();
        let nc = run_nc_nonuniform(&inst, pl(3.0), NonUniformParams::recommended(3.0)).unwrap();
        let ratio = nc.objective.fractional() / c.objective.fractional();
        // The energy overhead alone is η^α ≈ 34 at the recommended η.
        assert!(ratio < 60.0, "ratio {ratio}");
        assert!(ratio > 0.5, "suspiciously cheap: {ratio}");
    }

    #[test]
    fn higher_eta_reduces_flow_time() {
        let inst = mixed_instance();
        let law = pl(3.0);
        // Both multipliers are above eta_min(3) ≈ 2.6, so neither run
        // degenerates to the ε crawl; the faster one must wait less.
        let lo = run_nc_nonuniform(&inst, law, NonUniformParams { eta: 3.0, ..Default::default() }).unwrap();
        let hi = run_nc_nonuniform(&inst, law, NonUniformParams { eta: 8.0, ..Default::default() }).unwrap();
        assert!(hi.objective.frac_flow < lo.objective.frac_flow);
    }

    #[test]
    fn below_eta_min_degenerates_to_crawl() {
        // With η far below the self-sustainability threshold, the nested C
        // run finishes before "now" and the speed collapses to ε, making
        // the run dramatically more expensive.
        let inst = Instance::new(vec![Job::new(0.0, 1.0, 1.0)]).unwrap();
        let law = pl(3.0);
        let good = run_nc_nonuniform(&inst, law, NonUniformParams::recommended(3.0)).unwrap();
        let bad = run_nc_nonuniform(&inst, law, NonUniformParams { eta: 1.0, ..Default::default() }).unwrap();
        assert!(bad.objective.frac_flow > 10.0 * good.objective.frac_flow);
    }

    #[test]
    fn rejects_bad_params() {
        let inst = mixed_instance();
        let law = pl(2.0);
        assert!(run_nc_nonuniform(&inst, law, NonUniformParams { rounding_base: 1.0, ..Default::default() }).is_err());
        assert!(run_nc_nonuniform(&inst, law, NonUniformParams { eta: 0.5, ..Default::default() }).is_err());
        assert!(run_nc_nonuniform(&inst, law, NonUniformParams { epsilon: 0.0, ..Default::default() }).is_err());
    }

    #[test]
    fn resolution_convergence() {
        // Doubling the resolution should move the objective by little.
        let inst = mixed_instance();
        let law = pl(3.0);
        let coarse = run_nc_nonuniform(&inst, law, NonUniformParams { steps_per_job: 150, ..Default::default() }).unwrap();
        let fine = run_nc_nonuniform(&inst, law, NonUniformParams { steps_per_job: 600, ..Default::default() }).unwrap();
        assert!(
            approx_eq(coarse.objective.fractional(), fine.objective.fractional(), 5e-3),
            "coarse {} vs fine {}",
            coarse.objective.fractional(),
            fine.objective.fractional()
        );
    }
}
