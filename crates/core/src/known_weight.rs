//! The contrasting non-clairvoyant model: **known weights, unknown
//! densities** (Chan–Edmonds–Lam–Lee–Marchetti-Spaccamela–Pruhs;
//! Lam–Lee–To–Wong) — Table 1's comparison column.
//!
//! Here a job's weight is revealed at release but its volume (hence
//! density) is not. The clairvoyant `P = remaining weight` rule is not
//! implementable (remaining weight is unknown), but `P = total weight of
//! active jobs` is, and with unknown volumes no ordering information
//! exists, so the natural algorithm is **weighted processor sharing**: all
//! active jobs run simultaneously, each receiving a speed share
//! proportional to its weight, with the total power equal to the active
//! weight. For unit weights this is exactly the round-robin + `P = #active
//! jobs` algorithm the paper cites with ratio `2α²/ln α`.
//!
//! Processor sharing does not fit the single-job-per-segment
//! [`ncss_sim::Schedule`]
//! model, so this run accounts its objective directly (events are releases
//! and completions; between events every remaining volume drains linearly).

use ncss_sim::{Instance, Objective, PerJob, PowerLaw, SimError, SimResult};

/// Outcome of the known-weight processor-sharing run.
#[derive(Debug, Clone)]
pub struct SharedRun {
    /// Aggregate objective.
    pub objective: Objective,
    /// Per-job outcomes.
    pub per_job: PerJob,
    /// Piecewise-constant (start, end, speed) profile, for inspection.
    pub speed_profile: Vec<(f64, f64, f64)>,
}

/// Run weighted processor sharing with `P(speed) = total active weight`.
///
/// The implementation may read `job.weight()` (public in this model) but
/// never a volume except through completion events, which the event loop
/// itself generates.
pub fn run_known_weight_sharing(instance: &Instance, law: PowerLaw) -> SimResult<SharedRun> {
    let jobs = instance.jobs();
    let n = jobs.len();
    let mut remaining: Vec<f64> = jobs.iter().map(|j| j.volume).collect();
    let mut completion = vec![f64::NAN; n];
    let mut frac_flow = vec![0.0; n];
    let mut energy = 0.0;
    let mut profile = Vec::new();

    let mut active: Vec<usize> = Vec::new();
    let mut next = 0usize;
    let mut t = jobs.first().map_or(0.0, |j| j.release);
    let admit = |t: f64, next: &mut usize, active: &mut Vec<usize>| {
        while *next < n && jobs[*next].release <= t {
            active.push(*next);
            *next += 1;
        }
    };
    admit(t, &mut next, &mut active);

    let mut guard = 0usize;
    while !active.is_empty() || next < n {
        guard += 1;
        if guard > 4 * n + 16 {
            return Err(SimError::NonConvergence { what: "processor sharing event loop" });
        }
        if active.is_empty() {
            t = jobs[next].release;
            admit(t, &mut next, &mut active);
            continue;
        }
        let total_weight: f64 = active.iter().map(|&j| jobs[j].weight()).sum();
        let speed = law.speed_for_power(total_weight);
        // Weighted shares: job j drains at speed * w_j / W_total.
        let share = |j: usize| speed * jobs[j].weight() / total_weight;
        // Next event: earliest completion or next release.
        let t_complete = active
            .iter()
            .map(|&j| t + remaining[j] / share(j))
            .fold(f64::INFINITY, f64::min);
        let t_release = if next < n { jobs[next].release } else { f64::INFINITY };
        let t_end = t_complete.min(t_release);
        let tau = t_end - t;

        if tau > 0.0 {
            profile.push((t, t_end, speed));
            energy += law.power(speed) * tau;
            for &j in &active {
                let drain = share(j);
                // ∫ rho_j V_j over the segment: V_j decreases linearly.
                frac_flow[j] += jobs[j].density * (remaining[j] * tau - 0.5 * drain * tau * tau);
                remaining[j] -= drain * tau;
            }
        }
        t = t_end;
        // Jobs completing at this event (allow simultaneous finishes).
        active.retain(|&j| {
            if remaining[j] <= 1e-9 * jobs[j].volume {
                remaining[j] = 0.0;
                completion[j] = t;
                false
            } else {
                true
            }
        });
        admit(t, &mut next, &mut active);
    }

    let int_flow: Vec<f64> = jobs
        .iter()
        .enumerate()
        .map(|(j, job)| job.weight() * (completion[j] - job.release))
        .collect();
    let objective = Objective {
        energy,
        frac_flow: frac_flow.iter().sum(),
        int_flow: int_flow.iter().sum(),
    }
    .validated("run_known_weight_sharing: objective")?;
    Ok(SharedRun {
        objective,
        per_job: PerJob { completion, frac_flow, int_flow },
        speed_profile: profile,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_c;
    use crate::theory;
    use ncss_sim::numeric::approx_eq;
    use ncss_sim::Job;

    fn pl(alpha: f64) -> PowerLaw {
        PowerLaw::new(alpha).unwrap()
    }

    #[test]
    fn single_job_runs_at_weight_power() {
        // One job of weight 4: speed = 4^{1/2} = 2 throughout (alpha = 2).
        let inst = Instance::new(vec![Job::new(0.0, 2.0, 2.0)]).unwrap();
        let run = run_known_weight_sharing(&inst, pl(2.0)).unwrap();
        assert_eq!(run.speed_profile.len(), 1);
        assert!(approx_eq(run.speed_profile[0].2, 2.0, 1e-12));
        assert!(approx_eq(run.per_job.completion[0], 1.0, 1e-9));
        // Energy = 4 * 1 = 4; frac flow = 2 * ∫(2-2t)dt = 2.
        assert!(approx_eq(run.objective.energy, 4.0, 1e-9));
        assert!(approx_eq(run.objective.frac_flow, 2.0, 1e-9));
    }

    #[test]
    fn equal_jobs_finish_together() {
        let inst = Instance::new(vec![Job::unit_density(0.0, 1.0), Job::unit_density(0.0, 1.0)]).unwrap();
        let run = run_known_weight_sharing(&inst, pl(3.0)).unwrap();
        assert!(approx_eq(run.per_job.completion[0], run.per_job.completion[1], 1e-9));
    }

    #[test]
    fn heavier_job_drains_faster() {
        // Same volume, different weights: the heavy job gets the bigger
        // share and finishes first.
        let inst = Instance::new(vec![Job::new(0.0, 1.0, 1.0), Job::new(0.0, 1.0, 4.0)]).unwrap();
        let run = run_known_weight_sharing(&inst, pl(2.0)).unwrap();
        assert!(run.per_job.completion[1] < run.per_job.completion[0]);
    }

    #[test]
    fn stays_within_cited_band_on_unit_weights() {
        // The cited ratio for unit weights is 2 alpha^2 / ln(alpha) against
        // OPT; against the 2-competitive Algorithm C this allows a factor
        // alpha^2 / ln(alpha) at most — generous, but the point of the
        // comparison column is that it is *much worse* than the paper's
        // known-density constants on adversarial volume spreads.
        let alpha = 3.0;
        let law = pl(alpha);
        // Unit weights, wildly varying volumes (density = 1/volume).
        let inst = Instance::new(vec![
            Job::new(0.0, 4.0, 0.25),
            Job::new(0.1, 0.05, 20.0),
            Job::new(0.2, 1.0, 1.0),
        ])
        .unwrap();
        let shared = run_known_weight_sharing(&inst, law).unwrap();
        let c = run_c(&inst, law).unwrap();
        let ratio = shared.objective.fractional() / c.objective.fractional();
        assert!(ratio >= 1.0 - 1e-9, "sharing should not beat clairvoyant C: {ratio}");
        assert!(
            ratio <= theory::known_weight_unit_bound(alpha),
            "ratio {ratio} vs cited band {}",
            theory::known_weight_unit_bound(alpha)
        );
    }

    #[test]
    fn releases_interleave_correctly() {
        let inst = Instance::new(vec![
            Job::unit_density(0.0, 1.0),
            Job::unit_density(0.3, 0.5),
            Job::unit_density(5.0, 0.2),
        ])
        .unwrap();
        let run = run_known_weight_sharing(&inst, pl(2.5)).unwrap();
        for c in &run.per_job.completion {
            assert!(c.is_finite());
        }
        // An idle gap exists before the last job.
        assert!(run.per_job.completion[1] < 5.0);
        assert!(run.per_job.completion[2] > 5.0);
    }
}
