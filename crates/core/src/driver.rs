//! The online non-clairvoyant game, with the information firewall enforced
//! **by construction**.
//!
//! The paper (Section 1.2) frames the problem as a game: at every moment
//! the adversary may declare a job finished, and the algorithm reacts with
//! a speed. Everywhere else in this workspace the algorithms are simulated
//! directly (with module discipline keeping them honest); this module
//! instead runs policies through a [`NcView`] that *physically* contains
//! only what a non-clairvoyant scheduler may know:
//!
//! * releases seen so far (id, release time, density — never volume),
//! * the volume the policy itself has processed per job,
//! * completion notifications, which also reveal the finished job's volume.
//!
//! A policy answers with a job and an analytic [`SpeedLaw`]; the driver
//! (which holds the ground truth) executes the law until the next release
//! or completion and re-queries. Because the paper's algorithms use exact
//! growth curves, the interface speaks speed *laws*, not sampled constants
//! — [`NcUniformPolicy`] reproduces `run_nc_uniform` to machine precision
//! through the firewall, which is the strongest possible evidence that the
//! algorithm never peeks at a volume.

use crate::clairvoyant::run_c;
use ncss_sim::{
    evaluate, Evaluated, Instance, Job, PowerLaw, Schedule, ScheduleBuilder, Segment, SimError,
    SimResult, SpeedLaw,
};

/// A release visible to the policy (no volume!).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReleasedJob {
    /// Job id (index in release order).
    pub id: usize,
    /// Release time.
    pub release: f64,
    /// Density ρ (public at release in the known-density model).
    pub density: f64,
}

/// Everything a non-clairvoyant policy may observe.
#[derive(Debug)]
pub struct NcView<'a> {
    /// Current time.
    pub now: f64,
    /// Jobs released so far, in release order.
    pub released: &'a [ReleasedJob],
    /// Volume processed *by this policy* per released job.
    pub processed: &'a [f64],
    /// For each released job, the revealed volume if it has completed.
    pub revealed_volume: &'a [Option<f64>],
    /// The power law in force.
    pub law: PowerLaw,
}

impl NcView<'_> {
    /// Ids of released jobs not yet completed, in release order.
    #[must_use]
    pub fn active(&self) -> Vec<usize> {
        self.released
            .iter()
            .filter(|r| self.revealed_volume[r.id].is_none())
            .map(|r| r.id)
            .collect()
    }
}

/// A policy's answer: which job to serve under which speed law (until the
/// driver reports the next event).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Decision {
    /// Job to serve (`None` = idle until the next release).
    pub job: Option<usize>,
    /// Speed law while serving.
    pub law: SpeedLaw,
}

/// An online non-clairvoyant scheduling policy.
pub trait NonClairvoyantPolicy {
    /// Choose the next action given the (volume-free) view.
    fn decide(&mut self, view: &NcView<'_>) -> Decision;

    /// Display name.
    fn name(&self) -> &'static str;
}

/// Drive `policy` over `instance` (whose volumes stay on this side of the
/// firewall) and return the evaluated schedule.
pub fn run_online(
    instance: &Instance,
    law: PowerLaw,
    policy: &mut dyn NonClairvoyantPolicy,
) -> SimResult<(Schedule, Evaluated)> {
    let jobs = instance.jobs();
    let n = jobs.len();
    let mut processed = vec![0.0f64; n];
    let mut revealed: Vec<Option<f64>> = vec![None; n];
    let mut released: Vec<ReleasedJob> = Vec::new();
    let mut next = 0usize;
    let mut t = jobs.first().map_or(0.0, |j| j.release);
    let mut builder = ScheduleBuilder::new(law);
    let mut done = 0usize;
    let mut guard = 0usize;

    let admit = |t: f64, next: &mut usize, released: &mut Vec<ReleasedJob>| {
        while *next < n && jobs[*next].release <= t {
            released.push(ReleasedJob { id: *next, release: jobs[*next].release, density: jobs[*next].density });
            *next += 1;
        }
    };
    admit(t, &mut next, &mut released);

    while done < n {
        guard += 1;
        if guard > 20 * n + 64 {
            return Err(SimError::NonConvergence { what: "online driver event loop" });
        }
        let decision = {
            let view = NcView { now: t, released: &released, processed: &processed, revealed_volume: &revealed, law };
            policy.decide(&view)
        };
        let t_release = if next < n { jobs[next].release } else { f64::INFINITY };

        let Some(j) = decision.job else {
            // Idle. If nothing will ever be released again, the policy is
            // stuck with unfinished work.
            if !t_release.is_finite() {
                return Err(SimError::InvalidInstance { reason: "policy idles with active jobs and no future releases" });
            }
            t = t_release;
            admit(t, &mut next, &mut released);
            continue;
        };
        if j >= n || revealed[j].is_some() || jobs[j].release > t {
            return Err(SimError::InvalidInstance { reason: "policy chose an invalid job" });
        }

        // Execute the law until the job completes (driver-side knowledge)
        // or the next release.
        let probe = Segment::new(t, t + 1e18, Some(j), decision.law);
        let remaining = jobs[j].volume - processed[j];
        let t_complete = probe.time_at_volume(law, remaining).unwrap_or(f64::INFINITY);
        if !t_complete.is_finite() && !t_release.is_finite() {
            return Err(SimError::InvalidInstance { reason: "policy makes no progress and nothing arrives" });
        }
        let completes = t_complete <= t_release;
        let t_end = if completes { t_complete } else { t_release };
        if t_end > t {
            let seg = Segment::new(t, t_end, Some(j), decision.law);
            processed[j] += seg.volume(law);
            builder.push(seg);
        }
        t = t_end;
        if completes {
            processed[j] = jobs[j].volume;
            revealed[j] = Some(jobs[j].volume); // the adversary reveals V_j
            done += 1;
        }
        admit(t, &mut next, &mut released);
    }

    let schedule = builder.build()?;
    let ev = evaluate(&schedule, instance)?;
    Ok((schedule, ev))
}

/// The paper's Algorithm NC (uniform density) expressed as an online
/// policy: FIFO order, growth law `P = W^{(C)}(r_j^-) + W̆_j(t)`, where the
/// clairvoyant prefix simulation uses **only revealed volumes** — all jobs
/// released before `r_j` have completed (FIFO), so their volumes are known.
#[derive(Debug, Default)]
pub struct NcUniformPolicy;

impl NonClairvoyantPolicy for NcUniformPolicy {
    fn decide(&mut self, view: &NcView<'_>) -> Decision {
        let Some(&j) = view.active().first() else {
            return Decision { job: None, law: SpeedLaw::Idle };
        };
        let me = view.released[j];
        // Rebuild the known prefix from revealed volumes.
        let mut prefix = Vec::new();
        let mut ties = 0.0;
        for r in view.released {
            if r.id == j {
                break;
            }
            if let Some(v) = view.revealed_volume[r.id] {
                if r.release < me.release {
                    prefix.push(Job { release: r.release, volume: v, density: r.density });
                } else {
                    ties += r.density * v; // distinct-release-limit tie rule
                }
            }
        }
        let base = if prefix.is_empty() {
            0.0
        } else {
            let inst = Instance::new(prefix).expect("revealed prefix is valid");
            run_c(&inst, view.law).expect("prefix C run").remaining_weight_before(me.release)
        };
        let u0 = base + ties + me.density * view.processed[j];
        Decision { job: Some(j), law: SpeedLaw::Growth { u0, rho: me.density } }
    }

    fn name(&self) -> &'static str {
        "nc-uniform (online)"
    }
}

/// The `P = #active` baseline as an online policy (FIFO service order).
#[derive(Debug, Default)]
pub struct ActiveCountPolicy;

impl NonClairvoyantPolicy for ActiveCountPolicy {
    fn decide(&mut self, view: &NcView<'_>) -> Decision {
        let active = view.active();
        let Some(&j) = active.first() else {
            return Decision { job: None, law: SpeedLaw::Idle };
        };
        let speed = view.law.speed_for_power(active.len() as f64);
        Decision { job: Some(j), law: SpeedLaw::Constant { speed } }
    }

    fn name(&self) -> &'static str {
        "active-count (online)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::run_active_count;
    use crate::nc_uniform::run_nc_uniform;
    use ncss_sim::numeric::rel_diff;

    fn pl(alpha: f64) -> PowerLaw {
        PowerLaw::new(alpha).unwrap()
    }

    fn instances() -> Vec<Instance> {
        vec![
            Instance::new(vec![Job::unit_density(0.0, 1.5)]).unwrap(),
            Instance::new(vec![
                Job::unit_density(0.0, 1.0),
                Job::unit_density(0.3, 2.0),
                Job::unit_density(0.5, 0.4),
                Job::unit_density(4.0, 0.9),
            ])
            .unwrap(),
            Instance::new(vec![
                Job::unit_density(0.0, 0.7),
                Job::unit_density(0.0, 1.1),
            ])
            .unwrap(),
        ]
    }

    #[test]
    fn firewalled_nc_matches_direct_simulation() {
        // The strongest non-clairvoyance certificate: the policy sees no
        // volumes yet reproduces the direct simulation exactly.
        for alpha in [2.0, 3.0] {
            for inst in instances() {
                let direct = run_nc_uniform(&inst, pl(alpha)).unwrap();
                let mut policy = NcUniformPolicy;
                let (_, online) = run_online(&inst, pl(alpha), &mut policy).unwrap();
                assert!(
                    rel_diff(online.objective.fractional(), direct.objective.fractional()) < 1e-7,
                    "alpha={alpha}: online {} vs direct {}",
                    online.objective.fractional(),
                    direct.objective.fractional()
                );
                for j in 0..inst.len() {
                    assert!(rel_diff(online.per_job.completion[j], direct.per_job.completion[j]) < 1e-7);
                }
            }
        }
    }

    #[test]
    fn firewalled_active_count_matches_baseline() {
        for inst in instances() {
            let direct = run_active_count(&inst, pl(2.5)).unwrap();
            let mut policy = ActiveCountPolicy;
            let (_, online) = run_online(&inst, pl(2.5), &mut policy).unwrap();
            assert!(rel_diff(online.objective.fractional(), direct.objective.fractional()) < 1e-7);
        }
    }

    #[test]
    fn stalled_policy_is_rejected() {
        struct Lazy;
        impl NonClairvoyantPolicy for Lazy {
            fn decide(&mut self, _view: &NcView<'_>) -> Decision {
                Decision { job: None, law: SpeedLaw::Idle }
            }
            fn name(&self) -> &'static str {
                "lazy"
            }
        }
        let inst = Instance::new(vec![Job::unit_density(0.0, 1.0)]).unwrap();
        assert!(run_online(&inst, pl(2.0), &mut Lazy).is_err());
    }

    #[test]
    fn invalid_job_choice_is_rejected() {
        struct Confused;
        impl NonClairvoyantPolicy for Confused {
            fn decide(&mut self, _view: &NcView<'_>) -> Decision {
                Decision { job: Some(999), law: SpeedLaw::Constant { speed: 1.0 } }
            }
            fn name(&self) -> &'static str {
                "confused"
            }
        }
        let inst = Instance::new(vec![Job::unit_density(0.0, 1.0)]).unwrap();
        assert!(run_online(&inst, pl(2.0), &mut Confused).is_err());
    }

    #[test]
    fn zero_speed_progress_is_rejected() {
        struct Frozen;
        impl NonClairvoyantPolicy for Frozen {
            fn decide(&mut self, view: &NcView<'_>) -> Decision {
                Decision { job: view.active().first().copied(), law: SpeedLaw::Constant { speed: 0.0 } }
            }
            fn name(&self) -> &'static str {
                "frozen"
            }
        }
        let inst = Instance::new(vec![Job::unit_density(0.0, 1.0)]).unwrap();
        assert!(run_online(&inst, pl(2.0), &mut Frozen).is_err());
    }
}
