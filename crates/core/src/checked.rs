//! Checked-mode execution: run an algorithm, then audit it.
//!
//! [`run_checked`] wraps the single-machine algorithms so any run can be
//! executed with the independent `ncss-audit` invariant checker attached.
//! Degradation is graceful at every layer: an algorithm that fails returns
//! its structured [`ncss_sim::SimError`] untouched, and an audit that finds
//! violations reports them in [`CheckedRun::report`] rather than erroring —
//! the caller decides whether a failed audit is fatal.

use crate::known_weight::run_known_weight_sharing;
use crate::nc_nonuniform::NonUniformParams;
use crate::{run_c, run_nc_nonuniform, run_nc_uniform};
use ncss_audit::{AuditConfig, AuditReport, ScheduleAudit};
use ncss_sim::{Evaluated, Instance, Objective, PerJob, PowerLaw, Schedule, SimResult};

/// Which algorithm to execute under the audit harness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CheckedAlgorithm {
    /// Clairvoyant Algorithm C (HDF, `power = remaining weight`).
    C,
    /// Non-clairvoyant Algorithm NC for uniform densities.
    NcUniform,
    /// Non-clairvoyant Algorithm NC for arbitrary densities.
    NcNonUniform(NonUniformParams),
    /// Known-weight weighted processor sharing (schedule-less; audited with
    /// the outcome-level checks only).
    KnownWeightSharing,
}

/// An algorithm run plus its audit verdicts.
#[derive(Debug, Clone)]
pub struct CheckedRun {
    /// The run's reported objective.
    pub objective: Objective,
    /// The run's reported per-job outcomes.
    pub per_job: PerJob,
    /// The schedule, for algorithms that produce one.
    pub schedule: Option<Schedule>,
    /// Verdicts from the independent auditor.
    pub report: AuditReport,
}

impl CheckedRun {
    /// True when the run completed *and* every audited invariant held.
    #[must_use]
    pub fn audit_passed(&self) -> bool {
        self.report.passed()
    }
}

/// Execute `algorithm` on `instance` and audit the result.
///
/// Returns `Err` only when the algorithm itself fails (invalid input,
/// numeric guard, non-convergence); audit findings never error.
pub fn run_checked(
    instance: &Instance,
    law: PowerLaw,
    algorithm: CheckedAlgorithm,
    config: AuditConfig,
) -> SimResult<CheckedRun> {
    let auditor = ScheduleAudit::new(config);
    let audited = |schedule: Schedule, objective: Objective, per_job: PerJob| {
        let reported = Evaluated { objective, per_job };
        let report = auditor.audit(instance, &schedule, &reported);
        CheckedRun {
            objective: reported.objective,
            per_job: reported.per_job,
            schedule: Some(schedule),
            report,
        }
    };
    Ok(match algorithm {
        CheckedAlgorithm::C => {
            let run = run_c(instance, law)?;
            audited(run.schedule, run.objective, run.per_job)
        }
        CheckedAlgorithm::NcUniform => {
            let run = run_nc_uniform(instance, law)?;
            audited(run.schedule, run.objective, run.per_job)
        }
        CheckedAlgorithm::NcNonUniform(params) => {
            let run = run_nc_nonuniform(instance, law, params)?;
            audited(run.schedule, run.objective, run.per_job)
        }
        CheckedAlgorithm::KnownWeightSharing => {
            let run = run_known_weight_sharing(instance, law)?;
            let report = auditor.audit_outcome(instance, &run.objective, &run.per_job);
            CheckedRun { objective: run.objective, per_job: run.per_job, schedule: None, report }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncss_sim::Job;

    fn pl(alpha: f64) -> PowerLaw {
        PowerLaw::new(alpha).unwrap()
    }

    fn instance() -> Instance {
        Instance::new(vec![
            Job::unit_density(0.0, 1.0),
            Job::unit_density(0.2, 2.0),
            Job::unit_density(0.9, 0.5),
        ])
        .unwrap()
    }

    #[test]
    fn c_and_nc_pass_with_tight_residuals() {
        for algo in [CheckedAlgorithm::C, CheckedAlgorithm::NcUniform] {
            for alpha in [2.0, 3.0] {
                let run = run_checked(&instance(), pl(alpha), algo, AuditConfig::default()).unwrap();
                assert!(run.audit_passed(), "{algo:?} α={alpha}:\n{}", run.report);
                assert!(
                    run.report.max_residual() < 1e-7,
                    "{algo:?} α={alpha}: residual {}",
                    run.report.max_residual()
                );
                assert!(run.schedule.is_some());
            }
        }
    }

    #[test]
    fn nonuniform_passes_with_step_level_tolerance() {
        let inst = Instance::new(vec![Job::new(0.0, 1.0, 1.0), Job::new(0.3, 0.5, 4.0)]).unwrap();
        let params = NonUniformParams::default();
        // The non-uniform simulation is step-integrated, so its reported
        // numbers are accurate to the integration step, not 1e-7.
        let config = AuditConfig { rel_tol: 1e-2, ..AuditConfig::default() };
        let run =
            run_checked(&inst, pl(2.0), CheckedAlgorithm::NcNonUniform(params), config).unwrap();
        assert!(run.audit_passed(), "{}", run.report);
    }

    #[test]
    fn known_weight_is_audited_without_a_schedule() {
        let run = run_checked(
            &instance(),
            pl(2.5),
            CheckedAlgorithm::KnownWeightSharing,
            AuditConfig::default(),
        )
        .unwrap();
        assert!(run.schedule.is_none());
        assert!(run.audit_passed(), "{}", run.report);
    }

    #[test]
    fn algorithm_errors_pass_through() {
        // α ≤ 1 is rejected before any audit happens.
        assert!(PowerLaw::new(1.0).is_err());
        // Zero-job instance: trivially fine for C.
        let empty = Instance::new(vec![]).unwrap();
        let run = run_checked(&empty, pl(2.0), CheckedAlgorithm::C, AuditConfig::default()).unwrap();
        assert!(run.audit_passed());
    }
}
