//! Checked-mode execution: run an algorithm, then audit it.
//!
//! [`run_checked`] wraps the single-machine algorithms so any run can be
//! executed with the independent `ncss-audit` invariant checker attached.
//! Degradation is graceful at every layer: an algorithm that fails returns
//! its structured [`ncss_sim::SimError`] untouched, and an audit that finds
//! violations reports them in [`CheckedRun::report`] rather than erroring —
//! the caller decides whether a failed audit is fatal.

use crate::known_weight::run_known_weight_sharing;
use crate::nc_nonuniform::NonUniformParams;
use crate::{run_c, run_nc_nonuniform, run_nc_uniform};
use ncss_audit::{AuditConfig, AuditReport, MultiAudit, ScheduleAudit};
use ncss_sim::{Evaluated, Instance, Objective, PerJob, PowerLaw, Schedule, SimResult};

/// Which algorithm to execute under the audit harness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CheckedAlgorithm {
    /// Clairvoyant Algorithm C (HDF, `power = remaining weight`).
    C,
    /// Non-clairvoyant Algorithm NC for uniform densities.
    NcUniform,
    /// Non-clairvoyant Algorithm NC for arbitrary densities.
    NcNonUniform(NonUniformParams),
    /// Known-weight weighted processor sharing (schedule-less; audited with
    /// the outcome-level checks only).
    KnownWeightSharing,
}

/// An algorithm run plus its audit verdicts.
#[derive(Debug, Clone)]
pub struct CheckedRun {
    /// The run's reported objective.
    pub objective: Objective,
    /// The run's reported per-job outcomes.
    pub per_job: PerJob,
    /// The schedule, for algorithms that produce one.
    pub schedule: Option<Schedule>,
    /// Verdicts from the independent auditor.
    pub report: AuditReport,
}

impl CheckedRun {
    /// True when the run completed *and* every audited invariant held.
    #[must_use]
    pub fn audit_passed(&self) -> bool {
        self.report.passed()
    }
}

/// Execute `algorithm` on `instance` and audit the result.
///
/// Returns `Err` only when the algorithm itself fails (invalid input,
/// numeric guard, non-convergence); audit findings never error.
///
/// # Examples
///
/// ```
/// use ncss_audit::AuditConfig;
/// use ncss_core::{run_checked, CheckedAlgorithm};
/// use ncss_sim::{Instance, Job, PowerLaw};
///
/// let instance = Instance::new(vec![
///     Job::unit_density(0.0, 2.0),
///     Job::unit_density(0.4, 1.0),
/// ]).unwrap();
/// let law = PowerLaw::cube();
///
/// let run = run_checked(&instance, law, CheckedAlgorithm::C, AuditConfig::default()).unwrap();
/// assert!(run.audit_passed(), "{}", run.report);
/// assert!(run.report.max_residual() < 1e-7);
/// assert!(run.schedule.is_some());
/// ```
pub fn run_checked(
    instance: &Instance,
    law: PowerLaw,
    algorithm: CheckedAlgorithm,
    config: AuditConfig,
) -> SimResult<CheckedRun> {
    let auditor = ScheduleAudit::new(config);
    let audited = |schedule: Schedule, objective: Objective, per_job: PerJob| {
        let reported = Evaluated { objective, per_job };
        let report = auditor.audit(instance, &schedule, &reported);
        CheckedRun {
            objective: reported.objective,
            per_job: reported.per_job,
            schedule: Some(schedule),
            report,
        }
    };
    Ok(match algorithm {
        CheckedAlgorithm::C => {
            let run = run_c(instance, law)?;
            audited(run.schedule, run.objective, run.per_job)
        }
        CheckedAlgorithm::NcUniform => {
            let run = run_nc_uniform(instance, law)?;
            audited(run.schedule, run.objective, run.per_job)
        }
        CheckedAlgorithm::NcNonUniform(params) => {
            let run = run_nc_nonuniform(instance, law, params)?;
            audited(run.schedule, run.objective, run.per_job)
        }
        CheckedAlgorithm::KnownWeightSharing => {
            let run = run_known_weight_sharing(instance, law)?;
            let report = auditor.audit_outcome(instance, &run.objective, &run.per_job);
            CheckedRun { objective: run.objective, per_job: run.per_job, schedule: None, report }
        }
    })
}

/// The result shape a parallel-machine runner must expose to be audited:
/// the fleet assignment, the reported totals, and one timeline per machine
/// with segments labelled by **original** job ids.
///
/// This crate cannot depend on `ncss-multi` (it would be a cycle), so
/// [`run_checked_multi`] is generic over a closure producing this struct;
/// `ncss-multi` provides `From<ParOutcome> for MultiRun` so every parallel
/// runner plugs in with `.map(Into::into)`.
#[derive(Debug, Clone)]
pub struct MultiRun {
    /// Machine index assigned to each job (by original job id).
    pub assignment: Vec<usize>,
    /// Total objective summed over machines.
    pub objective: Objective,
    /// Per-job outcomes in original job ids.
    pub per_job: PerJob,
    /// Per-machine timelines (empty schedules for idle machines).
    pub schedules: Vec<Schedule>,
}

/// A parallel-machine run plus its cross-machine audit verdicts.
#[derive(Debug, Clone)]
pub struct CheckedMultiRun {
    /// Machine index assigned to each job.
    pub assignment: Vec<usize>,
    /// The run's reported objective.
    pub objective: Objective,
    /// The run's reported per-job outcomes.
    pub per_job: PerJob,
    /// Per-machine timelines.
    pub schedules: Vec<Schedule>,
    /// Verdicts from the independent cross-machine auditor.
    pub report: AuditReport,
}

impl CheckedMultiRun {
    /// True when the run completed *and* every audited invariant held.
    #[must_use]
    pub fn audit_passed(&self) -> bool {
        self.report.passed()
    }
}

/// Execute a parallel-machine runner on `machines` machines and audit the
/// result with the cross-machine invariant checker ([`MultiAudit`]): per-
/// machine segment invariants, no-double-service, cross-machine volume
/// conservation, and fleet-total objective re-derivation.
///
/// Like [`run_checked`], `Err` means the algorithm itself failed; audit
/// findings land in [`CheckedMultiRun::report`] for the caller to judge.
///
/// # Examples
///
/// Any runner producing a [`MultiRun`] plugs in — `ncss-multi`'s runners
/// via `.map(Into::into)`, or a hand-built closure like this one-machine
/// "fleet" backed by Algorithm C:
///
/// ```
/// use ncss_audit::AuditConfig;
/// use ncss_core::{run_c, run_checked_multi, MultiRun};
/// use ncss_sim::{Instance, Job, PowerLaw};
///
/// let instance = Instance::new(vec![Job::unit_density(0.0, 1.0)]).unwrap();
/// let law = PowerLaw::new(2.0).unwrap();
///
/// let checked = run_checked_multi(&instance, law, 1, AuditConfig::default(), |i, l, _m| {
///     let c = run_c(i, l)?;
///     Ok(MultiRun {
///         assignment: vec![0; i.len()],
///         objective: c.objective,
///         per_job: c.per_job,
///         schedules: vec![c.schedule],
///     })
/// }).unwrap();
/// assert!(checked.audit_passed(), "{}", checked.report);
/// ```
pub fn run_checked_multi<F>(
    instance: &Instance,
    law: PowerLaw,
    machines: usize,
    config: AuditConfig,
    run: F,
) -> SimResult<CheckedMultiRun>
where
    F: FnOnce(&Instance, PowerLaw, usize) -> SimResult<MultiRun>,
{
    let out = run(instance, law, machines)?;
    let reported = Evaluated { objective: out.objective, per_job: out.per_job };
    let report = MultiAudit::new(config).audit(instance, &out.schedules, &reported);
    Ok(CheckedMultiRun {
        assignment: out.assignment,
        objective: reported.objective,
        per_job: reported.per_job,
        schedules: out.schedules,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncss_sim::Job;

    fn pl(alpha: f64) -> PowerLaw {
        PowerLaw::new(alpha).unwrap()
    }

    fn instance() -> Instance {
        Instance::new(vec![
            Job::unit_density(0.0, 1.0),
            Job::unit_density(0.2, 2.0),
            Job::unit_density(0.9, 0.5),
        ])
        .unwrap()
    }

    #[test]
    fn c_and_nc_pass_with_tight_residuals() {
        for algo in [CheckedAlgorithm::C, CheckedAlgorithm::NcUniform] {
            for alpha in [2.0, 3.0] {
                let run = run_checked(&instance(), pl(alpha), algo, AuditConfig::default()).unwrap();
                assert!(run.audit_passed(), "{algo:?} α={alpha}:\n{}", run.report);
                assert!(
                    run.report.max_residual() < 1e-7,
                    "{algo:?} α={alpha}: residual {}",
                    run.report.max_residual()
                );
                assert!(run.schedule.is_some());
            }
        }
    }

    #[test]
    fn nonuniform_passes_with_step_level_tolerance() {
        let inst = Instance::new(vec![Job::new(0.0, 1.0, 1.0), Job::new(0.3, 0.5, 4.0)]).unwrap();
        let params = NonUniformParams::default();
        // The non-uniform simulation is step-integrated, so its reported
        // numbers are accurate to the integration step, not 1e-7.
        let config = AuditConfig { rel_tol: 1e-2, ..AuditConfig::default() };
        let run =
            run_checked(&inst, pl(2.0), CheckedAlgorithm::NcNonUniform(params), config).unwrap();
        assert!(run.audit_passed(), "{}", run.report);
    }

    #[test]
    fn known_weight_is_audited_without_a_schedule() {
        let run = run_checked(
            &instance(),
            pl(2.5),
            CheckedAlgorithm::KnownWeightSharing,
            AuditConfig::default(),
        )
        .unwrap();
        assert!(run.schedule.is_none());
        assert!(run.audit_passed(), "{}", run.report);
    }

    #[test]
    fn checked_multi_audits_a_hand_built_fleet() {
        // A trivial one-machine "fleet" backed by Algorithm C must pass the
        // cross-machine audit with tight residuals.
        let inst = instance();
        let run = run_checked_multi(&inst, pl(2.0), 1, AuditConfig::default(), |i, l, m| {
            assert_eq!(m, 1);
            let c = run_c(i, l)?;
            Ok(MultiRun {
                assignment: vec![0; i.len()],
                objective: c.objective,
                per_job: c.per_job,
                schedules: vec![c.schedule],
            })
        })
        .unwrap();
        assert!(run.audit_passed(), "{}", run.report);
        assert!(run.report.max_residual() < 1e-7, "{}", run.report);
    }

    #[test]
    fn checked_multi_catches_a_corrupted_fleet() {
        // Same fleet, but the runner under-reports its energy: the audit
        // must fail (and the runner's Ok is preserved — the caller decides).
        let inst = instance();
        let run = run_checked_multi(&inst, pl(2.0), 1, AuditConfig::default(), |i, l, _| {
            let c = run_c(i, l)?;
            let mut objective = c.objective;
            objective.energy *= 0.5;
            Ok(MultiRun {
                assignment: vec![0; i.len()],
                objective,
                per_job: c.per_job,
                schedules: vec![c.schedule],
            })
        })
        .unwrap();
        assert!(!run.audit_passed());
        assert!(run.report.failures().iter().any(|c| c.name == "energy-recomputed"));
    }

    #[test]
    fn algorithm_errors_pass_through() {
        // α ≤ 1 is rejected before any audit happens.
        assert!(PowerLaw::new(1.0).is_err());
        // Zero-job instance: trivially fine for C.
        let empty = Instance::new(vec![]).unwrap();
        let run = run_checked(&empty, pl(2.0), CheckedAlgorithm::C, AuditConfig::default()).unwrap();
        assert!(run.audit_passed());
    }
}
