//! Algorithm C — the clairvoyant comparator (Section 2 of the paper).
//!
//! Highest-density-first job selection (FIFO among equal densities, matching
//! the tie-break the paper fixes for its analysis), with the speed set so
//! that the instantaneous power equals the total remaining weight of active
//! jobs: `P(s(t)) = W(t)`. Algorithm C is 2-competitive for the fractional
//! objective (Theorem 1, due to Bansal–Chan–Pruhs), and its total energy
//! equals its total fractional flow-time — both facts are exercised by the
//! tests below.
//!
//! The simulation is event-driven and **exact**: between releases and
//! completions the remaining weight follows the closed-form decay kernel
//! (`W^{1−1/α}` linear in time), so event times, energies, and flow-times
//! carry no integration error.
//!
//! The event loop itself lives in [`crate::streaming::CStream`]; [`run_c`]
//! is the batch wrapper that feeds it the sorted instance and reassembles
//! per-job vectors and the full schedule. Batch and stream therefore share
//! every floating-point operation — the bitwise equivalence contract of
//! DESIGN.md §9.

use crate::streaming::{CStream, StreamConfig};
use ncss_sim::{Instance, Objective, PerJob, PowerLaw, Schedule, ScheduleBuilder, SimResult};

/// Priority key for the active-job heap: highest density first, then
/// earliest release, then smallest id.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct ActiveKey {
    pub(crate) density: f64,
    pub(crate) release: f64,
    pub(crate) id: usize,
}

impl Eq for ActiveKey {}

impl PartialOrd for ActiveKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ActiveKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap pops the maximum, so "greater" must mean "runs first":
        // higher density, then earlier release, then smaller id.
        self.density
            .partial_cmp(&other.density)
            .expect("finite densities")
            .then_with(|| other.release.partial_cmp(&self.release).expect("finite releases"))
            .then_with(|| other.id.cmp(&self.id))
    }
}

/// A completed run of Algorithm C.
#[derive(Debug, Clone)]
pub struct CRun {
    /// The machine schedule (decay-law segments).
    pub schedule: Schedule,
    /// Aggregate objective, accounted exactly during the run.
    pub objective: Objective,
    /// Per-job completions and flow-times.
    pub per_job: PerJob,
}

impl CRun {
    /// The left limit `W(t^-)` of the total remaining weight — the quantity
    /// `W^{(C)}(r[j]^-)` in the paper's definition of Algorithm NC.
    ///
    /// For Algorithm C the instantaneous power *is* the remaining weight, so
    /// this reads the power curve with `(start, end]` segment semantics
    /// (a release at `t` starts a new segment, so the left limit belongs to
    /// the segment ending at `t`).
    #[must_use]
    pub fn remaining_weight_before(&self, t: f64) -> f64 {
        let segs = self.schedule.segments();
        let idx = segs.partition_point(|s| s.end < t);
        match segs.get(idx) {
            Some(s) if s.start < t && t <= s.end => s.power_at(self.schedule.power_law(), t),
            _ => 0.0,
        }
    }

    /// Speed of Algorithm C at time `t` (right-continuous at events).
    #[must_use]
    pub fn speed_at(&self, t: f64) -> f64 {
        self.schedule.speed_at(t)
    }

    /// Makespan of the run (completion of the last job).
    #[must_use]
    pub fn makespan(&self) -> f64 {
        self.schedule.end_time()
    }
}

/// Run Algorithm C on `instance` under power law `law`.
///
/// # Examples
///
/// ```
/// use ncss_core::run_c;
/// use ncss_sim::{Instance, Job, PowerLaw};
///
/// let inst = Instance::new(vec![Job::unit_density(0.0, 4.0)]).unwrap();
/// let run = run_c(&inst, PowerLaw::new(2.0).unwrap()).unwrap();
/// // Lemma 2: a weight-4 job at alpha=2 finishes at t = W^{1/2}/(1/2) = 4.
/// assert!((run.per_job.completion[0] - 4.0).abs() < 1e-9);
/// // Energy equals fractional flow-time for Algorithm C.
/// assert!((run.objective.energy - run.objective.frac_flow).abs() < 1e-9);
/// ```
pub fn run_c(instance: &Instance, law: PowerLaw) -> SimResult<CRun> {
    let n = instance.len();
    let mut completion = vec![f64::NAN; n];
    let mut frac_flow = vec![0.0; n];
    let mut int_flow = vec![0.0; n];

    let mut stream = CStream::new(law, StreamConfig::batch());
    let mut sink = |c: crate::streaming::CCompletion| {
        completion[c.id] = c.completion;
        frac_flow[c.id] = c.frac_flow;
        int_flow[c.id] = c.int_flow;
    };
    // The instance is sorted by (release, id), which is exactly the ordered
    // release stream the core requires; stream ids coincide with JobIds.
    for &job in instance.jobs() {
        stream.offer(job, &mut sink)?;
    }
    let summary = stream.finish(&mut sink)?;

    let mut builder = ScheduleBuilder::new(law);
    for seg in stream.spill_mut().drain() {
        builder.push(seg);
    }
    Ok(CRun {
        schedule: builder.build()?,
        objective: summary.objective,
        per_job: PerJob { completion, frac_flow, int_flow },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncss_sim::numeric::approx_eq;
    use ncss_sim::Job;

    fn pl(alpha: f64) -> PowerLaw {
        PowerLaw::new(alpha).unwrap()
    }

    #[test]
    fn single_job_matches_lemma2() {
        // Lemma 2: completion time t with rho (1 - 1/alpha) t = W^{1-1/alpha}.
        for &(alpha, rho, v) in &[(2.0, 1.0, 3.0), (3.0, 2.0, 1.5), (1.5, 0.5, 4.0)] {
            let inst = Instance::new(vec![Job::new(0.0, v, rho)]).unwrap();
            let run = run_c(&inst, pl(alpha)).unwrap();
            let w = rho * v;
            let beta = 1.0 - 1.0 / alpha;
            let expect_t = w.powf(beta) / (rho * beta);
            assert!(approx_eq(run.per_job.completion[0], expect_t, 1e-10));
        }
    }

    #[test]
    fn energy_equals_fractional_flow() {
        // The defining property of Algorithm C: total energy = total
        // fractional flow-time, because power = remaining weight.
        let inst = Instance::new(vec![
            Job::new(0.0, 2.0, 1.0),
            Job::new(0.5, 1.0, 3.0),
            Job::new(0.7, 0.4, 0.5),
            Job::new(2.0, 1.5, 2.0),
        ])
        .unwrap();
        let run = run_c(&inst, pl(3.0)).unwrap();
        assert!(approx_eq(run.objective.energy, run.objective.frac_flow, 1e-9));
    }

    #[test]
    fn matches_independent_evaluator() {
        let inst = Instance::new(vec![
            Job::new(0.0, 1.0, 1.0),
            Job::new(0.2, 2.0, 2.0),
            Job::new(1.5, 0.5, 0.7),
        ])
        .unwrap();
        let run = run_c(&inst, pl(2.5)).unwrap();
        let ev = ncss_sim::evaluate(&run.schedule, &inst).unwrap();
        assert!(approx_eq(ev.objective.energy, run.objective.energy, 1e-7));
        assert!(approx_eq(ev.objective.frac_flow, run.objective.frac_flow, 1e-7));
        assert!(approx_eq(ev.objective.int_flow, run.objective.int_flow, 1e-7));
        for j in 0..inst.len() {
            assert!(approx_eq(ev.per_job.completion[j], run.per_job.completion[j], 1e-7));
        }
    }

    #[test]
    fn hdf_order_respected() {
        // Both at t=0: the density-5 job must finish before the density-1
        // job is touched.
        let inst = Instance::new(vec![Job::new(0.0, 1.0, 1.0), Job::new(0.0, 1.0, 5.0)]).unwrap();
        let run = run_c(&inst, pl(2.0)).unwrap();
        assert!(run.per_job.completion[1] < run.per_job.completion[0]);
        let first = run.schedule.segments().first().unwrap();
        assert_eq!(first.job, Some(1));
    }

    #[test]
    fn preemption_on_higher_density_arrival() {
        let inst = Instance::new(vec![Job::new(0.0, 10.0, 1.0), Job::new(0.1, 0.1, 100.0)]).unwrap();
        let run = run_c(&inst, pl(2.0)).unwrap();
        // Job 1 arrives at 0.1 and must run immediately.
        let seg_at = run
            .schedule
            .segments()
            .iter()
            .find(|s| s.start <= 0.1 && 0.1 < s.end || (s.start - 0.1).abs() < 1e-12)
            .unwrap();
        let seg_after = run
            .schedule
            .segments()
            .iter()
            .find(|s| s.start >= 0.1 - 1e-12)
            .unwrap();
        assert_eq!(seg_after.job, Some(1));
        let _ = seg_at;
        assert!(run.per_job.completion[1] < run.per_job.completion[0]);
    }

    #[test]
    fn fifo_among_equal_densities() {
        let inst = Instance::new(vec![Job::unit_density(0.0, 1.0), Job::unit_density(0.5, 1.0)]).unwrap();
        let run = run_c(&inst, pl(2.0)).unwrap();
        assert!(run.per_job.completion[0] < run.per_job.completion[1]);
    }

    #[test]
    fn remaining_weight_before_release_points() {
        // One job at t=0 of weight 4 (alpha=2): W(t)^{1/2} = 2 - t/2, done at t=4.
        let inst = Instance::new(vec![Job::unit_density(0.0, 4.0), Job::unit_density(1.0, 1.0)]).unwrap();
        let run = run_c(&inst, pl(2.0)).unwrap();
        // Just before the release at t=1: W = (2 - 0.5)^2 = 2.25.
        assert!(approx_eq(run.remaining_weight_before(1.0), 2.25, 1e-9));
        // Before time 0 there is nothing.
        assert_eq!(run.remaining_weight_before(0.0), 0.0);
        // Long after the makespan the machine is empty.
        assert_eq!(run.remaining_weight_before(run.makespan() + 5.0), 0.0);
    }

    #[test]
    fn idle_gap_between_batches() {
        let inst = Instance::new(vec![Job::unit_density(0.0, 0.1), Job::unit_density(100.0, 0.1)]).unwrap();
        let run = run_c(&inst, pl(2.0)).unwrap();
        assert!(run.per_job.completion[0] < 100.0);
        assert!(run.per_job.completion[1] > 100.0);
        // The machine is idle in between.
        assert_eq!(run.schedule.speed_at(50.0), 0.0);
        assert_eq!(run.remaining_weight_before(50.0), 0.0);
    }

    #[test]
    fn empty_instance() {
        let inst = Instance::new(vec![]).unwrap();
        let run = run_c(&inst, pl(2.0)).unwrap();
        assert_eq!(run.objective.fractional(), 0.0);
        assert_eq!(run.makespan(), 0.0);
    }

    #[test]
    fn speed_decreases_between_events() {
        let inst = Instance::new(vec![Job::unit_density(0.0, 5.0)]).unwrap();
        let run = run_c(&inst, pl(3.0)).unwrap();
        let m = run.makespan();
        let pts = run.schedule.sample(50, m * 0.999);
        assert!(pts.windows(2).all(|w| w[1].1 <= w[0].1 + 1e-12));
    }
}
