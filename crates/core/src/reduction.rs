//! The black-box fractional-to-integral reduction (Section 5, Lemma 15).
//!
//! Given any schedule produced by an algorithm `A_frac` for the fractional
//! objective, algorithm `A_int` runs at `(1+ε)` times `A_frac`'s speed
//! whenever the job `A_frac` is serving is still unfinished in `A_int`, and
//! idles otherwise. `A_int` therefore finishes job `j` exactly when `A_frac`
//! has processed a `1/(1+ε)` fraction of it, which upper-bounds the
//! integral flow-time by `(1 + 1/ε)` times the fractional flow-time of
//! `A_frac`, while the energy grows by at most `(1+ε)^α`.
//!
//! The construction is *online and non-clairvoyant* whenever `A_frac` is:
//! at every instant it only needs `A_frac`'s current speed/job and whether
//! `A_int` itself has finished that job (which `A_int` knows, having
//! processed `(1+ε)×` `A_frac`'s volume — without ever learning the true
//! volume before completion). Here we implement it as a schedule transform.

use ncss_sim::{evaluate, Instance, Objective, PerJob, Schedule, ScheduleBuilder, SimError, SimResult};

/// A schedule produced by the reduction, with its evaluated objective.
#[derive(Debug, Clone)]
pub struct IntegralRun {
    /// The transformed (sped-up, idling) schedule.
    pub schedule: Schedule,
    /// Evaluated objective.
    pub objective: Objective,
    /// Per-job outcomes.
    pub per_job: PerJob,
    /// The speed-up parameter ε used.
    pub epsilon: f64,
}

/// Apply the Section 5 reduction with speed-up `1 + ε` to `base`.
pub fn reduce_to_integral(base: &Schedule, instance: &Instance, epsilon: f64) -> SimResult<IntegralRun> {
    if !(epsilon.is_finite() && epsilon > 0.0) {
        return Err(SimError::InvalidInstance { reason: "reduction epsilon must be positive" });
    }
    let pl = base.power_law();
    let speedup = 1.0 + epsilon;
    let n = instance.len();
    // A_int finishes job j once the base schedule has processed V_j/(1+ε).
    let target: Vec<f64> = instance.jobs().iter().map(|j| j.volume / speedup).collect();
    let mut base_done = vec![0.0f64; n];
    let mut builder = ScheduleBuilder::new(pl);

    for seg in base.segments() {
        let Some(j) = seg.job else {
            continue; // idle stays idle
        };
        let cap = target[j] - base_done[j];
        if cap <= 0.0 {
            continue; // A_int already finished j: idle through this segment
        }
        let seg_vol = seg.volume(pl);
        if seg_vol <= cap * (1.0 + 1e-12) {
            builder.push(seg.with_scale(seg.scale * speedup));
            base_done[j] += seg_vol;
        } else {
            // A_int's completion of j falls strictly inside this segment.
            let t_split = seg
                .time_at_volume(pl, cap)
                .ok_or(SimError::MalformedSchedule { reason: "cannot invert volume in segment" })?;
            if t_split > seg.start {
                let (left, _) = seg.split_at(pl, t_split.min(seg.end - 0.0).max(seg.start));
                builder.push(left.with_scale(seg.scale * speedup));
            }
            base_done[j] = target[j];
        }
    }

    let schedule = builder.build()?;
    let ev = evaluate(&schedule, instance)?;
    Ok(IntegralRun { schedule, objective: ev.objective, per_job: ev.per_job, epsilon })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nc_uniform::run_nc_uniform;
    use crate::theory;
    use ncss_sim::numeric::approx_eq;
    use ncss_sim::{Job, PowerLaw};

    fn pl(alpha: f64) -> PowerLaw {
        PowerLaw::new(alpha).unwrap()
    }

    fn base_run(alpha: f64) -> (Instance, crate::nc_uniform::NcRun) {
        let inst = Instance::new(vec![
            Job::unit_density(0.0, 1.0),
            Job::unit_density(0.4, 2.0),
            Job::unit_density(0.9, 0.7),
        ])
        .unwrap();
        let nc = run_nc_uniform(&inst, pl(alpha)).unwrap();
        (inst, nc)
    }

    #[test]
    fn rejects_bad_epsilon() {
        let (inst, nc) = base_run(2.0);
        assert!(reduce_to_integral(&nc.schedule, &inst, 0.0).is_err());
        assert!(reduce_to_integral(&nc.schedule, &inst, -0.1).is_err());
    }

    #[test]
    fn completes_all_jobs_and_earlier() {
        let (inst, nc) = base_run(3.0);
        let red = reduce_to_integral(&nc.schedule, &inst, 0.3).unwrap();
        for j in 0..inst.len() {
            assert!(red.per_job.completion[j] <= nc.per_job.completion[j] + 1e-9);
        }
    }

    #[test]
    fn energy_bounded_by_speedup_power() {
        for alpha in [2.0, 3.0] {
            let (inst, nc) = base_run(alpha);
            for eps in [0.1, 0.5, 1.0] {
                let red = reduce_to_integral(&nc.schedule, &inst, eps).unwrap();
                let bound = (1.0 + eps).powf(alpha) * nc.objective.energy;
                assert!(red.objective.energy <= bound * (1.0 + 1e-9));
                assert!(red.objective.energy > 0.0);
            }
        }
    }

    #[test]
    fn integral_flow_bounded_by_lemma15() {
        // F_int(A_int) <= (1 + 1/eps) * F_frac(A_frac).
        for alpha in [2.0, 3.0] {
            let (inst, nc) = base_run(alpha);
            for eps in [0.2, 0.5, 1.5] {
                let red = reduce_to_integral(&nc.schedule, &inst, eps).unwrap();
                let bound = (1.0 + 1.0 / eps) * nc.objective.frac_flow;
                assert!(
                    red.objective.int_flow <= bound * (1.0 + 1e-9),
                    "alpha={alpha} eps={eps}: {} vs {bound}",
                    red.objective.int_flow
                );
            }
        }
    }

    #[test]
    fn total_cost_bounded_by_reduction_factor() {
        for alpha in [2.0, 3.0] {
            let (inst, nc) = base_run(alpha);
            let eps = theory::optimal_reduction_epsilon(alpha);
            let red = reduce_to_integral(&nc.schedule, &inst, eps).unwrap();
            let factor = theory::reduction_factor(alpha, eps);
            assert!(red.objective.integral() <= factor * nc.objective.fractional() * (1.0 + 1e-9));
        }
    }

    #[test]
    fn completion_at_fractional_progress_point() {
        // A_int finishes j exactly when base has processed V_j / (1+eps).
        let inst = Instance::new(vec![Job::unit_density(0.0, 2.0)]).unwrap();
        let nc = run_nc_uniform(&inst, pl(2.0)).unwrap();
        let eps = 0.25;
        let red = reduce_to_integral(&nc.schedule, &inst, eps).unwrap();
        let c = red.per_job.completion[0];
        // Base progress at c:
        let base_prog = nc.schedule.segments()[0].volume_to(pl(2.0), c);
        assert!(approx_eq(base_prog, 2.0 / 1.25, 1e-6));
    }

    #[test]
    fn idles_after_own_completion() {
        let inst = Instance::new(vec![Job::unit_density(0.0, 1.0)]).unwrap();
        let nc = run_nc_uniform(&inst, pl(2.0)).unwrap();
        let red = reduce_to_integral(&nc.schedule, &inst, 1.0).unwrap();
        // The reduced schedule ends strictly before the base schedule.
        assert!(red.schedule.end_time() < nc.schedule.end_time() - 1e-9);
    }
}
