//! The paper's theoretical constants, as executable formulas.
//!
//! Every bound the paper proves (or cites) is exposed here as a function of
//! the power-law exponent α, so experiments can print "theory vs measured"
//! columns from one source of truth. Citations refer to the numbering in the
//! SPAA 2015 extended abstract.

/// Theorem 1 (Bansal–Chan–Pruhs): Algorithm C is 2-competitive for
/// fractional weighted flow-time plus energy.
#[must_use]
pub fn c_fractional_bound() -> f64 {
    2.0
}

/// Bansal–Pruhs–Stein: the best known clairvoyant bound for *integral*
/// flow-time plus energy with unit densities is 4 (Table 1, first row).
#[must_use]
pub fn c_integral_unit_bound() -> f64 {
    4.0
}

/// Theorem 5: Algorithm NC with uniform densities is
/// `2 + 1/(α−1)`-competitive for the fractional objective.
#[must_use]
pub fn nc_uniform_fractional_bound(alpha: f64) -> f64 {
    2.0 + 1.0 / (alpha - 1.0)
}

/// Theorem 9: Algorithm NC with uniform densities is
/// `3 + 1/(α−1)`-competitive for the integral objective.
#[must_use]
pub fn nc_uniform_integral_bound(alpha: f64) -> f64 {
    3.0 + 1.0 / (alpha - 1.0)
}

/// Lemma 4: total fractional flow-time of NC equals that of C divided by
/// `1 − 1/α`; this is the exact ratio `F^{NC}/F^{C} = 1/(1−1/α)`.
#[must_use]
pub fn nc_over_c_flow_ratio(alpha: f64) -> f64 {
    1.0 / (1.0 - 1.0 / alpha)
}

/// Lemma 8 as *derived* in the paper's own proof: the integral flow-time of
/// an NC schedule is at most `1 + (1 − 1/α) = 2 − 1/α` times its fractional
/// flow-time.
///
/// Note: the extended abstract's lemma statement prints the constant as
/// `2 − 1/(α−1)`, but the displayed derivation concludes
/// `dF_int/dT ≤ (1 + (1 − 1/α)) dF/dT`, and only the derived constant is
/// consistent with Theorem 9 (`3 + 1/(α−1)`); we therefore verify
/// `2 − 1/α`. See DESIGN.md experiment E3.
#[must_use]
pub fn nc_integral_over_fractional_flow_bound(alpha: f64) -> f64 {
    2.0 - 1.0 / alpha
}

/// Chan et al.: non-clairvoyant *known-weight* bound `2α²/ln α` for
/// unweighted flow-time plus energy (Table 1 comparison column).
#[must_use]
pub fn known_weight_unit_bound(alpha: f64) -> f64 {
    2.0 * alpha * alpha / alpha.ln()
}

/// Lam et al.: `(2 − 1/α)²` for known weights when all jobs arrive at time
/// zero (Table 1 comparison column).
#[must_use]
pub fn known_weight_batch_bound(alpha: f64) -> f64 {
    let x = 2.0 - 1.0 / alpha;
    x * x
}

/// Section 4: the non-uniform-density NC bound is `2^{O(α)}`. The extended
/// abstract defers the constant to the full version; this returns the
/// indicative envelope `2^{α+2}` used purely as a plotting reference, never
/// as a pass/fail threshold.
#[must_use]
pub fn nc_nonuniform_indicative_bound(alpha: f64) -> f64 {
    2f64.powf(alpha + 2.0)
}

/// Minimum speed multiplier η for which the non-uniform Algorithm NC is
/// self-sustaining from a cold start.
///
/// For a single job of (rounded) density ρ starting from zero processed
/// weight, writing `γ = α/(α−1)`, the speed rule `s = η·s^{(C)}_{I(t)}(t)`
/// admits a power-law solution `w(t)^{1−1/α} = ρ(1−1/α)λt` with `λ > 1`
/// (i.e. Algorithm C on the current instance is still running at time `t`,
/// the paper's Property (A)) exactly when `λ^γ = η(λ−1)^{γ−1}` has a root
/// `λ > 1`. Maximising the right-hand side over λ shows a root exists iff
///
/// ```text
/// η ≥ γ^γ / (γ−1)^{γ−1},   γ = α/(α−1).
/// ```
///
/// Below this threshold the algorithm degenerates to its ε bootstrap speed
/// (the current-instance C run finishes before "now" and reports speed 0).
/// The extended abstract defers the choice of η to the full version; this
/// threshold reproduces why the non-uniform competitive ratio is `2^{O(α)}`:
/// the energy overhead is `η^α`. Note `γ → 1` as `α → ∞`, so the threshold
/// tends to 1, while for `α → 1+` it blows up.
#[must_use]
pub fn nonuniform_eta_min(alpha: f64) -> f64 {
    let gamma = alpha / (alpha - 1.0);
    gamma.powf(gamma) / (gamma - 1.0).powf(gamma - 1.0)
}

/// Theorem 17: NC-PAR is `O(α + 1/(α−1))`-competitive on identical parallel
/// machines. We expose the explicit combination obtained by composing
/// Theorem 18 (`O(α)` for C-PAR, with the constant from Anand–Garg–Kumar
/// taken as 1) with Lemmas 21–22: `(1 + 1/(1−1/α)) · α`.
#[must_use]
pub fn nc_par_indicative_bound(alpha: f64) -> f64 {
    (1.0 + nc_over_c_flow_ratio(alpha) / 2.0) * alpha
}

/// Section 6: exponent of the immediate-dispatch lower bound `Ω(k^{1−1/α})`.
#[must_use]
pub fn immediate_dispatch_lb_exponent(alpha: f64) -> f64 {
    1.0 - 1.0 / alpha
}

/// Lemma 15: cost factor of the fractional-to-integral reduction at
/// speed-up `1 + ε`: `max((1+ε)^α, 1 + 1/ε)`.
#[must_use]
pub fn reduction_factor(alpha: f64, epsilon: f64) -> f64 {
    (1.0 + epsilon).powf(alpha).max(1.0 + 1.0 / epsilon)
}

/// The ε minimising [`reduction_factor`], found at the crossing
/// `(1+ε)^α = 1 + 1/ε` (the max of an increasing and a decreasing function).
#[must_use]
pub fn optimal_reduction_epsilon(alpha: f64) -> f64 {
    // The bracket is guaranteed for every finite α > 1 (negative at 1e-6,
    // positive at 1e6); a non-finite α yields NaN, matching the other pure
    // math helpers in this module.
    ncss_sim::numeric::bisect(|e| (1.0 + e).powf(alpha) - (1.0 + 1.0 / e), 1e-6, 1e6, 1e-12)
        .unwrap_or(f64::NAN)
}

/// Single-job fractional OPT identity: the optimal schedule for one job has
/// flow-time exactly `(α − 1)` times its energy (derived from the
/// Euler–Lagrange solution `P'(s(t)) = ρ(T − t)`; verified in `ncss-opt`).
#[must_use]
pub fn single_job_opt_flow_over_energy(alpha: f64) -> f64 {
    alpha - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncss_sim::numeric::approx_eq;

    #[test]
    fn uniform_bounds_at_cube_law() {
        assert!(approx_eq(nc_uniform_fractional_bound(3.0), 2.5, 1e-12));
        assert!(approx_eq(nc_uniform_integral_bound(3.0), 3.5, 1e-12));
        assert!(approx_eq(nc_over_c_flow_ratio(3.0), 1.5, 1e-12));
        assert!(approx_eq(nc_integral_over_fractional_flow_bound(3.0), 5.0 / 3.0, 1e-12));
    }

    #[test]
    fn nc_beats_clairvoyant_integral_for_large_alpha() {
        // Footnote 3: 3 + 1/(α−1) < 4 for α > 2.
        assert!(nc_uniform_integral_bound(2.0 + 1e-9) < c_integral_unit_bound() + 1e-6);
        assert!(nc_uniform_integral_bound(3.0) < c_integral_unit_bound());
        assert!(nc_uniform_integral_bound(1.5) > c_integral_unit_bound());
    }

    #[test]
    fn reduction_factor_shape() {
        // Increasing part dominates for large ε, waiting part for small ε.
        assert!(reduction_factor(3.0, 10.0) > reduction_factor(3.0, 0.5));
        assert!(reduction_factor(3.0, 1e-3) > reduction_factor(3.0, 0.5));
    }

    #[test]
    fn optimal_epsilon_is_the_crossing() {
        for &alpha in &[2.0, 3.0, 5.0] {
            let e = optimal_reduction_epsilon(alpha);
            assert!(approx_eq((1.0 + e).powf(alpha), 1.0 + 1.0 / e, 1e-6), "alpha = {alpha}");
            // It is a minimum: nudging either way cannot decrease the factor.
            let f = reduction_factor(alpha, e);
            assert!(reduction_factor(alpha, e * 1.1) >= f - 1e-9);
            assert!(reduction_factor(alpha, e * 0.9) >= f - 1e-9);
        }
    }

    #[test]
    fn eta_min_values() {
        // gamma = 2 at alpha = 2: threshold 2^2/1 = 4.
        assert!(approx_eq(nonuniform_eta_min(2.0), 4.0, 1e-12));
        // gamma = 1.5 at alpha = 3: 1.5^1.5 / 0.5^0.5 ≈ 2.598.
        assert!(approx_eq(nonuniform_eta_min(3.0), 1.5f64.powf(1.5) / 0.5f64.sqrt(), 1e-12));
        // Monotone decreasing in alpha, tending to 1.
        assert!(nonuniform_eta_min(2.0) > nonuniform_eta_min(3.0));
        assert!(nonuniform_eta_min(10.0) > 1.0 && nonuniform_eta_min(10.0) < 2.0);
        // At the threshold, lambda = gamma solves lambda^g = eta (lambda-1)^(g-1).
        let alpha = 2.5;
        let g = alpha / (alpha - 1.0);
        let eta = nonuniform_eta_min(alpha);
        assert!(approx_eq(g.powf(g), eta * (g - 1.0).powf(g - 1.0), 1e-12));
    }

    #[test]
    fn lb_exponent_monotone_in_alpha() {
        assert!(immediate_dispatch_lb_exponent(3.0) > immediate_dispatch_lb_exponent(2.0));
        assert!(approx_eq(immediate_dispatch_lb_exponent(2.0), 0.5, 1e-12));
    }

    #[test]
    fn indicative_bounds_are_sane() {
        // NC-PAR's indicative bound dominates the exact NC/C cost factor
        // (1 + 1/(1-1/alpha))/2 times the O(alpha) comparator constant.
        for alpha in [2.0, 3.0, 4.0] {
            let exact_factor = 0.5 * (1.0 + nc_over_c_flow_ratio(alpha));
            assert!(nc_par_indicative_bound(alpha) >= exact_factor);
            assert!(nc_par_indicative_bound(alpha) >= alpha);
        }
        // The non-uniform envelope 2^{alpha+2} doubles per unit of alpha.
        assert!((nc_nonuniform_indicative_bound(4.0) - 2.0 * nc_nonuniform_indicative_bound(3.0)).abs() < 1e-9);
    }

    #[test]
    fn comparison_column_values() {
        // Spot values used in Table 1 rendering.
        assert!(approx_eq(known_weight_batch_bound(2.0), 2.25, 1e-12));
        assert!(known_weight_unit_bound(3.0) > 16.0); // 18/ln 3 ≈ 16.4
    }
}
