//! # ncss-core — the SPAA 2015 speed-scaling algorithms
//!
//! Implementations of every algorithm in *"Speed Scaling in the
//! Non-clairvoyant Model"* (Azar, Devanur, Huang, Panigrahi, SPAA 2015):
//!
//! * [`clairvoyant`] — Algorithm C, the 2-competitive clairvoyant HDF +
//!   `power = remaining weight` comparator (Section 2),
//! * [`nc_uniform`] — Algorithm NC for uniform densities (Section 3),
//! * [`nc_nonuniform`] — Algorithm NC for arbitrary densities with density
//!   rounding and the η-scaled current-instance speed rule (Section 4),
//! * [`reduction`] — the black-box fractional-to-integral reduction
//!   (Section 5),
//! * [`baselines`] — non-clairvoyant baselines from related work,
//! * [`current_instance`] / [`preemption`] — the analysis objects `I(T)`
//!   and the preemption-interval structure,
//! * [`streaming`] — the event-driven stream core with O(active jobs)
//!   resident memory that the batch runners above delegate to,
//! * [`theory`] — every theoretical constant as an executable formula.

#![deny(missing_docs)]
// `!(x > 1.0)`-style validation is deliberate: unlike `x <= 1.0`, it also
// rejects NaN, which is exactly what input validation wants.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod baselines;
pub mod bounded;
pub mod checked;
pub mod clairvoyant;
pub mod current_instance;
pub mod driver;
pub mod generic_runs;
pub mod known_weight;
pub mod nc_nonuniform;
pub mod nc_uniform;
pub mod potential;
pub mod preemption;
pub mod properties;
pub mod reduction;
pub mod streaming;
pub mod theory;

pub use bounded::{run_c_bounded, run_nc_uniform_bounded};
pub use checked::{
    run_checked, run_checked_multi, CheckedAlgorithm, CheckedMultiRun, CheckedRun, MultiRun,
};
pub use clairvoyant::{run_c, CRun};
pub use driver::{run_online, Decision, NcView, NonClairvoyantPolicy};
pub use generic_runs::{run_c_generic, run_nc_uniform_generic, GenericRun};
pub use nc_nonuniform::{run_nc_nonuniform, NonUniformParams};
pub use known_weight::run_known_weight_sharing;
pub use nc_uniform::{run_nc_uniform, NcRun};
pub use reduction::{reduce_to_integral, IntegralRun};
pub use streaming::{
    CCompletion, CStream, CStreamSnapshot, NcCompletion, NcStream, NcStreamSnapshot,
    StreamConfig, StreamStats, StreamSummary,
};
