//! Crate-level property tests for structural invariants of the algorithms
//! that the workspace-level suites don't already cover.

use ncss_core::preemption::preemption_intervals;
use ncss_core::{reduce_to_integral, run_c, run_nc_uniform};
use ncss_sim::{Instance, Job, PowerLaw};
use ncss_rng::props::*;

fn uniform_instance() -> impl Strategy<Value = Instance> {
    ncss_rng::collection::vec((0.0f64..5.0, 0.05f64..3.0), 1..10).prop_map(|jobs| {
        Instance::new(jobs.into_iter().map(|(r, v)| Job::unit_density(r, v)).collect())
            .expect("valid jobs")
    })
}

fn mixed_instance() -> impl Strategy<Value = Instance> {
    ncss_rng::collection::vec((0.0f64..4.0, 0.05f64..2.0, 0.1f64..20.0), 2..8).prop_map(|jobs| {
        Instance::new(jobs.into_iter().map(|(r, v, d)| Job::new(r, v, d)).collect())
            .expect("valid jobs")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn nc_is_work_conserving(inst in uniform_instance()) {
        // NC idles only when no released job is unfinished: every gap
        // between consecutive segments must contain no waiting work.
        let law = PowerLaw::new(2.5).unwrap();
        let nc = run_nc_uniform(&inst, law).unwrap();
        let segs = nc.schedule.segments();
        for w in segs.windows(2) {
            let (gap_start, gap_end) = (w[0].end, w[1].start);
            if gap_end - gap_start <= 1e-12 {
                continue;
            }
            let mid = 0.5 * (gap_start + gap_end);
            for (j, job) in inst.jobs().iter().enumerate() {
                let unfinished = nc.per_job.completion[j] > mid;
                prop_assert!(
                    !(job.release <= mid && unfinished),
                    "job {j} waits during an idle gap at t = {mid}"
                );
            }
        }
    }

    #[test]
    fn c_is_work_conserving(inst in mixed_instance()) {
        let law = PowerLaw::new(2.0).unwrap();
        let c = run_c(&inst, law).unwrap();
        let segs = c.schedule.segments();
        for w in segs.windows(2) {
            let (gap_start, gap_end) = (w[0].end, w[1].start);
            if gap_end - gap_start <= 1e-12 {
                continue;
            }
            let mid = 0.5 * (gap_start + gap_end);
            for (j, job) in inst.jobs().iter().enumerate() {
                prop_assert!(!(job.release <= mid && c.per_job.completion[j] > mid));
            }
        }
    }

    #[test]
    fn preemption_intervals_are_disjoint_and_inside_window(inst in mixed_instance()) {
        let law = PowerLaw::new(2.0).unwrap();
        let c = run_c(&inst, law).unwrap();
        for j in 0..inst.len() {
            let ivs = preemption_intervals(&c, &inst, j);
            for w in ivs.windows(2) {
                prop_assert!(w[0].end <= w[1].start + 1e-12);
            }
            for iv in &ivs {
                prop_assert!(iv.start >= inst.job(j).release - 1e-12);
                prop_assert!(iv.end <= c.per_job.completion[j] + 1e-12);
                prop_assert!(iv.volume >= 0.0);
            }
        }
    }

    #[test]
    fn reduction_flow_monotone_in_eps(inst in uniform_instance()) {
        // Larger speed-up finishes jobs earlier, so the integral flow-time
        // is non-increasing in eps (energy is non-decreasing).
        let law = PowerLaw::new(3.0).unwrap();
        let base = run_nc_uniform(&inst, law).unwrap();
        let mut last_flow = f64::INFINITY;
        let mut last_energy = 0.0f64;
        for eps in [0.1, 0.4, 1.0, 2.5] {
            let red = reduce_to_integral(&base.schedule, &inst, eps).unwrap();
            prop_assert!(red.objective.int_flow <= last_flow * (1.0 + 1e-9));
            prop_assert!(red.objective.energy >= last_energy * (1.0 - 1e-9));
            last_flow = red.objective.int_flow;
            last_energy = red.objective.energy;
        }
    }

    #[test]
    fn hdf_completion_dominance(inst in mixed_instance()) {
        // In Algorithm C, among jobs released at the same time, a job with
        // strictly higher density never finishes after a lower-density one
        // of no larger remaining volume... simplest robust check: the
        // highest-density job among those released at time 0 with minimal
        // volume finishes first among them.
        let law = PowerLaw::new(2.0).unwrap();
        let c = run_c(&inst, law).unwrap();
        let zero: Vec<usize> = (0..inst.len()).filter(|&j| inst.job(j).release == 0.0).collect();
        if zero.len() >= 2 {
            let best = *zero
                .iter()
                .max_by(|&&a, &&b| {
                    inst.job(a).density.partial_cmp(&inst.job(b).density).unwrap()
                })
                .unwrap();
            for &other in &zero {
                if inst.job(other).density < inst.job(best).density - 1e-12 {
                    prop_assert!(
                        c.per_job.completion[best] < c.per_job.completion[other] + 1e-9,
                        "HDF violated: {best} vs {other}"
                    );
                }
            }
        }
    }
}
