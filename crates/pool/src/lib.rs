//! # ncss-pool — the shared scoped worker pool
//!
//! One `std::thread::scope` chunked worker pool for everything in the
//! workspace that fans independent cells out across cores: the parameter
//! sweeps in `ncss-analysis`, the quadrature sharding inside `ncss-audit`
//! (per-segment energy, per-job volume/completion/flow derivations), and
//! the fault/contract suites under `tests/`. Before this crate each of
//! those call sites re-implemented the same atomic-cursor pattern; now
//! they share a single, tested scheduler.
//!
//! ## Determinism contract
//!
//! Every map in this crate is **order-preserving and interleaving-free**:
//! `pool.map(items, f)` equals `items.iter().map(f).collect()` for any
//! pure `f`, bit for bit, regardless of worker count or OS scheduling.
//! Each `(index, value)` pair is computed by exactly one worker and
//! reassembled by input index, so downstream order-sensitive folds (e.g.
//! floating-point sums over per-segment integrals) see the same operand
//! sequence as the serial path. The serial==parallel audit and sweep
//! determinism tests in this workspace are the enforcement.
//!
//! ## Worker count
//!
//! [`Pool::auto`] sizes itself to `std::thread::available_parallelism`,
//! clamped to the item count; a single worker short-circuits to a plain
//! serial map with zero thread overhead. [`Pool::with_threads`] forces an
//! explicit count — larger *or smaller* than the core count — which is how
//! the determinism tests exercise real cross-thread interleavings even on
//! single-core CI runners, and how benches pin comparisons. The
//! `NCSS_POOL_THREADS` environment variable overrides [`Pool::auto`]
//! globally for experiments.

#![deny(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};

/// A sizing policy for scoped worker teams.
///
/// The pool holds no threads — `std::thread::scope` workers are spawned
/// per call and joined before the call returns, so a `Pool` is nothing
/// but a worker-count policy and is `Copy`.
///
/// # Examples
///
/// ```
/// use ncss_pool::Pool;
///
/// let squares = Pool::auto().map(&[1u64, 2, 3, 4], |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
///
/// // Forcing a worker count exercises real threads even on one core, and
/// // the result is identical to the serial path by construction.
/// let forced = Pool::with_threads(8).map(&[1u64, 2, 3, 4], |&x| x * x);
/// assert_eq!(forced, squares);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    /// Explicit worker count, or `None` for the auto policy.
    threads: Option<usize>,
}

impl Default for Pool {
    fn default() -> Self {
        Self::auto()
    }
}

impl Pool {
    /// Size to the machine: `available_parallelism` workers (overridable
    /// via the `NCSS_POOL_THREADS` environment variable), clamped to the
    /// item count at each call.
    #[must_use]
    pub fn auto() -> Self {
        Self { threads: None }
    }

    /// Force an explicit worker count (≥ 1; 0 is treated as 1). Counts
    /// above the core count are honoured — oversubscription is exactly
    /// what the serial==parallel tests need on small machines.
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        Self { threads: Some(threads.max(1)) }
    }

    /// The worker count this pool would use for `n` items.
    #[must_use]
    pub fn worker_count(&self, n: usize) -> usize {
        let auto = || {
            std::env::var("NCSS_POOL_THREADS")
                .ok()
                .and_then(|s| s.parse::<usize>().ok())
                .filter(|&t| t > 0)
                .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |p| p.get()))
        };
        self.threads.unwrap_or_else(auto).min(n).max(1)
    }

    /// Map `f` over `items` in parallel, preserving input order.
    ///
    /// Work is distributed dynamically via an atomic cursor (one item per
    /// claim), so uneven cell costs — OPT solves of different sizes,
    /// audit quadratures over jobs with very different segment counts —
    /// balance automatically.
    pub fn map<T: Sync, U: Send>(&self, items: &[T], f: impl Fn(&T) -> U + Sync) -> Vec<U> {
        self.map_chunked(items, 1, f)
    }

    /// Map `f` over `items` in parallel with contiguous chunks of `chunk`
    /// items per claim, preserving input order.
    ///
    /// Prefer this over [`Pool::map`] when cells are cheap and uniform:
    /// the cursor is touched once per chunk and adjacent results are
    /// produced by the same worker. `chunk = 0` picks a default of
    /// `n / (8 · workers)`, clamped to at least 1 (≈8 claims per worker
    /// keeps the tail balanced).
    pub fn map_chunked<T: Sync, U: Send>(
        &self,
        items: &[T],
        chunk: usize,
        f: impl Fn(&T) -> U + Sync,
    ) -> Vec<U> {
        let n = items.len();
        let threads = self.worker_count(n);
        if threads <= 1 {
            return items.iter().map(&f).collect();
        }
        let chunk = if chunk == 0 { (n / (8 * threads)).max(1) } else { chunk };
        scoped_indexed_map(items, f, threads, chunk)
    }
}

/// Run `threads` scoped workers, each claiming batches of `chunk`
/// consecutive indices from an atomic cursor and returning `(index, value)`
/// pairs; results are reassembled in input order.
fn scoped_indexed_map<T: Sync, U: Send>(
    items: &[T],
    f: impl Fn(&T) -> U + Sync,
    threads: usize,
    chunk: usize,
) -> Vec<U> {
    let n = items.len();
    let cursor = AtomicUsize::new(0);
    let f = &f;
    let per_worker: Vec<Vec<(usize, U)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let cursor = &cursor;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        for i in start..(start + chunk).min(n) {
                            local.push((i, f(&items[i])));
                        }
                    }
                    local
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("pool worker panicked")).collect()
    });
    let mut out: Vec<Option<U>> = (0..n).map(|_| None).collect();
    for (i, v) in per_worker.into_iter().flatten() {
        debug_assert!(out[i].is_none(), "index {i} claimed twice");
        out[i] = Some(v);
    }
    out.into_iter().map(|v| v.expect("every slot filled")).collect()
}

/// Map `f` over `items` in parallel with the [`Pool::auto`] policy,
/// preserving order. Free-function form of [`Pool::map`] for call sites
/// that don't carry a pool.
pub fn parallel_map<T: Sync, U: Send>(items: &[T], f: impl Fn(&T) -> U + Sync) -> Vec<U> {
    Pool::auto().map(items, f)
}

/// Map `f` over `items` in parallel with contiguous chunks, preserving
/// order. Free-function form of [`Pool::map_chunked`].
pub fn parallel_map_chunked<T: Sync, U: Send>(
    items: &[T],
    chunk: usize,
    f: impl Fn(&T) -> U + Sync,
) -> Vec<U> {
    Pool::auto().map_chunked(items, chunk, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..500).collect();
        let out = parallel_map(&items, |&x| x * x);
        assert_eq!(out, items.iter().map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn chunked_preserves_order_for_every_chunk_size() {
        let items: Vec<u64> = (0..257).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for chunk in [0, 1, 2, 7, 64, 300] {
            let out = parallel_map_chunked(&items, chunk, |&x| x * 3 + 1);
            assert_eq!(out, serial, "chunk {chunk}");
        }
    }

    #[test]
    fn forced_thread_counts_match_serial_exactly() {
        // Oversubscription (threads ≫ cores) and undersubscription both
        // reduce to the same ordered result — the determinism contract.
        let items: Vec<u64> = (0..313).collect();
        let serial: Vec<u64> = items.iter().map(|x| x.wrapping_mul(0x9E37_79B9)).collect();
        for threads in [1, 2, 3, 8, 32] {
            let out = Pool::with_threads(threads).map(&items, |x| x.wrapping_mul(0x9E37_79B9));
            assert_eq!(out, serial, "threads {threads}");
            let out = Pool::with_threads(threads).map_chunked(&items, 5, |x| {
                x.wrapping_mul(0x9E37_79B9)
            });
            assert_eq!(out, serial, "chunked threads {threads}");
        }
    }

    #[test]
    fn empty_input() {
        let out: Vec<u64> = parallel_map(&[] as &[u64], |&x| x);
        assert!(out.is_empty());
        let out: Vec<u64> = Pool::with_threads(4).map_chunked(&[] as &[u64], 4, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn uneven_work_balances() {
        // Mix trivial and heavy items; result must still be ordered.
        let items: Vec<u64> = (0..64).collect();
        let out = Pool::with_threads(4).map(&items, |&x| {
            if x % 7 == 0 {
                (0..50_000u64).fold(x, |a, b| a.wrapping_add(b % 13))
            } else {
                x
            }
        });
        assert_eq!(out.len(), 64);
        assert_eq!(out[1], 1);
    }

    #[test]
    fn worker_count_clamps_to_items() {
        assert_eq!(Pool::with_threads(16).worker_count(3), 3);
        assert_eq!(Pool::with_threads(0).worker_count(10), 1);
        assert!(Pool::auto().worker_count(1000) >= 1);
        assert_eq!(Pool::auto().worker_count(0), 1);
    }

    #[test]
    fn ordered_float_sums_are_bitwise_stable() {
        // The property the audit's energy re-derivation rests on: summing
        // the order-preserved parallel results gives the exact serial sum.
        let items: Vec<f64> = (0..1000).map(|i| 1.0 / f64::from(i + 1)).collect();
        let cell = |&x: &f64| (x * 1.000_000_1).sin();
        let serial: f64 = items.iter().map(cell).sum();
        for threads in [2, 5, 17] {
            let par: f64 = Pool::with_threads(threads).map(&items, cell).iter().sum();
            assert_eq!(par.to_bits(), serial.to_bits(), "threads {threads}");
        }
    }
}
