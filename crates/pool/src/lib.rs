//! # ncss-pool — the shared persistent worker pool
//!
//! One long-lived chunked worker pool for everything in the workspace
//! that fans independent cells out across cores: the parameter sweeps in
//! `ncss-analysis`, the integral sharding inside `ncss-audit` (per-segment
//! energy, per-job volume/completion/flow derivations), the dual-bound
//! integral in `ncss-opt`, and the fault/contract suites under `tests/`.
//! Worker threads are spawned **once per process** behind a `OnceLock` and
//! then fed tasks through a ticket queue, so a 100 µs audit no longer pays
//! a per-call `std::thread::scope` spawn/join round trip.
//!
//! ## Determinism contract
//!
//! Every map in this crate is **order-preserving and interleaving-free**:
//! `pool.map(items, f)` equals `items.iter().map(f).collect()` for any
//! pure `f`, bit for bit, regardless of worker count or OS scheduling.
//! Each index is claimed by exactly one participant via an atomic cursor
//! and written to its own output slot, so downstream order-sensitive folds
//! (e.g. floating-point sums over per-segment integrals) see the same
//! operand sequence as the serial path. The serial==parallel audit and
//! sweep determinism tests in this workspace are the enforcement.
//!
//! ## Lifecycle and nesting
//!
//! A call to [`Pool::map`] enqueues `k − 1` *tickets* for the resident
//! workers and then **participates in its own task**: the calling thread
//! claims chunks from the same cursor until the input is exhausted. The
//! call therefore completes even if every resident worker is busy — which
//! is exactly what makes *nested* maps (an audit fanning out per-job work
//! from inside a sweep cell that is itself a pool task) deadlock-free by
//! construction. Workers that pick a ticket up late find the task closed
//! and drop it without touching the caller's borrowed closure; the caller
//! does not return until every registered participant has checked out, so
//! the type-erased borrow can never dangle.
//!
//! Panics inside `f` are caught on whichever thread hit them, the task's
//! cursor is exhausted so other participants stop claiming, and the first
//! payload is re-thrown on the **calling** thread. Resident workers
//! survive and the next map reuses them — see the drop/re-entry tests.
//!
//! ## Worker count
//!
//! [`Pool::auto`] sizes itself to `std::thread::available_parallelism`,
//! clamped to the item count; a single worker short-circuits to a plain
//! serial map with zero synchronisation. [`Pool::with_threads`] forces an
//! explicit count — larger *or smaller* than the core count — which is how
//! the determinism tests exercise real cross-thread interleavings even on
//! single-core CI runners, and how benches pin comparisons. The resident
//! worker set grows on demand to the largest count any call has requested
//! (bounded by [`MAX_RESIDENT_WORKERS`]) and is never shrunk. The
//! `NCSS_POOL_THREADS` environment variable overrides [`Pool::auto`]
//! globally for experiments.

#![deny(missing_docs)]

use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Hard cap on resident worker threads. Oversubscribed requests (the
/// determinism tests force up to 32 workers on any machine) are honoured
/// up to this bound; beyond it the caller's own participation still
/// guarantees completion, so the cap never affects results — only how many
/// OS threads can interleave.
pub const MAX_RESIDENT_WORKERS: usize = 256;

/// A sizing policy for the persistent worker pool.
///
/// The pool itself is process-global: long-lived workers are spawned
/// lazily on first parallel use and shared by every `Pool` value, so a
/// `Pool` is nothing but a worker-count policy and is `Copy`.
///
/// # Examples
///
/// ```
/// use ncss_pool::Pool;
///
/// let squares = Pool::auto().map(&[1u64, 2, 3, 4], |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
///
/// // Forcing a worker count exercises real threads even on one core, and
/// // the result is identical to the serial path by construction.
/// let forced = Pool::with_threads(8).map(&[1u64, 2, 3, 4], |&x| x * x);
/// assert_eq!(forced, squares);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    /// Explicit worker count, or `None` for the auto policy.
    threads: Option<usize>,
}

impl Default for Pool {
    fn default() -> Self {
        Self::auto()
    }
}

impl Pool {
    /// Size to the machine: `available_parallelism` workers (overridable
    /// via the `NCSS_POOL_THREADS` environment variable), clamped to the
    /// item count at each call.
    #[must_use]
    pub fn auto() -> Self {
        Self { threads: None }
    }

    /// Force an explicit worker count (≥ 1; 0 is treated as 1). Counts
    /// above the core count are honoured — oversubscription is exactly
    /// what the serial==parallel tests need on small machines.
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        Self { threads: Some(threads.max(1)) }
    }

    /// The worker count this pool would use for `n` items.
    #[must_use]
    pub fn worker_count(&self, n: usize) -> usize {
        let auto = || {
            std::env::var("NCSS_POOL_THREADS")
                .ok()
                .and_then(|s| s.parse::<usize>().ok())
                .filter(|&t| t > 0)
                .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |p| p.get()))
        };
        self.threads.unwrap_or_else(auto).min(n).max(1)
    }

    /// Map `f` over `items` in parallel, preserving input order.
    ///
    /// Work is distributed dynamically via an atomic cursor (one item per
    /// claim), so uneven cell costs — OPT solves of different sizes,
    /// audit integrals over jobs with very different segment counts —
    /// balance automatically.
    pub fn map<T: Sync, U: Send>(&self, items: &[T], f: impl Fn(&T) -> U + Sync) -> Vec<U> {
        self.map_chunked(items, 1, f)
    }

    /// Map `f` over `items` in parallel with contiguous chunks of `chunk`
    /// items per claim, preserving input order.
    ///
    /// Prefer this over [`Pool::map`] when cells are cheap and uniform:
    /// the cursor is touched once per chunk and adjacent results are
    /// produced by the same worker. `chunk = 0` picks a default of
    /// `n / (8 · workers)`, clamped to at least 1 (≈8 claims per worker
    /// keeps the tail balanced).
    pub fn map_chunked<T: Sync, U: Send>(
        &self,
        items: &[T],
        chunk: usize,
        f: impl Fn(&T) -> U + Sync,
    ) -> Vec<U> {
        let n = items.len();
        let threads = self.worker_count(n);
        if threads <= 1 {
            return items.iter().map(&f).collect();
        }
        let chunk = if chunk == 0 { (n / (8 * threads)).max(1) } else { chunk };
        persistent_indexed_map(items, f, threads, chunk)
    }
}

/// Map `f` over `items` in parallel with the [`Pool::auto`] policy,
/// preserving order. Free-function form of [`Pool::map`] for call sites
/// that don't carry a pool.
pub fn parallel_map<T: Sync, U: Send>(items: &[T], f: impl Fn(&T) -> U + Sync) -> Vec<U> {
    Pool::auto().map(items, f)
}

/// Map `f` over `items` in parallel with contiguous chunks, preserving
/// order. Free-function form of [`Pool::map_chunked`].
pub fn parallel_map_chunked<T: Sync, U: Send>(
    items: &[T],
    chunk: usize,
    f: impl Fn(&T) -> U + Sync,
) -> Vec<U> {
    Pool::auto().map_chunked(items, chunk, f)
}

/// Number of resident worker threads spawned so far in this process.
///
/// Grows monotonically (on demand, up to [`MAX_RESIDENT_WORKERS`]) and
/// never shrinks — the persistence tests assert it stays flat across
/// repeated maps once the high-water request has been seen.
#[must_use]
pub fn resident_workers() -> usize {
    shared().spawned.load(Ordering::Relaxed)
}

// --- the process-global worker set ----------------------------------------

/// What a ticket points at: one parallel map call in flight.
struct Task {
    /// Next unclaimed input index; claims are `fetch_add(chunk)`.
    cursor: AtomicUsize,
    /// Input length: claims at or past this are void.
    n: usize,
    /// Indices per claim.
    chunk: usize,
    /// Type-erased borrow of the caller's "execute indices `[lo, hi)`"
    /// closure. The `'static` is a lie told via `transmute`; the
    /// close/participants protocol below guarantees no participant touches
    /// it after the owning call returns (see `participate`).
    run: &'static (dyn Fn(usize, usize) + Sync),
    /// Close flag, participant count, and the first caught panic.
    state: Mutex<TaskState>,
    /// Signalled when the last participant checks out.
    done: Condvar,
}

struct TaskState {
    /// Set by the owning caller right before it starts waiting; workers
    /// that pop a ticket for a closed task drop it untouched.
    closed: bool,
    /// Threads currently inside `run_chunks` for this task.
    participants: usize,
    /// First panic payload caught from `run`; re-thrown on the caller.
    panic: Option<Box<dyn std::any::Any + Send>>,
}

impl Task {
    /// Worker-side entry: register, drain the cursor, check out. The
    /// registration handshake is what makes the `'static` lie in `run`
    /// sound — `closed` is checked and `participants` bumped under the
    /// same lock the caller takes before waiting, so either this thread
    /// never touches `run`, or the caller blocks until it is done.
    fn participate(&self) {
        {
            let mut st = self.state.lock().expect("pool task state");
            if st.closed {
                return;
            }
            st.participants += 1;
        }
        self.run_chunks();
        let mut st = self.state.lock().expect("pool task state");
        st.participants -= 1;
        if st.participants == 0 {
            self.done.notify_all();
        }
    }

    /// Claim and execute chunks until the cursor is exhausted. A panic in
    /// `run` is caught, recorded (first wins), and the cursor jumped past
    /// the end so other participants stop claiming; the caller re-throws.
    fn run_chunks(&self) {
        loop {
            let lo = self.cursor.fetch_add(self.chunk, Ordering::Relaxed);
            if lo >= self.n {
                return;
            }
            let hi = (lo + self.chunk).min(self.n);
            let run = self.run;
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| run(lo, hi))) {
                let mut st = self.state.lock().expect("pool task state");
                if st.panic.is_none() {
                    st.panic = Some(payload);
                }
                drop(st);
                self.cursor.store(self.n, Ordering::Relaxed);
                return;
            }
        }
    }
}

/// The resident worker set: ticket queue plus spawn bookkeeping.
struct Shared {
    /// Pending tickets. Each map call pushes `k − 1` clones of its task.
    queue: Mutex<VecDeque<Arc<Task>>>,
    /// Signalled when tickets are enqueued.
    ready: Condvar,
    /// Resident threads spawned so far (monotone, ≤ `MAX_RESIDENT_WORKERS`).
    spawned: AtomicUsize,
    /// Serialises grow decisions so concurrent callers don't over-spawn.
    grow: Mutex<()>,
}

/// The once-per-process worker set, lazily initialised on first parallel
/// map. Workers are detached and park on the ticket queue for the life of
/// the process — there is deliberately no shutdown: they hold no resources
/// beyond a stack, and joining daemons at exit buys nothing.
fn shared() -> &'static Shared {
    static SHARED: OnceLock<Shared> = OnceLock::new();
    SHARED.get_or_init(|| Shared {
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        spawned: AtomicUsize::new(0),
        grow: Mutex::new(()),
    })
}

impl Shared {
    /// Grow the resident set to at least `want` workers (capped). Spawn
    /// failures are tolerated: the caller participates in its own task, so
    /// fewer helpers only means less overlap, never an incomplete map.
    fn ensure_workers(&'static self, want: usize) {
        let want = want.min(MAX_RESIDENT_WORKERS);
        if self.spawned.load(Ordering::Relaxed) >= want {
            return;
        }
        let _g = self.grow.lock().expect("pool grow lock");
        while self.spawned.load(Ordering::Relaxed) < want {
            let ok = std::thread::Builder::new()
                .name("ncss-pool".into())
                .spawn(move || self.worker_main())
                .is_ok();
            if !ok {
                return;
            }
            self.spawned.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Resident worker loop: park on the queue, drain tickets forever.
    fn worker_main(&self) {
        loop {
            let task = {
                let mut q = self.queue.lock().expect("pool queue");
                loop {
                    if let Some(t) = q.pop_front() {
                        break t;
                    }
                    q = self.ready.wait(q).expect("pool queue wait");
                }
            };
            task.participate();
        }
    }
}

/// Shared view of the output slots. Participants write disjoint indices
/// (each index is claimed exactly once by the cursor), which is the whole
/// justification for the `Sync` impl.
struct Slots<'a, U>(&'a [UnsafeCell<Option<U>>]);

unsafe impl<U: Send> Sync for Slots<'_, U> {}

impl<U> Slots<'_, U> {
    /// Write slot `i`. Safe only while `i` is exclusively claimed by the
    /// calling participant — guaranteed by the cursor. (A method rather
    /// than direct field access so closures capture the whole `Slots`,
    /// keeping the `Sync` promise attached.)
    unsafe fn set(&self, i: usize, value: U) {
        *self.0[i].get() = Some(value);
    }
}

/// The persistent-pool map: enqueue `threads − 1` tickets, participate
/// from the calling thread, then close the task and wait out any stragglers
/// before touching the results.
fn persistent_indexed_map<T: Sync, U: Send>(
    items: &[T],
    f: impl Fn(&T) -> U + Sync,
    threads: usize,
    chunk: usize,
) -> Vec<U> {
    let n = items.len();
    let out: Vec<UnsafeCell<Option<U>>> = (0..n).map(|_| UnsafeCell::new(None)).collect();
    let slots = Slots(&out);
    let work = move |lo: usize, hi: usize| {
        for i in lo..hi {
            // Each index is claimed by exactly one participant, so this
            // write is the only access to slot `i` until the caller
            // collects results after the participants-drained barrier.
            unsafe { slots.set(i, f(&items[i])) };
        }
    };
    let run: &(dyn Fn(usize, usize) + Sync) = &work;
    // SAFETY: lifetime erasure only. `close-then-wait` below proves no
    // participant can be inside (or ever enter) `run` once this function
    // returns: registration checks `closed` under the state lock, and the
    // caller holds that lock when it flips `closed` and then blocks until
    // `participants == 0`.
    let run: &'static (dyn Fn(usize, usize) + Sync) = unsafe { std::mem::transmute(run) };
    let task = Arc::new(Task {
        cursor: AtomicUsize::new(0),
        n,
        chunk,
        run,
        state: Mutex::new(TaskState { closed: false, participants: 0, panic: None }),
        done: Condvar::new(),
    });

    let shared = shared();
    shared.ensure_workers(threads - 1);
    {
        let mut q = shared.queue.lock().expect("pool queue");
        for _ in 0..threads - 1 {
            q.push_back(Arc::clone(&task));
        }
    }
    shared.ready.notify_all();

    // The caller always participates: the map completes even if every
    // resident worker is busy (or this map was issued *from* a worker).
    task.run_chunks();

    let payload = {
        let mut st = task.state.lock().expect("pool task state");
        st.closed = true;
        while st.participants > 0 {
            st = task.done.wait(st).expect("pool done wait");
        }
        st.panic.take()
    };
    if let Some(p) = payload {
        resume_unwind(p);
    }
    out.into_iter()
        .map(|c| c.into_inner().expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..500).collect();
        let out = parallel_map(&items, |&x| x * x);
        assert_eq!(out, items.iter().map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn chunked_preserves_order_for_every_chunk_size() {
        let items: Vec<u64> = (0..257).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for chunk in [0, 1, 2, 7, 64, 300] {
            let out = parallel_map_chunked(&items, chunk, |&x| x * 3 + 1);
            assert_eq!(out, serial, "chunk {chunk}");
        }
    }

    #[test]
    fn forced_thread_counts_match_serial_exactly() {
        // Oversubscription (threads ≫ cores) and undersubscription both
        // reduce to the same ordered result — the determinism contract.
        let items: Vec<u64> = (0..313).collect();
        let serial: Vec<u64> = items.iter().map(|x| x.wrapping_mul(0x9E37_79B9)).collect();
        for threads in [1, 2, 3, 8, 32] {
            let out = Pool::with_threads(threads).map(&items, |x| x.wrapping_mul(0x9E37_79B9));
            assert_eq!(out, serial, "threads {threads}");
            let out = Pool::with_threads(threads).map_chunked(&items, 5, |x| {
                x.wrapping_mul(0x9E37_79B9)
            });
            assert_eq!(out, serial, "chunked threads {threads}");
        }
    }

    #[test]
    fn empty_input() {
        let out: Vec<u64> = parallel_map(&[] as &[u64], |&x| x);
        assert!(out.is_empty());
        let out: Vec<u64> = Pool::with_threads(4).map_chunked(&[] as &[u64], 4, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn uneven_work_balances() {
        // Mix trivial and heavy items; result must still be ordered.
        let items: Vec<u64> = (0..64).collect();
        let out = Pool::with_threads(4).map(&items, |&x| {
            if x % 7 == 0 {
                (0..50_000u64).fold(x, |a, b| a.wrapping_add(b % 13))
            } else {
                x
            }
        });
        assert_eq!(out.len(), 64);
        assert_eq!(out[1], 1);
    }

    #[test]
    fn worker_count_clamps_to_items() {
        assert_eq!(Pool::with_threads(16).worker_count(3), 3);
        assert_eq!(Pool::with_threads(0).worker_count(10), 1);
        assert!(Pool::auto().worker_count(1000) >= 1);
        assert_eq!(Pool::auto().worker_count(0), 1);
    }

    #[test]
    fn ordered_float_sums_are_bitwise_stable() {
        // The property the audit's energy re-derivation rests on: summing
        // the order-preserved parallel results gives the exact serial sum.
        let items: Vec<f64> = (0..1000).map(|i| 1.0 / f64::from(i + 1)).collect();
        let cell = |&x: &f64| (x * 1.000_000_1).sin();
        let serial: f64 = items.iter().map(cell).sum();
        for threads in [2, 5, 17] {
            let par: f64 = Pool::with_threads(threads).map(&items, cell).iter().sum();
            assert_eq!(par.to_bits(), serial.to_bits(), "threads {threads}");
        }
    }

    #[test]
    fn repeated_maps_reuse_resident_workers_bit_for_bit() {
        // Persistence: after the high-water thread request is seen, the
        // resident set stays flat — no per-call spawning — and every call
        // still matches the serial map exactly.
        let items: Vec<u64> = (0..613).collect();
        let serial: Vec<u64> = items.iter().map(|x| x.rotate_left(7) ^ 0xA5A5).collect();
        for threads in [2, 4, 8] {
            let _ = Pool::with_threads(threads).map(&items, |x| x.rotate_left(7) ^ 0xA5A5);
        }
        let resident_after_warmup = resident_workers();
        assert!(resident_after_warmup >= 1, "helpers were spawned");
        for round in 0..50 {
            for threads in [2, 4, 8] {
                let out = Pool::with_threads(threads).map(&items, |x| x.rotate_left(7) ^ 0xA5A5);
                assert_eq!(out, serial, "round {round} threads {threads}");
            }
        }
        assert_eq!(
            resident_workers(),
            resident_after_warmup,
            "repeated maps must not spawn new workers"
        );
    }

    #[test]
    fn panicking_tasks_propagate_and_the_pool_reenters_cleanly() {
        // Drop/re-entry: a panic inside `f` must surface on the caller,
        // and the resident workers must survive to serve later maps — no
        // deadlock, no poisoned queue.
        let items: Vec<u64> = (0..200).collect();
        let serial: Vec<u64> = items.iter().map(|x| x + 1).collect();
        for round in 0..3 {
            let boom = std::panic::catch_unwind(AssertUnwindSafe(|| {
                Pool::with_threads(6).map(&items, |&x| {
                    assert!(x != 13, "injected failure");
                    x + 1
                })
            }));
            assert!(boom.is_err(), "round {round}: panic must propagate to the caller");
            for threads in [2, 6, 9] {
                let out = Pool::with_threads(threads).map(&items, |&x| x + 1);
                assert_eq!(out, serial, "round {round}: pool must survive a panicking task");
            }
        }
    }

    #[test]
    fn nested_maps_complete_without_deadlock() {
        // A map issued from inside a pool task must finish even when every
        // resident worker is occupied by the outer map: the caller always
        // participates in its own cursor.
        let outer: Vec<u64> = (0..8).collect();
        let expect: Vec<u64> = outer.iter().map(|&x| (0..32).map(|y| x * 31 + y).sum()).collect();
        for _ in 0..10 {
            let got = Pool::with_threads(4).map(&outer, |&x| {
                let inner: Vec<u64> = (0..32).collect();
                Pool::with_threads(4).map(&inner, |&y| x * 31 + y).iter().sum::<u64>()
            });
            assert_eq!(got, expect);
        }
    }
}
