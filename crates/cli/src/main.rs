//! The `ncss` binary: thin wrapper over [`ncss_cli::run_cli`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match ncss_cli::run_cli(&args) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
